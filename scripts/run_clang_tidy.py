#!/usr/bin/env python3
"""Run clang-tidy over the project's compilation database.

Usage: run_clang_tidy.py [--clang-tidy BIN] [--build-dir DIR]
                         [--jobs N] PATH...

Thin parallel driver for the curated .clang-tidy profile at the repo
root: selects the compile_commands.json entries living under the
given PATHs (files or directory prefixes), fans clang-tidy out over a
process pool, and exits non-zero when any invocation emits a warning
or error. CI builds with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON and runs
this through the `check-lint` CMake target; the target skips the tidy
leg automatically on hosts without clang-tidy installed (this repo's
dev container among them).
"""

import argparse
import json
import multiprocessing
import os
import subprocess
import sys


def parse_args(argv):
    ap = argparse.ArgumentParser(
        description="parallel clang-tidy over compile_commands.json")
    ap.add_argument("--clang-tidy", default="clang-tidy",
                    help="clang-tidy binary (default: from PATH)")
    ap.add_argument("--build-dir", default="build",
                    help="directory holding compile_commands.json")
    ap.add_argument("--jobs", type=int, default=0,
                    help="parallel invocations (default: CPU count)")
    ap.add_argument("paths", nargs="+",
                    help="files or directory prefixes to lint")
    return ap.parse_args(argv)


def selected_sources(build_dir, paths):
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(db_path):
        print(f"run_clang_tidy: {db_path} not found; configure with "
              "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON", file=sys.stderr)
        sys.exit(2)
    with open(db_path) as f:
        db = json.load(f)
    prefixes = [os.path.abspath(p) for p in paths]
    files = set()
    for entry in db:
        src = os.path.abspath(
            os.path.join(entry["directory"], entry["file"]))
        if any(src == p or src.startswith(p + os.sep)
               for p in prefixes):
            files.add(src)
    return sorted(files)


def tidy_one(args):
    binary, build_dir, src = args
    proc = subprocess.run(
        [binary, "-p", build_dir, "--quiet",
         "--warnings-as-errors=*", src],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    return src, proc.returncode, proc.stdout


def main(argv):
    args = parse_args(argv)
    files = selected_sources(args.build_dir, args.paths)
    if not files:
        print("run_clang_tidy: no sources matched", file=sys.stderr)
        return 2

    jobs = args.jobs or multiprocessing.cpu_count()
    work = [(args.clang_tidy, args.build_dir, f) for f in files]
    failed = 0
    with multiprocessing.Pool(jobs) as pool:
        for src, rc, out in pool.imap_unordered(tidy_one, work):
            rel = os.path.relpath(src)
            if rc != 0:
                failed += 1
                print(f"FAIL {rel}")
                # Drop clang-tidy's noise footer, keep diagnostics.
                for line in out.splitlines():
                    if "warnings generated" not in line:
                        print(f"  {line}")
            else:
                print(f"ok   {rel}")
    print(f"run_clang_tidy: {len(files)} files, {failed} failed")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
