#!/usr/bin/env python3
"""Compare two bench-sweep result files and flag regressions.

Usage: bench_compare.py BASELINE.json CURRENT.json [options]
       bench_compare.py --self-test

Both inputs are BENCH_sweep.json files written by run_benches.sh
(optionally with a "coh" block folded in from fig11's
coh_summary.json). The comparison flags a regression when:

  * a bench that was "ok" in the baseline is "degraded"/"failed" in
    the current run, or disappeared entirely;
  * a bench's wall clock exceeds baseline * --wall-ratio AND grew by
    more than --wall-floor seconds (the floor keeps sub-second
    benches from tripping on scheduler noise);
  * the sweep's total wall clock trips the same ratio + floor;
  * the overall mean COH reduction dropped by more than
    --coh-drop-pts percentage points, or any single program's
    reduction dropped by more than --coh-program-drop-pts.

Status *improvements*, wall-clock speedups, and COH gains are
reported but never fail the comparison. Exits 0 when clean, 1 on any
regression, 2 on malformed input. --out writes the full comparison
as JSON (the CI artifact).

Options:
  --wall-ratio R            per-bench slowdown ratio (default 2.0)
  --wall-floor S            absolute growth floor, seconds (default 10)
  --coh-drop-pts P          overall mean COH drop (default 3.0 pts)
  --coh-program-drop-pts P  per-program COH drop (default 10.0 pts)
  --out FILE                write comparison JSON to FILE
  --self-test               run the built-in self check and exit
"""

import json
import sys


def fail(msg):
    print(f"bench_compare: {msg}", file=sys.stderr)
    sys.exit(2)


def parse_args(argv):
    opts = {
        "wall_ratio": 2.0,
        "wall_floor": 10.0,
        "coh_drop_pts": 3.0,
        "coh_program_drop_pts": 10.0,
        "out": None,
    }
    paths = []
    i = 1
    while i < len(argv):
        a = argv[i]
        if a == "--self-test":
            sys.exit(self_test())
        elif a in ("-h", "--help"):
            print(__doc__)
            sys.exit(0)
        elif a == "--wall-ratio":
            opts["wall_ratio"] = float(argv[i + 1]); i += 2
        elif a == "--wall-floor":
            opts["wall_floor"] = float(argv[i + 1]); i += 2
        elif a == "--coh-drop-pts":
            opts["coh_drop_pts"] = float(argv[i + 1]); i += 2
        elif a == "--coh-program-drop-pts":
            opts["coh_program_drop_pts"] = float(argv[i + 1]); i += 2
        elif a == "--out":
            opts["out"] = argv[i + 1]; i += 2
        elif a.startswith("-"):
            fail(f"unknown option {a}")
        else:
            paths.append(a); i += 1
    if len(paths) != 2:
        fail("expected BASELINE.json CURRENT.json (see --help)")
    return paths[0], paths[1], opts


def load(path):
    try:
        with open(path) as f:
            sweep = json.load(f)
    except (OSError, ValueError) as e:
        fail(f"{path}: {e}")
    if "benches" not in sweep or not isinstance(sweep["benches"],
                                               list):
        fail(f"{path}: no 'benches' array; not a BENCH_sweep.json?")
    return sweep


STATUS_RANK = {"ok": 0, "degraded": 1, "failed": 2}


def compare(base, cur, opts):
    """Return (regressions, notes, rows) for the two sweeps."""
    regressions = []
    notes = []
    rows = []

    base_by = {b["name"]: b for b in base["benches"]}
    cur_by = {b["name"]: b for b in cur["benches"]}

    def slower(b_sec, c_sec):
        return (c_sec > b_sec * opts["wall_ratio"]
                and c_sec - b_sec > opts["wall_floor"])

    for name, b in base_by.items():
        c = cur_by.get(name)
        if c is None:
            regressions.append(f"{name}: present in baseline but "
                               "missing from current sweep")
            continue
        row = {
            "name": name,
            "baseline_seconds": b["seconds"],
            "current_seconds": c["seconds"],
            "baseline_status": b["status"],
            "current_status": c["status"],
        }
        rows.append(row)
        br = STATUS_RANK.get(b["status"], 2)
        cr = STATUS_RANK.get(c["status"], 2)
        if cr > br:
            regressions.append(
                f"{name}: status {b['status']} -> {c['status']}")
        elif cr < br:
            notes.append(
                f"{name}: status improved {b['status']} -> "
                f"{c['status']}")
        if slower(b["seconds"], c["seconds"]):
            regressions.append(
                f"{name}: wall clock {b['seconds']:.1f}s -> "
                f"{c['seconds']:.1f}s (> {opts['wall_ratio']:.1f}x "
                f"and +{opts['wall_floor']:.0f}s)")
    for name in cur_by:
        if name not in base_by:
            notes.append(f"{name}: new bench (no baseline)")

    bt, ct = base.get("total_seconds"), cur.get("total_seconds")
    if bt is not None and ct is not None:
        if slower(bt, ct):
            regressions.append(f"total: wall clock {bt:.1f}s -> "
                               f"{ct:.1f}s")
        elif ct < bt:
            notes.append(f"total: {bt:.1f}s -> {ct:.1f}s (faster)")

    # COH quality: only comparable when both sweeps folded in
    # fig11's coh_summary.json (run_benches.sh does this whenever
    # fig11 ran).
    bc, cc = base.get("coh"), cur.get("coh")
    if bc and cc:
        bo, co = bc.get("overall_mean"), cc.get("overall_mean")
        if bo is not None and co is not None:
            drop = bo - co
            if drop > opts["coh_drop_pts"]:
                regressions.append(
                    f"coh: overall mean reduction {bo:.1f}% -> "
                    f"{co:.1f}% (dropped {drop:.1f} pts)")
            elif drop < 0:
                notes.append(f"coh: overall mean reduction improved "
                             f"{bo:.1f}% -> {co:.1f}%")
        for prog, bv in (bc.get("programs") or {}).items():
            cv = (cc.get("programs") or {}).get(prog)
            if cv is None:
                continue
            if bv - cv > opts["coh_program_drop_pts"]:
                regressions.append(
                    f"coh[{prog}]: reduction {bv:.1f}% -> {cv:.1f}% "
                    f"(dropped {bv - cv:.1f} pts)")
    elif bc and not cc:
        regressions.append("coh: baseline has COH metrics but the "
                           "current sweep has none (fig11 leg "
                           "missing?)")

    return regressions, notes, rows


def run(base_path, cur_path, opts):
    base = load(base_path)
    cur = load(cur_path)
    regressions, notes, rows = compare(base, cur, opts)

    print(f"bench_compare: {cur_path} vs baseline {base_path}")
    print(f"{'bench':<22} {'base':>9} {'cur':>9} {'ratio':>7}  "
          "status")
    for r in rows:
        ratio = (r["current_seconds"] / r["baseline_seconds"]
                 if r["baseline_seconds"] else float("inf"))
        st = r["current_status"]
        if r["current_status"] != r["baseline_status"]:
            st = f"{r['baseline_status']}->{r['current_status']}"
        print(f"{r['name']:<22} {r['baseline_seconds']:>8.1f}s "
              f"{r['current_seconds']:>8.1f}s {ratio:>6.2f}x  {st}")
    for n in notes:
        print(f"note: {n}")
    for r in regressions:
        print(f"REGRESSION: {r}")
    verdict = "REGRESSED" if regressions else "OK"
    print(f"bench_compare: {verdict} "
          f"({len(regressions)} regression(s), {len(notes)} note(s))")

    if opts["out"]:
        with open(opts["out"], "w") as f:
            json.dump({
                "baseline": base_path,
                "current": cur_path,
                "thresholds": {k: v for k, v in opts.items()
                               if k != "out"},
                "rows": rows,
                "notes": notes,
                "regressions": regressions,
                "verdict": verdict,
            }, f, indent=2)
            f.write("\n")
        print(f"comparison written to {opts['out']}")

    return 1 if regressions else 0


def self_test():
    """Self-compare must pass; injected regressions must fail."""
    import copy
    import io
    from contextlib import redirect_stdout

    sweep = {
        "jobs": 4, "quick": True,
        "benches": [
            {"name": "fig11_coh", "seconds": 30.0, "status": "ok",
             "exit_code": 0},
            {"name": "table3_summary", "seconds": 45.0,
             "status": "ok", "exit_code": 0},
            {"name": "micro_router", "seconds": 0.4, "status": "ok",
             "exit_code": 0},
        ],
        "total_seconds": 80.0,
        "coh": {"programs": {"can": 55.0, "body": 40.0},
                "overall_mean": 47.5},
    }
    opts = {"wall_ratio": 2.0, "wall_floor": 10.0,
            "coh_drop_pts": 3.0, "coh_program_drop_pts": 10.0,
            "out": None}

    def expect(label, cur, want_regression):
        reg, _, _ = compare(sweep, cur, opts)
        if bool(reg) != want_regression:
            print(f"self-test FAILED [{label}]: regressions={reg}",
                  file=sys.stderr)
            return False
        return True

    ok = True
    ok &= expect("self-compare", copy.deepcopy(sweep), False)

    slow = copy.deepcopy(sweep)
    slow["benches"][0]["seconds"] = 90.0  # 3x and +60s
    ok &= expect("wall-clock regression", slow, True)

    noisy = copy.deepcopy(sweep)
    noisy["benches"][2]["seconds"] = 1.5  # 3.75x but under the floor
    ok &= expect("sub-floor noise tolerated", noisy, False)

    broken = copy.deepcopy(sweep)
    broken["benches"][1]["status"] = "failed"
    ok &= expect("status regression", broken, True)

    gone = copy.deepcopy(sweep)
    gone["benches"] = gone["benches"][1:]
    ok &= expect("missing bench", gone, True)

    worse_coh = copy.deepcopy(sweep)
    worse_coh["coh"]["overall_mean"] = 40.0  # -7.5 pts
    ok &= expect("overall COH drop", worse_coh, True)

    prog_coh = copy.deepcopy(sweep)
    prog_coh["coh"]["programs"]["can"] = 30.0  # -25 pts
    ok &= expect("per-program COH drop", prog_coh, True)

    # End-to-end through run(): write both files, self-compare.
    import os
    import tempfile
    with tempfile.TemporaryDirectory() as d:
        a = os.path.join(d, "base.json")
        b = os.path.join(d, "cur.json")
        out = os.path.join(d, "cmp.json")
        for p in (a, b):
            with open(p, "w") as f:
                json.dump(sweep, f)
        o = dict(opts, out=out)
        buf = io.StringIO()
        with redirect_stdout(buf):
            rc = run(a, b, o)
        if rc != 0 or not os.path.exists(out):
            print("self-test FAILED [run() self-compare]",
                  file=sys.stderr)
            ok = False

    print("bench_compare self-test:", "OK" if ok else "FAILED")
    return 0 if ok else 1


def main(argv):
    base_path, cur_path, opts = parse_args(argv)
    sys.exit(run(base_path, cur_path, opts))


if __name__ == "__main__":
    main(sys.argv)
