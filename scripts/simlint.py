#!/usr/bin/env python3
"""Determinism and protocol-contract lint for the OCOR simulator.

Usage: simlint.py [--list-rules] DIR_OR_FILE...

The simulator must be bit-reproducible: two runs with the same
configuration and seed produce identical metrics, traces and stats
(ROADMAP tier-1 property, enforced by the determinism tests). The
classic ways C++ code silently breaks that are iterating an unordered
container into simulation-visible state, consuming ambient entropy
(wall clock, rand(), random_device), and ordering on raw pointer
values, all of which vary run to run. On top of those, the protocol
layers carry contracts the compiler cannot check: nextWake() must be
a pure observer (the event core calls it at will), every blocked-idle
charge must reach the COH ledger, and every stats-struct field must
be registered or it silently vanishes from stats.json.

Engine: a self-contained C++ tokenizer plus a structural parser
(brace/paren matching, function-body classification, struct-field
extraction). Tokens, not lines, drive every rule, so string literals
and comments can no longer produce false positives and multi-line
constructs resolve correctly. When the libclang python bindings are
importable an AST pass supplements two rules (typedefs and autos
resolve); the container image for this repo has no libclang, so the
tokenizer engine is the one CI exercises and is authoritative.

Rules (suppress one occurrence with a `simlint: allow(<rule>)`
comment on the same or the preceding line):

  unordered-iteration   range-for or .begin() iteration over a
                        container declared std::unordered_* in the
                        same file. Hash-table order is
                        implementation- and run-dependent; iterate a
                        sorted mirror (std::map/std::set) or sort the
                        results instead.
  ambient-entropy       rand()/srand()/random_device/time()/
                        gettimeofday/clock()/system_clock/
                        high_resolution_clock. Simulation randomness
                        must come from the seeded common/rng.hh
                        stream. (steady_clock is tolerated: it is the
                        documented convention for host wall-time
                        profiling, which never feeds sim state.)
  pointer-keyed-order   std::map/std::set keyed by a raw pointer
                        type. Heap addresses differ across runs, so
                        any iteration order leaks nondeterminism.
  missing-field-init    scalar field without a default initializer in
                        a struct named *Packet/*Flit/*Config/
                        *Params/*Fields/*Shape. These structs are
                        created ad hoc all over the codebase; a field
                        someone forgets to set must read 0, not
                        stack garbage.
  unconditional-tick    range-for whose body ticks every element of a
                        component container unconditionally
                        (`x->tick(now)` with no guard). The simulator
                        is event-driven (DESIGN.md §13): a per-cycle
                        for-all-components loop silently re-introduces
                        the O(components) cost the event core removes.
                        Gate the call on `nextWake() <= now` (see
                        System::tickEvent) or schedule through the
                        event wheel; the legacy exact path carries
                        explicit allow annotations.
  signal-unsafe         non-async-signal-safe call (malloc/stdio/
                        iostream/string/mutex/exit/throw...) inside a
                        region bracketed by `// BEGIN
                        signal-handler-context` and `// END
                        signal-handler-context`. Code in such a region
                        runs from the crash-dump signal handler
                        (DESIGN.md §12), where POSIX allows only the
                        async-signal-safe subset: raw write()/open()/
                        close(), lock-free atomics and hand-rolled
                        formatting. Anything that may take a lock or
                        allocate can deadlock a dying process.
  nextwake-impure       a nextWake() definition that is not
                        const-qualified, or whose body mutates a
                        member (`x_ = ...`, `++x_`, `this->x = ...`).
                        The event core (DESIGN.md §13) calls
                        nextWake() any number of times per cycle to
                        compute the next event horizon; a mutation
                        makes the horizon depend on how often the
                        scheduler polls, which is schedule-dependent
                        and breaks determinism. Local variables are
                        fine; members (trailing-underscore or
                        this->) are not.
  ledger-site           a `counters.blockedIdleCycles` increment in a
                        function that never calls chargeCohCauses()
                        or ledger->charge(). blockedIdleCycles is the
                        Equation-1 COH numerator; charging it without
                        the per-cause ledger split makes the causal
                        attribution (DESIGN.md §14) drift from the
                        aggregate it must decompose.
  stats-registration    a field of a *Stats/*Counters struct that is
                        registered nowhere, while sibling fields of
                        the same struct are. An unregistered field is
                        invisible in stats.json and escapes the
                        determinism digest. Structs no registerStats()
                        walk touches at all are out of scope (they
                        aggregate through other paths).

Exit status: 0 when clean, 1 when any finding is reported, 2 on
usage errors -- including a path that does not exist and a directory
argument containing no C++ sources (a silently empty lint run is a
lint failure: CI would report green while checking nothing).
"""

import os
import re
import sys

CXX_EXT = (".hh", ".cc", ".cpp", ".hpp", ".cxx")

RULES = {
    "unordered-iteration":
        "iteration over an unordered container (hash order is not "
        "deterministic)",
    "ambient-entropy":
        "ambient entropy source; use the seeded common/rng.hh stream",
    "pointer-keyed-order":
        "ordered container keyed by a raw pointer (address order "
        "varies per run)",
    "missing-field-init":
        "scalar struct field without a default initializer",
    "unconditional-tick":
        "per-cycle for-all-components tick loop (defeats the "
        "event-driven core's gating; guard on nextWake() <= now)",
    "signal-unsafe":
        "non-async-signal-safe call inside a signal-handler-context "
        "region",
    "nextwake-impure":
        "nextWake() must be a const pure observer (the event core "
        "polls it freely; mutation makes the horizon "
        "schedule-dependent)",
    "ledger-site":
        "blocked-idle charge without a paired COH-ledger charge in "
        "the same function (Equation-1 attribution drifts)",
    "stats-registration":
        "stats struct field never registered in any registerStats() "
        "walk (invisible in stats.json and the determinism digest)",
}

ALLOW_RE = re.compile(r"simlint:\s*allow\(([a-z-]+)\)")


def allowed(lines, idx, rule):
    """A `simlint: allow(rule)` on this or the preceding line."""
    for i in (idx, idx - 1):
        if 0 <= i < len(lines):
            m = ALLOW_RE.search(lines[i])
            if m and m.group(1) == rule:
                return True
    return False


# --- tokenizer -------------------------------------------------------
#
# kinds: "id" (identifiers and keywords), "num", "str", "chr",
# "punct". Comments and preprocessor directives are consumed here
# (comment text is kept separately for the signal-handler-context
# markers), so no rule can ever match inside one.

PUNCTS3 = ("<<=", ">>=", "->*", "...")
PUNCTS2 = ("::", "->", "++", "--", "<<", ">>", "<=", ">=", "==",
           "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=",
           "|=", "^=")
RAW_PREFIXES = ("R", "LR", "uR", "UR", "u8R")


class Tok:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind, text, line):
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self):
        return f"{self.kind}:{self.text}@{self.line}"


def tokenize(text):
    """Return (tokens, comments) where comments is [(line, text)]."""
    toks, comments = [], []
    i, n, line = 0, len(text), 1
    bol = True  # only whitespace seen since line start
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            bol = True
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        if c == "#" and bol:
            # Preprocessor directive: swallow it, honoring
            # backslash continuations.
            while i < n:
                j = text.find("\n", i)
                if j < 0:
                    i = n
                    break
                if text[j - 1] == "\\" or \
                        (j >= 2 and text[j - 2:j] == "\\\r"):
                    line += 1
                    i = j + 1
                    continue
                i = j  # leave the newline for the main loop
                break
            continue
        bol = False
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            comments.append((line, text[i:j]))
            i = j
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            end = n if j < 0 else j + 2
            seg = text[i:end]
            comments.append((line, seg))
            line += seg.count("\n")
            i = end
            continue
        if c == '"':
            if toks and toks[-1].kind == "id" and \
                    toks[-1].text in RAW_PREFIXES:
                # Raw string: R"delim( ... )delim"
                toks.pop()
                j = text.find("(", i)
                delim = text[i + 1:j] if j > 0 else ""
                close = ")" + delim + '"'
                k = text.find(close, j + 1)
                end = n if k < 0 else k + len(close)
                seg = text[i:end]
                toks.append(Tok("str", seg, line))
                line += seg.count("\n")
                i = end
                continue
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            toks.append(Tok("str", text[i:j], line))
            i = j
            continue
        if c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            toks.append(Tok("chr", text[i:j], line))
            i = j
            continue
        if c.isalpha() or c == "_":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            toks.append(Tok("id", text[i:j], line))
            i = j
            continue
        if c.isdigit() or (c == "." and i + 1 < n and
                           text[i + 1].isdigit()):
            j = i + 1
            while j < n:
                d = text[j]
                if d.isalnum() or d in "'._":
                    j += 1
                elif d in "+-" and text[j - 1] in "eEpP":
                    j += 1
                else:
                    break
            toks.append(Tok("num", text[i:j], line))
            i = j
            continue
        for p in PUNCTS3:
            if text.startswith(p, i):
                toks.append(Tok("punct", p, line))
                i += 3
                break
        else:
            for p in PUNCTS2:
                if text.startswith(p, i):
                    toks.append(Tok("punct", p, line))
                    i += 2
                    break
            else:
                toks.append(Tok("punct", c, line))
                i += 1
    return toks, comments


def match_pairs(toks, open_c, close_c):
    """open-index <-> close-index map; strays are tolerated."""
    pairs, stack = {}, []
    for idx, t in enumerate(toks):
        if t.kind != "punct":
            continue
        if t.text == open_c:
            stack.append(idx)
        elif t.text == close_c and stack:
            o = stack.pop()
            pairs[o] = idx
            pairs[idx] = o
    return pairs


# --- structural parser ----------------------------------------------

CTRL_KEYWORDS = {"if", "for", "while", "switch", "catch"}
TRAIL_QUALS = {"const", "noexcept", "override", "final"}


def find_functions(toks, braces, parens):
    """Classify brace blocks that are function bodies.

    A body's opening brace is reached by walking back over trailing
    qualifiers to a `)` whose matching `(` is preceded by a
    non-control-keyword identifier (the function name, possibly
    `Class::`-qualified) or by `]` (a lambda). Constructor
    member-init lists classify as a body named after the last
    initializer, which is harmless: the name-driven rules only look
    for nextWake/registerStats.

    Returns [{name, const, line, open, close}].
    """
    fns = []
    for idx, t in enumerate(toks):
        if t.kind != "punct" or t.text != "{" or idx not in braces:
            continue
        j = idx - 1
        is_const = False
        while j >= 0:
            tj = toks[j]
            if tj.kind == "id" and tj.text in TRAIL_QUALS:
                is_const = is_const or tj.text == "const"
                j -= 1
                continue
            if tj.kind == "punct" and tj.text in ("&",):
                j -= 1
                continue
            if tj.kind == "punct" and tj.text == ")" and j in parens:
                o = parens[j]
                before = o - 1
                if before >= 0 and toks[before].kind == "id" and \
                        toks[before].text == "noexcept":
                    j = before - 1  # noexcept(expr): keep walking
                    continue
            break
        if j < 0:
            continue
        tj = toks[j]
        if tj.kind != "punct" or tj.text != ")" or j not in parens:
            continue
        o = parens[j]
        before = o - 1
        if before < 0:
            continue
        tb = toks[before]
        if tb.kind == "punct" and tb.text == "]":
            fns.append({"name": "<lambda>", "const": False,
                        "line": t.line, "open": idx,
                        "close": braces[idx]})
            continue
        if tb.kind != "id" or tb.text in CTRL_KEYWORDS:
            continue
        fns.append({"name": tb.text, "const": is_const,
                    "line": tb.line, "open": idx,
                    "close": braces[idx]})
    return fns


def find_structs(toks, braces):
    """[(name, open_idx, close_idx, line)] for struct/class blocks."""
    out = []
    for idx, t in enumerate(toks):
        if t.kind != "id" or t.text not in ("struct", "class"):
            continue
        if idx > 0 and toks[idx - 1].kind == "id" and \
                toks[idx - 1].text == "enum":
            continue  # enum class: constants are not fields
        if idx + 1 >= len(toks) or toks[idx + 1].kind != "id":
            continue
        name = toks[idx + 1].text
        k = idx + 2
        while k < len(toks) and toks[k].text not in \
                ("{", ";", "(", ")", "="):
            k += 1
        if k < len(toks) and toks[k].text == "{" and k in braces:
            out.append((name, k, braces[k], toks[idx + 1].line))
    return out


FIELD_SKIP_LEAD = {"using", "typedef", "static", "friend", "template",
                   "operator", "public", "private", "protected",
                   "struct", "class", "enum", "union", "explicit",
                   "virtual", "constexpr", "inline"}


def struct_fields(toks, braces, open_idx, close_idx):
    """Field declarations directly inside a struct block.

    Returns [(name, line, type_tokens, initialized)]. Member
    functions (any run containing '(') and nested types are skipped;
    a brace or '=' initializer marks the field initialized.
    """
    fields = []
    run = []
    i = open_idx + 1
    while i < close_idx:
        t = toks[i]
        if t.kind == "punct" and t.text == "{":
            close = braces.get(i, close_idx)
            if any(x.kind == "punct" and x.text == "(" for x in run) \
                    or (run and run[0].kind == "id" and
                        run[0].text in FIELD_SKIP_LEAD):
                run = []  # method body / nested type: not a field
            else:
                run.append(t)  # brace initializer
            i = close + 1
            continue
        if t.kind == "punct" and t.text == ";":
            if run:
                fields.append(run)
            run = []
            i += 1
            continue
        run.append(t)
        i += 1

    out = []
    for run in fields:
        if run[0].kind == "id" and run[0].text in FIELD_SKIP_LEAD:
            continue
        if any(x.kind == "punct" and x.text == "(" for x in run):
            continue  # function declaration
        name_idx = None
        for k, x in enumerate(run):
            if x.kind == "punct" and x.text in ("=", "{", "[", ":"):
                break
            if x.kind == "id":
                name_idx = k
        if name_idx is None:
            continue
        initialized = any(
            x.kind == "punct" and x.text in ("=", "{") for x in run)
        out.append((run[name_idx].text, run[name_idx].line,
                    run[:name_idx], initialized))
    return out


# --- per-file model --------------------------------------------------

SIG_BEGIN_RE = re.compile(r"BEGIN signal-handler-context")
SIG_END_RE = re.compile(r"END signal-handler-context")


class FileModel:
    """Tokens plus the structural facts every rule consumes."""

    def __init__(self, path, text):
        self.path = path
        self.lines = text.splitlines()
        self.toks, self.comments = tokenize(text)
        self.braces = match_pairs(self.toks, "{", "}")
        self.parens = match_pairs(self.toks, "(", ")")
        self.functions = find_functions(self.toks, self.braces,
                                        self.parens)
        self.structs = find_structs(self.toks, self.braces)
        self.signal_regions = self._signal_regions()

    def _signal_regions(self):
        regions, start = [], None
        for line, ctext in self.comments:
            if SIG_BEGIN_RE.search(ctext):
                start = line
            elif SIG_END_RE.search(ctext) and start is not None:
                regions.append((start, line))
                start = None
        if start is not None:
            regions.append((start, len(self.lines) + 1))
        return regions

    def in_signal_region(self, line):
        return any(a < line < b for a, b in self.signal_regions)

    def excerpt(self, line):
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def allowed(self, line, rule):
        return allowed(self.lines, line - 1, rule)


# --- determinism rules (token engine) --------------------------------

UNORDERED = {"unordered_map", "unordered_set", "unordered_multimap",
             "unordered_multiset"}
ORDERED = {"map", "set", "multimap", "multiset"}


def skip_angles(toks, i):
    """i indexes '<'; return the index just past the matching '>'."""
    depth = 0
    while i < len(toks):
        t = toks[i]
        if t.kind == "punct":
            if t.text == "<":
                depth += 1
            elif t.text == "<<":
                depth += 2
            elif t.text == ">":
                depth -= 1
                if depth == 0:
                    return i + 1
            elif t.text == ">>":
                depth -= 2
                if depth <= 0:
                    return i + 1
            elif t.text in (";", "{"):
                return i  # not a template argument list after all
        i += 1
    return i


def unordered_names(model):
    """Names declared with an unordered container type."""
    names = set()
    toks = model.toks
    for i, t in enumerate(toks):
        if t.kind != "id" or t.text not in UNORDERED:
            continue
        if i + 1 >= len(toks) or toks[i + 1].text != "<":
            continue
        j = skip_angles(toks, i + 1)
        if j < len(toks) and toks[j].kind == "id" and \
                j + 1 < len(toks) and toks[j + 1].text in \
                (";", "=", "{", ","):
            names.add(toks[j].text)
    return names


def rule_unordered_iteration(model, report):
    hot = unordered_names(model)
    if not hot:
        return
    toks = model.toks
    for i, t in enumerate(toks):
        if t.kind == "id" and t.text in hot:
            # NAME.begin( / NAME->begin(
            if i + 2 < len(toks) and toks[i + 1].text in (".", "->") \
                    and toks[i + 2].text == "begin":
                if not model.allowed(t.line, "unordered-iteration"):
                    report(model.path, t.line, "unordered-iteration",
                           model.excerpt(t.line))
            # for ( ... : [&] NAME )
            if i + 1 < len(toks) and toks[i + 1].text == ")":
                k = i - 1
                if k >= 0 and toks[k].text in ("&", "*"):
                    k -= 1
                if k >= 0 and toks[k].text == ":":
                    if not model.allowed(t.line,
                                         "unordered-iteration"):
                        report(model.path, t.line,
                               "unordered-iteration",
                               model.excerpt(t.line))


ENTROPY_CALLS = {"rand", "srand", "gettimeofday"}
ENTROPY_CHRONO = {"system_clock", "high_resolution_clock"}


def rule_ambient_entropy(model, report):
    toks = model.toks

    def flag(line):
        if not model.allowed(line, "ambient-entropy"):
            report(model.path, line, "ambient-entropy",
                   model.excerpt(line))

    for i, t in enumerate(toks):
        if t.kind != "id":
            continue
        prev = toks[i - 1] if i > 0 else None
        member = prev is not None and prev.kind == "punct" and \
            prev.text in (".", "->")
        # A call never follows a type name; `unsigned rand()` is a
        # (questionable but different) declaration, not a use.
        decl = prev is not None and prev.kind == "id" and \
            prev.text not in ("return", "co_return", "case", "else",
                              "do", "goto")
        nxt = toks[i + 1] if i + 1 < len(toks) else None
        calls = nxt is not None and nxt.text == "(" and not decl
        if t.text in ENTROPY_CALLS and calls and not member:
            flag(t.line)
        elif t.text == "time" and calls and not member:
            # time(), time(NULL), time(nullptr), time(0)
            arg = toks[i + 2] if i + 2 < len(toks) else None
            close = toks[i + 3] if i + 3 < len(toks) else None
            if arg is not None and (
                    arg.text == ")" or
                    (arg.text in ("NULL", "nullptr", "0") and
                     close is not None and close.text == ")")):
                flag(t.line)
        elif t.text == "clock" and calls and not member:
            arg = toks[i + 2] if i + 2 < len(toks) else None
            if arg is not None and arg.text == ")":
                flag(t.line)
        elif t.text == "random_device":
            flag(t.line)
        elif t.text in ENTROPY_CHRONO and prev is not None and \
                prev.text == "::":
            flag(t.line)


def rule_pointer_keyed_order(model, report):
    toks = model.toks
    for i, t in enumerate(toks):
        if t.kind != "id" or t.text not in ORDERED:
            continue
        if i < 2 or toks[i - 1].text != "::" or \
                toks[i - 2].text != "std":
            continue
        if i + 1 >= len(toks) or toks[i + 1].text != "<":
            continue
        # Scan the first template argument (the key type).
        depth, j = 0, i + 1
        star = False
        while j < len(toks):
            x = toks[j]
            if x.kind == "punct":
                if x.text == "<":
                    depth += 1
                elif x.text in (">", ">>"):
                    depth -= 2 if x.text == ">>" else 1
                    if depth <= 0:
                        break
                elif x.text == "," and depth == 1:
                    break
                elif x.text == "*" and depth == 1:
                    star = True
                elif x.text in (";", "{"):
                    break
            j += 1
        if star and not model.allowed(t.line, "pointer-keyed-order"):
            report(model.path, t.line, "pointer-keyed-order",
                   model.excerpt(t.line))


def rule_unconditional_tick(model, report):
    toks = model.toks
    for i, t in enumerate(toks):
        if t.kind != "id" or t.text != "for":
            continue
        if i + 1 >= len(toks) or toks[i + 1].text != "(" or \
                (i + 1) not in model.parens:
            continue
        close = model.parens[i + 1]
        inner = toks[i + 2:close]
        if not any(x.kind == "punct" and x.text == ":"
                   for x in inner) or \
                any(x.kind == "punct" and x.text == ";"
                    for x in inner):
            continue  # not a range-for
        k = close + 1
        if k < len(toks) and toks[k].text == "{":
            k += 1
        if k + 3 < len(toks) and toks[k].kind == "id" and \
                toks[k + 1].text in (".", "->") and \
                toks[k + 2].text == "tick" and \
                toks[k + 3].text == "(":
            if not model.allowed(t.line, "unconditional-tick"):
                report(model.path, t.line, "unconditional-tick",
                       model.excerpt(t.line))


# --- signal-handler-context rule (token engine) ----------------------

UNSAFE_CALLS = {"malloc", "calloc", "realloc", "free",
                "printf", "fprintf", "sprintf", "snprintf", "puts",
                "fputs", "fopen", "fclose", "fwrite", "fread",
                "fflush", "perror", "syslog",
                "exit", "quick_exit", "abort"}
UNSAFE_STD = {"cout", "cerr", "clog", "string", "ostringstream",
              "stringstream", "to_string", "stoi", "stoul", "stoull",
              "vector", "function", "mutex", "lock_guard",
              "unique_lock", "scoped_lock", "condition_variable"}


def rule_signal_unsafe(model, report):
    if not model.signal_regions:
        return
    toks = model.toks

    def flag(line):
        if not model.allowed(line, "signal-unsafe"):
            report(model.path, line, "signal-unsafe",
                   model.excerpt(line))

    for i, t in enumerate(toks):
        if not model.in_signal_region(t.line) or t.kind != "id":
            continue
        prev = toks[i - 1] if i > 0 else None
        member = prev is not None and prev.kind == "punct" and \
            prev.text in (".", "->")
        nxt = toks[i + 1] if i + 1 < len(toks) else None
        if t.text in ("new", "delete", "throw"):
            flag(t.line)
        elif t.text in UNSAFE_CALLS and not member and \
                nxt is not None and nxt.text == "(":
            flag(t.line)
        elif t.text in UNSAFE_STD and prev is not None and \
                prev.text == "::" and i >= 2 and \
                toks[i - 2].text == "std":
            flag(t.line)


# --- missing-field-init (token engine) -------------------------------

INIT_STRUCT_RE = re.compile(
    r"(Packet|Flit|Config|Params|Fields|Shape)$")
SCALAR_QUALS = {"mutable", "const", "volatile", "unsigned", "signed",
                "long", "short"}
SCALAR_NAMES = {"bool", "char", "short", "int", "long", "unsigned",
                "float", "double", "size_t",
                "uint8_t", "uint16_t", "uint32_t", "uint64_t",
                "int8_t", "int16_t", "int32_t", "int64_t",
                "ptrdiff_t",
                "Cycle", "Addr", "NodeId", "ThreadId", "OneHot",
                "MsgType"}


def scalar_type(type_toks):
    """Do the pre-name tokens spell a scalar (or scalar-pointer)?"""
    core = []
    for t in type_toks:
        if t.kind == "id" and t.text in SCALAR_QUALS:
            continue
        if t.kind == "id" and t.text == "std":
            continue
        if t.kind == "punct" and t.text in ("::", "*"):
            continue
        core.append(t)
    if not core:
        # e.g. `unsigned x;` -- the qualifiers alone name the type.
        return any(t.kind == "id" and t.text in
                   ("unsigned", "signed", "long", "short", "const",
                    "mutable") for t in type_toks)
    return len(core) == 1 and core[0].kind == "id" and \
        core[0].text in SCALAR_NAMES


def rule_missing_field_init(model, report):
    for name, sopen, sclose, _ in model.structs:
        if not INIT_STRUCT_RE.search(name):
            continue
        for fname, fline, type_toks, initialized in \
                struct_fields(model.toks, model.braces, sopen,
                              sclose):
            if initialized or not scalar_type(type_toks):
                continue
            if not model.allowed(fline, "missing-field-init"):
                report(model.path, fline, "missing-field-init",
                       model.excerpt(fline))


# --- protocol-contract rules (structural engine) ---------------------

MUTATING_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
                "<<=", ">>="}


def member_like(toks, idx):
    """toks[idx] names a member: trailing-underscore convention or
    an explicit this-> access."""
    t = toks[idx]
    if t.kind != "id":
        return False
    if t.text.endswith("_"):
        return True
    return idx >= 2 and toks[idx - 1].text == "->" and \
        toks[idx - 2].text == "this"


def rule_nextwake_impure(model, report):
    toks = model.toks
    for fn in model.functions:
        if fn["name"] != "nextWake":
            continue
        if not fn["const"]:
            if not model.allowed(fn["line"], "nextwake-impure"):
                report(model.path, fn["line"], "nextwake-impure",
                       model.excerpt(fn["line"]))
        for i in range(fn["open"] + 1, fn["close"]):
            t = toks[i]
            if t.kind != "punct":
                continue
            if t.text in MUTATING_OPS and t.text != "=":
                if i > 0 and member_like(toks, i - 1) and \
                        not model.allowed(t.line, "nextwake-impure"):
                    report(model.path, t.line, "nextwake-impure",
                           model.excerpt(t.line))
            elif t.text == "=":
                # Assignment, not comparison: the tokenizer already
                # folded ==/<=/>=/!= into single tokens.
                if i > 0 and member_like(toks, i - 1) and \
                        not model.allowed(t.line, "nextwake-impure"):
                    report(model.path, t.line, "nextwake-impure",
                           model.excerpt(t.line))
            elif t.text in ("++", "--"):
                for adj in (i - 1, i + 1):
                    if 0 <= adj < len(toks) and \
                            member_like(toks, adj):
                        if not model.allowed(t.line,
                                             "nextwake-impure"):
                            report(model.path, t.line,
                                   "nextwake-impure",
                                   model.excerpt(t.line))
                        break


def charge_sites(toks, lo, hi):
    """Token indexes of `counters.blockedIdleCycles` mutations."""
    sites = []
    for i in range(lo, hi):
        t = toks[i]
        if t.kind != "id" or t.text != "blockedIdleCycles":
            continue
        if i < 2 or toks[i - 1].text != "." or \
                toks[i - 2].text != "counters":
            continue
        nxt = toks[i + 1] if i + 1 < len(toks) else None
        if nxt is not None and nxt.kind == "punct" and \
                (nxt.text in MUTATING_OPS or nxt.text in
                 ("++", "--")):
            sites.append(i)
            continue
        # Prefix ++/--: walk back over the object path to the head.
        h = i - 2
        while h >= 2 and toks[h - 1].text in (".", "->"):
            h -= 2
        if h >= 1 and toks[h - 1].text in ("++", "--"):
            sites.append(i)
    return sites


def has_ledger_charge(toks, lo, hi):
    for i in range(lo, hi):
        t = toks[i]
        if t.kind != "id":
            continue
        if t.text == "chargeCohCauses":
            return True
        if t.text == "charge" and i >= 2 and \
                toks[i - 1].text in (".", "->") and \
                toks[i - 2].kind == "id" and \
                toks[i - 2].text.startswith("ledger"):
            return True
    return False


def rule_ledger_site(model, report):
    toks = model.toks
    for fn in model.functions:
        lo, hi = fn["open"] + 1, fn["close"]
        sites = charge_sites(toks, lo, hi)
        if not sites:
            continue
        if has_ledger_charge(toks, lo, hi):
            continue
        for i in sites:
            line = toks[i].line
            if not model.allowed(line, "ledger-site"):
                report(model.path, line, "ledger-site",
                       model.excerpt(line))


STATS_STRUCT_RE = re.compile(r"(Stats|Counters)$")


def stats_struct_fields(model):
    """[(struct, field, line, allowed)] for *Stats/*Counters."""
    out = []
    for name, sopen, sclose, _ in model.structs:
        if not STATS_STRUCT_RE.search(name):
            continue
        for fname, fline, _, _ in \
                struct_fields(model.toks, model.braces, sopen,
                              sclose):
            out.append((name, fname, fline,
                        model.allowed(fline, "stats-registration")))
    return out


REGISTER_FN_RE = re.compile(r"^register\w*Stats$")


def registered_identifiers(model):
    """All identifiers inside register*Stats() bodies (the stats
    walks: registerStats, registerWakeStats, ...)."""
    ids = set()
    for fn in model.functions:
        if not REGISTER_FN_RE.match(fn["name"]):
            continue
        for i in range(fn["open"] + 1, fn["close"]):
            if model.toks[i].kind == "id":
                ids.add(model.toks[i].text)
    return ids


def check_stats_registration(per_file_fields, registered, report):
    """Cross-file pass: a partially registered stats struct must be
    fully registered. Structs with no registered field at all are
    out of scope (they aggregate through other paths, e.g. the
    result-cache merges ThreadCounters structurally)."""
    by_struct = {}
    for path, rows in per_file_fields:
        for sname, fname, fline, allow in rows:
            by_struct.setdefault((path, sname), []).append(
                (fname, fline, allow))
    for (path, sname), rows in sorted(by_struct.items()):
        names = {f for f, _, _ in rows}
        if not names & registered:
            continue
        for fname, fline, allow in rows:
            if fname in registered or allow:
                continue
            report(path, fline, "stats-registration",
                   f"{sname}::{fname} is never registered")


# --- optional libclang engine ---------------------------------------

def try_libclang(paths):
    """AST versions of two rules when python-clang is installed.

    Returns None when the bindings are unavailable (the common case
    in this repo's container); callers then rely on the tokenizer
    engine alone. Findings are (path, line, rule, excerpt) tuples.
    """
    try:
        from clang import cindex  # noqa: F401
    except ImportError:
        return None

    from clang.cindex import CursorKind, Index

    findings = []
    index = Index.create()
    for path in paths:
        if not path.endswith((".cc", ".cpp", ".cxx")):
            continue
        tu = index.parse(path, args=["-std=c++20", "-I", "src"])
        for cur in tu.cursor.walk_preorder():
            if str(cur.location.file) != path:
                continue
            if cur.kind == CursorKind.CXX_FOR_RANGE_STMT:
                children = list(cur.get_children())
                if children and "unordered_" in (
                        children[-2].type.spelling
                        if len(children) >= 2 else ""):
                    findings.append(
                        (path, cur.location.line,
                         "unordered-iteration", cur.spelling or ""))
            if cur.kind == CursorKind.FIELD_DECL:
                parent = cur.semantic_parent
                if parent is None or not re.search(
                        r"(Packet|Flit|Config|Params|Fields|Shape)$",
                        parent.spelling or ""):
                    continue
                if cur.type.get_canonical().kind.name in (
                        "BOOL", "INT", "UINT", "ULONG", "LONG",
                        "FLOAT", "DOUBLE", "POINTER", "ENUM",
                        "UCHAR", "CHAR_S", "USHORT", "SHORT",
                        "ULONGLONG", "LONGLONG"):
                    toks = " ".join(
                        t.spelling for t in cur.get_tokens())
                    if "=" not in toks and "{" not in toks:
                        findings.append(
                            (path, cur.location.line,
                             "missing-field-init", toks))
    return findings


# --- driver ----------------------------------------------------------

PER_FILE_RULES = (
    rule_unordered_iteration,
    rule_ambient_entropy,
    rule_pointer_keyed_order,
    rule_unconditional_tick,
    rule_signal_unsafe,
    rule_missing_field_init,
    rule_nextwake_impure,
    rule_ledger_site,
)


def collect(roots):
    files = []
    for root in roots:
        if os.path.isfile(root):
            files.append(root)
            continue
        if not os.path.isdir(root):
            print(f"simlint: no such file or directory: {root}",
                  file=sys.stderr)
            sys.exit(2)
        matched = []
        for dirpath, _, names in os.walk(root):
            for name in sorted(names):
                if name.endswith(CXX_EXT):
                    matched.append(os.path.join(dirpath, name))
        if not matched:
            # An empty lint run must not report green: CI pointing
            # at a renamed directory would silently check nothing.
            print(f"simlint: no C++ sources under: {root}",
                  file=sys.stderr)
            sys.exit(2)
        files += matched
    return sorted(set(files))


def main(argv):
    args = argv[1:]
    if "--list-rules" in args:
        for rule, what in RULES.items():
            print(f"{rule:22} {what}")
        return 0
    if not args:
        print(__doc__.strip().splitlines()[2], file=sys.stderr)
        return 2

    findings = []

    def report(path, lineno, rule, excerpt):
        findings.append((path, lineno, rule, excerpt))

    files = collect(args)
    stats_rows = []
    registered = set()
    for path in files:
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
        model = FileModel(path, text)
        for rule in PER_FILE_RULES:
            rule(model, report)
        stats_rows.append((path, stats_struct_fields(model)))
        registered |= registered_identifiers(model)

    check_stats_registration(stats_rows, registered, report)

    ast = try_libclang(files)
    if ast:
        known = {(p, ln, r) for p, ln, r, _ in findings}
        findings += [f for f in ast if f[:3] not in known]

    for path, lineno, rule, excerpt in sorted(set(findings)):
        print(f"{path}:{lineno}: [{rule}] {RULES[rule]}")
        print(f"    {excerpt[:100]}")
    n = len(set(findings))
    print(f"simlint: {len(files)} files, "
          f"{n} finding{'s' if n != 1 else ''}")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
