#!/usr/bin/env python3
"""Determinism and robustness lint for the OCOR simulator sources.

Usage: simlint.py [--list-rules] DIR_OR_FILE...

The simulator must be bit-reproducible: two runs with the same
configuration and seed produce identical metrics, traces and stats
(ROADMAP tier-1 property, enforced by the determinism tests). The
classic ways C++ code silently breaks that are iterating an unordered
container into simulation-visible state, consuming ambient entropy
(wall clock, rand(), random_device), and ordering on raw pointer
values, all of which vary run to run. This linter flags those
patterns, plus uninitialized scalar fields in the POD-style structs
(packets, flits, configs) whose value-initialization the simulator
relies on.

Rules (suppress one occurrence with a `simlint: allow(<rule>)`
comment on the same or the preceding line):

  unordered-iteration   range-for or .begin() iteration over a
                        container declared std::unordered_* in the
                        same file. Hash-table order is
                        implementation- and run-dependent; iterate a
                        sorted mirror (std::map/std::set) or sort the
                        results instead.
  ambient-entropy       rand()/srand()/random_device/time()/
                        gettimeofday/clock()/system_clock/
                        high_resolution_clock. Simulation randomness
                        must come from the seeded common/rng.hh
                        stream. (steady_clock is tolerated: it is the
                        documented convention for host wall-time
                        profiling, which never feeds sim state.)
  pointer-keyed-order   std::map/std::set keyed by a raw pointer
                        type. Heap addresses differ across runs, so
                        any iteration order leaks nondeterminism.
  missing-field-init    scalar field without a default initializer in
                        a struct named *Packet/*Flit/*Config/
                        *Params/*Fields/*Shape. These structs are
                        created ad hoc all over the codebase; a field
                        someone forgets to set must read 0, not
                        stack garbage.
  unconditional-tick    range-for whose body ticks every element of a
                        component container unconditionally
                        (`x->tick(now)` with no guard). The simulator
                        is event-driven (DESIGN.md §13): a per-cycle
                        for-all-components loop silently re-introduces
                        the O(components) cost the event core removes.
                        Gate the call on `nextWake() <= now` (see
                        System::tickEvent) or schedule through the
                        event wheel; the legacy exact path carries
                        explicit allow annotations.
  signal-unsafe         non-async-signal-safe call (malloc/stdio/
                        iostream/string/mutex/exit/throw...) inside a
                        region bracketed by `// BEGIN
                        signal-handler-context` and `// END
                        signal-handler-context`. Code in such a region
                        runs from the crash-dump signal handler
                        (DESIGN.md §12), where POSIX allows only the
                        async-signal-safe subset: raw write()/open()/
                        close(), lock-free atomics and hand-rolled
                        formatting. Anything that may take a lock or
                        allocate can deadlock a dying process.

When the libclang python bindings are importable the
unordered-iteration and missing-field-init rules run on the AST
(fewer false negatives: typedefs and autos resolve); otherwise the
regex engine below is authoritative. The container image for this
repo has no libclang, so the regex path is the one CI exercises.

Exit status: 0 when clean, 1 when any finding is reported, 2 on
usage errors.
"""

import os
import re
import sys

CXX_EXT = (".hh", ".cc", ".cpp", ".hpp", ".cxx")

RULES = {
    "unordered-iteration":
        "iteration over an unordered container (hash order is not "
        "deterministic)",
    "ambient-entropy":
        "ambient entropy source; use the seeded common/rng.hh stream",
    "pointer-keyed-order":
        "ordered container keyed by a raw pointer (address order "
        "varies per run)",
    "missing-field-init":
        "scalar struct field without a default initializer",
    "unconditional-tick":
        "per-cycle for-all-components tick loop (defeats the "
        "event-driven core's gating; guard on nextWake() <= now)",
    "signal-unsafe":
        "non-async-signal-safe call inside a signal-handler-context "
        "region",
}

ALLOW_RE = re.compile(r"simlint:\s*allow\(([a-z-]+)\)")

# --- regex engine ----------------------------------------------------

# `std::unordered_map<...> name` / `std::unordered_set<...> name_;`
UNORDERED_DECL_RE = re.compile(
    r"\bstd::unordered_(?:multi)?(?:map|set)\s*<")
DECL_NAME_RE = re.compile(r">\s*\n?\s*(\w+)\s*[;={]")

ENTROPY_RE = re.compile(
    r"\b(?:s?rand\s*\(|std::random_device|gettimeofday\s*\(|"
    r"\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\)|clock\s*\(\s*\)|"
    r"std::chrono::(?:system_clock|high_resolution_clock))")

POINTER_KEY_RE = re.compile(
    r"\bstd::(?:map|set|multimap|multiset)\s*<[^,>]*\*")

# Range-for over a container; group 3 is any body on the same line.
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;)]*:[^)]*\)\s*(.*)$")

# First body statement that ticks an element with no guard around it.
# `tickEvent(` deliberately does not match: that is the gated entry
# point (it performs its own per-component due checks).
TICK_CALL_RE = re.compile(r"^\s*\{?\s*\w+(?:->|\.)tick\s*\(")

# Signal-handler-context region markers (crash-dump handler code).
SIG_BEGIN_RE = re.compile(r"//\s*BEGIN signal-handler-context")
SIG_END_RE = re.compile(r"//\s*END signal-handler-context")

# The POSIX async-signal-safe list is a whitelist; flagging every
# call outside it needs a type-aware engine, so this rule blacklists
# the calls that actually appear in crash handlers in the wild:
# allocation, stdio/iostream formatting, std::string construction,
# locks, exceptions, and process-exit routines that run atexit hooks.
SIGNAL_UNSAFE_RE = re.compile(
    r"\b(?:malloc|calloc|realloc|free)\s*\(|"
    r"\bnew\s+[A-Za-z_]|\bdelete\s|"
    r"\b(?:printf|fprintf|sprintf|snprintf|puts|fputs|fopen|fclose|"
    r"fwrite|fread|fflush|perror|syslog)\s*\(|"
    r"\bstd::(?:cout|cerr|clog|string\b|ostringstream|stringstream|"
    r"to_string|stoi|stoul|stoull|vector|function|"
    r"mutex|lock_guard|unique_lock|scoped_lock|condition_variable)|"
    r"\bthrow\s|"
    r"\b(?:exit|abort|quick_exit)\s*\(")

STRUCT_RE = re.compile(
    r"^\s*struct\s+(\w*(?:Packet|Flit|Config|Params|Fields|Shape))"
    r"\s*(?::[^{]*)?(\{?)\s*$")

# Scalar types whose fields must carry `= ...` or `{...}`.
SCALAR_TYPE = (
    r"(?:bool|char|short|int|long|unsigned|float|double|"
    r"std::u?int(?:8|16|32|64)_t|std::size_t|std::ptrdiff_t|"
    r"Cycle|Addr|NodeId|ThreadId|OneHot|MsgType|size_t)")
FIELD_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:const\s+)?"
    r"(?:unsigned\s+|signed\s+|long\s+|short\s+)*"
    rf"{SCALAR_TYPE}(?:\s+|\s*\*\s*)(\w+)\s*;\s*(?://.*|/\*.*)?$")


def allowed(lines, idx, rule):
    """A `simlint: allow(rule)` on this or the preceding line."""
    for i in (idx, idx - 1):
        if i < 0:
            continue
        m = ALLOW_RE.search(lines[i])
        if m and m.group(1) == rule:
            return True
    return False


def unordered_names(text):
    """Names declared as unordered containers in this file."""
    names = set()
    for m in UNORDERED_DECL_RE.finditer(text):
        # Scan forward past the (possibly nested) template argument
        # list to the declared name.
        depth, i = 0, m.end() - 1
        while i < len(text):
            if text[i] == "<":
                depth += 1
            elif text[i] == ">":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        tail = text[i:i + 120]
        dm = re.match(r">\s*(\w+)\s*[;={]", tail)
        if dm:
            names.add(dm.group(1))
    return names


def lint_file(path, report):
    with open(path, encoding="utf-8", errors="replace") as f:
        text = f.read()
    lines = text.splitlines()
    hot = unordered_names(text)

    iter_res = []
    for name in hot:
        iter_res.append(re.compile(
            rf"for\s*\([^;)]*:\s*&?\s*{re.escape(name)}\s*\)"))
        iter_res.append(re.compile(rf"\b{re.escape(name)}\.begin\s*\("))

    struct_depth = None  # brace depth inside a matched struct
    pending_struct = None
    in_signal_ctx = False

    for idx, line in enumerate(lines):
        lineno = idx + 1
        stripped = line.strip()
        if SIG_BEGIN_RE.search(line):
            in_signal_ctx = True
            continue
        if SIG_END_RE.search(line):
            in_signal_ctx = False
            continue
        if stripped.startswith("//") or stripped.startswith("*"):
            continue

        if in_signal_ctx and SIGNAL_UNSAFE_RE.search(line) \
                and not allowed(lines, idx, "signal-unsafe"):
            report(path, lineno, "signal-unsafe", stripped)

        for rx in iter_res:
            if rx.search(line) and not allowed(
                    lines, idx, "unordered-iteration"):
                report(path, lineno, "unordered-iteration", stripped)

        if ENTROPY_RE.search(line) and not allowed(
                lines, idx, "ambient-entropy"):
            report(path, lineno, "ambient-entropy", stripped)

        if POINTER_KEY_RE.search(line) and not allowed(
                lines, idx, "pointer-keyed-order"):
            report(path, lineno, "pointer-keyed-order", stripped)

        fm_for = RANGE_FOR_RE.search(line)
        if fm_for and not allowed(lines, idx, "unconditional-tick"):
            body = fm_for.group(1)
            if not body:
                # Body starts on a following line; skip blanks,
                # comments and a lone opening brace to the first
                # statement.
                j = idx + 1
                while j < len(lines):
                    nxt = lines[j].strip()
                    if nxt and nxt != "{" \
                            and not nxt.startswith("//") \
                            and not nxt.startswith("*"):
                        body = nxt
                        break
                    j += 1
            if body and TICK_CALL_RE.match(body):
                report(path, lineno, "unconditional-tick", stripped)

        # --- struct field tracking ---------------------------------
        sm = STRUCT_RE.match(line)
        if sm and struct_depth is None:
            if sm.group(2) == "{":
                struct_depth = 1
            else:
                pending_struct = True
            continue
        if pending_struct:
            if "{" in line:
                struct_depth, pending_struct = 1, None
            elif stripped and not stripped.startswith(":"):
                pending_struct = None  # forward declaration etc.
            continue
        if struct_depth is not None:
            struct_depth += line.count("{") - line.count("}")
            if struct_depth <= 0:
                struct_depth = None
                continue
            if struct_depth == 1:
                fm = FIELD_RE.match(line)
                if fm and not allowed(
                        lines, idx, "missing-field-init"):
                    report(path, lineno, "missing-field-init",
                           stripped)


# --- optional libclang engine ---------------------------------------

def try_libclang(paths):
    """AST versions of two rules when python-clang is installed.

    Returns None when the bindings are unavailable (the common case
    in this repo's container); callers then rely on the regex engine
    alone. Findings are (path, line, rule, excerpt) tuples.
    """
    try:
        from clang import cindex  # noqa: F401
    except ImportError:
        return None

    from clang.cindex import CursorKind, Index

    findings = []
    index = Index.create()
    for path in paths:
        if not path.endswith((".cc", ".cpp", ".cxx")):
            continue
        tu = index.parse(path, args=["-std=c++20", "-I", "src"])
        for cur in tu.cursor.walk_preorder():
            if str(cur.location.file) != path:
                continue
            if cur.kind == CursorKind.CXX_FOR_RANGE_STMT:
                children = list(cur.get_children())
                if children and "unordered_" in (
                        children[-2].type.spelling
                        if len(children) >= 2 else ""):
                    findings.append(
                        (path, cur.location.line,
                         "unordered-iteration", cur.spelling or ""))
            if cur.kind == CursorKind.FIELD_DECL:
                parent = cur.semantic_parent
                if parent is None or not re.search(
                        r"(Packet|Flit|Config|Params|Fields|Shape)$",
                        parent.spelling or ""):
                    continue
                if cur.type.get_canonical().kind.name in (
                        "BOOL", "INT", "UINT", "ULONG", "LONG",
                        "FLOAT", "DOUBLE", "POINTER", "ENUM",
                        "UCHAR", "CHAR_S", "USHORT", "SHORT",
                        "ULONGLONG", "LONGLONG"):
                    toks = " ".join(
                        t.spelling for t in cur.get_tokens())
                    if "=" not in toks and "{" not in toks:
                        findings.append(
                            (path, cur.location.line,
                             "missing-field-init", toks))
    return findings


# --- driver ----------------------------------------------------------

def collect(roots):
    files = []
    for root in roots:
        if os.path.isfile(root):
            files.append(root)
            continue
        if not os.path.isdir(root):
            print(f"simlint: no such file or directory: {root}",
                  file=sys.stderr)
            sys.exit(2)
        for dirpath, _, names in os.walk(root):
            for name in sorted(names):
                if name.endswith(CXX_EXT):
                    files.append(os.path.join(dirpath, name))
    return sorted(files)


def main(argv):
    args = argv[1:]
    if "--list-rules" in args:
        for rule, what in RULES.items():
            print(f"{rule:22} {what}")
        return 0
    if not args:
        print(__doc__.strip().splitlines()[2], file=sys.stderr)
        return 2

    findings = []

    def report(path, lineno, rule, excerpt):
        findings.append((path, lineno, rule, excerpt))

    files = collect(args)
    for path in files:
        lint_file(path, report)

    ast = try_libclang(files)
    if ast:
        known = {(p, ln, r) for p, ln, r, _ in findings}
        findings += [f for f in ast if f[:3] not in known]

    for path, lineno, rule, excerpt in sorted(findings):
        print(f"{path}:{lineno}: [{rule}] {RULES[rule]}")
        print(f"    {excerpt[:100]}")
    n = len(findings)
    print(f"simlint: {len(files)} files, "
          f"{n} finding{'s' if n != 1 else ''}")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
