#!/bin/bash
# Bit-identity smoke for the event-driven simulation core
# (DESIGN.md §13): run two full-suite figure benches once on the
# legacy per-cycle core and once on the event core — exact fidelity,
# fresh caches — and require byte-identical stdout. The figures print
# every headline metric (COH reduction, spin-win rates, CS shares)
# across all 25 profiles, so a single cycle of divergence anywhere in
# the 50 underlying simulations shows up as a diff.
#
# Usage: check_event_identity.sh [build-dir] [extra bench flags...]
#   (default build dir: ../build relative to this script)
set -euo pipefail

BUILD="$(dirname "$(readlink -f "$0")")/../build"
if [ $# -gt 0 ] && [ -d "$1" ]; then
    BUILD="$1"
    shift
fi
cd "$BUILD"

FLAGS=(--quick --iters 2 --jobs "${OCOR_JOBS:-$(nproc)}" --fresh "$@")

status=0
for bench in fig11_coh fig13_cs_time; do
    echo "== $bench: legacy core vs event core =="
    # --legacy-tick wins over any OCOR_SIM_CORE in the environment;
    # the event run pins the env var so an inherited "legacy" cannot
    # turn the comparison into legacy-vs-legacy.
    ./bench/"$bench" "${FLAGS[@]}" --legacy-tick \
        > "event_identity_${bench}_legacy.out"
    OCOR_SIM_CORE=event ./bench/"$bench" "${FLAGS[@]}" \
        > "event_identity_${bench}_event.out"
    if diff -u "event_identity_${bench}_legacy.out" \
              "event_identity_${bench}_event.out"; then
        echo "identical ($(wc -l \
            < "event_identity_${bench}_event.out") lines)"
    else
        echo "error: $bench stdout differs between cores" >&2
        status=1
    fi
done

if [ "$status" -eq 0 ]; then
    echo "event core is bit-identical to the legacy core on both" \
         "figures"
fi
exit "$status"
