#!/usr/bin/env python3
"""Validate the observability artifacts of a traced simulation run.

Usage: check_observability.py [trace.json] [stats.json] [telemetry.csv]

Checks that the trace is well-formed Chrome trace-event JSON, that
stats.json carries the required hierarchical keys with sane percentile
ordering, and that the telemetry CSV has the documented shape. Exits
non-zero (with a message) on the first violation; CI runs this after
the traced smoke simulation.
"""

import json
import sys


def fail(msg):
    print(f"check_observability: {msg}", file=sys.stderr)
    sys.exit(1)


def check_trace(path):
    with open(path) as f:
        events = json.load(f)
    if not isinstance(events, list) or not events:
        fail(f"{path}: expected a non-empty event array")
    for ev in events:
        for key in ("name", "ph", "pid"):
            if key not in ev:
                fail(f"{path}: event missing '{key}': {ev}")
    phases = {ev["ph"] for ev in events}
    # A traced contended run always records critical sections
    # (duration slices) and instants, plus the metadata header.
    for ph in ("M", "B", "E", "i"):
        if ph not in phases:
            fail(f"{path}: no '{ph}' events (got {sorted(phases)})")
    print(f"{path}: OK ({len(events)} events)")


def check_stats(path):
    with open(path) as f:
        stats = json.load(f)
    required = [
        "system.net.packets_delivered",
        "system.net.packet_latency",
        "system.net.packet_latency_hist",
        "system.router0.sa_grants",
        "system.ni0.packets_injected",
        "system.lockmgr0.grants",
        "system.lockmgr0.handover_latency_hist",
        "system.thread0.acquisitions",
        "system.trace.emitted",
    ]
    missing = [k for k in required if k not in stats]
    if missing:
        fail(f"{path}: missing required keys {missing}")
    hist = stats["system.net.packet_latency_hist"]
    if not hist["p50"] <= hist["p95"] <= hist["p99"]:
        fail(f"{path}: packet-latency percentiles out of order: "
             f"{hist['p50']}/{hist['p95']}/{hist['p99']}")
    if hist["count"] <= 0:
        fail(f"{path}: packet-latency histogram is empty")
    # The trace ring silently overwrites its oldest events once full;
    # an artifact produced from a saturated ring is incomplete, so CI
    # must size the ring up (trace.capacity) rather than ship it.
    dropped = stats.get("system.trace.dropped", 0)
    if dropped > 0:
        fail(f"{path}: trace ring dropped {int(dropped)} events; "
             "the exported trace is incomplete (raise the ring "
             "capacity or narrow the traced categories)")
    # A checked run that recorded violations must never pass CI even
    # if a custom handler kept it alive to the export.
    violations = stats.get("system.check.violations", 0)
    if violations > 0:
        fail(f"{path}: {int(violations)} invariant-checker "
             "violations recorded")
    check_coh_ledger(path, stats)
    check_wake(path, stats)
    check_windows(path, stats)
    print(f"{path}: OK ({len(stats)} entries)")


COH_CAUSES = ["transfer", "arbitration", "backoff", "sleep",
              "grant_gap"]
WAKE_GROUPS = ["network", "l1", "l2", "lockmgr", "mc", "qspin",
               "core"]


def check_coh_ledger(path, stats):
    """COH-cause ledger (DESIGN.md §14): present under --coh-ledger.

    The cause split must cover the COH exactly — both the ledger's
    own summary and the per-thread counters it mirrors.
    """
    if "sim.coh.total_cycles" not in stats:
        return
    total = stats["sim.coh.total_cycles"]
    causes = {}
    for c in COH_CAUSES:
        key = f"sim.coh.cause.{c}"
        if key not in stats:
            fail(f"{path}: ledger present but '{key}' missing")
        causes[c] = stats[key]
        if causes[c] < 0:
            fail(f"{path}: {key} is negative ({causes[c]})")
    if sum(causes.values()) != total:
        fail(f"{path}: COH causes sum to {sum(causes.values())} but "
             f"sim.coh.total_cycles is {total}")

    # The per-thread mirror: Σ coh_*_cycles == Σ blocked_idle_cycles
    # == the ledger total (the causes are charged at the same
    # accounting sites that charge blocked-idle).
    thread_coh = 0.0
    thread_idle = 0.0
    for k, v in stats.items():
        if not k.startswith("system.thread"):
            continue
        if k.endswith(".blocked_idle_cycles"):
            thread_idle += v
        elif ".coh_" in k and k.endswith("_cycles"):
            thread_coh += v
    if thread_coh != thread_idle:
        fail(f"{path}: per-thread COH causes sum to {thread_coh} "
             f"but blocked-idle cycles sum to {thread_idle}")
    if thread_idle != total:
        fail(f"{path}: ledger total {total} != per-thread "
             f"blocked-idle total {thread_idle}")
    if stats.get("sim.coh.locks", 0) < 1 and total > 0:
        fail(f"{path}: {total} COH cycles attributed but no per-lock "
             "ledger entries")
    print(f"{path}: COH ledger OK ({int(total)} cycles over "
          f"{len(COH_CAUSES)} causes)")


def check_wake(path, stats):
    """Wake profiler (--wake-profile): sane per-group counters."""
    if "sim.wake.cycles_profiled" not in stats:
        return
    cycles = stats["sim.wake.cycles_profiled"]
    if cycles <= 0:
        fail(f"{path}: sim.wake.* present but no cycles profiled")
    for g in WAKE_GROUPS:
        wakes = stats.get(f"sim.wake.{g}.wakes", 0)
        wasted = stats.get(f"sim.wake.{g}.wasted", 0)
        if wakes < 0 or wasted < 0:
            fail(f"{path}: negative wake counter for group '{g}'")
        if wasted > wakes:
            fail(f"{path}: group '{g}' has more wasted wakes "
                 f"({wasted}) than wakes ({wakes})")
        if wakes > cycles:
            fail(f"{path}: group '{g}' woke {wakes} times in "
                 f"{cycles} profiled cycles")
    print(f"{path}: wake profile OK ({int(cycles)} cycles)")


def check_windows(path, stats):
    """Hybrid fast-path windows: close causes must cover the closes."""
    opened = stats.get("system.net.window.opened")
    if opened is None:
        return
    closed = stats.get("system.net.window.closed", 0)
    cycles = stats.get("system.net.window.cycles", 0)
    causes = sum(stats.get(f"system.net.window.close_{c}", 0)
                 for c in ("waiter", "lock", "load"))
    if causes != closed:
        fail(f"{path}: window close causes sum to {causes} but "
             f"{closed} windows closed")
    if closed > opened:
        fail(f"{path}: {closed} windows closed but only {opened} "
             "opened")
    if opened > 0 and cycles <= 0:
        fail(f"{path}: windows opened but zero window cycles")
    print(f"{path}: hybrid windows OK ({int(opened)} opened)")


def check_telemetry(path):
    with open(path) as f:
        header = f.readline().strip()
        if header != "cycle,kind,index,value":
            fail(f"{path}: bad header '{header}'")
        kinds = set()
        rows = 0
        for line in f:
            cycle, kind, index, value = line.strip().split(",")
            int(cycle), int(index), float(value)
            kinds.add(kind)
            rows += 1
    expected = {"router_occupancy", "link_util", "thread_seg"}
    if kinds != expected:
        fail(f"{path}: kinds {sorted(kinds)} != {sorted(expected)}")
    if rows == 0:
        fail(f"{path}: no telemetry rows")
    print(f"{path}: OK ({rows} rows)")


def main(argv):
    trace = argv[1] if len(argv) > 1 else "trace.json"
    stats = argv[2] if len(argv) > 2 else "stats.json"
    telemetry = argv[3] if len(argv) > 3 else "telemetry.csv"
    check_trace(trace)
    check_stats(stats)
    check_telemetry(telemetry)
    print("observability artifacts OK")


if __name__ == "__main__":
    main(sys.argv)
