#!/usr/bin/env python3
"""Validate the observability artifacts of a traced simulation run.

Usage: check_observability.py [trace.json] [stats.json] [telemetry.csv]

Checks that the trace is well-formed Chrome trace-event JSON, that
stats.json carries the required hierarchical keys with sane percentile
ordering, and that the telemetry CSV has the documented shape. Exits
non-zero (with a message) on the first violation; CI runs this after
the traced smoke simulation.
"""

import json
import sys


def fail(msg):
    print(f"check_observability: {msg}", file=sys.stderr)
    sys.exit(1)


def check_trace(path):
    with open(path) as f:
        events = json.load(f)
    if not isinstance(events, list) or not events:
        fail(f"{path}: expected a non-empty event array")
    for ev in events:
        for key in ("name", "ph", "pid"):
            if key not in ev:
                fail(f"{path}: event missing '{key}': {ev}")
    phases = {ev["ph"] for ev in events}
    # A traced contended run always records critical sections
    # (duration slices) and instants, plus the metadata header.
    for ph in ("M", "B", "E", "i"):
        if ph not in phases:
            fail(f"{path}: no '{ph}' events (got {sorted(phases)})")
    print(f"{path}: OK ({len(events)} events)")


def check_stats(path):
    with open(path) as f:
        stats = json.load(f)
    required = [
        "system.net.packets_delivered",
        "system.net.packet_latency",
        "system.net.packet_latency_hist",
        "system.router0.sa_grants",
        "system.ni0.packets_injected",
        "system.lockmgr0.grants",
        "system.lockmgr0.handover_latency_hist",
        "system.thread0.acquisitions",
        "system.trace.emitted",
    ]
    missing = [k for k in required if k not in stats]
    if missing:
        fail(f"{path}: missing required keys {missing}")
    hist = stats["system.net.packet_latency_hist"]
    if not hist["p50"] <= hist["p95"] <= hist["p99"]:
        fail(f"{path}: packet-latency percentiles out of order: "
             f"{hist['p50']}/{hist['p95']}/{hist['p99']}")
    if hist["count"] <= 0:
        fail(f"{path}: packet-latency histogram is empty")
    # The trace ring silently overwrites its oldest events once full;
    # an artifact produced from a saturated ring is incomplete, so CI
    # must size the ring up (trace.capacity) rather than ship it.
    dropped = stats.get("system.trace.dropped", 0)
    if dropped > 0:
        fail(f"{path}: trace ring dropped {int(dropped)} events; "
             "the exported trace is incomplete (raise the ring "
             "capacity or narrow the traced categories)")
    # A checked run that recorded violations must never pass CI even
    # if a custom handler kept it alive to the export.
    violations = stats.get("system.check.violations", 0)
    if violations > 0:
        fail(f"{path}: {int(violations)} invariant-checker "
             "violations recorded")
    print(f"{path}: OK ({len(stats)} entries)")


def check_telemetry(path):
    with open(path) as f:
        header = f.readline().strip()
        if header != "cycle,kind,index,value":
            fail(f"{path}: bad header '{header}'")
        kinds = set()
        rows = 0
        for line in f:
            cycle, kind, index, value = line.strip().split(",")
            int(cycle), int(index), float(value)
            kinds.add(kind)
            rows += 1
    expected = {"router_occupancy", "link_util", "thread_seg"}
    if kinds != expected:
        fail(f"{path}: kinds {sorted(kinds)} != {sorted(expected)}")
    if rows == 0:
        fail(f"{path}: no telemetry rows")
    print(f"{path}: OK ({rows} rows)")


def main(argv):
    trace = argv[1] if len(argv) > 1 else "trace.json"
    stats = argv[2] if len(argv) > 2 else "stats.json"
    telemetry = argv[3] if len(argv) > 3 else "telemetry.csv"
    check_trace(trace)
    check_stats(stats)
    check_telemetry(telemetry)
    print("observability artifacts OK")


if __name__ == "__main__":
    main(sys.argv)
