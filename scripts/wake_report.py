#!/usr/bin/env python3
"""Render a wake-attribution report from a stats-registry dump.

Usage: wake_report.py [stats.json]

Reads the "sim.wake.*" keys written by a --wake-profile run (see
DESIGN.md §14) and prints, per component group: total wakes, wasted
wakes (the group ticked but its progress signature did not move), and
the wasted share. Follows with the dominant wasted group — the
coalescing target — the strongest wake-reason edges (which group's
activity keeps rescheduling which other group), and the network
group's nextWake() reason split.

Exits non-zero if the dump has no sim.wake.* keys (run the bench with
--wake-profile and --fresh: cached runs are recalled, not simulated,
so they contribute no wake samples).
"""

import json
import sys

GROUPS = ["network", "l1", "l2", "lockmgr", "mc", "qspin", "core"]


def fail(msg):
    print(f"wake_report: {msg}", file=sys.stderr)
    sys.exit(1)


def main(argv):
    path = argv[1] if len(argv) > 1 else "stats.json"
    with open(path) as f:
        stats = json.load(f)

    if "sim.wake.cycles_profiled" not in stats:
        fail(f"{path}: no sim.wake.* keys; run the bench with "
             "--wake-profile --fresh to collect wake samples")

    cycles = int(stats["sim.wake.cycles_profiled"])
    # Aggregate dumps carry a run count; a single live Simulator's
    # registry (e.g. fig10's) is one run by definition.
    runs = int(stats.get("sim.wake.runs", 1))
    print(f"wake attribution: {runs} profiled run(s), "
          f"{cycles} processed cycle(s)")
    print()

    wakes = {g: int(stats.get(f"sim.wake.{g}.wakes", 0))
             for g in GROUPS}
    wasted = {g: int(stats.get(f"sim.wake.{g}.wasted", 0))
              for g in GROUPS}
    total_wakes = sum(wakes.values())
    total_wasted = sum(wasted.values())

    print(f"{'group':<10} {'wakes':>12} {'wasted':>12} "
          f"{'wasted%':>8} {'share-of-wasted':>16}")
    for g in sorted(GROUPS, key=lambda g: -wasted[g]):
        w, x = wakes[g], wasted[g]
        pct = 100.0 * x / w if w else 0.0
        share = 100.0 * x / total_wasted if total_wasted else 0.0
        print(f"{g:<10} {w:>12} {x:>12} {pct:>7.1f}% "
              f"{share:>15.1f}%")
    print(f"{'total':<10} {total_wakes:>12} {total_wasted:>12}")
    print()

    if total_wasted:
        top = max(GROUPS, key=lambda g: wasted[g])
        share = 100.0 * wasted[top] / total_wasted
        print(f"dominant wasted group: {top} "
              f"({wasted[top]}/{total_wasted} = {share:.1f}% of all "
              "wasted wakes) — coalesce or sharpen this group's "
              "nextWake() first")
    else:
        print("no wasted wakes recorded: every wake moved a progress "
              "signature")
    print()

    # Wake-reason edges: who keeps whom awake. edges[from][to] counts
    # cycles where `to`'s scheduled wake moved while `from` ticked.
    edges = []
    for src in GROUPS:
        for dst in GROUPS:
            n = int(stats.get(f"sim.wake.edge.{src}.{dst}", 0))
            if n:
                edges.append((n, src, dst))
    edges.sort(reverse=True)
    if edges:
        print("top wake-reason edges (ticking group -> rescheduled "
              "group):")
        for n, src, dst in edges[:10]:
            tag = " (self)" if src == dst else ""
            print(f"  {src:>8} -> {dst:<8} {n:>12}{tag}")
        print()

    reasons = {k.rsplit(".", 1)[1]: int(v)
               for k, v in stats.items()
               if k.startswith("sim.wake.net_reason.")}
    total_r = sum(reasons.values())
    if total_r:
        print("network nextWake() reason split:")
        for name, n in sorted(reasons.items(), key=lambda kv: -kv[1]):
            print(f"  {name:<12} {n:>12} ({100.0 * n / total_r:.1f}%)")


if __name__ == "__main__":
    main(sys.argv)
