/**
 * @file
 * Example: use the NoC substrate directly (no caches, no OS) as a
 * standalone network simulator — uniform-random traffic sweep that
 * reports average packet latency vs offered load, with and without
 * a stream of prioritized lock packets cutting through.
 *
 *   ./noc_traffic [max_load_percent]
 */

#include <cstdio>
#include <cstdlib>

#include "common/rng.hh"
#include "noc/network.hh"

using namespace ocor;

namespace
{

struct LoadPoint
{
    double offered;   ///< packets/node/cycle
    double dataLat;
    double lockLat;
    std::uint64_t delivered;
};

LoadPoint
runLoad(double rate, bool with_lock_stream, bool ocor_on)
{
    MeshShape mesh{8, 8};
    NocParams params;
    OcorConfig ocor;
    ocor.enabled = ocor_on;
    OcorConfig stamping;
    stamping.enabled = true;

    Network net(mesh, params, ocor);
    for (NodeId n = 0; n < mesh.numNodes(); ++n)
        net.setNodeSink(n, [](const PacketPtr &, Cycle) {});

    Rng rng(12345);
    const Cycle cycles = 20000;
    for (Cycle c = 0; c < cycles; ++c) {
        for (NodeId n = 0; n < mesh.numNodes(); ++n) {
            if (!rng.chance(rate))
                continue;
            NodeId dst = static_cast<NodeId>(
                rng.range(mesh.numNodes()));
            if (dst == n)
                continue;
            // 30% single-flit control, 70% 8-flit data (coherence
            // mix): approximates the simulator's traffic.
            auto type = rng.chance(0.3) ? MsgType::GetS
                                        : MsgType::Data;
            net.send(makePacket(type, n, dst, 0x80 * c), c);
        }
        // One node runs a lock hot spot: node 0 receives a
        // prioritized LockTry stream from node 63.
        if (with_lock_stream && c % 50 == 0) {
            auto pkt = makePacket(MsgType::LockTry, 63, 0, 0x1000);
            pkt->priority = makePriority(
                stamping, PriorityClass::LockTry, 1, 0);
            net.send(pkt, c);
        }
        net.tick(c);
    }

    LoadPoint p;
    p.offered = rate;
    p.dataLat = net.stats().dataPacketLatency.mean();
    p.lockLat = net.stats().lockPacketLatency.mean();
    p.delivered = net.stats().packetsDelivered;
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    double max_load = argc > 1 ? std::atof(argv[1]) / 100.0 : 0.06;
    std::printf("8x8 mesh, uniform random traffic + prioritized "
                "lock stream from node 63 to node 0\n\n");
    std::printf("%-8s | %-25s | %-25s\n", "",
                "baseline router", "OCOR priority router");
    std::printf("%-8s | %10s %12s | %10s %12s\n", "load",
                "data lat", "lock lat", "data lat", "lock lat");
    for (double rate = 0.01; rate <= max_load + 1e-9; rate += 0.01) {
        LoadPoint base = runLoad(rate, true, false);
        LoadPoint ocor = runLoad(rate, true, true);
        std::printf("%-8.2f | %10.1f %12.1f | %10.1f %12.1f\n",
                    rate, base.dataLat, base.lockLat, ocor.dataLat,
                    ocor.lockLat);
    }
    std::printf("\nExpected: with OCOR the lock-packet latency stays "
                "near the zero-load latency\nwhile data latency "
                "climbs with congestion; the baseline treats both "
                "alike.\n");
    return 0;
}
