/**
 * @file
 * Example: explore OCOR's design space on one benchmark — priority
 * level count and rule selection — the knobs a system architect
 * would tune before committing the hardware budget.
 *
 *   ./priority_tuning [benchmark] [threads]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/experiment.hh"

using namespace ocor;

namespace
{

double
cohImprovement(const BenchmarkProfile &profile,
               const ExperimentConfig &base_exp,
               const OcorConfig &ocor)
{
    ExperimentConfig exp = base_exp;
    exp.ocorOverrideSet = true;
    exp.ocorOverride = ocor;
    BenchmarkResult r = runComparison(profile, exp);
    return r.cohImprovementPct();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "can";
    unsigned threads = argc > 2
        ? static_cast<unsigned>(std::atoi(argv[2]))
        : 16;

    BenchmarkProfile profile = profileByName(name);
    ExperimentConfig exp;
    exp.threads = threads;
    exp.iterationsOverride = 4;

    std::printf("OCOR design-space exploration on '%s' "
                "(%u threads)\n\n", name.c_str(), threads);

    std::printf("priority levels sweep (hardware cost: levels+1 "
                "one-hot bits per packet):\n");
    for (unsigned levels : {1u, 2u, 4u, 8u, 16u}) {
        OcorConfig ocor;
        ocor.numRtrLevels = levels;
        std::printf("  %2u levels (%2u header bits): COH reduction "
                    "%5.1f%%\n", levels, levels + 1,
                    cohImprovement(profile, exp, ocor));
    }

    std::printf("\nrule selection:\n");
    {
        OcorConfig full;
        std::printf("  all four rules:            %5.1f%%\n",
                    cohImprovement(profile, exp, full));
        OcorConfig no_rtr;
        no_rtr.ruleLeastRtrFirst = false;
        std::printf("  without Least-RTR-First:   %5.1f%%\n",
                    cohImprovement(profile, exp, no_rtr));
        OcorConfig no_wl;
        no_wl.ruleWakeupLast = false;
        std::printf("  without Wakeup-Last:       %5.1f%%\n",
                    cohImprovement(profile, exp, no_wl));
        OcorConfig no_prog;
        no_prog.ruleSlowProgressFirst = false;
        std::printf("  without Slow-Progress:     %5.1f%%\n",
                    cohImprovement(profile, exp, no_prog));
    }

    std::printf("\nTakeaway: 8 levels capture nearly all of the "
                "benefit (Figure 16), and the\nlock-first + "
                "least-RTR + wakeup-last combination carries the "
                "mechanism.\n");
    return 0;
}
