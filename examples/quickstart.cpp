/**
 * @file
 * Quickstart: build a 64-core CMP, run one contended-lock workload
 * with the original queue spinlock and with OCOR, and print the
 * competition-overhead comparison.
 *
 *   ./quickstart [benchmark-name] [threads]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/experiment.hh"

using namespace ocor;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "body";
    unsigned threads = argc > 2
        ? static_cast<unsigned>(std::atoi(argv[2]))
        : 64;

    BenchmarkProfile profile = profileByName(name);
    ExperimentConfig exp;
    exp.threads = threads;

    std::printf("benchmark %s (%s, CS rate %s, net util %s), "
                "%u threads\n",
                profile.name.c_str(), profile.suite.c_str(),
                profile.highCsRate ? "high" : "low",
                profile.highNetUtil ? "high" : "low", threads);

    BenchmarkResult r = runComparison(profile, exp);

    auto show = [&](const char *label, const RunMetrics &m) {
        std::printf("  %-8s ROI %9llu cycles | COH %5.1f%% | "
                    "CS %4.1f%% | spin wins %5.1f%% | sleeps %llu\n",
                    label,
                    static_cast<unsigned long long>(m.roiFinish),
                    m.cohPct(), m.csPct(), m.spinWinPct(),
                    static_cast<unsigned long long>(m.totalSleeps()));
    };
    show("Original", r.base);
    show("OCOR", r.ocor);
    std::printf("  COH reduction %.1f%% | ROI improvement %.1f%% | "
                "spin-win gain %+.1f pts\n",
                r.cohImprovementPct(), r.roiImprovementPct(),
                r.spinWinImprovementPts());
    return 0;
}
