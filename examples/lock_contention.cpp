/**
 * @file
 * Example: build a custom contended workload by hand with the
 * ProgramBuilder API and inspect per-thread behaviour.
 *
 * Sixteen threads on a 4x4 CMP hammer one lock with different
 * compute grains (a pipeline-like imbalance); the example prints a
 * per-thread breakdown — acquisitions, spin vs sleep wins, blocking
 * decomposition — under the original queue spinlock and under OCOR.
 *
 *   ./lock_contention [iterations]
 */

#include <cstdio>
#include <cstdlib>

#include "sim/simulator.hh"

using namespace ocor;

namespace
{

std::vector<Program>
buildWorkload(unsigned threads, unsigned iterations)
{
    std::vector<Program> programs;
    for (unsigned t = 0; t < threads; ++t) {
        ProgramBuilder b;
        for (unsigned i = 0; i < iterations; ++i) {
            // Imbalanced parallel phases: thread t computes longer.
            b.compute(2000 + 400 * t);
            b.lock(0);
            b.load(0x8000'0000);      // shared state
            b.store(0x8000'0000);
            b.compute(120);
            b.unlock(0);
        }
        programs.push_back(b.build());
    }
    return programs;
}

void
run(bool ocor_on, unsigned iterations)
{
    SystemConfig cfg;
    cfg.mesh = MeshShape{4, 4};
    cfg.numThreads = 16;
    cfg.ocor.enabled = ocor_on;

    BgTrafficConfig bg;
    bg.rate = 0.02;

    Simulator sim(cfg, buildWorkload(16, iterations), bg);
    RunMetrics m = sim.run();

    std::printf("\n=== %s ===\n",
                ocor_on ? "OCOR" : "original queue spinlock");
    std::printf("ROI finish: %llu cycles | COH %.1f%% | spin wins "
                "%.1f%%\n",
                static_cast<unsigned long long>(m.roiFinish),
                m.cohPct(), m.spinWinPct());
    std::printf("%-4s %6s %5s %6s %10s %10s %9s\n", "tid", "acq",
                "spin", "sleep", "blocked", "COH", "compute");
    for (ThreadId t = 0; t < 16; ++t) {
        const ThreadCounters &c = m.perThread[t];
        std::printf("t%-3u %6llu %5llu %6llu %10llu %10llu %9llu\n",
                    t,
                    static_cast<unsigned long long>(c.acquisitions),
                    static_cast<unsigned long long>(c.spinWins),
                    static_cast<unsigned long long>(c.sleepWins),
                    static_cast<unsigned long long>(
                        c.blockedHeldCycles + c.blockedIdleCycles),
                    static_cast<unsigned long long>(
                        c.blockedIdleCycles),
                    static_cast<unsigned long long>(
                        c.computeCycles));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned iterations = argc > 1
        ? static_cast<unsigned>(std::atoi(argv[1]))
        : 5;
    std::printf("hand-built contended workload: 16 threads, one hot "
                "lock, %u iterations each\n", iterations);
    run(false, iterations);
    run(true, iterations);
    return 0;
}
