/**
 * @file
 * Unit tests for the deterministic PRNG.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"

using namespace ocor;

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(Rng, RangeBounds)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        auto v = r.range(17);
        EXPECT_LT(v, 17u);
    }
}

TEST(Rng, RangeZeroIsZero)
{
    Rng r(7);
    EXPECT_EQ(r.range(0), 0u);
}

TEST(Rng, RangeOneIsZero)
{
    Rng r(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(r.range(1), 0u);
}

TEST(Rng, BetweenInclusive)
{
    Rng r(3);
    bool lo_seen = false, hi_seen = false;
    for (int i = 0; i < 20000; ++i) {
        auto v = r.between(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        lo_seen |= v == 5;
        hi_seen |= v == 8;
    }
    EXPECT_TRUE(lo_seen);
    EXPECT_TRUE(hi_seen);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(11);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
        EXPECT_FALSE(r.chance(-1.0));
        EXPECT_TRUE(r.chance(2.0));
    }
}

TEST(Rng, ChanceFrequency)
{
    Rng r(17);
    int hits = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        hits += r.chance(0.25) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Rng, NextEventGapMeanMatchesRate)
{
    Rng r(19);
    const double p = 0.02;
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(r.nextEventGap(p));
    // Geometric mean 1/p = 50.
    EXPECT_NEAR(sum / n, 50.0, 3.0);
}

TEST(Rng, NextEventGapZeroRateIsHuge)
{
    Rng r(23);
    EXPECT_GT(r.nextEventGap(0.0), std::uint64_t{1} << 60);
}

TEST(Rng, NextEventGapFullRateIsOne)
{
    Rng r(29);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(r.nextEventGap(1.0), 1u);
}
