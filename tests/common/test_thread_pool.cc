/**
 * @file
 * Unit tests for the worker pool behind the parallel experiment
 * engine.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <future>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.hh"

using namespace ocor;

TEST(ThreadPool, RunReturnsValuesInSubmissionOrder)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    std::vector<std::future<int>> futs;
    for (int i = 0; i < 64; ++i)
        futs.push_back(pool.run([i] { return i * i; }));
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(futs[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPool, DestructorRunsQueuedTasks)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 100; ++i)
            pool.submit([&count] {
                count.fetch_add(1, std::memory_order_relaxed);
            });
    } // join-on-destruction: every queued task still runs
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WorkersRunConcurrently)
{
    // Two tasks that can only both finish if they run on distinct
    // worker threads at the same time.
    ThreadPool pool(2);
    std::mutex mu;
    std::condition_variable cv;
    int arrived = 0;
    auto rendezvous = [&] {
        std::unique_lock<std::mutex> lock(mu);
        ++arrived;
        cv.notify_all();
        cv.wait(lock, [&] { return arrived == 2; });
        return arrived;
    };
    auto a = pool.run(rendezvous);
    auto b = pool.run(rendezvous);
    EXPECT_EQ(a.get(), 2);
    EXPECT_EQ(b.get(), 2);
}

TEST(ThreadPool, ExceptionsTravelThroughFuture)
{
    ThreadPool pool(1);
    auto fut = pool.run(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(fut.get(), std::runtime_error);
    // The worker survives the throwing task.
    EXPECT_EQ(pool.run([] { return 7; }).get(), 7);
}

TEST(ThreadPool, BusyTimeAndTaskCountsAccumulate)
{
    ThreadPool pool(2);
    EXPECT_EQ(pool.tasksExecuted(), 0u);
    EXPECT_EQ(pool.totalBusyNs(), 0u);

    std::vector<std::future<int>> futs;
    for (int i = 0; i < 16; ++i)
        futs.push_back(pool.run([] {
            // Enough work for steady_clock to register nonzero time.
            volatile int x = 0;
            for (int k = 0; k < 200000; ++k)
                x = x + k;
            return static_cast<int>(x);
        }));
    for (auto &f : futs)
        f.get();

    EXPECT_EQ(pool.tasksExecuted(), 16u);
    EXPECT_GT(pool.totalBusyNs(), 0u);
    // The total is exactly the sum of the per-worker counters.
    std::uint64_t sum = 0;
    for (unsigned w = 0; w < pool.size(); ++w)
        sum += pool.busyNs(w);
    EXPECT_EQ(sum, pool.totalBusyNs());
}

TEST(ThreadPool, DefaultConcurrencyHonorsEnv)
{
    ::setenv("OCOR_JOBS", "3", 1);
    EXPECT_EQ(ThreadPool::defaultConcurrency(), 3u);
    ::setenv("OCOR_JOBS", "0", 1); // non-positive -> fall through
    EXPECT_GE(ThreadPool::defaultConcurrency(), 1u);
    ::unsetenv("OCOR_JOBS");
    EXPECT_GE(ThreadPool::defaultConcurrency(), 1u);
    ThreadPool pool(0); // 0 = defaultConcurrency()
    EXPECT_GE(pool.size(), 1u);
}
