/**
 * @file
 * Unit tests for one-hot priority coding.
 */

#include <gtest/gtest.h>

#include "common/onehot.hh"

using namespace ocor;

TEST(OneHot, EncodeDecodeRoundTrip)
{
    for (unsigned level = 0; level < 64; ++level) {
        OneHot v = onehotEncode(level);
        EXPECT_TRUE(onehotValid(v));
        EXPECT_EQ(onehotDecode(v), level);
    }
}

TEST(OneHot, ValidRejectsZero)
{
    EXPECT_FALSE(onehotValid(0));
}

TEST(OneHot, ValidRejectsMultipleBits)
{
    EXPECT_FALSE(onehotValid(0b11));
    EXPECT_FALSE(onehotValid(0b101000));
    EXPECT_FALSE(onehotValid(~OneHot{0}));
}

TEST(OneHot, HighestOfMask)
{
    EXPECT_EQ(onehotHighest(0), 0u);
    EXPECT_EQ(onehotHighest(0b1), OneHot{1});
    EXPECT_EQ(onehotHighest(0b1011), OneHot{0b1000});
    EXPECT_EQ(onehotHighest(OneHot{1} << 63 | 1),
              OneHot{1} << 63);
}

TEST(OneHot, HighestIsIdempotentOnValid)
{
    for (unsigned level = 0; level < 64; ++level) {
        OneHot v = onehotEncode(level);
        EXPECT_EQ(onehotHighest(v), v);
    }
}

TEST(OneHotDeath, EncodeOutOfRangePanics)
{
    EXPECT_DEATH(onehotEncode(64), "one-hot");
}

TEST(OneHotDeath, DecodeInvalidPanics)
{
    EXPECT_DEATH(onehotDecode(0), "one-hot");
    EXPECT_DEATH(onehotDecode(0b110), "one-hot");
}
