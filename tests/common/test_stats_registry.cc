/**
 * @file
 * Unit tests for the hierarchical stats registry: registration,
 * name ordering, the scalar test hook and the JSON dump.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/stats_registry.hh"

using namespace ocor;

TEST(StatsRegistry, NamesComeBackSorted)
{
    std::uint64_t a = 1, b = 2, c = 3;
    StatsRegistry reg;
    reg.addScalar("system.router1.flits", &b);
    reg.addScalar("system.net.packets", &a);
    reg.addScalar("system.router10.flits", &c);
    std::vector<std::string> names = reg.names();
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "system.net.packets");
    // Lexicographic, not numeric: router10 sorts before router1x.
    EXPECT_EQ(names[1], "system.router1.flits");
    EXPECT_EQ(names[2], "system.router10.flits");
    EXPECT_TRUE(reg.has("system.net.packets"));
    EXPECT_FALSE(reg.has("system.net.nope"));
    EXPECT_EQ(reg.size(), 3u);
}

TEST(StatsRegistry, ScalarReadsLiveValues)
{
    std::uint64_t counter = 5;
    double knob = 1.5;
    StatsRegistry reg;
    reg.addScalar("c", &counter);
    reg.addScalarFn("f", [&knob] { return knob * 2; });
    EXPECT_EQ(reg.scalar("c"), 5.0);
    EXPECT_EQ(reg.scalar("f"), 3.0);
    // The registry holds pointers: later mutation is visible.
    counter = 9;
    knob = 2.0;
    EXPECT_EQ(reg.scalar("c"), 9.0);
    EXPECT_EQ(reg.scalar("f"), 4.0);
}

TEST(StatsRegistryDeath, DuplicateAndEmptyNamesPanic)
{
    std::uint64_t v = 0;
    StatsRegistry reg;
    reg.addScalar("x", &v);
    EXPECT_DEATH(reg.addScalar("x", &v), "x");
    EXPECT_DEATH(reg.addScalar("", &v), "empty");
}

TEST(StatsRegistryDeath, ScalarOnUnknownNamePanics)
{
    StatsRegistry reg;
    EXPECT_DEATH((void)reg.scalar("missing"), "missing");
}

TEST(StatsRegistry, JsonDumpCoversEveryKind)
{
    std::uint64_t counter = 7;
    SampleStat sample;
    sample.sample(2.0);
    sample.sample(4.0);
    Histogram hist(1.0, 4);
    hist.sample(0.5);
    hist.sample(100.0); // overflow

    StatsRegistry reg;
    reg.addScalar("a.counter", &counter);
    reg.addScalarFn("b.fn", [] { return 0.5; });
    reg.addSample("c.sample", &sample);
    reg.addHistogram("d.hist", &hist);

    std::ostringstream os;
    reg.dumpJson(os);
    std::string s = os.str();
    EXPECT_EQ(s.front(), '{');
    EXPECT_NE(s.find("\"a.counter\": 7"), std::string::npos);
    EXPECT_NE(s.find("\"b.fn\": 0.5"), std::string::npos);
    EXPECT_NE(s.find("\"c.sample\": {"), std::string::npos);
    EXPECT_NE(s.find("\"mean\":3"), std::string::npos);
    EXPECT_NE(s.find("\"p50\":"), std::string::npos);
    EXPECT_NE(s.find("\"p95\":"), std::string::npos);
    EXPECT_NE(s.find("\"p99\":"), std::string::npos);
    EXPECT_NE(s.find("\"overflow\":1"), std::string::npos);
    EXPECT_NE(s.find("\"buckets\":["), std::string::npos);

    // Dumps are deterministic: same registry, same bytes.
    std::ostringstream again;
    reg.dumpJson(again);
    EXPECT_EQ(s, again.str());
}
