/**
 * @file
 * Unit tests for the statistics primitives.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"

using namespace ocor;

TEST(SampleStat, EmptyIsZero)
{
    SampleStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
}

TEST(SampleStat, BasicMoments)
{
    SampleStat s;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        s.sample(v);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_DOUBLE_EQ(s.sum(), 10.0);
}

TEST(SampleStat, NegativeValues)
{
    SampleStat s;
    s.sample(-5.0);
    s.sample(5.0);
    EXPECT_DOUBLE_EQ(s.min(), -5.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(SampleStat, MergeCombines)
{
    SampleStat a, b;
    a.sample(1.0);
    a.sample(3.0);
    b.sample(10.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.max(), 10.0);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
}

TEST(SampleStat, MergeWithEmpty)
{
    SampleStat a, empty;
    a.sample(2.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 1u);

    SampleStat c;
    c.merge(a);
    EXPECT_EQ(c.count(), 1u);
    EXPECT_DOUBLE_EQ(c.mean(), 2.0);
}

TEST(SampleStat, Reset)
{
    SampleStat s;
    s.sample(1.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
}

TEST(Histogram, BucketsFill)
{
    Histogram h(10.0, 4); // [0,10) [10,20) [20,30) [30,40) +overflow
    h.sample(5.0);
    h.sample(15.0);
    h.sample(15.5);
    h.sample(100.0); // beyond the covered range: overflow bucket
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.buckets()[1], 2u);
    EXPECT_EQ(h.buckets()[2], 0u);
    EXPECT_EQ(h.buckets()[3], 0u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.stat().count(), 4u);
}

TEST(Histogram, NegativeClampsToFirst)
{
    Histogram h(1.0, 4);
    h.sample(-3.0);
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.overflow(), 0u);
}

TEST(Histogram, BoundaryGoesToOverflow)
{
    Histogram h(10.0, 2); // covers [0,20); 20.0 is out of range
    h.sample(20.0);
    EXPECT_EQ(h.buckets()[0], 0u);
    EXPECT_EQ(h.buckets()[1], 0u);
    EXPECT_EQ(h.overflow(), 1u);
}

TEST(Histogram, PercentileEmptyIsZero)
{
    Histogram h(1.0, 8);
    EXPECT_EQ(h.percentile(50.0), 0.0);
}

TEST(Histogram, PercentileOrderingAndBounds)
{
    Histogram h(1.0, 128);
    for (int i = 1; i <= 100; ++i)
        h.sample(static_cast<double>(i));
    double p50 = h.percentile(50.0);
    double p95 = h.percentile(95.0);
    double p99 = h.percentile(99.0);
    EXPECT_LE(p50, p95);
    EXPECT_LE(p95, p99);
    // Bucketed estimates stay within the observed range and land
    // near the exact order statistics.
    EXPECT_GE(p50, h.stat().min());
    EXPECT_LE(p99, h.stat().max());
    EXPECT_NEAR(p50, 50.0, 2.0);
    EXPECT_NEAR(p99, 99.0, 2.0);
    // Extremes clamp to the observed min / max.
    EXPECT_DOUBLE_EQ(h.percentile(0.0), h.stat().min());
    EXPECT_DOUBLE_EQ(h.percentile(100.0), h.stat().max());
}

TEST(Histogram, PercentileOverflowRegionReportsMax)
{
    Histogram h(1.0, 4); // covers [0,4)
    h.sample(1.0);
    h.sample(500.0); // overflow
    // The upper half of the mass lives in the overflow region, whose
    // only honest point estimate is the observed max.
    EXPECT_DOUBLE_EQ(h.percentile(99.0), 500.0);
}

TEST(Histogram, PercentileSingleSampleIsThatSample)
{
    Histogram h(64.0, 256);
    h.sample(42.0);
    // With one sample every percentile collapses to it (the min/max
    // clamp pins both ends of the interpolation).
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 42.0);
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 42.0);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 42.0);
}

TEST(Histogram, PercentileSingleBucketHistogram)
{
    // A degenerate one-bucket shape: everything below the width
    // lands in bucket 0, everything else overflows.
    Histogram h(10.0, 1);
    h.sample(2.0);
    h.sample(7.0);
    double p50 = h.percentile(50.0);
    EXPECT_GE(p50, 2.0);
    EXPECT_LE(p50, 7.0);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 7.0);
}

TEST(Histogram, PercentileOverflowOnlyReportsMax)
{
    // Every sample beyond the covered range: all ranks live in the
    // overflow region, whose only honest estimate is the max.
    Histogram h(1.0, 4);
    h.sample(100.0);
    h.sample(200.0);
    h.sample(300.0);
    EXPECT_EQ(h.overflow(), 3u);
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 300.0);
    EXPECT_DOUBLE_EQ(h.percentile(99.0), 300.0);
    // The floor still clamps to the observed min.
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 100.0);
}

TEST(Histogram, MergeDifferentlyPopulatedSameShape)
{
    // Merging an empty histogram is a no-op; merging into an empty
    // one adopts the other's distribution — both directions must
    // leave identical percentiles (the ledger merges per-lock wait
    // histograms that are often lopsided like this).
    Histogram empty(64.0, 256), full(64.0, 256);
    for (int i = 0; i < 100; ++i)
        full.sample(64.0 * i);

    Histogram a = full;
    a.merge(empty);
    EXPECT_EQ(a.stat().count(), full.stat().count());
    EXPECT_DOUBLE_EQ(a.percentile(95.0), full.percentile(95.0));

    Histogram b = empty;
    b.merge(full);
    EXPECT_EQ(b.stat().count(), full.stat().count());
    EXPECT_DOUBLE_EQ(b.percentile(50.0), full.percentile(50.0));
    EXPECT_DOUBLE_EQ(b.percentile(100.0), full.percentile(100.0));

    // Lopsided merge: lows into highs covers both tails.
    Histogram lo(64.0, 256), hi(64.0, 256);
    for (int i = 0; i < 50; ++i) {
        lo.sample(10.0);
        hi.sample(10'000.0);
    }
    lo.merge(hi);
    EXPECT_EQ(lo.stat().count(), 100u);
    EXPECT_LE(lo.percentile(25.0), 64.0);
    EXPECT_GE(lo.percentile(90.0), 9'000.0);
}

TEST(Histogram, MergeAddsCounts)
{
    Histogram a(10.0, 4), b(10.0, 4);
    a.sample(5.0);
    b.sample(5.0);
    b.sample(15.0);
    b.sample(999.0);
    a.merge(b);
    EXPECT_EQ(a.buckets()[0], 2u);
    EXPECT_EQ(a.buckets()[1], 1u);
    EXPECT_EQ(a.overflow(), 1u);
    EXPECT_EQ(a.stat().count(), 4u);
    EXPECT_DOUBLE_EQ(a.stat().max(), 999.0);
}

TEST(HistogramDeath, MergeShapeMismatchPanics)
{
    Histogram a(10.0, 4), b(5.0, 4), c(10.0, 8);
    EXPECT_DEATH(a.merge(b), "merge");
    EXPECT_DEATH(a.merge(c), "merge");
}

TEST(Helpers, Pct)
{
    EXPECT_DOUBLE_EQ(pct(1.0, 4.0), 25.0);
    EXPECT_DOUBLE_EQ(pct(1.0, 0.0), 0.0);
}

TEST(Helpers, Ratio)
{
    EXPECT_DOUBLE_EQ(ratio(1.0, 4.0), 0.25);
    EXPECT_DOUBLE_EQ(ratio(1.0, 0.0), 0.0);
}

TEST(Helpers, PctStr)
{
    EXPECT_EQ(pctStr(12.345), "12.3%");
    EXPECT_EQ(pctStr(12.345, 2), "12.35%");
    EXPECT_EQ(pctStr(0.0, 0), "0%");
}
