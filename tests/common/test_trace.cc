/**
 * @file
 * Unit tests for the event-tracing subsystem: category parsing, the
 * bounded ring buffer, per-node filtering and the export backends.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/trace.hh"

using namespace ocor;

namespace
{

TraceConfig
allCats(std::size_t capacity = 1024)
{
    TraceConfig cfg;
    cfg.categories = parseTraceCats("all");
    cfg.capacity = capacity;
    return cfg;
}

} // namespace

TEST(TraceCats, ParseSingleAndList)
{
    EXPECT_EQ(parseTraceCats("lock"), traceCatBit(TraceCat::Lock));
    EXPECT_EQ(parseTraceCats("noc"), traceCatBit(TraceCat::Noc));
    EXPECT_EQ(parseTraceCats("sim"), traceCatBit(TraceCat::Sim));
    EXPECT_EQ(parseTraceCats("lock,noc"),
              traceCatBit(TraceCat::Lock) | traceCatBit(TraceCat::Noc));
    EXPECT_EQ(parseTraceCats("all"),
              traceCatBit(TraceCat::Lock) | traceCatBit(TraceCat::Noc)
                  | traceCatBit(TraceCat::Sim));
}

TEST(TraceCatsDeath, UnknownNameAborts)
{
    EXPECT_DEATH((void)parseTraceCats("bogus"), "bogus");
}

TEST(TraceCats, EveryEventMapsToItsCategory)
{
    EXPECT_EQ(traceEvCat(TraceEv::LockAcquireStart), TraceCat::Lock);
    EXPECT_EQ(traceEvCat(TraceEv::LockHandover), TraceCat::Lock);
    EXPECT_EQ(traceEvCat(TraceEv::PktInject), TraceCat::Noc);
    EXPECT_EQ(traceEvCat(TraceEv::Retransmit), TraceCat::Noc);
    EXPECT_EQ(traceEvCat(TraceEv::RunBegin), TraceCat::Sim);
    EXPECT_EQ(traceEvCat(TraceEv::TelemetrySample), TraceCat::Sim);
}

TEST(Tracer, CategoryFilter)
{
    TraceConfig cfg;
    cfg.categories = traceCatBit(TraceCat::Lock);
    Tracer tr(cfg);
    EXPECT_TRUE(tr.wants(TraceCat::Lock, 0));
    EXPECT_FALSE(tr.wants(TraceCat::Noc, 0));
    tr.record(TraceCat::Noc, TraceEv::PktInject, 1, 0);
    tr.record(TraceCat::Lock, TraceEv::CsEnter, 2, 0, 0);
    EXPECT_EQ(tr.emitted(), 1u);
    ASSERT_EQ(tr.snapshot().size(), 1u);
    EXPECT_EQ(tr.snapshot()[0].ev, TraceEv::CsEnter);
}

TEST(Tracer, NodeFilter)
{
    TraceConfig cfg = allCats();
    cfg.nodeFilter = 3;
    Tracer tr(cfg);
    tr.record(TraceCat::Noc, TraceEv::PktInject, 1, 2);
    tr.record(TraceCat::Noc, TraceEv::PktInject, 1, 3);
    EXPECT_EQ(tr.emitted(), 1u);
    EXPECT_EQ(tr.snapshot()[0].node, 3u);
}

TEST(Tracer, RingOverwritesOldestAndCountsDrops)
{
    Tracer tr(allCats(4));
    for (Cycle c = 1; c <= 6; ++c)
        tr.record(TraceCat::Sim, TraceEv::TelemetrySample, c,
                  invalidNode);
    EXPECT_EQ(tr.emitted(), 6u);
    EXPECT_EQ(tr.dropped(), 2u);
    std::vector<TraceRecord> snap = tr.snapshot();
    ASSERT_EQ(snap.size(), 4u);
    // Oldest records fall off the front; the end of the run survives.
    for (std::size_t i = 0; i < snap.size(); ++i)
        EXPECT_EQ(snap[i].cycle, i + 3);
}

TEST(Tracer, ChromeJsonShape)
{
    Tracer tr(allCats());
    tr.record(TraceCat::Lock, TraceEv::CsEnter, 10, 1, 1, 0x1000);
    tr.record(TraceCat::Lock, TraceEv::CsExit, 25, 1, 1, 0x1000);
    tr.record(TraceCat::Noc, TraceEv::PktInject, 12, 5,
              invalidThread, 0, 42);
    std::ostringstream os;
    tr.exportChromeJson(os);
    std::string s = os.str();
    EXPECT_EQ(s.front(), '[');
    EXPECT_EQ(s.substr(s.size() - 2), "]\n");
    // CS enter/exit become a begin/end duration pair.
    EXPECT_NE(s.find("\"ph\":\"B\""), std::string::npos);
    EXPECT_NE(s.find("\"ph\":\"E\""), std::string::npos);
    // NoC events are instants in the noc process.
    EXPECT_NE(s.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(s.find("PktInject"), std::string::npos);
    // Process-name metadata for both pid groups.
    EXPECT_NE(s.find("process_name"), std::string::npos);
}

TEST(Tracer, CsvShape)
{
    Tracer tr(allCats());
    tr.record(TraceCat::Noc, TraceEv::SaGrant, 7, 4, invalidThread,
              0, 9, 1, 2);
    std::ostringstream os;
    tr.exportCsv(os);
    std::string s = os.str();
    EXPECT_EQ(s.rfind("cycle,cat,event,node,thread,addr,pkt,a0,a1\n",
                      0), 0u);
    // Packet id 9 is renumbered to 1 (first packet seen) on export.
    EXPECT_NE(s.find("7,noc,SaGrant,4,-,0,1,1,2"), std::string::npos);
}

TEST(Tracer, ExportsAreDeterministic)
{
    auto build = [] {
        Tracer tr(allCats(8)); // force wrap to cover that path too
        for (Cycle c = 1; c <= 20; ++c)
            tr.record(TraceCat::Lock, TraceEv::LockTrySent, c,
                      c % 4, c % 4, 0x2000, c, 8, 1);
        return tr;
    };
    Tracer a = build(), b = build();
    std::ostringstream ja, jb, ca, cb;
    a.exportChromeJson(ja);
    b.exportChromeJson(jb);
    a.exportCsv(ca);
    b.exportCsv(cb);
    EXPECT_EQ(ja.str(), jb.str());
    EXPECT_EQ(ca.str(), cb.str());
}
