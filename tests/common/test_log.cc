/**
 * @file
 * Unit tests for the logging/error helpers.
 */

#include <gtest/gtest.h>

#include "common/log.hh"

using namespace ocor;

TEST(Log, FormatvBasic)
{
    EXPECT_EQ(detail::formatv("x=%d y=%s", 3, "abc"), "x=3 y=abc");
}

TEST(Log, FormatvEmpty)
{
    EXPECT_EQ(detail::formatv("%s", ""), "");
}

TEST(Log, FormatvLongString)
{
    std::string big(1000, 'q');
    EXPECT_EQ(detail::formatv("%s", big.c_str()), big);
}

TEST(LogDeath, PanicAborts)
{
    EXPECT_DEATH(ocor_panic("boom %d", 42), "boom 42");
}

TEST(LogDeath, FatalExits)
{
    EXPECT_EXIT(ocor_fatal("bad config"),
                ::testing::ExitedWithCode(1), "bad config");
}

TEST(Log, LevelsOrdered)
{
    EXPECT_LT(static_cast<int>(LogLevel::Silent),
              static_cast<int>(LogLevel::Warn));
    EXPECT_LT(static_cast<int>(LogLevel::Warn),
              static_cast<int>(LogLevel::Inform));
}
