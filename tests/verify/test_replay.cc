/**
 * @file
 * Counterexample replay tests (DESIGN.md §15) — the acceptance gate
 * for the model checker: every seeded-bug counterexample, replayed
 * against the *real* QSpinlock/LockManager with the runtime checker
 * registry armed, must trip the matching runtime checker; clean
 * schedules must replay with zero violations.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "check/check_config.hh"
#include "verify/counterexample.hh"
#include "verify/explorer.hh"
#include "verify/replay.hh"

using namespace ocor;
using namespace ocor::verify;

namespace
{

/** Explore a seeded-bug config and package the counterexample. */
Counterexample
findCounterexample(const VerifyConfig &cfg, Property expect)
{
    ExploreResult res = explore(cfg);
    EXPECT_EQ(res.violated, expect)
        << cfg.describe() << ": " << res.detail;
    Counterexample ce;
    ce.cfg = cfg;
    ce.violated = res.violated;
    ce.detail = res.detail;
    ce.schedule = res.schedule;
    return ce;
}

/** Serialize + parse, so the replay exercises the file format too
 * (exactly what the ocor_verify binary and CI artifacts do). */
Counterexample
throughFile(const Counterexample &ce)
{
    std::ostringstream os;
    writeCounterexample(os, ce);
    std::istringstream is(os.str());
    Counterexample back;
    std::string error;
    EXPECT_TRUE(readCounterexample(is, back, error)) << error;
    return back;
}

} // namespace

TEST(VerifyReplay, ExpectedCheckerMapping)
{
    EXPECT_EQ(expectedChecker(Property::Mutex), CheckId::Mutex);
    EXPECT_EQ(expectedChecker(Property::LostWakeup),
              CheckId::Wakeup);
    EXPECT_EQ(expectedChecker(Property::RtrMonotone), CheckId::Rtr);
    EXPECT_EQ(expectedChecker(Property::Arbitration),
              CheckId::Arbitration);
    EXPECT_EQ(expectedChecker(Property::Deadlock),
              CheckId::NumChecks);
}

TEST(VerifyReplay, ForceHoldReplayTripsMutexChecker)
{
    VerifyConfig cfg;
    cfg.bug = BugKind::ForceHold;
    Counterexample ce =
        throughFile(findCounterexample(cfg, Property::Mutex));

    std::string error;
    ASSERT_TRUE(replayThroughModel(ce, error)) << error;

    ReplayResult res = replay(ce);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_TRUE(res.triggered(CheckId::Mutex)) << res.diagnostics;
}

TEST(VerifyReplay, LostWakeReplayTripsWakeupChecker)
{
    VerifyConfig cfg;
    cfg.bug = BugKind::LostWake;
    Counterexample ce =
        throughFile(findCounterexample(cfg, Property::LostWakeup));

    std::string error;
    ASSERT_TRUE(replayThroughModel(ce, error)) << error;

    ReplayResult res = replay(ce);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_TRUE(res.triggered(CheckId::Wakeup)) << res.diagnostics;
}

TEST(VerifyReplay, RtrRaiseReplayTripsRtrChecker)
{
    VerifyConfig cfg;
    cfg.spinBudget = 2;
    cfg.bug = BugKind::RtrRaise;
    Counterexample ce =
        throughFile(findCounterexample(cfg, Property::RtrMonotone));

    std::string error;
    ASSERT_TRUE(replayThroughModel(ce, error)) << error;

    ReplayResult res = replay(ce);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_TRUE(res.triggered(CheckId::Rtr)) << res.diagnostics;
}

TEST(VerifyReplay, ArbInvertReplayTripsArbitrationChecker)
{
    VerifyConfig cfg;
    cfg.spinBudget = 2;
    cfg.strictArb = true;
    cfg.bug = BugKind::ArbInvert;
    Counterexample ce =
        throughFile(findCounterexample(cfg, Property::Arbitration));

    std::string error;
    ASSERT_TRUE(replayThroughModel(ce, error)) << error;

    ReplayResult res = replay(ce);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_TRUE(res.triggered(CheckId::Arbitration))
        << res.diagnostics;
}

TEST(VerifyReplay, CleanScheduleReplaysWithoutViolations)
{
    // A full uncontended acquire/release round per thread,
    // hand-scheduled: the differential check that model-level
    // cleanliness carries over to the real components.
    const char *text =
        "ocor-verify-counterexample v1\n"
        "config threads=2 acqs=1 budget=1 strictarb=0 bug=none\n"
        "property none\n"
        "step acquire t=0 rtr=1 prog=0\n"
        "step deliver kind=LockTry t=0 rtr=1 prog=0\n"
        "step deliver kind=LockGrant t=0 rtr=1 prog=0\n"
        "step release t=0 prog=0\n"
        "step firewake t=0 prog=1\n"
        "step deliver kind=LockRelease t=0 rtr=1 prog=0\n"
        "step deliver kind=FutexWake t=0 rtr=1 prog=1\n"
        "step acquire t=1 rtr=1 prog=0\n"
        "step deliver kind=LockTry t=1 rtr=1 prog=0\n"
        "step deliver kind=LockGrant t=1 rtr=1 prog=0\n"
        "step release t=1 prog=0\n"
        "step firewake t=1 prog=1\n"
        "step deliver kind=LockRelease t=1 rtr=1 prog=0\n"
        "step deliver kind=FutexWake t=1 rtr=1 prog=1\n"
        "end\n";
    std::istringstream is(text);
    Counterexample ce;
    std::string error;
    ASSERT_TRUE(readCounterexample(is, ce, error)) << error;

    ASSERT_TRUE(replayThroughModel(ce, error)) << error;

    ReplayResult res = replay(ce);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_TRUE(res.violations.empty()) << res.diagnostics;
}

TEST(VerifyReplay, ContendedSleepScheduleReplaysClean)
{
    // The heavyweight clean path: t1 exhausts its budget, sleeps at
    // the home, and is woken by t0's release — every protocol leg
    // (fail, sleep-prep, futex wait, wake notify) crosses the real
    // components with the full checker registry armed.
    const char *text =
        "ocor-verify-counterexample v1\n"
        "config threads=2 acqs=1 budget=1 strictarb=0 bug=none\n"
        "property none\n"
        "step acquire t=0 rtr=1 prog=0\n"
        "step acquire t=1 rtr=1 prog=0\n"
        "step deliver kind=LockTry t=0 rtr=1 prog=0\n"
        "step deliver kind=LockTry t=1 rtr=1 prog=0\n"
        "step deliver kind=LockGrant t=0 rtr=1 prog=0\n"
        "step deliver kind=LockFail t=1 budget=1 rtr=1 prog=0\n"
        "step timer t=1\n"
        "step deliver kind=FutexWait t=1 rtr=1 prog=0\n"
        "step release t=0 prog=0\n"
        "step deliver kind=LockRelease t=0 rtr=1 prog=0\n"
        "step firewake t=0 prog=1\n"
        "step deliver kind=FutexWake t=0 rtr=1 prog=1\n"
        "step deliver kind=WakeNotify t=1 rtr=1 prog=1\n"
        "step timer t=1\n"
        "step release t=1 prog=0\n"
        "step firewake t=1 prog=1\n"
        "step deliver kind=LockRelease t=1 rtr=1 prog=0\n"
        "step deliver kind=FutexWake t=1 rtr=1 prog=1\n"
        "end\n";
    std::istringstream is(text);
    Counterexample ce;
    std::string error;
    ASSERT_TRUE(readCounterexample(is, ce, error)) << error;

    ASSERT_TRUE(replayThroughModel(ce, error)) << error;

    ReplayResult res = replay(ce);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_TRUE(res.violations.empty()) << res.diagnostics;
}

TEST(VerifyReplay, ModelReplayRejectsMislabeledProperty)
{
    VerifyConfig cfg;
    cfg.bug = BugKind::ForceHold;
    Counterexample ce = findCounterexample(cfg, Property::Mutex);
    ce.violated = Property::LostWakeup; // forged claim

    std::string error;
    EXPECT_FALSE(replayThroughModel(ce, error));
    EXPECT_NE(error.find("mutex"), std::string::npos) << error;
}

TEST(VerifyReplay, ModelReplayRejectsImpossibleStep)
{
    Counterexample ce;
    ce.violated = Property::Mutex;
    ScheduleStep st;
    st.kind = StepKind::Release; // nobody holds anything yet
    st.tid = 0;
    ce.schedule.push_back(st);

    std::string error;
    EXPECT_FALSE(replayThroughModel(ce, error));
    EXPECT_NE(error.find("not enabled"), std::string::npos) << error;
}
