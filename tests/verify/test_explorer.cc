/**
 * @file
 * Exploration tests (DESIGN.md §15): clean bounded configs are
 * exhausted with zero violations, and every seeded bug yields a
 * counterexample for the matching property.
 */

#include <gtest/gtest.h>

#include "verify/explorer.hh"
#include "verify/model.hh"

using namespace ocor;
using namespace ocor::verify;

TEST(VerifyExplorer, TwoThreadsOneAcqIsCleanAndExhausted)
{
    VerifyConfig cfg;
    ExploreResult res = explore(cfg);
    EXPECT_TRUE(res.clean());
    EXPECT_FALSE(res.capped);
    EXPECT_GT(res.stats.states, 100u);
    EXPECT_GT(res.stats.transitions, res.stats.states);
}

TEST(VerifyExplorer, TwoThreadsTwoAcqsCleanBothArbModes)
{
    for (bool strict : {false, true}) {
        VerifyConfig cfg;
        cfg.acquisitions = 2;
        cfg.strictArb = strict;
        ExploreResult res = explore(cfg);
        EXPECT_TRUE(res.clean()) << cfg.describe() << " violated "
                                 << propertyName(res.violated) << ": "
                                 << res.detail;
        EXPECT_FALSE(res.capped);
    }
}

TEST(VerifyExplorer, ThreeThreadsSleepPathClean)
{
    VerifyConfig cfg;
    cfg.threads = 3;
    ExploreResult res = explore(cfg);
    EXPECT_TRUE(res.clean()) << propertyName(res.violated) << ": "
                             << res.detail;
    // Three contenders with budget 1 must reach the futex-sleep
    // path; the space dwarfs the 2-thread one.
    EXPECT_GT(res.stats.states, 10000u);
}

TEST(VerifyExplorer, SymmetryReductionShrinksCleanConfigs)
{
    // The canonical-key space must be well under the naive one (the
    // 3-thread config merges ~4x; exact counts are regression-pinned
    // by the suite output, not here).
    VerifyConfig cfg;
    cfg.threads = 3;
    ExploreResult res = explore(cfg);
    EXPECT_LT(res.stats.states, 100000u);
}

TEST(VerifyExplorer, MaxStatesCapsAndReportsCapped)
{
    VerifyConfig cfg;
    cfg.threads = 3;
    ExploreResult res = explore(cfg, 500);
    EXPECT_TRUE(res.capped);
    EXPECT_EQ(res.stats.states, 500u);
    EXPECT_TRUE(res.clean());
}

TEST(VerifyExplorer, ForceHoldFindsMinimalMutexCounterexample)
{
    VerifyConfig cfg;
    cfg.bug = BugKind::ForceHold;
    ExploreResult res = explore(cfg);
    ASSERT_EQ(res.violated, Property::Mutex);
    // BFS guarantees minimality: acquire, try, grant.
    EXPECT_EQ(res.schedule.size(), 3u);
}

TEST(VerifyExplorer, LostWakeFindsLostWakeupCounterexample)
{
    VerifyConfig cfg;
    cfg.bug = BugKind::LostWake;
    ExploreResult res = explore(cfg);
    ASSERT_EQ(res.violated, Property::LostWakeup);
    EXPECT_FALSE(res.schedule.empty());
    // The schedule must actually drop a WakeNotify somewhere.
    bool dropped = false;
    for (const ScheduleStep &st : res.schedule)
        if (st.kind == StepKind::Drop &&
            st.msg == proto::MsgKind::WakeNotify)
            dropped = true;
    EXPECT_TRUE(dropped);
}

TEST(VerifyExplorer, RtrRaiseFindsMonotonicityCounterexample)
{
    VerifyConfig cfg;
    cfg.spinBudget = 2; // a retry is needed to re-stamp RTR
    cfg.bug = BugKind::RtrRaise;
    ExploreResult res = explore(cfg);
    ASSERT_EQ(res.violated, Property::RtrMonotone);
    EXPECT_FALSE(res.schedule.empty());
}

TEST(VerifyExplorer, ArbInvertFindsArbitrationCounterexample)
{
    VerifyConfig cfg;
    cfg.spinBudget = 2; // rank spread needs differing RTR stamps
    cfg.strictArb = true;
    cfg.bug = BugKind::ArbInvert;
    ExploreResult res = explore(cfg);
    ASSERT_EQ(res.violated, Property::Arbitration);
    EXPECT_FALSE(res.schedule.empty());
}

TEST(VerifyExplorer, SeededBugsLeaveCleanConfigsClean)
{
    // A seeded bug must not fire with the trigger out of reach:
    // arb-invert only perverts the strict-arbitration choice, so a
    // free-delivery config never exercises it.
    VerifyConfig cfg;
    cfg.spinBudget = 2;
    cfg.strictArb = false;
    cfg.bug = BugKind::ArbInvert;
    ExploreResult res = explore(cfg);
    EXPECT_TRUE(res.clean()) << propertyName(res.violated);
}
