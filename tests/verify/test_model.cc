/**
 * @file
 * Unit tests for the abstract protocol model (DESIGN.md §15):
 * initial states, transition enumeration, the FIFO thread->home
 * channel, and the symmetry-canonical visited keys.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "verify/model.hh"

using namespace ocor;
using namespace ocor::verify;

namespace
{

bool
hasDeliver(const std::vector<ScheduleStep> &steps, proto::MsgKind m,
           ThreadId tid)
{
    return std::any_of(steps.begin(), steps.end(),
                       [&](const ScheduleStep &s) {
                           return s.kind == StepKind::Deliver &&
                               s.msg == m && s.tid == tid;
                       });
}

/** Apply the first enabled step matching the predicate; fatal when
 * none matches. */
template <typename Pred>
void
applyMatching(const VerifyConfig &cfg, WorldState &s, Pred pred)
{
    std::vector<ScheduleStep> steps = enabledSteps(cfg, s);
    auto it = std::find_if(steps.begin(), steps.end(), pred);
    ASSERT_NE(it, steps.end());
    applyStep(cfg, s, *it);
}

} // namespace

TEST(VerifyModel, InitialStateOnlyEnablesAcquires)
{
    VerifyConfig cfg;
    cfg.threads = 3;
    WorldState s = initialState(cfg);

    std::vector<ScheduleStep> steps = enabledSteps(cfg, s);
    ASSERT_EQ(steps.size(), 3u);
    for (const ScheduleStep &st : steps)
        EXPECT_EQ(st.kind, StepKind::Acquire);
}

TEST(VerifyModel, ForceHoldSeedsAsymmetricHolder)
{
    VerifyConfig cfg;
    cfg.bug = BugKind::ForceHold;
    WorldState s = initialState(cfg);

    EXPECT_TRUE(s.threads[0].cs.holding);
    EXPECT_EQ(s.threads[0].acqsLeft, 0u);
    EXPECT_FALSE(s.home.held) <<
        "the home must NOT know about the forced holder";
}

TEST(VerifyModel, AcquireSendsTryAndStampsRtr)
{
    VerifyConfig cfg;
    cfg.spinBudget = 2;
    WorldState s = initialState(cfg);

    applyMatching(cfg, s, [](const ScheduleStep &st) {
        return st.kind == StepKind::Acquire && st.tid == 0;
    });

    ASSERT_EQ(s.msgs.size(), 1u);
    EXPECT_EQ(s.msgs[0].kind, proto::MsgKind::LockTry);
    EXPECT_EQ(s.msgs[0].tid, 0u);
    EXPECT_EQ(s.msgs[0].rtr, 2u) << "first try carries full budget";
}

TEST(VerifyModel, HomeChannelIsFifo)
{
    // After t0 releases and immediately re-acquires, its next
    // LockTry must NOT be deliverable before its LockRelease: the
    // real NoC routes same-flow packets in order, and delivering
    // the try first makes the home re-grant to the "holder".
    VerifyConfig cfg;
    cfg.acquisitions = 2;
    WorldState s = initialState(cfg);

    applyMatching(cfg, s, [](const ScheduleStep &st) {
        return st.kind == StepKind::Acquire && st.tid == 0;
    });
    applyMatching(cfg, s, [](const ScheduleStep &st) {
        return st.kind == StepKind::Deliver &&
            st.msg == proto::MsgKind::LockTry;
    });
    applyMatching(cfg, s, [](const ScheduleStep &st) {
        return st.kind == StepKind::Deliver &&
            st.msg == proto::MsgKind::LockGrant;
    });
    ASSERT_TRUE(s.threads[0].cs.holding);
    applyMatching(cfg, s, [](const ScheduleStep &st) {
        return st.kind == StepKind::Release;
    });
    applyMatching(cfg, s, [](const ScheduleStep &st) {
        return st.kind == StepKind::Acquire && st.tid == 0;
    });

    // In flight from t0: LockRelease (seq 1) then LockTry (seq 2).
    std::vector<ScheduleStep> steps = enabledSteps(cfg, s);
    EXPECT_TRUE(hasDeliver(steps, proto::MsgKind::LockRelease, 0));
    EXPECT_FALSE(hasDeliver(steps, proto::MsgKind::LockTry, 0))
        << "LockTry overtook LockRelease on the FIFO channel";

    // Once the release lands, the try becomes deliverable.
    applyMatching(cfg, s, [](const ScheduleStep &st) {
        return st.kind == StepKind::Deliver &&
            st.msg == proto::MsgKind::LockRelease;
    });
    steps = enabledSteps(cfg, s);
    EXPECT_TRUE(hasDeliver(steps, proto::MsgKind::LockTry, 0));
}

TEST(VerifyModel, RetryTimerEnumeratesBudgetRace)
{
    VerifyConfig cfg;
    cfg.spinBudget = 2;
    WorldState s = initialState(cfg);

    applyMatching(cfg, s, [](const ScheduleStep &st) {
        return st.kind == StepKind::Acquire && st.tid == 0;
    });
    applyMatching(cfg, s, [](const ScheduleStep &st) {
        return st.kind == StepKind::Acquire && st.tid == 1;
    });
    applyMatching(cfg, s, [](const ScheduleStep &st) {
        return st.kind == StepKind::Deliver && st.tid == 0 &&
            st.msg == proto::MsgKind::LockTry;
    });
    applyMatching(cfg, s, [](const ScheduleStep &st) {
        return st.kind == StepKind::Deliver && st.tid == 1 &&
            st.msg == proto::MsgKind::LockTry;
    });
    // t1 lost the race: a LockFail is on its way back.
    applyMatching(cfg, s, [](const ScheduleStep &st) {
        return st.kind == StepKind::Deliver && st.tid == 1 &&
            st.msg == proto::MsgKind::LockFail &&
            !st.budgetExhausted;
    });

    // The armed retry timer races real time: both outcomes must be
    // enabled while budget remains.
    std::vector<ScheduleStep> steps = enabledSteps(cfg, s);
    unsigned timerVariants = 0;
    for (const ScheduleStep &st : steps)
        if (st.kind == StepKind::Timer && st.tid == 1)
            ++timerVariants;
    EXPECT_EQ(timerVariants, 2u);
}

TEST(VerifyModel, CanonicalKeyMergesThreadRenamings)
{
    VerifyConfig cfg;
    cfg.threads = 2;
    WorldState a = initialState(cfg);
    WorldState b = initialState(cfg);

    // Drive the same protocol prefix on thread 0 in `a` and thread
    // 1 in `b`: the two worlds are renamings of each other.
    applyMatching(cfg, a, [](const ScheduleStep &st) {
        return st.kind == StepKind::Acquire && st.tid == 0;
    });
    applyMatching(cfg, b, [](const ScheduleStep &st) {
        return st.kind == StepKind::Acquire && st.tid == 1;
    });

    EXPECT_NE(a.encode(), b.encode());
    EXPECT_EQ(canonicalKey(cfg, a), canonicalKey(cfg, b));
}

TEST(VerifyModel, ForceHoldPinsThreadZeroInCanonicalKey)
{
    VerifyConfig cfg;
    cfg.threads = 2;
    cfg.bug = BugKind::ForceHold;
    WorldState a = initialState(cfg);

    // Swapping the forced holder onto thread 1 is NOT a legal
    // renaming: the configurations are behaviourally different
    // (thread 0 is the seeded one) and must not merge.
    WorldState b = a;
    std::swap(b.threads[0], b.threads[1]);

    EXPECT_NE(canonicalKey(cfg, a), canonicalKey(cfg, b));
}

TEST(VerifyModel, RtrMonotonicityViolationDetectedOnRaise)
{
    VerifyConfig cfg;
    cfg.spinBudget = 2;
    cfg.bug = BugKind::RtrRaise;
    WorldState s = initialState(cfg);

    applyMatching(cfg, s, [](const ScheduleStep &st) {
        return st.kind == StepKind::Acquire && st.tid == 0;
    });
    applyMatching(cfg, s, [](const ScheduleStep &st) {
        return st.kind == StepKind::Acquire && st.tid == 1;
    });
    applyMatching(cfg, s, [](const ScheduleStep &st) {
        return st.kind == StepKind::Deliver && st.tid == 0 &&
            st.msg == proto::MsgKind::LockTry;
    });
    applyMatching(cfg, s, [](const ScheduleStep &st) {
        return st.kind == StepKind::Deliver && st.tid == 1 &&
            st.msg == proto::MsgKind::LockTry;
    });
    applyMatching(cfg, s, [](const ScheduleStep &st) {
        return st.kind == StepKind::Deliver && st.tid == 1 &&
            st.msg == proto::MsgKind::LockFail &&
            !st.budgetExhausted;
    });

    // The retry re-sends a LockTry whose seeded stamp *rises*.
    std::vector<ScheduleStep> steps = enabledSteps(cfg, s);
    auto it = std::find_if(steps.begin(), steps.end(),
                           [](const ScheduleStep &st) {
                               return st.kind == StepKind::Timer &&
                                   st.tid == 1 &&
                                   !st.budgetExhausted;
                           });
    ASSERT_NE(it, steps.end());
    StepOutcome out = applyStep(cfg, s, *it);
    EXPECT_EQ(out.violated, Property::RtrMonotone);
}

TEST(VerifyModel, TerminalStuckStateClassifiedDeadlockVsLostWakeup)
{
    VerifyConfig cfg;
    WorldState s = initialState(cfg);

    // Non-terminal initial state: clean.
    EXPECT_EQ(checkState(cfg, s, false).violated, Property::None);

    // A thread still wanting the lock in a terminal state is a
    // deadlock; the same with a *sleeping* thread is a lost wakeup.
    WorldState stuck = s;
    stuck.threads[0].cs.active = true;
    EXPECT_EQ(checkState(cfg, stuck, true).violated,
              Property::Deadlock);

    stuck.threads[0].cs.phase = proto::ClientPhase::Sleeping;
    EXPECT_EQ(checkState(cfg, stuck, true).violated,
              Property::LostWakeup);
}

TEST(VerifyModel, MutexViolationOnTwoHolders)
{
    VerifyConfig cfg;
    WorldState s = initialState(cfg);
    s.threads[0].cs.holding = true;
    s.threads[1].cs.holding = true;
    EXPECT_EQ(checkState(cfg, s, false).violated, Property::Mutex);
}
