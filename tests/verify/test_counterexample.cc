/**
 * @file
 * Replay-file format tests (DESIGN.md §15): explorer output
 * round-trips losslessly, and every malformed input is rejected
 * with a line-numbered error instead of silently skipping steps.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "verify/counterexample.hh"
#include "verify/explorer.hh"

using namespace ocor;
using namespace ocor::verify;

namespace
{

Counterexample
exploreForceHold()
{
    VerifyConfig cfg;
    cfg.bug = BugKind::ForceHold;
    ExploreResult res = explore(cfg);
    Counterexample ce;
    ce.cfg = cfg;
    ce.violated = res.violated;
    ce.detail = res.detail;
    ce.schedule = res.schedule;
    return ce;
}

bool
parses(const std::string &text, std::string *errOut = nullptr)
{
    std::istringstream is(text);
    Counterexample ce;
    std::string error;
    bool ok = readCounterexample(is, ce, error);
    if (errOut)
        *errOut = error;
    return ok;
}

} // namespace

TEST(VerifyCounterexample, RoundTripPreservesEverything)
{
    Counterexample ce = exploreForceHold();
    ASSERT_EQ(ce.violated, Property::Mutex);

    std::ostringstream os;
    writeCounterexample(os, ce);

    std::istringstream is(os.str());
    Counterexample back;
    std::string error;
    ASSERT_TRUE(readCounterexample(is, back, error)) << error;

    EXPECT_EQ(back.cfg.threads, ce.cfg.threads);
    EXPECT_EQ(back.cfg.acquisitions, ce.cfg.acquisitions);
    EXPECT_EQ(back.cfg.spinBudget, ce.cfg.spinBudget);
    EXPECT_EQ(back.cfg.strictArb, ce.cfg.strictArb);
    EXPECT_EQ(back.cfg.bug, ce.cfg.bug);
    EXPECT_EQ(back.violated, ce.violated);
    EXPECT_EQ(back.detail, ce.detail);
    ASSERT_EQ(back.schedule.size(), ce.schedule.size());
    for (std::size_t i = 0; i < ce.schedule.size(); ++i) {
        EXPECT_EQ(back.schedule[i].kind, ce.schedule[i].kind) << i;
        EXPECT_EQ(back.schedule[i].tid, ce.schedule[i].tid) << i;
        EXPECT_EQ(back.schedule[i].msg, ce.schedule[i].msg) << i;
        EXPECT_EQ(back.schedule[i].budgetExhausted,
                  ce.schedule[i].budgetExhausted) << i;
        EXPECT_EQ(back.schedule[i].rtr, ce.schedule[i].rtr) << i;
        EXPECT_EQ(back.schedule[i].prog, ce.schedule[i].prog) << i;
    }
}

TEST(VerifyCounterexample, RivalsRoundTrip)
{
    Counterexample ce;
    ce.violated = Property::Arbitration;
    ScheduleStep st;
    st.kind = StepKind::Deliver;
    st.msg = proto::MsgKind::FutexWake;
    st.tid = 0;
    st.rtr = 1;
    st.rivals.push_back({proto::MsgKind::LockTry, 1, 2, 0});
    ce.schedule.push_back(st);

    std::ostringstream os;
    writeCounterexample(os, ce);
    std::istringstream is(os.str());
    Counterexample back;
    std::string error;
    ASSERT_TRUE(readCounterexample(is, back, error)) << error;
    ASSERT_EQ(back.schedule.size(), 1u);
    ASSERT_EQ(back.schedule[0].rivals.size(), 1u);
    EXPECT_EQ(back.schedule[0].rivals[0].kind,
              proto::MsgKind::LockTry);
    EXPECT_EQ(back.schedule[0].rivals[0].tid, 1u);
    EXPECT_EQ(back.schedule[0].rivals[0].rtr, 2u);
}

TEST(VerifyCounterexample, RejectsBadMagic)
{
    std::string error;
    EXPECT_FALSE(parses("not-a-counterexample\nend\n", &error));
    EXPECT_NE(error.find("magic"), std::string::npos);
}

TEST(VerifyCounterexample, RejectsTruncatedFile)
{
    std::string error;
    EXPECT_FALSE(parses("ocor-verify-counterexample v1\n"
                        "property mutex\n", &error));
    EXPECT_NE(error.find("end"), std::string::npos);
}

TEST(VerifyCounterexample, RejectsUnknownStepKind)
{
    std::string error;
    EXPECT_FALSE(parses("ocor-verify-counterexample v1\n"
                        "step teleport t=0\n"
                        "end\n", &error));
    EXPECT_NE(error.find("line 2"), std::string::npos);
}

TEST(VerifyCounterexample, RejectsUnknownProperty)
{
    std::string error;
    EXPECT_FALSE(parses("ocor-verify-counterexample v1\n"
                        "property sideways\n"
                        "end\n", &error));
    EXPECT_NE(error.find("property"), std::string::npos);
}

TEST(VerifyCounterexample, RejectsBadRivalsList)
{
    std::string error;
    EXPECT_FALSE(parses("ocor-verify-counterexample v1\n"
                        "step deliver kind=FutexWake t=0 "
                        "rivals=LockTry:1\n"
                        "end\n", &error));
    EXPECT_NE(error.find("rivals"), std::string::npos);
}

TEST(VerifyCounterexample, AcceptsCommentsAndBlankLines)
{
    EXPECT_TRUE(parses("ocor-verify-counterexample v1\n"
                       "# a note\n"
                       "\n"
                       "property none\n"
                       "step acquire t=0 prog=0\n"
                       "end\n"));
}
