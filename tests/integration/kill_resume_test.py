#!/usr/bin/env python3
"""Kill-resume integration test (DESIGN.md section 12).

Drives a real sweep binary (fig11_coh) through a crash-recovery
cycle:

 1. run the sweep to completion in a clean directory -> reference
    journal,
 2. start the same sweep in a second directory and SIGKILL it
    mid-run,
 3. restart it (the resume path: the journal recalls every durable
    row and re-simulates only what was lost),
 4. assert the resumed journal is row-for-row identical to the
    uninterrupted reference (sorted: append order legitimately
    depends on worker scheduling).

Because every simulation is bit-identical given (config, seed), any
difference between the two journals means the crash corrupted state.
"""

import os
import signal
import subprocess
import sys
import tempfile
import time

JOURNAL = "ocor_results.tsv"
ARGS = ["--threads", "4", "--iters", "2", "--seed", "5",
        "--jobs", "2"]


def run_sweep(bench, cwd, timeout=600):
    return subprocess.run(
        [bench] + ARGS, cwd=cwd, timeout=timeout,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


def journal_rows(cwd):
    path = os.path.join(cwd, JOURNAL)
    with open(path, "r", encoding="utf-8") as f:
        lines = f.read().splitlines()
    if not lines or not lines[0].startswith("#ocor-results"):
        raise AssertionError(f"{path}: missing journal header")
    rows = [ln for ln in lines[1:] if ln]
    # Resolve duplicate keys last-write-wins, exactly like the
    # loader, so a benign re-append never fails the comparison.
    by_key = {}
    for ln in rows:
        payload = ln.split("\t", 1)[1]  # drop the CRC stamp
        key = "\t".join(payload.split("\t")[:7])
        by_key[key] = ln
    return sorted(by_key.values())


def main():
    if len(sys.argv) != 2:
        print("usage: kill_resume_test.py <fig11_coh-binary>")
        return 2
    bench = os.path.abspath(sys.argv[1])

    with tempfile.TemporaryDirectory(prefix="ocor_kill_") as tmp:
        ref_dir = os.path.join(tmp, "reference")
        kill_dir = os.path.join(tmp, "killed")
        os.mkdir(ref_dir)
        os.mkdir(kill_dir)

        # 1. Uninterrupted reference run (also calibrates timing).
        t0 = time.monotonic()
        res = run_sweep(bench, ref_dir)
        ref_seconds = time.monotonic() - t0
        if res.returncode != 0:
            print(f"FAIL: reference run exited {res.returncode}")
            return 1
        reference = journal_rows(ref_dir)
        if not reference:
            print("FAIL: reference journal is empty")
            return 1

        # 2. SIGKILL the same sweep mid-run. Aim for the middle of
        # the reference duration; SIGKILL gives the process zero
        # chance to flush or clean up -- the worst crash there is.
        proc = subprocess.Popen(
            [bench] + ARGS, cwd=kill_dir,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            proc.wait(timeout=max(0.05, ref_seconds * 0.5))
            print("note: sweep finished before the kill "
                  "(fast machine); resume degenerates to a no-op")
        except subprocess.TimeoutExpired:
            proc.send_signal(signal.SIGKILL)
            proc.wait()

        # 3. Resume: the journal recalls every durable row; torn
        # tails are healed on load.
        res = run_sweep(bench, kill_dir)
        if res.returncode != 0:
            print(f"FAIL: resumed run exited {res.returncode}")
            return 1

        # 4. Field-exact equality with the uninterrupted journal.
        resumed = journal_rows(kill_dir)
        if resumed != reference:
            missing = set(reference) - set(resumed)
            extra = set(resumed) - set(reference)
            print(f"FAIL: resumed journal differs from reference "
                  f"({len(missing)} missing, {len(extra)} extra)")
            for ln in sorted(missing)[:5]:
                print("  missing:", ln)
            for ln in sorted(extra)[:5]:
                print("  extra:  ", ln)
            return 1

        print(f"PASS: {len(reference)} rows identical after "
              f"kill + resume")
        return 0


if __name__ == "__main__":
    sys.exit(main())
