/**
 * @file
 * Unit tests for the set-associative tag array.
 */

#include <gtest/gtest.h>

#include "mem/cache_array.hh"

using namespace ocor;

TEST(CacheArray, MissThenHit)
{
    CacheArray c(4, 2, 128);
    EXPECT_EQ(c.find(0x100), nullptr);
    CacheLine *slot = c.victimFor(0x100);
    ASSERT_NE(slot, nullptr);
    c.fill(slot, 0x100, CoherState::S, 1);
    CacheLine *hit = c.find(0x100);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->state, CoherState::S);
    EXPECT_EQ(c.validCount(), 1u);
}

TEST(CacheArray, VictimPrefersInvalid)
{
    CacheArray c(1, 2, 128);
    c.fill(c.victimFor(0x000), 0x000, CoherState::M, 1);
    CacheLine *v = c.victimFor(0x080);
    EXPECT_FALSE(v->valid) << "must pick the empty way first";
}

TEST(CacheArray, LruEviction)
{
    CacheArray c(1, 2, 128); // one set, two ways
    c.fill(c.victimFor(0x000), 0x000, CoherState::S, 1);
    c.fill(c.victimFor(0x080), 0x080, CoherState::S, 2);
    // Touch the older line so the newer becomes LRU.
    c.touch(c.find(0x000), 3);
    CacheLine *v = c.victimFor(0x100);
    ASSERT_TRUE(v->valid);
    EXPECT_EQ(v->addr, 0x080u);
}

TEST(CacheArray, SetIndexingSeparatesSets)
{
    CacheArray c(4, 1, 128);
    // Lines 0x000, 0x080, 0x100, 0x180 map to sets 0..3.
    for (Addr a : {0x000u, 0x080u, 0x100u, 0x180u})
        c.fill(c.victimFor(a), a, CoherState::S, 1);
    EXPECT_EQ(c.validCount(), 4u);
    for (Addr a : {0x000u, 0x080u, 0x100u, 0x180u})
        EXPECT_NE(c.find(a), nullptr);
}

TEST(CacheArray, ConflictWithinSet)
{
    CacheArray c(4, 1, 128);
    // 0x000 and 0x200 share set 0 in a 4-set cache.
    c.fill(c.victimFor(0x000), 0x000, CoherState::S, 1);
    CacheLine *v = c.victimFor(0x200);
    ASSERT_TRUE(v->valid);
    EXPECT_EQ(v->addr, 0x000u);
}

TEST(CacheArray, StateNames)
{
    EXPECT_STREQ(coherStateName(CoherState::I), "I");
    EXPECT_STREQ(coherStateName(CoherState::S), "S");
    EXPECT_STREQ(coherStateName(CoherState::E), "E");
    EXPECT_STREQ(coherStateName(CoherState::O), "O");
    EXPECT_STREQ(coherStateName(CoherState::M), "M");
}

TEST(CacheArrayDeath, RejectsBadGeometry)
{
    EXPECT_EXIT(CacheArray(3, 2, 128), ::testing::ExitedWithCode(1),
                "power of two");
    EXPECT_EXIT(CacheArray(4, 0, 128), ::testing::ExitedWithCode(1),
                "ways");
}

TEST(CacheArray, CapacityBounded)
{
    CacheArray c(4, 2, 128);
    for (Addr line = 0; line < 64; ++line) {
        Addr a = line * 128;
        if (!c.find(a))
            c.fill(c.victimFor(a), a, CoherState::S, line);
    }
    EXPECT_EQ(c.validCount(), 8u) << "sets x ways bound";
}
