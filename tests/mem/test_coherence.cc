/**
 * @file
 * Integration tests of the MOESI directory protocol: L1s and L2
 * banks wired through a real mesh, exercised with loads and stores.
 *
 * These tests drive the actual System (network + caches + directory
 * + memory controllers) via a tiny helper that issues accesses from
 * chosen cores and runs the clock until completion, then inspect
 * protocol invariants white-box.
 */

#include <gtest/gtest.h>

#include <memory>

#include "sim/system.hh"
#include "workload/program.hh"

using namespace ocor;

namespace
{

/** 16-node system with idle programs; accesses injected by hand. */
struct CohRig
{
    SystemConfig cfg;
    std::unique_ptr<System> sys;
    Cycle now = 0;

    CohRig()
    {
        cfg.mesh = MeshShape{4, 4};
        cfg.numThreads = 16;
        std::vector<Program> progs;
        for (unsigned t = 0; t < 16; ++t)
            progs.push_back(ProgramBuilder().compute(1).build());
        BgTrafficConfig bg; // rate 0: silent cores
        sys = std::make_unique<System>(cfg, std::move(progs), bg);
        run(200); // let the trivial programs finish
    }

    void
    run(Cycle cycles)
    {
        for (Cycle end = now + cycles; now < end; ++now)
            sys->tick(now);
    }

    /** Issue one access and run until it completes (or timeout). */
    bool
    access(NodeId node, Addr addr, bool write,
           Cycle timeout = 20000)
    {
        bool done = false;
        bool accepted = sys->l1(node).request(
            addr, write, now, [&](Cycle) { done = true; });
        if (!accepted)
            return false;
        for (Cycle end = now + timeout; now < end && !done; ++now)
            sys->tick(now);
        return done;
    }
};

} // namespace

TEST(Coherence, ColdReadFillsExclusive)
{
    CohRig rig;
    const Addr a = 0x10000;
    ASSERT_TRUE(rig.access(1, a, false));
    // MOESI: sole reader is granted E.
    EXPECT_EQ(rig.sys->l1(1).lineState(a), CoherState::E);
    NodeId home = rig.sys->addressMap().homeOf(a);
    EXPECT_EQ(rig.sys->l2(home).ownerOf(a), 1u);
}

TEST(Coherence, SecondReaderSharesAndOwnerDowngrades)
{
    CohRig rig;
    const Addr a = 0x10000;
    ASSERT_TRUE(rig.access(1, a, false));
    ASSERT_TRUE(rig.access(2, a, false));
    // First reader held E; a second GetS downgrades it to O and the
    // new reader gets S.
    EXPECT_EQ(rig.sys->l1(2).lineState(a), CoherState::S);
    EXPECT_EQ(rig.sys->l1(1).lineState(a), CoherState::O);
}

TEST(Coherence, WriteInvalidatesSharers)
{
    CohRig rig;
    const Addr a = 0x20000;
    ASSERT_TRUE(rig.access(1, a, false));
    ASSERT_TRUE(rig.access(2, a, false));
    ASSERT_TRUE(rig.access(3, a, true)); // GetM
    EXPECT_EQ(rig.sys->l1(3).lineState(a), CoherState::M);
    EXPECT_EQ(rig.sys->l1(1).lineState(a), CoherState::I);
    EXPECT_EQ(rig.sys->l1(2).lineState(a), CoherState::I);
    NodeId home = rig.sys->addressMap().homeOf(a);
    EXPECT_EQ(rig.sys->l2(home).ownerOf(a), 3u);
    EXPECT_EQ(rig.sys->l2(home).sharersOf(a), 0u);
}

TEST(Coherence, SingleWriterInvariant)
{
    // Property: after any interleaving of writes from many cores, at
    // most one L1 holds the line in M/E, and the directory's owner
    // matches.
    CohRig rig;
    const Addr a = 0x30000;
    for (NodeId w : {0u, 5u, 9u, 14u, 3u, 7u})
        ASSERT_TRUE(rig.access(w, a, true));

    unsigned exclusive_holders = 0;
    for (NodeId n = 0; n < 16; ++n) {
        CoherState s = rig.sys->l1(n).lineState(a);
        if (s == CoherState::M || s == CoherState::E)
            ++exclusive_holders;
    }
    EXPECT_EQ(exclusive_holders, 1u);
    EXPECT_EQ(rig.sys->l1(7).lineState(a), CoherState::M);
}

TEST(Coherence, WriteAfterReadUpgrades)
{
    CohRig rig;
    const Addr a = 0x40000;
    ASSERT_TRUE(rig.access(4, a, false));
    ASSERT_TRUE(rig.access(5, a, false));
    // Now node 4 writes: needs a GetM although it already shares.
    ASSERT_TRUE(rig.access(4, a, true));
    EXPECT_EQ(rig.sys->l1(4).lineState(a), CoherState::M);
    EXPECT_EQ(rig.sys->l1(5).lineState(a), CoherState::I);
}

TEST(Coherence, SilentEToMUpgradeOnWriteHit)
{
    CohRig rig;
    const Addr a = 0x50000;
    ASSERT_TRUE(rig.access(6, a, false)); // E
    ASSERT_EQ(rig.sys->l1(6).lineState(a), CoherState::E);
    ASSERT_TRUE(rig.access(6, a, true)); // hit, silent upgrade
    EXPECT_EQ(rig.sys->l1(6).lineState(a), CoherState::M);
    EXPECT_EQ(rig.sys->l1(6).stats().hits, 1u);
}

TEST(Coherence, ReadAfterRemoteWriteSeesOwnership)
{
    CohRig rig;
    const Addr a = 0x60000;
    ASSERT_TRUE(rig.access(8, a, true));  // M at node 8
    ASSERT_TRUE(rig.access(9, a, false)); // GetS: owner downgrades
    EXPECT_EQ(rig.sys->l1(8).lineState(a), CoherState::O);
    EXPECT_EQ(rig.sys->l1(9).lineState(a), CoherState::S);
}

TEST(Coherence, EvictionWritebackAllowsRefill)
{
    CohRig rig;
    // L1: 64 sets, 4 ways. Fill 5 lines of the same set from node 0
    // to force an eviction of the first (M) line, then re-read it.
    const unsigned set_stride = 64 * 128; // sets * lineBytes
    ASSERT_TRUE(rig.access(0, 0x100000, true)); // will become victim
    for (unsigned i = 1; i <= 4; ++i)
        ASSERT_TRUE(rig.access(0, 0x100000 + i * set_stride, true));
    EXPECT_GE(rig.sys->l1(0).stats().evictions, 1u);
    EXPECT_GE(rig.sys->l1(0).stats().writebacks, 1u);
    // The evicted line is gone locally but must be re-readable.
    EXPECT_EQ(rig.sys->l1(0).lineState(0x100000), CoherState::I);
    ASSERT_TRUE(rig.access(0, 0x100000, false));
    EXPECT_NE(rig.sys->l1(0).lineState(0x100000), CoherState::I);
}

TEST(Coherence, ManyLinesManyCores)
{
    // Smoke property: a pseudo-random mix of reads/writes from all
    // cores to a small line pool completes (no protocol deadlock)
    // and preserves the single-writer invariant on every line.
    CohRig rig;
    const unsigned lines = 8;
    std::uint64_t x = 12345;
    for (int i = 0; i < 200; ++i) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        NodeId node = static_cast<NodeId>((x >> 33) % 16);
        Addr addr = 0x80000 + ((x >> 40) % lines) * 128;
        bool write = ((x >> 50) & 1) != 0;
        ASSERT_TRUE(rig.access(node, addr, write))
            << "iteration " << i;
    }
    for (unsigned l = 0; l < lines; ++l) {
        Addr addr = 0x80000 + l * 128;
        unsigned excl = 0;
        for (NodeId n = 0; n < 16; ++n) {
            CoherState s = rig.sys->l1(n).lineState(addr);
            if (s == CoherState::M || s == CoherState::E)
                ++excl;
        }
        EXPECT_LE(excl, 1u) << "line " << l;
    }
}

TEST(Coherence, DirectoryQueuesConcurrentRequests)
{
    // Two simultaneous writers to one line: both must eventually
    // complete (the home serializes, the loser queues).
    CohRig rig;
    const Addr a = 0x90000;
    bool done1 = false, done2 = false;
    ASSERT_TRUE(rig.sys->l1(1).request(a, true, rig.now,
                                       [&](Cycle) { done1 = true; }));
    ASSERT_TRUE(rig.sys->l1(2).request(a, true, rig.now,
                                       [&](Cycle) { done2 = true; }));
    rig.run(20000);
    EXPECT_TRUE(done1);
    EXPECT_TRUE(done2);
    unsigned excl = 0;
    for (NodeId n : {1u, 2u}) {
        CoherState s = rig.sys->l1(n).lineState(a);
        if (s == CoherState::M || s == CoherState::E)
            ++excl;
    }
    EXPECT_EQ(excl, 1u);
}

TEST(Coherence, MemoryControllerServesMisses)
{
    CohRig rig;
    ASSERT_TRUE(rig.access(0, 0xA0000, false));
    // The cold miss must have gone to DRAM.
    NodeId home = rig.sys->addressMap().homeOf(0xA0000);
    EXPECT_GE(rig.sys->l2(home).stats().memReads, 1u);
}
