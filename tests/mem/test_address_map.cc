/**
 * @file
 * Unit tests for address interpretation and MC placement.
 */

#include <gtest/gtest.h>

#include <set>

#include "mem/address_map.hh"

using namespace ocor;

TEST(AddressMap, LineAlignment)
{
    AddressMap amap(MeshShape{8, 8}, 128);
    EXPECT_EQ(amap.lineAddr(0x0), 0u);
    EXPECT_EQ(amap.lineAddr(0x7f), 0u);
    EXPECT_EQ(amap.lineAddr(0x80), 0x80u);
    EXPECT_EQ(amap.lineAddr(0x1234), 0x1200u);
}

TEST(AddressMap, HomeInterleavesAcrossAllBanks)
{
    AddressMap amap(MeshShape{8, 8}, 128);
    std::set<NodeId> homes;
    for (Addr line = 0; line < 64; ++line)
        homes.insert(amap.homeOf(line * 128));
    EXPECT_EQ(homes.size(), 64u);
}

TEST(AddressMap, HomeStableWithinLine)
{
    AddressMap amap(MeshShape{8, 8}, 128);
    for (Addr off = 0; off < 128; ++off)
        EXPECT_EQ(amap.homeOf(0x4500 + off), amap.homeOf(0x4500));
}

TEST(AddressMap, PaperMcPlacement8x8)
{
    // Eight MCs at the middle four nodes of the top and bottom rows
    // (Figure 3).
    AddressMap amap(MeshShape{8, 8}, 128);
    const auto &mcs = amap.mcNodes();
    ASSERT_EQ(mcs.size(), 8u);
    EXPECT_EQ(mcs[0], 2u);
    EXPECT_EQ(mcs[1], 3u);
    EXPECT_EQ(mcs[2], 4u);
    EXPECT_EQ(mcs[3], 5u);
    EXPECT_EQ(mcs[4], 58u);
    EXPECT_EQ(mcs[5], 59u);
    EXPECT_EQ(mcs[6], 60u);
    EXPECT_EQ(mcs[7], 61u);
}

TEST(AddressMap, McPlacementScalesDown)
{
    AddressMap small(MeshShape{2, 2}, 128);
    ASSERT_EQ(small.mcNodes().size(), 4u);
    AddressMap mid(MeshShape{4, 4}, 128);
    ASSERT_EQ(mid.mcNodes().size(), 8u);
    for (NodeId n : mid.mcNodes())
        EXPECT_LT(n, 16u);
}

TEST(AddressMap, EveryAddressHasAnMc)
{
    AddressMap amap(MeshShape{8, 8}, 128);
    std::set<NodeId> used;
    for (Addr line = 0; line < 4096; ++line)
        used.insert(amap.mcOf(line * 128));
    // All eight controllers serve some address.
    EXPECT_EQ(used.size(), 8u);
    for (NodeId n : used) {
        bool in_list = false;
        for (NodeId mc : amap.mcNodes())
            in_list |= mc == n;
        EXPECT_TRUE(in_list);
    }
}

TEST(AddressMapDeath, RejectsNonPowerOfTwoLine)
{
    EXPECT_EXIT(AddressMap(MeshShape{8, 8}, 100),
                ::testing::ExitedWithCode(1), "power of two");
}
