/**
 * @file
 * Parameterized random-traffic sweeps of the MOESI directory
 * protocol: across mesh sizes, line pools and access mixes, every
 * access completes and the single-writer invariant holds at every
 * step of the interleaving.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hh"
#include "sim/system.hh"
#include "workload/program.hh"

using namespace ocor;

namespace
{

struct CohCase
{
    unsigned width;
    unsigned height;
    unsigned lines;
    unsigned ops;
    double writeFraction;
    std::uint64_t seed;
};

std::string
caseName(const ::testing::TestParamInfo<CohCase> &info)
{
    const auto &p = info.param;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "m%ux%u_l%u_o%u_w%u_s%llu",
                  p.width, p.height, p.lines, p.ops,
                  static_cast<unsigned>(p.writeFraction * 100),
                  static_cast<unsigned long long>(p.seed));
    return buf;
}

class CoherenceSweep : public ::testing::TestWithParam<CohCase>
{
};

} // namespace

TEST_P(CoherenceSweep, RandomMixKeepsInvariants)
{
    const auto &p = GetParam();
    SystemConfig cfg;
    cfg.mesh = MeshShape{p.width, p.height};
    cfg.numThreads = cfg.mesh.numNodes();
    std::vector<Program> progs;
    for (unsigned t = 0; t < cfg.numThreads; ++t)
        progs.push_back(ProgramBuilder().compute(1).build());
    System sys(cfg, std::move(progs), BgTrafficConfig{});

    Cycle now = 0;
    auto settle = [&](Cycle cycles) {
        for (Cycle end = now + cycles; now < end; ++now)
            sys.tick(now);
    };
    settle(100); // finish the trivial programs

    Rng rng(p.seed);
    unsigned in_flight = 0;
    unsigned issued = 0;
    unsigned completed = 0;
    const Addr base = 0x100000;

    while (issued < p.ops || in_flight > 0) {
        if (issued < p.ops && in_flight < 8) {
            NodeId node = static_cast<NodeId>(
                rng.range(cfg.mesh.numNodes()));
            Addr addr = base + rng.range(p.lines) * 128;
            bool write = rng.chance(p.writeFraction);
            if (sys.l1(node).request(addr, write, now,
                                     [&](Cycle) {
                                         ++completed;
                                         --in_flight;
                                     })) {
                ++in_flight;
                ++issued;
            }
        }
        sys.tick(now);
        ++now;

        // Invariant at every cycle: no line has two exclusive
        // holders (checked on a rotating line to bound cost).
        Addr probe = base + (now % p.lines) * 128;
        unsigned excl = 0;
        for (NodeId n = 0; n < cfg.mesh.numNodes(); ++n) {
            CoherState s = sys.l1(n).lineState(probe);
            if (s == CoherState::M || s == CoherState::E)
                ++excl;
        }
        ASSERT_LE(excl, 1u) << "line " << probe << " cycle " << now;
        ASSERT_LT(now, 3'000'000u) << "protocol appears stuck";
    }
    EXPECT_EQ(completed, p.ops);
}

INSTANTIATE_TEST_SUITE_P(
    Space, CoherenceSweep,
    ::testing::Values(CohCase{2, 2, 4, 120, 0.5, 1},
                      CohCase{2, 2, 1, 150, 0.8, 2},
                      CohCase{4, 4, 8, 200, 0.5, 3},
                      CohCase{4, 4, 2, 200, 0.9, 4},
                      CohCase{4, 4, 32, 200, 0.2, 5},
                      CohCase{8, 4, 8, 150, 0.5, 6}),
    caseName);
