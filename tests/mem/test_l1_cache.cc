/**
 * @file
 * Unit tests for the L1 cache FSM in isolation (hand-driven
 * protocol messages, no network).
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/l1_cache.hh"

using namespace ocor;

namespace
{

struct L1Rig
{
    MeshShape mesh{4, 4};
    AddressMap amap{mesh, 128};
    MemParams params;
    std::vector<PacketPtr> sent;
    std::unique_ptr<L1Cache> l1;
    Cycle now = 0;
    unsigned completions = 0;

    L1Rig()
    {
        l1 = std::make_unique<L1Cache>(
            1, amap, params, [this](const PacketPtr &pkt, Cycle) {
                sent.push_back(pkt);
            });
    }

    void
    run(Cycle cycles)
    {
        for (Cycle end = now + cycles; now < end; ++now)
            l1->tick(now);
    }

    bool
    request(Addr a, bool write)
    {
        return l1->request(a, write, now,
                           [this](Cycle) { ++completions; });
    }

    void
    respond(MsgType type, Addr a, std::uint32_t aux = 0)
    {
        auto pkt = makePacket(type, amap.homeOf(a), 1, a);
        pkt->aux = aux;
        l1->handle(pkt, now);
    }

    PacketPtr
    lastOfType(MsgType t)
    {
        for (auto it = sent.rbegin(); it != sent.rend(); ++it)
            if ((*it)->type == t)
                return *it;
        return nullptr;
    }
};

} // namespace

TEST(L1Cache, MissSendsGetSAndFillsOnData)
{
    L1Rig rig;
    ASSERT_TRUE(rig.request(0x1000, false));
    auto gets = rig.lastOfType(MsgType::GetS);
    ASSERT_NE(gets, nullptr);
    EXPECT_EQ(gets->dst, rig.amap.homeOf(0x1000));
    rig.respond(MsgType::Data, 0x1000);
    EXPECT_EQ(rig.completions, 1u);
    EXPECT_EQ(rig.l1->lineState(0x1000), CoherState::S);
    // Fill confirmation closes the home-side transaction.
    EXPECT_NE(rig.lastOfType(MsgType::Unblock), nullptr);
}

TEST(L1Cache, WriteMissFillsModified)
{
    L1Rig rig;
    ASSERT_TRUE(rig.request(0x2000, true));
    ASSERT_NE(rig.lastOfType(MsgType::GetM), nullptr);
    rig.respond(MsgType::DataExcl, 0x2000);
    EXPECT_EQ(rig.l1->lineState(0x2000), CoherState::M);
}

TEST(L1Cache, ReadMissGrantedExclusiveIsE)
{
    L1Rig rig;
    ASSERT_TRUE(rig.request(0x2000, false));
    rig.respond(MsgType::DataExcl, 0x2000);
    EXPECT_EQ(rig.l1->lineState(0x2000), CoherState::E);
}

TEST(L1Cache, HitCompletesAfterLatency)
{
    L1Rig rig;
    ASSERT_TRUE(rig.request(0x1000, false));
    rig.respond(MsgType::Data, 0x1000);
    rig.completions = 0;
    ASSERT_TRUE(rig.request(0x1000, false)); // hit
    EXPECT_EQ(rig.completions, 0u);
    rig.run(rig.params.l1Latency + 1);
    EXPECT_EQ(rig.completions, 1u);
    EXPECT_EQ(rig.l1->stats().hits, 1u);
}

TEST(L1Cache, ReadsCoalesceIntoOneMshr)
{
    L1Rig rig;
    ASSERT_TRUE(rig.request(0x1000, false));
    ASSERT_TRUE(rig.request(0x1000, false));
    EXPECT_EQ(rig.l1->outstanding(), 1u);
    rig.respond(MsgType::Data, 0x1000);
    EXPECT_EQ(rig.completions, 2u);
}

TEST(L1Cache, WriteUnderReadMissIsRejected)
{
    L1Rig rig;
    ASSERT_TRUE(rig.request(0x1000, false));
    EXPECT_FALSE(rig.request(0x1000, true))
        << "incompatible request must retry later";
}

TEST(L1Cache, MshrLimitEnforced)
{
    L1Rig rig;
    rig.params.l1Mshrs = 4; // rebuild with a small limit
    rig.l1 = std::make_unique<L1Cache>(
        1, rig.amap, rig.params,
        [&](const PacketPtr &pkt, Cycle) { rig.sent.push_back(pkt); });
    for (unsigned i = 0; i < 4; ++i)
        ASSERT_TRUE(rig.request(0x1000 + 0x80 * i, false));
    EXPECT_FALSE(rig.request(0x9000, false));
    EXPECT_GE(rig.l1->stats().mshrRejects, 1u);
}

TEST(L1Cache, InvInvalidatesAndAcks)
{
    L1Rig rig;
    ASSERT_TRUE(rig.request(0x1000, false));
    rig.respond(MsgType::Data, 0x1000);
    rig.respond(MsgType::Inv, 0x1000, 0x500);
    EXPECT_EQ(rig.l1->lineState(0x1000), CoherState::I);
    auto ack = rig.lastOfType(MsgType::InvAck);
    ASSERT_NE(ack, nullptr);
    EXPECT_EQ(ack->aux, 0x500u) << "the tx tag must be echoed";
}

TEST(L1Cache, FetchDowngradesOwnerToO)
{
    L1Rig rig;
    ASSERT_TRUE(rig.request(0x1000, true));
    rig.respond(MsgType::DataExcl, 0x1000);
    rig.respond(MsgType::Fetch, 0x1000, 0x300); // downgrade fetch
    EXPECT_EQ(rig.l1->lineState(0x1000), CoherState::O);
    auto resp = rig.lastOfType(MsgType::FetchResp);
    ASSERT_NE(resp, nullptr);
    EXPECT_EQ(resp->aux & ~2u, 0x300u);
    EXPECT_EQ(resp->aux & 2u, 0u) << "owner had the data";
}

TEST(L1Cache, InvalidatingFetchDropsLine)
{
    L1Rig rig;
    ASSERT_TRUE(rig.request(0x1000, true));
    rig.respond(MsgType::DataExcl, 0x1000);
    rig.respond(MsgType::Fetch, 0x1000, 0x301); // bit0: invalidate
    EXPECT_EQ(rig.l1->lineState(0x1000), CoherState::I);
}

TEST(L1Cache, FetchWithoutLineReportsNoData)
{
    L1Rig rig;
    rig.respond(MsgType::Fetch, 0x7000, 0x100);
    auto resp = rig.lastOfType(MsgType::FetchResp);
    ASSERT_NE(resp, nullptr);
    EXPECT_NE(resp->aux & 2u, 0u);
}

TEST(L1Cache, DirtyEvictionWritesBack)
{
    L1Rig rig;
    // Fill all 4 ways of one set with M lines, then one more.
    const Addr stride = 64 * 128; // l1Sets * lineBytes
    for (unsigned i = 0; i < 5; ++i) {
        Addr a = 0x1000 + i * stride;
        ASSERT_TRUE(rig.request(a, true));
        rig.respond(MsgType::DataExcl, a);
    }
    EXPECT_GE(rig.l1->stats().evictions, 1u);
    EXPECT_NE(rig.lastOfType(MsgType::PutM), nullptr);
}

TEST(L1Cache, CleanExclusiveEvictionNotifiesHome)
{
    L1Rig rig;
    const Addr stride = 64 * 128;
    for (unsigned i = 0; i < 5; ++i) {
        Addr a = 0x1000 + i * stride;
        ASSERT_TRUE(rig.request(a, false));
        rig.respond(MsgType::DataExcl, a); // E fills
    }
    EXPECT_NE(rig.lastOfType(MsgType::PutE), nullptr);
}
