/**
 * @file
 * Unit tests for the memory controller model.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/mem_controller.hh"

using namespace ocor;

namespace
{

struct McRig
{
    MemParams params;
    std::vector<std::pair<PacketPtr, Cycle>> sent;
    MemController mc;
    Cycle now = 0;

    McRig()
        : mc(2, params,
             [this](const PacketPtr &pkt, Cycle c) {
                 sent.emplace_back(pkt, c);
             })
    {}

    void
    run(Cycle cycles)
    {
        for (Cycle end = now + cycles; now < end; ++now)
            mc.tick(now);
    }
};

} // namespace

TEST(MemController, ReadRespondsAfterDramLatency)
{
    McRig rig;
    auto req = makePacket(MsgType::MemRead, 5, 2, 0x4000);
    rig.mc.handle(req, 0);
    rig.run(rig.params.dramLatency);
    EXPECT_TRUE(rig.sent.empty());
    rig.run(2);
    ASSERT_EQ(rig.sent.size(), 1u);
    EXPECT_EQ(rig.sent[0].first->type, MsgType::MemResp);
    EXPECT_EQ(rig.sent[0].first->dst, 5u);
    EXPECT_EQ(rig.sent[0].first->addr, 0x4000u);
    EXPECT_EQ(rig.sent[0].first->numFlits, 8u);
}

TEST(MemController, WritesAreAbsorbed)
{
    McRig rig;
    rig.mc.handle(makePacket(MsgType::MemWrite, 5, 2, 0x4000), 0);
    rig.run(rig.params.dramLatency + 10);
    EXPECT_TRUE(rig.sent.empty());
    EXPECT_EQ(rig.mc.stats().writes, 1u);
    EXPECT_TRUE(rig.mc.idle());
}

TEST(MemController, ServiceIntervalSpacesRequests)
{
    McRig rig;
    // Two reads in the same cycle: responses must be spaced by the
    // service interval, not returned together.
    rig.mc.handle(makePacket(MsgType::MemRead, 5, 2, 0x4000), 0);
    rig.mc.handle(makePacket(MsgType::MemRead, 6, 2, 0x8000), 0);
    rig.run(rig.params.dramLatency + rig.params.mcServiceInterval
            + 5);
    ASSERT_EQ(rig.sent.size(), 2u);
    Cycle gap = rig.sent[1].second - rig.sent[0].second;
    EXPECT_GE(gap, rig.params.mcServiceInterval);
}

TEST(MemController, QueueDrainsInOrder)
{
    McRig rig;
    for (unsigned i = 0; i < 5; ++i)
        rig.mc.handle(makePacket(MsgType::MemRead, i, 2, 0x100 * i),
                      0);
    rig.run(rig.params.dramLatency
            + 6 * rig.params.mcServiceInterval);
    ASSERT_EQ(rig.sent.size(), 5u);
    for (unsigned i = 0; i < 5; ++i)
        EXPECT_EQ(rig.sent[i].first->dst, i);
    EXPECT_GE(rig.mc.stats().queuePeak, 4u);
}

TEST(MemControllerDeath, RejectsWrongMessage)
{
    McRig rig;
    EXPECT_DEATH(rig.mc.handle(
                     makePacket(MsgType::GetS, 0, 2, 0x100), 0),
                 "unexpected");
}
