/**
 * @file
 * Unit tests for OcorConfig validation and derived values.
 */

#include <gtest/gtest.h>

#include "core/ocor_config.hh"

using namespace ocor;

TEST(OcorConfig, DefaultsMatchPaper)
{
    OcorConfig cfg;
    EXPECT_FALSE(cfg.enabled);
    EXPECT_EQ(cfg.maxSpinCount, 128u); // Linux 4.2 footnote
    EXPECT_EQ(cfg.numRtrLevels, 8u);   // Section 5.2.5 default
    EXPECT_EQ(cfg.rtrSegmentWidth(), 16u); // 8 x 16 = 128
    EXPECT_TRUE(cfg.ruleSlowProgressFirst);
    EXPECT_TRUE(cfg.ruleLockFirst);
    EXPECT_TRUE(cfg.ruleLeastRtrFirst);
    EXPECT_TRUE(cfg.ruleWakeupLast);
}

TEST(OcorConfig, SegmentWidthRoundsDown)
{
    OcorConfig cfg;
    cfg.maxSpinCount = 100;
    cfg.numRtrLevels = 8;
    EXPECT_EQ(cfg.rtrSegmentWidth(), 12u);
}

TEST(OcorConfig, SegmentWidthNeverZero)
{
    OcorConfig cfg;
    cfg.maxSpinCount = 4;
    cfg.numRtrLevels = 32;
    EXPECT_EQ(cfg.rtrSegmentWidth(), 1u);
}

TEST(OcorConfig, ValidateAcceptsDefaults)
{
    OcorConfig cfg;
    cfg.validate(); // must not exit
    SUCCEED();
}

TEST(OcorConfigDeath, RejectsZeroSpin)
{
    OcorConfig cfg;
    cfg.maxSpinCount = 0;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "maxSpinCount");
}

TEST(OcorConfigDeath, RejectsZeroLevels)
{
    OcorConfig cfg;
    cfg.numRtrLevels = 0;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "numRtrLevels");
}

TEST(OcorConfigDeath, RejectsHugeLevels)
{
    OcorConfig cfg;
    cfg.numRtrLevels = 63;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "numRtrLevels");
}

TEST(OcorConfigDeath, RejectsZeroProgressWidth)
{
    OcorConfig cfg;
    cfg.progressSegmentWidth = 0;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "progressSegmentWidth");
}
