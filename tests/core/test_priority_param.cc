/**
 * @file
 * Parameterized property sweeps over the OCOR priority-encoding
 * configuration space (level counts, spin budgets, progress
 * widths).
 */

#include <gtest/gtest.h>

#include "core/priority.hh"

using namespace ocor;

namespace
{

struct EncCase
{
    unsigned maxSpin;
    unsigned rtrLevels;
    unsigned progLevels;
    unsigned progWidth;
};

std::string
caseName(const ::testing::TestParamInfo<EncCase> &info)
{
    const auto &p = info.param;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "spin%u_lvl%u_p%u_w%u",
                  p.maxSpin, p.rtrLevels, p.progLevels,
                  p.progWidth);
    return buf;
}

class EncodingSweep : public ::testing::TestWithParam<EncCase>
{
  protected:
    OcorConfig
    cfg() const
    {
        OcorConfig c;
        c.enabled = true;
        c.maxSpinCount = GetParam().maxSpin;
        c.numRtrLevels = GetParam().rtrLevels;
        c.numProgressLevels = GetParam().progLevels;
        c.progressSegmentWidth = GetParam().progWidth;
        return c;
    }
};

} // namespace

TEST_P(EncodingSweep, ConfigValidates)
{
    cfg().validate();
    SUCCEED();
}

TEST_P(EncodingSweep, RtrLevelsWithinRangeAndMonotone)
{
    OcorConfig c = cfg();
    unsigned prev_level = c.numRtrLevels + 1;
    for (unsigned rtr = 1; rtr <= c.maxSpinCount; ++rtr) {
        unsigned level = rtrToLevel(c, rtr);
        ASSERT_GE(level, 1u);
        ASSERT_LE(level, c.numRtrLevels);
        ASSERT_LE(level, prev_level) << "rtr " << rtr;
        prev_level = level;
    }
    // Extremes: smallest RTR -> top level; largest -> level 1.
    EXPECT_EQ(rtrToLevel(c, 1), c.numRtrLevels);
    EXPECT_EQ(rtrToLevel(c, c.maxSpinCount), 1u);
}

TEST_P(EncodingSweep, EveryLevelIsReachable)
{
    OcorConfig c = cfg();
    if (c.numRtrLevels > c.maxSpinCount)
        GTEST_SKIP() << "more levels than retries";
    std::vector<bool> seen(c.numRtrLevels + 1, false);
    for (unsigned rtr = 1; rtr <= c.maxSpinCount; ++rtr)
        seen[rtrToLevel(c, rtr)] = true;
    for (unsigned l = 1; l <= c.numRtrLevels; ++l)
        EXPECT_TRUE(seen[l]) << "level " << l << " unreachable";
}

TEST_P(EncodingSweep, RankRespectsRtrOrdering)
{
    OcorConfig c = cfg();
    for (unsigned a = 1; a < c.maxSpinCount; a += 7) {
        for (unsigned b = a + 1; b <= c.maxSpinCount; b += 11) {
            auto fa = makePriority(c, PriorityClass::LockTry, a, 0);
            auto fb = makePriority(c, PriorityClass::LockTry, b, 0);
            EXPECT_GE(priorityRank(c, fa), priorityRank(c, fb))
                << "rtr " << a << " vs " << b;
        }
    }
}

TEST_P(EncodingSweep, WakeupAlwaysBelowEveryTry)
{
    OcorConfig c = cfg();
    auto wake = makePriority(c, PriorityClass::Wakeup, 1, 0);
    for (unsigned rtr = 1; rtr <= c.maxSpinCount;
         rtr += std::max(1u, c.maxSpinCount / 16)) {
        auto f = makePriority(c, PriorityClass::LockTry, rtr, 0);
        EXPECT_GT(priorityRank(c, f), priorityRank(c, wake));
    }
}

TEST_P(EncodingSweep, ProgressSegmentsSaturate)
{
    OcorConfig c = cfg();
    unsigned prev = 0;
    for (std::uint64_t prog = 0;
         prog < static_cast<std::uint64_t>(c.numProgressLevels + 2)
             * c.progressSegmentWidth;
         ++prog) {
        unsigned seg = progressToSegment(c, prog);
        ASSERT_LT(seg, c.numProgressLevels);
        ASSERT_GE(seg, prev);
        prev = seg;
    }
    EXPECT_EQ(progressToSegment(c, ~std::uint64_t{0} / 2),
              c.numProgressLevels - 1);
}

TEST_P(EncodingSweep, SlowerProgressAlwaysOutranks)
{
    OcorConfig c = cfg();
    if (c.numProgressLevels == 1)
        GTEST_SKIP() << "one segment cannot express progress order";
    std::uint64_t far_prog = static_cast<std::uint64_t>(
        c.numProgressLevels) * c.progressSegmentWidth;
    auto slow = makePriority(c, PriorityClass::LockTry,
                             c.maxSpinCount, 0);
    auto fast = makePriority(c, PriorityClass::LockTry, 1, far_prog);
    EXPECT_GT(priorityRank(c, slow), priorityRank(c, fast));
}

INSTANTIATE_TEST_SUITE_P(
    Space, EncodingSweep,
    ::testing::Values(EncCase{128, 8, 8, 4},   // paper default
                      EncCase{128, 1, 8, 4},   // single level
                      EncCase{128, 2, 8, 4},
                      EncCase{128, 4, 8, 4},
                      EncCase{128, 16, 8, 4},
                      EncCase{128, 32, 8, 4},  // Fig. 16 sweep
                      EncCase{64, 8, 8, 4},    // smaller budget
                      EncCase{100, 8, 8, 4},   // non-divisible
                      EncCase{128, 7, 8, 4},   // non-divisible
                      EncCase{128, 8, 1, 1},   // degenerate progress
                      EncCase{128, 8, 16, 2},
                      EncCase{4, 4, 4, 4}),    // tiny budget
    caseName);
