/**
 * @file
 * Unit tests for the OCOR priority encoding and the Table-1 rules.
 */

#include <gtest/gtest.h>

#include "core/priority.hh"

using namespace ocor;

namespace
{
OcorConfig
enabledCfg()
{
    OcorConfig cfg;
    cfg.enabled = true;
    return cfg;
}
} // namespace

TEST(RtrToLevel, PaperMapping)
{
    // 128 retries, 8 levels, 16 retries per segment; the smallest
    // RTR maps to the highest level (8), the largest to level 1.
    OcorConfig cfg = enabledCfg();
    EXPECT_EQ(cfg.rtrSegmentWidth(), 16u);
    EXPECT_EQ(rtrToLevel(cfg, 1), 8u);
    EXPECT_EQ(rtrToLevel(cfg, 16), 8u);
    EXPECT_EQ(rtrToLevel(cfg, 17), 7u);
    EXPECT_EQ(rtrToLevel(cfg, 64), 5u);
    EXPECT_EQ(rtrToLevel(cfg, 112), 2u);
    EXPECT_EQ(rtrToLevel(cfg, 113), 1u);
    EXPECT_EQ(rtrToLevel(cfg, 128), 1u);
}

TEST(RtrToLevel, ClampsOutOfRange)
{
    OcorConfig cfg = enabledCfg();
    EXPECT_EQ(rtrToLevel(cfg, 0), 8u);    // clamped to 1
    EXPECT_EQ(rtrToLevel(cfg, 9999), 1u); // clamped to maxSpinCount
}

TEST(RtrToLevel, MonotoneNonIncreasing)
{
    OcorConfig cfg = enabledCfg();
    unsigned prev = rtrToLevel(cfg, 1);
    for (unsigned rtr = 2; rtr <= cfg.maxSpinCount; ++rtr) {
        unsigned level = rtrToLevel(cfg, rtr);
        EXPECT_LE(level, prev) << "rtr=" << rtr;
        EXPECT_GE(level, 1u);
        prev = level;
    }
}

TEST(RtrToLevel, SingleLevelConfig)
{
    OcorConfig cfg = enabledCfg();
    cfg.numRtrLevels = 1;
    for (unsigned rtr : {1u, 64u, 128u})
        EXPECT_EQ(rtrToLevel(cfg, rtr), 1u);
}

TEST(RtrToLevel, SixteenLevels)
{
    OcorConfig cfg = enabledCfg();
    cfg.numRtrLevels = 16;
    EXPECT_EQ(cfg.rtrSegmentWidth(), 8u);
    EXPECT_EQ(rtrToLevel(cfg, 1), 16u);
    EXPECT_EQ(rtrToLevel(cfg, 128), 1u);
}

TEST(ProgressToSegment, SaturatesAtLast)
{
    OcorConfig cfg = enabledCfg();
    EXPECT_EQ(progressToSegment(cfg, 0), 0u);
    EXPECT_EQ(progressToSegment(cfg, 3), 0u);
    EXPECT_EQ(progressToSegment(cfg, 4), 1u);
    EXPECT_EQ(progressToSegment(cfg, 1000000),
              cfg.numProgressLevels - 1);
}

TEST(MakePriority, NormalPacketsHaveNoFields)
{
    OcorConfig cfg = enabledCfg();
    auto f = makePriority(cfg, PriorityClass::Normal, 5, 2);
    EXPECT_FALSE(f.check);
    EXPECT_EQ(f.priorityBits, 0u);
    EXPECT_EQ(f.progressBits, 0u);
}

TEST(MakePriority, DisabledProducesNoFields)
{
    OcorConfig cfg; // disabled
    auto f = makePriority(cfg, PriorityClass::LockTry, 1, 0);
    EXPECT_FALSE(f.check);
}

TEST(MakePriority, LockTryEncodesRtrLevel)
{
    OcorConfig cfg = enabledCfg();
    auto urgent = makePriority(cfg, PriorityClass::LockTry, 1, 0);
    auto fresh = makePriority(cfg, PriorityClass::LockTry, 128, 0);
    EXPECT_TRUE(urgent.check);
    EXPECT_EQ(onehotDecode(urgent.priorityBits), 8u);
    EXPECT_EQ(onehotDecode(fresh.priorityBits), 1u);
}

TEST(MakePriority, WakeupGetsLowestLevel)
{
    OcorConfig cfg = enabledCfg();
    auto w = makePriority(cfg, PriorityClass::Wakeup, 1, 0);
    EXPECT_TRUE(w.check);
    EXPECT_EQ(onehotDecode(w.priorityBits), 0u);
}

TEST(MakePriority, ReleaseGetsTopLockLevel)
{
    OcorConfig cfg = enabledCfg();
    auto r = makePriority(cfg, PriorityClass::LockRelease, 64, 3);
    EXPECT_TRUE(r.check);
    EXPECT_EQ(onehotDecode(r.priorityBits), cfg.numRtrLevels);
}

// ---- Table 1 rules expressed over priorityRank -----------------------

TEST(PriorityRank, Rule2LockBeforeNormal)
{
    OcorConfig cfg = enabledCfg();
    auto lock_f = makePriority(cfg, PriorityClass::LockTry, 128, 100);
    auto norm_f = makePriority(cfg, PriorityClass::Normal, 0, 0);
    EXPECT_GT(priorityRank(cfg, lock_f), priorityRank(cfg, norm_f));
}

TEST(PriorityRank, Rule3LeastRtrFirst)
{
    OcorConfig cfg = enabledCfg();
    auto small = makePriority(cfg, PriorityClass::LockTry, 3, 5);
    auto large = makePriority(cfg, PriorityClass::LockTry, 120, 5);
    EXPECT_GT(priorityRank(cfg, small), priorityRank(cfg, large));
}

TEST(PriorityRank, Rule4WakeupLast)
{
    OcorConfig cfg = enabledCfg();
    auto wake = makePriority(cfg, PriorityClass::Wakeup, 1, 5);
    auto try_worst = makePriority(cfg, PriorityClass::LockTry, 128, 5);
    EXPECT_GT(priorityRank(cfg, try_worst), priorityRank(cfg, wake));
    // ...but a wakeup still beats normal traffic (rule 2).
    auto norm = makePriority(cfg, PriorityClass::Normal, 0, 0);
    EXPECT_GT(priorityRank(cfg, wake), priorityRank(cfg, norm));
}

TEST(PriorityRank, Rule1SlowProgressDominates)
{
    OcorConfig cfg = enabledCfg();
    // Slow-progress thread with the *worst* RTR still beats a
    // fast-progress thread with the best RTR.
    auto slow = makePriority(cfg, PriorityClass::LockTry, 128, 0);
    auto fast = makePriority(cfg, PriorityClass::LockTry, 1, 100);
    EXPECT_GT(priorityRank(cfg, slow), priorityRank(cfg, fast));
}

TEST(PriorityRank, DisabledIsAllZero)
{
    OcorConfig cfg; // disabled
    OcorConfig on = enabledCfg();
    auto f = makePriority(on, PriorityClass::LockTry, 1, 0);
    EXPECT_EQ(priorityRank(cfg, f), 0u);
}

TEST(PriorityRank, RuleSwitchLeastRtrOff)
{
    OcorConfig cfg = enabledCfg();
    cfg.ruleLeastRtrFirst = false;
    auto a = makePriority(cfg, PriorityClass::LockTry, 1, 5);
    auto b = makePriority(cfg, PriorityClass::LockTry, 128, 5);
    EXPECT_EQ(priorityRank(cfg, a), priorityRank(cfg, b));
}

TEST(PriorityRank, RuleSwitchWakeupLastOff)
{
    OcorConfig cfg = enabledCfg();
    cfg.ruleWakeupLast = false;
    auto wake = makePriority(cfg, PriorityClass::Wakeup, 1, 5);
    auto spin = makePriority(cfg, PriorityClass::LockTry, 1, 5);
    EXPECT_EQ(priorityRank(cfg, wake), priorityRank(cfg, spin));
}

TEST(PriorityRank, RuleSwitchSlowProgressOff)
{
    OcorConfig cfg = enabledCfg();
    cfg.ruleSlowProgressFirst = false;
    auto slow = makePriority(cfg, PriorityClass::LockTry, 64, 0);
    auto fast = makePriority(cfg, PriorityClass::LockTry, 64, 1000);
    EXPECT_EQ(priorityRank(cfg, slow), priorityRank(cfg, fast));
}

TEST(PriorityRank, RuleSwitchLockFirstOffCollapsesToBaseline)
{
    OcorConfig cfg = enabledCfg();
    cfg.ruleLockFirst = false;
    auto f = makePriority(cfg, PriorityClass::LockTry, 1, 0);
    EXPECT_FALSE(f.check);
    EXPECT_EQ(priorityRank(cfg, f), 0u);
}

TEST(PriorityRank, FullOrderIsLexicographic)
{
    OcorConfig cfg = enabledCfg();
    // Enumerate (progress segment, level) and verify rank ordering is
    // progress-major then level.
    std::uint64_t prev = 0;
    bool first = true;
    for (int seg = static_cast<int>(cfg.numProgressLevels) - 1;
         seg >= 0; --seg) {
        for (unsigned level = 0; level <= cfg.numRtrLevels; ++level) {
            PriorityFields f;
            f.check = true;
            f.priorityBits = onehotEncode(level);
            f.progressBits = onehotEncode(static_cast<unsigned>(seg));
            auto r = priorityRank(cfg, f);
            if (!first) {
                EXPECT_GT(r, prev) << "seg=" << seg
                                   << " level=" << level;
            }
            prev = r;
            first = false;
        }
    }
}
