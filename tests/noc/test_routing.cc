/**
 * @file
 * Unit tests for mesh geometry and XY routing.
 */

#include <gtest/gtest.h>

#include "noc/routing.hh"

using namespace ocor;

TEST(MeshShape, CoordinatesRoundTrip)
{
    MeshShape m{8, 8};
    for (NodeId n = 0; n < m.numNodes(); ++n)
        EXPECT_EQ(m.nodeAt(m.xOf(n), m.yOf(n)), n);
}

TEST(MeshShape, NeighborsInterior)
{
    MeshShape m{8, 8};
    NodeId c = m.nodeAt(3, 3);
    EXPECT_EQ(m.neighbor(c, PortNorth), m.nodeAt(3, 2));
    EXPECT_EQ(m.neighbor(c, PortSouth), m.nodeAt(3, 4));
    EXPECT_EQ(m.neighbor(c, PortEast), m.nodeAt(4, 3));
    EXPECT_EQ(m.neighbor(c, PortWest), m.nodeAt(2, 3));
}

TEST(MeshShape, NeighborsAtEdges)
{
    MeshShape m{8, 8};
    EXPECT_EQ(m.neighbor(m.nodeAt(0, 0), PortNorth), invalidNode);
    EXPECT_EQ(m.neighbor(m.nodeAt(0, 0), PortWest), invalidNode);
    EXPECT_EQ(m.neighbor(m.nodeAt(7, 7), PortSouth), invalidNode);
    EXPECT_EQ(m.neighbor(m.nodeAt(7, 7), PortEast), invalidNode);
}

TEST(MeshShape, HopsIsManhattan)
{
    MeshShape m{8, 8};
    EXPECT_EQ(m.hops(m.nodeAt(0, 0), m.nodeAt(7, 7)), 14u);
    EXPECT_EQ(m.hops(m.nodeAt(2, 3), m.nodeAt(2, 3)), 0u);
    EXPECT_EQ(m.hops(m.nodeAt(5, 1), m.nodeAt(2, 6)), 8u);
}

TEST(XyRoute, LocalDelivery)
{
    MeshShape m{8, 8};
    for (NodeId n = 0; n < m.numNodes(); ++n)
        EXPECT_EQ(xyRoute(m, n, n), PortLocal);
}

TEST(XyRoute, XBeforeY)
{
    MeshShape m{8, 8};
    // From (1,1) to (5,6): must go East until x matches.
    EXPECT_EQ(xyRoute(m, m.nodeAt(1, 1), m.nodeAt(5, 6)), PortEast);
    // Same column: go South.
    EXPECT_EQ(xyRoute(m, m.nodeAt(5, 1), m.nodeAt(5, 6)), PortSouth);
    // West and North cases.
    EXPECT_EQ(xyRoute(m, m.nodeAt(5, 6), m.nodeAt(1, 6)), PortWest);
    EXPECT_EQ(xyRoute(m, m.nodeAt(1, 6), m.nodeAt(1, 1)), PortNorth);
}

TEST(XyRoute, EveryPairTerminates)
{
    // Property: following xyRoute step by step always reaches dst in
    // exactly hops(src, dst) steps (deadlock-free, minimal).
    MeshShape m{4, 4};
    for (NodeId s = 0; s < m.numNodes(); ++s) {
        for (NodeId d = 0; d < m.numNodes(); ++d) {
            NodeId here = s;
            unsigned steps = 0;
            while (here != d) {
                unsigned port = xyRoute(m, here, d);
                ASSERT_NE(port, static_cast<unsigned>(PortLocal));
                here = m.neighbor(here, port);
                ASSERT_NE(here, invalidNode);
                ASSERT_LE(++steps, 16u);
            }
            EXPECT_EQ(steps, m.hops(s, d));
        }
    }
}

TEST(XyRoute, NonSquareMesh)
{
    MeshShape m{8, 4};
    EXPECT_EQ(m.numNodes(), 32u);
    EXPECT_EQ(xyRoute(m, m.nodeAt(0, 0), m.nodeAt(7, 3)), PortEast);
    NodeId here = m.nodeAt(0, 0);
    unsigned steps = 0;
    while (here != m.nodeAt(7, 3)) {
        here = m.neighbor(here, xyRoute(m, here, m.nodeAt(7, 3)));
        ++steps;
    }
    EXPECT_EQ(steps, 10u);
}

TEST(PortName, AllNamed)
{
    EXPECT_STREQ(portName(PortNorth), "N");
    EXPECT_STREQ(portName(PortEast), "E");
    EXPECT_STREQ(portName(PortSouth), "S");
    EXPECT_STREQ(portName(PortWest), "W");
    EXPECT_STREQ(portName(PortLocal), "L");
    EXPECT_STREQ(portName(99), "?");
}
