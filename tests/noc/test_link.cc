/**
 * @file
 * Unit tests for the pipelined link.
 */

#include <gtest/gtest.h>

#include "noc/link.hh"

using namespace ocor;

namespace
{
Flit
makeFlit(unsigned vc = 0)
{
    Flit f;
    f.pkt = makePacket(MsgType::GetS, 0, 1, 0x100);
    f.type = FlitType::HeadTail;
    f.vc = vc;
    return f;
}
} // namespace

TEST(Link, FlitArrivesAfterLatency)
{
    Link link(1);
    link.sendFlit(makeFlit(), 10);
    EXPECT_FALSE(link.takeFlit(10).has_value());
    auto f = link.takeFlit(11);
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->pkt->type, MsgType::GetS);
    EXPECT_FALSE(link.takeFlit(12).has_value());
}

TEST(Link, MultiCycleLatency)
{
    Link link(3);
    link.sendFlit(makeFlit(), 0);
    EXPECT_FALSE(link.takeFlit(2).has_value());
    EXPECT_TRUE(link.takeFlit(3).has_value());
}

TEST(Link, BackToBackFlits)
{
    Link link(1);
    link.sendFlit(makeFlit(0), 0);
    link.sendFlit(makeFlit(1), 1);
    auto a = link.takeFlit(1);
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->vc, 0u);
    auto b = link.takeFlit(2);
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(b->vc, 1u);
}

TEST(Link, CreditsDeliveredAfterLatency)
{
    Link link(1);
    link.sendCredit(3, 5);
    link.sendCredit(4, 5); // multiple credits per cycle are fine
    EXPECT_TRUE(link.takeCredits(5).empty());
    auto credits = link.takeCredits(6);
    ASSERT_EQ(credits.size(), 2u);
    EXPECT_EQ(credits[0], 3u);
    EXPECT_EQ(credits[1], 4u);
    EXPECT_TRUE(link.takeCredits(7).empty());
}

TEST(Link, IdleTracksOccupancy)
{
    Link link(1);
    EXPECT_TRUE(link.idle());
    link.sendFlit(makeFlit(), 0);
    EXPECT_FALSE(link.idle());
    (void)link.takeFlit(1);
    EXPECT_TRUE(link.idle());
    link.sendCredit(0, 2);
    EXPECT_FALSE(link.idle());
    (void)link.takeCredits(3);
    EXPECT_TRUE(link.idle());
}

TEST(LinkDeath, TwoFlitsSameCyclePanics)
{
    Link link(1);
    link.sendFlit(makeFlit(), 0);
    EXPECT_DEATH(link.sendFlit(makeFlit(), 0), "two flits");
}

TEST(LinkDeath, MissedDeliveryPanics)
{
    Link link(1);
    link.sendFlit(makeFlit(), 0);
    EXPECT_DEATH((void)link.takeFlit(5), "missed");
}
