/**
 * @file
 * Unit tests for the network interface: packetization, VC
 * assignment, credit flow, priority-ordered injection, reassembly.
 */

#include <gtest/gtest.h>

#include <vector>

#include "noc/network_interface.hh"

using namespace ocor;

namespace
{

struct NiRig
{
    NocParams params;
    OcorConfig ocor;
    OcorConfig stamping;
    std::unique_ptr<NetworkInterface> ni;
    Link toRouter;
    Link fromRouter;
    std::vector<PacketPtr> delivered;

    explicit NiRig(bool ocor_on = false)
    {
        ocor.enabled = ocor_on;
        stamping.enabled = true;
        ni = std::make_unique<NetworkInterface>(3, params, ocor);
        ni->attach(&toRouter, &fromRouter);
        ni->setDeliver([this](const PacketPtr &pkt, Cycle) {
            delivered.push_back(pkt);
        });
    }

    /** Collect flits the NI put on the wire up to cycle @p upto. */
    std::vector<Flit>
    drainFlits(Cycle from, Cycle upto)
    {
        std::vector<Flit> out;
        for (Cycle c = from; c <= upto; ++c) {
            ni->tick(c);
            if (auto f = toRouter.takeFlit(c)) {
                toRouter.sendCredit(f->vc, c); // instant consumer
                out.push_back(*f);
            }
        }
        return out;
    }
};

} // namespace

TEST(NetworkInterface, SerializesDataPacketIntoFlits)
{
    NiRig rig;
    auto pkt = makePacket(MsgType::Data, 3, 7, 0x1000);
    rig.ni->inject(pkt, 0);
    auto flits = rig.drainFlits(0, 30);
    ASSERT_EQ(flits.size(), 8u);
    EXPECT_TRUE(flits.front().isHead());
    EXPECT_TRUE(flits.back().isTail());
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(flits[i].index, i);
    EXPECT_EQ(rig.ni->stats().packetsInjected, 1u);
    EXPECT_EQ(rig.ni->stats().flitsInjected, 8u);
}

TEST(NetworkInterface, OneFlitPerCycleEvenWithManyPackets)
{
    NiRig rig;
    for (unsigned i = 0; i < 4; ++i)
        rig.ni->inject(makePacket(MsgType::GetS, 3, 7, 0x80 * i), 0);
    // The Link panics if the NI ever sends two flits in one cycle;
    // draining everything exercises that invariant.
    auto flits = rig.drainFlits(0, 40);
    EXPECT_EQ(flits.size(), 4u);
}

TEST(NetworkInterface, LoopbackDeliversLocally)
{
    NiRig rig;
    auto pkt = makePacket(MsgType::GetS, 3, 3, 0x80);
    rig.ni->inject(pkt, 5);
    for (Cycle c = 5; c < 10; ++c)
        rig.ni->tick(c);
    ASSERT_EQ(rig.delivered.size(), 1u);
    EXPECT_EQ(rig.ni->stats().flitsInjected, 0u);
}

TEST(NetworkInterface, ReassemblesIncomingPacket)
{
    NiRig rig;
    auto pkt = makePacket(MsgType::Data, 7, 3, 0x2000);
    for (unsigned i = 0; i < 8; ++i) {
        Flit f;
        f.pkt = pkt;
        f.index = i;
        f.type = flitTypeFor(i, 8);
        f.vc = 2;
        rig.fromRouter.sendFlit(f, i);
    }
    for (Cycle c = 0; c <= 12; ++c)
        rig.ni->tick(c);
    ASSERT_EQ(rig.delivered.size(), 1u);
    EXPECT_EQ(rig.delivered[0]->id, pkt->id);
    // One credit returned per consumed flit.
    unsigned credits = 0;
    for (Cycle c = 0; c <= 13; ++c)
        credits += static_cast<unsigned>(
            rig.fromRouter.takeCredits(c).size());
    EXPECT_EQ(credits, 8u);
}

TEST(NetworkInterface, PriorityPacketJumpsInjectionQueue)
{
    NiRig rig(/*ocor_on=*/true);
    // Fill the queue with enough data packets to occupy every VC,
    // then inject a prioritized lock packet: it must leave before
    // the queued-but-unassigned data packets.
    for (unsigned i = 0; i < rig.params.numVcs + 3; ++i)
        rig.ni->inject(makePacket(MsgType::Data, 3, 7, 0x100 * i),
                       0);
    auto lock = makePacket(MsgType::LockTry, 3, 7, 0x9000);
    lock->priority = makePriority(rig.stamping,
                                  PriorityClass::LockTry, 1, 0);
    rig.ni->inject(lock, 0);

    auto flits = rig.drainFlits(0, 120);
    // Find the injection position of the lock packet's flit vs the
    // last data packet's head.
    int lock_pos = -1;
    int last_data_head = -1;
    for (std::size_t i = 0; i < flits.size(); ++i) {
        if (flits[i].pkt->id == lock->id)
            lock_pos = static_cast<int>(i);
        else if (flits[i].isHead())
            last_data_head = static_cast<int>(i);
    }
    ASSERT_GE(lock_pos, 0);
    EXPECT_LT(lock_pos, last_data_head)
        << "the lock packet must not drain behind the whole queue";
}

TEST(NetworkInterface, BaselineKeepsFifoOrder)
{
    NiRig rig(/*ocor_on=*/false);
    std::vector<std::uint64_t> ids;
    for (unsigned i = 0; i < 3; ++i) {
        auto pkt = makePacket(MsgType::GetS, 3, 7, 0x100 * i);
        ids.push_back(pkt->id);
        rig.ni->inject(pkt, 0);
    }
    auto flits = rig.drainFlits(0, 40);
    ASSERT_EQ(flits.size(), 3u);
    for (unsigned i = 0; i < 3; ++i)
        EXPECT_EQ(flits[i].pkt->id, ids[i]);
}

TEST(NetworkInterface, IdleReflectsState)
{
    NiRig rig;
    EXPECT_TRUE(rig.ni->idle());
    rig.ni->inject(makePacket(MsgType::GetS, 3, 7, 0x80), 0);
    EXPECT_FALSE(rig.ni->idle());
    rig.drainFlits(0, 20);
    EXPECT_TRUE(rig.ni->idle());
}

TEST(NetworkInterface, QueueDepthTracked)
{
    NiRig rig;
    for (unsigned i = 0; i < 10; ++i)
        rig.ni->inject(makePacket(MsgType::Data, 3, 7, 0x80 * i), 0);
    EXPECT_EQ(rig.ni->queueDepth(), 10u);
    EXPECT_GE(rig.ni->stats().injectQueuePeak, 10u);
}
