/**
 * @file
 * Unit tests for the rank arbiter and the one-hot LPA (Figure 9).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "noc/arbiter.hh"

using namespace ocor;

TEST(Arbiter, NoRequestersReturnsMinusOne)
{
    Arbiter arb(4);
    std::vector<std::int64_t> ranks{-1, -1, -1, -1};
    EXPECT_EQ(arb.pick(ranks), -1);
}

TEST(Arbiter, SingleRequesterWins)
{
    Arbiter arb(4);
    std::vector<std::int64_t> ranks{-1, 0, -1, -1};
    EXPECT_EQ(arb.pick(ranks), 1);
}

TEST(Arbiter, HighestRankWins)
{
    Arbiter arb(4);
    std::vector<std::int64_t> ranks{3, 9, 2, 9};
    int w = arb.pick(ranks);
    EXPECT_TRUE(w == 1 || w == 3);
}

TEST(Arbiter, RoundRobinRotatesTies)
{
    Arbiter arb(3);
    std::vector<std::int64_t> ranks{0, 0, 0};
    std::vector<int> wins;
    for (int i = 0; i < 6; ++i)
        wins.push_back(arb.pick(ranks));
    // Every input must win exactly twice over 6 rounds.
    for (int input = 0; input < 3; ++input)
        EXPECT_EQ(std::count(wins.begin(), wins.end(), input), 2)
            << "input " << input;
}

TEST(Arbiter, PointerAdvancesPastWinner)
{
    Arbiter arb(4);
    std::vector<std::int64_t> ranks{0, 0, 0, 0};
    int first = arb.pick(ranks);
    int second = arb.pick(ranks);
    EXPECT_NE(first, second);
}

TEST(Arbiter, RankBeatsRoundRobinPosition)
{
    Arbiter arb(4);
    std::vector<std::int64_t> equal{0, 0, 0, 0};
    arb.pick(equal); // pointer now at 1
    std::vector<std::int64_t> ranks{5, 0, 0, 0};
    EXPECT_EQ(arb.pick(ranks), 0); // rank 5 wins despite pointer
}

TEST(ArbiterDeath, SizeMismatchPanics)
{
    Arbiter arb(4);
    std::vector<std::int64_t> ranks{0, 0};
    EXPECT_DEATH(arb.pick(ranks), "ranks");
}

// ---- grantSingle fast path (must be invisible vs pick) ----------------

TEST(Arbiter, GrantSingleMatchesPickResult)
{
    for (unsigned idx = 0; idx < 4; ++idx) {
        Arbiter slow(4);
        Arbiter fast(4);
        std::vector<std::int64_t> ranks{-1, -1, -1, -1};
        ranks[idx] = 0;
        EXPECT_EQ(fast.grantSingle(idx), slow.pick(ranks));
        EXPECT_EQ(fast.pointer(), slow.pointer()) << "idx " << idx;
    }
}

TEST(Arbiter, GrantSingleLeavesSameStateAsPick)
{
    // Interleave sole-requester grants with full contended picks and
    // require the fast-path arbiter to stay in lockstep with one
    // that always takes the slow path.
    Arbiter slow(4);
    Arbiter fast(4);
    const unsigned soles[] = {2, 0, 3, 3, 1};
    for (unsigned idx : soles) {
        std::vector<std::int64_t> ranks{-1, -1, -1, -1};
        ranks[idx] = 5;
        EXPECT_EQ(fast.grantSingle(idx), slow.pick(ranks));

        std::vector<std::int64_t> tie{0, 0, 0, 0};
        EXPECT_EQ(fast.pick(tie), slow.pick(tie)) << "after " << idx;
        EXPECT_EQ(fast.pointer(), slow.pointer());
    }
}

TEST(Arbiter, GrantSingleWrapsPointer)
{
    Arbiter arb(4);
    EXPECT_EQ(arb.grantSingle(3), 3);
    EXPECT_EQ(arb.pointer(), 0u); // (3 + 1) % 4
}

TEST(ArbiterDeath, GrantSingleOutOfRangePanics)
{
    Arbiter arb(4);
    EXPECT_DEATH(arb.grantSingle(4), "");
}

// ---- LPA (Figure 9) ---------------------------------------------------

namespace
{
OcorConfig
enabledCfg()
{
    OcorConfig cfg;
    cfg.enabled = true;
    return cfg;
}

LpaInput
lockInput(const OcorConfig &cfg, unsigned rtr, std::uint64_t prog)
{
    LpaInput in;
    in.valid = true;
    in.fields = makePriority(cfg, PriorityClass::LockTry, rtr, prog);
    return in;
}

LpaInput
normalInput()
{
    LpaInput in;
    in.valid = true;
    return in;
}
} // namespace

TEST(Lpa, EmptyInputsYieldNothing)
{
    auto cfg = enabledCfg();
    LpaResult r = lpaSelect(cfg, {});
    EXPECT_EQ(r.indexMask, 0u);
    EXPECT_EQ(r.highestLevel, 0u);
}

TEST(Lpa, OnlyNormalPacketsTieAtLevelZero)
{
    auto cfg = enabledCfg();
    LpaResult r = lpaSelect(cfg, {normalInput(), normalInput()});
    EXPECT_EQ(r.highestLevel, 0u);
    EXPECT_EQ(r.indexMask, 0b11u);
}

TEST(Lpa, FigureNineExample)
{
    // Three packets with priorities high, high, middle: the LPA
    // reports the highest level and the index mask "110"-style
    // (inputs 0 and 1).
    auto cfg = enabledCfg();
    auto high1 = lockInput(cfg, 1, 0);
    auto high2 = lockInput(cfg, 1, 0);
    auto mid = lockInput(cfg, 64, 0);
    LpaResult r = lpaSelect(cfg, {high1, high2, mid});
    EXPECT_EQ(r.indexMask, 0b011u);
    EXPECT_NE(r.highestLevel, 0u);
}

TEST(Lpa, CheckBitGatesPriority)
{
    // A lock packet always beats normal packets.
    auto cfg = enabledCfg();
    LpaResult r = lpaSelect(cfg, {normalInput(),
                                  lockInput(cfg, 128, 100)});
    EXPECT_EQ(r.indexMask, 0b10u);
}

TEST(Lpa, SlowProgressFiltersFirst)
{
    auto cfg = enabledCfg();
    auto fast_urgent = lockInput(cfg, 1, 100); // fast thread, low RTR
    auto slow_relaxed = lockInput(cfg, 128, 0); // slow thread
    LpaResult r = lpaSelect(cfg, {fast_urgent, slow_relaxed});
    EXPECT_EQ(r.indexMask, 0b10u) << "slow progress must win";
}

TEST(Lpa, DisabledTreatsAllAsNormal)
{
    OcorConfig off; // disabled
    OcorConfig on = enabledCfg();
    LpaInput a;
    a.valid = true;
    a.fields = makePriority(on, PriorityClass::LockTry, 1, 0);
    LpaResult r = lpaSelect(off, {a, normalInput()});
    EXPECT_EQ(r.highestLevel, 0u);
    EXPECT_EQ(r.indexMask, 0b11u);
}

TEST(Lpa, InvalidInputsExcluded)
{
    auto cfg = enabledCfg();
    LpaInput invalid;
    invalid.valid = false;
    invalid.fields = makePriority(cfg, PriorityClass::LockTry, 1, 0);
    LpaResult r = lpaSelect(cfg, {invalid, lockInput(cfg, 128, 0)});
    EXPECT_EQ(r.indexMask, 0b10u);
}

TEST(Lpa, AgreesWithPriorityRankOrdering)
{
    // Property: for any pair of candidate packets, the LPA winner is
    // the one priorityRank() ranks higher (or both on a tie).
    auto cfg = enabledCfg();
    std::vector<PriorityFields> fields;
    for (unsigned rtr : {1u, 17u, 64u, 128u})
        for (std::uint64_t prog : {0u, 5u, 40u})
            fields.push_back(
                makePriority(cfg, PriorityClass::LockTry, rtr, prog));
    fields.push_back(makePriority(cfg, PriorityClass::Wakeup, 1, 0));
    fields.push_back(PriorityFields{}); // normal

    for (const auto &fa : fields) {
        for (const auto &fb : fields) {
            LpaInput a{true, fa}, b{true, fb};
            LpaResult r = lpaSelect(cfg, {a, b});
            auto ra = priorityRank(cfg, fa);
            auto rb = priorityRank(cfg, fb);
            if (ra > rb)
                EXPECT_EQ(r.indexMask, 0b01u);
            else if (rb > ra)
                EXPECT_EQ(r.indexMask, 0b10u);
            else
                EXPECT_EQ(r.indexMask, 0b11u);
        }
    }
}
