/**
 * @file
 * Parameterized property sweeps over the network configuration
 * space: every (mesh shape, VC count, VC depth, OCOR on/off)
 * combination must deliver all traffic, preserve per-flow FIFO
 * order, conserve flits, and drain.
 */

#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "common/rng.hh"
#include "noc/network.hh"

using namespace ocor;

namespace
{

struct NetParamCase
{
    unsigned width;
    unsigned height;
    unsigned numVcs;
    unsigned vcDepth;
    bool ocorOn;
};

std::string
caseName(const ::testing::TestParamInfo<NetParamCase> &info)
{
    const auto &p = info.param;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "m%ux%u_vc%u_d%u_%s", p.width,
                  p.height, p.numVcs, p.vcDepth,
                  p.ocorOn ? "ocor" : "base");
    return buf;
}

class NetworkSweep : public ::testing::TestWithParam<NetParamCase>
{
};

} // namespace

TEST_P(NetworkSweep, RandomTrafficConservesPackets)
{
    const auto &p = GetParam();
    MeshShape mesh{p.width, p.height};
    NocParams params;
    params.numVcs = p.numVcs;
    params.vcDepth = p.vcDepth;
    OcorConfig ocor;
    ocor.enabled = p.ocorOn;
    OcorConfig stamping;
    stamping.enabled = true;

    Network net(mesh, params, ocor);
    std::uint64_t received = 0;
    std::uint64_t flits_received = 0;
    for (NodeId n = 0; n < mesh.numNodes(); ++n) {
        net.setNodeSink(n, [&](const PacketPtr &pkt, Cycle) {
            ++received;
            flits_received += pkt->numFlits;
        });
    }

    Rng rng(99 + p.width * 1000 + p.numVcs * 10 + p.ocorOn);
    std::uint64_t sent = 0;
    Cycle c = 0;
    for (; c < 4000; ++c) {
        for (NodeId n = 0; n < mesh.numNodes(); ++n) {
            if (!rng.chance(0.02))
                continue;
            NodeId dst =
                static_cast<NodeId>(rng.range(mesh.numNodes()));
            bool lock = rng.chance(0.2);
            auto pkt = makePacket(lock ? MsgType::LockTry
                                  : rng.chance(0.5) ? MsgType::Data
                                                    : MsgType::GetS,
                                  n, dst, 0x80 * c);
            if (lock)
                pkt->priority = makePriority(
                    stamping, PriorityClass::LockTry,
                    static_cast<unsigned>(1 + rng.range(128)),
                    rng.range(20));
            net.send(pkt, c);
            ++sent;
        }
        net.tick(c);
    }
    // Drain.
    for (; c < 40000 && !net.idle(); ++c)
        net.tick(c);

    EXPECT_TRUE(net.idle()) << "network failed to drain";
    EXPECT_EQ(received, sent);
    // Conservation: at least one flit per delivered packet reached
    // its sink (loopback packets never touch the mesh).
    EXPECT_GE(flits_received, received);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, NetworkSweep,
    ::testing::Values(NetParamCase{2, 2, 6, 4, false},
                      NetParamCase{2, 2, 6, 4, true},
                      NetParamCase{4, 4, 6, 4, false},
                      NetParamCase{4, 4, 6, 4, true},
                      NetParamCase{8, 4, 6, 4, true},
                      NetParamCase{4, 4, 2, 2, false},
                      NetParamCase{4, 4, 2, 2, true},
                      NetParamCase{4, 4, 1, 4, true},
                      NetParamCase{4, 4, 8, 1, true},
                      NetParamCase{3, 5, 4, 3, true}),
    caseName);
