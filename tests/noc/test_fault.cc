/**
 * @file
 * Fault-injection unit tests: config validation, deterministic
 * draws, CRC integrity, link-level drop/corrupt/jitter semantics
 * (including flow-control credit conservation), and network-level
 * end-to-end retransmission recovery.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "core/priority.hh"
#include "noc/fault.hh"
#include "noc/flit.hh"
#include "noc/link.hh"
#include "noc/network.hh"

using namespace ocor;

namespace
{

FaultConfig
lossyConfig(double drop, double corrupt = 0.0)
{
    FaultConfig f;
    f.dropRate = drop;
    f.corruptRate = corrupt;
    f.retryTimeout = 200;
    f.maxRetries = 10;
    f.seed = 7;
    return f;
}

/** A 4x4 mesh with a fault injector wired in. */
struct FaultNetRig
{
    MeshShape mesh{4, 4};
    NocParams params;
    OcorConfig ocor;
    FaultInjector fi;
    std::unique_ptr<Network> net;
    std::vector<std::pair<NodeId, PacketPtr>> delivered;

    explicit FaultNetRig(const FaultConfig &cfg, std::uint64_t seed = 1)
        : fi(cfg, seed)
    {
        net = std::make_unique<Network>(mesh, params, ocor, &fi);
        for (NodeId n = 0; n < mesh.numNodes(); ++n)
            net->setNodeSink(n,
                [this, n](const PacketPtr &pkt, Cycle) {
                    delivered.emplace_back(n, pkt);
                });
    }

    /** Run until the network drains (no failure on timeout: lossy
     * configurations legitimately never deliver). */
    Cycle
    run(Cycle start, Cycle max_cycles)
    {
        Cycle c = start;
        for (; c < start + max_cycles; ++c) {
            net->tick(c);
            if (net->idle())
                break;
        }
        return c;
    }
};

} // namespace

TEST(FaultConfig, DisabledByDefault)
{
    FaultConfig f;
    EXPECT_FALSE(f.enabled());
    f.validate(); // must not exit
    f.dropRate = 0.01;
    EXPECT_TRUE(f.enabled());
}

TEST(FaultConfigDeath, RejectsBadKnobs)
{
    FaultConfig f;
    f.dropRate = 1.5;
    EXPECT_EXIT(f.validate(), ::testing::ExitedWithCode(1),
                "dropRate");
    f = FaultConfig{};
    f.corruptRate = -0.1;
    EXPECT_EXIT(f.validate(), ::testing::ExitedWithCode(1),
                "corruptRate");
    f = FaultConfig{};
    f.jitterRate = 0.5;
    f.jitterMax = 0;
    EXPECT_EXIT(f.validate(), ::testing::ExitedWithCode(1),
                "jitterMax");
    f = FaultConfig{};
    f.retryTimeout = 0;
    EXPECT_EXIT(f.validate(), ::testing::ExitedWithCode(1),
                "retryTimeout");
    f = FaultConfig{};
    f.maxRetries = 0;
    EXPECT_EXIT(f.validate(), ::testing::ExitedWithCode(1),
                "maxRetries");
}

TEST(FaultInjector, DeterministicDraws)
{
    FaultConfig cfg;
    cfg.dropRate = 0.3;
    cfg.jitterRate = 0.4;
    FaultInjector a(cfg, 42), b(cfg, 42), c(cfg, 43);
    bool any_diff = false;
    for (int i = 0; i < 256; ++i) {
        bool da = a.drawDrop(), db = b.drawDrop();
        EXPECT_EQ(da, db);
        EXPECT_EQ(a.drawJitter(), b.drawJitter());
        if (da != c.drawDrop())
            any_diff = true;
        c.drawJitter();
    }
    EXPECT_TRUE(any_diff) << "seed must change the draw sequence";
}

TEST(FaultInjector, TargetingFilters)
{
    FaultConfig cfg;
    cfg.dropRate = 1.0;
    cfg.lockOnly = true;
    cfg.targetLinks = {3, 5};
    FaultInjector fi(cfg, 1);

    auto lock_pkt = makePacket(MsgType::LockTry, 0, 1, 0x1000);
    auto data_pkt = makePacket(MsgType::Data, 0, 1, 0x1000);
    EXPECT_TRUE(fi.targets(3, *lock_pkt));
    EXPECT_TRUE(fi.targets(5, *lock_pkt));
    EXPECT_FALSE(fi.targets(4, *lock_pkt));   // untargeted link
    EXPECT_FALSE(fi.targets(3, *data_pkt));   // not lock protocol
}

TEST(FaultInjector, BackoffGrowsExponentially)
{
    FaultConfig cfg;
    cfg.retryTimeout = 100;
    cfg.backoffShift = 1;
    FaultInjector fi(cfg, 1);
    EXPECT_EQ(fi.backoff(0), 100u);
    EXPECT_EQ(fi.backoff(1), 200u);
    EXPECT_EQ(fi.backoff(3), 800u);

    cfg.backoffShift = 0;
    FaultInjector flat(cfg, 1);
    EXPECT_EQ(flat.backoff(5), 100u);
}

TEST(FaultCrc, DetectsHeaderChangeAndMatchesClone)
{
    auto pkt = makePacket(MsgType::LockTry, 2, 9, 0x1000);
    pkt->thread = 4;
    pkt->seq = pkt->id;
    std::uint32_t crc = packetCrc(*pkt);
    EXPECT_EQ(crc, packetCrc(*pkt)); // stable

    auto clone = clonePacket(*pkt);
    EXPECT_NE(clone->id, pkt->id);
    EXPECT_EQ(clone->seq, pkt->seq);
    EXPECT_EQ(clone->attempt, pkt->attempt + 1);
    EXPECT_EQ(packetCrc(*clone), crc) << "id must not affect the CRC";

    pkt->thread = 5;
    EXPECT_NE(packetCrc(*pkt), crc);
}

TEST(FaultLink, DropConsumesPacketAndSynthesizesCredits)
{
    FaultConfig cfg;
    cfg.dropRate = 1.0;
    FaultInjector fi(cfg, 1);
    Link link(1);
    link.setFaultInjector(&fi, 0);

    auto pkt = makePacket(MsgType::Data, 0, 1, 0x80); // 8 flits
    unsigned credits = 0;
    for (unsigned i = 0; i < pkt->numFlits; ++i) {
        Flit f;
        f.pkt = pkt;
        f.index = i;
        f.type = flitTypeFor(i, pkt->numFlits);
        f.vc = 2;
        link.sendFlit(f, i);
        EXPECT_FALSE(link.takeFlit(i + 1).has_value());
        for (unsigned vc : link.takeCredits(i + 1)) {
            EXPECT_EQ(vc, 2u);
            ++credits;
        }
    }
    // Every flit vanished, yet every buffer credit the sender debited
    // came back: flow control cannot leak.
    EXPECT_EQ(credits, pkt->numFlits);
    EXPECT_EQ(fi.stats().packetsDropped, 1u);
    EXPECT_EQ(fi.stats().flitsDropped, pkt->numFlits);
    EXPECT_TRUE(link.idle());
}

TEST(FaultLink, CorruptionMarksFlitsInFlight)
{
    FaultConfig cfg;
    cfg.corruptRate = 1.0;
    FaultInjector fi(cfg, 1);
    Link link(1);
    link.setFaultInjector(&fi, 0);

    auto pkt = makePacket(MsgType::GetS, 0, 1, 0x80);
    Flit f;
    f.pkt = pkt;
    f.type = FlitType::HeadTail;
    EXPECT_FALSE(f.corrupted);
    link.sendFlit(f, 0);
    auto rx = link.takeFlit(1);
    ASSERT_TRUE(rx.has_value());
    EXPECT_TRUE(rx->corrupted);
    EXPECT_FALSE(f.pkt == nullptr);
    EXPECT_EQ(fi.stats().flitsCorrupted, 1u);
}

TEST(FaultLink, JitterPreservesFifoOrder)
{
    FaultConfig cfg;
    cfg.jitterRate = 1.0;
    cfg.jitterMax = 5;
    FaultInjector fi(cfg, 9);
    Link link(1);
    link.setFaultInjector(&fi, 0);

    auto pkt = makePacket(MsgType::Data, 0, 1, 0x80);
    for (unsigned i = 0; i < pkt->numFlits; ++i) {
        Flit f;
        f.pkt = pkt;
        f.index = i;
        f.type = flitTypeFor(i, pkt->numFlits);
        link.sendFlit(f, i);
    }
    // Drain: flits must come out in index order despite the stalls
    // (takeFlit panics internally if one misses its delivery cycle).
    unsigned next = 0;
    for (Cycle c = 0; c < 100 && next < pkt->numFlits; ++c) {
        if (auto f = link.takeFlit(c)) {
            EXPECT_EQ(f->index, next);
            ++next;
        }
    }
    EXPECT_EQ(next, pkt->numFlits);
    EXPECT_GT(fi.stats().flitsDelayed, 0u);
}

TEST(FaultNetwork, RecoversAllPacketsUnderDrops)
{
    FaultNetRig rig(lossyConfig(0.1));
    std::set<std::uint64_t> sent;
    for (unsigned i = 0; i < 40; ++i) {
        auto pkt = makePacket(MsgType::LockTry, i % 16,
                              (i * 7 + 3) % 16, 0x1000 + 0x40 * i);
        if (pkt->src == pkt->dst)
            pkt->dst = (pkt->dst + 1) % 16;
        rig.net->send(pkt, 0);
        sent.insert(pkt->seq == 0 ? pkt->id : pkt->seq);
    }
    rig.run(0, 500'000);

    // Every lineage delivered exactly once: losses were retransmitted
    // and duplicates absorbed.
    std::set<std::uint64_t> got;
    for (const auto &[node, pkt] : rig.delivered)
        EXPECT_TRUE(got.insert(pkt->seq).second)
            << "duplicate delivery of seq " << pkt->seq;
    EXPECT_EQ(got.size(), 40u);
    EXPECT_GT(rig.fi.stats().packetsDropped, 0u);
    EXPECT_GT(rig.fi.stats().retransmissions, 0u);
    EXPECT_EQ(rig.fi.stats().unrecoverable, 0u);
}

TEST(FaultNetwork, CorruptionCaughtByCrcAndRecovered)
{
    FaultNetRig rig(lossyConfig(0.0, 0.3));
    auto pkt = makePacket(MsgType::LockTry, 0, 15, 0x1000);
    rig.net->send(pkt, 0);
    // A 1-flit control packet crossing 8 links at 30% flit corruption
    // fails most attempts; retransmission must still get it through.
    rig.run(0, 500'000);
    ASSERT_EQ(rig.delivered.size(), 1u);
    EXPECT_EQ(rig.delivered[0].first, 15u);
    EXPECT_GT(rig.fi.stats().flitsCorrupted, 0u);
    EXPECT_GT(rig.fi.stats().crcRejects, 0u);
    EXPECT_EQ(rig.fi.stats().unrecoverable, 0u);
}

TEST(FaultNetwork, GivesUpAfterMaxRetries)
{
    FaultConfig cfg = lossyConfig(1.0); // every packet dropped
    cfg.maxRetries = 2;
    FaultNetRig rig(cfg);
    auto pkt = makePacket(MsgType::GetS, 0, 5, 0x80);
    rig.net->send(pkt, 0);
    rig.run(0, 100'000);

    EXPECT_TRUE(rig.delivered.empty());
    EXPECT_EQ(rig.fi.stats().unrecoverable, 1u);
    EXPECT_EQ(rig.net->ni(0).outstandingCount(), 0u);
    EXPECT_TRUE(rig.net->idle()) << "give-up must not wedge the NI";
}

TEST(FaultNetwork, RetransmitDisabledLosesPackets)
{
    FaultConfig cfg = lossyConfig(1.0);
    cfg.retransmit = false;
    FaultNetRig rig(cfg);
    rig.net->send(makePacket(MsgType::GetS, 0, 5, 0x80), 0);
    rig.run(0, 10'000);
    EXPECT_TRUE(rig.delivered.empty());
    EXPECT_EQ(rig.fi.stats().retransmissions, 0u);
    EXPECT_TRUE(rig.net->idle());
}

TEST(FaultNetwork, RetransmittedCopyPreservesPriority)
{
    FaultConfig cfg = lossyConfig(0.15);
    FaultNetRig rig(cfg);
    rig.ocor.enabled = true;
    auto pkt = makePacket(MsgType::LockTry, 0, 15, 0x1000);
    pkt->priority = makePriority(rig.ocor, PriorityClass::LockTry,
                                 3, 1);
    ASSERT_TRUE(pkt->priority.check);
    const auto want_prio = pkt->priority.priorityBits;
    const auto want_prog = pkt->priority.progressBits;
    rig.net->send(pkt, 0);
    rig.run(0, 500'000);
    ASSERT_EQ(rig.delivered.size(), 1u);
    const PacketPtr &got = rig.delivered[0].second;
    EXPECT_TRUE(got->priority.check);
    EXPECT_EQ(got->priority.priorityBits, want_prio);
    EXPECT_EQ(got->priority.progressBits, want_prog);
}

TEST(FaultNetwork, InactiveInjectorIsBitIdenticalToNone)
{
    // Same traffic through (a) a network with no injector and (b) one
    // with an injector whose rates are all zero: identical timing.
    auto drive = [](Network &net,
                    std::vector<std::pair<NodeId, Cycle>> &out) {
        for (NodeId n = 0; n < 16; ++n)
            net.setNodeSink(n,
                [&out, n](const PacketPtr &, Cycle at) {
                    out.emplace_back(n, at);
                });
        for (unsigned i = 0; i < 10; ++i)
            net.send(makePacket(MsgType::Data, i % 16,
                                (i * 5 + 1) % 16, 0x80 * i), 0);
        for (Cycle c = 0; c < 10'000; ++c) {
            net.tick(c);
            if (net.idle())
                break;
        }
    };

    MeshShape mesh{4, 4};
    NocParams params;
    OcorConfig ocor;
    std::vector<std::pair<NodeId, Cycle>> plain, gated;

    Network a(mesh, params, ocor);
    drive(a, plain);

    FaultConfig off; // enabled() == false
    FaultInjector fi(off, 1);
    ASSERT_FALSE(fi.active());
    Network b(mesh, params, ocor, &fi);
    drive(b, gated);

    EXPECT_EQ(plain, gated);
    EXPECT_EQ(fi.stats().faultsInjected(), 0u);
}
