/**
 * @file
 * White-box tests for the 2-stage VC router: pipeline timing, credit
 * flow, wormhole integrity and priority-based allocation.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "noc/router.hh"

using namespace ocor;

namespace
{

/** A 1x2 test rig: one router under test at node 0, driven by hand
 * through its links. */
struct RouterRig
{
    MeshShape mesh{2, 1};
    NocParams params;
    OcorConfig ocor;
    std::unique_ptr<Router> router;
    Link intoWest;    // we are upstream on the router's west port
    Link intoEast;    // flits from the east neighbor (unused)
    Link outOfEast;   // router sends east through this
    Link intoLocal;   // NI side
    Link outOfLocal;

    explicit RouterRig(bool ocor_on = false)
    {
        ocor.enabled = ocor_on;
        router = std::make_unique<Router>(0, mesh, params, ocor);
        // Node 0 of a 2x1 mesh has East and Local ports.
        router->attach(PortEast, &intoEast, &outOfEast);
        router->attach(PortLocal, &intoLocal, &outOfLocal);
        router->attach(PortWest, &intoWest, nullptr);
    }

    /** Downstream consume on the east link: take + return credit. */
    std::optional<Flit>
    takeEast(Cycle now)
    {
        auto f = outOfEast.takeFlit(now);
        if (f)
            outOfEast.sendCredit(f->vc, now);
        return f;
    }

    void
    sendFlit(Link &link, const PacketPtr &pkt, unsigned index,
             unsigned vc, Cycle now)
    {
        Flit f;
        f.pkt = pkt;
        f.index = index;
        f.type = flitTypeFor(index, pkt->numFlits);
        f.vc = vc;
        link.sendFlit(f, now);
    }
};

} // namespace

TEST(Router, SingleFlitTraversesWithPipelineLatency)
{
    RouterRig rig;
    // East-bound single-flit packet enters via the west port.
    auto pkt = makePacket(MsgType::GetS, 0, 1, 0x80);
    rig.sendFlit(rig.intoWest, pkt, 0, 0, 0); // arrives at cycle 1

    Cycle out_cycle = 0;
    for (Cycle c = 1; c <= 10 && out_cycle == 0; ++c) {
        rig.router->tick(c);
        if (rig.outOfEast.takeFlit(c + 1))
            out_cycle = c + 1;
    }
    // Arrival 1, SA/ST eligible at 3 (2-stage pipe), link +1 = 4.
    EXPECT_EQ(out_cycle, 4u);
}

TEST(Router, LocalDeliveryGoesToLocalPort)
{
    RouterRig rig;
    auto pkt = makePacket(MsgType::GetS, 1, 0, 0x80); // dst == 0
    rig.sendFlit(rig.intoWest, pkt, 0, 0, 0);
    bool delivered = false;
    for (Cycle c = 1; c <= 10; ++c) {
        rig.router->tick(c);
        if (rig.outOfLocal.takeFlit(c + 1))
            delivered = true;
    }
    EXPECT_TRUE(delivered);
}

TEST(Router, CreditReturnedWhenFlitLeaves)
{
    RouterRig rig;
    auto pkt = makePacket(MsgType::GetS, 0, 1, 0x80);
    rig.sendFlit(rig.intoWest, pkt, 0, 2, 0);
    bool credit_seen = false;
    for (Cycle c = 1; c <= 10; ++c) {
        rig.router->tick(c);
        for (unsigned vc : rig.intoWest.takeCredits(c))
            if (vc == 2)
                credit_seen = true;
    }
    EXPECT_TRUE(credit_seen);
}

TEST(Router, WormholeKeepsPacketContiguousPerVc)
{
    RouterRig rig;
    // An 8-flit data packet: flits must exit in order.
    auto pkt = makePacket(MsgType::Data, 0, 1, 0x100);
    unsigned sent = 0;
    std::vector<unsigned> exits;
    for (Cycle c = 0; c <= 40; ++c) {
        // Respect the 4-deep VC: trickle flits in.
        if (sent < pkt->numFlits && c % 2 == 0) {
            rig.sendFlit(rig.intoWest, pkt, sent, 0, c);
            ++sent;
        }
        rig.router->tick(c);
        if (auto f = rig.takeEast(c))
            exits.push_back(f->index);
    }
    // Drain the remainder.
    for (Cycle c = 41; c <= 60; ++c) {
        rig.router->tick(c);
        if (auto f = rig.takeEast(c))
            exits.push_back(f->index);
    }
    ASSERT_EQ(exits.size(), 8u);
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(exits[i], i);
}

TEST(Router, BackpressureLimitsInFlightFlits)
{
    RouterRig rig;
    // Fill the east output: downstream never returns credits, so at
    // most vcDepth flits per VC may be sent onto the east link.
    auto pkt = makePacket(MsgType::Data, 0, 1, 0x100);
    // Deliver all 8 flits over time into a 4-deep VC, respecting
    // upstream credit flow: the router must stall once downstream
    // credits (4) are consumed because we never return any.
    unsigned sent = 0;
    unsigned exited = 0;
    unsigned upstream_credits = rig.params.vcDepth;
    for (Cycle c = 0; c <= 100; ++c) {
        upstream_credits +=
            static_cast<unsigned>(rig.intoWest.takeCredits(c).size());
        if (sent < 8 && upstream_credits > 0) {
            rig.sendFlit(rig.intoWest, pkt, sent, 0, c);
            ++sent;
            --upstream_credits;
        }
        rig.router->tick(c);
        if (rig.outOfEast.takeFlit(c))
            ++exited;
    }
    EXPECT_EQ(exited, rig.params.vcDepth)
        << "without credits only vcDepth flits may traverse";
}

TEST(Router, OcorPrioritizesLockPacketInSwitchAllocation)
{
    // Two single-flit packets contending for the east output from
    // different input ports in the same cycle: under OCOR the lock
    // packet must win; the data packet follows one cycle later.
    RouterRig rig(/*ocor_on=*/true);

    auto data = makePacket(MsgType::GetS, 0, 1, 0x80);
    auto lock = makePacket(MsgType::LockTry, 0, 1, 0x200);
    lock->priority = makePriority(rig.ocor, PriorityClass::LockTry,
                                  1, 0);

    rig.sendFlit(rig.intoWest, data, 0, 0, 0);  // arrives cycle 1
    rig.sendFlit(rig.intoLocal, lock, 0, 0, 0); // arrives cycle 1

    std::vector<MsgType> order;
    for (Cycle c = 1; c <= 12; ++c) {
        rig.router->tick(c);
        if (auto f = rig.outOfEast.takeFlit(c))
            order.push_back(f->pkt->type);
    }
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], MsgType::LockTry);
    EXPECT_EQ(order[1], MsgType::GetS);
}

TEST(Router, BaselineRoundRobinIgnoresPriority)
{
    // Same contention as above with OCOR disabled: the round-robin
    // pointer, not the priority field, decides. Run both phases and
    // simply verify both packets traverse (no starvation).
    RouterRig rig(/*ocor_on=*/false);
    auto data = makePacket(MsgType::GetS, 0, 1, 0x80);
    auto lock = makePacket(MsgType::LockTry, 0, 1, 0x200);
    OcorConfig on;
    on.enabled = true;
    lock->priority = makePriority(on, PriorityClass::LockTry, 1, 0);

    rig.sendFlit(rig.intoWest, data, 0, 0, 0);
    rig.sendFlit(rig.intoLocal, lock, 0, 0, 0);
    unsigned delivered = 0;
    for (Cycle c = 1; c <= 12; ++c) {
        rig.router->tick(c);
        if (rig.outOfEast.takeFlit(c))
            ++delivered;
    }
    EXPECT_EQ(delivered, 2u);
}

TEST(Router, OccupancyTracksBufferedFlits)
{
    RouterRig rig;
    EXPECT_EQ(rig.router->occupancy(), 0u);
    auto pkt = makePacket(MsgType::GetS, 0, 1, 0x80);
    rig.sendFlit(rig.intoWest, pkt, 0, 0, 0);
    rig.router->tick(1); // flit delivered into the buffer
    EXPECT_EQ(rig.router->occupancy(), 1u);
    for (Cycle c = 2; c <= 6; ++c)
        rig.router->tick(c);
    EXPECT_EQ(rig.router->occupancy(), 0u);
}

TEST(Router, StatsCountRoutedFlits)
{
    RouterRig rig;
    auto pkt = makePacket(MsgType::LockTry, 0, 1, 0x80);
    rig.sendFlit(rig.intoWest, pkt, 0, 0, 0);
    for (Cycle c = 1; c <= 8; ++c) {
        rig.router->tick(c);
        (void)rig.outOfEast.takeFlit(c);
    }
    EXPECT_EQ(rig.router->stats().flitsRouted, 1u);
    EXPECT_EQ(rig.router->stats().lockFlitsRouted, 1u);
    EXPECT_GE(rig.router->stats().vaGrants, 1u);
}
