/**
 * @file
 * Integration tests for the full mesh network: delivery, ordering,
 * latency accounting, and drain.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "noc/network.hh"

using namespace ocor;

namespace
{

struct NetRig
{
    MeshShape mesh{4, 4};
    NocParams params;
    OcorConfig ocor;
    std::unique_ptr<Network> net;
    std::vector<std::pair<NodeId, PacketPtr>> delivered;

    explicit NetRig(bool ocor_on = false)
    {
        ocor.enabled = ocor_on;
        net = std::make_unique<Network>(mesh, params, ocor);
        for (NodeId n = 0; n < mesh.numNodes(); ++n)
            net->setNodeSink(n,
                [this, n](const PacketPtr &pkt, Cycle) {
                    delivered.emplace_back(n, pkt);
                });
    }

    void
    runUntilIdle(Cycle start, Cycle max_cycles = 10000)
    {
        for (Cycle c = start; c < start + max_cycles; ++c) {
            net->tick(c);
            if (net->idle())
                return;
        }
        FAIL() << "network did not drain";
    }
};

} // namespace

TEST(Network, SingleControlPacketDelivered)
{
    NetRig rig;
    auto pkt = makePacket(MsgType::GetS, 0, 15, 0x80);
    rig.net->send(pkt, 0);
    rig.runUntilIdle(0);
    ASSERT_EQ(rig.delivered.size(), 1u);
    EXPECT_EQ(rig.delivered[0].first, 15u);
    EXPECT_EQ(rig.delivered[0].second->id, pkt->id);
}

TEST(Network, LatencyScalesWithDistance)
{
    NetRig rig;
    auto near = makePacket(MsgType::GetS, 0, 1, 0x80);
    rig.net->send(near, 0);
    rig.runUntilIdle(0);
    Cycle near_lat = near->ejectCycle - near->injectCycle;

    rig.delivered.clear();
    auto far = makePacket(MsgType::GetS, 0, 15, 0x80);
    rig.net->send(far, 1000);
    rig.runUntilIdle(1000);
    Cycle far_lat = far->ejectCycle - far->injectCycle;

    EXPECT_GT(far_lat, near_lat);
    // 4x4 corner-to-corner: 6 hops; each hop >= 3 cycles.
    EXPECT_GE(far_lat, 18u);
}

TEST(Network, DataPacketDeliveredWhole)
{
    NetRig rig;
    auto pkt = makePacket(MsgType::Data, 3, 12, 0x1000);
    EXPECT_EQ(pkt->numFlits, 8u);
    rig.net->send(pkt, 0);
    rig.runUntilIdle(0);
    ASSERT_EQ(rig.delivered.size(), 1u);
    EXPECT_EQ(rig.net->totalFlitsInjected(), 8u);
    EXPECT_EQ(rig.net->totalPacketsInjected(), 1u);
}

TEST(Network, LocalLoopbackBypassesMesh)
{
    NetRig rig;
    auto pkt = makePacket(MsgType::GetS, 5, 5, 0x80);
    rig.net->send(pkt, 0);
    rig.runUntilIdle(0);
    ASSERT_EQ(rig.delivered.size(), 1u);
    EXPECT_EQ(rig.net->totalFlitsInjected(), 0u)
        << "same-node traffic must not enter the mesh";
}

TEST(Network, ManyPacketsAllDelivered)
{
    NetRig rig;
    unsigned count = 0;
    for (NodeId s = 0; s < 16; ++s) {
        for (NodeId d = 0; d < 16; ++d) {
            if (s == d)
                continue;
            auto pkt = makePacket(MsgType::GetS, s, d,
                                  0x80 * (s * 16 + d));
            rig.net->send(pkt, 0);
            ++count;
        }
    }
    rig.runUntilIdle(0, 50000);
    EXPECT_EQ(rig.delivered.size(), count);
    EXPECT_EQ(rig.net->stats().packetsDelivered, count);
}

TEST(Network, SameFlowStaysOrdered)
{
    // Packets between the same (src, dst) of the same priority class
    // must be delivered in injection order (same route, FIFO VCs).
    NetRig rig;
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 10; ++i) {
        auto pkt = makePacket(MsgType::GetS, 0, 15, 0x80u * i);
        ids.push_back(pkt->id);
        rig.net->send(pkt, 0);
    }
    rig.runUntilIdle(0, 20000);
    ASSERT_EQ(rig.delivered.size(), 10u);
    for (unsigned i = 0; i < 10; ++i)
        EXPECT_EQ(rig.delivered[i].second->id, ids[i]);
}

TEST(Network, LatencyStatsSplitByClass)
{
    NetRig rig;
    auto lock = makePacket(MsgType::LockTry, 0, 15, 0x80);
    auto data = makePacket(MsgType::GetS, 0, 15, 0x100);
    rig.net->send(lock, 0);
    rig.net->send(data, 0);
    rig.runUntilIdle(0);
    EXPECT_EQ(rig.net->stats().lockPacketLatency.count(), 1u);
    EXPECT_EQ(rig.net->stats().dataPacketLatency.count(), 1u);
    EXPECT_EQ(rig.net->stats().packetLatency.count(), 2u);
    EXPECT_EQ(rig.net->totalLockPacketsInjected(), 1u);
}

TEST(Network, OcorLockBeatsDataUnderContention)
{
    // Saturate one destination with data packets from several
    // sources, then inject a prioritized lock packet from the
    // farthest node: under OCOR its latency must be well below the
    // average data latency.
    NetRig rig(/*ocor_on=*/true);
    Cycle c = 0;
    for (int burst = 0; burst < 30; ++burst) {
        for (NodeId s : {1u, 2u, 4u, 8u}) {
            auto p = makePacket(MsgType::Data, s, 0,
                                0x1000u * burst + s);
            rig.net->send(p, c);
        }
        rig.net->tick(c);
        ++c;
    }
    auto lock = makePacket(MsgType::LockTry, 15, 0, 0x80);
    lock->priority = makePriority(rig.ocor, PriorityClass::LockTry,
                                  1, 0);
    rig.net->send(lock, c);
    rig.runUntilIdle(c, 50000);

    double lock_lat = rig.net->stats().lockPacketLatency.mean();
    double data_lat = rig.net->stats().dataPacketLatency.mean();
    EXPECT_LT(lock_lat, data_lat)
        << "prioritized lock packet must not queue behind data";
}

TEST(Network, IdleAfterDrainAndStatsConsistent)
{
    NetRig rig;
    for (int i = 0; i < 20; ++i)
        rig.net->send(makePacket(MsgType::InvAck, i % 16,
                                 (i * 7) % 16, 0x80u * i), 0);
    rig.runUntilIdle(0, 20000);
    EXPECT_TRUE(rig.net->idle());
    // Loopback packets (src==dst) never enter the mesh but are
    // delivered; mesh counts only cover real traversals.
    EXPECT_EQ(rig.net->stats().packetsDelivered, 20u);
}
