/**
 * @file
 * Unit tests for packet construction and classification.
 */

#include <gtest/gtest.h>

#include "noc/flit.hh"
#include "noc/packet.hh"

using namespace ocor;

TEST(Packet, MakePacketAssignsUniqueIds)
{
    auto a = makePacket(MsgType::GetS, 0, 1, 0x80);
    auto b = makePacket(MsgType::GetS, 0, 1, 0x80);
    EXPECT_NE(a->id, b->id);
}

TEST(Packet, SizeByType)
{
    // Control packets: 1 flit. Data-carrying packets: 8 flits
    // (128 B block over a 128-bit datapath, Table 2).
    EXPECT_EQ(packetFlits(MsgType::GetS), 1u);
    EXPECT_EQ(packetFlits(MsgType::GetM), 1u);
    EXPECT_EQ(packetFlits(MsgType::Inv), 1u);
    EXPECT_EQ(packetFlits(MsgType::InvAck), 1u);
    EXPECT_EQ(packetFlits(MsgType::LockTry), 1u);
    EXPECT_EQ(packetFlits(MsgType::FutexWake), 1u);
    EXPECT_EQ(packetFlits(MsgType::Data), 8u);
    EXPECT_EQ(packetFlits(MsgType::DataExcl), 8u);
    EXPECT_EQ(packetFlits(MsgType::PutM), 8u);
    EXPECT_EQ(packetFlits(MsgType::MemResp), 8u);
    EXPECT_EQ(packetFlits(MsgType::MemWrite), 8u);
    EXPECT_EQ(packetFlits(MsgType::FetchResp), 8u);
}

TEST(Packet, LockProtocolClassification)
{
    EXPECT_TRUE(isLockProtocol(MsgType::LockTry));
    EXPECT_TRUE(isLockProtocol(MsgType::LockGrant));
    EXPECT_TRUE(isLockProtocol(MsgType::LockFail));
    EXPECT_TRUE(isLockProtocol(MsgType::LockFreeNotify));
    EXPECT_TRUE(isLockProtocol(MsgType::LockRelease));
    EXPECT_TRUE(isLockProtocol(MsgType::FutexWait));
    EXPECT_TRUE(isLockProtocol(MsgType::FutexWake));
    EXPECT_TRUE(isLockProtocol(MsgType::WakeNotify));
    EXPECT_FALSE(isLockProtocol(MsgType::GetS));
    EXPECT_FALSE(isLockProtocol(MsgType::Data));
    EXPECT_FALSE(isLockProtocol(MsgType::MemRead));
}

TEST(Packet, EveryTypeHasAName)
{
    for (unsigned t = 0;
         t < static_cast<unsigned>(MsgType::NumTypes); ++t) {
        const char *name = msgTypeName(static_cast<MsgType>(t));
        EXPECT_STRNE(name, "?") << "type " << t;
    }
}

TEST(Packet, DescribeMentionsTypeAndEndpoints)
{
    auto p = makePacket(MsgType::LockTry, 3, 9, 0xabc0);
    auto d = p->describe();
    EXPECT_NE(d.find("LockTry"), std::string::npos);
    EXPECT_NE(d.find("3->9"), std::string::npos);
}

TEST(Flit, TypeForPositions)
{
    EXPECT_EQ(flitTypeFor(0, 1), FlitType::HeadTail);
    EXPECT_EQ(flitTypeFor(0, 8), FlitType::Head);
    EXPECT_EQ(flitTypeFor(3, 8), FlitType::Body);
    EXPECT_EQ(flitTypeFor(7, 8), FlitType::Tail);
}

TEST(Flit, HeadTailPredicates)
{
    Flit f;
    f.type = FlitType::HeadTail;
    EXPECT_TRUE(f.isHead());
    EXPECT_TRUE(f.isTail());
    f.type = FlitType::Head;
    EXPECT_TRUE(f.isHead());
    EXPECT_FALSE(f.isTail());
    f.type = FlitType::Body;
    EXPECT_FALSE(f.isHead());
    EXPECT_FALSE(f.isTail());
    f.type = FlitType::Tail;
    EXPECT_FALSE(f.isHead());
    EXPECT_TRUE(f.isTail());
}

TEST(Packet, DefaultPriorityIsEmpty)
{
    auto p = makePacket(MsgType::Data, 0, 1, 0);
    EXPECT_FALSE(p->priority.check);
    EXPECT_EQ(p->priority.priorityBits, 0u);
}
