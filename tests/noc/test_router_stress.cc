/**
 * @file
 * Router stress tests: VC exhaustion, cross-VC packet interleaving,
 * head-of-line behaviour and long-run stability under saturation.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "noc/router.hh"

using namespace ocor;

namespace
{

struct StressRig
{
    MeshShape mesh{2, 1};
    NocParams params;
    OcorConfig ocor;
    std::unique_ptr<Router> router;
    Link intoWest, intoEast, intoLocal;
    Link outOfEast, outOfLocal;

    StressRig()
    {
        router = std::make_unique<Router>(0, mesh, params, ocor);
        router->attach(PortWest, &intoWest, nullptr);
        router->attach(PortEast, &intoEast, &outOfEast);
        router->attach(PortLocal, &intoLocal, &outOfLocal);
    }

    void
    sendFlit(Link &link, const PacketPtr &pkt, unsigned index,
             unsigned vc, Cycle now)
    {
        Flit f;
        f.pkt = pkt;
        f.index = index;
        f.type = flitTypeFor(index, pkt->numFlits);
        f.vc = vc;
        link.sendFlit(f, now);
    }
};

} // namespace

TEST(RouterStress, MorePacketsThanOutputVcs)
{
    // numVcs+2 single-flit packets from one input port: output VCs
    // are recycled after each tail, so all must eventually leave.
    StressRig rig;
    const unsigned n = rig.params.numVcs + 2;
    unsigned sent = 0;
    unsigned exited = 0;
    for (Cycle c = 0; c < 200 && exited < n; ++c) {
        if (sent < n && c % 2 == 0) {
            auto pkt = makePacket(MsgType::GetS, 0, 1, 0x80u * sent);
            rig.sendFlit(rig.intoWest, pkt, 0,
                         sent % rig.params.numVcs, c);
            ++sent;
        }
        rig.router->tick(c);
        if (auto f = rig.outOfEast.takeFlit(c)) {
            rig.outOfEast.sendCredit(f->vc, c);
            ++exited;
        }
    }
    EXPECT_EQ(exited, n);
}

TEST(RouterStress, TwoDataPacketsInterleaveAcrossVcs)
{
    // Two 8-flit packets on different input VCs share the east
    // output port; both must arrive complete and in per-packet
    // order even though their flits interleave on the link.
    StressRig rig;
    auto a = makePacket(MsgType::Data, 0, 1, 0x1000);
    auto b = makePacket(MsgType::Data, 0, 1, 0x2000);
    std::map<std::uint64_t, unsigned> next_index{{a->id, 0},
                                                 {b->id, 0}};
    unsigned sent_a = 0, sent_b = 0, done = 0;
    for (Cycle c = 0; c < 400 && done < 16; ++c) {
        // One flit per cycle on the west link, alternating packets.
        if (c % 2 == 0 && sent_a < 8) {
            rig.sendFlit(rig.intoWest, a, sent_a, 0, c);
            ++sent_a;
        } else if (c % 2 == 1 && sent_b < 8) {
            rig.sendFlit(rig.intoWest, b, sent_b, 1, c);
            ++sent_b;
        }
        rig.router->tick(c);
        if (auto f = rig.outOfEast.takeFlit(c)) {
            rig.outOfEast.sendCredit(f->vc, c);
            ASSERT_EQ(f->index, next_index[f->pkt->id])
                << "flits of one packet must stay ordered";
            ++next_index[f->pkt->id];
            ++done;
        }
    }
    EXPECT_EQ(done, 16u);
    EXPECT_EQ(next_index[a->id], 8u);
    EXPECT_EQ(next_index[b->id], 8u);
}

TEST(RouterStress, SaturationLongRunConservesFlits)
{
    // Saturate both input ports toward one output for thousands of
    // cycles; every injected flit must come out exactly once.
    StressRig rig;
    std::uint64_t injected = 0, ejected = 0;
    std::map<unsigned, unsigned> west_credits, local_credits;
    for (unsigned v = 0; v < rig.params.numVcs; ++v)
        west_credits[v] = local_credits[v] = rig.params.vcDepth;

    unsigned seq = 0;
    for (Cycle c = 0; c < 5000; ++c) {
        for (unsigned v :
             rig.intoWest.takeCredits(c))
            ++west_credits[v];
        for (unsigned v :
             rig.intoLocal.takeCredits(c))
            ++local_credits[v];

        unsigned vc = seq % rig.params.numVcs;
        if (west_credits[vc] > 0) {
            auto pkt = makePacket(MsgType::GetS, 0, 1, 0x80u * seq);
            rig.sendFlit(rig.intoWest, pkt, 0, vc, c);
            --west_credits[vc];
            ++injected;
        }
        unsigned lvc = (seq + 3) % rig.params.numVcs;
        if (local_credits[lvc] > 0) {
            auto pkt = makePacket(MsgType::InvAck, 0, 1,
                                  0x80u * seq);
            rig.sendFlit(rig.intoLocal, pkt, 0, lvc, c);
            --local_credits[lvc];
            ++injected;
        }
        ++seq;

        rig.router->tick(c);
        if (auto f = rig.outOfEast.takeFlit(c)) {
            rig.outOfEast.sendCredit(f->vc, c);
            ++ejected;
        }
    }
    // Output bandwidth is 1 flit/cycle: ejections track cycles.
    EXPECT_GT(ejected, 4000u);
    // Drain and verify conservation.
    for (Cycle c = 5000; c < 5400; ++c) {
        rig.router->tick(c);
        if (auto f = rig.outOfEast.takeFlit(c)) {
            rig.outOfEast.sendCredit(f->vc, c);
            ++ejected;
        }
    }
    EXPECT_EQ(ejected + rig.router->occupancy()
                  + 0 /* in-flight on links is zero after drain */,
              injected);
}

TEST(RouterStress, FairnessUnderSymmetricLoad)
{
    // Two input ports with identical traffic: round-robin must give
    // each roughly half of the output bandwidth.
    StressRig rig;
    std::uint64_t from_west = 0, from_local = 0;
    std::map<unsigned, unsigned> wc, lc;
    for (unsigned v = 0; v < rig.params.numVcs; ++v)
        wc[v] = lc[v] = rig.params.vcDepth;

    for (Cycle c = 0; c < 4000; ++c) {
        for (unsigned v : rig.intoWest.takeCredits(c))
            ++wc[v];
        for (unsigned v : rig.intoLocal.takeCredits(c))
            ++lc[v];
        unsigned vc = static_cast<unsigned>(c) % rig.params.numVcs;
        if (wc[vc] > 0) {
            auto pkt = makePacket(MsgType::GetS, 0, 1, 0x80);
            pkt->aux = 1; // marker: west
            rig.sendFlit(rig.intoWest, pkt, 0, vc, c);
            --wc[vc];
        }
        if (lc[vc] > 0) {
            auto pkt = makePacket(MsgType::GetS, 0, 1, 0x80);
            pkt->aux = 2; // marker: local
            rig.sendFlit(rig.intoLocal, pkt, 0, vc, c);
            --lc[vc];
        }
        rig.router->tick(c);
        if (auto f = rig.outOfEast.takeFlit(c)) {
            rig.outOfEast.sendCredit(f->vc, c);
            (f->pkt->aux == 1 ? from_west : from_local) += 1;
        }
    }
    double total = static_cast<double>(from_west + from_local);
    EXPECT_GT(from_west / total, 0.40);
    EXPECT_GT(from_local / total, 0.40);
}
