/**
 * @file
 * Unit tests for the synthetic workload generator.
 */

#include <gtest/gtest.h>

#include "workload/synthetic.hh"

using namespace ocor;

TEST(Synthetic, WellFormedForAllThreads)
{
    SyntheticParams p;
    for (ThreadId t = 0; t < 64; ++t) {
        Program prog = buildSyntheticProgram(p, 7, t);
        EXPECT_TRUE(prog.wellFormed()) << "thread " << t;
        EXPECT_EQ(prog.lockCount(), p.iterations);
    }
}

TEST(Synthetic, DeterministicPerSeedAndThread)
{
    SyntheticParams p;
    Program a = buildSyntheticProgram(p, 42, 3);
    Program b = buildSyntheticProgram(p, 42, 3);
    ASSERT_EQ(a.ops.size(), b.ops.size());
    for (std::size_t i = 0; i < a.ops.size(); ++i) {
        EXPECT_EQ(a.ops[i].type, b.ops[i].type);
        EXPECT_EQ(a.ops[i].arg, b.ops[i].arg);
    }
}

TEST(Synthetic, ThreadsAreDecorrelated)
{
    SyntheticParams p;
    Program a = buildSyntheticProgram(p, 42, 0);
    Program b = buildSyntheticProgram(p, 42, 1);
    bool differs = a.ops.size() != b.ops.size();
    for (std::size_t i = 0;
         !differs && i < a.ops.size(); ++i)
        differs = a.ops[i].arg != b.ops[i].arg;
    EXPECT_TRUE(differs);
}

TEST(Synthetic, GapJitterWithinBounds)
{
    SyntheticParams p;
    p.meanGap = 10000;
    Program prog = buildSyntheticProgram(p, 1, 0);
    for (std::size_t i = 0; i < prog.ops.size(); ++i) {
        const Op &op = prog.ops[i];
        // The parallel-phase compute before each Lock is jittered in
        // [meanGap/2, 1.5*meanGap].
        if (i + 1 < prog.ops.size() &&
            prog.ops[i + 1].type == OpType::Lock &&
            op.type == OpType::Compute) {
            EXPECT_GE(op.arg, p.meanGap / 2);
            EXPECT_LE(op.arg, p.meanGap + p.meanGap / 2);
        }
    }
}

TEST(Synthetic, LockIndicesWithinRange)
{
    SyntheticParams p;
    p.numLocks = 4;
    p.iterations = 50;
    Program prog = buildSyntheticProgram(p, 9, 5);
    for (const Op &op : prog.ops)
        if (op.type == OpType::Lock) {
            EXPECT_LT(op.arg, p.numLocks);
        }
}

TEST(Synthetic, SingleLockAlwaysIndexZero)
{
    SyntheticParams p;
    p.numLocks = 1;
    Program prog = buildSyntheticProgram(p, 9, 5);
    for (const Op &op : prog.ops)
        if (op.type == OpType::Lock) {
            EXPECT_EQ(op.arg, 0u);
        }
}

TEST(Synthetic, CsAccessesTouchLockRegion)
{
    SyntheticParams p;
    p.csAccesses = 4;
    p.numLocks = 2;
    Program prog = buildSyntheticProgram(p, 3, 1);
    bool in_cs = false;
    std::uint64_t lock_idx = 0;
    for (const Op &op : prog.ops) {
        if (op.type == OpType::Lock) {
            in_cs = true;
            lock_idx = op.arg;
        } else if (op.type == OpType::Unlock) {
            in_cs = false;
        } else if (in_cs && (op.type == OpType::Load ||
                             op.type == OpType::Store)) {
            Addr region = p.sharedDataBase
                + lock_idx * 16 * p.lineBytes;
            EXPECT_GE(op.arg, region);
            EXPECT_LT(op.arg, region + 16 * p.lineBytes);
        }
    }
}

TEST(Synthetic, CsAccessCountMatchesParams)
{
    SyntheticParams p;
    p.csAccesses = 3;
    p.iterations = 4;
    Program prog = buildSyntheticProgram(p, 3, 1);
    unsigned accesses = 0;
    for (const Op &op : prog.ops)
        if (op.type == OpType::Load || op.type == OpType::Store)
            ++accesses;
    EXPECT_EQ(accesses, p.csAccesses * p.iterations);
}
