/**
 * @file
 * Unit tests for the 25 benchmark profiles.
 */

#include <gtest/gtest.h>

#include <set>

#include "workload/benchmarks.hh"

using namespace ocor;

TEST(Benchmarks, SuiteSizesMatchPaper)
{
    EXPECT_EQ(parsecProfiles().size(), 11u);
    EXPECT_EQ(omp2012Profiles().size(), 14u);
    EXPECT_EQ(allProfiles().size(), 25u);
}

TEST(Benchmarks, NamesAreUnique)
{
    std::set<std::string> names;
    for (const auto &p : allProfiles())
        names.insert(p.name);
    EXPECT_EQ(names.size(), 25u);
}

TEST(Benchmarks, SuitesLabeled)
{
    for (const auto &p : parsecProfiles())
        EXPECT_EQ(p.suite, "PARSEC");
    for (const auto &p : omp2012Profiles())
        EXPECT_EQ(p.suite, "OMP2012");
}

TEST(Benchmarks, Table3Characterizations)
{
    // Spot checks against Table 3 of the paper.
    auto botss = profileByName("botss");
    EXPECT_TRUE(botss.highCsRate);
    EXPECT_TRUE(botss.highNetUtil);
    auto imag = profileByName("imag");
    EXPECT_FALSE(imag.highCsRate);
    EXPECT_FALSE(imag.highNetUtil);
    auto body = profileByName("body");
    EXPECT_TRUE(body.highCsRate);
    EXPECT_FALSE(body.highNetUtil);
    auto freq = profileByName("freq");
    EXPECT_FALSE(freq.highCsRate);
    EXPECT_TRUE(freq.highNetUtil);
    auto ilbdc = profileByName("ilbdc");
    EXPECT_TRUE(ilbdc.highCsRate);
    EXPECT_TRUE(ilbdc.highNetUtil);
}

TEST(Benchmarks, ClassesMapToParameterRanges)
{
    for (const auto &p : allProfiles()) {
        // Calibrated ranges (see benchmarks.cc / EXPERIMENTS.md).
        EXPECT_GE(p.workload.meanGap, 17000u) << p.name;
        EXPECT_LE(p.workload.meanGap, 80000u) << p.name;
        if (p.highNetUtil)
            EXPECT_GT(p.traffic.rate, 0.03) << p.name;
        else
            EXPECT_LT(p.traffic.rate, 0.03) << p.name;
    }
}

TEST(Benchmarks, WithinClassVariationExists)
{
    // The programs of one (CS, net) class must not be identical
    // clones: per-name jitter separates them.
    auto botss = profileByName("botss");
    auto ilbdc = profileByName("ilbdc");
    EXPECT_NE(botss.workload.meanGap, ilbdc.workload.meanGap);
    EXPECT_NE(botss.traffic.rate, ilbdc.traffic.rate);
}

TEST(Benchmarks, ProfilesAreDeterministic)
{
    auto a = profileByName("can");
    auto b = profileByName("can");
    EXPECT_EQ(a.workload.meanGap, b.workload.meanGap);
    EXPECT_EQ(a.traffic.rate, b.traffic.rate);
}

TEST(BenchmarksDeath, UnknownNameIsFatal)
{
    EXPECT_EXIT(profileByName("nosuchprogram"),
                ::testing::ExitedWithCode(1), "unknown");
}
