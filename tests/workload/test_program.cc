/**
 * @file
 * Unit tests for programs and the program builder.
 */

#include <gtest/gtest.h>

#include "workload/program.hh"

using namespace ocor;

TEST(Program, BuilderProducesWellFormed)
{
    Program p = ProgramBuilder()
        .compute(100)
        .lock(0)
        .load(0x8000)
        .store(0x8000)
        .compute(50)
        .unlock(0)
        .build();
    EXPECT_TRUE(p.wellFormed());
    EXPECT_EQ(p.ops.size(), 7u); // + End
    EXPECT_EQ(p.ops.back().type, OpType::End);
    EXPECT_EQ(p.lockCount(), 1u);
}

TEST(Program, EmptyProgramIsMalformed)
{
    Program p;
    EXPECT_FALSE(p.wellFormed());
}

TEST(Program, MissingEndIsMalformed)
{
    Program p;
    p.ops.push_back({OpType::Compute, 10});
    EXPECT_FALSE(p.wellFormed());
}

TEST(Program, UnbalancedLockIsMalformed)
{
    Program p = ProgramBuilder().lock(0).build();
    EXPECT_FALSE(p.wellFormed());
}

TEST(Program, MismatchedUnlockIsMalformed)
{
    Program p;
    p.ops.push_back({OpType::Lock, 0});
    p.ops.push_back({OpType::Unlock, 1});
    p.ops.push_back({OpType::End, 0});
    EXPECT_FALSE(p.wellFormed());
}

TEST(Program, NestedLockIsMalformed)
{
    Program p;
    p.ops.push_back({OpType::Lock, 0});
    p.ops.push_back({OpType::Lock, 1});
    p.ops.push_back({OpType::Unlock, 1});
    p.ops.push_back({OpType::Unlock, 0});
    p.ops.push_back({OpType::End, 0});
    EXPECT_FALSE(p.wellFormed()) << "this model forbids nesting";
}

TEST(Program, UnlockOutsideCsIsMalformed)
{
    Program p;
    p.ops.push_back({OpType::Unlock, 0});
    p.ops.push_back({OpType::End, 0});
    EXPECT_FALSE(p.wellFormed());
}

TEST(Program, MultipleCriticalSections)
{
    ProgramBuilder b;
    for (int i = 0; i < 5; ++i)
        b.compute(10).lock(i % 2).compute(5).unlock(i % 2);
    Program p = b.build();
    EXPECT_TRUE(p.wellFormed());
    EXPECT_EQ(p.lockCount(), 5u);
}
