#!/usr/bin/env python3
"""Golden-diagnostic suite for scripts/simlint.py.

Usage: run_fixture_tests.py SIMLINT_PY

Each fixtures/<rule>.cc.in holds deliberate violations (plus clean
and allow-suppressed decoys) and a sibling <rule>.expected listing
the exact findings as `<line> <rule>` pairs. The runner lints every
fixture in isolation and demands an *exact* match -- a missing
finding is a false negative, an extra one a false positive, and
both fail the test. Fixtures use the .cc.in extension so directory
walks (check-lint over tests/) never lint them as real sources.

Also covered: the CLI contract -- exit 0 on the clean fixture,
exit 1 with findings, exit 2 on a nonexistent path and on a
directory containing no C++ sources, and --list-rules naming every
rule the fixtures exercise.
"""

import os
import re
import subprocess
import sys
import tempfile

FINDING_RE = re.compile(r"^(.*):(\d+): \[([a-z-]+)\]")


def run_simlint(simlint, args):
    proc = subprocess.run(
        [sys.executable, simlint, *args],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    return proc.returncode, proc.stdout, proc.stderr


def parse_findings(stdout):
    found = []
    for line in stdout.splitlines():
        m = FINDING_RE.match(line)
        if m:
            found.append((int(m.group(2)), m.group(3)))
    return sorted(found)


def parse_expected(path):
    expected = []
    with open(path, encoding="utf-8") as f:
        for raw in f:
            raw = raw.strip()
            if not raw or raw.startswith("#"):
                continue
            line, rule = raw.split()
            expected.append((int(line), rule))
    return sorted(expected)


def main():
    if len(sys.argv) != 2:
        print(__doc__.strip().splitlines()[2], file=sys.stderr)
        return 2
    simlint = os.path.abspath(sys.argv[1])
    fixdir = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "fixtures")
    failures = []
    rules_seen = set()

    fixtures = sorted(f for f in os.listdir(fixdir)
                      if f.endswith(".cc.in"))
    if not fixtures:
        print("FAIL: no fixtures found", file=sys.stderr)
        return 1

    for fix in fixtures:
        stem = fix[:-len(".cc.in")]
        fixture = os.path.join(fixdir, fix)
        expected = parse_expected(
            os.path.join(fixdir, stem + ".expected"))
        rules_seen |= {r for _, r in expected}

        rc, out, err = run_simlint(simlint, [fixture])
        got = parse_findings(out)
        want_rc = 1 if expected else 0
        if rc != want_rc:
            failures.append(
                f"{fix}: exit {rc}, expected {want_rc}\n{out}{err}")
        if got != expected:
            missing = [x for x in expected if x not in got]
            extra = [x for x in got if x not in expected]
            failures.append(
                f"{fix}: diagnostics diverge\n"
                f"  missing (false negatives): {missing}\n"
                f"  extra (false positives):   {extra}")
        print(f"  {stem}: {len(expected)} expected finding(s) "
              f"{'OK' if got == expected and rc == want_rc else 'FAIL'}")

    # CLI contract: bogus and zero-matching paths are hard errors,
    # not silently-green runs.
    rc, _, err = run_simlint(simlint, ["no/such/path"])
    if rc != 2:
        failures.append(f"nonexistent path: exit {rc}, expected 2")
    with tempfile.TemporaryDirectory() as empty:
        rc, _, err = run_simlint(simlint, [empty])
        if rc != 2:
            failures.append(
                f"dir without C++ sources: exit {rc}, expected 2")

    rc, out, _ = run_simlint(simlint, ["--list-rules"])
    if rc != 0:
        failures.append(f"--list-rules: exit {rc}")
    listed = {line.split()[0] for line in out.splitlines() if line}
    unlisted = rules_seen - listed
    if unlisted:
        failures.append(f"rules exercised but not listed: {unlisted}")

    if failures:
        print("FAIL:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"simlint fixtures: {len(fixtures)} fixtures, "
          f"{len(rules_seen)} rules, all diagnostics exact")
    return 0


if __name__ == "__main__":
    sys.exit(main())
