/**
 * @file
 * Unit tests for the invariant checkers (DESIGN.md §11): the
 * CheckConfig mask/parsing surface and, for every checker class, a
 * clean scenario plus at least one seeded violation asserting the
 * checker fires with the right diagnostic.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/check_config.hh"
#include "check/checkers.hh"
#include "core/priority.hh"
#include "noc/packet.hh"

using namespace ocor;

namespace
{

/** Collecting report sink shared by every unit test. */
struct Sink
{
    std::vector<CheckViolation> got;

    ReportFn
    fn()
    {
        return [this](CheckId id, Cycle c, const std::string &m) {
            got.push_back({id, c, m});
        };
    }

    bool
    has(CheckId id, const std::string &needle) const
    {
        for (const CheckViolation &v : got)
            if (v.id == id &&
                v.message.find(needle) != std::string::npos)
                return true;
        return false;
    }
};

OcorConfig
ocorOn()
{
    OcorConfig cfg;
    cfg.enabled = true;
    return cfg;
}

} // namespace

// --- CheckConfig ----------------------------------------------------

TEST(CheckConfig, MaskHelpersCoverEveryChecker)
{
    unsigned all = 0;
    for (unsigned i = 0;
         i < static_cast<unsigned>(CheckId::NumChecks); ++i)
        all |= checkBit(static_cast<CheckId>(i));
    EXPECT_EQ(all, allChecksMask());

    CheckConfig cfg;
    cfg.checks = 0;
    EXPECT_FALSE(cfg.enabled());
    cfg.checks = checkBit(CheckId::Credit);
    EXPECT_TRUE(cfg.enabled());
    EXPECT_TRUE(cfg.has(CheckId::Credit));
    EXPECT_FALSE(cfg.has(CheckId::Mutex));
}

TEST(CheckConfig, NamesAreStableAndDistinct)
{
    EXPECT_STREQ(checkName(CheckId::Mutex), "mutex");
    EXPECT_STREQ(checkName(CheckId::VcFifo), "vc-fifo");
    EXPECT_STREQ(checkName(CheckId::OneHot), "onehot");
    EXPECT_STREQ(checkName(CheckId::Arbitration), "arbitration");
    EXPECT_STREQ(checkName(CheckId::Credit), "credit");
    EXPECT_STREQ(checkName(CheckId::Rtr), "rtr");
    EXPECT_STREQ(checkName(CheckId::Wakeup), "wakeup");
}

TEST(CheckConfig, ParseRoundTripsNamesAndAll)
{
    EXPECT_EQ(parseCheckList("all"), allChecksMask());
    EXPECT_EQ(parseCheckList("mutex"), checkBit(CheckId::Mutex));
    EXPECT_EQ(parseCheckList("credit,wakeup"),
              checkBit(CheckId::Credit) | checkBit(CheckId::Wakeup));
    // Every stable name parses back to its own bit.
    for (unsigned i = 0;
         i < static_cast<unsigned>(CheckId::NumChecks); ++i) {
        CheckId id = static_cast<CheckId>(i);
        EXPECT_EQ(parseCheckList(checkName(id)), checkBit(id));
    }
}

TEST(CheckConfigDeathTest, UnknownCheckerNameAborts)
{
    EXPECT_DEATH(parseCheckList("mutex,bogus"), "unknown checker");
}

// --- VcFifoChecker --------------------------------------------------

TEST(VcFifoChecker, InOrderTrafficIsClean)
{
    Sink sink;
    VcFifoChecker ck(sink.fn());
    ck.onPush(3, 1, 0, /*pkt*/ 7, /*flit*/ 0, 10);
    ck.onPush(3, 1, 0, 7, 1, 11);
    ck.onPop(3, 1, 0, 7, 0, 12);
    ck.onPop(3, 1, 0, 7, 1, 13);
    EXPECT_TRUE(sink.got.empty());
}

TEST(VcFifoChecker, ReorderWithinVcFires)
{
    Sink sink;
    VcFifoChecker ck(sink.fn());
    ck.onPush(3, 1, 0, 7, 0, 10);
    ck.onPush(3, 1, 0, 9, 0, 11);
    ck.onPop(3, 1, 0, 9, 0, 12); // younger flit jumped the queue
    EXPECT_TRUE(sink.has(CheckId::VcFifo, "reordered"));
}

TEST(VcFifoChecker, DistinctVcsDoNotInterfere)
{
    Sink sink;
    VcFifoChecker ck(sink.fn());
    ck.onPush(3, 1, 0, 7, 0, 10);
    ck.onPush(3, 1, 1, 9, 0, 10); // other VC, may pop first
    ck.onPop(3, 1, 1, 9, 0, 11);
    ck.onPop(3, 1, 0, 7, 0, 12);
    EXPECT_TRUE(sink.got.empty());
}

TEST(VcFifoChecker, PopFromEmptyVcFires)
{
    Sink sink;
    VcFifoChecker ck(sink.fn());
    ck.onPop(0, 0, 0, 1, 0, 5);
    EXPECT_TRUE(sink.has(CheckId::VcFifo, "empty shadow FIFO"));
}

// --- OneHotChecker --------------------------------------------------

TEST(OneHotChecker, WellFormedLockHeaderIsClean)
{
    Sink sink;
    OcorConfig ocor = ocorOn();
    OneHotChecker ck(sink.fn(), ocor);

    auto pkt = makePacket(MsgType::LockTry, 0, 1, 0x200);
    pkt->priority = makePriority(ocor, PriorityClass::LockTry, 1, 0);
    ck.onInject(*pkt, 1);

    auto wake = makePacket(MsgType::WakeNotify, 1, 0, 0x200);
    wake->priority = makePriority(ocor, PriorityClass::Wakeup, 1, 0);
    ck.onInject(*wake, 2);

    auto data = makePacket(MsgType::GetS, 0, 1, 0x80);
    ck.onInject(*data, 3);

    EXPECT_TRUE(sink.got.empty());
}

TEST(OneHotChecker, NonOneHotPriorityWordFires)
{
    Sink sink;
    OcorConfig ocor = ocorOn();
    OneHotChecker ck(sink.fn(), ocor);
    auto pkt = makePacket(MsgType::LockTry, 0, 1, 0x200);
    pkt->priority = makePriority(ocor, PriorityClass::LockTry, 1, 0);
    pkt->priority.priorityBits |= 0x6; // two extra bits: not one-hot
    ck.onInject(*pkt, 1);
    EXPECT_TRUE(sink.has(CheckId::OneHot, "not one-hot"));
}

TEST(OneHotChecker, CheckBitOnDataPacketFires)
{
    Sink sink;
    OcorConfig ocor = ocorOn();
    OneHotChecker ck(sink.fn(), ocor);
    auto pkt = makePacket(MsgType::GetS, 0, 1, 0x80);
    pkt->priority = makePriority(ocor, PriorityClass::LockTry, 1, 0);
    ck.onInject(*pkt, 1);
    EXPECT_TRUE(
        sink.has(CheckId::OneHot, "check bit on a non-lock packet"));
}

TEST(OneHotChecker, PriorityBitsWithoutCheckBitFire)
{
    Sink sink;
    OcorConfig ocor = ocorOn();
    OneHotChecker ck(sink.fn(), ocor);
    auto pkt = makePacket(MsgType::GetS, 0, 1, 0x80);
    pkt->priority.priorityBits = 0x2; // stray header bits
    ck.onInject(*pkt, 1);
    EXPECT_TRUE(sink.has(CheckId::OneHot, "without the check bit"));
}

TEST(OneHotChecker, WakeupAboveLevelZeroFires)
{
    Sink sink;
    OcorConfig ocor = ocorOn();
    OneHotChecker ck(sink.fn(), ocor);
    auto pkt = makePacket(MsgType::WakeNotify, 1, 0, 0x200);
    // Stamp it like a locking request: lands on a level >= 1.
    pkt->priority = makePriority(ocor, PriorityClass::LockTry, 1, 0);
    ck.onInject(*pkt, 1);
    EXPECT_TRUE(sink.has(CheckId::OneHot, "Table 1 rule 4"));
}

// --- ArbitrationChecker ---------------------------------------------

TEST(ArbitrationChecker, HighestRankGrantIsClean)
{
    Sink sink;
    OcorConfig ocor = ocorOn();
    ArbitrationChecker ck(sink.fn(), ocor);

    auto lock = makePacket(MsgType::LockTry, 0, 1, 0x200);
    lock->priority = makePriority(ocor, PriorityClass::LockTry, 1, 0);
    auto data = makePacket(MsgType::GetS, 0, 1, 0x80);

    std::vector<const Packet *> cands = {lock.get(), data.get()};
    ck.onGrant(0, "sa-global", cands, 0, 5);
    EXPECT_TRUE(sink.got.empty());
}

TEST(ArbitrationChecker, GrantBeatingHigherPriorityRivalFires)
{
    Sink sink;
    OcorConfig ocor = ocorOn();
    ArbitrationChecker ck(sink.fn(), ocor);

    auto lock = makePacket(MsgType::LockTry, 0, 1, 0x200);
    lock->priority = makePriority(ocor, PriorityClass::LockTry, 1, 0);
    auto data = makePacket(MsgType::GetS, 0, 1, 0x80);

    std::vector<const Packet *> cands = {lock.get(), data.get()};
    ck.onGrant(0, "sa-global", cands, 1, 5); // data beat the lock
    EXPECT_TRUE(sink.has(CheckId::Arbitration, "Table 1 violated"));
}

TEST(ArbitrationChecker, GrantToNonRequesterFires)
{
    Sink sink;
    OcorConfig ocor = ocorOn();
    ArbitrationChecker ck(sink.fn(), ocor);
    auto data = makePacket(MsgType::GetS, 0, 1, 0x80);
    std::vector<const Packet *> cands = {data.get(), nullptr};
    ck.onGrant(0, "va", cands, 1, 5);
    EXPECT_TRUE(sink.has(CheckId::Arbitration, "not a requester"));
}

// --- CreditChecker --------------------------------------------------

TEST(CreditChecker, BalancedFlowIsClean)
{
    Sink sink;
    CreditChecker ck(sink.fn(), /*vc_depth=*/4);
    for (unsigned i = 0; i < 4; ++i)
        ck.onTraversal(0, 1, 0, i);
    for (unsigned i = 0; i < 4; ++i)
        ck.onCredit(0, 1, 0, 10 + i);
    ck.onLinkFlitSent();
    ck.onLinkFlitDelivered();
    ck.finalize(/*drained=*/true, /*dropped_flits=*/0, 20);
    EXPECT_TRUE(sink.got.empty());
}

TEST(CreditChecker, OversendingBeyondDepthFires)
{
    Sink sink;
    CreditChecker ck(sink.fn(), 4);
    for (unsigned i = 0; i < 5; ++i) // 5 in flight into a 4-deep VC
        ck.onTraversal(0, 1, 0, i);
    EXPECT_TRUE(sink.has(CheckId::Credit, "credit underflow"));
}

TEST(CreditChecker, SpuriousCreditFires)
{
    Sink sink;
    CreditChecker ck(sink.fn(), 4);
    ck.onCredit(0, 1, 0, 3);
    EXPECT_TRUE(sink.has(CheckId::Credit, "spurious credit"));
}

TEST(CreditChecker, CreditLeakAtDrainFires)
{
    Sink sink;
    CreditChecker ck(sink.fn(), 4);
    ck.onTraversal(2, 1, 0, 1);
    ck.finalize(true, 0, 50);
    EXPECT_TRUE(
        sink.has(CheckId::Credit, "never returned after drain"));
}

TEST(CreditChecker, WireConservationFiresUnlessFaultExcused)
{
    Sink sink;
    CreditChecker ck(sink.fn(), 4);
    ck.onLinkFlitSent();
    ck.onLinkFlitSent();
    ck.onLinkFlitDelivered(); // one flit vanished
    ck.finalize(true, 0, 50);
    EXPECT_TRUE(sink.has(CheckId::Credit, "conservation broken"));

    // The same imbalance is excused when the fault injector owns the
    // missing flit.
    Sink sink2;
    CreditChecker ck2(sink2.fn(), 4);
    ck2.onLinkFlitSent();
    ck2.onLinkFlitSent();
    ck2.onLinkFlitDelivered();
    ck2.finalize(true, /*dropped_flits=*/1, 50);
    EXPECT_TRUE(sink2.got.empty());
}

TEST(CreditChecker, TruncatedRunSkipsDrainChecks)
{
    Sink sink;
    CreditChecker ck(sink.fn(), 4);
    ck.onTraversal(0, 1, 0, 1);
    ck.onLinkFlitSent();
    ck.finalize(/*drained=*/false, 0, 50);
    EXPECT_TRUE(sink.got.empty());
}

// --- RtrChecker -----------------------------------------------------

TEST(RtrChecker, NonIncreasingRtrIsClean)
{
    Sink sink;
    OcorConfig ocor = ocorOn();
    RtrChecker ck(sink.fn(), ocor);
    ck.onAcquireStart(0, 1);
    ck.onLockTry(0, ocor.maxSpinCount, 2);
    ck.onLockTry(0, ocor.maxSpinCount - 1, 10);
    ck.onLockTry(0, ocor.maxSpinCount - 1, 20); // plateaus are fine
    EXPECT_TRUE(sink.got.empty());
}

TEST(RtrChecker, RisingRtrWithinAttemptFires)
{
    Sink sink;
    OcorConfig ocor = ocorOn();
    RtrChecker ck(sink.fn(), ocor);
    ck.onAcquireStart(0, 1);
    ck.onLockTry(0, 3, 2);
    ck.onLockTry(0, 4, 10); // RTR must never rise mid-attempt
    EXPECT_TRUE(sink.has(CheckId::Rtr, "must be non-increasing"));
}

TEST(RtrChecker, NewAttemptResetsTheBudget)
{
    Sink sink;
    OcorConfig ocor = ocorOn();
    RtrChecker ck(sink.fn(), ocor);
    ck.onAcquireStart(0, 1);
    ck.onLockTry(0, 2, 2);
    ck.onAcquireStart(0, 100); // next lock() call starts fresh
    ck.onLockTry(0, ocor.maxSpinCount, 101);
    EXPECT_TRUE(sink.got.empty());
}

TEST(RtrChecker, RtrOutsideSpinBudgetFires)
{
    Sink sink;
    OcorConfig ocor = ocorOn();
    RtrChecker ck(sink.fn(), ocor);
    ck.onAcquireStart(0, 1);
    ck.onLockTry(0, ocor.maxSpinCount + 1, 2);
    EXPECT_TRUE(sink.has(CheckId::Rtr, "outside [1,"));
    ck.onLockTry(1, 0, 3);
    EXPECT_TRUE(sink.got.size() >= 2);
}

// --- WakeupChecker --------------------------------------------------

TEST(WakeupChecker, MatchedWakeIsClean)
{
    Sink sink;
    WakeupChecker ck(sink.fn());
    ck.onWakeSent(0x200, 3, 10);
    ck.onWakeConsumed(0x200, 3, 25);
    ck.finalize(/*lossy=*/false, 30);
    EXPECT_TRUE(sink.got.empty());
}

TEST(WakeupChecker, WatchdogRewakeStaysOneLogicalWakeup)
{
    Sink sink;
    WakeupChecker ck(sink.fn());
    ck.onWakeSent(0x200, 3, 10);
    ck.onWakeSent(0x200, 3, 500); // watchdog re-send, same sleeper
    ck.onWakeConsumed(0x200, 3, 510);
    ck.finalize(false, 600);
    EXPECT_TRUE(sink.got.empty());
}

TEST(WakeupChecker, ConsumeWithoutSendFires)
{
    Sink sink;
    WakeupChecker ck(sink.fn());
    ck.onWakeConsumed(0x200, 3, 25);
    EXPECT_TRUE(sink.has(CheckId::Wakeup, "never issued"));
}

TEST(WakeupChecker, LostWakeupAtFinalizeFires)
{
    Sink sink;
    WakeupChecker ck(sink.fn());
    ck.onWakeSent(0x200, 3, 10);
    ck.finalize(/*lossy=*/false, 100);
    EXPECT_TRUE(sink.has(CheckId::Wakeup, "lost wakeup"));
}

TEST(WakeupChecker, LossyRunExcusesOutstandingWakes)
{
    Sink sink;
    WakeupChecker ck(sink.fn());
    ck.onWakeSent(0x200, 3, 10);
    ck.finalize(/*lossy=*/true, 100);
    EXPECT_TRUE(sink.got.empty());
}
