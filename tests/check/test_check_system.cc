/**
 * @file
 * End-to-end tests for the CheckerRegistry: clean contended and
 * faulty runs stay violation-free, checking-off runs are
 * bit-identical to checked ones, and every checker with a component
 * hook fires when its invariant is deliberately broken through a
 * test hook (inverted arbitration, swapped VC flits, withheld
 * credits, forced double lock holds, malformed headers).
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "check/checker_registry.hh"
#include "noc/network_interface.hh"
#include "noc/router.hh"
#include "sim/simulator.hh"

using namespace ocor;

namespace
{

SystemConfig
smallConfig(unsigned checks)
{
    SystemConfig cfg;
    cfg.mesh = MeshShape{2, 2};
    cfg.numThreads = 4;
    cfg.maxCycles = 2'000'000;
    cfg.seed = 11;
    cfg.check.checks = checks;
    return cfg;
}

std::vector<Program>
contendedPrograms(unsigned n, unsigned iters = 3)
{
    std::vector<Program> out;
    for (unsigned t = 0; t < n; ++t) {
        ProgramBuilder b;
        for (unsigned i = 0; i < iters; ++i)
            b.compute(100 + 37 * t).lock(0).compute(50).unlock(0);
        out.push_back(b.build());
    }
    return out;
}

void
expectSameMetrics(const RunMetrics &a, const RunMetrics &b)
{
    EXPECT_EQ(a.roiFinish, b.roiFinish);
    EXPECT_EQ(a.packetsInjected, b.packetsInjected);
    EXPECT_EQ(a.flitsInjected, b.flitsInjected);
    EXPECT_EQ(a.lockPacketsInjected, b.lockPacketsInjected);
    EXPECT_EQ(a.avgPacketLatency, b.avgPacketLatency);
    EXPECT_EQ(a.avgLockPacketLatency, b.avgLockPacketLatency);
    EXPECT_EQ(a.avgDataPacketLatency, b.avgDataPacketLatency);
    EXPECT_EQ(a.p99PacketLatency, b.p99PacketLatency);
    EXPECT_EQ(a.p99LockHandover, b.p99LockHandover);
    ASSERT_EQ(a.perThread.size(), b.perThread.size());
    for (std::size_t t = 0; t < a.perThread.size(); ++t) {
        const ThreadCounters &x = a.perThread[t];
        const ThreadCounters &y = b.perThread[t];
        EXPECT_EQ(x.computeCycles, y.computeCycles) << "t" << t;
        EXPECT_EQ(x.csCycles, y.csCycles) << "t" << t;
        EXPECT_EQ(x.blockedHeldCycles, y.blockedHeldCycles)
            << "t" << t;
        EXPECT_EQ(x.blockedIdleCycles, y.blockedIdleCycles)
            << "t" << t;
        EXPECT_EQ(x.acquisitions, y.acquisitions) << "t" << t;
        EXPECT_EQ(x.spinWins, y.spinWins) << "t" << t;
        EXPECT_EQ(x.sleepWins, y.sleepWins) << "t" << t;
        EXPECT_EQ(x.retries, y.retries) << "t" << t;
        EXPECT_EQ(x.sleeps, y.sleeps) << "t" << t;
    }
}

/** Collecting handler for seeded-violation tests. */
struct Collector
{
    std::vector<CheckViolation> got;

    void
    attach(CheckerRegistry &reg)
    {
        reg.setViolationHandler([this](const CheckViolation &v) {
            got.push_back(v);
        });
    }

    bool
    has(CheckId id, const std::string &needle) const
    {
        for (const CheckViolation &v : got)
            if (v.id == id &&
                v.message.find(needle) != std::string::npos)
                return true;
        return false;
    }
};

/** The test_router rig plus an attached checker registry: one router
 * at node 0 of a 2x1 mesh, driven by hand through its links. */
struct CheckedRouterRig
{
    MeshShape mesh{2, 1};
    NocParams params;
    OcorConfig ocor;
    CheckConfig check;
    std::unique_ptr<CheckerRegistry> reg;
    Collector violations;
    std::unique_ptr<Router> router;
    Link intoWest;
    Link intoEast;
    Link outOfEast;
    Link intoLocal;
    Link outOfLocal;

    explicit CheckedRouterRig(unsigned checks, bool ocor_on = true)
    {
        ocor.enabled = ocor_on;
        check.checks = checks;
        reg = std::make_unique<CheckerRegistry>(check, ocor,
                                                params.vcDepth);
        violations.attach(*reg);
        router = std::make_unique<Router>(0, mesh, params, ocor);
        router->attach(PortEast, &intoEast, &outOfEast);
        router->attach(PortLocal, &intoLocal, &outOfLocal);
        router->attach(PortWest, &intoWest, nullptr);
        router->setChecker(reg.get());
    }

    void
    sendFlit(Link &link, const PacketPtr &pkt, unsigned index,
             unsigned vc, Cycle now)
    {
        Flit f;
        f.pkt = pkt;
        f.index = index;
        f.type = flitTypeFor(index, pkt->numFlits);
        f.vc = vc;
        link.sendFlit(f, now);
    }
};

} // namespace

// --- clean runs -----------------------------------------------------

TEST(CheckSystem, FullyCheckedContendedRunHasNoViolations)
{
    for (bool ocor_on : {false, true}) {
        SystemConfig cfg = smallConfig(allChecksMask());
        cfg.ocor.enabled = ocor_on;
        Simulator sim(cfg, contendedPrograms(4), BgTrafficConfig{});
        sim.run();
        CheckerRegistry *ck = sim.system().checker();
        ASSERT_NE(ck, nullptr);
        EXPECT_EQ(ck->violations(), 0u)
            << "ocor=" << ocor_on << " first: "
            << (ck->log().empty() ? "" : ck->log().front().message);
    }
}

TEST(CheckSystem, FullyCheckedFaultyRunHasNoFalsePositives)
{
    // Recoverable drops/corruption on lock traffic: the fault
    // injector's accounting must excuse every checker (synthesized
    // credits, wire conservation, lost-wakeup skip).
    SystemConfig cfg = smallConfig(allChecksMask());
    cfg.ocor.enabled = true;
    cfg.fault.dropRate = 0.08;
    cfg.fault.corruptRate = 0.05;
    cfg.fault.lockOnly = true;
    cfg.fault.retryTimeout = 500;
    cfg.fault.maxRetries = 10;
    cfg.fault.seed = 3;
    cfg.os.tryWatchdogCycles = 150'000;
    cfg.os.sleepWatchdogCycles = 150'000;
    Simulator sim(cfg, contendedPrograms(4, 4), BgTrafficConfig{});
    RunMetrics m = sim.run();
    EXPECT_GT(m.faultsInjected, 0u);
    CheckerRegistry *ck = sim.system().checker();
    ASSERT_NE(ck, nullptr);
    EXPECT_EQ(ck->violations(), 0u)
        << (ck->log().empty() ? "" : ck->log().front().message);
}

TEST(CheckSystem, CheckingOffLeavesNoRegistry)
{
    SystemConfig cfg = smallConfig(0);
    Simulator sim(cfg, contendedPrograms(4), BgTrafficConfig{});
    EXPECT_EQ(sim.system().checker(), nullptr);
}

// Checkers are pure observers: a fully checked run must be
// bit-identical to an unchecked one, metric for metric.
TEST(CheckSystem, CheckedRunIsBitIdenticalToUnchecked)
{
    Simulator off(smallConfig(0), contendedPrograms(4),
                  BgTrafficConfig{});
    RunMetrics moff = off.run();

    Simulator on(smallConfig(allChecksMask()), contendedPrograms(4),
                 BgTrafficConfig{});
    RunMetrics mon = on.run();

    expectSameMetrics(moff, mon);
}

// --- seeded violations ----------------------------------------------

TEST(CheckSystem, SeededDoubleHolderTripsMutexChecker)
{
    SystemConfig cfg = smallConfig(checkBit(CheckId::Mutex));
    Simulator sim(cfg, contendedPrograms(4), BgTrafficConfig{});
    CheckerRegistry *ck = sim.system().checker();
    ASSERT_NE(ck, nullptr);
    Collector got;
    got.attach(*ck);

    sim.system().qspinlock(0).testForceHold(0x1000);
    sim.system().qspinlock(1).testForceHold(0x1000);
    ck->onCycleEnd(0);

    EXPECT_TRUE(got.has(CheckId::Mutex, "mutual exclusion broken"));
}

TEST(CheckSystem, SeededInCsWithoutHoldTripsMutexChecker)
{
    SystemConfig cfg = smallConfig(checkBit(CheckId::Mutex));
    Simulator sim(cfg, contendedPrograms(4), BgTrafficConfig{});
    CheckerRegistry *ck = sim.system().checker();
    ASSERT_NE(ck, nullptr);
    Collector got;
    got.attach(*ck);

    sim.system().pcb(2).state = ThreadState::InCS;
    ck->onCycleEnd(0);

    EXPECT_TRUE(got.has(CheckId::Mutex, "InCS without holding"));
}

TEST(CheckSystem, SeededInvertedArbiterTripsArbitrationChecker)
{
    // The OcorPrioritizesLockPacket scenario from test_router.cc,
    // with the arbiter's rank comparison inverted under a test hook:
    // the data packet now beats the competing lock packet, which the
    // checker's independent Table-1 recomputation must flag.
    CheckedRouterRig rig(checkBit(CheckId::Arbitration));
    rig.router->testInvertArbitration(true);

    auto data = makePacket(MsgType::GetS, 0, 1, 0x80);
    auto lock = makePacket(MsgType::LockTry, 0, 1, 0x200);
    lock->priority = makePriority(rig.ocor, PriorityClass::LockTry,
                                  1, 0);

    rig.sendFlit(rig.intoWest, data, 0, 0, 0);
    rig.sendFlit(rig.intoLocal, lock, 0, 0, 0);
    for (Cycle c = 1; c <= 12; ++c) {
        rig.router->tick(c);
        if (auto f = rig.outOfEast.takeFlit(c))
            rig.outOfEast.sendCredit(f->vc, c);
    }

    EXPECT_TRUE(rig.violations.has(CheckId::Arbitration,
                                   "Table 1 violated"));
}

TEST(CheckSystem, IntactArbiterStaysCleanUnderTheSameContention)
{
    CheckedRouterRig rig(checkBit(CheckId::Arbitration));

    auto data = makePacket(MsgType::GetS, 0, 1, 0x80);
    auto lock = makePacket(MsgType::LockTry, 0, 1, 0x200);
    lock->priority = makePriority(rig.ocor, PriorityClass::LockTry,
                                  1, 0);

    rig.sendFlit(rig.intoWest, data, 0, 0, 0);
    rig.sendFlit(rig.intoLocal, lock, 0, 0, 0);
    for (Cycle c = 1; c <= 12; ++c) {
        rig.router->tick(c);
        if (auto f = rig.outOfEast.takeFlit(c))
            rig.outOfEast.sendCredit(f->vc, c);
    }

    EXPECT_EQ(rig.violations.got.size(), 0u);
}

TEST(CheckSystem, SeededBufferSwapTripsVcFifoChecker)
{
    CheckedRouterRig rig(checkBit(CheckId::VcFifo),
                         /*ocor_on=*/false);

    auto a = makePacket(MsgType::GetS, 0, 1, 0x80);
    auto b = makePacket(MsgType::GetS, 0, 1, 0xc0);
    rig.sendFlit(rig.intoWest, a, 0, 0, 0); // arrives cycle 1
    rig.sendFlit(rig.intoWest, b, 0, 0, 1); // arrives cycle 2
    rig.router->tick(1);
    rig.router->tick(2); // both buffered in west vc 0, neither popped

    rig.router->testSwapVcFlits(PortWest, 0);
    for (Cycle c = 3; c <= 12; ++c) {
        rig.router->tick(c);
        if (auto f = rig.outOfEast.takeFlit(c))
            rig.outOfEast.sendCredit(f->vc, c);
    }

    EXPECT_TRUE(rig.violations.has(CheckId::VcFifo, "reordered"));
}

TEST(CheckSystem, WithheldCreditTripsCreditCheckerAtFinalize)
{
    CheckedRouterRig rig(checkBit(CheckId::Credit),
                         /*ocor_on=*/false);

    auto pkt = makePacket(MsgType::GetS, 0, 1, 0x80);
    rig.sendFlit(rig.intoWest, pkt, 0, 0, 0);
    bool exited = false;
    for (Cycle c = 1; c <= 12; ++c) {
        rig.router->tick(c);
        // Consume the flit but "lose" the credit on the way back.
        if (rig.outOfEast.takeFlit(c))
            exited = true;
    }
    ASSERT_TRUE(exited);
    EXPECT_EQ(rig.violations.got.size(), 0u);

    rig.reg->finalize(20);
    EXPECT_TRUE(rig.violations.has(CheckId::Credit,
                                   "never returned after drain"));
}

TEST(CheckSystem, LostWireFlitTripsConservationAtFinalize)
{
    OcorConfig ocor;
    CheckConfig cc;
    cc.checks = checkBit(CheckId::Credit);
    CheckerRegistry reg(cc, ocor, 4);
    Collector got;
    got.attach(reg);

    Link wire;
    wire.setChecker(&reg);
    auto pkt = makePacket(MsgType::GetS, 0, 1, 0x80);
    Flit f;
    f.pkt = pkt;
    f.index = 0;
    f.type = flitTypeFor(0, pkt->numFlits);
    f.vc = 0;
    wire.sendFlit(f, 0); // put on the wire, never taken off
    reg.finalize(10);

    EXPECT_TRUE(got.has(CheckId::Credit, "conservation broken"));
}

TEST(CheckSystem, MalformedHeaderAtInjectionTripsOneHotChecker)
{
    OcorConfig ocor;
    ocor.enabled = true;
    NocParams params;
    CheckConfig cc;
    cc.checks = checkBit(CheckId::OneHot);
    CheckerRegistry reg(cc, ocor, params.vcDepth);
    Collector got;
    got.attach(reg);

    NetworkInterface ni(0, params, ocor);
    ni.setChecker(&reg);
    auto pkt = makePacket(MsgType::LockTry, 0, 1, 0x200);
    pkt->priority = makePriority(ocor, PriorityClass::LockTry, 1, 0);
    pkt->priority.priorityBits |= 0x6; // corrupt: not one-hot
    ni.inject(pkt, 0);

    EXPECT_TRUE(got.has(CheckId::OneHot, "not one-hot"));
}

TEST(CheckSystem, RegistryRoutesOsHooksToRtrAndWakeupCheckers)
{
    OcorConfig ocor;
    ocor.enabled = true;
    CheckConfig cc;
    cc.checks = checkBit(CheckId::Rtr) | checkBit(CheckId::Wakeup);
    CheckerRegistry reg(cc, ocor, 4);
    Collector got;
    got.attach(reg);

    reg.onAcquireStart(0, 1);
    reg.onLockTry(0, 3, 2);
    reg.onLockTry(0, 5, 10); // RTR rose mid-attempt
    reg.onWakeSent(0x200, 2, 20);
    reg.finalize(100); // wake never consumed, run not lossy

    EXPECT_TRUE(got.has(CheckId::Rtr, "must be non-increasing"));
    EXPECT_TRUE(got.has(CheckId::Wakeup, "lost wakeup"));
    EXPECT_EQ(reg.violations(), got.got.size());
    EXPECT_EQ(reg.log().size(), got.got.size());
}

TEST(CheckSystem, DiagnosticDumpExplainsMissingTracer)
{
    OcorConfig ocor;
    CheckConfig cc;
    cc.checks = checkBit(CheckId::Credit);
    CheckerRegistry reg(cc, ocor, 4);
    std::ostringstream os;
    reg.dumpDiagnostics(os);
    EXPECT_NE(os.str().find("no tracer attached"), std::string::npos);
}
