/**
 * @file
 * Failure injection: stray, stale and duplicate protocol messages
 * must be absorbed gracefully (counted, warned about, never
 * corrupting state). These are the races a real NoC produces under
 * reordering, so every handler needs a safe default path.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mem/l2_directory.hh"
#include "os/lock_manager.hh"
#include "os/qspinlock.hh"

using namespace ocor;

namespace
{

SendFn
nullSend()
{
    return [](const PacketPtr &, Cycle) {};
}

} // namespace

TEST(FailureInjection, StaleInvAckIsCountedNotApplied)
{
    MeshShape mesh{4, 4};
    AddressMap amap(mesh, 128);
    MemParams params;
    L2Directory l2(0, amap, params, nullSend());

    auto ack = makePacket(MsgType::InvAck, 3, 0, 0x4000);
    ack->aux = 0x1234 << 8; // tag of a transaction that never was
    l2.handle(ack, 0);
    for (Cycle c = 0; c < params.l2Latency + 2; ++c)
        l2.tick(c);
    EXPECT_EQ(l2.stats().staleAcks, 1u);
    EXPECT_FALSE(l2.lineBusy(0x4000));
}

TEST(FailureInjection, StaleFetchRespIgnored)
{
    MeshShape mesh{4, 4};
    AddressMap amap(mesh, 128);
    MemParams params;
    L2Directory l2(0, amap, params, nullSend());

    auto resp = makePacket(MsgType::FetchResp, 3, 0, 0x4000);
    resp->aux = (7u << 8) | 1;
    l2.handle(resp, 0);
    for (Cycle c = 0; c < params.l2Latency + 2; ++c)
        l2.tick(c);
    EXPECT_EQ(l2.stats().staleAcks, 1u);
}

TEST(FailureInjection, StaleUnblockIgnored)
{
    MeshShape mesh{4, 4};
    AddressMap amap(mesh, 128);
    MemParams params;
    L2Directory l2(0, amap, params, nullSend());

    auto unb = makePacket(MsgType::Unblock, 3, 0, 0x4000);
    l2.handle(unb, 0);
    for (Cycle c = 0; c < params.l2Latency + 2; ++c)
        l2.tick(c);
    EXPECT_EQ(l2.stats().staleAcks, 1u);
    EXPECT_FALSE(l2.lineBusy(0x4000));
}

TEST(FailureInjection, PutFromNonOwnerIsHarmless)
{
    MeshShape mesh{4, 4};
    AddressMap amap(mesh, 128);
    MemParams params;
    L2Directory l2(0, amap, params, nullSend());

    auto put = makePacket(MsgType::PutE, 5, 0, 0x4000);
    l2.handle(put, 0);
    for (Cycle c = 0; c < params.l2Latency + 2; ++c)
        l2.tick(c);
    EXPECT_EQ(l2.ownerOf(0x4000), invalidNode);
}

TEST(FailureInjection, WakeForEmptyQueueIsNoOp)
{
    OsParams os;
    LockManager mgr(0, os, nullSend());
    auto wake = makePacket(MsgType::FutexWake, 1, 0, 0x1000);
    wake->thread = 1;
    mgr.handle(wake, 0);
    for (Cycle c = 0; c < os.homeLatency + 2; ++c)
        mgr.tick(c);
    EXPECT_FALSE(mgr.heldNow(0x1000));
    EXPECT_EQ(mgr.stats().wakes, 0u);
}

TEST(FailureInjection, DuplicateWakesGrantOnlyOnce)
{
    OsParams os;
    unsigned wake_notifies = 0;
    LockManager mgr(0, os, [&](const PacketPtr &pkt, Cycle) {
        if (pkt->type == MsgType::WakeNotify)
            ++wake_notifies;
    });
    auto deliver = [&](MsgType t, ThreadId tid) {
        auto pkt = makePacket(t, tid, 0, 0x1000);
        pkt->thread = tid;
        mgr.handle(pkt, 0);
        static Cycle now = 0;
        for (Cycle end = now + os.homeLatency + 2; now < end; ++now)
            mgr.tick(now);
    };
    deliver(MsgType::LockTry, 1);    // holder
    deliver(MsgType::FutexWait, 2);  // sleeper
    deliver(MsgType::LockRelease, 1);
    deliver(MsgType::FutexWake, 1);
    deliver(MsgType::FutexWake, 1);  // duplicate
    deliver(MsgType::FutexWake, 1);  // duplicate
    EXPECT_EQ(wake_notifies, 1u);
    EXPECT_EQ(mgr.holderOf(0x1000), 2u);
}

TEST(FailureInjection, StaleLockFailWarnsOnly)
{
    MeshShape mesh{2, 2};
    AddressMap amap(mesh, 128);
    OcorConfig ocor;
    OsParams os;
    Pcb pcb;
    pcb.tid = 0;
    pcb.node = 0;
    QSpinlock qs(pcb, ocor, os, amap, nullSend());
    auto fail = makePacket(MsgType::LockFail, 1, 0, 0x1000);
    fail->thread = 0;
    qs.handle(fail, 0); // no acquisition in progress
    EXPECT_FALSE(qs.waiting());
    EXPECT_FALSE(qs.holding());
}

TEST(FailureInjection, LateGrantDuringSleepPrepStillAccepted)
{
    // The futex re-check window: a grant that arrives after the
    // budget expired (thread in SleepPrep) must still take effect
    // and cancel the sleep.
    MeshShape mesh{2, 2};
    AddressMap amap(mesh, 128);
    OcorConfig ocor;
    OsParams os;
    Pcb pcb;
    pcb.tid = 0;
    pcb.node = 0;
    unsigned futex_waits = 0;
    QSpinlock qs(pcb, ocor, os, amap,
                 [&](const PacketPtr &pkt, Cycle) {
                     if (pkt->type == MsgType::FutexWait)
                         ++futex_waits;
                 });
    bool acquired = false;
    qs.acquire(0x1000, 0, [&](Cycle) { acquired = true; });

    // Fail immediately, then run to budget expiry (SleepPrep).
    auto fail = makePacket(MsgType::LockFail, 1, 0, 0x1000);
    fail->thread = 0;
    qs.handle(fail, 0);
    Cycle budget =
        static_cast<Cycle>(ocor.maxSpinCount) * os.retryInterval;
    Cycle now = 0;
    while (now < budget + 10 &&
           pcb.state != ThreadState::SleepPrep) {
        qs.tick(now);
        if (pcb.state == ThreadState::Spinning && qs.waiting()) {
            auto f = makePacket(MsgType::LockFail, 1, 0, 0x1000);
            f->thread = 0;
            qs.handle(f, now);
        }
        ++now;
    }
    ASSERT_EQ(pcb.state, ThreadState::SleepPrep);

    auto grant = makePacket(MsgType::LockGrant, 1, 0, 0x1000);
    grant->thread = 0;
    qs.handle(grant, now);
    EXPECT_TRUE(acquired);
    EXPECT_EQ(pcb.state, ThreadState::InCS);
    // The pending SleepPrep timer must not register a futex wait.
    for (Cycle end = now + os.sleepPrepCycles + 10; now < end; ++now)
        qs.tick(now);
    EXPECT_EQ(futex_waits, 0u);
}

namespace
{

/** A QSpinlock wired to capture everything it sends. */
struct QsRig
{
    MeshShape mesh{2, 2};
    AddressMap amap{mesh, 128};
    OcorConfig ocor;
    OsParams os;
    Pcb pcb;
    std::vector<PacketPtr> sent;
    std::unique_ptr<QSpinlock> qs;
    bool acquired = false;

    QsRig()
    {
        pcb.tid = 0;
        pcb.node = 0;
        qs = std::make_unique<QSpinlock>(
            pcb, ocor, os, amap,
            [this](const PacketPtr &pkt, Cycle) {
                sent.push_back(pkt);
            });
    }

    void
    recv(MsgType t, Cycle now, Addr lock = 0x1000)
    {
        auto pkt = makePacket(t, 1, 0, lock);
        pkt->thread = 0;
        qs->handle(pkt, now);
    }

    unsigned
    countOfType(MsgType t) const
    {
        unsigned n = 0;
        for (const auto &p : sent)
            n += p->type == t ? 1 : 0;
        return n;
    }
};

} // namespace

// A retransmitted LockTry answered twice: the second grant reaches a
// thread already inside its critical section and must be absorbed —
// releasing would hand the lock to someone else mid-CS.
TEST(FailureInjection, DuplicateGrantWhileHoldingAbsorbed)
{
    QsRig rig;
    rig.qs->acquire(0x1000, 0, [&](Cycle) { rig.acquired = true; });
    rig.recv(MsgType::LockGrant, 5);
    ASSERT_TRUE(rig.acquired);
    ASSERT_TRUE(rig.qs->holding());

    rig.recv(MsgType::LockGrant, 6); // duplicate
    EXPECT_TRUE(rig.qs->holding());
    EXPECT_EQ(rig.pcb.state, ThreadState::InCS);
    EXPECT_EQ(rig.qs->duplicatesAbsorbed(), 1u);
    EXPECT_EQ(rig.countOfType(MsgType::LockRelease), 0u)
        << "absorbing a duplicate must never release";
}

// A grant for a lock the thread is no longer acquiring (a stale
// retransmission outliving the protocol round) is handed back so the
// home does not leak a permanently-held lock.
TEST(FailureInjection, OrphanGrantReturnedToHome)
{
    QsRig rig;
    rig.recv(MsgType::LockGrant, 0); // no acquisition in progress
    EXPECT_FALSE(rig.qs->holding());
    EXPECT_FALSE(rig.qs->waiting());
    EXPECT_EQ(rig.qs->duplicatesAbsorbed(), 1u);
    ASSERT_EQ(rig.countOfType(MsgType::LockRelease), 1u);
    EXPECT_EQ(rig.sent.back()->addr, 0x1000u);
}

// Duplicate WakeNotify while the context switch in is already under
// way: absorbed, the thread enters the CS exactly once.
TEST(FailureInjection, DuplicateWakeNotifyAbsorbed)
{
    QsRig rig;
    rig.qs->acquire(0x1000, 0, [&](Cycle) { rig.acquired = true; });
    // Burn the whole spin budget so the fail parks the thread, then
    // complete the context switch out (FUTEX_WAIT registration).
    Cycle deadline = static_cast<Cycle>(rig.ocor.maxSpinCount)
        * rig.os.retryInterval;
    rig.recv(MsgType::LockFail, deadline);
    ASSERT_EQ(rig.pcb.state, ThreadState::SleepPrep);
    Cycle now = deadline;
    for (Cycle end = now + rig.os.sleepPrepCycles + 1; now < end;
         ++now)
        rig.qs->tick(now);
    ASSERT_EQ(rig.pcb.state, ThreadState::Sleeping);
    ASSERT_EQ(rig.countOfType(MsgType::FutexWait), 1u);

    rig.recv(MsgType::WakeNotify, now);
    ASSERT_EQ(rig.pcb.state, ThreadState::Waking);

    rig.recv(MsgType::WakeNotify, now + 1); // duplicate
    EXPECT_EQ(rig.pcb.state, ThreadState::Waking);
    EXPECT_EQ(rig.qs->duplicatesAbsorbed(), 1u);

    for (Cycle end = now + rig.os.wakeupCycles + 2; now < end; ++now)
        rig.qs->tick(now);
    EXPECT_TRUE(rig.acquired);
    EXPECT_EQ(rig.pcb.state, ThreadState::InCS);

    rig.recv(MsgType::WakeNotify, now); // straggler after entry
    EXPECT_EQ(rig.qs->duplicatesAbsorbed(), 2u);
    EXPECT_EQ(rig.countOfType(MsgType::LockRelease), 0u);
}

// Home-side: a stray LockRelease from a thread that does not hold the
// lock must not free it (mutual exclusion) — counted and dropped.
TEST(FailureInjection, StrayLockReleaseFromNonHolder)
{
    OsParams os;
    LockManager mgr(0, os, nullSend());
    Cycle now = 0;
    auto deliver = [&](MsgType t, ThreadId tid) {
        auto pkt = makePacket(t, tid, 0, 0x1000);
        pkt->thread = tid;
        mgr.handle(pkt, now);
        for (Cycle end = now + os.homeLatency + 2; now < end; ++now)
            mgr.tick(now);
    };
    deliver(MsgType::LockTry, 1);
    deliver(MsgType::LockRelease, 2); // liar / stale duplicate
    EXPECT_TRUE(mgr.heldNow(0x1000));
    EXPECT_EQ(mgr.holderOf(0x1000), 1u);
    EXPECT_EQ(mgr.stats().strayReleases, 1u);
}

// Home-side: a retransmitted LockTry from the thread that already won
// re-grants instead of queueing the holder behind itself.
TEST(FailureInjection, RetransmittedLockTryIdempotent)
{
    OsParams os;
    std::vector<PacketPtr> sent;
    LockManager mgr(0, os, [&](const PacketPtr &pkt, Cycle) {
        sent.push_back(pkt);
    });
    Cycle now = 0;
    auto deliver = [&](MsgType t, ThreadId tid) {
        auto pkt = makePacket(t, tid, 0, 0x1000);
        pkt->thread = tid;
        mgr.handle(pkt, now);
        for (Cycle end = now + os.homeLatency + 2; now < end; ++now)
            mgr.tick(now);
    };
    deliver(MsgType::LockTry, 1);
    deliver(MsgType::LockTry, 1); // retransmitted duplicate
    EXPECT_EQ(mgr.holderOf(0x1000), 1u);
    EXPECT_EQ(mgr.stats().duplicateTries, 1u);
    unsigned grants = 0, fails = 0;
    for (const auto &p : sent) {
        grants += p->type == MsgType::LockGrant ? 1 : 0;
        fails += p->type == MsgType::LockFail ? 1 : 0;
    }
    EXPECT_EQ(grants, 2u) << "duplicate try must be re-granted";
    EXPECT_EQ(fails, 0u);
    EXPECT_EQ(mgr.pollerCount(0x1000), 0u)
        << "the holder must not be queued as a poller behind itself";
}

// A LockTry (or its answer) lost in flight: the try watchdog re-issues
// it at its cadence until an answer arrives.
TEST(FailureInjection, LostLockTryRecoveredByTryWatchdog)
{
    QsRig rig;
    rig.os.tryWatchdogCycles = 2'000;
    rig.qs = std::make_unique<QSpinlock>(
        rig.pcb, rig.ocor, rig.os, rig.amap,
        [&rig](const PacketPtr &pkt, Cycle) {
            rig.sent.push_back(pkt);
        });
    rig.qs->acquire(0x1000, 0, [&](Cycle) { rig.acquired = true; });
    ASSERT_EQ(rig.countOfType(MsgType::LockTry), 1u);

    Cycle now = 0;
    for (; now < rig.os.tryWatchdogCycles + 2; ++now)
        rig.qs->tick(now);
    EXPECT_EQ(rig.countOfType(MsgType::LockTry), 2u)
        << "try watchdog must re-issue the lost LockTry";
    EXPECT_EQ(rig.qs->recoveries(), 1u);

    // The re-issued try wins (home re-grants idempotently even if the
    // original actually landed).
    rig.recv(MsgType::LockGrant, now);
    EXPECT_TRUE(rig.acquired);
    EXPECT_TRUE(rig.qs->holding());
}

// Lost-WakeNotify recovery end to end at the unit level: the sleep
// watchdog re-registers, the home re-wakes, the thread enters the CS.
TEST(FailureInjection, LostWakeNotifyRecoveredBySleepWatchdog)
{
    QsRig full;
    full.os.lockMode = LockMode::PureSleep; // park immediately
    full.os.sleepWatchdogCycles = 5'000;
    full.qs = std::make_unique<QSpinlock>(
        full.pcb, full.ocor, full.os, full.amap,
        [&full](const PacketPtr &pkt, Cycle) {
            full.sent.push_back(pkt);
        });
    full.qs->acquire(0x1000, 0, [&](Cycle) { full.acquired = true; });
    full.recv(MsgType::LockFail, 0); // budget is zero: sleep prep
    Cycle now = 0;
    for (Cycle end = full.os.sleepPrepCycles + 2; now < end; ++now)
        full.qs->tick(now);
    ASSERT_EQ(full.pcb.state, ThreadState::Sleeping);
    ASSERT_EQ(full.countOfType(MsgType::FutexWait), 1u);

    // The FutexWait (or its WakeNotify) is lost; nothing arrives.
    for (Cycle end = now + full.os.sleepWatchdogCycles + 2;
         now < end; ++now)
        full.qs->tick(now);
    EXPECT_EQ(full.countOfType(MsgType::FutexWait), 2u)
        << "sleep watchdog must re-register";
    EXPECT_GE(full.qs->recoveries(), 1u);

    // The re-registration reaches the home this time: it wakes the
    // thread, which enters the CS.
    full.recv(MsgType::WakeNotify, now);
    EXPECT_EQ(full.pcb.state, ThreadState::Waking);
    for (Cycle end = now + full.os.wakeupCycles + 2; now < end; ++now)
        full.qs->tick(now);
    EXPECT_TRUE(full.acquired);
    EXPECT_EQ(full.pcb.state, ThreadState::InCS);
}
