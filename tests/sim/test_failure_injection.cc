/**
 * @file
 * Failure injection: stray, stale and duplicate protocol messages
 * must be absorbed gracefully (counted, warned about, never
 * corrupting state). These are the races a real NoC produces under
 * reordering, so every handler needs a safe default path.
 */

#include <gtest/gtest.h>

#include <memory>

#include "mem/l2_directory.hh"
#include "os/lock_manager.hh"
#include "os/qspinlock.hh"

using namespace ocor;

namespace
{

SendFn
nullSend()
{
    return [](const PacketPtr &, Cycle) {};
}

} // namespace

TEST(FailureInjection, StaleInvAckIsCountedNotApplied)
{
    MeshShape mesh{4, 4};
    AddressMap amap(mesh, 128);
    MemParams params;
    L2Directory l2(0, amap, params, nullSend());

    auto ack = makePacket(MsgType::InvAck, 3, 0, 0x4000);
    ack->aux = 0x1234 << 8; // tag of a transaction that never was
    l2.handle(ack, 0);
    for (Cycle c = 0; c < params.l2Latency + 2; ++c)
        l2.tick(c);
    EXPECT_EQ(l2.stats().staleAcks, 1u);
    EXPECT_FALSE(l2.lineBusy(0x4000));
}

TEST(FailureInjection, StaleFetchRespIgnored)
{
    MeshShape mesh{4, 4};
    AddressMap amap(mesh, 128);
    MemParams params;
    L2Directory l2(0, amap, params, nullSend());

    auto resp = makePacket(MsgType::FetchResp, 3, 0, 0x4000);
    resp->aux = (7u << 8) | 1;
    l2.handle(resp, 0);
    for (Cycle c = 0; c < params.l2Latency + 2; ++c)
        l2.tick(c);
    EXPECT_EQ(l2.stats().staleAcks, 1u);
}

TEST(FailureInjection, StaleUnblockIgnored)
{
    MeshShape mesh{4, 4};
    AddressMap amap(mesh, 128);
    MemParams params;
    L2Directory l2(0, amap, params, nullSend());

    auto unb = makePacket(MsgType::Unblock, 3, 0, 0x4000);
    l2.handle(unb, 0);
    for (Cycle c = 0; c < params.l2Latency + 2; ++c)
        l2.tick(c);
    EXPECT_EQ(l2.stats().staleAcks, 1u);
    EXPECT_FALSE(l2.lineBusy(0x4000));
}

TEST(FailureInjection, PutFromNonOwnerIsHarmless)
{
    MeshShape mesh{4, 4};
    AddressMap amap(mesh, 128);
    MemParams params;
    L2Directory l2(0, amap, params, nullSend());

    auto put = makePacket(MsgType::PutE, 5, 0, 0x4000);
    l2.handle(put, 0);
    for (Cycle c = 0; c < params.l2Latency + 2; ++c)
        l2.tick(c);
    EXPECT_EQ(l2.ownerOf(0x4000), invalidNode);
}

TEST(FailureInjection, WakeForEmptyQueueIsNoOp)
{
    OsParams os;
    LockManager mgr(0, os, nullSend());
    auto wake = makePacket(MsgType::FutexWake, 1, 0, 0x1000);
    wake->thread = 1;
    mgr.handle(wake, 0);
    for (Cycle c = 0; c < os.homeLatency + 2; ++c)
        mgr.tick(c);
    EXPECT_FALSE(mgr.heldNow(0x1000));
    EXPECT_EQ(mgr.stats().wakes, 0u);
}

TEST(FailureInjection, DuplicateWakesGrantOnlyOnce)
{
    OsParams os;
    unsigned wake_notifies = 0;
    LockManager mgr(0, os, [&](const PacketPtr &pkt, Cycle) {
        if (pkt->type == MsgType::WakeNotify)
            ++wake_notifies;
    });
    auto deliver = [&](MsgType t, ThreadId tid) {
        auto pkt = makePacket(t, tid, 0, 0x1000);
        pkt->thread = tid;
        mgr.handle(pkt, 0);
        static Cycle now = 0;
        for (Cycle end = now + os.homeLatency + 2; now < end; ++now)
            mgr.tick(now);
    };
    deliver(MsgType::LockTry, 1);    // holder
    deliver(MsgType::FutexWait, 2);  // sleeper
    deliver(MsgType::LockRelease, 1);
    deliver(MsgType::FutexWake, 1);
    deliver(MsgType::FutexWake, 1);  // duplicate
    deliver(MsgType::FutexWake, 1);  // duplicate
    EXPECT_EQ(wake_notifies, 1u);
    EXPECT_EQ(mgr.holderOf(0x1000), 2u);
}

TEST(FailureInjection, StaleLockFailWarnsOnly)
{
    MeshShape mesh{2, 2};
    AddressMap amap(mesh, 128);
    OcorConfig ocor;
    OsParams os;
    Pcb pcb;
    pcb.tid = 0;
    pcb.node = 0;
    QSpinlock qs(pcb, ocor, os, amap, nullSend());
    auto fail = makePacket(MsgType::LockFail, 1, 0, 0x1000);
    fail->thread = 0;
    qs.handle(fail, 0); // no acquisition in progress
    EXPECT_FALSE(qs.waiting());
    EXPECT_FALSE(qs.holding());
}

TEST(FailureInjection, LateGrantDuringSleepPrepStillAccepted)
{
    // The futex re-check window: a grant that arrives after the
    // budget expired (thread in SleepPrep) must still take effect
    // and cancel the sleep.
    MeshShape mesh{2, 2};
    AddressMap amap(mesh, 128);
    OcorConfig ocor;
    OsParams os;
    Pcb pcb;
    pcb.tid = 0;
    pcb.node = 0;
    unsigned futex_waits = 0;
    QSpinlock qs(pcb, ocor, os, amap,
                 [&](const PacketPtr &pkt, Cycle) {
                     if (pkt->type == MsgType::FutexWait)
                         ++futex_waits;
                 });
    bool acquired = false;
    qs.acquire(0x1000, 0, [&](Cycle) { acquired = true; });

    // Fail immediately, then run to budget expiry (SleepPrep).
    auto fail = makePacket(MsgType::LockFail, 1, 0, 0x1000);
    fail->thread = 0;
    qs.handle(fail, 0);
    Cycle budget =
        static_cast<Cycle>(ocor.maxSpinCount) * os.retryInterval;
    Cycle now = 0;
    while (now < budget + 10 &&
           pcb.state != ThreadState::SleepPrep) {
        qs.tick(now);
        if (pcb.state == ThreadState::Spinning && qs.waiting()) {
            auto f = makePacket(MsgType::LockFail, 1, 0, 0x1000);
            f->thread = 0;
            qs.handle(f, now);
        }
        ++now;
    }
    ASSERT_EQ(pcb.state, ThreadState::SleepPrep);

    auto grant = makePacket(MsgType::LockGrant, 1, 0, 0x1000);
    grant->thread = 0;
    qs.handle(grant, now);
    EXPECT_TRUE(acquired);
    EXPECT_EQ(pcb.state, ThreadState::InCS);
    // The pending SleepPrep timer must not register a futex wait.
    for (Cycle end = now + os.sleepPrepCycles + 10; now < end; ++now)
        qs.tick(now);
    EXPECT_EQ(futex_waits, 0u);
}
