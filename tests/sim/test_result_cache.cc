/**
 * @file
 * Unit tests for the experiment result cache.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "sim/result_cache.hh"

using namespace ocor;

namespace
{

class ResultCacheTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = ::testing::TempDir() + "ocor_cache_test.tsv";
        std::remove(path_.c_str());
    }

    void
    TearDown() override
    {
        std::remove(path_.c_str());
    }

    RunMetrics
    sampleMetrics()
    {
        RunMetrics m;
        m.roiFinish = 12345;
        m.threads = 16;
        ThreadCounters c;
        c.computeCycles = 1000;
        c.csCycles = 200;
        c.blockedHeldCycles = 300;
        c.blockedIdleCycles = 400;
        c.acquisitions = 48;
        c.spinWins = 40;
        c.sleepWins = 8;
        c.retries = 99;
        c.sleeps = 8;
        m.perThread.push_back(c);
        m.packetsInjected = 777;
        m.flitsInjected = 3000;
        m.lockPacketsInjected = 111;
        m.avgPacketLatency = 31.5;
        m.avgLockPacketLatency = 20.25;
        m.avgDataPacketLatency = 40.75;
        m.p50PacketLatency = 28.0;
        m.p95PacketLatency = 55.5;
        m.p99PacketLatency = 80.125;
        m.p50LockHandover = 140.0;
        m.p95LockHandover = 300.0;
        m.p99LockHandover = 444.5;
        return m;
    }

    CacheKey
    sampleKey(bool ocor = false)
    {
        CacheKey k;
        k.benchmark = "testprog";
        k.threads = 16;
        k.ocorEnabled = ocor;
        k.iterations = 4;
        k.seed = 9;
        return k;
    }

    std::string path_;
};

} // namespace

TEST_F(ResultCacheTest, MissOnEmptyCache)
{
    ResultCache cache(path_);
    EXPECT_FALSE(cache.lookup(sampleKey()).has_value());
}

TEST_F(ResultCacheTest, StoreThenLookupRoundTrips)
{
    ResultCache cache(path_);
    RunMetrics m = sampleMetrics();
    cache.store(sampleKey(), m);
    auto hit = cache.lookup(sampleKey());
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->roiFinish, m.roiFinish);
    EXPECT_EQ(hit->threads, m.threads);
    EXPECT_EQ(hit->totalCoh(), m.totalCoh());
    EXPECT_EQ(hit->totalAcquisitions(), m.totalAcquisitions());
    EXPECT_EQ(hit->totalSpinWins(), m.totalSpinWins());
    EXPECT_EQ(hit->packetsInjected, m.packetsInjected);
    EXPECT_DOUBLE_EQ(hit->avgLockPacketLatency,
                     m.avgLockPacketLatency);
    EXPECT_DOUBLE_EQ(hit->p50PacketLatency, m.p50PacketLatency);
    EXPECT_DOUBLE_EQ(hit->p95PacketLatency, m.p95PacketLatency);
    EXPECT_DOUBLE_EQ(hit->p99PacketLatency, m.p99PacketLatency);
    EXPECT_DOUBLE_EQ(hit->p50LockHandover, m.p50LockHandover);
    EXPECT_DOUBLE_EQ(hit->p95LockHandover, m.p95LockHandover);
    EXPECT_DOUBLE_EQ(hit->p99LockHandover, m.p99LockHandover);
    // Derived percentages survive the round trip.
    EXPECT_NEAR(hit->cohPct(), m.cohPct(), 1e-9);
    EXPECT_NEAR(hit->spinWinPct(), m.spinWinPct(), 1e-9);
}

TEST_F(ResultCacheTest, PrePercentileSchemaLinesAreMisses)
{
    // Grow the on-disk schema, don't break on old files: a cache line
    // written before the percentile columns existed fails to parse
    // and is treated as a miss (the run is redone, not corrupted).
    {
        ResultCache cache(path_);
        cache.store(sampleKey(), sampleMetrics());
        cache.flush();
    }
    // Fake a legacy (headerless, CRC-less) file whose row predates
    // the percentile columns: strip the v2 header, the CRC stamp and
    // the last 6 columns.
    std::ifstream in(path_);
    std::string header, line;
    ASSERT_TRUE(std::getline(in, header));
    ASSERT_EQ(header, std::string(ResultCache::headerLine()));
    ASSERT_TRUE(std::getline(in, line));
    in.close();
    line.erase(0, line.find('\t') + 1); // CRC stamp
    for (int i = 0; i < 6; ++i)
        line.erase(line.find_last_of('\t'));
    std::ofstream out(path_, std::ios::trunc);
    out << line << '\n';
    out.close();

    ResultCache reopened(path_);
    EXPECT_FALSE(reopened.lookup(sampleKey()).has_value());
}

TEST_F(ResultCacheTest, KeysAreDiscriminating)
{
    ResultCache cache(path_);
    cache.store(sampleKey(false), sampleMetrics());
    EXPECT_FALSE(cache.lookup(sampleKey(true)).has_value());

    CacheKey other = sampleKey(false);
    other.threads = 32;
    EXPECT_FALSE(cache.lookup(other).has_value());
    other = sampleKey(false);
    other.seed = 10;
    EXPECT_FALSE(cache.lookup(other).has_value());
    other = sampleKey(false);
    other.rtrLevels = 4;
    EXPECT_FALSE(cache.lookup(other).has_value());
    other = sampleKey(false);
    other.ruleMask = 0x7;
    EXPECT_FALSE(cache.lookup(other).has_value());
}

TEST_F(ResultCacheTest, BenchmarkPrefixesDoNotCollide)
{
    // "can" must not match a line stored for "canneal"-like names.
    ResultCache cache(path_);
    CacheKey a = sampleKey();
    a.benchmark = "can";
    CacheKey b = sampleKey();
    b.benchmark = "canx";
    RunMetrics m = sampleMetrics();
    m.roiFinish = 1;
    cache.store(b, m);
    EXPECT_FALSE(cache.lookup(a).has_value());
}

TEST_F(ResultCacheTest, MultipleEntriesCoexist)
{
    ResultCache cache(path_);
    for (unsigned t : {4u, 16u, 32u, 64u}) {
        CacheKey k = sampleKey();
        k.threads = t;
        RunMetrics m = sampleMetrics();
        m.roiFinish = t * 100;
        cache.store(k, m);
    }
    for (unsigned t : {4u, 16u, 32u, 64u}) {
        CacheKey k = sampleKey();
        k.threads = t;
        auto hit = cache.lookup(k);
        ASSERT_TRUE(hit.has_value());
        EXPECT_EQ(hit->roiFinish, t * 100);
    }
}

TEST_F(ResultCacheTest, ConcurrentGetSimulatesEachKeyOnce)
{
    // 8 threads all hammer the same 4 configurations (2 profiles x
    // {base, OCOR}); in-flight dedup must collapse the 32 calls to
    // exactly 4 simulations, and every caller must see the result.
    ResultCache cache(path_);
    const std::vector<BenchmarkProfile> profiles = {
        profileByName("imag"), profileByName("ferret")};
    ExperimentConfig exp;
    exp.threads = 4;
    exp.iterationsOverride = 2;
    exp.seed = 3;

    const unsigned kHammerThreads = 8;
    std::vector<std::thread> threads;
    for (unsigned i = 0; i < kHammerThreads; ++i) {
        threads.emplace_back([&] {
            for (const auto &p : profiles) {
                for (bool ocor : {false, true}) {
                    RunMetrics m = cache.get(p, exp, ocor);
                    EXPECT_GT(m.roiFinish, 0u);
                    EXPECT_EQ(m.threads, 4u);
                }
            }
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(cache.simulationsRun(), 4u);

    cache.flush();
    // The journal must hold exactly one uncorrupted row per key
    // (plus the format header).
    std::ifstream in(path_);
    ASSERT_TRUE(in.is_open());
    std::string line;
    unsigned header = 0, rows = 0;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        if (line[0] == '#')
            ++header;
        else
            ++rows;
    }
    EXPECT_EQ(header, 1u);
    EXPECT_EQ(rows, 4u);
    ResultCache fresh(path_);
    for (const auto &p : profiles) {
        for (bool ocor : {false, true}) {
            auto hit = fresh.lookup(makeCacheKey(p, exp, ocor));
            ASSERT_TRUE(hit.has_value())
                << p.name << (ocor ? " ocor" : " base");
            EXPECT_GT(hit->roiFinish, 0u);
        }
    }
}

TEST_F(ResultCacheTest, GetMemoizesAcrossInstances)
{
    ExperimentConfig exp;
    exp.threads = 4;
    exp.iterationsOverride = 2;
    exp.seed = 7;
    BenchmarkProfile p = profileByName("can");
    RunMetrics first;
    {
        ResultCache cache(path_);
        first = cache.get(p, exp, true);
        EXPECT_EQ(cache.simulationsRun(), 1u);
    } // destructor flushes the batched row
    ResultCache cache2(path_);
    RunMetrics again = cache2.get(p, exp, true);
    EXPECT_EQ(cache2.simulationsRun(), 0u); // pure disk hit
    EXPECT_EQ(again.roiFinish, first.roiFinish);
    EXPECT_EQ(again.totalCoh(), first.totalCoh());
}

TEST_F(ResultCacheTest, MakeCacheKeyCapturesOcorOverride)
{
    BenchmarkProfile profile;
    profile.name = "p";
    ExperimentConfig exp;
    exp.ocorOverrideSet = true;
    exp.ocorOverride.numRtrLevels = 16;
    exp.ocorOverride.ruleWakeupLast = false;
    CacheKey k = makeCacheKey(profile, exp, true);
    EXPECT_EQ(k.rtrLevels, 16u);
    EXPECT_EQ(k.ruleMask & 8u, 0u);
    EXPECT_TRUE(k.ocorEnabled);
}
