/**
 * @file
 * Event-driven core equivalence tests (DESIGN.md §13).
 *
 * The event core exists purely for wall-clock speed: under exact
 * fidelity it must be *bit-identical* to the legacy unconditional
 * per-cycle loop. These tests enforce that promise field-by-field
 * over randomized configurations (mesh size, thread count, OCOR
 * on/off, background traffic, fault seeds), byte-for-byte on trace
 * exports, and with every protocol checker armed. A final group
 * smoke-tests the hybrid fast path, which is approximate by design
 * and only held to loose bounds.
 */

#include <gtest/gtest.h>

#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "common/trace.hh"
#include "sim/simulator.hh"

using namespace ocor;

namespace
{

std::vector<Program>
contendedPrograms(unsigned n, unsigned iters)
{
    std::vector<Program> out;
    for (unsigned t = 0; t < n; ++t) {
        ProgramBuilder b;
        for (unsigned i = 0; i < iters; ++i)
            b.compute(100 + 37 * t).lock(0).compute(50).unlock(0);
        out.push_back(b.build());
    }
    return out;
}

RunMetrics
runWith(const SystemConfig &cfg, const BgTrafficConfig &bg,
        SimCoreMode core, unsigned iters = 3)
{
    SimOptions opts;
    opts.core = core;
    Simulator sim(cfg, contendedPrograms(cfg.numThreads, iters), bg,
                  opts);
    return sim.run();
}

/**
 * Assert two RunMetrics are field-exact: every integer counter equal,
 * every derived double bit-equal (both sides compute them from
 * identical integer state, so == is the right comparison — any drift
 * means the simulations diverged).
 */
void
expectFieldExact(const RunMetrics &a, const RunMetrics &b)
{
    EXPECT_EQ(a.roiFinish, b.roiFinish);
    EXPECT_EQ(a.threads, b.threads);
    ASSERT_EQ(a.perThread.size(), b.perThread.size());
    for (std::size_t t = 0; t < a.perThread.size(); ++t) {
        const ThreadCounters &x = a.perThread[t];
        const ThreadCounters &y = b.perThread[t];
        EXPECT_EQ(x.computeCycles, y.computeCycles) << "thread " << t;
        EXPECT_EQ(x.csCycles, y.csCycles) << "thread " << t;
        EXPECT_EQ(x.blockedHeldCycles, y.blockedHeldCycles)
            << "thread " << t;
        EXPECT_EQ(x.blockedIdleCycles, y.blockedIdleCycles)
            << "thread " << t;
        EXPECT_EQ(x.acquisitions, y.acquisitions) << "thread " << t;
        EXPECT_EQ(x.spinWins, y.spinWins) << "thread " << t;
        EXPECT_EQ(x.sleepWins, y.sleepWins) << "thread " << t;
        EXPECT_EQ(x.retries, y.retries) << "thread " << t;
        EXPECT_EQ(x.sleeps, y.sleeps) << "thread " << t;
    }
    EXPECT_EQ(a.packetsInjected, b.packetsInjected);
    EXPECT_EQ(a.flitsInjected, b.flitsInjected);
    EXPECT_EQ(a.lockPacketsInjected, b.lockPacketsInjected);
    EXPECT_EQ(a.fastpathPackets, b.fastpathPackets);
    EXPECT_EQ(a.avgPacketLatency, b.avgPacketLatency);
    EXPECT_EQ(a.avgLockPacketLatency, b.avgLockPacketLatency);
    EXPECT_EQ(a.avgDataPacketLatency, b.avgDataPacketLatency);
    EXPECT_EQ(a.p50PacketLatency, b.p50PacketLatency);
    EXPECT_EQ(a.p95PacketLatency, b.p95PacketLatency);
    EXPECT_EQ(a.p99PacketLatency, b.p99PacketLatency);
    EXPECT_EQ(a.p50LockHandover, b.p50LockHandover);
    EXPECT_EQ(a.p95LockHandover, b.p95LockHandover);
    EXPECT_EQ(a.p99LockHandover, b.p99LockHandover);
    EXPECT_EQ(a.faultsInjected, b.faultsInjected);
    EXPECT_EQ(a.flitsDropped, b.flitsDropped);
    EXPECT_EQ(a.flitsCorrupted, b.flitsCorrupted);
    EXPECT_EQ(a.crcRejects, b.crcRejects);
    EXPECT_EQ(a.retransmissions, b.retransmissions);
    EXPECT_EQ(a.duplicatesDropped, b.duplicatesDropped);
    EXPECT_EQ(a.watchdogRecoveries, b.watchdogRecoveries);
    EXPECT_EQ(a.unrecoverable, b.unrecoverable);
    EXPECT_EQ(a.hangDetected, b.hangDetected);
    EXPECT_EQ(a.cancelled, b.cancelled);
}

} // namespace

TEST(EventCore, BitIdenticalOnContendedWorkload)
{
    SystemConfig cfg;
    cfg.mesh = MeshShape{2, 2};
    cfg.numThreads = 4;
    cfg.maxCycles = 2'000'000;
    RunMetrics legacy = runWith(cfg, {}, SimCoreMode::Legacy);
    RunMetrics event = runWith(cfg, {}, SimCoreMode::Event);
    expectFieldExact(legacy, event);
}

TEST(EventCore, BitIdenticalWithBackgroundTraffic)
{
    SystemConfig cfg;
    cfg.mesh = MeshShape{2, 2};
    cfg.numThreads = 4;
    cfg.maxCycles = 2'000'000;
    cfg.seed = 9;
    BgTrafficConfig bg;
    bg.rate = 0.05;
    RunMetrics legacy = runWith(cfg, bg, SimCoreMode::Legacy);
    RunMetrics event = runWith(cfg, bg, SimCoreMode::Event);
    expectFieldExact(legacy, event);
    EXPECT_EQ(event.fastpathPackets, 0u);
}

TEST(EventCore, FuzzBitIdenticalAcrossConfigs)
{
    // Randomized sweep: the config space the two cores must agree on
    // everywhere, not just on hand-picked workloads. Fixed RNG seed
    // keeps the sweep reproducible; any failure names its config.
    std::mt19937_64 rng(0xC0FFEE);
    for (int i = 0; i < 8; ++i) {
        SystemConfig cfg;
        cfg.numThreads = (rng() % 2 == 0) ? 4 : 16;
        cfg.mesh = SystemConfig::meshFor(cfg.numThreads);
        cfg.maxCycles = 4'000'000;
        cfg.seed = 1 + rng() % 1000;
        cfg.ocor.enabled = rng() % 2 == 0;
        BgTrafficConfig bg;
        bg.rate = (rng() % 2 == 0) ? 0.0 : 0.02;
        if (rng() % 2 == 0) {
            cfg.fault.dropRate = 0.0005;
            cfg.fault.corruptRate = 0.0005;
            cfg.fault.seed = rng() % 100;
        }
        unsigned iters = 2 + rng() % 2;
        SCOPED_TRACE("config " + std::to_string(i) + ": threads="
                     + std::to_string(cfg.numThreads) + " seed="
                     + std::to_string(cfg.seed) + " ocor="
                     + std::to_string(cfg.ocor.enabled) + " bg="
                     + std::to_string(bg.rate) + " drop="
                     + std::to_string(cfg.fault.dropRate) + " iters="
                     + std::to_string(iters));
        RunMetrics legacy =
            runWith(cfg, bg, SimCoreMode::Legacy, iters);
        RunMetrics event =
            runWith(cfg, bg, SimCoreMode::Event, iters);
        expectFieldExact(legacy, event);
    }
}

TEST(EventCore, TraceExportByteIdentical)
{
    // The Chrome-JSON export includes per-event timestamps from every
    // traced component; byte equality means not one flit moved on a
    // different cycle in event mode.
    SystemConfig cfg;
    cfg.mesh = MeshShape{2, 2};
    cfg.numThreads = 4;
    cfg.maxCycles = 2'000'000;
    cfg.trace.categories = parseTraceCats("all");
    BgTrafficConfig bg;
    bg.rate = 0.02;

    auto traceOf = [&](SimCoreMode core) {
        SimOptions opts;
        opts.core = core;
        Simulator sim(cfg, contendedPrograms(4, 3), bg, opts);
        sim.run();
        std::ostringstream os;
        sim.system().tracer()->exportChromeJson(os);
        return os.str();
    };
    std::string legacy = traceOf(SimCoreMode::Legacy);
    std::string event = traceOf(SimCoreMode::Event);
    ASSERT_FALSE(legacy.empty());
    EXPECT_EQ(legacy, event);
}

TEST(EventCore, CheckersPassAndMetricsMatchWhenArmed)
{
    // With every protocol checker armed the event loop may not skip
    // any cycle (checkers observe per-cycle state); the run must
    // still complete, violate nothing (checkers panic on violation)
    // and agree with an armed legacy run.
    SystemConfig cfg;
    cfg.mesh = MeshShape{2, 2};
    cfg.numThreads = 4;
    cfg.maxCycles = 2'000'000;
    cfg.check.checks = allChecksMask();
    BgTrafficConfig bg;
    bg.rate = 0.02;
    RunMetrics legacy = runWith(cfg, bg, SimCoreMode::Legacy);
    RunMetrics event = runWith(cfg, bg, SimCoreMode::Event);
    expectFieldExact(legacy, event);
}

TEST(EventCore, ResolvedModeDefaultsToEvent)
{
    SystemConfig cfg;
    cfg.mesh = MeshShape{2, 2};
    cfg.numThreads = 4;
    Simulator sim(cfg, contendedPrograms(4, 1), {});
    // Auto resolves through the process default (Event unless the
    // environment overrides); the tests run without OCOR_SIM_CORE so
    // assert only that Auto resolved to *something* concrete.
    EXPECT_NE(sim.resolvedCoreMode(), SimCoreMode::Auto);
}

// ---- hybrid fidelity (approximate by design) --------------------------

TEST(HybridFidelity, SmokeCompletesAndUsesFastpath)
{
    SystemConfig cfg;
    cfg.mesh = MeshShape{2, 2};
    cfg.numThreads = 4;
    cfg.maxCycles = 4'000'000;
    BgTrafficConfig bg;
    bg.rate = 0.05;

    RunMetrics exact = runWith(cfg, bg, SimCoreMode::Event, 4);
    cfg.fidelity = Fidelity::Hybrid;
    RunMetrics hybrid = runWith(cfg, bg, SimCoreMode::Event, 4);

    // Functional results are exact regardless of fidelity: every
    // lock is acquired the same number of times and all work retires.
    EXPECT_FALSE(hybrid.hangDetected);
    EXPECT_LT(hybrid.roiFinish, cfg.maxCycles);
    EXPECT_EQ(hybrid.totalAcquisitions(), exact.totalAcquisitions());

    // The analytic path actually carried traffic...
    EXPECT_GT(hybrid.fastpathPackets, 0u);
    // ...and the timing approximation stays within loose bounds on
    // this small, lightly loaded config (the tight accuracy
    // quantification lives in the Table 3 harness, not here).
    double roiErr =
        std::abs(static_cast<double>(hybrid.roiFinish)
                 - static_cast<double>(exact.roiFinish))
        / static_cast<double>(exact.roiFinish);
    EXPECT_LT(roiErr, 0.20);
    double csErr = std::abs(static_cast<double>(hybrid.totalCs())
                            - static_cast<double>(exact.totalCs()))
                   / static_cast<double>(exact.totalCs());
    EXPECT_LT(csErr, 0.10);
}

TEST(HybridFidelity, LockTrafficNeverTakesFastpath)
{
    // Run with *only* lock-driven traffic (no background): every
    // window-open send is still preceded by lock protocol activity,
    // but lock packets themselves must always ride the exact mesh.
    SystemConfig cfg;
    cfg.mesh = MeshShape{2, 2};
    cfg.numThreads = 4;
    cfg.maxCycles = 4'000'000;
    cfg.fidelity = Fidelity::Hybrid;
    RunMetrics m = runWith(cfg, {}, SimCoreMode::Event, 3);
    EXPECT_FALSE(m.hangDetected);
    // Lock packets are injected into the mesh, never fastpathed, so
    // the mesh lock counter equals a pure-exact run's.
    cfg.fidelity = Fidelity::Exact;
    RunMetrics exact = runWith(cfg, {}, SimCoreMode::Event, 3);
    EXPECT_EQ(m.lockPacketsInjected, exact.lockPacketsInjected);
    EXPECT_EQ(m.totalAcquisitions(), exact.totalAcquisitions());
}

TEST(HybridFidelity, RejectsFaultInjectionAndChecking)
{
    // Hybrid bypasses per-flit transport; fault injection and
    // invariant checking reason about exactly that, so validate()
    // must refuse the combination instead of silently mis-modeling.
    SystemConfig cfg;
    cfg.fidelity = Fidelity::Hybrid;
    cfg.fault.dropRate = 0.01;
    EXPECT_DEATH(cfg.validate(), "");

    SystemConfig cfg2;
    cfg2.fidelity = Fidelity::Hybrid;
    cfg2.check.checks = allChecksMask();
    EXPECT_DEATH(cfg2.validate(), "");
}
