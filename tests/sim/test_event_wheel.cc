/**
 * @file
 * Tests for the calendar-queue EventWheel: deterministic (cycle,
 * rank, seq) pop order, same-cycle re-scheduling, overflow-pool
 * migration and past-cycle registration semantics — the properties
 * the event core's bit-identity to the legacy loop rests on.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "sim/event_wheel.hh"

using namespace ocor;

TEST(EventWheel, StartsEmpty)
{
    EventWheel w;
    EXPECT_TRUE(w.empty());
    EXPECT_EQ(w.size(), 0u);
    EXPECT_EQ(w.nextCycle(), neverCycle);
    EXPECT_EQ(w.scheduled(), 0u);
}

TEST(EventWheel, PopsInCycleOrder)
{
    EventWheel w;
    w.schedule(30, 0, 3);
    w.schedule(10, 0, 1);
    w.schedule(20, 0, 2);
    ASSERT_EQ(w.size(), 3u);
    EXPECT_EQ(w.nextCycle(), 10u);
    EXPECT_EQ(w.pop().payload, 1u);
    EXPECT_EQ(w.nextCycle(), 20u);
    EXPECT_EQ(w.pop().payload, 2u);
    EXPECT_EQ(w.pop().payload, 3u);
    EXPECT_TRUE(w.empty());
}

TEST(EventWheel, SameCycleTieBreaksByRankThenSeq)
{
    EventWheel w;
    // Same cycle, ranks out of order; within rank 2, insertion order
    // must be preserved.
    w.schedule(5, 2, 20);
    w.schedule(5, 0, 0);
    w.schedule(5, 2, 21);
    w.schedule(5, 1, 10);
    EXPECT_EQ(w.pop().payload, 0u);
    EXPECT_EQ(w.pop().payload, 10u);
    EXPECT_EQ(w.pop().payload, 20u);
    EXPECT_EQ(w.pop().payload, 21u);
}

TEST(EventWheel, SeqReturnedBySchedule)
{
    EventWheel w;
    EXPECT_EQ(w.schedule(1, 0), 0u);
    EXPECT_EQ(w.schedule(1, 0), 1u);
    EXPECT_EQ(w.schedule(9, 0), 2u);
    EXPECT_EQ(w.scheduled(), 3u);
    // scheduled() counts pushes, not occupancy.
    (void)w.pop();
    EXPECT_EQ(w.scheduled(), 3u);
}

TEST(EventWheel, SameCycleRescheduleDuringProcessing)
{
    // A component processing cycle c may schedule another wakeup at
    // c (e.g. a router that moved a flit and must arbitrate again).
    // The new event must come back before the wheel advances past c.
    EventWheel w;
    w.schedule(7, 0, 1);
    w.schedule(8, 0, 99);
    WheelEvent e = w.pop();
    ASSERT_EQ(e.cycle, 7u);
    w.schedule(7, 1, 2); // re-arm while "processing" cycle 7
    e = w.pop();
    EXPECT_EQ(e.cycle, 7u);
    EXPECT_EQ(e.payload, 2u);
    e = w.pop();
    EXPECT_EQ(e.cycle, 8u);
    EXPECT_EQ(e.payload, 99u);
}

TEST(EventWheel, PastCycleScheduleReturnsImmediatelyInTrueOrder)
{
    EventWheel w;
    w.schedule(100, 0, 1);
    ASSERT_EQ(w.pop().cycle, 100u);
    // Time has moved past 100; registrations behind the window base
    // are accepted and pop right away, still ordered by true cycle.
    w.schedule(50, 0, 2);
    w.schedule(60, 0, 3);
    w.schedule(101, 0, 4);
    EXPECT_LE(w.nextCycle(), 60u);
    EXPECT_EQ(w.pop().payload, 2u);
    EXPECT_EQ(w.pop().payload, 3u);
    EXPECT_EQ(w.pop().payload, 4u);
}

TEST(EventWheel, OverflowMigratesIntoRing)
{
    // Defaults cover 64 * 64 = 4096 cycles; anything beyond lands in
    // the overflow pool and must migrate back as the window slides.
    EventWheel w;
    w.schedule(10, 0, 1);
    w.schedule(5'000, 0, 2);   // just past the window
    w.schedule(100'000, 0, 3); // far past
    w.schedule(4'095, 0, 4);   // last in-window cycle
    EXPECT_EQ(w.pop().payload, 1u);
    EXPECT_EQ(w.pop().payload, 4u);
    EXPECT_EQ(w.nextCycle(), 5'000u);
    EXPECT_EQ(w.pop().payload, 2u);
    WheelEvent e = w.pop();
    EXPECT_EQ(e.payload, 3u);
    EXPECT_EQ(e.cycle, 100'000u);
    EXPECT_TRUE(w.empty());
}

TEST(EventWheel, OverflowPreservesTieBreakOrder)
{
    // Two same-cycle events far beyond the horizon: rank then seq
    // must survive the overflow round-trip.
    EventWheel w;
    w.schedule(50'000, 3, 30);
    w.schedule(50'000, 1, 10);
    w.schedule(50'000, 3, 31);
    EXPECT_EQ(w.pop().payload, 10u);
    EXPECT_EQ(w.pop().payload, 30u);
    EXPECT_EQ(w.pop().payload, 31u);
}

TEST(EventWheel, PopWhenEmptyPanics)
{
    EventWheel w;
    EXPECT_DEATH((void)w.pop(), "");
}

TEST(EventWheel, RandomizedDrainMatchesReferenceSort)
{
    // Fuzz the wheel against a stable sort on (cycle, rank, seq):
    // interleaved schedule/pop with in-window, overflow and
    // past-cycle registrations must drain in exactly reference order.
    std::mt19937_64 rng(42);
    EventWheel w;
    std::vector<WheelEvent> reference;
    std::uint64_t payload = 0;
    Cycle now = 0;
    for (int round = 0; round < 2'000; ++round) {
        if (!w.empty() && rng() % 3 == 0) {
            WheelEvent e = w.pop();
            now = std::max(now, e.cycle);
            ASSERT_FALSE(reference.empty());
            std::sort(reference.begin(), reference.end(),
                      wheelEventBefore);
            EXPECT_EQ(e.payload, reference.front().payload)
                << "round " << round;
            reference.erase(reference.begin());
        } else {
            // Mostly near-future, sometimes overflow-far, sometimes
            // behind the current pop frontier.
            Cycle c;
            switch (rng() % 8) {
            case 0:
                c = now + rng() % 100'000; // overflow territory
                break;
            case 1:
                c = now > 50 ? now - rng() % 50 : now; // past
                break;
            default:
                c = now + rng() % 200;
                break;
            }
            auto rank = static_cast<std::uint32_t>(rng() % 7);
            std::uint64_t seq = w.schedule(c, rank, payload);
            reference.push_back({c, rank, seq, payload});
            ++payload;
        }
    }
    std::sort(reference.begin(), reference.end(), wheelEventBefore);
    for (const auto &want : reference) {
        ASSERT_FALSE(w.empty());
        EXPECT_EQ(w.pop().payload, want.payload);
    }
    EXPECT_TRUE(w.empty());
}
