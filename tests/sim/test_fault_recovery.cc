/**
 * @file
 * End-to-end fault tolerance: zero-overhead gating (faults off is
 * bit-identical), reproducibility of faulty runs, full recovery of a
 * contended-lock workload under drops and corruption, and the
 * forward-progress watchdog failing fast on an unrecoverable hang.
 */

#include <gtest/gtest.h>

#include "sim/simulator.hh"

using namespace ocor;

namespace
{

SystemConfig
smallConfig()
{
    SystemConfig cfg;
    cfg.mesh = MeshShape{2, 2};
    cfg.numThreads = 4;
    cfg.maxCycles = 2'000'000;
    return cfg;
}

std::vector<Program>
contendedPrograms(unsigned n, unsigned iters = 3)
{
    std::vector<Program> out;
    for (unsigned t = 0; t < n; ++t) {
        ProgramBuilder b;
        for (unsigned i = 0; i < iters; ++i)
            b.compute(100 + 37 * t).lock(0).compute(50).unlock(0);
        out.push_back(b.build());
    }
    return out;
}

void
expectSameMetrics(const RunMetrics &a, const RunMetrics &b)
{
    EXPECT_EQ(a.roiFinish, b.roiFinish);
    EXPECT_EQ(a.threads, b.threads);
    EXPECT_EQ(a.packetsInjected, b.packetsInjected);
    EXPECT_EQ(a.flitsInjected, b.flitsInjected);
    EXPECT_EQ(a.lockPacketsInjected, b.lockPacketsInjected);
    EXPECT_EQ(a.avgPacketLatency, b.avgPacketLatency);
    EXPECT_EQ(a.avgLockPacketLatency, b.avgLockPacketLatency);
    EXPECT_EQ(a.avgDataPacketLatency, b.avgDataPacketLatency);
    EXPECT_EQ(a.faultsInjected, b.faultsInjected);
    EXPECT_EQ(a.flitsDropped, b.flitsDropped);
    EXPECT_EQ(a.flitsCorrupted, b.flitsCorrupted);
    EXPECT_EQ(a.crcRejects, b.crcRejects);
    EXPECT_EQ(a.retransmissions, b.retransmissions);
    EXPECT_EQ(a.duplicatesDropped, b.duplicatesDropped);
    EXPECT_EQ(a.watchdogRecoveries, b.watchdogRecoveries);
    EXPECT_EQ(a.unrecoverable, b.unrecoverable);
    EXPECT_EQ(a.hangDetected, b.hangDetected);
    ASSERT_EQ(a.perThread.size(), b.perThread.size());
    for (std::size_t t = 0; t < a.perThread.size(); ++t) {
        const ThreadCounters &x = a.perThread[t];
        const ThreadCounters &y = b.perThread[t];
        EXPECT_EQ(x.computeCycles, y.computeCycles) << "t" << t;
        EXPECT_EQ(x.csCycles, y.csCycles) << "t" << t;
        EXPECT_EQ(x.blockedHeldCycles, y.blockedHeldCycles) << "t" << t;
        EXPECT_EQ(x.blockedIdleCycles, y.blockedIdleCycles) << "t" << t;
        EXPECT_EQ(x.acquisitions, y.acquisitions) << "t" << t;
        EXPECT_EQ(x.spinWins, y.spinWins) << "t" << t;
        EXPECT_EQ(x.sleepWins, y.sleepWins) << "t" << t;
        EXPECT_EQ(x.retries, y.retries) << "t" << t;
        EXPECT_EQ(x.sleeps, y.sleeps) << "t" << t;
    }
}

/** Fault model every run in this file recovers from. */
FaultConfig
recoverableFaults()
{
    FaultConfig f;
    f.dropRate = 0.08;
    f.corruptRate = 0.05;
    f.lockOnly = true;
    f.retryTimeout = 500;
    f.maxRetries = 10;
    f.seed = 3;
    return f;
}

} // namespace

// With every fault rate at zero the whole subsystem must be dead
// code: a run with disabled fault/watchdog knobs dialed to arbitrary
// values is bit-identical to the default configuration.
TEST(FaultRecovery, FaultsOffIsBitIdentical)
{
    auto cfg = smallConfig();
    Simulator base(cfg, contendedPrograms(4), BgTrafficConfig{});
    RunMetrics mb = base.run();

    auto cfg2 = smallConfig();
    cfg2.fault.retryTimeout = 77;     // inert: all rates are zero
    cfg2.fault.maxRetries = 3;
    cfg2.fault.lockOnly = true;
    cfg2.fault.seed = 999;
    cfg2.progressWindow = 500'000;    // never fires in a healthy run
    Simulator tweaked(cfg2, contendedPrograms(4), BgTrafficConfig{});
    RunMetrics mt = tweaked.run();

    expectSameMetrics(mb, mt);
    EXPECT_EQ(mt.faultsInjected, 0u);
    EXPECT_EQ(mt.watchdogRecoveries, 0u);
    EXPECT_FALSE(mt.hangDetected);
    EXPECT_EQ(tweaked.system().faultInjector(), nullptr);
}

TEST(FaultRecovery, FaultyRunsAreReproducible)
{
    auto cfg = smallConfig();
    cfg.seed = 11;
    cfg.fault = recoverableFaults();
    cfg.os.tryWatchdogCycles = 150'000;
    cfg.os.sleepWatchdogCycles = 150'000;

    Simulator a(cfg, contendedPrograms(4, 4), BgTrafficConfig{});
    Simulator b(cfg, contendedPrograms(4, 4), BgTrafficConfig{});
    RunMetrics ma = a.run();
    RunMetrics mc = b.run();
    expectSameMetrics(ma, mc);
    EXPECT_GT(ma.faultsInjected, 0u);

    // A different fault seed must actually change the run.
    auto cfg2 = cfg;
    cfg2.fault.seed = 4;
    Simulator c(cfg2, contendedPrograms(4, 4), BgTrafficConfig{});
    RunMetrics md = c.run();
    EXPECT_NE(ma.faultsInjected, md.faultsInjected);
}

// The headline scenario: a contended-lock workload under packet drops
// and flit corruption on the lock protocol completes every critical
// section, with losses healed by NI retransmission (and the OS
// watchdogs as backstop), and no lineage abandoned.
TEST(FaultRecovery, ContendedWorkloadRecoversFully)
{
    auto cfg = smallConfig();
    cfg.fault = recoverableFaults();
    cfg.os.tryWatchdogCycles = 150'000;
    cfg.os.sleepWatchdogCycles = 150'000;

    const unsigned iters = 5;
    Simulator sim(cfg, contendedPrograms(4, iters), BgTrafficConfig{});
    RunMetrics m = sim.run();

    EXPECT_FALSE(m.hangDetected);
    EXPECT_LT(m.roiFinish, cfg.maxCycles);
    EXPECT_EQ(m.totalAcquisitions(), 4u * iters);
    EXPECT_GT(m.faultsInjected, 0u);
    EXPECT_GT(m.retransmissions, 0u);
    EXPECT_EQ(m.unrecoverable, 0u);
    EXPECT_TRUE(sim.hangDiagnosis().empty());
}

// With recovery disabled and heavy loss the run wedges; the
// forward-progress watchdog must fail fast with diagnostics instead
// of burning maxCycles.
TEST(FaultRecovery, ProgressWatchdogFailsFastOnHang)
{
    auto cfg = smallConfig();
    cfg.fault.dropRate = 0.45;
    cfg.fault.lockOnly = true;
    cfg.fault.retransmit = false; // no NI recovery
    cfg.fault.seed = 1;
    cfg.progressWindow = 30'000;  // os watchdogs stay off (default 0)

    Simulator sim(cfg, contendedPrograms(4, 5), BgTrafficConfig{});
    RunMetrics m = sim.run();

    EXPECT_TRUE(m.hangDetected);
    EXPECT_LT(m.roiFinish, cfg.maxCycles) << "must fail fast";
    EXPECT_LT(m.totalAcquisitions(), 4u * 5u);
    EXPECT_EQ(m.retransmissions, 0u);
    // The diagnosis names every thread and its lock state.
    const std::string &d = sim.hangDiagnosis();
    ASSERT_FALSE(d.empty());
    EXPECT_NE(d.find("t0:"), std::string::npos);
    EXPECT_NE(d.find("t3:"), std::string::npos);
    EXPECT_NE(d.find("lock=0x"), std::string::npos);
}

// OS-layer watchdogs as the primary healer: NI retransmission is
// dialed so slow it barely participates, so lost LockTry / WakeNotify
// messages are recovered by the protocol watchdogs re-issuing them
// (the slow retransmit still backstops losses the OS layer cannot
// see, like a dropped LockRelease).
TEST(FaultRecovery, OsWatchdogsHealLostLockMessages)
{
    auto cfg = smallConfig();
    cfg.fault.dropRate = 0.3;
    cfg.fault.lockOnly = true;
    cfg.fault.retryTimeout = 20'000; // watchdogs fire far earlier
    cfg.fault.maxRetries = 10;
    cfg.fault.seed = 1;
    cfg.os.tryWatchdogCycles = 4'000;
    cfg.os.sleepWatchdogCycles = 8'000;
    cfg.maxCycles = 10'000'000;

    const unsigned iters = 5;
    Simulator sim(cfg, contendedPrograms(4, iters), BgTrafficConfig{});
    RunMetrics m = sim.run();

    EXPECT_FALSE(m.hangDetected);
    EXPECT_LT(m.roiFinish, cfg.maxCycles);
    EXPECT_EQ(m.totalAcquisitions(), 4u * iters);
    EXPECT_GT(m.watchdogRecoveries, 0u);
    EXPECT_EQ(m.unrecoverable, 0u);
}
