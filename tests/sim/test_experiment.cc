/**
 * @file
 * Tests for the experiment runner layer.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"

using namespace ocor;

namespace
{

ExperimentConfig
tinyExp()
{
    ExperimentConfig exp;
    exp.threads = 4;
    exp.iterationsOverride = 2;
    exp.seed = 3;
    return exp;
}

} // namespace

TEST(Experiment, MakeSystemConfigAppliesScale)
{
    for (unsigned threads : {4u, 16u, 32u, 64u}) {
        ExperimentConfig exp = tinyExp();
        exp.threads = threads;
        SystemConfig cfg = makeSystemConfig(exp, true);
        EXPECT_EQ(cfg.numThreads, threads);
        EXPECT_EQ(cfg.mesh.numNodes(), threads);
        EXPECT_TRUE(cfg.ocor.enabled);
    }
}

TEST(Experiment, OcorOverrideApplied)
{
    ExperimentConfig exp = tinyExp();
    exp.ocorOverrideSet = true;
    exp.ocorOverride.numRtrLevels = 16;
    SystemConfig cfg = makeSystemConfig(exp, true);
    EXPECT_EQ(cfg.ocor.numRtrLevels, 16u);
    EXPECT_TRUE(cfg.ocor.enabled);
    // The same override with OCOR disabled keeps enabled = false.
    SystemConfig base = makeSystemConfig(exp, false);
    EXPECT_FALSE(base.ocor.enabled);
}

TEST(Experiment, RunOnceCompletesAllWork)
{
    BenchmarkProfile p = profileByName("ferret");
    RunMetrics m = runOnce(p, tinyExp(), false);
    EXPECT_EQ(m.threads, 4u);
    EXPECT_EQ(m.totalAcquisitions(), 8u); // 4 threads x 2 iters
    EXPECT_GT(m.roiFinish, 0u);
}

TEST(Experiment, IterationsOverrideRespected)
{
    BenchmarkProfile p = profileByName("ferret");
    ExperimentConfig exp = tinyExp();
    exp.iterationsOverride = 3;
    RunMetrics m = runOnce(p, exp, false);
    EXPECT_EQ(m.totalAcquisitions(), 12u);
}

TEST(Experiment, ComparisonCarriesProfileMetadata)
{
    BenchmarkProfile p = profileByName("botss");
    BenchmarkResult r = runComparison(p, tinyExp());
    EXPECT_EQ(r.name, "botss");
    EXPECT_EQ(r.suite, "OMP2012");
    EXPECT_TRUE(r.highCsRate);
    EXPECT_TRUE(r.highNetUtil);
    EXPECT_GT(r.base.roiFinish, 0u);
    EXPECT_GT(r.ocor.roiFinish, 0u);
}

TEST(Experiment, ImprovementFormulaEdgeCases)
{
    BenchmarkResult r;
    // Zero baselines must not divide by zero.
    EXPECT_DOUBLE_EQ(r.cohImprovementPct(), 0.0);
    EXPECT_DOUBLE_EQ(r.roiImprovementPct(), 0.0);

    r.base.roiFinish = 200;
    r.ocor.roiFinish = 150;
    EXPECT_DOUBLE_EQ(r.roiImprovementPct(), 25.0);

    ThreadCounters c;
    c.blockedIdleCycles = 100;
    r.base.perThread.push_back(c);
    c.blockedIdleCycles = 60;
    r.ocor.perThread.push_back(c);
    EXPECT_DOUBLE_EQ(r.cohImprovementPct(), 40.0);
}

TEST(Experiment, RunSuiteCoversAllProfiles)
{
    // Two tiny profiles to keep runtime bounded.
    std::vector<BenchmarkProfile> profiles = {
        profileByName("imag"), profileByName("ferret")};
    auto results = runSuite(profiles, tinyExp());
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].name, "imag");
    EXPECT_EQ(results[1].name, "ferret");
}
