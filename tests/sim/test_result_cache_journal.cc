/**
 * @file
 * Crash-safety tests for the journaled result cache (DESIGN.md §12):
 * torn-tail recovery at every byte boundary, CRC detection of
 * mid-file corruption, duplicate-key resolution, v1 migration,
 * compaction and the exported journal-health counters.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/stats_registry.hh"
#include "sim/result_cache.hh"

using namespace ocor;

namespace
{

class ResultCacheJournalTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // Per-test file: ctest runs each test as its own process,
        // possibly in parallel, so a shared name would collide.
        path_ = ::testing::TempDir() + "ocor_journal_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name() +
                ".tsv";
        std::remove(path_.c_str());
    }

    void
    TearDown() override
    {
        std::remove(path_.c_str());
        std::remove((path_ + ".compact.tmp").c_str());
    }

    RunMetrics
    metricsWithRoi(std::uint64_t roi)
    {
        RunMetrics m;
        m.roiFinish = roi;
        m.threads = 8;
        ThreadCounters c;
        c.computeCycles = roi * 10;
        c.csCycles = roi;
        c.acquisitions = 8;
        c.spinWins = 8;
        m.perThread.push_back(c);
        m.packetsInjected = roi + 1;
        return m;
    }

    CacheKey
    keyFor(const std::string &bench)
    {
        CacheKey k;
        k.benchmark = bench;
        k.threads = 8;
        k.iterations = 2;
        k.seed = 3;
        return k;
    }

    std::string
    readFile()
    {
        std::ifstream in(path_, std::ios::binary);
        std::ostringstream os;
        os << in.rdbuf();
        return os.str();
    }

    void
    writeFile(const std::string &text)
    {
        std::ofstream out(path_,
                          std::ios::binary | std::ios::trunc);
        out << text;
    }

    /** A journal with rows alpha, beta, gamma (in append order). */
    void
    buildJournal()
    {
        ResultCache cache(path_);
        cache.store(keyFor("alpha"), metricsWithRoi(1));
        cache.store(keyFor("beta"), metricsWithRoi(2));
        cache.store(keyFor("gamma"), metricsWithRoi(3));
        cache.flush();
    }

    std::string path_;
};

} // namespace

TEST_F(ResultCacheJournalTest, HeaderAndCrcStampsOnDisk)
{
    buildJournal();
    std::istringstream in(readFile());
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, std::string(ResultCache::headerLine()));
    unsigned rows = 0;
    while (std::getline(in, line)) {
        ++rows;
        // 8 lowercase hex digits, then a tab, then the payload.
        ASSERT_GE(line.size(), 10u);
        EXPECT_EQ(line[8], '\t');
        for (int i = 0; i < 8; ++i)
            EXPECT_TRUE(std::isxdigit(
                static_cast<unsigned char>(line[i])))
                << line;
    }
    EXPECT_EQ(rows, 3u);
}

TEST_F(ResultCacheJournalTest, TornTailAtEveryByteBoundaryRecovers)
{
    buildJournal();
    const std::string full = readFile();
    // First byte of the last (gamma) row.
    const std::size_t lastRow =
        full.find_last_of('\n', full.size() - 2) + 1;
    ASSERT_NE(full.find("gamma", lastRow), std::string::npos);

    // Cutting only the trailing newline is not a torn row: the
    // payload and CRC are intact, so the row still loads.
    {
        writeFile(full.substr(0, full.size() - 1));
        ResultCache cache(path_);
        EXPECT_TRUE(cache.lookup(keyFor("gamma")).has_value());
        EXPECT_EQ(cache.rowsLoaded(), 3u);
        EXPECT_EQ(cache.tailTruncations(), 0u);
    }

    // Simulate a crash tearing the final append at every byte
    // boundary that loses data: the journal must always load,
    // keeping every complete row and healing the file in place.
    for (std::size_t cut = lastRow; cut < full.size() - 1; ++cut) {
        writeFile(full.substr(0, cut));
        {
            ResultCache cache(path_);
            EXPECT_TRUE(cache.lookup(keyFor("alpha")).has_value())
                << "cut=" << cut;
            EXPECT_TRUE(cache.lookup(keyFor("beta")).has_value())
                << "cut=" << cut;
            EXPECT_FALSE(cache.lookup(keyFor("gamma")).has_value())
                << "cut=" << cut;
            EXPECT_EQ(cache.rowsLoaded(), 2u) << "cut=" << cut;
            if (cut > lastRow) {
                EXPECT_EQ(cache.tailTruncations(), 1u)
                    << "cut=" << cut;
                EXPECT_EQ(cache.truncatedBytes(), cut - lastRow)
                    << "cut=" << cut;
            }
        }
        // The truncation healed the file: a second open sees a
        // perfectly clean two-row journal.
        ResultCache again(path_);
        EXPECT_EQ(again.rowsLoaded(), 2u) << "cut=" << cut;
        EXPECT_EQ(again.parseErrors(), 0u) << "cut=" << cut;
        EXPECT_EQ(again.tailTruncations(), 0u) << "cut=" << cut;
    }
}

TEST_F(ResultCacheJournalTest, TornHeaderLoadsAsEmptyNotAbort)
{
    buildJournal();
    const std::string full = readFile();
    // Cut inside the header line itself (a crash during the very
    // first batch write): nothing loadable, but no abort either.
    writeFile(full.substr(0, 5));
    ResultCache cache(path_);
    EXPECT_EQ(cache.rowsLoaded(), 0u);
    EXPECT_FALSE(cache.lookup(keyFor("alpha")).has_value());
    // The cache is still usable for new work.
    cache.store(keyFor("delta"), metricsWithRoi(4));
    cache.flush();
    ResultCache again(path_);
    EXPECT_TRUE(again.lookup(keyFor("delta")).has_value());
    EXPECT_EQ(again.parseErrors(), 0u);
}

TEST_F(ResultCacheJournalTest, MidFileCorruptionSkipsOnlyThatRow)
{
    buildJournal();
    std::string text = readFile();
    // Flip one payload byte of the beta row: its CRC stamp no longer
    // matches, so the row is rejected instead of mis-parsed.
    const std::size_t pos = text.find("beta");
    ASSERT_NE(pos, std::string::npos);
    text[pos] = 'B';
    writeFile(text);

    ResultCache cache(path_);
    EXPECT_TRUE(cache.lookup(keyFor("alpha")).has_value());
    EXPECT_FALSE(cache.lookup(keyFor("beta")).has_value());
    EXPECT_TRUE(cache.lookup(keyFor("gamma")).has_value());
    EXPECT_EQ(cache.rowsLoaded(), 2u);
    EXPECT_EQ(cache.parseErrors(), 1u);

    // The next flush scrubs the corrupt row via compaction.
    cache.store(keyFor("beta"), metricsWithRoi(22));
    cache.flush();
    ResultCache again(path_);
    EXPECT_EQ(again.parseErrors(), 0u);
    EXPECT_EQ(again.rowsLoaded(), 3u);
    auto beta = again.lookup(keyFor("beta"));
    ASSERT_TRUE(beta.has_value());
    EXPECT_EQ(beta->roiFinish, 22u);
}

TEST_F(ResultCacheJournalTest, DuplicateKeysResolveLastWriteWins)
{
    {
        ResultCache first(path_);
        first.store(keyFor("alpha"), metricsWithRoi(111));
        first.flush();
    }
    {
        // A second process (modeled by a second instance) re-stores
        // the same key: the journal now holds two rows for it.
        ResultCache second(path_);
        second.store(keyFor("alpha"), metricsWithRoi(222));
        second.flush();
    }
    ResultCache cache(path_);
    EXPECT_EQ(cache.rowsLoaded(), 2u);
    EXPECT_EQ(cache.size(), 1u);
    auto hit = cache.lookup(keyFor("alpha"));
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->roiFinish, 222u);
}

TEST_F(ResultCacheJournalTest, CompactionDeduplicatesAndSorts)
{
    {
        ResultCache c(path_);
        c.store(keyFor("zeta"), metricsWithRoi(1));
        c.store(keyFor("alpha"), metricsWithRoi(2));
        c.flush();
    }
    {
        ResultCache c(path_);
        c.store(keyFor("alpha"), metricsWithRoi(3));
        c.flush();
    }
    ResultCache cache(path_);
    EXPECT_EQ(cache.rowsLoaded(), 3u);
    cache.compact();
    EXPECT_EQ(cache.compactions(), 1u);

    // One row per key, keys in sorted order, full header.
    std::istringstream in(readFile());
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, std::string(ResultCache::headerLine()));
    std::vector<std::string> rows;
    while (std::getline(in, line))
        rows.push_back(line);
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_NE(rows[0].find("alpha"), std::string::npos);
    EXPECT_NE(rows[1].find("zeta"), std::string::npos);

    ResultCache again(path_);
    auto hit = again.lookup(keyFor("alpha"));
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->roiFinish, 3u);
}

TEST_F(ResultCacheJournalTest, LegacyV1FileLoadsAndMigrates)
{
    buildJournal();
    // Synthesize the pre-journal v1 format: no header, no CRC stamp.
    std::istringstream in(readFile());
    std::ostringstream v1;
    std::string line;
    ASSERT_TRUE(std::getline(in, line)); // drop the header
    while (std::getline(in, line))
        v1 << line.substr(line.find('\t') + 1) << '\n';
    writeFile(v1.str());

    ResultCache cache(path_);
    EXPECT_TRUE(cache.lookup(keyFor("alpha")).has_value());
    EXPECT_TRUE(cache.lookup(keyFor("gamma")).has_value());
    EXPECT_EQ(cache.rowsLoaded(), 3u);

    // The first flush migrates the whole file to v2 via compaction.
    cache.store(keyFor("delta"), metricsWithRoi(4));
    cache.flush();
    EXPECT_EQ(cache.compactions(), 1u);
    std::string migrated = readFile();
    EXPECT_EQ(migrated.rfind(ResultCache::headerLine(), 0), 0u);
    ResultCache again(path_);
    EXPECT_EQ(again.rowsLoaded(), 4u);
    EXPECT_EQ(again.parseErrors(), 0u);
}

TEST_F(ResultCacheJournalTest, ForeignHeaderTreatedAsEmpty)
{
    writeFile("#ocor-results v99\nsomething from the future\n");
    ResultCache cache(path_);
    EXPECT_EQ(cache.rowsLoaded(), 0u);
    cache.store(keyFor("alpha"), metricsWithRoi(7));
    cache.flush();
    // The flush rewrote the file in this version's format.
    ResultCache again(path_);
    EXPECT_EQ(again.rowsLoaded(), 1u);
    EXPECT_TRUE(again.lookup(keyFor("alpha")).has_value());
}

TEST_F(ResultCacheJournalTest, EphemeralModeWritesNothing)
{
    for (const char *p : {"", "/dev/null"}) {
        ResultCache cache(p);
        cache.store(keyFor("alpha"), metricsWithRoi(5));
        cache.flush();
        EXPECT_TRUE(cache.lookup(keyFor("alpha")).has_value()) << p;
        EXPECT_EQ(cache.size(), 1u) << p;
    }
    // /dev/null stayed empty (nothing was journaled).
    std::ifstream devnull("/dev/null");
    std::string s;
    EXPECT_FALSE(std::getline(devnull, s));
}

TEST_F(ResultCacheJournalTest, HealthCountersExportedThroughStats)
{
    buildJournal();
    std::string text = readFile();
    const std::size_t pos = text.find("beta");
    ASSERT_NE(pos, std::string::npos);
    text[pos] = 'X';            // corrupt beta (parse error)
    text.resize(text.size() - 3); // tear the gamma tail
    writeFile(text);

    ResultCache cache(path_);
    StatsRegistry reg;
    cache.registerStats(reg);
    // Only alpha survives: beta is corrupt mid-file, and the torn
    // gamma fragment (plus the rejected beta row after the last good
    // one) is truncated away as the tail.
    EXPECT_EQ(reg.scalar("cache.rows_loaded"), 1.0);
    EXPECT_EQ(reg.scalar("cache.parse_errors"), 2.0);
    EXPECT_EQ(reg.scalar("cache.tail_truncations"), 1.0);
    EXPECT_GT(reg.scalar("cache.truncated_bytes"), 0.0);
    EXPECT_EQ(reg.scalar("cache.entries"), 1.0);
    EXPECT_EQ(reg.scalar("cache.simulations_run"), 0.0);
    EXPECT_TRUE(reg.has("cache.compactions"));
}
