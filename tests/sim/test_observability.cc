/**
 * @file
 * End-to-end tests for the observability stack: event tracing from a
 * real simulated run, trace determinism (including traced runs racing
 * on a worker pool), tracing-off invariance of the metrics, interval
 * telemetry, wall-clock profiling and the System stats registry.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.hh"
#include "sim/simulator.hh"

using namespace ocor;

namespace
{

SystemConfig
smallConfig()
{
    SystemConfig cfg;
    cfg.mesh = MeshShape{2, 2};
    cfg.numThreads = 4;
    cfg.maxCycles = 2'000'000;
    cfg.seed = 11;
    return cfg;
}

std::vector<Program>
contendedPrograms(unsigned n, unsigned iters = 3)
{
    std::vector<Program> out;
    for (unsigned t = 0; t < n; ++t) {
        ProgramBuilder b;
        for (unsigned i = 0; i < iters; ++i)
            b.compute(100 + 37 * t).lock(0).compute(50).unlock(0);
        out.push_back(b.build());
    }
    return out;
}

unsigned
countEv(const std::vector<TraceRecord> &recs, TraceEv ev)
{
    unsigned n = 0;
    for (const TraceRecord &r : recs)
        n += r.ev == ev;
    return n;
}

/** One traced run; returns its Chrome JSON export. */
std::string
tracedRunJson()
{
    SystemConfig cfg = smallConfig();
    cfg.trace.categories = parseTraceCats("all");
    Simulator sim(cfg, contendedPrograms(4), BgTrafficConfig{});
    sim.run();
    std::ostringstream os;
    sim.system().tracer()->exportChromeJson(os);
    return os.str();
}

} // namespace

TEST(Observability, TracedRunRecordsTheLockProtocol)
{
    SystemConfig cfg = smallConfig();
    cfg.trace.categories = parseTraceCats("lock");
    Simulator sim(cfg, contendedPrograms(4), BgTrafficConfig{});
    RunMetrics m = sim.run();

    Tracer *tr = sim.system().tracer();
    ASSERT_NE(tr, nullptr);
    std::vector<TraceRecord> recs = tr->snapshot();
    ASSERT_FALSE(recs.empty());

    // Lock-only tracing: every record is a lock-protocol event.
    for (const TraceRecord &r : recs)
        EXPECT_EQ(traceEvCat(r.ev), TraceCat::Lock);

    // Every critical section leaves a matched enter/exit pair.
    EXPECT_EQ(countEv(recs, TraceEv::CsEnter), m.totalAcquisitions());
    EXPECT_EQ(countEv(recs, TraceEv::CsExit), m.totalAcquisitions());
    EXPECT_EQ(countEv(recs, TraceEv::LockAcquireStart),
              m.totalAcquisitions());

    // Tries carry the RTR budget annotation (Section III's counter).
    bool saw_rtr = false;
    for (const TraceRecord &r : recs)
        if (r.ev == TraceEv::LockTrySent && r.a0 > 0)
            saw_rtr = true;
    EXPECT_TRUE(saw_rtr);

    // Contention on one word means ownership changed hands at least
    // once, with a measurable release-to-grant gap.
    unsigned handovers = 0;
    std::uint32_t max_gap = 0;
    for (const TraceRecord &r : recs)
        if (r.ev == TraceEv::LockHandover) {
            ++handovers;
            max_gap = std::max(max_gap, r.a1);
        }
    EXPECT_GT(handovers, 0u);
    EXPECT_GT(max_gap, 0u);

    // Cycle stamps never decrease (records are appended in order).
    for (std::size_t i = 1; i < recs.size(); ++i)
        EXPECT_GE(recs[i].cycle, recs[i - 1].cycle);
}

TEST(Observability, TraceBytesIdenticalAcrossRunsAndWorkerPools)
{
    // Serial reference...
    const std::string serial = tracedRunJson();
    EXPECT_FALSE(serial.empty());

    // ...and the same traced configuration racing 4-wide on a pool
    // (the bench binaries' --jobs path). Per-System tracers mean host
    // scheduling can never leak into a trace.
    ThreadPool pool(4);
    std::vector<std::future<std::string>> futs;
    for (int i = 0; i < 4; ++i)
        futs.push_back(pool.run([] { return tracedRunJson(); }));
    for (auto &f : futs)
        EXPECT_EQ(f.get(), serial);
}

TEST(Observability, MetricsUnaffectedByTracingAndTelemetry)
{
    SystemConfig plain_cfg = smallConfig();
    Simulator plain(plain_cfg, contendedPrograms(4),
                    BgTrafficConfig{});
    RunMetrics a = plain.run();

    SystemConfig traced_cfg = smallConfig();
    traced_cfg.trace.categories = parseTraceCats("all");
    SimOptions opts;
    opts.telemetryInterval = 64;
    opts.profileWall = true;
    Simulator traced(traced_cfg, contendedPrograms(4),
                     BgTrafficConfig{}, opts);
    RunMetrics b = traced.run();

    EXPECT_EQ(a.roiFinish, b.roiFinish);
    EXPECT_EQ(a.packetsInjected, b.packetsInjected);
    EXPECT_EQ(a.flitsInjected, b.flitsInjected);
    EXPECT_EQ(a.avgPacketLatency, b.avgPacketLatency);
    EXPECT_EQ(a.p50PacketLatency, b.p50PacketLatency);
    EXPECT_EQ(a.p95PacketLatency, b.p95PacketLatency);
    EXPECT_EQ(a.p99PacketLatency, b.p99PacketLatency);
    EXPECT_EQ(a.p50LockHandover, b.p50LockHandover);
    EXPECT_EQ(a.p99LockHandover, b.p99LockHandover);
}

TEST(Observability, PercentilesPopulatedAndOrdered)
{
    SystemConfig cfg = smallConfig();
    Simulator sim(cfg, contendedPrograms(4, 5), BgTrafficConfig{});
    RunMetrics m = sim.run();

    EXPECT_GT(m.p50PacketLatency, 0.0);
    EXPECT_LE(m.p50PacketLatency, m.p95PacketLatency);
    EXPECT_LE(m.p95PacketLatency, m.p99PacketLatency);

    EXPECT_GT(m.p50LockHandover, 0.0);
    EXPECT_LE(m.p50LockHandover, m.p95LockHandover);
    EXPECT_LE(m.p95LockHandover, m.p99LockHandover);
}

TEST(Observability, TelemetrySamplesOnTheInterval)
{
    constexpr Cycle kInterval = 100;
    SystemConfig cfg = smallConfig();
    SimOptions opts;
    opts.telemetryInterval = kInterval;
    Simulator sim(cfg, contendedPrograms(4), BgTrafficConfig{}, opts);
    RunMetrics m = sim.run();

    const TelemetryRecorder &tel = sim.telemetry();
    EXPECT_TRUE(tel.enabled());
    ASSERT_GT(tel.points(), 0u);
    EXPECT_LE(tel.points(), m.roiFinish / kInterval + 1);

    // Every sample emits one row per router, per link and per thread.
    Network &net = sim.system().network();
    const std::size_t per_sample = net.mesh().numNodes()
        + net.numLinks() + sim.system().numThreads();
    EXPECT_EQ(tel.rows().size(), tel.points() * per_sample);

    for (const TelemetryRow &r : tel.rows()) {
        EXPECT_EQ(r.cycle % kInterval, 0u);
        EXPECT_GE(r.value, 0.0);
    }

    std::ostringstream os;
    tel.exportCsv(os);
    EXPECT_EQ(os.str().rfind("cycle,kind,index,value\n", 0), 0u);
}

TEST(Observability, WallProfileMeasuresTheRun)
{
    SystemConfig cfg = smallConfig();
    SimOptions opts;
    opts.profileWall = true;
    Simulator sim(cfg, contendedPrograms(4), BgTrafficConfig{}, opts);
    RunMetrics m = sim.run();

    const WallProfile &w = sim.wallProfile();
    EXPECT_EQ(w.cycles, m.roiFinish);
    EXPECT_GT(w.totalSeconds, 0.0);
    EXPECT_GT(w.tickSeconds, 0.0);
    EXPECT_GT(w.accountSeconds, 0.0);
    // Phase times are subsets of the whole-run time.
    EXPECT_LE(w.tickSeconds + w.accountSeconds,
              w.totalSeconds * 1.001);
}

TEST(Observability, SystemRegistersHierarchicalStats)
{
    SystemConfig cfg = smallConfig();
    cfg.trace.categories = parseTraceCats("lock");
    Simulator sim(cfg, contendedPrograms(4), BgTrafficConfig{});
    RunMetrics m = sim.run();

    StatsRegistry reg;
    sim.system().registerStats(reg);

    for (const char *name :
         {"system.net.packets_delivered", "system.net.packet_latency",
          "system.net.packet_latency_hist", "system.router0.sa_grants",
          "system.router3.flits_routed", "system.ni0.packets_injected",
          "system.lockmgr0.grants",
          "system.lockmgr0.handover_latency_hist",
          "system.thread0.acquisitions", "system.thread3.cs_cycles",
          "system.trace.emitted"})
        EXPECT_TRUE(reg.has(name)) << name;

    // Registered pointers reflect the run's live counters.
    EXPECT_EQ(reg.scalar("system.thread0.acquisitions"),
              static_cast<double>(m.perThread[0].acquisitions));
    EXPECT_GT(reg.scalar("system.trace.emitted"), 0.0);

    // The dump is one machine-readable JSON object and two dumps of
    // the same system are byte-identical.
    std::ostringstream x, y;
    reg.dumpJson(x);
    reg.dumpJson(y);
    EXPECT_EQ(x.str(), y.str());
    EXPECT_EQ(x.str().front(), '{');
}
