/**
 * @file
 * Crash-capture and replay tests (DESIGN.md §12): repro lines round
 * trip through dump files, dumps written from signal context are
 * parsable, and a child process dying to SIGTERM leaves a dump whose
 * repro line pins the exact in-flight simulation.
 *
 * SIGTERM (not SIGSEGV) drives the child-death test: sanitizer
 * builds intercept SIGSEGV for their own reporting, while SIGTERM
 * reaches our handler everywhere.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <string>

#include <sys/wait.h>
#include <unistd.h>

#include "sim/crashdump.hh"
#include "workload/benchmarks.hh"

using namespace ocor;

namespace
{

class CrashDumpTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // Per-test file: parallel ctest processes must not collide.
        path_ = ::testing::TempDir() + "ocor_crash_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name() +
                ".dump";
        std::remove(path_.c_str());
    }

    void
    TearDown() override
    {
        std::remove(path_.c_str());
    }

    ExperimentConfig
    exp()
    {
        ExperimentConfig e;
        e.threads = 16;
        e.iterationsOverride = 3;
        e.seed = 42;
        return e;
    }

    std::string path_;
};

} // namespace

TEST_F(CrashDumpTest, ReproLineRoundTripsThroughDumpFile)
{
    const BenchmarkProfile profile = profileByName("ferret");
    const std::string line = crashdump::reproLine(profile, exp(),
                                                  true);
    {
        std::ofstream out(path_);
        out << crashdump::dumpHeader() << "\nsignal=SIGTERM\n"
            << line << "\n";
    }
    auto spec = crashdump::parseDump(path_);
    ASSERT_TRUE(spec.has_value());
    EXPECT_EQ(spec->benchmark, "ferret");
    EXPECT_EQ(spec->threads, 16u);
    EXPECT_EQ(spec->iterations, 3u);
    EXPECT_EQ(spec->seed, 42u);
    EXPECT_TRUE(spec->ocorEnabled);
}

TEST_F(CrashDumpTest, ReproLineUsesProfileDefaultIterations)
{
    const BenchmarkProfile profile = profileByName("ferret");
    ExperimentConfig e = exp();
    e.iterationsOverride = 0; // profile default
    const std::string line =
        crashdump::reproLine(profile, e, false);
    EXPECT_NE(line.find("iters=" + std::to_string(
                            profile.workload.iterations)),
              std::string::npos);
}

TEST_F(CrashDumpTest, ParseRejectsNonDumps)
{
    EXPECT_FALSE(crashdump::parseDump("/nonexistent/x.dump")
                     .has_value());

    std::ofstream(path_) << "not a dump at all\n";
    EXPECT_FALSE(crashdump::parseDump(path_).has_value());

    // A dump whose crash hit outside any simulation has no repro
    // line: parse reports "nothing to replay", not garbage.
    std::ofstream(path_, std::ios::trunc)
        << crashdump::dumpHeader() << "\nsignal=SIGABRT\nruns=0\n";
    EXPECT_FALSE(crashdump::parseDump(path_).has_value());
}

TEST_F(CrashDumpTest, DumpNowCapturesInFlightSimulations)
{
    crashdump::install(path_);
    EXPECT_TRUE(crashdump::installed());
    EXPECT_EQ(std::string(crashdump::dumpPath()), path_);

    const BenchmarkProfile profile = profileByName("imag");
    {
        crashdump::RunScope scope(profile, exp(), true);
        ASSERT_TRUE(crashdump::dumpNow("TEST"));
    }
    auto spec = crashdump::parseDump(path_);
    ASSERT_TRUE(spec.has_value());
    EXPECT_EQ(spec->benchmark, "imag");
    EXPECT_TRUE(spec->ocorEnabled);

    // After the scope closes the slot is released: a fresh dump
    // carries no repro line.
    ASSERT_TRUE(crashdump::dumpNow("TEST"));
    EXPECT_FALSE(crashdump::parseDump(path_).has_value());
}

TEST_F(CrashDumpTest, SigTermInChildLeavesReplayableDump)
{
    const BenchmarkProfile profile = profileByName("ferret");
    const ExperimentConfig e = exp();

    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        // Child: arm the handler, mark a simulation in flight, die.
        crashdump::install(path_);
        crashdump::RunScope scope(profile, e, false);
        ::raise(SIGTERM);
        _exit(99); // not reached: the handler re-raises and dies
    }

    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status));
    EXPECT_EQ(WTERMSIG(status), SIGTERM);

    auto spec = crashdump::parseDump(path_);
    ASSERT_TRUE(spec.has_value());
    EXPECT_EQ(spec->benchmark, "ferret");
    EXPECT_EQ(spec->threads, 16u);
    EXPECT_EQ(spec->iterations, 3u);
    EXPECT_EQ(spec->seed, 42u);
    EXPECT_FALSE(spec->ocorEnabled);

    // The dump replays deterministically: same config, same seed.
    RunMetrics a = runOnce(profileByName(spec->benchmark),
                           [&] {
                               ExperimentConfig r;
                               r.threads = spec->threads;
                               r.iterationsOverride =
                                   spec->iterations;
                               r.seed = spec->seed;
                               return r;
                           }(),
                           spec->ocorEnabled);
    RunMetrics b = runOnce(profile, e, false);
    EXPECT_EQ(a.roiFinish, b.roiFinish);
    EXPECT_EQ(a.totalCoh(), b.totalCoh());
}
