/**
 * @file
 * Integration tests for the fully wired System.
 */

#include <gtest/gtest.h>

#include <memory>

#include "sim/system.hh"
#include "workload/program.hh"

using namespace ocor;

namespace
{

std::vector<Program>
trivialPrograms(unsigned n)
{
    std::vector<Program> out;
    for (unsigned t = 0; t < n; ++t)
        out.push_back(ProgramBuilder().compute(5).build());
    return out;
}

} // namespace

TEST(System, BuildsAllMeshSizes)
{
    for (unsigned cores : {4u, 16u, 32u, 64u}) {
        SystemConfig cfg;
        cfg.mesh = SystemConfig::meshFor(cores);
        cfg.numThreads = cores;
        BgTrafficConfig bg;
        System sys(cfg, trivialPrograms(cores), bg);
        EXPECT_EQ(sys.numThreads(), cores);
    }
}

TEST(System, TrivialProgramsFinish)
{
    SystemConfig cfg;
    cfg.mesh = MeshShape{4, 4};
    cfg.numThreads = 16;
    BgTrafficConfig bg;
    System sys(cfg, trivialPrograms(16), bg);
    for (Cycle c = 0; c < 100 && !sys.allFinished(); ++c)
        sys.tick(c);
    EXPECT_TRUE(sys.allFinished());
}

TEST(System, SingleLockProgramRoundTrips)
{
    SystemConfig cfg;
    cfg.mesh = MeshShape{2, 2};
    cfg.numThreads = 4;
    std::vector<Program> progs;
    for (unsigned t = 0; t < 4; ++t)
        progs.push_back(ProgramBuilder()
                            .compute(10 + t * 7)
                            .lock(0)
                            .compute(20)
                            .unlock(0)
                            .build());
    BgTrafficConfig bg;
    System sys(cfg, std::move(progs), bg);
    Cycle c = 0;
    for (; c < 100000 && !sys.allFinished(); ++c)
        sys.tick(c);
    ASSERT_TRUE(sys.allFinished());
    for (ThreadId t = 0; t < 4; ++t) {
        EXPECT_EQ(sys.pcb(t).counters.acquisitions, 1u);
        EXPECT_EQ(sys.pcb(t).prog, 1u) << "PROG counts unlocks";
    }
    // Let the final release (in flight when the program ends) land.
    for (Cycle end = c + 500; c < end; ++c)
        sys.tick(c);
    EXPECT_FALSE(sys.lockHeld(cfg.lockRegionBase));
}

TEST(System, MutualExclusionHolds)
{
    // Oracle property: across the whole run, at most one thread is
    // ever inside a critical section of the same lock.
    SystemConfig cfg;
    cfg.mesh = MeshShape{2, 2};
    cfg.numThreads = 4;
    std::vector<Program> progs;
    for (unsigned t = 0; t < 4; ++t) {
        ProgramBuilder b;
        for (int i = 0; i < 5; ++i)
            b.compute(5 + t).lock(0).compute(30).unlock(0);
        progs.push_back(b.build());
    }
    BgTrafficConfig bg;
    System sys(cfg, std::move(progs), bg);
    for (Cycle c = 0; c < 500000 && !sys.allFinished(); ++c) {
        sys.tick(c);
        unsigned in_cs = 0;
        for (ThreadId t = 0; t < 4; ++t)
            in_cs += sys.pcb(t).state == ThreadState::InCS ? 1 : 0;
        ASSERT_LE(in_cs, 1u) << "mutual exclusion violated at " << c;
    }
    ASSERT_TRUE(sys.allFinished());
}

TEST(System, DistinctLocksDoNotSerialize)
{
    SystemConfig cfg;
    cfg.mesh = MeshShape{2, 2};
    cfg.numThreads = 4;
    std::vector<Program> progs;
    for (unsigned t = 0; t < 4; ++t)
        progs.push_back(ProgramBuilder()
                            .lock(t) // four different locks
                            .compute(1000)
                            .unlock(t)
                            .build());
    BgTrafficConfig bg;
    System sys(cfg, std::move(progs), bg);
    Cycle c = 0;
    for (; c < 100000 && !sys.allFinished(); ++c)
        sys.tick(c);
    ASSERT_TRUE(sys.allFinished());
    // With no contention the four 1000-cycle critical sections must
    // overlap: the whole run takes far less than 4000 cycles.
    EXPECT_LT(c, 3000u);
}

TEST(System, DrainsAfterCompletion)
{
    SystemConfig cfg;
    cfg.mesh = MeshShape{2, 2};
    cfg.numThreads = 4;
    std::vector<Program> progs;
    for (unsigned t = 0; t < 4; ++t)
        progs.push_back(ProgramBuilder()
                            .lock(0)
                            .store(0x8000)
                            .unlock(0)
                            .build());
    BgTrafficConfig bg;
    System sys(cfg, std::move(progs), bg);
    Cycle c = 0;
    for (; c < 200000 && !sys.allFinished(); ++c)
        sys.tick(c);
    ASSERT_TRUE(sys.allFinished());
    // Let in-flight traffic (wakes, writebacks) land.
    Cycle drain_deadline =
        c + cfg.os.wakeRetryDelay + cfg.os.futexWakeDelay + 5000;
    for (; c < drain_deadline && !sys.drained(); ++c)
        sys.tick(c);
    EXPECT_TRUE(sys.drained());
}

TEST(System, BackgroundTrafficFlows)
{
    SystemConfig cfg;
    cfg.mesh = MeshShape{4, 4};
    cfg.numThreads = 16;
    std::vector<Program> progs;
    for (unsigned t = 0; t < 16; ++t)
        progs.push_back(ProgramBuilder().compute(5000).build());
    BgTrafficConfig bg;
    bg.rate = 0.05;
    System sys(cfg, std::move(progs), bg);
    for (Cycle c = 0; c < 6000 && !sys.allFinished(); ++c)
        sys.tick(c);
    EXPECT_GT(sys.network().totalPacketsInjected(), 100u);
    std::uint64_t bg_issued = 0;
    for (ThreadId t = 0; t < 16; ++t)
        bg_issued += sys.core(t).stats().bgAccesses;
    EXPECT_GT(bg_issued, 200u);
}

TEST(SystemDeath, ProgramCountMismatchIsFatal)
{
    SystemConfig cfg;
    cfg.mesh = MeshShape{2, 2};
    cfg.numThreads = 4;
    BgTrafficConfig bg;
    auto progs = trivialPrograms(3);
    EXPECT_EXIT(System(cfg, std::move(progs), bg),
                ::testing::ExitedWithCode(1), "programs");
}

TEST(SystemDeath, TooManyThreadsIsFatal)
{
    SystemConfig cfg;
    cfg.mesh = MeshShape{2, 2};
    cfg.numThreads = 9;
    BgTrafficConfig bg;
    EXPECT_EXIT(System(cfg, trivialPrograms(9), bg),
                ::testing::ExitedWithCode(1), "numThreads");
}
