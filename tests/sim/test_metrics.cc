/**
 * @file
 * Unit tests for run metrics and the timeline recorder.
 */

#include <gtest/gtest.h>

#include "sim/metrics.hh"

using namespace ocor;

namespace
{
RunMetrics
sampleMetrics()
{
    RunMetrics m;
    m.roiFinish = 1000;
    m.threads = 2;
    ThreadCounters a;
    a.computeCycles = 500;
    a.csCycles = 100;
    a.blockedHeldCycles = 150;
    a.blockedIdleCycles = 250;
    a.acquisitions = 10;
    a.spinWins = 7;
    a.sleepWins = 3;
    a.sleeps = 3;
    ThreadCounters b;
    b.computeCycles = 300;
    b.csCycles = 100;
    b.blockedHeldCycles = 250;
    b.blockedIdleCycles = 350;
    b.acquisitions = 10;
    b.spinWins = 2;
    b.sleepWins = 8;
    b.sleeps = 8;
    m.perThread = {a, b};
    m.packetsInjected = 2000;
    m.lockPacketsInjected = 400;
    return m;
}
} // namespace

TEST(RunMetrics, Sums)
{
    RunMetrics m = sampleMetrics();
    EXPECT_EQ(m.totalCompute(), 800u);
    EXPECT_EQ(m.totalCs(), 200u);
    EXPECT_EQ(m.totalBlockedHeld(), 400u);
    EXPECT_EQ(m.totalCoh(), 600u);
    EXPECT_EQ(m.totalBlocked(), 1000u);
    EXPECT_EQ(m.totalAcquisitions(), 20u);
    EXPECT_EQ(m.totalSpinWins(), 9u);
    EXPECT_EQ(m.totalSleeps(), 11u);
}

TEST(RunMetrics, Percentages)
{
    RunMetrics m = sampleMetrics();
    // Thread-time = 2 threads x 1000 cycles.
    EXPECT_DOUBLE_EQ(m.cohPct(), 30.0);
    EXPECT_DOUBLE_EQ(m.csPct(), 10.0);
    EXPECT_DOUBLE_EQ(m.blockedPct(), 50.0);
    EXPECT_DOUBLE_EQ(m.spinWinPct(), 45.0);
}

TEST(RunMetrics, Rates)
{
    RunMetrics m = sampleMetrics();
    EXPECT_DOUBLE_EQ(m.csAccessRate(), 0.4);   // 400 / 1000
    EXPECT_DOUBLE_EQ(m.netUtilization(4), 0.5); // 2000/(1000*4)
}

TEST(RunMetrics, EmptyIsAllZero)
{
    RunMetrics m;
    EXPECT_DOUBLE_EQ(m.cohPct(), 0.0);
    EXPECT_DOUBLE_EQ(m.spinWinPct(), 0.0);
    EXPECT_DOUBLE_EQ(m.csAccessRate(), 0.0);
}

TEST(Timeline, RecordAndQuery)
{
    Timeline t(2, 100);
    EXPECT_TRUE(t.enabled());
    t.record(0, 5, SegClass::Parallel);
    t.record(1, 5, SegClass::Blocked);
    EXPECT_EQ(t.at(0, 5), SegClass::Parallel);
    EXPECT_EQ(t.at(1, 5), SegClass::Blocked);
    EXPECT_EQ(t.at(0, 6), SegClass::Done) << "unset defaults to Done";
}

TEST(Timeline, OutOfRangeRecordIgnored)
{
    Timeline t(2, 10);
    t.record(5, 5, SegClass::Cs);    // bad thread
    t.record(0, 50, SegClass::Cs);   // beyond horizon
    SUCCEED();
}

TEST(Timeline, FractionCounts)
{
    Timeline t(1, 10);
    for (Cycle c = 0; c < 10; ++c)
        t.record(0, c, c < 4 ? SegClass::Blocked
                             : SegClass::Parallel);
    EXPECT_DOUBLE_EQ(t.fraction(SegClass::Blocked), 0.4);
    EXPECT_DOUBLE_EQ(t.fraction(SegClass::Parallel), 0.6);
    EXPECT_DOUBLE_EQ(t.fraction(SegClass::Blocked, 4), 1.0);
}

TEST(Timeline, DisabledByDefault)
{
    Timeline t;
    EXPECT_FALSE(t.enabled());
    EXPECT_DOUBLE_EQ(t.fraction(SegClass::Cs), 0.0);
}

TEST(SegClass, MapsThreadStates)
{
    EXPECT_EQ(segClassOf(ThreadState::Running), SegClass::Parallel);
    EXPECT_EQ(segClassOf(ThreadState::Spinning), SegClass::Blocked);
    EXPECT_EQ(segClassOf(ThreadState::SleepPrep), SegClass::Blocked);
    EXPECT_EQ(segClassOf(ThreadState::Sleeping), SegClass::Blocked);
    EXPECT_EQ(segClassOf(ThreadState::Waking), SegClass::Blocked);
    EXPECT_EQ(segClassOf(ThreadState::InCS), SegClass::Cs);
    EXPECT_EQ(segClassOf(ThreadState::Finished), SegClass::Done);
}
