/**
 * @file
 * Tests for the Simulator: accounting oracle, ROI bookkeeping,
 * timeline recording, determinism.
 */

#include <gtest/gtest.h>

#include "sim/simulator.hh"

using namespace ocor;

namespace
{

SystemConfig
smallConfig()
{
    SystemConfig cfg;
    cfg.mesh = MeshShape{2, 2};
    cfg.numThreads = 4;
    cfg.maxCycles = 2'000'000;
    return cfg;
}

std::vector<Program>
contendedPrograms(unsigned n, unsigned iters = 3)
{
    std::vector<Program> out;
    for (unsigned t = 0; t < n; ++t) {
        ProgramBuilder b;
        for (unsigned i = 0; i < iters; ++i)
            b.compute(100 + 37 * t).lock(0).compute(50).unlock(0);
        out.push_back(b.build());
    }
    return out;
}

} // namespace

TEST(Simulator, AccountingAddsUpToRoi)
{
    auto cfg = smallConfig();
    Simulator sim(cfg, contendedPrograms(4), BgTrafficConfig{});
    RunMetrics m = sim.run();
    ASSERT_GT(m.roiFinish, 0u);
    ASSERT_LT(m.roiFinish, cfg.maxCycles);

    // Per thread: compute + cs + blocked <= roiFinish (the remainder
    // is post-finish idle time of early finishers).
    for (const auto &t : m.perThread) {
        std::uint64_t busy = t.computeCycles + t.csCycles
            + t.blockedHeldCycles + t.blockedIdleCycles;
        EXPECT_LE(busy, m.roiFinish + 1);
        EXPECT_GT(busy, 0u);
    }
}

TEST(Simulator, AcquisitionCountsMatchPrograms)
{
    auto cfg = smallConfig();
    Simulator sim(cfg, contendedPrograms(4, 5), BgTrafficConfig{});
    RunMetrics m = sim.run();
    EXPECT_EQ(m.totalAcquisitions(), 4u * 5u);
    for (const auto &t : m.perThread)
        EXPECT_EQ(t.spinWins + t.sleepWins, t.acquisitions);
}

TEST(Simulator, DeterministicAcrossRuns)
{
    auto cfg = smallConfig();
    cfg.seed = 77;
    BgTrafficConfig bg;
    bg.rate = 0.02;
    Simulator a(cfg, contendedPrograms(4), bg);
    Simulator b(cfg, contendedPrograms(4), bg);
    RunMetrics ma = a.run();
    RunMetrics mb = b.run();
    EXPECT_EQ(ma.roiFinish, mb.roiFinish);
    EXPECT_EQ(ma.packetsInjected, mb.packetsInjected);
    EXPECT_EQ(ma.totalCoh(), mb.totalCoh());
}

TEST(Simulator, SeedChangesOutcome)
{
    auto cfg = smallConfig();
    BgTrafficConfig bg;
    bg.rate = 0.05;
    cfg.seed = 1;
    Simulator a(cfg, contendedPrograms(4), bg);
    cfg.seed = 2;
    Simulator b(cfg, contendedPrograms(4), bg);
    EXPECT_NE(a.run().packetsInjected, b.run().packetsInjected);
}

TEST(Simulator, TimelineRecordsActivity)
{
    auto cfg = smallConfig();
    SimOptions opts;
    opts.timelineHorizon = 2000;
    opts.timelineThreads = 4;
    Simulator sim(cfg, contendedPrograms(4), BgTrafficConfig{},
                  opts);
    sim.run();
    const Timeline &t = sim.timeline();
    ASSERT_TRUE(t.enabled());
    EXPECT_GT(t.fraction(SegClass::Parallel), 0.0);
    EXPECT_GT(t.fraction(SegClass::Blocked), 0.0);
    EXPECT_GT(t.fraction(SegClass::Cs), 0.0);
}

TEST(Simulator, BlockedSplitsIntoHeldAndIdle)
{
    auto cfg = smallConfig();
    Simulator sim(cfg, contendedPrograms(4, 6), BgTrafficConfig{});
    RunMetrics m = sim.run();
    // With 4 threads hammering one lock there must be both kinds of
    // blocked time: waiting on a running CS and pure handover COH.
    EXPECT_GT(m.totalBlockedHeld(), 0u);
    EXPECT_GT(m.totalCoh(), 0u);
}

TEST(Simulator, MaxCyclesGuardStopsRunaway)
{
    auto cfg = smallConfig();
    cfg.maxCycles = 500; // far too short to finish
    Simulator sim(cfg, contendedPrograms(4), BgTrafficConfig{});
    RunMetrics m = sim.run();
    EXPECT_EQ(m.roiFinish, cfg.maxCycles);
}

// ---- HolderMemo (per-cycle lockHolderInCs cache) ----------------------

TEST(HolderMemo, MissThenHit)
{
    HolderMemo memo;
    bool held = false;
    EXPECT_FALSE(memo.lookup(0x40, held));
    memo.insert(0x40, true);
    ASSERT_TRUE(memo.lookup(0x40, held));
    EXPECT_TRUE(held);
    memo.insert(0x80, false);
    ASSERT_TRUE(memo.lookup(0x80, held));
    EXPECT_FALSE(held);
    // The first entry is still intact.
    ASSERT_TRUE(memo.lookup(0x40, held));
    EXPECT_TRUE(held);
}

TEST(HolderMemo, ResetClearsAllEntries)
{
    HolderMemo memo;
    memo.insert(0x40, true);
    memo.reset();
    EXPECT_EQ(memo.size(), 0u);
    bool held = true;
    EXPECT_FALSE(memo.lookup(0x40, held));
}

TEST(HolderMemo, CapacityOverflowDropsNotCorrupts)
{
    // Past kSlots entries inserts are dropped: lookups for the
    // overflow keys miss (callers recompute) and earlier entries
    // stay valid — correctness never depends on a hit.
    HolderMemo memo;
    for (unsigned i = 0; i < HolderMemo::kSlots + 4; ++i)
        memo.insert(0x100 + 0x40 * i, i % 2 == 0);
    EXPECT_EQ(memo.size(), HolderMemo::kSlots);
    bool held = false;
    for (unsigned i = 0; i < HolderMemo::kSlots; ++i) {
        ASSERT_TRUE(memo.lookup(0x100 + 0x40 * i, held)) << i;
        EXPECT_EQ(held, i % 2 == 0) << i;
    }
    for (unsigned i = HolderMemo::kSlots; i < HolderMemo::kSlots + 4;
         ++i)
        EXPECT_FALSE(memo.lookup(0x100 + 0x40 * i, held)) << i;
}

TEST(Simulator, StepCycleMatchesRunAccounting)
{
    // Driving the simulator with the microbenchmark hook must charge
    // cycles exactly like run() does on an identical twin.
    auto cfg = smallConfig();
    Simulator ref(cfg, contendedPrograms(4, 4), BgTrafficConfig{});
    RunMetrics m = ref.run();

    Simulator stepped(cfg, contendedPrograms(4, 4),
                      BgTrafficConfig{});
    while (!stepped.system().allFinished()
           && stepped.now() < cfg.maxCycles)
        stepped.stepCycle();
    std::uint64_t cs = 0, coh = 0, held = 0;
    for (ThreadId t = 0; t < stepped.system().numThreads(); ++t) {
        const ThreadCounters &c = stepped.system().pcb(t).counters;
        cs += c.csCycles;
        coh += c.blockedIdleCycles;
        held += c.blockedHeldCycles;
    }
    EXPECT_EQ(cs, m.totalCs());
    EXPECT_EQ(coh, m.totalCoh());
    EXPECT_EQ(held, m.totalBlockedHeld());
}
