/**
 * @file
 * Causal-attribution layer tests (DESIGN.md §14): the COH cause
 * ledger, the event-core wake profiler and the hybrid-window
 * diagnostics. The two hard promises enforced here are (1) the
 * instrumentation is invisible when off — field-exact metrics — and
 * stays result-neutral when on, and (2) the cause split is exact:
 * per thread and per lock, the five cause counters sum to the COH
 * cycles they refine, with nothing dropped or double-charged.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "os/lock_ledger.hh"
#include "sim/simulator.hh"
#include "sim/wake_profiler.hh"

using namespace ocor;

namespace
{

SystemConfig
smallConfig()
{
    SystemConfig cfg;
    cfg.mesh = MeshShape{2, 2};
    cfg.numThreads = 4;
    cfg.maxCycles = 2'000'000;
    cfg.seed = 11;
    return cfg;
}

std::vector<Program>
contendedPrograms(unsigned n, unsigned iters = 3)
{
    std::vector<Program> out;
    for (unsigned t = 0; t < n; ++t) {
        ProgramBuilder b;
        for (unsigned i = 0; i < iters; ++i)
            b.compute(100 + 37 * t).lock(0).compute(50).unlock(0);
        out.push_back(b.build());
    }
    return out;
}

RunMetrics
runWith(const SystemConfig &cfg, SimOptions opts,
        const BgTrafficConfig &bg = {}, unsigned iters = 3)
{
    Simulator sim(cfg, contendedPrograms(cfg.numThreads, iters), bg,
                  opts);
    return sim.run();
}

/** Every field equal, including the COH cause counters. */
void
expectFieldExact(const RunMetrics &a, const RunMetrics &b)
{
    EXPECT_EQ(a.roiFinish, b.roiFinish);
    EXPECT_EQ(a.threads, b.threads);
    ASSERT_EQ(a.perThread.size(), b.perThread.size());
    for (std::size_t t = 0; t < a.perThread.size(); ++t) {
        const ThreadCounters &x = a.perThread[t];
        const ThreadCounters &y = b.perThread[t];
        EXPECT_EQ(x.computeCycles, y.computeCycles) << "thread " << t;
        EXPECT_EQ(x.csCycles, y.csCycles) << "thread " << t;
        EXPECT_EQ(x.blockedHeldCycles, y.blockedHeldCycles)
            << "thread " << t;
        EXPECT_EQ(x.blockedIdleCycles, y.blockedIdleCycles)
            << "thread " << t;
        EXPECT_EQ(x.acquisitions, y.acquisitions) << "thread " << t;
        EXPECT_EQ(x.spinWins, y.spinWins) << "thread " << t;
        EXPECT_EQ(x.sleepWins, y.sleepWins) << "thread " << t;
        EXPECT_EQ(x.retries, y.retries) << "thread " << t;
        EXPECT_EQ(x.sleeps, y.sleeps) << "thread " << t;
        EXPECT_EQ(x.cohTransferCycles, y.cohTransferCycles)
            << "thread " << t;
        EXPECT_EQ(x.cohArbitrationCycles, y.cohArbitrationCycles)
            << "thread " << t;
        EXPECT_EQ(x.cohBackoffCycles, y.cohBackoffCycles)
            << "thread " << t;
        EXPECT_EQ(x.cohSleepCycles, y.cohSleepCycles)
            << "thread " << t;
        EXPECT_EQ(x.cohGrantGapCycles, y.cohGrantGapCycles)
            << "thread " << t;
    }
    EXPECT_EQ(a.packetsInjected, b.packetsInjected);
    EXPECT_EQ(a.flitsInjected, b.flitsInjected);
    EXPECT_EQ(a.lockPacketsInjected, b.lockPacketsInjected);
    EXPECT_EQ(a.fastpathPackets, b.fastpathPackets);
    EXPECT_EQ(a.windowsOpened, b.windowsOpened);
    EXPECT_EQ(a.windowsClosed, b.windowsClosed);
    EXPECT_EQ(a.windowCycles, b.windowCycles);
    EXPECT_EQ(a.avgPacketLatency, b.avgPacketLatency);
    EXPECT_EQ(a.avgLockPacketLatency, b.avgLockPacketLatency);
    EXPECT_EQ(a.avgDataPacketLatency, b.avgDataPacketLatency);
    EXPECT_EQ(a.p50PacketLatency, b.p50PacketLatency);
    EXPECT_EQ(a.p95PacketLatency, b.p95PacketLatency);
    EXPECT_EQ(a.p99PacketLatency, b.p99PacketLatency);
    EXPECT_EQ(a.p50LockHandover, b.p50LockHandover);
    EXPECT_EQ(a.p95LockHandover, b.p95LockHandover);
    EXPECT_EQ(a.p99LockHandover, b.p99LockHandover);
    EXPECT_EQ(a.hangDetected, b.hangDetected);
    EXPECT_EQ(a.cancelled, b.cancelled);
}

/** Aggregate (non-cause) results equal: the ledger refines but never
 * changes what the simulation computes. */
void
expectAggregateExact(const RunMetrics &a, const RunMetrics &b)
{
    EXPECT_EQ(a.roiFinish, b.roiFinish);
    EXPECT_EQ(a.totalCompute(), b.totalCompute());
    EXPECT_EQ(a.totalCs(), b.totalCs());
    EXPECT_EQ(a.totalBlockedHeld(), b.totalBlockedHeld());
    EXPECT_EQ(a.totalCoh(), b.totalCoh());
    EXPECT_EQ(a.totalAcquisitions(), b.totalAcquisitions());
    EXPECT_EQ(a.totalSpinWins(), b.totalSpinWins());
    EXPECT_EQ(a.packetsInjected, b.packetsInjected);
    EXPECT_EQ(a.flitsInjected, b.flitsInjected);
    EXPECT_EQ(a.lockPacketsInjected, b.lockPacketsInjected);
}

std::uint64_t
causeSum(const ThreadCounters &c)
{
    return c.cohTransferCycles + c.cohArbitrationCycles +
        c.cohBackoffCycles + c.cohSleepCycles + c.cohGrantGapCycles;
}

} // namespace

TEST(Attribution, LedgerOffIsFieldExactAndCauseFree)
{
    SystemConfig cfg = smallConfig();
    RunMetrics plain = runWith(cfg, {});
    RunMetrics again = runWith(cfg, {});
    expectFieldExact(plain, again);

    // Without the ledger the cause counters never move.
    for (const ThreadCounters &c : plain.perThread)
        EXPECT_EQ(causeSum(c), 0u);
}

TEST(Attribution, LedgerDoesNotChangeAggregateResults)
{
    SystemConfig cfg = smallConfig();
    RunMetrics plain = runWith(cfg, {});

    SimOptions opts;
    opts.cohLedger = true;
    RunMetrics ledgered = runWith(cfg, opts);
    expectAggregateExact(plain, ledgered);
}

TEST(Attribution, CausesSumExactlyToCohPerThreadAndPerLock)
{
    SystemConfig cfg = smallConfig();
    SimOptions opts;
    opts.cohLedger = true;
    Simulator sim(cfg, contendedPrograms(cfg.numThreads, 3), {},
                  opts);
    RunMetrics m = sim.run();

    // Per thread: the five causes partition blockedIdleCycles.
    std::uint64_t total_coh = 0;
    for (std::size_t t = 0; t < m.perThread.size(); ++t) {
        const ThreadCounters &c = m.perThread[t];
        EXPECT_EQ(causeSum(c), c.blockedIdleCycles)
            << "thread " << t;
        total_coh += c.blockedIdleCycles;
    }
    EXPECT_GT(total_coh, 0u) << "workload was not contended";

    // Per lock: the ledger's cause cycles cover every COH cycle.
    const LockLedger *ledger = sim.ledger();
    ASSERT_NE(ledger, nullptr);
    EXPECT_EQ(ledger->totalCycles(), total_coh);
    std::uint64_t lock_total = 0;
    for (const auto &kv : ledger->locks()) {
        std::uint64_t per_lock = 0;
        for (std::size_t c = 0; c < kNumCohCauses; ++c)
            per_lock += kv.second.causeCycles[c];
        lock_total += per_lock;
        EXPECT_GT(kv.second.attempts, 0u);
        EXPECT_GE(kv.second.attempts, kv.second.grants);
    }
    EXPECT_EQ(lock_total, total_coh);

    // The contended phase exercises more than one cause (a sleepy
    // 4-thread convoy sees at least transfer + one waiting cause).
    unsigned active = 0;
    for (std::size_t c = 0; c < kNumCohCauses; ++c)
        active += ledger->totalCause(static_cast<CohCause>(c)) > 0;
    EXPECT_GE(active, 2u);
}

TEST(Attribution, LedgerMatchesUnderLegacyAndEventCores)
{
    // The accounting call sites differ (per-cycle vs frozen-span
    // batching), but the charge is the same; the split must agree
    // bit-for-bit across cores.
    SystemConfig cfg = smallConfig();
    SimOptions opts;
    opts.cohLedger = true;
    opts.core = SimCoreMode::Legacy;
    RunMetrics legacy = runWith(cfg, opts);
    opts.core = SimCoreMode::Event;
    RunMetrics event = runWith(cfg, opts);
    expectFieldExact(legacy, event);
}

TEST(Attribution, WakeProfilingIsFieldExactAndCountsWakes)
{
    SystemConfig cfg = smallConfig();
    RunMetrics plain = runWith(cfg, {});

    SimOptions opts;
    opts.wakeProfile = true;
    opts.core = SimCoreMode::Event;
    Simulator sim(cfg, contendedPrograms(cfg.numThreads, 3), {},
                  opts);
    RunMetrics profiled = sim.run();
    expectFieldExact(plain, profiled);

    const WakeProfiler *wp = sim.wakeProfiler();
    ASSERT_NE(wp, nullptr);
    const WakeStats &ws = wp->stats();
    EXPECT_GT(ws.cyclesProfiled, 0u);
    std::uint64_t wakes = 0;
    for (unsigned g = 0; g < NumSystemGroups; ++g) {
        EXPECT_LE(ws.wasted[g], ws.wakes[g]) << simGroupName(g);
        // A group can't wake more often than cycles were processed.
        EXPECT_LE(ws.wakes[g], ws.cyclesProfiled) << simGroupName(g);
        wakes += ws.wakes[g];
    }
    EXPECT_GT(wakes, 0u);
    // Contended locking exercises the whole stack: cores, network
    // and lock clients all wake at least once.
    EXPECT_GT(ws.wakes[GCore], 0u);
    EXPECT_GT(ws.wakes[GNetwork], 0u);
    EXPECT_GT(ws.wakes[GQspin], 0u);
}

TEST(Attribution, WakeStatsMergeAddsFieldwise)
{
    WakeStats a, b;
    a.wakes[GCore] = 3;
    a.wasted[GNetwork] = 2;
    a.edges[GCore][GNetwork] = 5;
    a.netReasons[0] = 1;
    a.cyclesProfiled = 10;
    b.wakes[GCore] = 4;
    b.wasted[GNetwork] = 1;
    b.edges[GCore][GNetwork] = 7;
    b.netReasons[0] = 2;
    b.cyclesProfiled = 20;
    a.merge(b);
    EXPECT_EQ(a.wakes[GCore], 7u);
    EXPECT_EQ(a.wasted[GNetwork], 3u);
    EXPECT_EQ(a.edges[GCore][GNetwork], 12u);
    EXPECT_EQ(a.netReasons[0], 3u);
    EXPECT_EQ(a.cyclesProfiled, 30u);
}

TEST(Attribution, HybridWindowLifecycleIsConsistent)
{
    SystemConfig cfg = smallConfig();
    cfg.maxCycles = 4'000'000;
    cfg.fidelity = Fidelity::Hybrid;
    BgTrafficConfig bg;
    bg.rate = 0.05;
    RunMetrics m = runWith(cfg, {}, bg, 4);
    EXPECT_FALSE(m.hangDetected);

    // Background traffic under light contention opens windows and
    // closes them again when waiters appear.
    EXPECT_GT(m.windowsOpened, 0u);
    EXPECT_GT(m.fastpathPackets, 0u);
    // Every close had an open; at most the final window stays open.
    EXPECT_LE(m.windowsClosed, m.windowsOpened);
    EXPECT_GE(m.windowsClosed + 1, m.windowsOpened);
    // Coverage is a fraction of the run.
    EXPECT_LE(m.windowCycles, m.roiFinish);
    EXPECT_GT(m.windowCycles, 0u);
}

TEST(Attribution, WindowCloseCausesSumToCloses)
{
    SystemConfig cfg = smallConfig();
    cfg.maxCycles = 4'000'000;
    cfg.fidelity = Fidelity::Hybrid;
    BgTrafficConfig bg;
    bg.rate = 0.05;
    SimOptions opts;
    Simulator sim(cfg, contendedPrograms(cfg.numThreads, 4), bg,
                  opts);
    sim.run();
    const NetworkStats &ns = sim.system().network().stats();
    EXPECT_EQ(ns.windowCloseWaiter + ns.windowCloseLock +
                  ns.windowCloseLoad,
              ns.windowsClosed);
    // This workload closes windows because lock waiters appear.
    EXPECT_GT(ns.windowCloseWaiter + ns.windowCloseLock, 0u);
}

TEST(Attribution, ExactFidelityNeverOpensWindows)
{
    SystemConfig cfg = smallConfig();
    RunMetrics m = runWith(cfg, {});
    EXPECT_EQ(m.windowsOpened, 0u);
    EXPECT_EQ(m.windowsClosed, 0u);
    EXPECT_EQ(m.windowCycles, 0u);
}
