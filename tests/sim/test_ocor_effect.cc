/**
 * @file
 * End-to-end tests of the paper's headline claims, in miniature:
 * OCOR reduces competition overhead without touching critical
 * section execution, raises the spin-phase win rate, and every rule
 * keeps the system live (no lost wakeups, no starvation).
 *
 * These run a real benchmark profile at reduced scale, so they
 * assert *directions and invariants*, not absolute magnitudes.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"

using namespace ocor;

namespace
{

ExperimentConfig
quickExp(unsigned threads = 16)
{
    ExperimentConfig exp;
    exp.threads = threads;
    exp.iterationsOverride = 3;
    exp.seed = 5;
    return exp;
}

} // namespace

TEST(OcorEffect, AllThreadsFinishUnderBothConfigs)
{
    auto profile = profileByName("can");
    auto exp = quickExp();
    for (bool on : {false, true}) {
        RunMetrics m = runOnce(profile, exp, on);
        EXPECT_EQ(m.totalAcquisitions(),
                  static_cast<std::uint64_t>(exp.threads) * 3)
            << "ocor=" << on;
    }
}

TEST(OcorEffect, CsExecutionTimeBarelyChanges)
{
    // Figure 13: OCOR attacks the competition, not the CS itself.
    auto profile = profileByName("body");
    auto exp = quickExp();
    BenchmarkResult r = runComparison(profile, exp);
    double base_cs = static_cast<double>(r.base.totalCs())
        / r.base.totalAcquisitions();
    double ocor_cs = static_cast<double>(r.ocor.totalCs())
        / r.ocor.totalAcquisitions();
    EXPECT_NEAR(ocor_cs / base_cs, 1.0, 0.25);
}

TEST(OcorEffect, EveryAcquisitionAccountedAsSpinOrSleepWin)
{
    auto profile = profileByName("ilbdc");
    auto exp = quickExp();
    RunMetrics m = runOnce(profile, exp, true);
    EXPECT_EQ(m.totalSpinWins()
                  + (m.totalAcquisitions() - m.totalSpinWins()),
              m.totalAcquisitions());
    for (const auto &t : m.perThread)
        EXPECT_EQ(t.spinWins + t.sleepWins, t.acquisitions);
}

TEST(OcorEffect, NoThreadStarvesUnderOcor)
{
    // Starvation avoidance (Table 1 rule 1): every thread completes
    // all its iterations; progress spread is bounded during the run
    // by construction if all finish.
    auto profile = profileByName("botss");
    auto exp = quickExp(16);
    RunMetrics m = runOnce(profile, exp, true);
    for (const auto &t : m.perThread)
        EXPECT_EQ(t.acquisitions, 3u);
}

TEST(OcorEffect, ScaleGrowsContention)
{
    // More threads -> more blocked time per thread (Figure 15's
    // premise), under the baseline.
    auto profile = profileByName("x264");
    ExperimentConfig e4 = quickExp(4);
    ExperimentConfig e16 = quickExp(16);
    RunMetrics m4 = runOnce(profile, e4, false);
    RunMetrics m16 = runOnce(profile, e16, false);
    EXPECT_GT(m16.blockedPct(), m4.blockedPct());
}

TEST(OcorEffect, ComparisonStructIsConsistent)
{
    auto profile = profileByName("swap");
    auto exp = quickExp(16);
    BenchmarkResult r = runComparison(profile, exp);
    EXPECT_EQ(r.name, "swap");
    EXPECT_EQ(r.suite, "PARSEC");
    // Improvement formulas are consistent with raw metrics.
    double coh_impr = 100.0
        * (static_cast<double>(r.base.totalCoh())
           - static_cast<double>(r.ocor.totalCoh()))
        / static_cast<double>(r.base.totalCoh());
    EXPECT_NEAR(r.cohImprovementPct(), coh_impr, 1e-9);
}

TEST(OcorEffect, DisabledRulesCollapseTowardBaseline)
{
    // With every rule off (rule 2 off drops priority stamping
    // entirely), the OCOR run must behave like the original.
    auto profile = profileByName("can");
    auto exp = quickExp(16);
    exp.ocorOverrideSet = true;
    exp.ocorOverride.ruleLockFirst = false;
    BenchmarkResult r = runComparison(profile, exp);
    // Same seed, same workload, no priority fields anywhere: the
    // two runs are cycle-identical.
    EXPECT_EQ(r.base.roiFinish, r.ocor.roiFinish);
    EXPECT_EQ(r.base.totalCoh(), r.ocor.totalCoh());
}

TEST(OcorEffect, DeterministicComparison)
{
    auto profile = profileByName("md");
    auto exp = quickExp(16);
    BenchmarkResult a = runComparison(profile, exp);
    BenchmarkResult b = runComparison(profile, exp);
    EXPECT_EQ(a.base.roiFinish, b.base.roiFinish);
    EXPECT_EQ(a.ocor.roiFinish, b.ocor.roiFinish);
}
