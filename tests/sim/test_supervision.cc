/**
 * @file
 * Task-supervision tests (DESIGN.md §12): deadlines cancel runs
 * cooperatively, failed attempts retry, repeat offenders are
 * quarantined, degraded sweeps complete with per-request outcomes,
 * and supervision off (or satisfied) is bit-identical to the
 * unsupervised engine.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "sim/parallel_runner.hh"
#include "workload/benchmarks.hh"

using namespace ocor;

namespace
{

ExperimentConfig
smallExp(unsigned threads = 4, unsigned iters = 2)
{
    ExperimentConfig exp;
    exp.threads = threads;
    exp.iterationsOverride = iters;
    exp.seed = 3;
    return exp;
}

/** A policy whose deadline no real simulation can meet. */
SupervisePolicy
impossibleDeadline(unsigned maxAttempts, unsigned quarantineAfter)
{
    SupervisePolicy p;
    p.deadlineSeconds = 1e-5;
    p.maxAttempts = maxAttempts;
    p.backoffBaseSeconds = 1e-3;
    p.backoffMaxSeconds = 2e-3;
    p.backoffJitter = 0.0;
    p.quarantineAfter = quarantineAfter;
    p.enabled = true;
    return p;
}

} // namespace

TEST(ParallelRunnerSupervisionTest, RunStatusNamesAreStable)
{
    EXPECT_STREQ(runStatusName(RunStatus::Ok), "ok");
    EXPECT_STREQ(runStatusName(RunStatus::TimedOut), "timed-out");
    EXPECT_STREQ(runStatusName(RunStatus::Failed), "failed");
    EXPECT_STREQ(runStatusName(RunStatus::Quarantined),
                 "quarantined");
}

TEST(ParallelRunnerSupervisionTest, DeadlineScalesWithRequestSize)
{
    ParallelRunner runner(1);
    SupervisePolicy p;
    p.deadlineSeconds = 2.0;
    p.enabled = true;
    runner.setSupervision(p);

    RunRequest req;
    req.profile = profileByName("ferret");
    req.exp = smallExp(16, 4); // the base configuration
    EXPECT_DOUBLE_EQ(runner.deadlineFor(req), 2.0);

    req.exp = smallExp(32, 4); // 2x the threads -> 2x the budget
    EXPECT_DOUBLE_EQ(runner.deadlineFor(req), 4.0);

    req.exp = smallExp(16, 8); // 2x the iterations -> 2x the budget
    EXPECT_DOUBLE_EQ(runner.deadlineFor(req), 4.0);

    req.exp = smallExp(4, 1); // smaller than base: floored
    EXPECT_DOUBLE_EQ(runner.deadlineFor(req), 2.0);

    SupervisePolicy off;
    runner.setSupervision(off);
    req.exp = smallExp(64, 20);
    EXPECT_DOUBLE_EQ(runner.deadlineFor(req), 0.0);
}

TEST(ParallelRunnerSupervisionTest, CancelledRunReportsCancelled)
{
    // A pre-fired token cancels at the first poll: the run winds
    // down with cancelled set instead of simulating to completion.
    CancelToken token;
    token.cancel();
    Simulator::Options opts;
    opts.cancel = &token;
    RunMetrics m =
        runOnce(profileByName("ferret"), smallExp(), false, opts);
    EXPECT_TRUE(m.cancelled);
    EXPECT_FALSE(m.hangDetected);

    RunMetrics full =
        runOnce(profileByName("ferret"), smallExp(), false);
    EXPECT_FALSE(full.cancelled);
    EXPECT_GT(full.roiFinish, m.roiFinish);
}

TEST(ParallelRunnerSupervisionTest, DeadlineMissDegradesGracefully)
{
    ParallelRunner runner(2);
    runner.setSupervision(impossibleDeadline(2, 100));

    RunRequest req;
    req.profile = profileByName("ferret");
    req.exp = smallExp(16, 6);
    std::vector<RunMetrics> out = runner.run({req});

    // The sweep completed (no abort) with an empty placeholder.
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].roiFinish, 0u);

    const auto outcomes = runner.outcomes();
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_EQ(outcomes[0].status, RunStatus::TimedOut);
    EXPECT_EQ(outcomes[0].attempts, 2u);
    EXPECT_FALSE(outcomes[0].detail.empty());
    EXPECT_EQ(runner.timeouts(), 2u);
    EXPECT_EQ(runner.retries(), 1u);
    EXPECT_EQ(runner.degradedRuns(), 1u);
    EXPECT_EQ(runner.quarantined(), 0u);
}

TEST(ParallelRunnerSupervisionTest, QuarantineShortCircuitsRepeats)
{
    ParallelRunner runner(1);
    runner.setSupervision(impossibleDeadline(1, 1));

    RunRequest req;
    req.profile = profileByName("ferret");
    req.exp = smallExp(16, 6);

    runner.run({req});
    const auto first = runner.outcomes();
    ASSERT_EQ(first.size(), 1u);
    EXPECT_EQ(first[0].status, RunStatus::TimedOut);

    // The config burned its failure budget: the second sweep skips
    // it without consuming a simulation attempt.
    runner.run({req});
    const auto second = runner.outcomes();
    ASSERT_EQ(second.size(), 1u);
    EXPECT_EQ(second[0].status, RunStatus::Quarantined);
    EXPECT_EQ(second[0].attempts, 0u);
    EXPECT_EQ(runner.quarantined(), 1u);
    EXPECT_EQ(runner.degradedRuns(), 2u);
}

TEST(ParallelRunnerSupervisionTest, GenerousDeadlineIsBitIdentical)
{
    // Supervision that never fires must not perturb results: the
    // acceptance bar for turning it on in CI sweeps.
    const BenchmarkProfile profile = profileByName("ferret");
    const ExperimentConfig exp = smallExp();
    const RunMetrics reference = runOnce(profile, exp, true);

    ParallelRunner runner(2);
    SupervisePolicy p;
    p.deadlineSeconds = 300.0;
    p.maxAttempts = 3;
    p.enabled = true;
    runner.setSupervision(p);
    RunRequest req;
    req.profile = profile;
    req.exp = exp;
    req.ocorEnabled = true;
    std::vector<RunMetrics> out = runner.run({req});

    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].roiFinish, reference.roiFinish);
    EXPECT_EQ(out[0].totalCoh(), reference.totalCoh());
    EXPECT_EQ(out[0].packetsInjected, reference.packetsInjected);
    EXPECT_EQ(out[0].totalAcquisitions(),
              reference.totalAcquisitions());
    const auto outcomes = runner.outcomes();
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_EQ(outcomes[0].status, RunStatus::Ok);
    EXPECT_EQ(outcomes[0].attempts, 1u);
    EXPECT_EQ(runner.degradedRuns(), 0u);
}

TEST(ParallelRunnerSupervisionTest, SupervisionOffMatchesSerial)
{
    // With no policy installed the runner is the plain parallel
    // engine: results equal the serial reference exactly.
    const BenchmarkProfile profile = profileByName("imag");
    const ExperimentConfig exp = smallExp();
    const RunMetrics reference = runOnce(profile, exp, false);

    ParallelRunner runner(2);
    RunRequest req;
    req.profile = profile;
    req.exp = exp;
    std::vector<RunMetrics> out = runner.run({req});
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].roiFinish, reference.roiFinish);
    EXPECT_EQ(out[0].totalCoh(), reference.totalCoh());
    EXPECT_TRUE(runner.outcomes().empty());
}

TEST(ParallelRunnerSupervisionTest, CancelledResultsAreNeverCached)
{
    // A deadline abort must not poison the cache: the next attempt
    // re-simulates instead of recalling partial metrics.
    const std::string path =
        ::testing::TempDir() + "ocor_supervision_cache.tsv";
    std::remove(path.c_str());
    ResultCache cache(path);

    CancelToken token;
    token.cancel();
    Simulator::Options opts;
    opts.cancel = &token;
    RunMetrics cancelled =
        cache.get(profileByName("ferret"), smallExp(), false, opts);
    EXPECT_TRUE(cancelled.cancelled);
    EXPECT_EQ(cache.size(), 0u);

    RunMetrics clean =
        cache.get(profileByName("ferret"), smallExp(), false);
    EXPECT_FALSE(clean.cancelled);
    EXPECT_GT(clean.roiFinish, cancelled.roiFinish);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.simulationsRun(), 2u);
    std::remove(path.c_str());
}

TEST(ParallelRunnerSupervisionTest, SupervisedStatsAreRegistered)
{
    ParallelRunner runner(1);
    StatsRegistry reg;
    runner.registerStats(reg);
    EXPECT_TRUE(reg.has("runner.timeouts"));
    EXPECT_TRUE(reg.has("runner.failures"));
    EXPECT_TRUE(reg.has("runner.retries"));
    EXPECT_TRUE(reg.has("runner.quarantined"));
    EXPECT_TRUE(reg.has("runner.degraded"));
    EXPECT_TRUE(reg.has("runner.pool.queue_depth"));
    EXPECT_EQ(reg.scalar("runner.timeouts"), 0.0);
    EXPECT_EQ(reg.scalar("runner.pool.queue_depth"), 0.0);
}
