/**
 * @file
 * Tests for the parallel experiment engine: the headline property is
 * that fanning a suite across worker threads is bit-identical to
 * running it serially (the simulator shares no mutable state between
 * runs), so parallelism can never change a figure.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "sim/parallel_runner.hh"

using namespace ocor;

namespace
{

ExperimentConfig
tinyExp(std::uint64_t seed)
{
    ExperimentConfig exp;
    exp.threads = 4;
    exp.iterationsOverride = 2;
    exp.seed = seed;
    return exp;
}

std::vector<BenchmarkProfile>
tinyProfiles()
{
    return {profileByName("imag"), profileByName("ferret"),
            profileByName("botss")};
}

/** Field-by-field equality, exact doubles included: "bit-identical"
 * is the contract, not "statistically close". */
void
expectIdentical(const RunMetrics &a, const RunMetrics &b,
                const std::string &what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(a.roiFinish, b.roiFinish);
    EXPECT_EQ(a.threads, b.threads);
    ASSERT_EQ(a.perThread.size(), b.perThread.size());
    for (std::size_t t = 0; t < a.perThread.size(); ++t) {
        SCOPED_TRACE("thread " + std::to_string(t));
        const ThreadCounters &x = a.perThread[t];
        const ThreadCounters &y = b.perThread[t];
        EXPECT_EQ(x.computeCycles, y.computeCycles);
        EXPECT_EQ(x.csCycles, y.csCycles);
        EXPECT_EQ(x.blockedHeldCycles, y.blockedHeldCycles);
        EXPECT_EQ(x.blockedIdleCycles, y.blockedIdleCycles);
        EXPECT_EQ(x.acquisitions, y.acquisitions);
        EXPECT_EQ(x.spinWins, y.spinWins);
        EXPECT_EQ(x.sleepWins, y.sleepWins);
        EXPECT_EQ(x.retries, y.retries);
        EXPECT_EQ(x.sleeps, y.sleeps);
    }
    EXPECT_EQ(a.packetsInjected, b.packetsInjected);
    EXPECT_EQ(a.flitsInjected, b.flitsInjected);
    EXPECT_EQ(a.lockPacketsInjected, b.lockPacketsInjected);
    EXPECT_EQ(a.avgPacketLatency, b.avgPacketLatency);
    EXPECT_EQ(a.avgLockPacketLatency, b.avgLockPacketLatency);
    EXPECT_EQ(a.avgDataPacketLatency, b.avgDataPacketLatency);
    EXPECT_EQ(a.p50PacketLatency, b.p50PacketLatency);
    EXPECT_EQ(a.p95PacketLatency, b.p95PacketLatency);
    EXPECT_EQ(a.p99PacketLatency, b.p99PacketLatency);
    EXPECT_EQ(a.p50LockHandover, b.p50LockHandover);
    EXPECT_EQ(a.p95LockHandover, b.p95LockHandover);
    EXPECT_EQ(a.p99LockHandover, b.p99LockHandover);
    EXPECT_EQ(a.hangDetected, b.hangDetected);
}

} // namespace

TEST(ParallelRunner, SuiteBitIdenticalToSerial)
{
    std::vector<BenchmarkProfile> profiles = tinyProfiles();
    for (std::uint64_t seed : {3ull, 11ull}) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        ExperimentConfig exp = tinyExp(seed);
        std::vector<BenchmarkResult> serial =
            runSuite(profiles, exp);
        std::vector<BenchmarkResult> par =
            runSuiteParallel(profiles, exp, 4);
        ASSERT_EQ(par.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i) {
            EXPECT_EQ(par[i].name, serial[i].name);
            expectIdentical(par[i].base, serial[i].base,
                            serial[i].name + " base");
            expectIdentical(par[i].ocor, serial[i].ocor,
                            serial[i].name + " ocor");
        }
    }
}

TEST(ParallelRunner, ResultsComeBackInRequestOrder)
{
    // Heterogeneous batch: big runs first, tiny runs last. The tiny
    // runs finish first; results must still land at their request
    // index.
    std::vector<RunRequest> reqs;
    for (std::uint64_t seed : {5ull, 6ull, 7ull, 8ull}) {
        RunRequest r;
        r.profile = profileByName("can");
        r.exp = tinyExp(seed);
        r.exp.iterationsOverride = seed == 5 ? 6 : 1;
        reqs.push_back(r);
    }
    ParallelRunner runner(4);
    std::vector<RunMetrics> out = runner.run(reqs);
    ASSERT_EQ(out.size(), reqs.size());
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        RunMetrics ref = runOnce(reqs[i].profile, reqs[i].exp,
                                 reqs[i].ocorEnabled);
        expectIdentical(out[i], ref,
                        "request " + std::to_string(i));
    }
}

TEST(ParallelRunner, RunTimingAndPoolStatsAccumulate)
{
    ParallelRunner runner(2);
    std::vector<BenchmarkProfile> profiles = tinyProfiles();
    runner.runSuite(profiles, tinyExp(3));

    // 3 profiles x {base, ocor} = 6 timed runs.
    EXPECT_EQ(runner.runsExecuted(), 6u);
    SampleStat rs = runner.runSeconds();
    EXPECT_EQ(rs.count(), 6u);
    EXPECT_GT(rs.max(), 0.0);
    EXPECT_GE(runner.pool().tasksExecuted(), 6u);
    EXPECT_GT(runner.pool().totalBusyNs(), 0u);
    // Utilization is a fraction of jobs x wall; with a generous wall
    // estimate it must land in (0, 1].
    double util = runner.utilization(rs.sum());
    EXPECT_GT(util, 0.0);
    EXPECT_LE(util, 1.0 + 1e-9);

    StatsRegistry reg;
    runner.registerStats(reg);
    EXPECT_TRUE(reg.has("runner.pool.size"));
    EXPECT_TRUE(reg.has("runner.pool.worker0.busy_ns"));
    EXPECT_TRUE(reg.has("runner.pool.worker1.busy_ns"));
    EXPECT_EQ(reg.scalar("runner.pool.size"), 2.0);
    EXPECT_EQ(reg.scalar("runner.runs"), 6.0);
    // Per-worker busy time sums to the pool total.
    EXPECT_DOUBLE_EQ(reg.scalar("runner.pool.worker0.busy_ns")
                         + reg.scalar("runner.pool.worker1.busy_ns"),
                     reg.scalar("runner.pool.busy_ns_total"));
}

TEST(ParallelRunner, SharedCacheDeduplicatesAcrossRequests)
{
    std::string path = ::testing::TempDir()
        + "ocor_runner_cache_test.tsv";
    std::remove(path.c_str());
    {
        ResultCache cache(path);
        ParallelRunner runner(4, &cache);
        std::vector<BenchmarkProfile> profiles = tinyProfiles();
        ExperimentConfig exp = tinyExp(3);
        runner.runSuite(profiles, exp);
        // 3 profiles x {base, ocor} = 6 distinct configurations.
        EXPECT_EQ(cache.simulationsRun(), 6u);
        // A second identical sweep is served from memory.
        std::vector<BenchmarkResult> again =
            runner.runSuite(profiles, exp);
        EXPECT_EQ(cache.simulationsRun(), 6u);
        EXPECT_EQ(again.size(), 3u);
    }
    std::remove(path.c_str());
}
