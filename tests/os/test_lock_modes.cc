/**
 * @file
 * Tests for the Section-2.2 locking disciplines: pure spinlock,
 * pure queueing lock, and the queue spinlock that combines them.
 */

#include <gtest/gtest.h>

#include "sim/simulator.hh"

using namespace ocor;

namespace
{

std::vector<Program>
contended(unsigned n, unsigned iters)
{
    std::vector<Program> out;
    for (unsigned t = 0; t < n; ++t) {
        ProgramBuilder b;
        for (unsigned i = 0; i < iters; ++i)
            b.compute(200 + 31 * t).lock(0).compute(80).unlock(0);
        out.push_back(b.build());
    }
    return out;
}

RunMetrics
runMode(LockMode mode, unsigned iters = 4)
{
    SystemConfig cfg;
    cfg.mesh = MeshShape{2, 2};
    cfg.numThreads = 4;
    cfg.os.lockMode = mode;
    cfg.maxCycles = 5'000'000;
    Simulator sim(cfg, contended(4, iters), BgTrafficConfig{});
    return sim.run();
}

} // namespace

TEST(LockModes, Names)
{
    EXPECT_STREQ(lockModeName(LockMode::QueueSpinlock),
                 "queue-spinlock");
    EXPECT_STREQ(lockModeName(LockMode::PureSpin), "spinlock");
    EXPECT_STREQ(lockModeName(LockMode::PureSleep),
                 "queueing-lock");
}

TEST(LockModes, AllModesComplete)
{
    for (LockMode mode : {LockMode::QueueSpinlock,
                          LockMode::PureSpin,
                          LockMode::PureSleep}) {
        RunMetrics m = runMode(mode);
        EXPECT_EQ(m.totalAcquisitions(), 16u)
            << lockModeName(mode);
    }
}

TEST(LockModes, PureSpinNeverSleeps)
{
    RunMetrics m = runMode(LockMode::PureSpin, 6);
    EXPECT_EQ(m.totalSleeps(), 0u);
    EXPECT_DOUBLE_EQ(m.spinWinPct(), 100.0);
}

TEST(LockModes, PureSleepParksOnContention)
{
    RunMetrics m = runMode(LockMode::PureSleep, 6);
    // With four threads on one hot lock, contended acquisitions all
    // go through the sleeping path.
    EXPECT_GT(m.totalSleeps(), 0u);
    EXPECT_LT(m.spinWinPct(), 100.0);
}

TEST(LockModes, QueueSpinlockBetweenExtremes)
{
    // The combined scheme sleeps no more often than the queueing
    // lock and at least as often as the spinlock (Section 2.2's
    // motivation for combining them).
    RunMetrics spin = runMode(LockMode::PureSpin, 6);
    RunMetrics qsl = runMode(LockMode::QueueSpinlock, 6);
    RunMetrics sleep = runMode(LockMode::PureSleep, 6);
    EXPECT_LE(spin.totalSleeps(), qsl.totalSleeps());
    EXPECT_LE(qsl.totalSleeps(), sleep.totalSleeps());
}

TEST(LockModes, SleepCostShowsInRoi)
{
    // Under light contention, paying a context switch per
    // acquisition must not be cheaper than spinning briefly.
    RunMetrics spin = runMode(LockMode::PureSpin, 6);
    RunMetrics sleep = runMode(LockMode::PureSleep, 6);
    EXPECT_LT(spin.roiFinish, sleep.roiFinish);
}
