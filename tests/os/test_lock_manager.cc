/**
 * @file
 * Unit tests for the home-side lock manager: try/grant/fail
 * serialization, the futex queue, wakeup reservation semantics, and
 * the release invalidation burst.
 */

#include <gtest/gtest.h>

#include <vector>

#include "os/lock_manager.hh"

using namespace ocor;

namespace
{

struct LmRig
{
    OsParams params;
    std::vector<PacketPtr> sent;
    LockManager mgr;
    Cycle now = 0;

    LmRig()
        : mgr(0, params,
              [this](const PacketPtr &pkt, Cycle) {
                  sent.push_back(pkt);
              })
    {}

    /** Deliver a message and run past the home latency. */
    void
    deliver(MsgType type, ThreadId tid, NodeId node,
            Addr lock = 0x1000)
    {
        auto pkt = makePacket(type, node, 0, lock);
        pkt->thread = tid;
        mgr.handle(pkt, now);
        run(params.homeLatency + 1);
    }

    void
    run(Cycle cycles)
    {
        for (Cycle end = now + cycles; now < end; ++now)
            mgr.tick(now);
    }

    PacketPtr
    lastOfType(MsgType t)
    {
        for (auto it = sent.rbegin(); it != sent.rend(); ++it)
            if ((*it)->type == t)
                return *it;
        return nullptr;
    }

    unsigned
    countOfType(MsgType t)
    {
        unsigned n = 0;
        for (const auto &p : sent)
            n += p->type == t ? 1 : 0;
        return n;
    }
};

} // namespace

TEST(LockManager, FirstTryWins)
{
    LmRig rig;
    rig.deliver(MsgType::LockTry, 1, 1);
    auto grant = rig.lastOfType(MsgType::LockGrant);
    ASSERT_NE(grant, nullptr);
    EXPECT_EQ(grant->thread, 1u);
    EXPECT_TRUE(rig.mgr.heldNow(0x1000));
    EXPECT_EQ(rig.mgr.holderOf(0x1000), 1u);
}

TEST(LockManager, SecondTryFailsAndRegistersPoller)
{
    LmRig rig;
    rig.deliver(MsgType::LockTry, 1, 1);
    rig.deliver(MsgType::LockTry, 2, 2);
    auto fail = rig.lastOfType(MsgType::LockFail);
    ASSERT_NE(fail, nullptr);
    EXPECT_EQ(fail->thread, 2u);
    EXPECT_EQ(rig.mgr.pollerCount(0x1000), 1u);
}

TEST(LockManager, PollerRegisteredOnce)
{
    LmRig rig;
    rig.deliver(MsgType::LockTry, 1, 1);
    rig.deliver(MsgType::LockTry, 2, 2);
    rig.deliver(MsgType::LockTry, 2, 2);
    EXPECT_EQ(rig.mgr.pollerCount(0x1000), 1u);
}

TEST(LockManager, ReleaseInvalidatesAllPollers)
{
    LmRig rig;
    rig.deliver(MsgType::LockTry, 1, 1);
    rig.deliver(MsgType::LockTry, 2, 2);
    rig.deliver(MsgType::LockTry, 3, 3);
    rig.deliver(MsgType::LockRelease, 1, 1);
    EXPECT_FALSE(rig.mgr.heldNow(0x1000));
    EXPECT_EQ(rig.countOfType(MsgType::LockFreeNotify), 2u);
}

TEST(LockManager, WinnerRemovedFromPollers)
{
    LmRig rig;
    rig.deliver(MsgType::LockTry, 1, 1);
    rig.deliver(MsgType::LockTry, 2, 2); // poller
    rig.deliver(MsgType::LockRelease, 1, 1);
    rig.deliver(MsgType::LockTry, 2, 2); // wins now
    EXPECT_EQ(rig.mgr.holderOf(0x1000), 2u);
    EXPECT_EQ(rig.mgr.pollerCount(0x1000), 0u);
}

TEST(LockManager, FutexWaitQueuesWhileHeld)
{
    LmRig rig;
    rig.deliver(MsgType::LockTry, 1, 1);
    rig.deliver(MsgType::FutexWait, 2, 2);
    EXPECT_EQ(rig.mgr.queueLength(0x1000), 1u);
    EXPECT_EQ(rig.countOfType(MsgType::WakeNotify), 0u);
}

TEST(LockManager, FutexWaitOnFreeLockGrantsImmediately)
{
    LmRig rig;
    rig.deliver(MsgType::FutexWait, 2, 2);
    // Futex re-check: lock free -> woken immediately with the lock
    // reserved for it.
    auto wake = rig.lastOfType(MsgType::WakeNotify);
    ASSERT_NE(wake, nullptr);
    EXPECT_EQ(wake->thread, 2u);
    EXPECT_TRUE(rig.mgr.heldNow(0x1000));
    EXPECT_EQ(rig.mgr.holderOf(0x1000), 2u);
    EXPECT_EQ(rig.mgr.queueLength(0x1000), 0u);
}

TEST(LockManager, WakeReservesForHeadSleeper)
{
    LmRig rig;
    rig.deliver(MsgType::LockTry, 1, 1);
    rig.deliver(MsgType::FutexWait, 2, 2);
    rig.deliver(MsgType::FutexWait, 3, 3);
    rig.deliver(MsgType::LockRelease, 1, 1);
    rig.deliver(MsgType::FutexWake, 1, 1);
    auto wake = rig.lastOfType(MsgType::WakeNotify);
    ASSERT_NE(wake, nullptr);
    EXPECT_EQ(wake->thread, 2u) << "FIFO head must be woken";
    EXPECT_EQ(rig.mgr.holderOf(0x1000), 2u);
    EXPECT_EQ(rig.mgr.queueLength(0x1000), 1u);
}

TEST(LockManager, SpinnerStealBeatsLateWake)
{
    LmRig rig;
    rig.deliver(MsgType::LockTry, 1, 1);
    rig.deliver(MsgType::FutexWait, 2, 2);
    rig.deliver(MsgType::LockRelease, 1, 1);
    // A spinner's try lands before the holder's FUTEX_WAKE.
    rig.deliver(MsgType::LockTry, 3, 3);
    EXPECT_EQ(rig.mgr.holderOf(0x1000), 3u);
    rig.deliver(MsgType::FutexWake, 1, 1);
    // The wake finds the lock held: the sleeper must stay parked.
    EXPECT_EQ(rig.mgr.queueLength(0x1000), 1u);
    EXPECT_EQ(rig.countOfType(MsgType::WakeNotify), 0u);
}

TEST(LockManager, WakeRetrySafetyNetFiresEventually)
{
    LmRig rig;
    rig.deliver(MsgType::LockTry, 1, 1);
    rig.deliver(MsgType::FutexWait, 2, 2);
    // Holder's wake raced ahead and was dropped while held.
    rig.deliver(MsgType::FutexWake, 1, 1);
    EXPECT_EQ(rig.countOfType(MsgType::WakeNotify), 0u);
    rig.deliver(MsgType::LockRelease, 1, 1);
    // No further wake packet ever arrives; the retry must save the
    // parked sleeper.
    rig.run(rig.params.wakeRetryDelay + 10);
    EXPECT_EQ(rig.countOfType(MsgType::WakeNotify), 1u);
    EXPECT_EQ(rig.mgr.holderOf(0x1000), 2u);
}

TEST(LockManager, IndependentLocks)
{
    LmRig rig;
    rig.deliver(MsgType::LockTry, 1, 1, 0x1000);
    rig.deliver(MsgType::LockTry, 2, 2, 0x2000);
    EXPECT_EQ(rig.mgr.holderOf(0x1000), 1u);
    EXPECT_EQ(rig.mgr.holderOf(0x2000), 2u);
    EXPECT_EQ(rig.countOfType(MsgType::LockGrant), 2u);
}

TEST(LockManager, GrantInheritsRequestPriority)
{
    LmRig rig;
    OcorConfig on;
    on.enabled = true;
    auto pkt = makePacket(MsgType::LockTry, 2, 0, 0x1000);
    pkt->thread = 2;
    pkt->priority = makePriority(on, PriorityClass::LockTry, 1, 0);
    rig.mgr.handle(pkt, rig.now);
    rig.run(rig.params.homeLatency + 1);
    auto grant = rig.lastOfType(MsgType::LockGrant);
    ASSERT_NE(grant, nullptr);
    EXPECT_TRUE(grant->priority.check);
    EXPECT_EQ(grant->priority.priorityBits,
              pkt->priority.priorityBits);
}

TEST(LockManager, StatsTrackTraffic)
{
    LmRig rig;
    rig.deliver(MsgType::LockTry, 1, 1);
    rig.deliver(MsgType::LockTry, 2, 2);
    rig.deliver(MsgType::FutexWait, 2, 2);
    rig.deliver(MsgType::LockRelease, 1, 1);
    rig.deliver(MsgType::FutexWake, 1, 1);
    const auto &s = rig.mgr.stats();
    EXPECT_EQ(s.tries, 2u);
    EXPECT_EQ(s.grants, 1u);
    EXPECT_EQ(s.fails, 1u);
    EXPECT_EQ(s.releases, 1u);
    EXPECT_EQ(s.futexWaits, 1u);
    EXPECT_EQ(s.wakes, 1u);
}

// Stray releases (a duplicate of an already-processed release, or an
// orphan-grant return racing a re-acquisition) are absorbed, not
// honored: honoring one would free a lock someone else holds.
TEST(LockManager, ReleaseOfFreeLockAbsorbed)
{
    LmRig rig;
    rig.deliver(MsgType::LockRelease, 1, 1);
    EXPECT_FALSE(rig.mgr.heldNow(0x1000));
    EXPECT_EQ(rig.mgr.stats().strayReleases, 1u);
    EXPECT_EQ(rig.mgr.stats().releases, 0u);
}

TEST(LockManager, ReleaseByNonHolderAbsorbed)
{
    LmRig rig;
    rig.deliver(MsgType::LockTry, 1, 1);
    rig.deliver(MsgType::LockRelease, 2, 2);
    // Thread 1 still holds the lock; the stray release changed
    // nothing.
    EXPECT_TRUE(rig.mgr.heldNow(0x1000));
    EXPECT_EQ(rig.mgr.holderOf(0x1000), 1u);
    EXPECT_EQ(rig.mgr.stats().strayReleases, 1u);
    EXPECT_EQ(rig.mgr.stats().releases, 0u);
}

TEST(LockManager, DuplicateTryFromHolderRegrants)
{
    LmRig rig;
    rig.deliver(MsgType::LockTry, 1, 1);
    rig.deliver(MsgType::LockTry, 1, 1); // retransmitted duplicate
    EXPECT_TRUE(rig.mgr.heldNow(0x1000));
    EXPECT_EQ(rig.mgr.holderOf(0x1000), 1u);
    EXPECT_EQ(rig.countOfType(MsgType::LockGrant), 2u);
    EXPECT_EQ(rig.countOfType(MsgType::LockFail), 0u);
    EXPECT_EQ(rig.mgr.stats().duplicateTries, 1u);
    EXPECT_EQ(rig.mgr.stats().grants, 1u);
}

TEST(LockManager, DuplicateFutexWaitQueuesOnce)
{
    LmRig rig;
    rig.deliver(MsgType::LockTry, 1, 1);
    rig.deliver(MsgType::FutexWait, 2, 2);
    rig.deliver(MsgType::FutexWait, 2, 2); // retransmitted duplicate
    EXPECT_EQ(rig.mgr.queueLength(0x1000), 1u);
    EXPECT_EQ(rig.mgr.stats().duplicateWaits, 1u);
}

// Lost-WakeNotify recovery: a sleeper that already owns the lock
// re-registers (sleep watchdog) and the home re-sends the wake — but
// only when the watchdog is enabled, so default runs stay untouched.
TEST(LockManager, RewakeOnlyUnderSleepWatchdog)
{
    LmRig off;
    off.deliver(MsgType::LockTry, 1, 1);
    off.deliver(MsgType::FutexWait, 1, 1); // holder re-registers
    EXPECT_EQ(off.countOfType(MsgType::WakeNotify), 0u);
    EXPECT_EQ(off.mgr.stats().rewakes, 0u);

    LmRig on;
    on.params.sleepWatchdogCycles = 1000;
    LockManager mgr(0, on.params,
                    [&on](const PacketPtr &pkt, Cycle) {
                        on.sent.push_back(pkt);
                    });
    auto deliver = [&](MsgType type, ThreadId tid) {
        auto pkt = makePacket(type, tid, 0, 0x1000);
        pkt->thread = tid;
        mgr.handle(pkt, on.now);
        for (Cycle end = on.now + on.params.homeLatency + 1;
             on.now < end; ++on.now)
            mgr.tick(on.now);
    };
    deliver(MsgType::LockTry, 1);
    deliver(MsgType::FutexWait, 1);
    EXPECT_EQ(on.countOfType(MsgType::WakeNotify), 1u);
    EXPECT_EQ(mgr.stats().rewakes, 1u);
    EXPECT_TRUE(mgr.heldNow(0x1000));
    EXPECT_EQ(mgr.holderOf(0x1000), 1u);
}
