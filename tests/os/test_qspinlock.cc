/**
 * @file
 * Unit tests for the thread-side queue-spinlock state machine.
 */

#include <gtest/gtest.h>

#include <vector>

#include "os/qspinlock.hh"

using namespace ocor;

namespace
{

struct QsRig
{
    MeshShape mesh{2, 2};
    AddressMap amap{mesh, 128};
    OcorConfig ocor;
    OsParams os;
    Pcb pcb;
    std::vector<PacketPtr> sent;
    std::unique_ptr<QSpinlock> qs;
    Cycle now = 0;
    bool acquired = false;

    explicit QsRig(bool ocor_on = false)
    {
        ocor.enabled = ocor_on;
        pcb.tid = 0;
        pcb.node = 0;
        qs = std::make_unique<QSpinlock>(
            pcb, ocor, os, amap,
            [this](const PacketPtr &pkt, Cycle) {
                sent.push_back(pkt);
            });
    }

    void
    run(Cycle cycles)
    {
        for (Cycle end = now + cycles; now < end; ++now)
            qs->tick(now);
    }

    /** Respond to the last outstanding message of the given type. */
    void
    respond(MsgType type)
    {
        auto pkt = makePacket(type, 1, 0, 0x1000);
        pkt->thread = 0;
        qs->handle(pkt, now);
    }

    PacketPtr
    lastSent()
    {
        return sent.empty() ? nullptr : sent.back();
    }

    unsigned
    countOfType(MsgType t)
    {
        unsigned n = 0;
        for (const auto &p : sent)
            n += p->type == t ? 1 : 0;
        return n;
    }
};

} // namespace

TEST(QSpinlock, AcquireIssuesTryWithFullRtr)
{
    QsRig rig(true);
    rig.qs->acquire(0x1000, rig.now, [&](Cycle) {
        rig.acquired = true;
    });
    ASSERT_EQ(rig.sent.size(), 1u);
    EXPECT_EQ(rig.lastSent()->type, MsgType::LockTry);
    EXPECT_EQ(rig.pcb.regRtr, rig.ocor.maxSpinCount);
    EXPECT_EQ(rig.pcb.state, ThreadState::Spinning);
    EXPECT_TRUE(rig.lastSent()->priority.check);
}

TEST(QSpinlock, GrantEntersCriticalSection)
{
    QsRig rig;
    rig.qs->acquire(0x1000, rig.now, [&](Cycle) {
        rig.acquired = true;
    });
    rig.respond(MsgType::LockGrant);
    EXPECT_TRUE(rig.acquired);
    EXPECT_TRUE(rig.qs->holding());
    EXPECT_EQ(rig.pcb.state, ThreadState::InCS);
    EXPECT_EQ(rig.pcb.counters.spinWins, 1u);
    EXPECT_EQ(rig.pcb.counters.acquisitions, 1u);
}

TEST(QSpinlock, FailThenRemoteRetry)
{
    QsRig rig;
    rig.qs->acquire(0x1000, rig.now, [](Cycle) {});
    rig.respond(MsgType::LockFail);
    EXPECT_EQ(rig.countOfType(MsgType::LockTry), 1u);
    rig.run(rig.os.remoteTryInterval + 2);
    EXPECT_EQ(rig.countOfType(MsgType::LockTry), 2u)
        << "a remote revalidation must go out on the retry cadence";
}

TEST(QSpinlock, NotifyTriggersImmediateTry)
{
    QsRig rig;
    rig.qs->acquire(0x1000, rig.now, [](Cycle) {});
    rig.respond(MsgType::LockFail);
    rig.run(5);
    rig.respond(MsgType::LockFreeNotify);
    EXPECT_EQ(rig.countOfType(MsgType::LockTry), 2u)
        << "the release invalidation races a try immediately";
}

TEST(QSpinlock, NotifyIgnoredWhileTryInFlight)
{
    QsRig rig;
    rig.qs->acquire(0x1000, rig.now, [](Cycle) {});
    // No response yet: a notify must not duplicate the in-flight try.
    rig.respond(MsgType::LockFreeNotify);
    EXPECT_EQ(rig.countOfType(MsgType::LockTry), 1u);
}

TEST(QSpinlock, RtrDecreasesWithSpinTime)
{
    QsRig rig(true);
    rig.qs->acquire(0x1000, rig.now, [](Cycle) {});
    unsigned rtr0 = rig.qs->currentRtr(rig.now);
    EXPECT_EQ(rtr0, rig.ocor.maxSpinCount);
    unsigned rtr_mid =
        rig.qs->currentRtr(rig.now + 64 * rig.os.retryInterval);
    EXPECT_EQ(rtr_mid, rig.ocor.maxSpinCount - 64);
    unsigned rtr_late =
        rig.qs->currentRtr(rig.now + 10000 * rig.os.retryInterval);
    EXPECT_EQ(rtr_late, 1u) << "RTR saturates at 1";
}

TEST(QSpinlock, BudgetExhaustionLeadsToFutexWait)
{
    QsRig rig;
    rig.qs->acquire(0x1000, rig.now, [](Cycle) {});
    rig.respond(MsgType::LockFail);
    // Run past the whole spin budget plus the sleep preparation.
    Cycle budget = static_cast<Cycle>(rig.ocor.maxSpinCount)
        * rig.os.retryInterval;
    // Answer every retry with a fail so the budget really expires.
    for (Cycle end = rig.now + budget + rig.os.sleepPrepCycles + 10;
         rig.now < end; ++rig.now) {
        rig.qs->tick(rig.now);
        if (rig.lastSent()->type == MsgType::LockTry &&
            rig.pcb.state == ThreadState::Spinning)
            rig.respond(MsgType::LockFail);
    }
    EXPECT_EQ(rig.countOfType(MsgType::FutexWait), 1u);
    EXPECT_EQ(rig.pcb.state, ThreadState::Sleeping);
    EXPECT_EQ(rig.pcb.counters.sleeps, 1u);
    EXPECT_TRUE(rig.qs->everSleptThisWait());
}

TEST(QSpinlock, WakeNotifyEntersCsAfterWakeupCost)
{
    QsRig rig;
    rig.qs->acquire(0x1000, rig.now, [&](Cycle) {
        rig.acquired = true;
    });
    rig.respond(MsgType::LockFail);
    // Force the sleep path.
    Cycle budget = static_cast<Cycle>(rig.ocor.maxSpinCount)
        * rig.os.retryInterval;
    for (Cycle end = rig.now + budget + rig.os.sleepPrepCycles + 10;
         rig.now < end; ++rig.now) {
        rig.qs->tick(rig.now);
        if (rig.pcb.state == ThreadState::Spinning &&
            rig.lastSent()->type == MsgType::LockTry)
            rig.respond(MsgType::LockFail);
    }
    ASSERT_EQ(rig.pcb.state, ThreadState::Sleeping);

    rig.respond(MsgType::WakeNotify);
    EXPECT_EQ(rig.pcb.state, ThreadState::Waking);
    EXPECT_FALSE(rig.acquired);
    rig.run(rig.os.wakeupCycles + 2);
    EXPECT_TRUE(rig.acquired);
    EXPECT_EQ(rig.pcb.state, ThreadState::InCS);
    EXPECT_EQ(rig.pcb.counters.sleepWins, 1u);
}

TEST(QSpinlock, ReleaseSendsReleaseThenDelayedWake)
{
    QsRig rig;
    rig.qs->acquire(0x1000, rig.now, [](Cycle) {});
    rig.respond(MsgType::LockGrant);
    std::uint64_t prog_before = rig.pcb.prog;
    rig.qs->release(rig.now);
    EXPECT_EQ(rig.lastSent()->type, MsgType::LockRelease);
    EXPECT_EQ(rig.pcb.prog, prog_before + 1) << "Algorithm 2 PROG++";
    EXPECT_EQ(rig.countOfType(MsgType::FutexWake), 0u);
    rig.run(rig.os.futexWakeDelay + 2);
    EXPECT_EQ(rig.countOfType(MsgType::FutexWake), 1u);
    EXPECT_EQ(rig.pcb.state, ThreadState::Running);
    EXPECT_FALSE(rig.qs->holding());
}

TEST(QSpinlock, OcorStampsRtrAndWakeupPriorities)
{
    QsRig rig(true);
    rig.qs->acquire(0x1000, rig.now, [](Cycle) {});
    auto try_pkt = rig.lastSent();
    EXPECT_TRUE(try_pkt->priority.check);
    // Fresh try: largest RTR -> lowest locking level (1).
    EXPECT_EQ(onehotDecode(try_pkt->priority.priorityBits), 1u);

    rig.respond(MsgType::LockGrant);
    rig.qs->release(rig.now);
    auto rel = rig.lastSent();
    EXPECT_EQ(onehotDecode(rel->priority.priorityBits),
              rig.ocor.numRtrLevels);
    rig.run(rig.os.futexWakeDelay + 2);
    auto wake = rig.lastSent();
    ASSERT_EQ(wake->type, MsgType::FutexWake);
    EXPECT_EQ(onehotDecode(wake->priority.priorityBits), 0u)
        << "Wakeup Request Last";
}

TEST(QSpinlock, BaselineSendsUnstampedPackets)
{
    QsRig rig(false);
    rig.qs->acquire(0x1000, rig.now, [](Cycle) {});
    EXPECT_FALSE(rig.lastSent()->priority.check);
}

TEST(QSpinlockDeath, DoubleAcquirePanics)
{
    QsRig rig;
    rig.qs->acquire(0x1000, rig.now, [](Cycle) {});
    EXPECT_DEATH(rig.qs->acquire(0x2000, rig.now, [](Cycle) {}),
                 "busy");
}

TEST(QSpinlockDeath, ReleaseWithoutHoldPanics)
{
    QsRig rig;
    EXPECT_DEATH(rig.qs->release(rig.now), "without hold");
}
