# Empty dependencies file for fig15_scalability.
# This may be replaced when dependencies are built.
