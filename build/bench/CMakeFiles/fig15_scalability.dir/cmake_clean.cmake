file(REMOVE_RECURSE
  "CMakeFiles/fig15_scalability.dir/fig15_scalability.cpp.o"
  "CMakeFiles/fig15_scalability.dir/fig15_scalability.cpp.o.d"
  "fig15_scalability"
  "fig15_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
