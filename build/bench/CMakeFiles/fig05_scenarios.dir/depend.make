# Empty dependencies file for fig05_scenarios.
# This may be replaced when dependencies are built.
