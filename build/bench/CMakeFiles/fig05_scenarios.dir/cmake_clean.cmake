file(REMOVE_RECURSE
  "CMakeFiles/fig05_scenarios.dir/fig05_scenarios.cpp.o"
  "CMakeFiles/fig05_scenarios.dir/fig05_scenarios.cpp.o.d"
  "fig05_scenarios"
  "fig05_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
