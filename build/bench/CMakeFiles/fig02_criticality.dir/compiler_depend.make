# Empty compiler generated dependencies file for fig02_criticality.
# This may be replaced when dependencies are built.
