file(REMOVE_RECURSE
  "CMakeFiles/fig02_criticality.dir/fig02_criticality.cpp.o"
  "CMakeFiles/fig02_criticality.dir/fig02_criticality.cpp.o.d"
  "fig02_criticality"
  "fig02_criticality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_criticality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
