# Empty compiler generated dependencies file for fig08_scheduling.
# This may be replaced when dependencies are built.
