file(REMOVE_RECURSE
  "CMakeFiles/fig08_scheduling.dir/fig08_scheduling.cpp.o"
  "CMakeFiles/fig08_scheduling.dir/fig08_scheduling.cpp.o.d"
  "fig08_scheduling"
  "fig08_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
