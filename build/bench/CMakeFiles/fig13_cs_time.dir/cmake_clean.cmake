file(REMOVE_RECURSE
  "CMakeFiles/fig13_cs_time.dir/fig13_cs_time.cpp.o"
  "CMakeFiles/fig13_cs_time.dir/fig13_cs_time.cpp.o.d"
  "fig13_cs_time"
  "fig13_cs_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_cs_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
