# Empty dependencies file for fig13_cs_time.
# This may be replaced when dependencies are built.
