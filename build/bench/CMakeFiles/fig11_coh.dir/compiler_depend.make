# Empty compiler generated dependencies file for fig11_coh.
# This may be replaced when dependencies are built.
