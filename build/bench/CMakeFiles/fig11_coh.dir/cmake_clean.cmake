file(REMOVE_RECURSE
  "CMakeFiles/fig11_coh.dir/fig11_coh.cpp.o"
  "CMakeFiles/fig11_coh.dir/fig11_coh.cpp.o.d"
  "fig11_coh"
  "fig11_coh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_coh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
