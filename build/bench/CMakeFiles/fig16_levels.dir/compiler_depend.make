# Empty compiler generated dependencies file for fig16_levels.
# This may be replaced when dependencies are built.
