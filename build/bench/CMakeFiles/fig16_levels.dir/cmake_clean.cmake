file(REMOVE_RECURSE
  "CMakeFiles/fig16_levels.dir/fig16_levels.cpp.o"
  "CMakeFiles/fig16_levels.dir/fig16_levels.cpp.o.d"
  "fig16_levels"
  "fig16_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
