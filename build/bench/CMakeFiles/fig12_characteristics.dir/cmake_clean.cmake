file(REMOVE_RECURSE
  "CMakeFiles/fig12_characteristics.dir/fig12_characteristics.cpp.o"
  "CMakeFiles/fig12_characteristics.dir/fig12_characteristics.cpp.o.d"
  "fig12_characteristics"
  "fig12_characteristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_characteristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
