# Empty dependencies file for fig12_characteristics.
# This may be replaced when dependencies are built.
