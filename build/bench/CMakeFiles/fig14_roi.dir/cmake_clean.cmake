file(REMOVE_RECURSE
  "CMakeFiles/fig14_roi.dir/fig14_roi.cpp.o"
  "CMakeFiles/fig14_roi.dir/fig14_roi.cpp.o.d"
  "fig14_roi"
  "fig14_roi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_roi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
