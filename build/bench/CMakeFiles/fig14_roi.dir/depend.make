# Empty dependencies file for fig14_roi.
# This may be replaced when dependencies are built.
