file(REMOVE_RECURSE
  "CMakeFiles/fig10_profile.dir/fig10_profile.cpp.o"
  "CMakeFiles/fig10_profile.dir/fig10_profile.cpp.o.d"
  "fig10_profile"
  "fig10_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
