# Empty compiler generated dependencies file for fig10_profile.
# This may be replaced when dependencies are built.
