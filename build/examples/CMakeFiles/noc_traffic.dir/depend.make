# Empty dependencies file for noc_traffic.
# This may be replaced when dependencies are built.
