file(REMOVE_RECURSE
  "CMakeFiles/noc_traffic.dir/noc_traffic.cpp.o"
  "CMakeFiles/noc_traffic.dir/noc_traffic.cpp.o.d"
  "noc_traffic"
  "noc_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noc_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
