file(REMOVE_RECURSE
  "CMakeFiles/priority_tuning.dir/priority_tuning.cpp.o"
  "CMakeFiles/priority_tuning.dir/priority_tuning.cpp.o.d"
  "priority_tuning"
  "priority_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/priority_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
