# Empty dependencies file for priority_tuning.
# This may be replaced when dependencies are built.
