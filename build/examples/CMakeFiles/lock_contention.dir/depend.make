# Empty dependencies file for lock_contention.
# This may be replaced when dependencies are built.
