file(REMOVE_RECURSE
  "libocor.a"
)
