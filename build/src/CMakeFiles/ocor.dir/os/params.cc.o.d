src/CMakeFiles/ocor.dir/os/params.cc.o: /root/repo/src/os/params.cc \
 /usr/include/stdc-predef.h /root/repo/src/os/params.hh
