
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/log.cc" "src/CMakeFiles/ocor.dir/common/log.cc.o" "gcc" "src/CMakeFiles/ocor.dir/common/log.cc.o.d"
  "/root/repo/src/common/onehot.cc" "src/CMakeFiles/ocor.dir/common/onehot.cc.o" "gcc" "src/CMakeFiles/ocor.dir/common/onehot.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/ocor.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/ocor.dir/common/rng.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/ocor.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/ocor.dir/common/stats.cc.o.d"
  "/root/repo/src/core/ocor_config.cc" "src/CMakeFiles/ocor.dir/core/ocor_config.cc.o" "gcc" "src/CMakeFiles/ocor.dir/core/ocor_config.cc.o.d"
  "/root/repo/src/core/priority.cc" "src/CMakeFiles/ocor.dir/core/priority.cc.o" "gcc" "src/CMakeFiles/ocor.dir/core/priority.cc.o.d"
  "/root/repo/src/cpu/core.cc" "src/CMakeFiles/ocor.dir/cpu/core.cc.o" "gcc" "src/CMakeFiles/ocor.dir/cpu/core.cc.o.d"
  "/root/repo/src/mem/address_map.cc" "src/CMakeFiles/ocor.dir/mem/address_map.cc.o" "gcc" "src/CMakeFiles/ocor.dir/mem/address_map.cc.o.d"
  "/root/repo/src/mem/cache_array.cc" "src/CMakeFiles/ocor.dir/mem/cache_array.cc.o" "gcc" "src/CMakeFiles/ocor.dir/mem/cache_array.cc.o.d"
  "/root/repo/src/mem/l1_cache.cc" "src/CMakeFiles/ocor.dir/mem/l1_cache.cc.o" "gcc" "src/CMakeFiles/ocor.dir/mem/l1_cache.cc.o.d"
  "/root/repo/src/mem/l2_directory.cc" "src/CMakeFiles/ocor.dir/mem/l2_directory.cc.o" "gcc" "src/CMakeFiles/ocor.dir/mem/l2_directory.cc.o.d"
  "/root/repo/src/mem/mem_controller.cc" "src/CMakeFiles/ocor.dir/mem/mem_controller.cc.o" "gcc" "src/CMakeFiles/ocor.dir/mem/mem_controller.cc.o.d"
  "/root/repo/src/noc/arbiter.cc" "src/CMakeFiles/ocor.dir/noc/arbiter.cc.o" "gcc" "src/CMakeFiles/ocor.dir/noc/arbiter.cc.o.d"
  "/root/repo/src/noc/flit.cc" "src/CMakeFiles/ocor.dir/noc/flit.cc.o" "gcc" "src/CMakeFiles/ocor.dir/noc/flit.cc.o.d"
  "/root/repo/src/noc/input_unit.cc" "src/CMakeFiles/ocor.dir/noc/input_unit.cc.o" "gcc" "src/CMakeFiles/ocor.dir/noc/input_unit.cc.o.d"
  "/root/repo/src/noc/link.cc" "src/CMakeFiles/ocor.dir/noc/link.cc.o" "gcc" "src/CMakeFiles/ocor.dir/noc/link.cc.o.d"
  "/root/repo/src/noc/network.cc" "src/CMakeFiles/ocor.dir/noc/network.cc.o" "gcc" "src/CMakeFiles/ocor.dir/noc/network.cc.o.d"
  "/root/repo/src/noc/network_interface.cc" "src/CMakeFiles/ocor.dir/noc/network_interface.cc.o" "gcc" "src/CMakeFiles/ocor.dir/noc/network_interface.cc.o.d"
  "/root/repo/src/noc/output_unit.cc" "src/CMakeFiles/ocor.dir/noc/output_unit.cc.o" "gcc" "src/CMakeFiles/ocor.dir/noc/output_unit.cc.o.d"
  "/root/repo/src/noc/packet.cc" "src/CMakeFiles/ocor.dir/noc/packet.cc.o" "gcc" "src/CMakeFiles/ocor.dir/noc/packet.cc.o.d"
  "/root/repo/src/noc/router.cc" "src/CMakeFiles/ocor.dir/noc/router.cc.o" "gcc" "src/CMakeFiles/ocor.dir/noc/router.cc.o.d"
  "/root/repo/src/noc/routing.cc" "src/CMakeFiles/ocor.dir/noc/routing.cc.o" "gcc" "src/CMakeFiles/ocor.dir/noc/routing.cc.o.d"
  "/root/repo/src/os/lock_manager.cc" "src/CMakeFiles/ocor.dir/os/lock_manager.cc.o" "gcc" "src/CMakeFiles/ocor.dir/os/lock_manager.cc.o.d"
  "/root/repo/src/os/params.cc" "src/CMakeFiles/ocor.dir/os/params.cc.o" "gcc" "src/CMakeFiles/ocor.dir/os/params.cc.o.d"
  "/root/repo/src/os/pcb.cc" "src/CMakeFiles/ocor.dir/os/pcb.cc.o" "gcc" "src/CMakeFiles/ocor.dir/os/pcb.cc.o.d"
  "/root/repo/src/os/qspinlock.cc" "src/CMakeFiles/ocor.dir/os/qspinlock.cc.o" "gcc" "src/CMakeFiles/ocor.dir/os/qspinlock.cc.o.d"
  "/root/repo/src/sim/config.cc" "src/CMakeFiles/ocor.dir/sim/config.cc.o" "gcc" "src/CMakeFiles/ocor.dir/sim/config.cc.o.d"
  "/root/repo/src/sim/experiment.cc" "src/CMakeFiles/ocor.dir/sim/experiment.cc.o" "gcc" "src/CMakeFiles/ocor.dir/sim/experiment.cc.o.d"
  "/root/repo/src/sim/metrics.cc" "src/CMakeFiles/ocor.dir/sim/metrics.cc.o" "gcc" "src/CMakeFiles/ocor.dir/sim/metrics.cc.o.d"
  "/root/repo/src/sim/result_cache.cc" "src/CMakeFiles/ocor.dir/sim/result_cache.cc.o" "gcc" "src/CMakeFiles/ocor.dir/sim/result_cache.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/CMakeFiles/ocor.dir/sim/simulator.cc.o" "gcc" "src/CMakeFiles/ocor.dir/sim/simulator.cc.o.d"
  "/root/repo/src/sim/system.cc" "src/CMakeFiles/ocor.dir/sim/system.cc.o" "gcc" "src/CMakeFiles/ocor.dir/sim/system.cc.o.d"
  "/root/repo/src/workload/benchmarks.cc" "src/CMakeFiles/ocor.dir/workload/benchmarks.cc.o" "gcc" "src/CMakeFiles/ocor.dir/workload/benchmarks.cc.o.d"
  "/root/repo/src/workload/program.cc" "src/CMakeFiles/ocor.dir/workload/program.cc.o" "gcc" "src/CMakeFiles/ocor.dir/workload/program.cc.o.d"
  "/root/repo/src/workload/synthetic.cc" "src/CMakeFiles/ocor.dir/workload/synthetic.cc.o" "gcc" "src/CMakeFiles/ocor.dir/workload/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
