# Empty compiler generated dependencies file for ocor.
# This may be replaced when dependencies are built.
