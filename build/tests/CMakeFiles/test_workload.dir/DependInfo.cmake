
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/workload/test_benchmarks.cc" "tests/CMakeFiles/test_workload.dir/workload/test_benchmarks.cc.o" "gcc" "tests/CMakeFiles/test_workload.dir/workload/test_benchmarks.cc.o.d"
  "/root/repo/tests/workload/test_program.cc" "tests/CMakeFiles/test_workload.dir/workload/test_program.cc.o" "gcc" "tests/CMakeFiles/test_workload.dir/workload/test_program.cc.o.d"
  "/root/repo/tests/workload/test_synthetic.cc" "tests/CMakeFiles/test_workload.dir/workload/test_synthetic.cc.o" "gcc" "tests/CMakeFiles/test_workload.dir/workload/test_synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ocor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
