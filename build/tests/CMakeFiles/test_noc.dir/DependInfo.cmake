
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/noc/test_arbiter.cc" "tests/CMakeFiles/test_noc.dir/noc/test_arbiter.cc.o" "gcc" "tests/CMakeFiles/test_noc.dir/noc/test_arbiter.cc.o.d"
  "/root/repo/tests/noc/test_link.cc" "tests/CMakeFiles/test_noc.dir/noc/test_link.cc.o" "gcc" "tests/CMakeFiles/test_noc.dir/noc/test_link.cc.o.d"
  "/root/repo/tests/noc/test_network.cc" "tests/CMakeFiles/test_noc.dir/noc/test_network.cc.o" "gcc" "tests/CMakeFiles/test_noc.dir/noc/test_network.cc.o.d"
  "/root/repo/tests/noc/test_network_interface.cc" "tests/CMakeFiles/test_noc.dir/noc/test_network_interface.cc.o" "gcc" "tests/CMakeFiles/test_noc.dir/noc/test_network_interface.cc.o.d"
  "/root/repo/tests/noc/test_network_param.cc" "tests/CMakeFiles/test_noc.dir/noc/test_network_param.cc.o" "gcc" "tests/CMakeFiles/test_noc.dir/noc/test_network_param.cc.o.d"
  "/root/repo/tests/noc/test_packet.cc" "tests/CMakeFiles/test_noc.dir/noc/test_packet.cc.o" "gcc" "tests/CMakeFiles/test_noc.dir/noc/test_packet.cc.o.d"
  "/root/repo/tests/noc/test_router.cc" "tests/CMakeFiles/test_noc.dir/noc/test_router.cc.o" "gcc" "tests/CMakeFiles/test_noc.dir/noc/test_router.cc.o.d"
  "/root/repo/tests/noc/test_router_stress.cc" "tests/CMakeFiles/test_noc.dir/noc/test_router_stress.cc.o" "gcc" "tests/CMakeFiles/test_noc.dir/noc/test_router_stress.cc.o.d"
  "/root/repo/tests/noc/test_routing.cc" "tests/CMakeFiles/test_noc.dir/noc/test_routing.cc.o" "gcc" "tests/CMakeFiles/test_noc.dir/noc/test_routing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ocor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
