file(REMOVE_RECURSE
  "CMakeFiles/test_noc.dir/noc/test_arbiter.cc.o"
  "CMakeFiles/test_noc.dir/noc/test_arbiter.cc.o.d"
  "CMakeFiles/test_noc.dir/noc/test_link.cc.o"
  "CMakeFiles/test_noc.dir/noc/test_link.cc.o.d"
  "CMakeFiles/test_noc.dir/noc/test_network.cc.o"
  "CMakeFiles/test_noc.dir/noc/test_network.cc.o.d"
  "CMakeFiles/test_noc.dir/noc/test_network_interface.cc.o"
  "CMakeFiles/test_noc.dir/noc/test_network_interface.cc.o.d"
  "CMakeFiles/test_noc.dir/noc/test_network_param.cc.o"
  "CMakeFiles/test_noc.dir/noc/test_network_param.cc.o.d"
  "CMakeFiles/test_noc.dir/noc/test_packet.cc.o"
  "CMakeFiles/test_noc.dir/noc/test_packet.cc.o.d"
  "CMakeFiles/test_noc.dir/noc/test_router.cc.o"
  "CMakeFiles/test_noc.dir/noc/test_router.cc.o.d"
  "CMakeFiles/test_noc.dir/noc/test_router_stress.cc.o"
  "CMakeFiles/test_noc.dir/noc/test_router_stress.cc.o.d"
  "CMakeFiles/test_noc.dir/noc/test_routing.cc.o"
  "CMakeFiles/test_noc.dir/noc/test_routing.cc.o.d"
  "test_noc"
  "test_noc.pdb"
  "test_noc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
