
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mem/test_address_map.cc" "tests/CMakeFiles/test_mem.dir/mem/test_address_map.cc.o" "gcc" "tests/CMakeFiles/test_mem.dir/mem/test_address_map.cc.o.d"
  "/root/repo/tests/mem/test_cache_array.cc" "tests/CMakeFiles/test_mem.dir/mem/test_cache_array.cc.o" "gcc" "tests/CMakeFiles/test_mem.dir/mem/test_cache_array.cc.o.d"
  "/root/repo/tests/mem/test_coherence.cc" "tests/CMakeFiles/test_mem.dir/mem/test_coherence.cc.o" "gcc" "tests/CMakeFiles/test_mem.dir/mem/test_coherence.cc.o.d"
  "/root/repo/tests/mem/test_coherence_param.cc" "tests/CMakeFiles/test_mem.dir/mem/test_coherence_param.cc.o" "gcc" "tests/CMakeFiles/test_mem.dir/mem/test_coherence_param.cc.o.d"
  "/root/repo/tests/mem/test_l1_cache.cc" "tests/CMakeFiles/test_mem.dir/mem/test_l1_cache.cc.o" "gcc" "tests/CMakeFiles/test_mem.dir/mem/test_l1_cache.cc.o.d"
  "/root/repo/tests/mem/test_mem_controller.cc" "tests/CMakeFiles/test_mem.dir/mem/test_mem_controller.cc.o" "gcc" "tests/CMakeFiles/test_mem.dir/mem/test_mem_controller.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ocor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
