file(REMOVE_RECURSE
  "CMakeFiles/test_mem.dir/mem/test_address_map.cc.o"
  "CMakeFiles/test_mem.dir/mem/test_address_map.cc.o.d"
  "CMakeFiles/test_mem.dir/mem/test_cache_array.cc.o"
  "CMakeFiles/test_mem.dir/mem/test_cache_array.cc.o.d"
  "CMakeFiles/test_mem.dir/mem/test_coherence.cc.o"
  "CMakeFiles/test_mem.dir/mem/test_coherence.cc.o.d"
  "CMakeFiles/test_mem.dir/mem/test_coherence_param.cc.o"
  "CMakeFiles/test_mem.dir/mem/test_coherence_param.cc.o.d"
  "CMakeFiles/test_mem.dir/mem/test_l1_cache.cc.o"
  "CMakeFiles/test_mem.dir/mem/test_l1_cache.cc.o.d"
  "CMakeFiles/test_mem.dir/mem/test_mem_controller.cc.o"
  "CMakeFiles/test_mem.dir/mem/test_mem_controller.cc.o.d"
  "test_mem"
  "test_mem.pdb"
  "test_mem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
