file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/sim/test_experiment.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_experiment.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/test_failure_injection.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_failure_injection.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/test_metrics.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_metrics.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/test_ocor_effect.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_ocor_effect.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/test_result_cache.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_result_cache.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/test_simulator.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_simulator.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/test_system.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_system.cc.o.d"
  "test_sim"
  "test_sim.pdb"
  "test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
