
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/test_experiment.cc" "tests/CMakeFiles/test_sim.dir/sim/test_experiment.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_experiment.cc.o.d"
  "/root/repo/tests/sim/test_failure_injection.cc" "tests/CMakeFiles/test_sim.dir/sim/test_failure_injection.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_failure_injection.cc.o.d"
  "/root/repo/tests/sim/test_metrics.cc" "tests/CMakeFiles/test_sim.dir/sim/test_metrics.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_metrics.cc.o.d"
  "/root/repo/tests/sim/test_ocor_effect.cc" "tests/CMakeFiles/test_sim.dir/sim/test_ocor_effect.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_ocor_effect.cc.o.d"
  "/root/repo/tests/sim/test_result_cache.cc" "tests/CMakeFiles/test_sim.dir/sim/test_result_cache.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_result_cache.cc.o.d"
  "/root/repo/tests/sim/test_simulator.cc" "tests/CMakeFiles/test_sim.dir/sim/test_simulator.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_simulator.cc.o.d"
  "/root/repo/tests/sim/test_system.cc" "tests/CMakeFiles/test_sim.dir/sim/test_system.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ocor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
