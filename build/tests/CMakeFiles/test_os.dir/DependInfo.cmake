
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/os/test_lock_manager.cc" "tests/CMakeFiles/test_os.dir/os/test_lock_manager.cc.o" "gcc" "tests/CMakeFiles/test_os.dir/os/test_lock_manager.cc.o.d"
  "/root/repo/tests/os/test_lock_modes.cc" "tests/CMakeFiles/test_os.dir/os/test_lock_modes.cc.o" "gcc" "tests/CMakeFiles/test_os.dir/os/test_lock_modes.cc.o.d"
  "/root/repo/tests/os/test_qspinlock.cc" "tests/CMakeFiles/test_os.dir/os/test_qspinlock.cc.o" "gcc" "tests/CMakeFiles/test_os.dir/os/test_qspinlock.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ocor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
