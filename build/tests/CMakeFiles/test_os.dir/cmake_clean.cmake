file(REMOVE_RECURSE
  "CMakeFiles/test_os.dir/os/test_lock_manager.cc.o"
  "CMakeFiles/test_os.dir/os/test_lock_manager.cc.o.d"
  "CMakeFiles/test_os.dir/os/test_lock_modes.cc.o"
  "CMakeFiles/test_os.dir/os/test_lock_modes.cc.o.d"
  "CMakeFiles/test_os.dir/os/test_qspinlock.cc.o"
  "CMakeFiles/test_os.dir/os/test_qspinlock.cc.o.d"
  "test_os"
  "test_os.pdb"
  "test_os[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
