
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_ocor_config.cc" "tests/CMakeFiles/test_core.dir/core/test_ocor_config.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_ocor_config.cc.o.d"
  "/root/repo/tests/core/test_priority.cc" "tests/CMakeFiles/test_core.dir/core/test_priority.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_priority.cc.o.d"
  "/root/repo/tests/core/test_priority_param.cc" "tests/CMakeFiles/test_core.dir/core/test_priority_param.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_priority_param.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ocor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
