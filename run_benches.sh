#!/bin/bash
# Regenerate every figure/table of the paper's evaluation.
#
# The sweep fans simulations out across a task pool (see DESIGN.md
# §9): each bench takes --jobs N and full 64-thread runs are memoized
# in ocor_results.tsv (build directory), so the 25-benchmark sweep is
# simulated only once even across benches.
#
# Usage: ./run_benches.sh [options] [extra bench flags...]
#   --jobs N          worker threads per bench (default: $OCOR_JOBS,
#                     else the machine's hardware concurrency)
#   --quick           forward --quick to every simulation bench
#                     (16 threads, short runs; CI smoke mode)
#   --compare-serial  first run the sweep with --jobs 1 --fresh, then
#                     with --jobs N --fresh, and report the speedup
#   --compare-event   first run the sweep on the legacy per-cycle core
#                     (--legacy-tick --fresh), then on the event core
#                     (--fresh); each bench row in BENCH_sweep.json
#                     gains legacy_seconds / event_speedup, and a
#                     final hybrid-fidelity leg (fig11 with
#                     --fidelity hybrid) records the analytic fast
#                     path's speedup over the exact event core
#   --observe         turn the observability stack on for the sweep
#                     (DESIGN.md §10): fig10 exports an event trace
#                     (build/trace.json), a stats-registry dump
#                     (build/stats.json) and interval telemetry
#                     (build/telemetry.csv); table3 reports worker-pool
#                     utilization, which is folded into
#                     build/BENCH_sweep.json
#   --resume          crash recovery (DESIGN.md §12): reuse the
#                     results journal from an interrupted sweep, so
#                     only configurations whose rows never became
#                     durable are re-simulated
#   --baseline FILE   after the sweep, diff build/BENCH_sweep.json
#                     against FILE (a previous sweep's JSON) with
#                     scripts/bench_compare.py; a wall-clock, status
#                     or COH regression fails the script (exit 1) and
#                     the comparison lands in build/bench_compare.json
#   anything else is forwarded verbatim to every simulation bench
#   (e.g. --iters 8 --seed 3), after the curated per-bench flags so
#   user flags win.
#
# Per-bench and total wall-clock times are printed and written as
# machine-readable JSON to build/BENCH_sweep.json, together with a
# per-bench status ("ok", "degraded" for exit 75, "failed").
#
# A failing benchmark no longer aborts the sweep: every bench runs,
# failures are summarized at the end, and the script exits 1 if any
# bench failed hard (or 75 if benches only degraded).
set -euo pipefail
SELF="$(readlink -f "$0")"
ORIG_PWD="$PWD"
cd "$(dirname "$SELF")/build"

JOBS="${OCOR_JOBS:-$(nproc)}"
QUICK=0
COMPARE_SERIAL=0
COMPARE_EVENT=0
OBSERVE=0
RESUME=0
BASELINE=""
EXTRA=()
while [ $# -gt 0 ]; do
    case "$1" in
      --jobs) JOBS="$2"; shift 2 ;;
      --jobs=*) JOBS="${1#--jobs=}"; shift ;;
      --quick) QUICK=1; shift ;;
      --compare-serial) COMPARE_SERIAL=1; shift ;;
      --compare-event) COMPARE_EVENT=1; shift ;;
      --observe) OBSERVE=1; shift ;;
      --resume) RESUME=1; shift ;;
      --baseline) BASELINE="$2"; shift 2 ;;
      --baseline=*) BASELINE="${1#--baseline=}"; shift ;;
      -h|--help)
        sed -n '2,42p' "$SELF" | sed 's/^# \{0,1\}//'
        exit 0 ;;
      *) EXTRA+=("$1"); shift ;;
    esac
done

if [ "$RESUME" -eq 1 ] \
   && { [ "$COMPARE_SERIAL" -eq 1 ] || [ "$COMPARE_EVENT" -eq 1 ]; }
then
    echo "error: --resume is mutually exclusive with the compare" \
         "modes (they force --fresh)" >&2
    exit 1
fi
if [ "$COMPARE_SERIAL" -eq 1 ] && [ "$COMPARE_EVENT" -eq 1 ]; then
    echo "error: pick one of --compare-serial / --compare-event" >&2
    exit 1
fi
if [ -n "$BASELINE" ]; then
    case "$BASELINE" in
      /*) ;;
      *) BASELINE="$ORIG_PWD/$BASELINE" ;;
    esac
    if [ ! -f "$BASELINE" ]; then
        echo "error: --baseline $BASELINE: no such file" >&2
        exit 1
    fi
fi
if [ "$RESUME" -eq 1 ]; then
    if [ -f ocor_results.tsv ]; then
        rows=$(grep -c -v '^#' ocor_results.tsv || true)
        echo "resume: $rows durable result row(s) in" \
             "ocor_results.tsv; matching configurations are" \
             "recalled, not re-simulated"
    else
        echo "resume: no ocor_results.tsv yet; running from scratch"
    fi
fi

# Curated observability flags (only with --observe). fig10 is the
# traced run; table3 owns the shared runner, so it reports the pool.
OBS_FIG10=()
OBS_TABLE3=()
if [ "$OBSERVE" -eq 1 ]; then
    OBS_FIG10=(--trace=lock,noc,sim --trace-out trace.json
               --trace-capacity 2097152
               --stats-json stats.json --telemetry-interval 200
               --telemetry-out telemetry.csv --coh-ledger
               --wake-profile)
    OBS_TABLE3=(--pool-util --stats-json runner_stats.json)
fi

SWEEP_JSON="BENCH_sweep.json"
# A stale COH summary from an earlier sweep must never be folded
# into this sweep's JSON (fig11 rewrites it on every run).
rm -f coh_summary.json
RECORD=1
ROWS=()
FAILED=()
DEGRADED=()
declare -A LEGACY_BY_BENCH  # per-bench legacy-core reference seconds
declare -A MAIN_BY_BENCH    # per-bench recorded-pass seconds

elapsed() { # elapsed <t0> <t1>
    awk -v a="$1" -v b="$2" 'BEGIN { printf "%.3f", b - a }'
}

run_bench() { # run_bench <label> <cmd...>
    local label="$1"
    shift
    echo
    echo "################ $label: $* ################"
    local t0 t1 dt status=0 verdict
    t0=$(date +%s.%N)
    "$@" || status=$?
    t1=$(date +%s.%N)
    dt=$(elapsed "$t0" "$t1")
    case "$status" in
      0)  verdict=ok ;;
      75) verdict=degraded
          DEGRADED+=("$label")
          echo "warning: $label completed degraded (exit 75)" >&2 ;;
      *)  verdict=failed
          FAILED+=("$label")
          echo "error: $label failed (exit $status): $*" >&2 ;;
    esac
    echo "### $label: ${dt}s ($verdict)"
    if [ "$RECORD" -eq 1 ]; then
        MAIN_BY_BENCH[$label]="$dt"
        local extra_fields=""
        local leg="${LEGACY_BY_BENCH[$label]:-}"
        if [ -n "$leg" ]; then
            local sp
            sp=$(awk -v l="$leg" -v e="$dt" \
                'BEGIN { printf "%.2f", (e > 0 ? l / e : 0) }')
            extra_fields=", \"legacy_seconds\": $leg,"
            extra_fields+=" \"event_speedup\": $sp"
        fi
        ROWS+=("    {\"name\": \"$label\", \"seconds\": $dt,"\
" \"status\": \"$verdict\", \"exit_code\": $status$extra_fields}")
    elif [ "$COMPARE_EVENT" -eq 1 ]; then
        LEGACY_BY_BENCH[$label]="$dt"
    fi
}

sweep() { # sweep <jobs> [extra sim flags...]
    local jobs="$1"
    shift
    local sf=(--jobs "$jobs")
    if [ "$QUICK" -eq 1 ]; then
        sf+=(--quick)
    fi
    sf+=("$@")
    run_bench fig02_criticality \
        ./bench/fig02_criticality "${sf[@]}" "${EXTRA[@]}"
    # fig05/fig08 are fixed single-scenario illustrations: no flags.
    run_bench fig05_scenarios ./bench/fig05_scenarios
    run_bench fig08_scheduling ./bench/fig08_scheduling
    run_bench fig10_profile \
        ./bench/fig10_profile "${sf[@]}" "${OBS_FIG10[@]}" \
        "${EXTRA[@]}"
    run_bench fig11_coh \
        ./bench/fig11_coh "${sf[@]}" "${EXTRA[@]}"
    run_bench fig12_characteristics \
        ./bench/fig12_characteristics "${sf[@]}" "${EXTRA[@]}"
    run_bench fig13_cs_time \
        ./bench/fig13_cs_time "${sf[@]}" "${EXTRA[@]}"
    run_bench fig14_roi \
        ./bench/fig14_roi "${sf[@]}" "${EXTRA[@]}"
    run_bench fig15_scalability \
        ./bench/fig15_scalability "${sf[@]}" --iters 4 "${EXTRA[@]}"
    run_bench fig16_levels \
        ./bench/fig16_levels "${sf[@]}" --quick --iters 3 --ablate \
        "${EXTRA[@]}"
    run_bench table3_summary \
        ./bench/table3_summary "${sf[@]}" "${OBS_TABLE3[@]}" \
        "${EXTRA[@]}"
    run_bench micro_router \
        ./bench/micro_router --benchmark_min_time=0.05
    run_bench micro_sim_tick \
        ./bench/micro_sim_tick --benchmark_min_time=0.05
    run_bench micro_event_queue \
        ./bench/micro_event_queue --benchmark_min_time=0.05
}

SERIAL_SECONDS=null
if [ "$COMPARE_SERIAL" -eq 1 ]; then
    echo "==== serial reference pass: --jobs 1 --fresh ===="
    RECORD=0
    t0=$(date +%s.%N)
    sweep 1 --fresh
    t1=$(date +%s.%N)
    SERIAL_SECONDS=$(elapsed "$t0" "$t1")
    RECORD=1
    echo
    echo "==== parallel pass: --jobs $JOBS --fresh ===="
fi

LEGACY_SECONDS=null
if [ "$COMPARE_EVENT" -eq 1 ]; then
    echo "==== legacy-core reference pass: --legacy-tick --fresh ===="
    RECORD=0
    t0=$(date +%s.%N)
    sweep "$JOBS" --fresh --legacy-tick
    t1=$(date +%s.%N)
    LEGACY_SECONDS=$(elapsed "$t0" "$t1")
    RECORD=1
    echo
    echo "==== event-core pass: --jobs $JOBS --fresh ===="
fi

t0=$(date +%s.%N)
if [ "$COMPARE_SERIAL" -eq 1 ] || [ "$COMPARE_EVENT" -eq 1 ]; then
    sweep "$JOBS" --fresh
else
    sweep "$JOBS"
fi
t1=$(date +%s.%N)
TOTAL_SECONDS=$(elapsed "$t0" "$t1")

SPEEDUP=null
if [ "$COMPARE_SERIAL" -eq 1 ]; then
    SPEEDUP=$(awk -v s="$SERIAL_SECONDS" -v p="$TOTAL_SECONDS" \
        'BEGIN { printf "%.2f", s / p }')
fi

EVENT_SPEEDUP=null
HYBRID_ROW=null
if [ "$COMPARE_EVENT" -eq 1 ]; then
    EVENT_SPEEDUP=$(awk -v l="$LEGACY_SECONDS" -v e="$TOTAL_SECONDS" \
        'BEGIN { printf "%.2f", l / e }')
    # Hybrid-fidelity leg: the full 25-profile suite (fig11) once
    # more with the analytic NoC fast path on. Approximate results,
    # so it never shares the cache with the exact legs (--fresh, and
    # distinctly-keyed anyway); its value here is the wall-clock
    # ratio against the exact event-core pass just measured.
    hf=(--jobs "$JOBS")
    if [ "$QUICK" -eq 1 ]; then hf+=(--quick); fi
    RECORD=0
    hyb_t0=$(date +%s.%N)
    run_bench fig11_coh_hybrid \
        ./bench/fig11_coh "${hf[@]}" --fresh --fidelity hybrid \
        "${EXTRA[@]}"
    hyb_t1=$(date +%s.%N)
    RECORD=1
    HYBRID_SECONDS=$(elapsed "$hyb_t0" "$hyb_t1")
    HYBRID_SPEEDUP=$(awk -v e="${MAIN_BY_BENCH[fig11_coh]:-0}" \
        -v h="$HYBRID_SECONDS" \
        'BEGIN { printf "%.2f", (h > 0 ? e / h : 0) }')
    HYBRID_ROW="{\"bench\": \"fig11_coh\", \"seconds\":"
    HYBRID_ROW+=" $HYBRID_SECONDS, \"exact_event_seconds\":"
    HYBRID_ROW+=" ${MAIN_BY_BENCH[fig11_coh]:-null},"
    HYBRID_ROW+=" \"speedup_vs_event\": $HYBRID_SPEEDUP}"
fi

{
    echo "{"
    echo "  \"jobs\": $JOBS,"
    if [ "$QUICK" -eq 1 ]; then
        echo "  \"quick\": true,"
    else
        echo "  \"quick\": false,"
    fi
    if [ "$RESUME" -eq 1 ]; then
        echo "  \"resume\": true,"
    else
        echo "  \"resume\": false,"
    fi
    echo "  \"benches\": ["
    last=$((${#ROWS[@]} - 1))
    for i in "${!ROWS[@]}"; do
        if [ "$i" -lt "$last" ]; then
            echo "${ROWS[$i]},"
        else
            echo "${ROWS[$i]}"
        fi
    done
    echo "  ],"
    echo "  \"failed\": ${#FAILED[@]},"
    echo "  \"degraded\": ${#DEGRADED[@]},"
    echo "  \"total_seconds\": $TOTAL_SECONDS,"
    echo "  \"serial_total_seconds\": $SERIAL_SECONDS,"
    echo "  \"speedup\": $SPEEDUP,"
    echo "  \"legacy_total_seconds\": $LEGACY_SECONDS,"
    echo "  \"event_speedup\": $EVENT_SPEEDUP,"
    echo "  \"hybrid\": $HYBRID_ROW"
    echo "}"
} > "$SWEEP_JSON"

# Fold the table3 runner's pool stats (worker-pool utilization over
# the table3 leg) into the sweep JSON, keyed "pool".
if [ "$OBSERVE" -eq 1 ] && command -v python3 > /dev/null; then
    python3 - "$SWEEP_JSON" runner_stats.json <<'PYEOF'
import json
import sys

sweep_path, stats_path = sys.argv[1], sys.argv[2]
with open(sweep_path) as f:
    sweep = json.load(f)
with open(stats_path) as f:
    stats = json.load(f)

size = stats.get("runner.pool.size", 0)
busy = stats.get("runner.pool.busy_ns_total", 0) * 1e-9
table3 = next((b["seconds"] for b in sweep["benches"]
               if b["name"] == "table3_summary"), None)
util = busy / (table3 * size) if table3 and size else None
sweep["pool"] = {
    "size": size,
    "runs": stats.get("runner.runs"),
    "busy_seconds": round(busy, 3),
    "run_seconds_mean": stats.get("runner.run_seconds_mean"),
    "run_seconds_max": stats.get("runner.run_seconds_max"),
    "table3_utilization":
        round(util, 3) if util is not None else None,
}
with open(sweep_path, "w") as f:
    json.dump(sweep, f, indent=2)
    f.write("\n")
print("pool utilization folded into", sweep_path)
PYEOF
fi

# Fold fig11's COH summary into the sweep JSON, keyed "coh", so a
# baseline comparison covers result quality as well as wall clock.
if [ -f coh_summary.json ] && command -v python3 > /dev/null; then
    python3 - "$SWEEP_JSON" coh_summary.json <<'PYEOF'
import json
import sys

sweep_path, coh_path = sys.argv[1], sys.argv[2]
with open(sweep_path) as f:
    sweep = json.load(f)
with open(coh_path) as f:
    sweep["coh"] = json.load(f)
with open(sweep_path, "w") as f:
    json.dump(sweep, f, indent=2)
    f.write("\n")
print("COH summary folded into", sweep_path)
PYEOF
fi

# Extra bench_compare.py flags (e.g. looser wall-clock thresholds on
# shared CI runners) come from $OCOR_BENCH_COMPARE_FLAGS.
COMPARE_STATUS=0
if [ -n "$BASELINE" ]; then
    echo
    # shellcheck disable=SC2086  # the flags variable is a word list
    python3 "$(dirname "$SELF")/scripts/bench_compare.py" \
        "$BASELINE" "$SWEEP_JSON" --out bench_compare.json \
        ${OCOR_BENCH_COMPARE_FLAGS:-} \
        || COMPARE_STATUS=$?
fi

echo
echo "sweep finished in ${TOTAL_SECONDS}s" \
     "(jobs=$JOBS; timings: build/$SWEEP_JSON)"
if [ "$COMPARE_SERIAL" -eq 1 ]; then
    echo "serial reference: ${SERIAL_SECONDS}s -> speedup ${SPEEDUP}x"
fi
if [ "$COMPARE_EVENT" -eq 1 ]; then
    echo "legacy-core reference: ${LEGACY_SECONDS}s ->" \
         "event-core speedup ${EVENT_SPEEDUP}x;" \
         "hybrid fig11: ${HYBRID_SECONDS}s" \
         "(${HYBRID_SPEEDUP}x vs exact event)"
fi
if [ "${#FAILED[@]}" -gt 0 ]; then
    echo "failed benches: ${FAILED[*]}" >&2
    exit 1
fi
if [ "$COMPARE_STATUS" -ne 0 ]; then
    echo "baseline comparison regressed" \
         "(details: build/bench_compare.json)" >&2
    exit 1
fi
if [ "${#DEGRADED[@]}" -gt 0 ]; then
    echo "degraded benches: ${DEGRADED[*]}" >&2
    exit 75
fi
echo "all benchmarks completed cleanly"
