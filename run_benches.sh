#!/bin/bash
# Regenerate every figure/table of the paper's evaluation.
# Full 64-thread runs are memoized in ocor_results.tsv (this
# directory), so the 25-benchmark sweep is simulated only once.
#
# Fails fast: the first benchmark that exits non-zero aborts the
# sweep and is named on stderr.
set -euo pipefail
cd "$(dirname "$0")/build"

run() {
    echo
    echo "################ $* ################"
    local status=0
    "$@" || status=$?
    if [ "$status" -ne 0 ]; then
        echo "error: benchmark failed (exit $status): $*" >&2
        exit "$status"
    fi
}

run ./bench/fig02_criticality
run ./bench/fig05_scenarios
run ./bench/fig08_scheduling
run ./bench/fig10_profile
run ./bench/fig11_coh
run ./bench/fig12_characteristics
run ./bench/fig13_cs_time
run ./bench/fig14_roi
run ./bench/fig15_scalability --iters 4
run ./bench/fig16_levels --quick --iters 3 --ablate
run ./bench/table3_summary
run ./bench/micro_router --benchmark_min_time=0.05

echo
echo "all benchmarks completed"
