/**
 * @file
 * Shared helpers for the figure/table reproduction binaries: command
 * line handling, the shared result cache, and simple table/bar
 * rendering.
 *
 * Common flags across all benches:
 *   --threads N   core/thread count (default 64, the paper's setup)
 *   --iters N     critical sections per thread (default 4)
 *   --seed N      experiment seed (default 1)
 *   --quick       shorthand for --threads 16 (fast smoke runs)
 *   --fresh       ignore the result cache for this invocation
 *   --jobs N      simulations run concurrently (default: OCOR_JOBS
 *                 env var, else hardware concurrency)
 *   --fidelity M  simulation fidelity: "exact" (default, bit-exact
 *                 microarchitectural NoC) or "hybrid" (analytic NoC
 *                 fast path during uncontended windows; approximate,
 *                 cached under separate keys — DESIGN.md §13)
 *   --legacy-tick run on the legacy unconditional per-cycle tick loop
 *                 instead of the event-driven core (bit-identical
 *                 results, slower; for benchmarking the event core)
 *   --profile P   restrict a suite bench to one benchmark profile by
 *                 name (benches that run fixed profiles ignore it)
 *
 * Observability flags (all off by default; see DESIGN.md §10, §14):
 *   --coh-ledger            attribute every COH cycle to a named
 *                           cause (transfer / arbitration / backoff /
 *                           sleep / grant gap), per lock and thread;
 *                           ledger runs are cached separately
 *   --coh-breakdown         (table3_summary) render the per-program
 *                           COH cause split; implies --coh-ledger
 *                           and writes coh_breakdown.json
 *   --wake-profile          count event-core wakes, wasted wakes and
 *                           wake edges per component group (pair
 *                           with --fresh: cached runs don't execute
 *                           and contribute no wake stats)
 *   --trace[=CATS]          enable event tracing for the categories
 *                           "lock", "noc", "sim" (comma-separated;
 *                           bare --trace means all)
 *   --trace-out FILE        trace destination (default trace.json;
 *                           a .csv suffix selects the CSV exporter)
 *   --trace-capacity N      trace ring size in records (default
 *                           2^19; size it above the run's emitted
 *                           count or the export is incomplete)
 *   --stats-json FILE       dump the hierarchical stats registry
 *   --telemetry-interval N  sample interval telemetry every N cycles
 *   --telemetry-out FILE    telemetry CSV (default telemetry.csv)
 *   --pool-util             report worker-pool utilization
 *
 * Correctness flags (see DESIGN.md §11):
 *   --check[=LIST]          enable the runtime invariant checkers
 *                           "mutex", "vc-fifo", "onehot",
 *                           "arbitration", "credit", "rtr", "wakeup"
 *                           (comma-separated; bare --check means all)
 *
 * Crash safety / supervision flags (see DESIGN.md §12):
 *   --deadline SEC   wall-clock deadline for a 16-thread 4-iteration
 *                    run, scaled with the request size; a miss
 *                    cancels and retries (0 = off, the default)
 *   --retries N      retries per failed/timed-out request (default 2
 *                    once supervision is on)
 *   --quarantine N   attempt failures after which a configuration is
 *                    skipped for the rest of the sweep (default 3)
 *   --replay FILE    re-run the exact simulation recorded in a crash
 *                    dump, deterministically, then exit
 *
 * Every bench installs a crash handler that writes
 * crash_<prog>.dump next to the working directory on SIGSEGV,
 * SIGABRT or SIGTERM; feed that file back via --replay. Benches
 * running under supervision exit 75 (EX_TEMPFAIL) when the sweep
 * completed but some requests were degraded.
 */

#ifndef OCOR_BENCH_BENCH_UTIL_HH
#define OCOR_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "check/check_config.hh"
#include "common/trace.hh"
#include "sim/crashdump.hh"
#include "sim/parallel_runner.hh"
#include "sim/result_cache.hh"
#include "sim/wake_profiler.hh"

namespace ocor::bench
{

/** Parsed common options. */
struct Options
{
    unsigned threads = 64;
    unsigned iterations = 4;
    std::uint64_t seed = 1;
    bool fresh = false;
    unsigned jobs = 0; ///< 0 = ThreadPool::defaultConcurrency()
    Fidelity fidelity = Fidelity::Exact;

    /** --profile: restrict suite benches to one profile ("" = all). */
    std::string profileFilter;

    // --- observability (every knob off/empty by default) -----------
    std::string traceCats;      ///< "" = tracing off
    std::string traceOut = "trace.json";
    std::size_t traceCapacity = std::size_t{1} << 19; ///< ring slots
    std::string statsJson;      ///< "" = no stats dump
    Cycle telemetryInterval = 0;
    std::string telemetryOut = "telemetry.csv";
    bool poolUtil = false;
    bool cohLedger = false;     ///< --coh-ledger (DESIGN.md §14)
    bool cohBreakdown = false;  ///< --coh-breakdown (implies ledger)

    /** --check selection ("" = the build's default mask). */
    std::string checkList;

    // --- crash safety / supervision (DESIGN.md §12) -----------------
    std::string replay;      ///< crash dump to re-run ("" = none)
    double deadline = 0.0;   ///< base deadline seconds (0 = off)
    unsigned retries = 2;    ///< retries per failed request
    bool retriesSet = false; ///< --retries given explicitly
    unsigned quarantine = 3; ///< failures before a config is skipped

    bool tracing() const { return !traceCats.empty(); }
    bool checking() const { return !checkList.empty(); }

    /** Supervision is on once any of its knobs is exercised. */
    bool
    supervised() const
    {
        return deadline > 0.0 || retriesSet;
    }

    /** The SupervisePolicy these options describe. */
    SupervisePolicy
    supervision() const
    {
        SupervisePolicy p;
        p.deadlineSeconds = deadline;
        p.maxAttempts = retries + 1;
        p.quarantineAfter = quarantine;
        p.enabled = supervised();
        return p;
    }

    /** The --check mask for a directly built SystemConfig. */
    unsigned
    checkMask() const
    {
        return checking() ? parseCheckList(checkList)
                          : defaultCheckMask();
    }

    ExperimentConfig
    experiment() const
    {
        ExperimentConfig exp;
        exp.threads = threads;
        exp.iterationsOverride = iterations;
        exp.seed = seed;
        exp.check.checks = checkMask();
        exp.fidelity = fidelity;
        exp.cohLedger = cohLedger;
        return exp;
    }

    /** The profiles a suite bench should run: allProfiles(), or the
     * single --profile selection (unknown names abort loudly). */
    std::vector<BenchmarkProfile>
    profiles() const
    {
        if (profileFilter.empty())
            return allProfiles();
        return {profileByName(profileFilter)};
    }
};

/** Exit code for a degraded-but-complete supervised sweep. */
constexpr int kExitDegraded = 75; // EX_TEMPFAIL

/**
 * Re-run the simulation recorded in crash dump @p dumpPath exactly
 * (the repro line pins profile, threads, iterations, seed and the
 * OCOR flag; simulations are bit-identical given those). Returns the
 * process exit code.
 */
inline int
runReplay(const std::string &dumpPath)
{
    auto spec = crashdump::parseDump(dumpPath);
    if (!spec) {
        std::fprintf(stderr,
                     "%s: not a crash dump or no repro line "
                     "(crash outside a simulation?)\n",
                     dumpPath.c_str());
        return 1;
    }
    std::printf("replaying %s: benchmark=%s threads=%u iters=%u "
                "seed=%llu ocor=%d\n",
                dumpPath.c_str(), spec->benchmark.c_str(),
                spec->threads, spec->iterations,
                static_cast<unsigned long long>(spec->seed),
                spec->ocorEnabled ? 1 : 0);
    const BenchmarkProfile profile = profileByName(spec->benchmark);
    ExperimentConfig exp;
    exp.threads = spec->threads;
    exp.iterationsOverride = spec->iterations;
    exp.seed = spec->seed;
    RunMetrics m = runOnce(profile, exp, spec->ocorEnabled);
    std::printf("replay finished: roi=%llu coh=%llu acquisitions="
                "%llu hang=%d\n",
                static_cast<unsigned long long>(m.roiFinish),
                static_cast<unsigned long long>(m.totalCoh()),
                static_cast<unsigned long long>(
                    m.totalAcquisitions()),
                m.hangDetected ? 1 : 0);
    return m.hangDetected ? 1 : 0;
}

/** Parse the common flags; unknown flags abort with usage. */
inline Options
parseOptions(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             a.c_str());
                std::exit(1);
            }
            return argv[++i];
        };
        // "--flag=value" and "--flag value" are both accepted for
        // the value-carrying observability flags.
        auto valueOf = [&](const char *flag,
                           std::string &out) -> bool {
            if (a == flag) {
                out = next();
                return true;
            }
            std::string pfx = std::string(flag) + "=";
            if (a.rfind(pfx, 0) == 0) {
                out = a.substr(pfx.size());
                return true;
            }
            return false;
        };
        std::string v;
        if (a == "--threads")
            opt.threads = static_cast<unsigned>(std::atoi(next()));
        else if (a == "--iters")
            opt.iterations =
                static_cast<unsigned>(std::atoi(next()));
        else if (a == "--seed")
            opt.seed = static_cast<std::uint64_t>(
                std::strtoull(next(), nullptr, 10));
        else if (a == "--quick")
            opt.threads = 16;
        else if (a == "--fresh")
            opt.fresh = true;
        else if (valueOf("--fidelity", v)) {
            if (v == "exact")
                opt.fidelity = Fidelity::Exact;
            else if (v == "hybrid")
                opt.fidelity = Fidelity::Hybrid;
            else {
                std::fprintf(stderr,
                             "--fidelity must be \"exact\" or "
                             "\"hybrid\" (got \"%s\")\n", v.c_str());
                std::exit(1);
            }
        } else if (a == "--legacy-tick")
            Simulator::setDefaultCoreMode(SimCoreMode::Legacy);
        else if (valueOf("--profile", v))
            opt.profileFilter = v;
        else if (a == "--coh-ledger")
            opt.cohLedger = true;
        else if (a == "--coh-breakdown") {
            // The breakdown table is rendered from ledger cause
            // counters, so the flag implies --coh-ledger.
            opt.cohBreakdown = true;
            opt.cohLedger = true;
        }
        else if (a == "--wake-profile")
            // Process-wide so runs deep inside the result cache /
            // parallel runner are profiled too.
            Simulator::setDefaultWakeProfile(true);
        else if (a == "--jobs")
            opt.jobs = static_cast<unsigned>(std::atoi(next()));
        else if (a == "--trace")
            opt.traceCats = "all"; // bare form: everything
        else if (valueOf("--trace", v))
            opt.traceCats = v;
        else if (valueOf("--trace-out", v))
            opt.traceOut = v;
        else if (valueOf("--trace-capacity", v))
            opt.traceCapacity = static_cast<std::size_t>(
                std::strtoull(v.c_str(), nullptr, 10));
        else if (valueOf("--stats-json", v))
            opt.statsJson = v;
        else if (valueOf("--telemetry-interval", v))
            opt.telemetryInterval = static_cast<Cycle>(
                std::strtoull(v.c_str(), nullptr, 10));
        else if (valueOf("--telemetry-out", v))
            opt.telemetryOut = v;
        else if (a == "--pool-util")
            opt.poolUtil = true;
        else if (a == "--check")
            opt.checkList = "all"; // bare form: every checker
        else if (valueOf("--check", v))
            opt.checkList = v;
        else if (valueOf("--replay", v))
            opt.replay = v;
        else if (valueOf("--deadline", v))
            opt.deadline = std::strtod(v.c_str(), nullptr);
        else if (valueOf("--retries", v)) {
            opt.retries = static_cast<unsigned>(
                std::atoi(v.c_str()));
            opt.retriesSet = true;
        } else if (valueOf("--quarantine", v))
            opt.quarantine = static_cast<unsigned>(
                std::atoi(v.c_str()));
        else {
            std::fprintf(stderr,
                         "unknown flag %s\n"
                         "usage: %s [--threads N] [--iters N] "
                         "[--seed N] [--quick] [--fresh] "
                         "[--fidelity exact|hybrid] [--legacy-tick] "
                         "[--profile P] [--coh-ledger] "
                         "[--coh-breakdown] [--wake-profile] "
                         "[--jobs N] [--trace[=CATS]] "
                         "[--trace-out FILE] [--trace-capacity N] "
                         "[--stats-json FILE] "
                         "[--telemetry-interval N] "
                         "[--telemetry-out FILE] [--pool-util] "
                         "[--check[=LIST]] [--deadline SEC] "
                         "[--retries N] [--quarantine N] "
                         "[--replay DUMP]\n",
                         a.c_str(), argv[0]);
            std::exit(1);
        }
    }

    // Crash capture is always armed: a fatal signal leaves
    // crash_<prog>.dump behind, ready for --replay.
    std::string prog = argv[0] ? argv[0] : "bench";
    auto slash = prog.find_last_of('/');
    if (slash != std::string::npos)
        prog = prog.substr(slash + 1);
    crashdump::install("crash_" + prog + ".dump");

    // --replay short-circuits the bench entirely: one deterministic
    // re-run of the dumped configuration, then exit.
    if (!opt.replay.empty())
        std::exit(runReplay(opt.replay));
    return opt;
}

/**
 * Install the Options' supervision policy on @p runner (no-op when
 * supervision is off, keeping the sweep bit-identical to an
 * unsupervised run).
 */
inline void
superviseRunner(ParallelRunner &runner, const Options &opt)
{
    if (opt.supervised())
        runner.setSupervision(opt.supervision());
}

/**
 * Report degraded outcomes of the last sweep and return the bench
 * exit code: 0 for a clean sweep, kExitDegraded (75) when requests
 * timed out / failed / were quarantined but the sweep completed.
 */
inline int
sweepExitStatus(const ParallelRunner &runner)
{
    if (runner.degradedRuns() == 0)
        return 0;
    const auto outcomes = runner.outcomes();
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const RunOutcome &o = outcomes[i];
        if (o.status == RunStatus::Ok)
            continue;
        std::fprintf(stderr,
                     "degraded request %zu: %s after %u attempt(s)"
                     "%s%s\n",
                     i, runStatusName(o.status), o.attempts,
                     o.detail.empty() ? "" : " -- ",
                     o.detail.c_str());
    }
    std::fprintf(stderr,
                 "sweep degraded: %llu of %zu requests did not "
                 "complete cleanly (exit %d)\n",
                 static_cast<unsigned long long>(
                     runner.degradedRuns()),
                 outcomes.size(), kExitDegraded);
    return kExitDegraded;
}

/** The shared cache (per-working-directory TSV). */
inline ResultCache
cacheFor(const Options &opt)
{
    if (opt.fresh) {
        // A throwaway file name so nothing is reused or polluted.
        return ResultCache("/dev/null");
    }
    return ResultCache("ocor_results.tsv");
}

/** Open @p path for writing, aborting loudly on failure. */
inline std::ofstream
openArtifact(const std::string &path)
{
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        std::exit(1);
    }
    return out;
}

/**
 * The --stats-json export shared by every suite bench: the runner's
 * sweep counters (cache hit rates, pool utilization, degraded runs)
 * plus the process-global run aggregates — "sim.wall.*" wall-clock
 * phase totals and, after any --wake-profile run, "sim.wake.*" wake
 * attribution. No-op without --stats-json.
 */
inline void
dumpStatsJson(const Options &opt, ParallelRunner *runner)
{
    if (opt.statsJson.empty())
        return;
    StatsRegistry reg;
    if (runner)
        runner->registerStats(reg);
    registerAggregateStats(reg);
    std::ofstream out = openArtifact(opt.statsJson);
    reg.dumpJson(out);
    std::printf("stats: %zu entries -> %s\n", reg.size(),
                opt.statsJson.c_str());
}

/**
 * Export @p tracer to @p path: the Chrome trace-event JSON backend
 * unless the file name ends in ".csv". Prints a one-line summary.
 */
inline void
writeTrace(const Tracer &tracer, const std::string &path)
{
    std::ofstream out = openArtifact(path);
    const bool csv = path.size() >= 4 &&
        path.compare(path.size() - 4, 4, ".csv") == 0;
    if (csv)
        tracer.exportCsv(out);
    else
        tracer.exportChromeJson(out);
    std::printf("trace: %llu events recorded (%llu overwritten) "
                "-> %s\n",
                static_cast<unsigned long long>(tracer.emitted()),
                static_cast<unsigned long long>(tracer.dropped()),
                path.c_str());
}

/** Horizontal ASCII bar scaled to @p width at @p full. */
inline std::string
bar(double value, double full, unsigned width = 40)
{
    if (full <= 0.0)
        full = 1.0;
    double frac = value / full;
    if (frac < 0)
        frac = 0;
    if (frac > 1)
        frac = 1;
    unsigned n = static_cast<unsigned>(frac * width + 0.5);
    std::string s(n, '#');
    s.resize(width, ' ');
    return s;
}

/** Section header shared by all benches. */
inline void
banner(const char *what)
{
    std::printf("=============================================="
                "==============================\n");
    std::printf("%s\n", what);
    std::printf("OCOR reproduction (Yao & Lu, ISCA 2016)\n");
    std::printf("=============================================="
                "==============================\n");
}

} // namespace ocor::bench

#endif // OCOR_BENCH_BENCH_UTIL_HH
