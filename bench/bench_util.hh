/**
 * @file
 * Shared helpers for the figure/table reproduction binaries: command
 * line handling, the shared result cache, and simple table/bar
 * rendering.
 *
 * Common flags across all benches:
 *   --threads N   core/thread count (default 64, the paper's setup)
 *   --iters N     critical sections per thread (default 4)
 *   --seed N      experiment seed (default 1)
 *   --quick       shorthand for --threads 16 (fast smoke runs)
 *   --fresh       ignore the result cache for this invocation
 *   --jobs N      simulations run concurrently (default: OCOR_JOBS
 *                 env var, else hardware concurrency)
 *
 * Observability flags (all off by default; see DESIGN.md §10):
 *   --trace[=CATS]          enable event tracing for the categories
 *                           "lock", "noc", "sim" (comma-separated;
 *                           bare --trace means all)
 *   --trace-out FILE        trace destination (default trace.json;
 *                           a .csv suffix selects the CSV exporter)
 *   --stats-json FILE       dump the hierarchical stats registry
 *   --telemetry-interval N  sample interval telemetry every N cycles
 *   --telemetry-out FILE    telemetry CSV (default telemetry.csv)
 *   --pool-util             report worker-pool utilization
 *
 * Correctness flags (see DESIGN.md §11):
 *   --check[=LIST]          enable the runtime invariant checkers
 *                           "mutex", "vc-fifo", "onehot",
 *                           "arbitration", "credit", "rtr", "wakeup"
 *                           (comma-separated; bare --check means all)
 */

#ifndef OCOR_BENCH_BENCH_UTIL_HH
#define OCOR_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "check/check_config.hh"
#include "common/trace.hh"
#include "sim/parallel_runner.hh"
#include "sim/result_cache.hh"

namespace ocor::bench
{

/** Parsed common options. */
struct Options
{
    unsigned threads = 64;
    unsigned iterations = 4;
    std::uint64_t seed = 1;
    bool fresh = false;
    unsigned jobs = 0; ///< 0 = ThreadPool::defaultConcurrency()

    // --- observability (every knob off/empty by default) -----------
    std::string traceCats;      ///< "" = tracing off
    std::string traceOut = "trace.json";
    std::string statsJson;      ///< "" = no stats dump
    Cycle telemetryInterval = 0;
    std::string telemetryOut = "telemetry.csv";
    bool poolUtil = false;

    /** --check selection ("" = the build's default mask). */
    std::string checkList;

    bool tracing() const { return !traceCats.empty(); }
    bool checking() const { return !checkList.empty(); }

    /** The --check mask for a directly built SystemConfig. */
    unsigned
    checkMask() const
    {
        return checking() ? parseCheckList(checkList)
                          : defaultCheckMask();
    }

    ExperimentConfig
    experiment() const
    {
        ExperimentConfig exp;
        exp.threads = threads;
        exp.iterationsOverride = iterations;
        exp.seed = seed;
        exp.check.checks = checkMask();
        return exp;
    }
};

/** Parse the common flags; unknown flags abort with usage. */
inline Options
parseOptions(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             a.c_str());
                std::exit(1);
            }
            return argv[++i];
        };
        // "--flag=value" and "--flag value" are both accepted for
        // the value-carrying observability flags.
        auto valueOf = [&](const char *flag,
                           std::string &out) -> bool {
            if (a == flag) {
                out = next();
                return true;
            }
            std::string pfx = std::string(flag) + "=";
            if (a.rfind(pfx, 0) == 0) {
                out = a.substr(pfx.size());
                return true;
            }
            return false;
        };
        std::string v;
        if (a == "--threads")
            opt.threads = static_cast<unsigned>(std::atoi(next()));
        else if (a == "--iters")
            opt.iterations =
                static_cast<unsigned>(std::atoi(next()));
        else if (a == "--seed")
            opt.seed = static_cast<std::uint64_t>(
                std::strtoull(next(), nullptr, 10));
        else if (a == "--quick")
            opt.threads = 16;
        else if (a == "--fresh")
            opt.fresh = true;
        else if (a == "--jobs")
            opt.jobs = static_cast<unsigned>(std::atoi(next()));
        else if (a == "--trace")
            opt.traceCats = "all"; // bare form: everything
        else if (valueOf("--trace", v))
            opt.traceCats = v;
        else if (valueOf("--trace-out", v))
            opt.traceOut = v;
        else if (valueOf("--stats-json", v))
            opt.statsJson = v;
        else if (valueOf("--telemetry-interval", v))
            opt.telemetryInterval = static_cast<Cycle>(
                std::strtoull(v.c_str(), nullptr, 10));
        else if (valueOf("--telemetry-out", v))
            opt.telemetryOut = v;
        else if (a == "--pool-util")
            opt.poolUtil = true;
        else if (a == "--check")
            opt.checkList = "all"; // bare form: every checker
        else if (valueOf("--check", v))
            opt.checkList = v;
        else {
            std::fprintf(stderr,
                         "unknown flag %s\n"
                         "usage: %s [--threads N] [--iters N] "
                         "[--seed N] [--quick] [--fresh] "
                         "[--jobs N] [--trace[=CATS]] "
                         "[--trace-out FILE] [--stats-json FILE] "
                         "[--telemetry-interval N] "
                         "[--telemetry-out FILE] [--pool-util] "
                         "[--check[=LIST]]\n",
                         a.c_str(), argv[0]);
            std::exit(1);
        }
    }
    return opt;
}

/** The shared cache (per-working-directory TSV). */
inline ResultCache
cacheFor(const Options &opt)
{
    if (opt.fresh) {
        // A throwaway file name so nothing is reused or polluted.
        return ResultCache("/dev/null");
    }
    return ResultCache("ocor_results.tsv");
}

/** Open @p path for writing, aborting loudly on failure. */
inline std::ofstream
openArtifact(const std::string &path)
{
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        std::exit(1);
    }
    return out;
}

/**
 * Export @p tracer to @p path: the Chrome trace-event JSON backend
 * unless the file name ends in ".csv". Prints a one-line summary.
 */
inline void
writeTrace(const Tracer &tracer, const std::string &path)
{
    std::ofstream out = openArtifact(path);
    const bool csv = path.size() >= 4 &&
        path.compare(path.size() - 4, 4, ".csv") == 0;
    if (csv)
        tracer.exportCsv(out);
    else
        tracer.exportChromeJson(out);
    std::printf("trace: %llu events recorded (%llu overwritten) "
                "-> %s\n",
                static_cast<unsigned long long>(tracer.emitted()),
                static_cast<unsigned long long>(tracer.dropped()),
                path.c_str());
}

/** Horizontal ASCII bar scaled to @p width at @p full. */
inline std::string
bar(double value, double full, unsigned width = 40)
{
    if (full <= 0.0)
        full = 1.0;
    double frac = value / full;
    if (frac < 0)
        frac = 0;
    if (frac > 1)
        frac = 1;
    unsigned n = static_cast<unsigned>(frac * width + 0.5);
    std::string s(n, '#');
    s.resize(width, ' ');
    return s;
}

/** Section header shared by all benches. */
inline void
banner(const char *what)
{
    std::printf("=============================================="
                "==============================\n");
    std::printf("%s\n", what);
    std::printf("OCOR reproduction (Yao & Lu, ISCA 2016)\n");
    std::printf("=============================================="
                "==============================\n");
}

} // namespace ocor::bench

#endif // OCOR_BENCH_BENCH_UTIL_HH
