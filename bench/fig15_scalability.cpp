/**
 * @file
 * Figure 15: scalability — time spent in COH for 4, 16, 32, 64
 * threads, normalized to the no-OCOR configuration of each scale.
 *
 * The paper's trend: the more threads, the more competition, the
 * larger the COH reduction OCOR achieves.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "workload/benchmarks.hh"

using namespace ocor;
using namespace ocor::bench;

int
main(int argc, char **argv)
{
    Options opt = parseOptions(argc, argv);
    banner("Figure 15: normalized COH at 4 / 16 / 32 / 64 threads");

    ResultCache cache = cacheFor(opt);
    ParallelRunner runner(opt.jobs, &cache);
    superviseRunner(runner, opt);
    const unsigned scales[] = {4, 16, 32, 64};

    // A representative subset spanning the characteristic classes
    // (running all 25 at four scales is supported but slow; pass
    // --iters to scale run length).
    const char *names[] = {"imag", "body", "can", "ilbdc"};

    // All (program, scale) combos in one parallel batch; the small
    // 4-thread runs overlap the big 64-thread ones instead of
    // queueing behind them.
    std::vector<BenchmarkProfile> profiles;
    std::vector<ExperimentConfig> exps;
    for (const char *name : names) {
        for (unsigned threads : scales) {
            ExperimentConfig exp = opt.experiment();
            exp.threads = threads;
            profiles.push_back(profileByName(name));
            exps.push_back(exp);
        }
    }
    std::vector<BenchmarkResult> results =
        runner.runComparisons(profiles, exps);

    std::printf("\nCOH with OCOR, normalized to the original "
                "design at the same scale (100%%):\n");
    std::printf("%-8s %8s %8s %8s %8s\n", "program", "4t", "16t",
                "32t", "64t");
    std::size_t i = 0;
    for (const char *name : names) {
        std::printf("%-8s", name);
        for (unsigned threads [[maybe_unused]] : scales) {
            const BenchmarkResult &r = results[i++];
            double norm = r.base.totalCoh() == 0
                ? 100.0
                : 100.0 * static_cast<double>(r.ocor.totalCoh())
                    / static_cast<double>(r.base.totalCoh());
            std::printf(" %7.1f%%", norm);
        }
        std::printf("\n");
    }
    std::printf("\nExpected shape: normalized COH decreases toward "
                "the right (more threads ->\nmore competition -> "
                "larger reduction), and high CS-rate/high net-util\n"
                "programs (botss, ilbdc) drop the furthest.\n");
    dumpStatsJson(opt, &runner);
    return sweepExitStatus(runner);
}
