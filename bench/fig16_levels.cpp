/**
 * @file
 * Figure 16: sensitivity to the number of RTR priority levels, for
 * the two extreme programs (botss: best improvement; imag: least),
 * plus the rule-ablation study DESIGN.md calls out (--ablate).
 *
 * Expected shape: COH improvement grows with the level count but
 * with diminishing returns, justifying the paper's 8-level default.
 */

#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_util.hh"
#include "workload/benchmarks.hh"

using namespace ocor;
using namespace ocor::bench;

namespace
{

ExperimentConfig
withOverride(const Options &opt, const OcorConfig &ocor)
{
    ExperimentConfig exp = opt.experiment();
    exp.ocorOverrideSet = true;
    exp.ocorOverride = ocor;
    return exp;
}

/** Batch all (profile, override) combos through the pool; the
 * shared baseline runs are deduplicated by the cache. */
std::vector<double>
improvementsFor(ParallelRunner &runner,
                const std::vector<BenchmarkProfile> &profiles,
                const std::vector<ExperimentConfig> &exps)
{
    std::vector<BenchmarkResult> results =
        runner.runComparisons(profiles, exps);
    std::vector<double> out;
    out.reserve(results.size());
    for (const auto &r : results)
        out.push_back(r.cohImprovementPct());
    return out;
}

void
levelSweep(ParallelRunner &runner, const Options &opt)
{
    const unsigned levels[] = {1, 2, 4, 8, 16, 32};
    const char *names[] = {"botss", "imag"};
    // (pass --quick for 16-thread runs; the full 64-thread sweep is
    // supported but slow)
    std::vector<BenchmarkProfile> profiles;
    std::vector<ExperimentConfig> exps;
    for (const char *name : names) {
        for (unsigned l : levels) {
            OcorConfig ocor;
            ocor.numRtrLevels = l;
            profiles.push_back(profileByName(name));
            exps.push_back(withOverride(opt, ocor));
        }
    }
    std::vector<double> vals = improvementsFor(runner, profiles,
                                               exps);

    std::printf("\nCOH improvement vs number of RTR priority "
                "levels:\n");
    std::printf("%-8s", "levels");
    for (unsigned l : levels)
        std::printf(" %7u", l);
    std::printf("\n");
    std::size_t i = 0;
    for (const char *name : names) {
        std::printf("%-8s", name);
        for (unsigned l [[maybe_unused]] : levels)
            std::printf(" %6.1f%%", vals[i++]);
        std::printf("\n");
    }
    std::printf("\nPaper's shape: improvement rises with levels and "
                "saturates near 8. In this\nreproduction the "
                "Lock-First rule dominates, so the level count "
                "barely moves the\nresult (see EXPERIMENTS.md, "
                "Fig. 16 note).\n");
}

void
ablation(ParallelRunner &runner, const Options &opt)
{
    struct Variant
    {
        const char *name;
        void (*tweak)(OcorConfig &);
    };
    const Variant variants[] = {
        {"full OCOR", [](OcorConfig &) {}},
        {"no Slow Progress First",
         [](OcorConfig &c) { c.ruleSlowProgressFirst = false; }},
        {"no Least RTR First",
         [](OcorConfig &c) { c.ruleLeastRtrFirst = false; }},
        {"no Wakeup Request Last",
         [](OcorConfig &c) { c.ruleWakeupLast = false; }},
        {"no Lock First (== baseline)",
         [](OcorConfig &c) { c.ruleLockFirst = false; }},
    };
    const char *names[] = {"botss", "can"};

    std::vector<BenchmarkProfile> profiles;
    std::vector<ExperimentConfig> exps;
    for (const auto &v : variants) {
        for (const char *name : names) {
            OcorConfig ocor;
            v.tweak(ocor);
            profiles.push_back(profileByName(name));
            exps.push_back(withOverride(opt, ocor));
        }
    }
    std::vector<double> vals = improvementsFor(runner, profiles,
                                               exps);

    std::printf("\nRule ablation (COH improvement over the "
                "original design):\n");
    std::printf("%-28s %10s %10s\n", "variant", "botss", "can");
    std::size_t i = 0;
    for (const auto &v : variants) {
        std::printf("%-28s", v.name);
        for (const char *name [[maybe_unused]] : names)
            std::printf(" %9.1f%%", vals[i++]);
        std::printf("\n");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bool ablate = false;
    std::vector<char *> rest;
    rest.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--ablate") == 0)
            ablate = true;
        else
            rest.push_back(argv[i]);
    }
    Options opt = parseOptions(static_cast<int>(rest.size()),
                               rest.data());
    banner("Figure 16: COH improvement vs priority levels "
           "(+ rule ablations)");
    ResultCache cache = cacheFor(opt);
    ParallelRunner runner(opt.jobs, &cache);
    superviseRunner(runner, opt);
    levelSweep(runner, opt);
    if (ablate)
        ablation(runner, opt);
    else
        std::printf("\n(run with --ablate for the Table-1 rule "
                    "ablation study)\n");
    dumpStatsJson(opt, &runner);
    return sweepExitStatus(runner);
}
