/**
 * @file
 * Table 3: full result summary for the 64-thread case — COH
 * improvement, ROI finish-time improvement and the CS-rate /
 * network-utilization characterization for every benchmark, ordered
 * by ROI improvement, with per-suite and overall averages.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "workload/benchmarks.hh"

using namespace ocor;
using namespace ocor::bench;

int
main(int argc, char **argv)
{
    Options opt = parseOptions(argc, argv);
    banner("Table 3: result summary (COH improvement, ROI "
           "improvement, characteristics)");

    ResultCache cache = cacheFor(opt);
    ParallelRunner runner(opt.jobs, &cache);
    superviseRunner(runner, opt);
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<BenchmarkResult> results =
        runner.runSuite(allProfiles(), opt.experiment());
    const double elapsed = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - t0).count();

    std::sort(results.begin(), results.end(),
              [](const BenchmarkResult &a, const BenchmarkResult &b) {
                  return a.roiImprovementPct()
                      < b.roiImprovementPct();
              });

    std::printf("\n%-8s %-8s %8s %10s %10s %10s\n", "program",
                "suite", "CS rate", "net util", "COH impro",
                "ROI impro");
    double coh_p = 0, roi_p = 0, coh_o = 0, roi_o = 0;
    unsigned np = 0, no = 0;
    for (const auto &r : results) {
        std::printf("%-8s %-8s %8s %10s %9.1f%% %9.1f%%\n",
                    r.name.c_str(), r.suite.c_str(),
                    r.highCsRate ? "high" : "low",
                    r.highNetUtil ? "high" : "low",
                    r.cohImprovementPct(), r.roiImprovementPct());
        if (r.suite == "PARSEC") {
            coh_p += r.cohImprovementPct();
            roi_p += r.roiImprovementPct();
            ++np;
        } else {
            coh_o += r.cohImprovementPct();
            roi_o += r.roiImprovementPct();
            ++no;
        }
    }
    std::printf("\n%-17s COH %5.1f%%  ROI %5.1f%%   "
                "(paper: 40.4%% / 13.7%%)\n", "PARSEC average",
                coh_p / np, roi_p / np);
    std::printf("%-17s COH %5.1f%%  ROI %5.1f%%   "
                "(paper: 39.3%% / 15.1%%)\n", "OMP2012 average",
                coh_o / no, roi_o / no);
    std::printf("%-17s COH %5.1f%%  ROI %5.1f%%   "
                "(paper: 39.9%% / 14.4%%)\n", "overall average",
                (coh_p + coh_o) / (np + no),
                (roi_p + roi_o) / (np + no));

    // Latency tails: packet latency and lock-handover gap, original
    // vs OCOR. Zeros appear for results replayed from a cache file
    // written before these columns existed (rerun with --fresh).
    std::printf("\nlatency percentiles (cycles), original -> OCOR:\n");
    std::printf("%-8s %26s %26s\n", "program",
                "packet p50/p95/p99", "handover p50/p95/p99");
    for (const auto &r : results)
        std::printf("%-8s %7.1f/%7.1f/%7.1f  %7.1f/%7.1f/%7.1f\n"
                    "%-8s %7.1f/%7.1f/%7.1f  %7.1f/%7.1f/%7.1f\n",
                    r.name.c_str(), r.base.p50PacketLatency,
                    r.base.p95PacketLatency, r.base.p99PacketLatency,
                    r.base.p50LockHandover, r.base.p95LockHandover,
                    r.base.p99LockHandover, "  +ocor",
                    r.ocor.p50PacketLatency, r.ocor.p95PacketLatency,
                    r.ocor.p99PacketLatency, r.ocor.p50LockHandover,
                    r.ocor.p95LockHandover, r.ocor.p99LockHandover);

    if (opt.poolUtil) {
        SampleStat rs = runner.runSeconds();
        std::printf("\npool: %u workers, %llu tasks, utilization "
                    "%.1f%% over %.2fs wall\n",
                    runner.jobs(),
                    static_cast<unsigned long long>(
                        runner.pool().tasksExecuted()),
                    100.0 * runner.utilization(elapsed), elapsed);
        std::printf("runs: %llu (mean %.3fs, max %.3fs each)\n",
                    static_cast<unsigned long long>(
                        runner.runsExecuted()),
                    rs.mean(), rs.max());
    }
    if (!opt.statsJson.empty()) {
        StatsRegistry reg;
        runner.registerStats(reg);
        std::ofstream out = openArtifact(opt.statsJson);
        reg.dumpJson(out);
        std::printf("stats: %zu entries -> %s\n", reg.size(),
                    opt.statsJson.c_str());
    }
    return sweepExitStatus(runner);
}
