/**
 * @file
 * Table 3: full result summary for the 64-thread case — COH
 * improvement, ROI finish-time improvement and the CS-rate /
 * network-utilization characterization for every benchmark, ordered
 * by ROI improvement, with per-suite and overall averages.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "workload/benchmarks.hh"

using namespace ocor;
using namespace ocor::bench;

int
main(int argc, char **argv)
{
    Options opt = parseOptions(argc, argv);
    banner("Table 3: result summary (COH improvement, ROI "
           "improvement, characteristics)");

    ResultCache cache = cacheFor(opt);
    ParallelRunner runner(opt.jobs, &cache);
    std::vector<BenchmarkResult> results =
        runner.runSuite(allProfiles(), opt.experiment());

    std::sort(results.begin(), results.end(),
              [](const BenchmarkResult &a, const BenchmarkResult &b) {
                  return a.roiImprovementPct()
                      < b.roiImprovementPct();
              });

    std::printf("\n%-8s %-8s %8s %10s %10s %10s\n", "program",
                "suite", "CS rate", "net util", "COH impro",
                "ROI impro");
    double coh_p = 0, roi_p = 0, coh_o = 0, roi_o = 0;
    unsigned np = 0, no = 0;
    for (const auto &r : results) {
        std::printf("%-8s %-8s %8s %10s %9.1f%% %9.1f%%\n",
                    r.name.c_str(), r.suite.c_str(),
                    r.highCsRate ? "high" : "low",
                    r.highNetUtil ? "high" : "low",
                    r.cohImprovementPct(), r.roiImprovementPct());
        if (r.suite == "PARSEC") {
            coh_p += r.cohImprovementPct();
            roi_p += r.roiImprovementPct();
            ++np;
        } else {
            coh_o += r.cohImprovementPct();
            roi_o += r.roiImprovementPct();
            ++no;
        }
    }
    std::printf("\n%-17s COH %5.1f%%  ROI %5.1f%%   "
                "(paper: 40.4%% / 13.7%%)\n", "PARSEC average",
                coh_p / np, roi_p / np);
    std::printf("%-17s COH %5.1f%%  ROI %5.1f%%   "
                "(paper: 39.3%% / 15.1%%)\n", "OMP2012 average",
                coh_o / no, roi_o / no);
    std::printf("%-17s COH %5.1f%%  ROI %5.1f%%   "
                "(paper: 39.9%% / 14.4%%)\n", "overall average",
                (coh_p + coh_o) / (np + no),
                (roi_p + roi_o) / (np + no));
    return 0;
}
