/**
 * @file
 * Table 3: full result summary for the 64-thread case — COH
 * improvement, ROI finish-time improvement and the CS-rate /
 * network-utilization characterization for every benchmark, ordered
 * by ROI improvement, with per-suite and overall averages.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "workload/benchmarks.hh"

using namespace ocor;
using namespace ocor::bench;

int
main(int argc, char **argv)
{
    Options opt = parseOptions(argc, argv);
    banner("Table 3: result summary (COH improvement, ROI "
           "improvement, characteristics)");

    ResultCache cache = cacheFor(opt);
    ParallelRunner runner(opt.jobs, &cache);
    superviseRunner(runner, opt);
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<BenchmarkResult> results =
        runner.runSuite(allProfiles(), opt.experiment());
    const double elapsed = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - t0).count();

    std::sort(results.begin(), results.end(),
              [](const BenchmarkResult &a, const BenchmarkResult &b) {
                  return a.roiImprovementPct()
                      < b.roiImprovementPct();
              });

    std::printf("\n%-8s %-8s %8s %10s %10s %10s\n", "program",
                "suite", "CS rate", "net util", "COH impro",
                "ROI impro");
    double coh_p = 0, roi_p = 0, coh_o = 0, roi_o = 0;
    unsigned np = 0, no = 0;
    for (const auto &r : results) {
        std::printf("%-8s %-8s %8s %10s %9.1f%% %9.1f%%\n",
                    r.name.c_str(), r.suite.c_str(),
                    r.highCsRate ? "high" : "low",
                    r.highNetUtil ? "high" : "low",
                    r.cohImprovementPct(), r.roiImprovementPct());
        if (r.suite == "PARSEC") {
            coh_p += r.cohImprovementPct();
            roi_p += r.roiImprovementPct();
            ++np;
        } else {
            coh_o += r.cohImprovementPct();
            roi_o += r.roiImprovementPct();
            ++no;
        }
    }
    std::printf("\n%-17s COH %5.1f%%  ROI %5.1f%%   "
                "(paper: 40.4%% / 13.7%%)\n", "PARSEC average",
                coh_p / np, roi_p / np);
    std::printf("%-17s COH %5.1f%%  ROI %5.1f%%   "
                "(paper: 39.3%% / 15.1%%)\n", "OMP2012 average",
                coh_o / no, roi_o / no);
    std::printf("%-17s COH %5.1f%%  ROI %5.1f%%   "
                "(paper: 39.9%% / 14.4%%)\n", "overall average",
                (coh_p + coh_o) / (np + no),
                (roi_p + roi_o) / (np + no));

    // Latency tails: packet latency and lock-handover gap, original
    // vs OCOR. Zeros appear for results replayed from a cache file
    // written before these columns existed (rerun with --fresh).
    std::printf("\nlatency percentiles (cycles), original -> OCOR:\n");
    std::printf("%-8s %26s %26s\n", "program",
                "packet p50/p95/p99", "handover p50/p95/p99");
    for (const auto &r : results)
        std::printf("%-8s %7.1f/%7.1f/%7.1f  %7.1f/%7.1f/%7.1f\n"
                    "%-8s %7.1f/%7.1f/%7.1f  %7.1f/%7.1f/%7.1f\n",
                    r.name.c_str(), r.base.p50PacketLatency,
                    r.base.p95PacketLatency, r.base.p99PacketLatency,
                    r.base.p50LockHandover, r.base.p95LockHandover,
                    r.base.p99LockHandover, "  +ocor",
                    r.ocor.p50PacketLatency, r.ocor.p95PacketLatency,
                    r.ocor.p99PacketLatency, r.ocor.p50LockHandover,
                    r.ocor.p95LockHandover, r.ocor.p99LockHandover);

    // Hybrid-fidelity accuracy: rerun the table under exact fidelity
    // (a pure cache recall when the exact sweep already ran) and
    // quantify the error the analytic fast path introduces in the
    // table's headline metrics. The per-program rows also land in
    // hybrid_accuracy.json, machine-readable for CI trending.
    if (opt.fidelity == Fidelity::Hybrid) {
        ExperimentConfig exact_exp = opt.experiment();
        exact_exp.fidelity = Fidelity::Exact;
        std::vector<BenchmarkResult> exact =
            runner.runSuite(allProfiles(), exact_exp);

        std::printf("\nhybrid-fidelity accuracy vs exact:\n");
        std::printf("%-8s %12s %12s %10s %12s\n", "program",
                    "COH-i exact", "COH-i hybrid", "delta pts",
                    "base-COH err");
        double sum_abs = 0, max_abs = 0, sum_rel = 0, max_rel = 0;
        std::ofstream aj = openArtifact("hybrid_accuracy.json");
        aj << "[\n";
        for (std::size_t i = 0; i < exact.size(); ++i) {
            const BenchmarkResult &e = exact[i];
            auto it = std::find_if(
                results.begin(), results.end(),
                [&](const BenchmarkResult &h) {
                    return h.name == e.name;
                });
            if (it == results.end())
                continue;
            // Improvement error in percentage points; base-run COH
            // share error relative to the exact share (how far the
            // hybrid model's absolute COH estimate drifts).
            double d = it->cohImprovementPct()
                       - e.cohImprovementPct();
            double rel = e.base.cohPct() == 0.0
                ? 0.0
                : (it->base.cohPct() - e.base.cohPct())
                      / e.base.cohPct();
            sum_abs += std::abs(d);
            max_abs = std::max(max_abs, std::abs(d));
            sum_rel += std::abs(rel);
            max_rel = std::max(max_rel, std::abs(rel));
            std::printf("%-8s %11.1f%% %11.1f%% %9.1f %11.1f%%\n",
                        e.name.c_str(), e.cohImprovementPct(),
                        it->cohImprovementPct(), d, 100.0 * rel);
            aj << "  {\"name\": \"" << e.name
               << "\", \"coh_improvement_exact\": "
               << e.cohImprovementPct()
               << ", \"coh_improvement_hybrid\": "
               << it->cohImprovementPct()
               << ", \"delta_pts\": " << d
               << ", \"base_coh_pct_exact\": " << e.base.cohPct()
               << ", \"base_coh_pct_hybrid\": " << it->base.cohPct()
               << ", \"base_coh_rel_err\": " << rel << "}"
               << (i + 1 < exact.size() ? "," : "") << "\n";
        }
        aj << "]\n";
        std::printf("COH-improvement error: mean |delta| %.1f pts, "
                    "max %.1f pts; base-COH share error: mean %.1f%%,"
                    " max %.1f%% (-> hybrid_accuracy.json)\n",
                    sum_abs / exact.size(), max_abs,
                    100.0 * sum_rel / exact.size(), 100.0 * max_rel);
    }

    if (opt.poolUtil) {
        SampleStat rs = runner.runSeconds();
        std::printf("\npool: %u workers, %llu tasks, utilization "
                    "%.1f%% over %.2fs wall\n",
                    runner.jobs(),
                    static_cast<unsigned long long>(
                        runner.pool().tasksExecuted()),
                    100.0 * runner.utilization(elapsed), elapsed);
        std::printf("runs: %llu (mean %.3fs, max %.3fs each)\n",
                    static_cast<unsigned long long>(
                        runner.runsExecuted()),
                    rs.mean(), rs.max());
    }
    if (!opt.statsJson.empty()) {
        StatsRegistry reg;
        runner.registerStats(reg);
        std::ofstream out = openArtifact(opt.statsJson);
        reg.dumpJson(out);
        std::printf("stats: %zu entries -> %s\n", reg.size(),
                    opt.statsJson.c_str());
    }
    return sweepExitStatus(runner);
}
