/**
 * @file
 * Table 3: full result summary for the 64-thread case — COH
 * improvement, ROI finish-time improvement and the CS-rate /
 * network-utilization characterization for every benchmark, ordered
 * by ROI improvement, with per-suite and overall averages.
 */

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "os/lock_ledger.hh"
#include "workload/benchmarks.hh"

using namespace ocor;
using namespace ocor::bench;

int
main(int argc, char **argv)
{
    Options opt = parseOptions(argc, argv);
    banner("Table 3: result summary (COH improvement, ROI "
           "improvement, characteristics)");

    ResultCache cache = cacheFor(opt);
    ParallelRunner runner(opt.jobs, &cache);
    superviseRunner(runner, opt);
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<BenchmarkResult> results =
        runner.runSuite(opt.profiles(), opt.experiment());
    const double elapsed = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - t0).count();

    std::sort(results.begin(), results.end(),
              [](const BenchmarkResult &a, const BenchmarkResult &b) {
                  return a.roiImprovementPct()
                      < b.roiImprovementPct();
              });

    std::printf("\n%-8s %-8s %8s %10s %10s %10s\n", "program",
                "suite", "CS rate", "net util", "COH impro",
                "ROI impro");
    double coh_p = 0, roi_p = 0, coh_o = 0, roi_o = 0;
    unsigned np = 0, no = 0;
    for (const auto &r : results) {
        std::printf("%-8s %-8s %8s %10s %9.1f%% %9.1f%%\n",
                    r.name.c_str(), r.suite.c_str(),
                    r.highCsRate ? "high" : "low",
                    r.highNetUtil ? "high" : "low",
                    r.cohImprovementPct(), r.roiImprovementPct());
        if (r.suite == "PARSEC") {
            coh_p += r.cohImprovementPct();
            roi_p += r.roiImprovementPct();
            ++np;
        } else {
            coh_o += r.cohImprovementPct();
            roi_o += r.roiImprovementPct();
            ++no;
        }
    }
    std::printf("\n%-17s COH %5.1f%%  ROI %5.1f%%   "
                "(paper: 40.4%% / 13.7%%)\n", "PARSEC average",
                coh_p / np, roi_p / np);
    std::printf("%-17s COH %5.1f%%  ROI %5.1f%%   "
                "(paper: 39.3%% / 15.1%%)\n", "OMP2012 average",
                coh_o / no, roi_o / no);
    std::printf("%-17s COH %5.1f%%  ROI %5.1f%%   "
                "(paper: 39.9%% / 14.4%%)\n", "overall average",
                (coh_p + coh_o) / (np + no),
                (roi_p + roi_o) / (np + no));

    // Latency tails: packet latency and lock-handover gap, original
    // vs OCOR. Zeros appear for results replayed from a cache file
    // written before these columns existed (rerun with --fresh).
    std::printf("\nlatency percentiles (cycles), original -> OCOR:\n");
    std::printf("%-8s %26s %26s\n", "program",
                "packet p50/p95/p99", "handover p50/p95/p99");
    for (const auto &r : results)
        std::printf("%-8s %7.1f/%7.1f/%7.1f  %7.1f/%7.1f/%7.1f\n"
                    "%-8s %7.1f/%7.1f/%7.1f  %7.1f/%7.1f/%7.1f\n",
                    r.name.c_str(), r.base.p50PacketLatency,
                    r.base.p95PacketLatency, r.base.p99PacketLatency,
                    r.base.p50LockHandover, r.base.p95LockHandover,
                    r.base.p99LockHandover, "  +ocor",
                    r.ocor.p50PacketLatency, r.ocor.p95PacketLatency,
                    r.ocor.p99PacketLatency, r.ocor.p50LockHandover,
                    r.ocor.p95LockHandover, r.ocor.p99LockHandover);

    // COH cause breakdown (--coh-breakdown, DESIGN.md §14): how each
    // program's competition overhead splits into transfer /
    // arbitration / backoff / sleep / grant-gap cycles, original vs
    // OCOR. The rows also land in coh_breakdown.json for CI.
    if (opt.cohBreakdown) {
        auto causes = [](const RunMetrics &m) {
            std::array<std::uint64_t, kNumCohCauses> c{};
            for (const auto &t : m.perThread) {
                c[0] += t.cohTransferCycles;
                c[1] += t.cohArbitrationCycles;
                c[2] += t.cohBackoffCycles;
                c[3] += t.cohSleepCycles;
                c[4] += t.cohGrantGapCycles;
            }
            return c;
        };
        std::printf("\nCOH cause breakdown (%% of each run's COH):\n");
        std::printf("%-8s %-6s %12s %9s %9s %9s %9s %9s\n",
                    "program", "run", "COH cycles", "transfer",
                    "arbitr.", "backoff", "sleep", "grantgap");
        std::ofstream cj = openArtifact("coh_breakdown.json");
        cj << "[\n";
        for (std::size_t i = 0; i < results.size(); ++i) {
            const BenchmarkResult &r = results[i];
            const RunMetrics *runs[2] = {&r.base, &r.ocor};
            const char *labels[2] = {"base", "ocor"};
            for (int k = 0; k < 2; ++k) {
                const RunMetrics &m = *runs[k];
                const auto c = causes(m);
                const double coh =
                    static_cast<double>(m.totalCoh());
                auto pct = [&](std::uint64_t v) {
                    return coh == 0.0 ? 0.0 : 100.0 * v / coh;
                };
                std::printf("%-8s %-6s %12llu %8.1f%% %8.1f%% "
                            "%8.1f%% %8.1f%% %8.1f%%\n",
                            k == 0 ? r.name.c_str() : "",
                            labels[k],
                            static_cast<unsigned long long>(
                                m.totalCoh()),
                            pct(c[0]), pct(c[1]), pct(c[2]),
                            pct(c[3]), pct(c[4]));
                cj << "  {\"name\": \"" << r.name
                   << "\", \"run\": \"" << labels[k]
                   << "\", \"coh_cycles\": " << m.totalCoh();
                for (std::size_t ci = 0; ci < kNumCohCauses; ++ci)
                    cj << ", \"" << cohCauseName(
                              static_cast<CohCause>(ci))
                       << "\": " << c[ci];
                cj << "}"
                   << (i + 1 < results.size() || k == 0 ? "," : "")
                   << "\n";
            }
        }
        cj << "]\n";
        std::printf("(-> coh_breakdown.json; causes sum to each "
                    "run's COH by construction)\n");
    }

    // Hybrid-fidelity accuracy: rerun the table under exact fidelity
    // (a pure cache recall when the exact sweep already ran) and
    // quantify the error the analytic fast path introduces in the
    // table's headline metrics. The per-program rows also land in
    // hybrid_accuracy.json, machine-readable for CI trending.
    if (opt.fidelity == Fidelity::Hybrid) {
        ExperimentConfig exact_exp = opt.experiment();
        exact_exp.fidelity = Fidelity::Exact;
        std::vector<BenchmarkResult> exact =
            runner.runSuite(opt.profiles(), exact_exp);

        std::printf("\nhybrid-fidelity accuracy vs exact:\n");
        std::printf("%-8s %12s %12s %10s %12s\n", "program",
                    "COH-i exact", "COH-i hybrid", "delta pts",
                    "base-COH err");
        double sum_abs = 0, max_abs = 0, sum_rel = 0, max_rel = 0;
        std::ofstream aj = openArtifact("hybrid_accuracy.json");
        aj << "[\n";
        for (std::size_t i = 0; i < exact.size(); ++i) {
            const BenchmarkResult &e = exact[i];
            auto it = std::find_if(
                results.begin(), results.end(),
                [&](const BenchmarkResult &h) {
                    return h.name == e.name;
                });
            if (it == results.end())
                continue;
            // Improvement error in percentage points; base-run COH
            // share error relative to the exact share (how far the
            // hybrid model's absolute COH estimate drifts).
            double d = it->cohImprovementPct()
                       - e.cohImprovementPct();
            double rel = e.base.cohPct() == 0.0
                ? 0.0
                : (it->base.cohPct() - e.base.cohPct())
                      / e.base.cohPct();
            sum_abs += std::abs(d);
            max_abs = std::max(max_abs, std::abs(d));
            sum_rel += std::abs(rel);
            max_rel = std::max(max_rel, std::abs(rel));
            std::printf("%-8s %11.1f%% %11.1f%% %9.1f %11.1f%%\n",
                        e.name.c_str(), e.cohImprovementPct(),
                        it->cohImprovementPct(), d, 100.0 * rel);
            // Window coverage (share of the run spent inside open
            // fast-path windows) and analytic delivery share let CI
            // correlate hybrid error with how much of the run the
            // analytic model actually carried.
            const RunMetrics &hb = it->base;
            double coverage = hb.roiFinish == 0
                ? 0.0
                : static_cast<double>(hb.windowCycles)
                    / static_cast<double>(hb.roiFinish);
            double total_pkts = static_cast<double>(
                hb.packetsInjected + hb.fastpathPackets);
            double analytic_share = total_pkts == 0.0
                ? 0.0
                : static_cast<double>(hb.fastpathPackets)
                    / total_pkts;
            aj << "  {\"name\": \"" << e.name
               << "\", \"coh_improvement_exact\": "
               << e.cohImprovementPct()
               << ", \"coh_improvement_hybrid\": "
               << it->cohImprovementPct()
               << ", \"delta_pts\": " << d
               << ", \"base_coh_pct_exact\": " << e.base.cohPct()
               << ", \"base_coh_pct_hybrid\": " << it->base.cohPct()
               << ", \"base_coh_rel_err\": " << rel
               << ", \"window_coverage\": " << coverage
               << ", \"analytic_share\": " << analytic_share
               << ", \"windows_opened\": " << hb.windowsOpened
               << ", \"windows_closed\": " << hb.windowsClosed
               << "}"
               << (i + 1 < exact.size() ? "," : "") << "\n";
        }
        aj << "]\n";
        std::printf("COH-improvement error: mean |delta| %.1f pts, "
                    "max %.1f pts; base-COH share error: mean %.1f%%,"
                    " max %.1f%% (-> hybrid_accuracy.json)\n",
                    sum_abs / exact.size(), max_abs,
                    100.0 * sum_rel / exact.size(), 100.0 * max_rel);
    }

    if (opt.poolUtil) {
        SampleStat rs = runner.runSeconds();
        std::printf("\npool: %u workers, %llu tasks, utilization "
                    "%.1f%% over %.2fs wall\n",
                    runner.jobs(),
                    static_cast<unsigned long long>(
                        runner.pool().tasksExecuted()),
                    100.0 * runner.utilization(elapsed), elapsed);
        std::printf("runs: %llu (mean %.3fs, max %.3fs each)\n",
                    static_cast<unsigned long long>(
                        runner.runsExecuted()),
                    rs.mean(), rs.max());
    }
    dumpStatsJson(opt, &runner);
    return sweepExitStatus(runner);
}
