/**
 * @file
 * Figure 11: (a) COH reduction across all 25 benchmarks, sorted from
 * most to least improvement; (b) percentage of critical sections won
 * in the low-overhead spinning phase, without and with OCOR.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "workload/benchmarks.hh"

using namespace ocor;
using namespace ocor::bench;

int
main(int argc, char **argv)
{
    Options opt = parseOptions(argc, argv);
    banner("Figure 11: COH reduction and spinning-phase win rate");

    ResultCache cache = cacheFor(opt);
    ParallelRunner runner(opt.jobs, &cache);
    superviseRunner(runner, opt);
    // --profile narrows the sweep to one benchmark (the README's
    // wake-attribution walkthrough profiles a single slow profile).
    std::vector<BenchmarkResult> results =
        runner.runSuite(opt.profiles(), opt.experiment());

    std::sort(results.begin(), results.end(),
              [](const BenchmarkResult &a, const BenchmarkResult &b) {
                  return a.cohImprovementPct()
                      > b.cohImprovementPct();
              });

    std::printf("\n(a) COH reduction, sorted most -> least\n");
    std::printf("%-8s %-8s %9s  %s\n", "program", "suite",
                "COH red.", "bar (0..100%)");
    double sum = 0, parsec_sum = 0, omp_sum = 0;
    unsigned parsec_n = 0, omp_n = 0;
    for (const auto &r : results) {
        double v = r.cohImprovementPct();
        std::printf("%-8s %-8s %8.1f%%  |%s|\n", r.name.c_str(),
                    r.suite.c_str(), v, bar(v, 100.0).c_str());
        sum += v;
        if (r.suite == "PARSEC") {
            parsec_sum += v;
            ++parsec_n;
        } else {
            omp_sum += v;
            ++omp_n;
        }
    }
    std::printf("averages: PARSEC %.1f%% | OMP2012 %.1f%% | "
                "overall %.1f%%\n",
                parsec_n ? parsec_sum / parsec_n : 0.0,
                omp_n ? omp_sum / omp_n : 0.0,
                sum / results.size());
    std::printf("(paper: PARSEC 40.4%%, OMP2012 39.3%%, overall "
                "39.9%%, max 61.8%% botss, min 12.5%% imag)\n");

    std::printf("\n(b) %% of CS entered in the spinning phase "
                "(same benchmark order)\n");
    std::printf("%-8s %10s %10s %8s\n", "program", "original",
                "OCOR", "gain");
    double gain_sum = 0;
    for (const auto &r : results) {
        std::printf("%-8s %9.1f%% %9.1f%% %+7.1f\n", r.name.c_str(),
                    r.base.spinWinPct(), r.ocor.spinWinPct(),
                    r.spinWinImprovementPts());
        gain_sum += r.spinWinImprovementPts();
    }
    std::printf("average gain: %+.1f points (paper: +33.1)\n",
                gain_sum / results.size());

    // Machine-readable COH summary for the regression tracker:
    // run_benches.sh folds this into BENCH_sweep.json ("coh") and
    // scripts/bench_compare.py diffs it against a baseline sweep.
    {
        std::ofstream cj = openArtifact("coh_summary.json");
        cj << "{\n  \"programs\": {\n";
        for (std::size_t i = 0; i < results.size(); ++i)
            cj << "    \"" << results[i].name << "\": "
               << results[i].cohImprovementPct()
               << (i + 1 < results.size() ? ",\n" : "\n");
        cj << "  },\n";
        cj << "  \"parsec_mean\": "
           << (parsec_n ? parsec_sum / parsec_n : 0.0) << ",\n";
        cj << "  \"omp_mean\": "
           << (omp_n ? omp_sum / omp_n : 0.0) << ",\n";
        cj << "  \"overall_mean\": " << sum / results.size() << ",\n";
        cj << "  \"spin_win_gain_mean_pts\": "
           << gain_sum / results.size() << "\n}\n";
    }
    dumpStatsJson(opt, &runner);
    return sweepExitStatus(runner);
}
