/**
 * @file
 * Figure 8: priority-based vs round-robin packet scheduling at one
 * router.
 *
 * Recreates the paper's example: locking requests R^a_1..R^a_3 from
 * slow-progress threads, R^b_1..R^b_3 from fast-progress threads
 * (subscript = RTR value), and a wake-up request W^b, all contending
 * for the same output port. Prints the departure order under the
 * baseline round-robin router and under OCOR's priority rules.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "noc/router.hh"

using namespace ocor;

namespace
{

struct NamedPacket
{
    std::string name;
    PacketPtr pkt;
};

/** Drive one router with the Figure-8 traffic mix. */
std::vector<std::string>
departureOrder(bool ocor_on)
{
    MeshShape mesh{2, 1};
    NocParams params;
    OcorConfig ocor;
    ocor.enabled = ocor_on;
    OcorConfig stamping; // fields always stamped as the NI would
    stamping.enabled = true;

    Router router(0, mesh, params, ocor);
    Link into_west, into_local, into_east, out_east, out_local;
    router.attach(PortWest, &into_west, nullptr);
    router.attach(PortLocal, &into_local, &out_local);
    router.attach(PortEast, &into_east, &out_east);

    // a = slow progress (PROG 0), b = fast progress (PROG 32).
    std::vector<NamedPacket> named;
    auto add = [&](const std::string &name, PriorityClass cls,
                   unsigned rtr, std::uint64_t prog) {
        auto pkt = makePacket(cls == PriorityClass::Wakeup
                                  ? MsgType::FutexWake
                                  : MsgType::LockTry,
                              0, 1, 0x1000);
        pkt->priority = makePriority(stamping, cls, rtr, prog);
        named.push_back({name, pkt});
    };
    // Injected in a scrambled arrival order (as in the figure the
    // requests reach router R interleaved); the schedulers decide
    // the departure order.
    add("R^b_3", PriorityClass::LockTry, 33, 32);
    add("R^a_2", PriorityClass::LockTry, 17, 0);
    add("W^b", PriorityClass::Wakeup, 1, 32);
    add("R^b_1", PriorityClass::LockTry, 1, 32);
    add("R^a_3", PriorityClass::LockTry, 33, 0);
    add("R^a_1", PriorityClass::LockTry, 1, 0);
    add("R^b_2", PriorityClass::LockTry, 17, 32);

    // Inject alternating across two input ports (west/local), one
    // flit per port per cycle, mimicking the figure's two VC
    // columns: the requests pile up faster than the single east
    // output can drain them, so the allocators must arbitrate.
    Cycle c = 0;
    for (std::size_t i = 0; i < named.size(); ++i) {
        Flit f;
        f.pkt = named[i].pkt;
        f.type = FlitType::HeadTail;
        f.vc = static_cast<unsigned>(i / 2 % params.numVcs);
        (i % 2 == 0 ? into_west : into_local).sendFlit(f, c);
        if (i % 2 == 1)
            ++c;
    }

    std::vector<std::string> order;
    for (Cycle t = 0; t <= 60 && order.size() < named.size(); ++t) {
        router.tick(t);
        while (auto f = out_east.takeFlit(t)) {
            out_east.sendCredit(f->vc, t);
            for (const auto &n : named)
                if (n.pkt->id == f->pkt->id)
                    order.push_back(n.name);
        }
    }
    return order;
}

void
printOrder(const char *label, const std::vector<std::string> &order)
{
    std::printf("%-34s", label);
    for (const auto &n : order)
        std::printf(" %s", n.c_str());
    std::printf("\n");
}

} // namespace

int
main()
{
    ocor::bench::banner("Figure 8: departure order, round-robin vs "
                        "priority-based scheduling");
    std::printf("\nPackets: R^p_r = locking request (progress p, "
                "RTR r); W^b = wakeup request.\n"
                "a = slow progress, b = fast progress; smaller r = "
                "closer to sleeping.\n\n");
    printOrder("baseline (round-robin):", departureOrder(false));
    printOrder("OCOR (Table 1 rules):", departureOrder(true));
    std::printf("\nExpected under OCOR: among simultaneously queued "
                "requests, slow-progress (a) packets\nbeat "
                "fast-progress (b) ones, smaller-RTR packets beat "
                "larger-RTR ones, and the\nwakeup request W^b "
                "departs strictly last (Wakeup Request Last). The "
                "baseline\nround-robin order ignores all three "
                "fields.\n");
    return 0;
}
