/**
 * @file
 * Figure 13: relative critical-section execution time.
 *
 * OCOR attacks the competition for critical sections, not their
 * execution: per-acquisition CS time must be essentially unchanged
 * between the original design and OCOR.
 */

#include <cstdio>

#include "bench_util.hh"
#include "workload/benchmarks.hh"

using namespace ocor;
using namespace ocor::bench;

int
main(int argc, char **argv)
{
    Options opt = parseOptions(argc, argv);
    banner("Figure 13: relative critical section execution time "
           "(OCOR / original)");

    ResultCache cache = cacheFor(opt);
    ParallelRunner runner(opt.jobs, &cache);
    superviseRunner(runner, opt);
    std::vector<BenchmarkResult> results =
        runner.runSuite(allProfiles(), opt.experiment());

    std::printf("\n%-8s %12s %12s %10s\n", "program",
                "orig cyc/CS", "OCOR cyc/CS", "relative");
    double rel_sum = 0;
    unsigned n = 0;
    for (const auto &r : results) {
        double base_cs = static_cast<double>(r.base.totalCs())
            / static_cast<double>(r.base.totalAcquisitions());
        double ocor_cs = static_cast<double>(r.ocor.totalCs())
            / static_cast<double>(r.ocor.totalAcquisitions());
        double rel = base_cs == 0 ? 1.0 : ocor_cs / base_cs;
        std::printf("%-8s %12.1f %12.1f %9.3f\n", r.name.c_str(),
                    base_cs, ocor_cs, rel);
        rel_sum += rel;
        ++n;
    }
    std::printf("average relative CS time: %.3f (paper: ~1.0, "
                "negligible effect)\n", rel_sum / n);
    dumpStatsJson(opt, &runner);
    return sweepExitStatus(runner);
}
