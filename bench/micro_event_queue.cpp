/**
 * @file
 * Microbenchmarks (google-benchmark) of the calendar-queue EventWheel
 * behind the event-driven core: steady-state schedule/pop throughput
 * at simulator-like occupancies, window advancing across quiet spans,
 * and the overflow-pool migration path. A binary-heap reference
 * (std::priority_queue with the same (cycle, rank, seq) ordering)
 * runs the same steady-state loop so the calendar queue's O(1)
 * steady-state claim is checked against the obvious alternative.
 */

#include <benchmark/benchmark.h>

#include <queue>
#include <vector>

#include "common/rng.hh"
#include "sim/event_wheel.hh"

using namespace ocor;

namespace
{

/**
 * Steady state of the event core: a handful of component groups
 * (ranks 0..6) keep ~occupancy events pending within a short horizon;
 * every pop reschedules a near-future successor, like a component
 * re-arming its next wakeup.
 */
void
BM_WheelSchedulePop(benchmark::State &state)
{
    const auto occupancy = static_cast<std::size_t>(state.range(0));
    EventWheel w;
    Rng rng(1);
    Cycle now = 0;
    for (std::size_t i = 0; i < occupancy; ++i)
        w.schedule(now + 1 + rng.range(32),
                   static_cast<std::uint32_t>(rng.range(7)));
    for (auto _ : state) {
        WheelEvent e = w.pop();
        now = e.cycle;
        w.schedule(now + 1 + rng.range(32),
                   static_cast<std::uint32_t>(rng.range(7)));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WheelSchedulePop)->Arg(8)->Arg(64)->Arg(512);

/** Same steady-state loop on a binary heap, for reference. */
void
BM_BinaryHeapSchedulePop(benchmark::State &state)
{
    const auto occupancy = static_cast<std::size_t>(state.range(0));
    auto after = [](const WheelEvent &a, const WheelEvent &b) {
        return wheelEventBefore(b, a);
    };
    std::priority_queue<WheelEvent, std::vector<WheelEvent>,
                        decltype(after)>
        q(after);
    Rng rng(1);
    Cycle now = 0;
    std::uint64_t seq = 0;
    for (std::size_t i = 0; i < occupancy; ++i)
        q.push({now + 1 + rng.range(32),
                static_cast<std::uint32_t>(rng.range(7)), seq++, 0});
    for (auto _ : state) {
        WheelEvent e = q.top();
        q.pop();
        now = e.cycle;
        q.push({now + 1 + rng.range(32),
                static_cast<std::uint32_t>(rng.range(7)), seq++, 0});
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BinaryHeapSchedulePop)->Arg(8)->Arg(64)->Arg(512);

/**
 * Quiet-span advance: one far-future event, nextCycle() must slide
 * the window across the gap (the operation behind cyclesSkipped).
 * The schedule, the slide and the pop are all part of the measured
 * skip cost — exactly what one quiet span costs the event loop.
 */
void
BM_WheelAdvanceQuietSpan(benchmark::State &state)
{
    const auto gap = static_cast<Cycle>(state.range(0));
    EventWheel w;
    Cycle now = 0;
    for (auto _ : state) {
        w.schedule(now + gap, 0);
        benchmark::DoNotOptimize(w.nextCycle());
        now = w.pop().cycle;
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WheelAdvanceQuietSpan)->Arg(100)->Arg(4'096)->Arg(65'536);

/**
 * Overflow migration: events land beyond the 4096-cycle window, the
 * window slides, and they migrate back into the ring in batches.
 */
void
BM_WheelOverflowMigration(benchmark::State &state)
{
    const auto batch = static_cast<std::size_t>(state.range(0));
    EventWheel w;
    Rng rng(7);
    Cycle now = 0;
    for (auto _ : state) {
        for (std::size_t i = 0; i < batch; ++i)
            w.schedule(now + 10'000 + rng.range(1'000),
                       static_cast<std::uint32_t>(rng.range(7)));
        while (!w.empty())
            now = w.pop().cycle;
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * batch));
}
BENCHMARK(BM_WheelOverflowMigration)->Arg(16)->Arg(256);

} // namespace

BENCHMARK_MAIN();
