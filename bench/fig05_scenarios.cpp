/**
 * @file
 * Figure 5: the fast/slow locking scenarios, with the paper's unit
 * costs (CS = 2, retry interval = 1, sleep preparation = wake-up =
 * 4 time units).
 *
 * (a) Three spinning threads: granting the *lower-RTR* competitor
 *     first avoids a sleep/wake round entirely.
 * (b) A sleeping thread plus a fresh spinner: granting the sleeper
 *     *later* (Wakeup Request Last) lets the spinner finish cheaply
 *     first.
 *
 * This bench evaluates the scenario timings analytically (no NoC),
 * exactly as the figure does, and reports total competition
 * overhead in each ordering.
 */

#include <algorithm>
#include <cstdio>

#include "bench_util.hh"

namespace
{

constexpr unsigned csCost = 2;
constexpr unsigned sleepPrep = 4;
constexpr unsigned wakeUp = 4;

/**
 * Scenario (a): tau1 holds the CS during [2, 4); tau2 (RTR 2) and
 * tau3 (RTR 1) are spinning. Returns {finish time, slept threads}
 * when @p grant_low_rtr_first decides who gets the lock at t = 4.
 */
std::pair<unsigned, unsigned>
scenarioA(bool grant_low_rtr_first)
{
    // tau3 will exhaust its spin budget 1 time unit after t=4;
    // tau2 two units after.
    unsigned t = 4;
    unsigned slept = 0;
    unsigned tau2_deadline = 6;
    unsigned tau3_deadline = 5;

    auto run_cs = [&](unsigned start) { return start + csCost; };

    if (grant_low_rtr_first) {
        // tau3 (RTR 1) first: enters at 4, done at 6. tau2 spins on
        // (deadline 6) and receives the lock exactly in time.
        t = run_cs(4);
        if (t > tau2_deadline)
            ++slept;
        t = run_cs(std::max(t, 4u));
    } else {
        // tau2 first: tau3's budget expires at 5 while waiting; it
        // pays sleep preparation and wake-up on top.
        t = run_cs(4);
        (void)tau3_deadline;
        ++slept;
        unsigned wake_done = std::max(t, 5 + sleepPrep) + wakeUp;
        t = run_cs(wake_done);
    }
    return {t, slept};
}

/**
 * Scenario (b): tau2 releases at 6; tau3 sleeps already; tau4 is
 * spinning. Either the wakeup (slow) or tau4's request (fast) wins.
 */
std::pair<unsigned, unsigned>
scenarioB(bool spinner_first)
{
    unsigned slept = 1; // tau3 is asleep either way
    unsigned t = 6;
    if (spinner_first) {
        // tau4 enters immediately; tau3 is woken afterwards.
        t = t + csCost;              // tau4's CS
        t = t + wakeUp + csCost;     // tau3 wakes, then its CS
    } else {
        // tau3 is woken first; tau4's budget expires meanwhile and
        // it also goes to sleep.
        ++slept;
        t = t + wakeUp + csCost;              // tau3
        t = t + sleepPrep - wakeUp;           // overlap bookkeeping
        t = t + wakeUp + csCost;              // tau4 after wake
    }
    return {t, slept};
}

} // namespace

int
main()
{
    ocor::bench::banner(
        "Figure 5: locking scenarios with unit costs "
        "(CS=2, retry=1, sleep-prep=wake=4)");

    auto [slow_a, slept_slow_a] = scenarioA(false);
    auto [fast_a, slept_fast_a] = scenarioA(true);
    std::printf("\nScenario (a): 3 spinning threads, one CS\n");
    std::printf("  slow (grant higher-RTR first): finish t=%u, "
                "%u thread(s) slept\n", slow_a, slept_slow_a);
    std::printf("  fast (Least RTR First)       : finish t=%u, "
                "%u thread(s) slept\n", fast_a, slept_fast_a);
    std::printf("  saving: %u time units\n", slow_a - fast_a);

    auto [slow_b, slept_slow_b] = scenarioB(false);
    auto [fast_b, slept_fast_b] = scenarioB(true);
    std::printf("\nScenario (b): sleeping thread vs fresh spinner\n");
    std::printf("  slow (wakeup request first)  : finish t=%u, "
                "%u thread(s) slept\n", slow_b, slept_slow_b);
    std::printf("  fast (Wakeup Request Last)   : finish t=%u, "
                "%u thread(s) slept\n", fast_b, slept_fast_b);
    std::printf("  saving: %u time units\n", slow_b - fast_b);

    std::printf("\nBoth OCOR rules turn the slow scenario into the "
                "fast one.\n");
    return 0;
}
