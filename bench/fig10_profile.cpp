/**
 * @file
 * Figure 10: execution profile of bodytrack without and with OCOR.
 *
 * Records a per-cycle activity timeline of the first 16 threads over
 * the first 3000 cycles (as in the paper) plus a longer horizon for
 * stable fractions, and prints the parallel / blocked / CS split and
 * an ASCII rendering of the per-thread timeline.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/thread_pool.hh"
#include "sim/simulator.hh"
#include "workload/benchmarks.hh"
#include "workload/synthetic.hh"

using namespace ocor;
using namespace ocor::bench;

namespace
{

/** Everything the printer needs from one timeline run. */
struct ProfileRun
{
    RunMetrics m;
    Timeline tl;
};

constexpr Cycle kHorizon = 60000;

/**
 * One timeline run. When @p observe is set the run carries the
 * observability flags: event tracing per --trace, interval telemetry
 * per --telemetry-interval, and a stats-registry dump per
 * --stats-json, all exported before the Simulator dies. Artifacts are
 * produced for the OCOR run only (the interesting one for Figure 10).
 */
ProfileRun
computeRun(const BenchmarkProfile &profile, const Options &opt,
           bool ocor_on, bool observe)
{
    SystemConfig cfg;
    cfg.mesh = SystemConfig::meshFor(opt.threads);
    cfg.numThreads = opt.threads;
    cfg.seed = opt.seed;
    cfg.ocor.enabled = ocor_on;
    cfg.check.checks = opt.checkMask();
    if (observe && opt.tracing()) {
        cfg.trace.categories = parseTraceCats(opt.traceCats);
        cfg.trace.capacity = opt.traceCapacity;
    }

    SyntheticParams wl = profile.workload;
    wl.iterations = opt.iterations;
    std::vector<Program> programs;
    for (ThreadId t = 0; t < cfg.numThreads; ++t)
        programs.push_back(buildSyntheticProgram(wl, opt.seed, t));

    SimOptions sim_opts;
    sim_opts.timelineHorizon = kHorizon;
    sim_opts.timelineThreads = 16;
    if (observe) {
        sim_opts.telemetryInterval = opt.telemetryInterval;
        // --coh-ledger surfaces the per-lock COH cause histograms
        // ("sim.coh.*") in this run's stats dump.
        sim_opts.cohLedger = opt.cohLedger;
        // The stats dump carries sim.wall.* (tick vs accounting vs
        // event scheduling); the phase split needs the profiler on.
        sim_opts.profileWall = !opt.statsJson.empty();
    }
    Simulator sim(cfg, std::move(programs), profile.traffic,
                  sim_opts);
    ProfileRun run;
    run.m = sim.run();
    run.tl = sim.timeline();

    if (observe) {
        if (Tracer *tr = sim.system().tracer())
            writeTrace(*tr, opt.traceOut);
        if (!opt.statsJson.empty()) {
            StatsRegistry reg;
            sim.registerStats(reg);
            // Process-global aggregates ride along (the sim.wall.*
            // keys above win; sim.wake.* appears under
            // --wake-profile).
            registerAggregateStats(reg);
            std::ofstream out = openArtifact(opt.statsJson);
            reg.dumpJson(out);
            std::printf("stats: %zu entries -> %s\n", reg.size(),
                        opt.statsJson.c_str());
        }
        if (opt.telemetryInterval > 0) {
            std::ofstream out = openArtifact(opt.telemetryOut);
            sim.telemetry().exportCsv(out);
            std::printf("telemetry: %zu samples x %zu rows -> %s\n",
                        sim.telemetry().points(),
                        sim.telemetry().rows().size(),
                        opt.telemetryOut.c_str());
        }
    }
    return run;
}

void
printRun(const ProfileRun &run, bool ocor_on)
{
    const RunMetrics &m = run.m;
    const Timeline &tl = run.tl;

    std::printf("\n--- %s ---\n", ocor_on ? "with OCOR"
                                          : "without OCOR (original)");
    std::printf("ROI finish: %llu cycles\n",
                static_cast<unsigned long long>(m.roiFinish));
    Cycle upto = std::min<Cycle>(kHorizon, m.roiFinish);
    std::printf("first %llu cycles, 16 threads: parallel %.1f%% | "
                "blocked %.1f%% | CS %.1f%%\n",
                static_cast<unsigned long long>(upto),
                100.0 * tl.fraction(SegClass::Parallel, upto),
                100.0 * tl.fraction(SegClass::Blocked, upto),
                100.0 * tl.fraction(SegClass::Cs, upto));
    std::printf("whole run: blocked %.1f%% (COH %.1f%%), "
                "CS %.1f%%\n", m.blockedPct(), m.cohPct(),
                m.csPct());

    // ASCII timeline: one row per thread, 100 columns covering the
    // first 3000-cycle window scaled like the paper's figure.
    const Cycle window = std::min<Cycle>(upto, 30000);
    const unsigned cols = 100;
    std::printf("timeline (first %llu cycles; '.' parallel, "
                "'x' blocked, 'C' critical section):\n",
                static_cast<unsigned long long>(window));
    for (unsigned t = 0; t < 16 && t < tl.threads(); ++t) {
        std::printf("t%02u ", t);
        for (unsigned col = 0; col < cols; ++col) {
            Cycle lo = window * col / cols;
            Cycle hi = window * (col + 1) / cols;
            unsigned blocked = 0, cs = 0, total = 0;
            for (Cycle c = lo; c < hi; ++c) {
                switch (tl.at(t, c)) {
                  case SegClass::Blocked: ++blocked; break;
                  case SegClass::Cs: ++cs; break;
                  default: break;
                }
                ++total;
            }
            char ch = '.';
            if (cs * 3 > total)
                ch = 'C';
            else if (blocked * 2 > total)
                ch = 'x';
            std::putchar(ch);
        }
        std::printf("\n");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = parseOptions(argc, argv);
    banner("Figure 10: execution profile of bodytrack (body), "
           "original vs OCOR");
    BenchmarkProfile profile = profileByName("body");

    const bool observe = opt.tracing() || !opt.statsJson.empty() ||
        opt.telemetryInterval > 0;
    if (observe) {
        // Observability artifacts print as they are written; run
        // serially so the exports interleave deterministically with
        // the profile output.
        ProfileRun base = computeRun(profile, opt, false, false);
        ProfileRun ocor = computeRun(profile, opt, true, true);
        printRun(base, false);
        printRun(ocor, true);
    } else {
        // The two timeline runs are independent; compute them
        // concurrently and print serially in the original order.
        ThreadPool pool(opt.jobs == 0 ? 2 : std::min(opt.jobs, 2u));
        auto base = pool.run(
            [&] { return computeRun(profile, opt, false, false); });
        auto ocor = pool.run(
            [&] { return computeRun(profile, opt, true, false); });
        printRun(base.get(), false);
        printRun(ocor.get(), true);
    }
    std::printf("\nExpected shape: with OCOR the blocked ('x') "
                "share shrinks and the run compresses.\n");
    return 0;
}
