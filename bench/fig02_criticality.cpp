/**
 * @file
 * Figure 2: criticality of competition overhead.
 *
 * For every benchmark under the *original* queue spinlock, print the
 * percentage of ROI time threads spend executing critical sections
 * (CS) versus competing for them (COH). The paper's point: COH
 * dwarfs CS itself.
 */

#include "bench_util.hh"
#include "workload/benchmarks.hh"

using namespace ocor;
using namespace ocor::bench;

int
main(int argc, char **argv)
{
    Options opt = parseOptions(argc, argv);
    banner("Figure 2: % of ROI finish time spent in CS vs COH "
           "(original queue spinlock)");

    ResultCache cache = cacheFor(opt);
    ParallelRunner runner(opt.jobs, &cache);
    superviseRunner(runner, opt);
    ExperimentConfig exp = opt.experiment();

    // Baseline-only sweep: one request per profile, fanned across
    // the pool; results come back in profile order.
    auto profiles = allProfiles();
    std::vector<RunRequest> reqs;
    reqs.reserve(profiles.size());
    for (const auto &p : profiles)
        reqs.push_back({p, exp, false});
    std::vector<RunMetrics> metrics = runner.run(reqs);

    std::printf("%-8s %-8s  %6s  %6s  %s\n", "program", "suite",
                "CS%", "COH%", "COH bar (0..60%)");
    double cs_sum = 0, coh_sum = 0;
    for (std::size_t i = 0; i < profiles.size(); ++i) {
        const auto &p = profiles[i];
        const RunMetrics &m = metrics[i];
        std::printf("%-8s %-8s  %5.1f%%  %5.1f%%  |%s|\n",
                    p.name.c_str(), p.suite.c_str(), m.csPct(),
                    m.cohPct(), bar(m.cohPct(), 60.0).c_str());
        cs_sum += m.csPct();
        coh_sum += m.cohPct();
    }
    std::printf("%-8s %-8s  %5.1f%%  %5.1f%%\n", "average", "",
                cs_sum / profiles.size(), coh_sum / profiles.size());
    std::printf("\nPaper's observation: COH is several times the CS "
                "execution time itself.\n");
    dumpStatsJson(opt, &runner);
    return sweepExitStatus(runner);
}
