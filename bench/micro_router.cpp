/**
 * @file
 * Microbenchmarks (google-benchmark) of the hot arbitration paths:
 * the Table-1 rank computation, the one-hot LPA, the rank arbiter,
 * and a full router tick under load. These quantify the "low
 * overhead" claim of Section 4.2's comparator-free design and keep
 * the simulator's inner loop honest.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "noc/arbiter.hh"
#include "noc/router.hh"

using namespace ocor;

namespace
{

OcorConfig
enabledCfg()
{
    OcorConfig cfg;
    cfg.enabled = true;
    return cfg;
}

void
BM_PriorityRank(benchmark::State &state)
{
    OcorConfig cfg = enabledCfg();
    auto f = makePriority(cfg, PriorityClass::LockTry, 17, 5);
    for (auto _ : state)
        benchmark::DoNotOptimize(priorityRank(cfg, f));
}
BENCHMARK(BM_PriorityRank);

void
BM_MakePriority(benchmark::State &state)
{
    OcorConfig cfg = enabledCfg();
    unsigned rtr = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            makePriority(cfg, PriorityClass::LockTry, rtr, 3));
        rtr = rtr % 128 + 1;
    }
}
BENCHMARK(BM_MakePriority);

void
BM_LpaSelect(benchmark::State &state)
{
    OcorConfig cfg = enabledCfg();
    std::vector<LpaInput> inputs(
        static_cast<std::size_t>(state.range(0)));
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        inputs[i].valid = true;
        inputs[i].fields = makePriority(
            cfg, PriorityClass::LockTry,
            static_cast<unsigned>(1 + i * 16 % 128), i % 8);
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(lpaSelect(cfg, inputs));
}
BENCHMARK(BM_LpaSelect)->Arg(2)->Arg(6)->Arg(16);

void
BM_ArbiterPick(benchmark::State &state)
{
    Arbiter arb(static_cast<unsigned>(state.range(0)));
    std::vector<std::int64_t> ranks(
        static_cast<std::size_t>(state.range(0)));
    for (std::size_t i = 0; i < ranks.size(); ++i)
        ranks[i] = static_cast<std::int64_t>(i % 5);
    for (auto _ : state)
        benchmark::DoNotOptimize(arb.pick(ranks));
}
BENCHMARK(BM_ArbiterPick)->Arg(6)->Arg(30);

void
BM_RouterTickLoaded(benchmark::State &state)
{
    const bool ocor_on = state.range(0) != 0;
    MeshShape mesh{2, 1};
    NocParams params;
    OcorConfig ocor;
    ocor.enabled = ocor_on;
    OcorConfig stamping = enabledCfg();

    Router router(0, mesh, params, ocor);
    Link in_w, in_l, in_e, out_e, out_l;
    router.attach(PortWest, &in_w, nullptr);
    router.attach(PortLocal, &in_l, &out_l);
    router.attach(PortEast, &in_e, &out_e);

    Cycle now = 0;
    unsigned i = 0;
    for (auto _ : state) {
        // Keep both input ports fed with competing lock packets.
        for (Link *link : {&in_w, &in_l}) {
            const unsigned seq = i++;
            auto pkt = makePacket(MsgType::LockTry, 0, 1, 0x80);
            pkt->priority = makePriority(
                stamping, PriorityClass::LockTry,
                1 + (seq % 128), seq % 16);
            Flit f;
            f.pkt = pkt;
            f.type = FlitType::HeadTail;
            f.vc = seq % params.numVcs;
            // Respect buffer space: drop when the VC is full.
            if (router.vc(link == &in_w ? PortWest : PortLocal,
                          f.vc).fifo.size() < params.vcDepth)
                link->sendFlit(f, now);
        }
        router.tick(now);
        while (auto f = out_e.takeFlit(now))
            out_e.sendCredit(f->vc, now);
        ++now;
    }
    state.counters["flits/cycle"] = benchmark::Counter(
        static_cast<double>(router.stats().flitsRouted),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RouterTickLoaded)->Arg(0)->Arg(1);

} // namespace

BENCHMARK_MAIN();
