/**
 * @file
 * Microbenchmarks (google-benchmark) of the simulator's per-cycle
 * hot path: System::tick plus the accounting oracle, measured via
 * Simulator::stepCycle on a contended profile (botss: high CS rate,
 * many blocked threads exercising the lockHolderInCs memo) and an
 * uncontended one (imag: mostly parallel compute). These quantify
 * the wins from the holder memo, the live-thread list and the
 * single-requester arbiter fast path.
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "sim/simulator.hh"
#include "workload/benchmarks.hh"
#include "workload/synthetic.hh"

using namespace ocor;

namespace
{

constexpr unsigned kThreads = 16;
constexpr unsigned kSeed = 1;

std::unique_ptr<Simulator>
makeSim(const BenchmarkProfile &profile)
{
    SystemConfig cfg;
    cfg.mesh = SystemConfig::meshFor(kThreads);
    cfg.numThreads = kThreads;
    cfg.seed = kSeed;
    cfg.ocor.enabled = false;

    SyntheticParams wl = profile.workload;
    std::vector<Program> programs;
    for (ThreadId t = 0; t < cfg.numThreads; ++t)
        programs.push_back(buildSyntheticProgram(wl, kSeed, t));

    return std::make_unique<Simulator>(cfg, std::move(programs),
                                       profile.traffic);
}

/**
 * Step one cycle per iteration; when the workload drains, rebuild
 * the simulator outside the timed region so the numbers only cover
 * live steady-state cycles.
 */
void
stepLoop(benchmark::State &state, const char *name)
{
    BenchmarkProfile profile = profileByName(name);
    std::unique_ptr<Simulator> sim = makeSim(profile);
    for (auto _ : state) {
        if (sim->system().allFinished()) {
            state.PauseTiming();
            sim = makeSim(profile);
            state.ResumeTiming();
        }
        sim->stepCycle();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}

void
BM_SimTickContended(benchmark::State &state)
{
    stepLoop(state, "botss");
}
BENCHMARK(BM_SimTickContended);

void
BM_SimTickUncontended(benchmark::State &state)
{
    stepLoop(state, "imag");
}
BENCHMARK(BM_SimTickUncontended);

} // namespace

BENCHMARK_MAIN();
