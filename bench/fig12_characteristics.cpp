/**
 * @file
 * Figure 12: benchmark characteristics measured from the baseline
 * runs — (a) normalized critical-section access rate, (b) normalized
 * network utilization — in the same (sorted) order as Figure 11a.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "workload/benchmarks.hh"

using namespace ocor;
using namespace ocor::bench;

int
main(int argc, char **argv)
{
    Options opt = parseOptions(argc, argv);
    banner("Figure 12: measured CS access rate and network "
           "utilization (baseline runs)");

    ResultCache cache = cacheFor(opt);
    ParallelRunner runner(opt.jobs, &cache);
    superviseRunner(runner, opt);
    std::vector<BenchmarkResult> results =
        runner.runSuite(allProfiles(), opt.experiment());

    struct Row
    {
        BenchmarkResult cmp;
        double csRate;   ///< lock acquisitions per kcycle per thread
        double netUtil;  ///< packets per cycle per node
    };
    std::vector<Row> rows;
    for (auto &cmp : results) {
        Row row;
        row.cmp = std::move(cmp);
        const RunMetrics &m = row.cmp.base;
        row.csRate = 1000.0
            * static_cast<double>(m.totalAcquisitions())
            / (static_cast<double>(m.roiFinish) * m.threads);
        row.netUtil = m.netUtilization(
            SystemConfig::meshFor(opt.threads).numNodes());
        rows.push_back(row);
    }

    // Same order as Figure 11a: sorted by COH improvement.
    std::sort(rows.begin(), rows.end(), [](const Row &a,
                                           const Row &b) {
        return a.cmp.cohImprovementPct() > b.cmp.cohImprovementPct();
    });

    double cs_max = 0, net_max = 0;
    for (const auto &r : rows) {
        cs_max = std::max(cs_max, r.csRate);
        net_max = std::max(net_max, r.netUtil);
    }

    std::printf("\n%-8s %-5s %10s %8s   %10s %8s   %s\n", "program",
                "class", "CS rate", "norm.", "net util", "norm.",
                "(norm. bars: CS rate, net util)");
    for (const auto &r : rows) {
        double cs_n = 100.0 * r.csRate / cs_max;
        double net_n = 100.0 * r.netUtil / net_max;
        std::printf("%-8s %c/%c   %10.4f %7.1f%%   %10.4f %7.1f%%"
                    "   |%s| |%s|\n",
                    r.cmp.name.c_str(),
                    r.cmp.highCsRate ? 'H' : 'L',
                    r.cmp.highNetUtil ? 'H' : 'L', r.csRate, cs_n,
                    r.netUtil, net_n,
                    bar(cs_n, 100, 20).c_str(),
                    bar(net_n, 100, 20).c_str());
    }
    std::printf("\nExpected shape: programs near the top (largest "
                "COH reduction) show high CS access\nrates and high "
                "network utilization; the bottom entries are low on "
                "both axes.\n");
    dumpStatsJson(opt, &runner);
    return sweepExitStatus(runner);
}
