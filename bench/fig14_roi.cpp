/**
 * @file
 * Figure 14: (a) percentage of COH in the ROI finish time per
 * benchmark (without OCOR), and (b) the resulting ROI finish-time
 * improvement with OCOR.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "workload/benchmarks.hh"

using namespace ocor;
using namespace ocor::bench;

int
main(int argc, char **argv)
{
    Options opt = parseOptions(argc, argv);
    banner("Figure 14: COH share of ROI and ROI finish-time "
           "improvement");

    ResultCache cache = cacheFor(opt);
    ParallelRunner runner(opt.jobs, &cache);
    superviseRunner(runner, opt);
    std::vector<BenchmarkResult> results =
        runner.runSuite(allProfiles(), opt.experiment());

    std::printf("\n(a) %% of thread time spent in COH "
                "(original design)\n");
    std::printf("%-8s %8s  %s\n", "program", "COH%",
                "bar (0..60%)");
    for (const auto &r : results)
        std::printf("%-8s %7.1f%%  |%s|\n", r.name.c_str(),
                    r.base.cohPct(),
                    bar(r.base.cohPct(), 60).c_str());

    std::printf("\n(b) ROI finish time: original vs OCOR\n");
    std::printf("%-8s %12s %12s %9s\n", "program", "orig (cyc)",
                "OCOR (cyc)", "improv.");
    double sum = 0, parsec_sum = 0, omp_sum = 0;
    unsigned parsec_n = 0, omp_n = 0;
    for (const auto &r : results) {
        double v = r.roiImprovementPct();
        std::printf("%-8s %12llu %12llu %8.1f%%\n", r.name.c_str(),
                    static_cast<unsigned long long>(
                        r.base.roiFinish),
                    static_cast<unsigned long long>(
                        r.ocor.roiFinish),
                    v);
        sum += v;
        if (r.suite == "PARSEC") {
            parsec_sum += v;
            ++parsec_n;
        } else {
            omp_sum += v;
            ++omp_n;
        }
    }
    std::printf("ROI improvement averages: PARSEC %.1f%% | OMP2012 "
                "%.1f%% | overall %.1f%%\n", parsec_sum / parsec_n,
                omp_sum / omp_n, sum / results.size());
    std::printf("(paper: PARSEC 13.7%%, OMP2012 15.1%%, overall "
                "14.4%%, max 24.5%% ilbdc)\n");
    dumpStatsJson(opt, &runner);
    return sweepExitStatus(runner);
}
