/**
 * @file
 * gem5-style status/error reporting: panic, fatal, warn, inform.
 *
 * panic() signals an internal simulator bug and aborts; fatal() signals
 * a user/configuration error and exits cleanly with an error code.
 */

#ifndef OCOR_COMMON_LOG_HH
#define OCOR_COMMON_LOG_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace ocor
{

/** Verbosity levels for runtime messages. */
enum class LogLevel { Silent, Warn, Inform, Debug };

/** Process-wide verbosity; default shows warnings and informs. */
LogLevel &logLevel();

namespace detail
{
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

std::string formatv(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));
} // namespace detail

} // namespace ocor

/** Abort on an internal invariant violation (simulator bug). */
#define ocor_panic(...) \
    ::ocor::detail::panicImpl(__FILE__, __LINE__, \
                              ::ocor::detail::formatv(__VA_ARGS__))

/** Exit on a user-caused error (bad configuration, bad arguments). */
#define ocor_fatal(...) \
    ::ocor::detail::fatalImpl(__FILE__, __LINE__, \
                              ::ocor::detail::formatv(__VA_ARGS__))

/** Non-fatal warning about questionable behaviour. */
#define ocor_warn(...) \
    ::ocor::detail::warnImpl(::ocor::detail::formatv(__VA_ARGS__))

/** Informative status message. */
#define ocor_inform(...) \
    ::ocor::detail::informImpl(::ocor::detail::formatv(__VA_ARGS__))

#endif // OCOR_COMMON_LOG_HH
