/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component of the simulator (traffic generators,
 * compute-grain jitter, arbitration tie breaking) draws from its own
 * Rng instance seeded from the experiment seed, so a run is exactly
 * reproducible from (config, seed).
 *
 * The generator is xoshiro256** with a splitmix64 seeder; it is fast,
 * has no measurable bias for the uses here, and avoids dragging in
 * <random> engine state into hot router code.
 */

#ifndef OCOR_COMMON_RNG_HH
#define OCOR_COMMON_RNG_HH

#include <cstdint>

namespace ocor
{

/** Small deterministic PRNG (xoshiro256**). */
class Rng
{
  public:
    /** Construct from a 64-bit seed; any value (incl. 0) is valid. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound); bound must be > 0. */
    std::uint64_t range(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    between(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + range(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli draw with probability p in [0, 1]. */
    bool chance(double p);

    /**
     * Geometric-ish gap: number of cycles until the next event of a
     * Bernoulli-per-cycle process of rate p (p <= 0 -> "never",
     * returned as a very large value).
     */
    std::uint64_t nextEventGap(double p);

  private:
    std::uint64_t s_[4];
};

} // namespace ocor

#endif // OCOR_COMMON_RNG_HH
