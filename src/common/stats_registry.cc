#include "common/stats_registry.hh"

#include <cstdio>
#include <ostream>

#include "common/log.hh"

namespace ocor
{

void
StatsRegistry::insert(const std::string &name, Entry e)
{
    if (name.empty())
        ocor_panic("StatsRegistry: empty stat name");
    auto [it, fresh] = entries_.emplace(name, std::move(e));
    if (!fresh)
        ocor_panic("StatsRegistry: duplicate stat '%s'",
                   name.c_str());
}

void
StatsRegistry::addScalar(const std::string &name,
                         const std::uint64_t *v)
{
    insert(name, v);
}

void
StatsRegistry::addScalarFn(const std::string &name,
                           std::function<double()> fn)
{
    insert(name, std::move(fn));
}

void
StatsRegistry::addSample(const std::string &name, const SampleStat *s)
{
    insert(name, s);
}

void
StatsRegistry::addHistogram(const std::string &name,
                            const Histogram *h)
{
    insert(name, h);
}

bool
StatsRegistry::has(const std::string &name) const
{
    return entries_.count(name) != 0;
}

std::vector<std::string>
StatsRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto &[name, e] : entries_)
        out.push_back(name);
    return out;
}

double
StatsRegistry::scalar(const std::string &name) const
{
    auto it = entries_.find(name);
    if (it == entries_.end())
        ocor_panic("StatsRegistry: unknown stat '%s'", name.c_str());
    if (const auto *pv = std::get_if<const std::uint64_t *>(
            &it->second))
        return static_cast<double>(**pv);
    if (const auto *fn = std::get_if<std::function<double()>>(
            &it->second))
        return (*fn)();
    ocor_panic("StatsRegistry: stat '%s' is not a scalar",
               name.c_str());
}

namespace
{

/** Shortest round-trippable double; avoids locale surprises. */
std::string
num(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    // Trim a plain integer's ".0"-less form stays as-is; %.17g never
    // emits locale-dependent separators.
    return buf;
}

void
dumpSample(std::ostream &os, const SampleStat &s)
{
    os << "{\"count\":" << s.count() << ",\"sum\":" << num(s.sum())
       << ",\"min\":" << num(s.min()) << ",\"max\":" << num(s.max())
       << ",\"mean\":" << num(s.mean()) << "}";
}

void
dumpHistogram(std::ostream &os, const Histogram &h)
{
    const SampleStat &s = h.stat();
    os << "{\"count\":" << s.count() << ",\"min\":" << num(s.min())
       << ",\"max\":" << num(s.max()) << ",\"mean\":"
       << num(s.mean()) << ",\"p50\":" << num(h.percentile(50))
       << ",\"p95\":" << num(h.percentile(95)) << ",\"p99\":"
       << num(h.percentile(99)) << ",\"overflow\":" << h.overflow()
       << ",\"bucket_width\":" << num(h.bucketWidth())
       << ",\"buckets\":[";
    const auto &b = h.buckets();
    for (std::size_t i = 0; i < b.size(); ++i) {
        if (i)
            os << ',';
        os << b[i];
    }
    os << "]}";
}

} // namespace

void
StatsRegistry::dumpJson(std::ostream &os) const
{
    os << "{\n";
    bool first = true;
    for (const auto &[name, e] : entries_) {
        if (!first)
            os << ",\n";
        first = false;
        os << "  \"" << name << "\": ";
        if (const auto *pv = std::get_if<const std::uint64_t *>(&e))
            os << **pv;
        else if (const auto *fn =
                     std::get_if<std::function<double()>>(&e))
            os << num((*fn)());
        else if (const auto *ps = std::get_if<const SampleStat *>(&e))
            dumpSample(os, **ps);
        else if (const auto *ph = std::get_if<const Histogram *>(&e))
            dumpHistogram(os, **ph);
    }
    os << "\n}\n";
}

} // namespace ocor
