/**
 * @file
 * Lightweight statistics primitives used by all modules.
 *
 * A deliberately small subset of a full stats package: scalar
 * counters, averages and histograms, all plain value types that the
 * owning component aggregates into experiment-level reports.
 */

#ifndef OCOR_COMMON_STATS_HH
#define OCOR_COMMON_STATS_HH

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace ocor
{

/** Running scalar sample statistics (count / sum / min / max / mean). */
class SampleStat
{
  public:
    void
    sample(double v)
    {
        if (count_ == 0) {
            min_ = v;
            max_ = v;
        } else {
            min_ = std::min(min_, v);
            max_ = std::max(max_, v);
        }
        sum_ += v;
        ++count_;
    }

    void
    merge(const SampleStat &o)
    {
        if (o.count_ == 0)
            return;
        if (count_ == 0) {
            *this = o;
            return;
        }
        min_ = std::min(min_, o.min_);
        max_ = std::max(max_, o.max_);
        sum_ += o.sum_;
        count_ += o.count_;
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }

    void reset() { *this = SampleStat{}; }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Fixed-bucket histogram over [0, bucketWidth * numBuckets).
 *
 * Samples at or past the covered range land in an explicit overflow
 * counter rather than silently inflating the last bucket, so bucket
 * heights always mean what they say; percentile() falls back to the
 * exact maximum when the requested rank lives in the overflow.
 */
class Histogram
{
  public:
    Histogram(double bucket_width = 1.0, std::size_t num_buckets = 32)
        : bucketWidth_(bucket_width), buckets_(num_buckets, 0)
    {}

    void
    sample(double v)
    {
        stat_.sample(v);
        std::size_t idx = v <= 0.0
            ? 0
            : static_cast<std::size_t>(v / bucketWidth_);
        if (idx >= buckets_.size()) {
            ++overflow_;
            return;
        }
        ++buckets_[idx];
    }

    /** Combine another histogram of identical shape into this one. */
    void merge(const Histogram &o);

    /**
     * Value at percentile @p p in [0, 100], linearly interpolated
     * within the containing bucket and clamped to the observed
     * [min, max]. Ranks falling in the overflow report the maximum.
     * 0 when empty.
     */
    double percentile(double p) const;

    const std::vector<std::uint64_t> &buckets() const { return buckets_; }
    const SampleStat &stat() const { return stat_; }
    double bucketWidth() const { return bucketWidth_; }

    /** Samples at or beyond bucketWidth * numBuckets. */
    std::uint64_t overflow() const { return overflow_; }

  private:
    double bucketWidth_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t overflow_ = 0;
    SampleStat stat_;
};

/** Percentage helper: 100 * part / whole, 0 when whole == 0. */
double pct(double part, double whole);

/** Ratio helper: part / whole, 0 when whole == 0. */
double ratio(double part, double whole);

/** Format a double as "12.3%" style string. */
std::string pctStr(double percent, int decimals = 1);

} // namespace ocor

#endif // OCOR_COMMON_STATS_HH
