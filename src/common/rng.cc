#include "common/rng.hh"

#include <cmath>

namespace ocor
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t v, int k)
{
    return (v << k) | (v >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::range(std::uint64_t bound)
{
    // Rejection-free multiply-shift mapping; bias is negligible for
    // the small bounds used by the simulator.
    if (bound == 0)
        return 0;
    __extension__ typedef unsigned __int128 u128;
    u128 m = static_cast<u128>(next()) * bound;
    return static_cast<std::uint64_t>(m >> 64);
}

double
Rng::uniform()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

std::uint64_t
Rng::nextEventGap(double p)
{
    if (p <= 0.0)
        return static_cast<std::uint64_t>(1) << 62;
    if (p >= 1.0)
        return 1;
    // Inverse-CDF sample of a geometric distribution (support >= 1).
    double u = uniform();
    double g = std::floor(std::log1p(-u) / std::log1p(-p)) + 1.0;
    if (g < 1.0)
        g = 1.0;
    return static_cast<std::uint64_t>(g);
}

} // namespace ocor
