#include "common/trace.hh"

#include <ostream>
#include <sstream>
#include <unordered_map>

#include "common/log.hh"

namespace ocor
{

const char *
traceCatName(TraceCat c)
{
    switch (c) {
      case TraceCat::Lock: return "lock";
      case TraceCat::Noc: return "noc";
      case TraceCat::Sim: return "sim";
      default: return "?";
    }
}

unsigned
parseTraceCats(const std::string &spec)
{
    unsigned mask = 0;
    std::istringstream is(spec);
    std::string tok;
    while (std::getline(is, tok, ',')) {
        if (tok.empty())
            continue;
        if (tok == "all") {
            mask |= traceCatBit(TraceCat::Lock)
                | traceCatBit(TraceCat::Noc)
                | traceCatBit(TraceCat::Sim);
        } else if (tok == "lock") {
            mask |= traceCatBit(TraceCat::Lock);
        } else if (tok == "noc") {
            mask |= traceCatBit(TraceCat::Noc);
        } else if (tok == "sim") {
            mask |= traceCatBit(TraceCat::Sim);
        } else {
            ocor_fatal("unknown trace category '%s' "
                       "(expected lock, noc, sim or all)",
                       tok.c_str());
        }
    }
    return mask;
}

const char *
traceEvName(TraceEv ev)
{
    switch (ev) {
      case TraceEv::LockAcquireStart: return "LockAcquireStart";
      case TraceEv::LockTrySent: return "LockTrySent";
      case TraceEv::LockFailRecv: return "LockFailRecv";
      case TraceEv::LockSleep: return "LockSleep";
      case TraceEv::WakeupSent: return "WakeupSent";
      case TraceEv::WakeupRecv: return "WakeupRecv";
      case TraceEv::CsEnter: return "CsEnter";
      case TraceEv::CsExit: return "CsExit";
      case TraceEv::LockHandover: return "LockHandover";
      case TraceEv::PktInject: return "PktInject";
      case TraceEv::VcAlloc: return "VcAlloc";
      case TraceEv::SaGrant: return "SaGrant";
      case TraceEv::PktEject: return "PktEject";
      case TraceEv::CrcReject: return "CrcReject";
      case TraceEv::Retransmit: return "Retransmit";
      case TraceEv::WindowOpen: return "WindowOpen";
      case TraceEv::WindowClose: return "WindowClose";
      case TraceEv::RunBegin: return "RunBegin";
      case TraceEv::RunEnd: return "RunEnd";
      case TraceEv::WatchdogFired: return "WatchdogFired";
      case TraceEv::TelemetrySample: return "TelemetrySample";
      default: return "?";
    }
}

TraceCat
traceEvCat(TraceEv ev)
{
    if (ev <= TraceEv::LockHandover)
        return TraceCat::Lock;
    if (ev <= TraceEv::WindowClose)
        return TraceCat::Noc;
    return TraceCat::Sim;
}

Tracer::Tracer(const TraceConfig &cfg) : cfg_(cfg)
{
    if (cfg_.capacity == 0)
        ocor_fatal("Tracer: ring capacity must be positive");
    ring_.reserve(std::min<std::size_t>(cfg_.capacity, 1u << 16));
}

std::vector<TraceRecord>
Tracer::snapshot() const
{
    std::vector<TraceRecord> out;
    out.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i)
        out.push_back(ring_[(head_ + i) % ring_.size()]);
    return out;
}

namespace
{

/**
 * Chrome trace-event pid/tid mapping: lock and sim events live in a
 * "threads" process keyed by thread id; NoC events live in a "noc"
 * process keyed by node id, so Perfetto shows one lane per router.
 */
constexpr int kThreadsPid = 1;
constexpr int kNocPid = 2;

/**
 * Live packet ids come from a process-global allocator, so their raw
 * values depend on everything simulated before (and concurrently
 * with) this run. Exports renumber them densely in first-appearance
 * order, which keeps same-packet events correlated while making two
 * identical runs export byte-identical files.
 */
std::unordered_map<std::uint64_t, std::uint64_t>
exportPktIds(const std::vector<TraceRecord> &recs)
{
    std::unordered_map<std::uint64_t, std::uint64_t> ids;
    std::uint64_t next = 1;
    for (const TraceRecord &r : recs)
        if (r.pkt != 0 && ids.emplace(r.pkt, next).second)
            ++next;
    return ids;
}

void
jsonCommon(std::ostream &os, const TraceRecord &r, const char *ph,
           const char *extra_args)
{
    TraceCat cat = traceEvCat(r.ev);
    const bool noc = cat == TraceCat::Noc;
    int pid = noc ? kNocPid : kThreadsPid;
    unsigned long long tid = noc
        ? static_cast<unsigned long long>(r.node)
        : (r.thread == invalidThread
               ? 0ull
               : static_cast<unsigned long long>(r.thread));

    os << "{\"name\":\"" << traceEvName(r.ev) << "\",\"cat\":\""
       << traceCatName(cat) << "\",\"ph\":\"" << ph
       << "\",\"ts\":" << r.cycle << ",\"pid\":" << pid
       << ",\"tid\":" << tid;
    if (ph[0] == 'i')
        os << ",\"s\":\"t\"";
    os << ",\"args\":{\"node\":" << r.node;
    if (r.addr != 0)
        os << ",\"addr\":" << r.addr;
    if (r.pkt != 0)
        os << ",\"pkt\":" << r.pkt;
    os << extra_args << "}}";
}

std::string
evArgs(const TraceRecord &r)
{
    std::ostringstream os;
    switch (r.ev) {
      case TraceEv::LockAcquireStart:
      case TraceEv::LockTrySent:
        os << ",\"rtr\":" << r.a0 << ",\"prog\":" << r.a1;
        break;
      case TraceEv::CsEnter:
        os << ",\"slept\":" << r.a0;
        break;
      case TraceEv::LockHandover:
        os << ",\"gap\":" << r.a1;
        break;
      case TraceEv::WakeupSent:
        os << ",\"queue\":" << r.a0;
        break;
      case TraceEv::PktInject:
      case TraceEv::VcAlloc:
      case TraceEv::SaGrant:
      case TraceEv::PktEject:
      case TraceEv::CrcReject:
      case TraceEv::Retransmit:
        os << ",\"msg\":" << r.a0 << ",\"val\":" << r.a1;
        break;
      case TraceEv::WindowClose:
        os << ",\"cause\":" << r.a0 << ",\"cycles\":" << r.a1;
        break;
      default:
        if (r.a0 || r.a1)
            os << ",\"a0\":" << r.a0 << ",\"a1\":" << r.a1;
        break;
    }
    return os.str();
}

} // namespace

void
Tracer::exportChromeJson(std::ostream &os) const
{
    os << "[\n";
    // Process-name metadata so Perfetto labels the two lanes.
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":"
       << kThreadsPid
       << ",\"args\":{\"name\":\"threads (lock protocol)\"}},\n";
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":"
       << kNocPid << ",\"args\":{\"name\":\"noc (routers)\"}}";

    const std::vector<TraceRecord> recs = snapshot();
    const auto ids = exportPktIds(recs);
    for (TraceRecord r : recs) {
        if (r.pkt != 0)
            r.pkt = ids.at(r.pkt);
        os << ",\n";
        if (r.ev == TraceEv::CsEnter) {
            // Duration slice begin: renders the CS as a bar.
            jsonCommon(os, r, "B", evArgs(r).c_str());
        } else if (r.ev == TraceEv::CsExit) {
            jsonCommon(os, r, "E", "");
        } else {
            jsonCommon(os, r, "i", evArgs(r).c_str());
        }
    }
    os << "\n]\n";
}

void
Tracer::exportCsv(std::ostream &os) const
{
    os << "cycle,cat,event,node,thread,addr,pkt,a0,a1\n";
    const std::vector<TraceRecord> recs = snapshot();
    const auto ids = exportPktIds(recs);
    for (const TraceRecord &r : recs) {
        os << r.cycle << ',' << traceCatName(traceEvCat(r.ev)) << ','
           << traceEvName(r.ev) << ',' << r.node << ',';
        if (r.thread == invalidThread)
            os << '-';
        else
            os << r.thread;
        os << ',' << r.addr << ','
           << (r.pkt != 0 ? ids.at(r.pkt) : 0) << ',' << r.a0 << ','
           << r.a1 << '\n';
    }
}

} // namespace ocor
