/**
 * @file
 * One-hot priority coding helpers.
 *
 * Section 4.2 of the paper encodes packet priority as one-hot bits so
 * routers can arbitrate without comparators: bit position == priority
 * level, and arbitration reduces to a bitwise OR across candidates
 * followed by a leading-one pick. These helpers model that encoding.
 *
 * Convention used throughout the library: **higher bit index == higher
 * priority**. A value of 0 means "no priority" (packet without the
 * priority check bit).
 */

#ifndef OCOR_COMMON_ONEHOT_HH
#define OCOR_COMMON_ONEHOT_HH

#include <bit>
#include <cstdint>

#include "common/log.hh"

namespace ocor
{

/** One-hot coded priority word; supports up to 64 levels. */
using OneHot = std::uint64_t;

/** Encode priority level @p level (0 = lowest) as a one-hot word. */
inline OneHot
onehotEncode(unsigned level)
{
    if (level >= 64)
        ocor_panic("one-hot level %u out of range", level);
    return OneHot{1} << level;
}

/** True iff @p v has exactly one bit set. */
inline bool
onehotValid(OneHot v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Decode a one-hot word back to its level; v must be valid. */
inline unsigned
onehotDecode(OneHot v)
{
    if (!onehotValid(v))
        ocor_panic("invalid one-hot word %llu",
                   static_cast<unsigned long long>(v));
    return static_cast<unsigned>(std::countr_zero(v));
}

/**
 * The highest priority present in an OR-reduction of candidate words,
 * as a one-hot word itself (the LPA's first output in Figure 9).
 * Returns 0 when @p mask is 0.
 */
inline OneHot
onehotHighest(OneHot mask)
{
    if (mask == 0)
        return 0;
    return OneHot{1} << (63 - std::countl_zero(mask));
}

} // namespace ocor

#endif // OCOR_COMMON_ONEHOT_HH
