/**
 * @file
 * Fundamental scalar types shared by every OCOR module.
 *
 * The simulator is cycle driven; all timestamps are expressed in core
 * clock cycles (2 GHz in the paper's Table 2, but the library never
 * needs the absolute frequency).
 */

#ifndef OCOR_COMMON_TYPES_HH
#define OCOR_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace ocor
{

/** Simulation time in core clock cycles. */
using Cycle = std::uint64_t;

/** Flat node index into the mesh (row-major, 0 .. numNodes-1). */
using NodeId = std::uint32_t;

/** Thread identifier; one thread per core in all paper experiments. */
using ThreadId = std::uint32_t;

/** Byte address in the simulated physical address space. */
using Addr = std::uint64_t;

/** Identifier of a lock word (its cache-line address). */
using LockId = std::uint64_t;

/** Sentinel for "no node". */
inline constexpr NodeId invalidNode =
    std::numeric_limits<NodeId>::max();

/** Sentinel for "no thread". */
inline constexpr ThreadId invalidThread =
    std::numeric_limits<ThreadId>::max();

/** Sentinel cycle meaning "never / unset". */
inline constexpr Cycle neverCycle = std::numeric_limits<Cycle>::max();

/**
 * NoC modeling fidelity.
 *
 * Exact models every flit hop through the mesh (the paper's setup and
 * the bit-identical reference). Hybrid keeps the exact model around
 * lock activity but, while no thread is waiting on any lock word,
 * delivers packets with an analytical hop + contention latency
 * instead of per-flit routing — a fast approximation for the
 * background-traffic-dominated compute phases. Hybrid results are
 * approximate by design; their COH error is quantified against Exact
 * (see DESIGN.md §13).
 */
enum class Fidelity : std::uint8_t
{
    Exact,
    Hybrid
};

} // namespace ocor

#endif // OCOR_COMMON_TYPES_HH
