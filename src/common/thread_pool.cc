#include "common/thread_pool.hh"

#include <cstdlib>

namespace ocor
{

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = defaultConcurrency();
    busyNs_ = std::make_unique<std::atomic<std::uint64_t>[]>(threads);
    for (unsigned i = 0; i < threads; ++i)
        busyNs_[i].store(0, std::memory_order_relaxed);
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this, i]() { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

namespace
{

/** Index of the worker running on this thread (set by workerLoop;
 * only meaningful inside a task). */
thread_local unsigned currentWorker = 0;

} // namespace

void
ThreadPool::submitRaw(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        queue_.push_back(std::move(task));
    }
    cv_.notify_one();
}

void
ThreadPool::submit(std::function<void()> task)
{
    submitRaw([this, t = std::move(task)]() {
        Timed timed(*this);
        t();
    });
}

void
ThreadPool::account(std::uint64_t ns)
{
    busyNs_[currentWorker].fetch_add(ns, std::memory_order_relaxed);
    tasksExecuted_.fetch_add(1, std::memory_order_relaxed);
}

void
ThreadPool::workerLoop(unsigned worker)
{
    currentWorker = worker;
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lk(mu_);
            cv_.wait(lk, [this]() { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ set and nothing left to run
            task = std::move(queue_.front());
            queue_.pop_front();
            ++running_;
        }
        task();
        {
            std::lock_guard<std::mutex> lk(mu_);
            --running_;
            if (running_ == 0 && queue_.empty())
                idleCv_.notify_all();
        }
    }
}

std::size_t
ThreadPool::queueDepth() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return queue_.size();
}

void
ThreadPool::waitIdle()
{
    std::unique_lock<std::mutex> lk(mu_);
    idleCv_.wait(lk, [this]() {
        return queue_.empty() && running_ == 0;
    });
}

std::uint64_t
ThreadPool::totalBusyNs() const
{
    std::uint64_t n = 0;
    for (unsigned i = 0; i < size(); ++i)
        n += busyNs(i);
    return n;
}

unsigned
ThreadPool::defaultConcurrency()
{
    if (const char *env = std::getenv("OCOR_JOBS")) {
        long v = std::strtol(env, nullptr, 10);
        if (v > 0)
            return static_cast<unsigned>(v);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

} // namespace ocor
