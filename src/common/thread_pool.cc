#include "common/thread_pool.hh"

#include <cstdlib>

namespace ocor
{

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = defaultConcurrency();
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this]() { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        queue_.push_back(std::move(task));
    }
    cv_.notify_one();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lk(mu_);
            cv_.wait(lk, [this]() { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ set and nothing left to run
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

unsigned
ThreadPool::defaultConcurrency()
{
    if (const char *env = std::getenv("OCOR_JOBS")) {
        long v = std::strtol(env, nullptr, 10);
        if (v > 0)
            return static_cast<unsigned>(v);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

} // namespace ocor
