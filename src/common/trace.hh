/**
 * @file
 * Cycle-accurate event tracing.
 *
 * Every simulated System may own one Tracer; components hold a plain
 * pointer (null when tracing is off, so the disabled path costs one
 * branch and touches no shared state). Events are fixed-size POD
 * records appended to a bounded ring buffer — when the ring is full
 * the oldest record is overwritten and a drop counter ticks, so a
 * trace never grows without bound and the *end* of a run (where the
 * interesting lock handovers usually are) is always retained.
 *
 * Records carry only simulated state (cycle, node, thread, packet id,
 * two small payload words); wall-clock never enters a record, so two
 * runs of the same configuration export byte-identical traces
 * regardless of host scheduling. Live packet ids come from a
 * process-global allocator, so exporters renumber them densely in
 * first-appearance order to keep that guarantee.
 *
 * Exporters: Chrome trace-event JSON (loads in Perfetto / about:
 * tracing; lock-protocol events appear per thread, NoC events per
 * node) and a compact CSV for ad-hoc scripting.
 */

#ifndef OCOR_COMMON_TRACE_HH
#define OCOR_COMMON_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hh"

namespace ocor
{

/** Trace categories; a TraceConfig enables any subset. */
enum class TraceCat : std::uint8_t
{
    Lock, ///< lock-protocol events (acquire, RTR, sleep, wakeup, CS)
    Noc,  ///< network events (inject, VC alloc, SA grant, eject)
    Sim,  ///< run phases (begin/end, watchdog, telemetry samples)
    NumCats
};

/** Bit for a category in TraceConfig::categories. */
constexpr unsigned
traceCatBit(TraceCat c)
{
    return 1u << static_cast<unsigned>(c);
}

/** Name of a trace category ("lock", "noc", "sim"). */
const char *traceCatName(TraceCat c);

/**
 * Parse a comma-separated category list ("lock,noc", "all") into a
 * category bitmask. Unknown names abort via ocor_fatal (they are a
 * user error on the command line).
 */
unsigned parseTraceCats(const std::string &spec);

/** Every traceable event type. */
enum class TraceEv : std::uint8_t
{
    // --- lock protocol (cat Lock) -----------------------------------
    LockAcquireStart, ///< acquire() entered; a0 = initial RTR
    LockTrySent,      ///< atomic_try_lock issued; a0 = RTR, a1 = PROG
    LockFailRecv,     ///< LockFail received (retry continues)
    LockSleep,        ///< spin budget exhausted, sleep prep begins
    WakeupSent,       ///< home sent WakeNotify; a0 = queue length left
    WakeupRecv,       ///< WakeNotify consumed by the waiter
    CsEnter,          ///< critical section entered; a0 = 1 if slept
    CsExit,           ///< critical section exited (release sent)
    LockHandover,     ///< home granted after a release; a1 = gap cycles

    // --- NoC (cat Noc); a0 = MsgType of the packet ------------------
    PktInject,        ///< packet queued at the source NI
    VcAlloc,          ///< output VC allocated; a1 = out port
    SaGrant,          ///< head flit won switch allocation; a1 = rank
    PktEject,         ///< packet reassembled and delivered at the sink
    CrcReject,        ///< corrupted packet discarded at ejection
    Retransmit,       ///< unacked packet re-sent; a1 = attempt
    WindowOpen,       ///< hybrid fast-path window opened
    WindowClose,      ///< window closed; a0 = cause, a1 = cycles open

    // --- simulation phases (cat Sim) --------------------------------
    RunBegin,         ///< Simulator::run entered
    RunEnd,           ///< run left the cycle loop; a0 = 1 on hang
    WatchdogFired,    ///< forward-progress watchdog aborted the run
    TelemetrySample   ///< interval telemetry snapshot taken
};

/** Name of an event type (stable; part of the export format). */
const char *traceEvName(TraceEv ev);

/** Category an event type belongs to. */
TraceCat traceEvCat(TraceEv ev);

/** One fixed-size trace record. */
struct TraceRecord
{
    Cycle cycle = 0;
    std::uint64_t pkt = 0;    ///< packet id (0 = none)
    Addr addr = 0;            ///< lock word / line address (0 = none)
    NodeId node = invalidNode;
    ThreadId thread = invalidThread;
    std::uint32_t a0 = 0;     ///< event-specific payload
    std::uint32_t a1 = 0;     ///< event-specific payload
    TraceEv ev = TraceEv::RunBegin;
};

/** Tracing knobs; part of SystemConfig. */
struct TraceConfig
{
    /** Enabled categories (traceCatBit mask); 0 = tracing off. */
    unsigned categories = 0;

    /** Only record events at this node (invalidNode = every node).
     * Lock-protocol events filter on the *thread's* node. */
    NodeId nodeFilter = invalidNode;

    /** Ring-buffer capacity in records (~44 B each). */
    std::size_t capacity = 1u << 19;

    bool enabled() const { return categories != 0; }
};

/** Bounded ring buffer of trace records with export backends. */
class Tracer
{
  public:
    explicit Tracer(const TraceConfig &cfg);

    /** Cheap per-event filter; call before building a record. */
    bool
    wants(TraceCat cat, NodeId node) const
    {
        if (!(cfg_.categories & traceCatBit(cat)))
            return false;
        return cfg_.nodeFilter == invalidNode ||
            cfg_.nodeFilter == node;
    }

    /** Append a record (caller already passed wants()). */
    void
    emit(const TraceRecord &rec)
    {
        if (ring_.size() < cfg_.capacity) {
            ring_.push_back(rec);
        } else {
            ring_[head_] = rec;
            head_ = (head_ + 1) % cfg_.capacity;
            ++dropped_;
        }
        ++emitted_;
    }

    /** Filter + append in one call; the common call site shape. */
    void
    record(TraceCat cat, TraceEv ev, Cycle cycle, NodeId node,
           ThreadId thread = invalidThread, Addr addr = 0,
           std::uint64_t pkt = 0, std::uint32_t a0 = 0,
           std::uint32_t a1 = 0)
    {
        if (!wants(cat, node))
            return;
        TraceRecord r;
        r.cycle = cycle;
        r.pkt = pkt;
        r.addr = addr;
        r.node = node;
        r.thread = thread;
        r.a0 = a0;
        r.a1 = a1;
        r.ev = ev;
        emit(r);
    }

    const TraceConfig &config() const { return cfg_; }

    /** Total events offered to the ring (kept + overwritten). */
    std::uint64_t emitted() const { return emitted_; }

    /** Events overwritten because the ring was full. */
    std::uint64_t dropped() const { return dropped_; }

    /** Records currently retained, oldest first. */
    std::vector<TraceRecord> snapshot() const;

    /**
     * Async-signal-safe ring access for the crash-dump handler:
     * number of retained records, and record @p i oldest-first.
     * Neither allocates, locks, or calls out; a handler reading a
     * ring that is concurrently appended to may see one record torn,
     * which a post-mortem consumer tolerates.
     */
    std::size_t ringCount() const { return ring_.size(); }

    const TraceRecord &
    ringRecord(std::size_t i) const
    {
        return ring_[(head_ + i) % ring_.size()];
    }

    /**
     * Chrome trace-event JSON (the `[{...},...]` array form), one
     * instant event per record except CS enter/exit, which become
     * B/E duration slices so Perfetto renders critical sections as
     * bars per thread.
     */
    void exportChromeJson(std::ostream &os) const;

    /** Compact CSV: cycle,cat,event,node,thread,addr,pkt,a0,a1. */
    void exportCsv(std::ostream &os) const;

  private:
    TraceConfig cfg_;
    std::vector<TraceRecord> ring_;
    std::size_t head_ = 0; ///< oldest record once the ring wrapped
    std::uint64_t emitted_ = 0;
    std::uint64_t dropped_ = 0;
};

} // namespace ocor

#endif // OCOR_COMMON_TRACE_HH
