#include "common/stats.hh"

#include <cmath>
#include <cstdio>

#include "common/log.hh"

namespace ocor
{

void
Histogram::merge(const Histogram &o)
{
    if (o.bucketWidth_ != bucketWidth_ ||
        o.buckets_.size() != buckets_.size())
        ocor_panic("Histogram::merge: shape mismatch (%g x %zu vs "
                   "%g x %zu)", bucketWidth_, buckets_.size(),
                   o.bucketWidth_, o.buckets_.size());
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += o.buckets_[i];
    overflow_ += o.overflow_;
    stat_.merge(o.stat_);
}

double
Histogram::percentile(double p) const
{
    const std::uint64_t total = stat_.count();
    if (total == 0)
        return 0.0;
    if (p <= 0.0)
        return stat_.min();
    if (p >= 100.0)
        return stat_.max();

    // Nearest-rank with in-bucket interpolation: the target sample is
    // the ceil(p% * total)-th smallest.
    const std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(p / 100.0 * static_cast<double>(total)));
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i] == 0)
            continue;
        if (cum + buckets_[i] >= rank) {
            double within = static_cast<double>(rank - cum)
                / static_cast<double>(buckets_[i]);
            double v = (static_cast<double>(i) + within)
                * bucketWidth_;
            return std::min(std::max(v, stat_.min()), stat_.max());
        }
        cum += buckets_[i];
    }
    // Rank lives in the overflow region: the bucket shape cannot
    // resolve it, but the exact maximum is always tracked.
    return stat_.max();
}

double
pct(double part, double whole)
{
    return whole == 0.0 ? 0.0 : 100.0 * part / whole;
}

double
ratio(double part, double whole)
{
    return whole == 0.0 ? 0.0 : part / whole;
}

std::string
pctStr(double percent, int decimals)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, percent);
    return buf;
}

} // namespace ocor
