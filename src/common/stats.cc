#include "common/stats.hh"

#include <cstdio>

namespace ocor
{

double
pct(double part, double whole)
{
    return whole == 0.0 ? 0.0 : 100.0 * part / whole;
}

double
ratio(double part, double whole)
{
    return whole == 0.0 ? 0.0 : part / whole;
}

std::string
pctStr(double percent, int decimals)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, percent);
    return buf;
}

} // namespace ocor
