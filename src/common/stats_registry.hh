/**
 * @file
 * Hierarchical statistics registry.
 *
 * Components register their existing counters / SampleStats /
 * Histograms under dotted names ("system.router3.vc_busy"-style);
 * the registry stores pointers, so registration is free at simulation
 * time and a dump always reflects the owner's live values. Dumps are
 * emitted as machine-readable JSON with names sorted, so two runs of
 * the same configuration produce byte-identical stats.json files.
 */

#ifndef OCOR_COMMON_STATS_REGISTRY_HH
#define OCOR_COMMON_STATS_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "common/stats.hh"

namespace ocor
{

/** Name -> stat-pointer map with a JSON dump backend. */
class StatsRegistry
{
  public:
    /** Register a raw counter; @p v must outlive the registry use. */
    void addScalar(const std::string &name, const std::uint64_t *v);

    /** Register a computed scalar (evaluated at dump time). */
    void addScalarFn(const std::string &name,
                     std::function<double()> fn);

    /** Register a running sample statistic. */
    void addSample(const std::string &name, const SampleStat *s);

    /** Register a histogram (dumped with p50/p95/p99). */
    void addHistogram(const std::string &name, const Histogram *h);

    bool has(const std::string &name) const;

    /** All registered names, sorted. */
    std::vector<std::string> names() const;

    /** Scalar value of @p name (counter or computed scalar); panics
     * on unknown names or non-scalar entries. Test hook. */
    double scalar(const std::string &name) const;

    std::size_t size() const { return entries_.size(); }

    /**
     * Dump every entry as one flat JSON object keyed by dotted name.
     * Scalars dump as numbers; samples as {count,sum,min,max,mean};
     * histograms additionally carry p50/p95/p99, the overflow count
     * and the raw buckets.
     */
    void dumpJson(std::ostream &os) const;

  private:
    using Entry = std::variant<const std::uint64_t *,
                               std::function<double()>,
                               const SampleStat *, const Histogram *>;

    void insert(const std::string &name, Entry e);

    /** Ordered map: dump order == lexicographic name order. */
    std::map<std::string, Entry> entries_;
};

} // namespace ocor

#endif // OCOR_COMMON_STATS_REGISTRY_HH
