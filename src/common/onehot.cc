#include "common/onehot.hh"

// All helpers are inline; this translation unit exists so the module
// has a home for future non-inline additions and appears in the build.
