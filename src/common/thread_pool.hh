/**
 * @file
 * Minimal fixed-size worker pool for embarrassingly parallel
 * simulation fan-out.
 *
 * Each experiment run owns its own System (and therefore its own
 * RNGs), so runs scheduled on different workers never share mutable
 * state and produce bit-identical results regardless of scheduling.
 * The pool is deliberately tiny: a FIFO of type-erased tasks, a
 * condition variable, and join-on-destruction semantics. Results
 * travel through std::future so callers can reassemble outputs in
 * submission order, independent of completion order.
 */

#ifndef OCOR_COMMON_THREAD_POOL_HH
#define OCOR_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace ocor
{

/** Fixed-size FIFO task pool; joins all workers on destruction. */
class ThreadPool
{
  public:
    /** @p threads worker count; 0 = defaultConcurrency(). */
    explicit ThreadPool(unsigned threads = 0);

    /** Drains nothing: queued-but-unstarted tasks still run before
     * the workers exit. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue fire-and-forget work. */
    void submit(std::function<void()> task);

    /** Enqueue a value-returning task; the future carries the result
     * (or the task's exception). */
    template <typename F>
    auto run(F fn) -> std::future<decltype(fn())>
    {
        using R = decltype(fn());
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::move(fn));
        std::future<R> fut = task->get_future();
        submit([task]() { (*task)(); });
        return fut;
    }

    unsigned size() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /**
     * Worker count used when the caller does not choose one: the
     * OCOR_JOBS environment variable when set to a positive integer,
     * otherwise std::thread::hardware_concurrency() (minimum 1).
     */
    static unsigned defaultConcurrency();

  private:
    void workerLoop();

    std::mutex mu_;
    std::condition_variable cv_;
    std::deque<std::function<void()>> queue_;
    bool stop_ = false;
    std::vector<std::thread> workers_;
};

} // namespace ocor

#endif // OCOR_COMMON_THREAD_POOL_HH
