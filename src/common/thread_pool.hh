/**
 * @file
 * Minimal fixed-size worker pool for embarrassingly parallel
 * simulation fan-out.
 *
 * Each experiment run owns its own System (and therefore its own
 * RNGs), so runs scheduled on different workers never share mutable
 * state and produce bit-identical results regardless of scheduling.
 * The pool is deliberately tiny: a FIFO of type-erased tasks, a
 * condition variable, and join-on-destruction semantics. Results
 * travel through std::future so callers can reassemble outputs in
 * submission order, independent of completion order.
 */

#ifndef OCOR_COMMON_THREAD_POOL_HH
#define OCOR_COMMON_THREAD_POOL_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace ocor
{

/**
 * Cooperative cancellation flag shared between a supervisor and one
 * task. The supervisor flips it (e.g. when a wall-clock deadline
 * expires); the task polls it at safe points and winds down. Plain
 * relaxed atomics: the flag carries no data, only the request.
 */
class CancelToken
{
  public:
    void cancel() { flag_.store(true, std::memory_order_relaxed); }

    bool
    cancelled() const
    {
        return flag_.load(std::memory_order_relaxed);
    }

    void reset() { flag_.store(false, std::memory_order_relaxed); }

  private:
    std::atomic<bool> flag_{false};
};

/** Fixed-size FIFO task pool; joins all workers on destruction. */
class ThreadPool
{
  public:
    /** @p threads worker count; 0 = defaultConcurrency(). */
    explicit ThreadPool(unsigned threads = 0);

    /** Drains nothing: queued-but-unstarted tasks still run before
     * the workers exit. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue fire-and-forget work. */
    void submit(std::function<void()> task);

    /** Enqueue a value-returning task; the future carries the result
     * (or the task's exception). */
    template <typename F>
    auto run(F fn) -> std::future<decltype(fn())>
    {
        using R = decltype(fn());
        // Accounting lives inside the packaged task, before the
        // promise is fulfilled: once a caller's future is ready,
        // busyNs()/tasksExecuted() already include that task.
        auto task = std::make_shared<std::packaged_task<R()>>(
            [this, fn = std::move(fn)]() mutable {
                Timed timed(*this);
                return fn();
            });
        std::future<R> fut = task->get_future();
        submitRaw([task]() { (*task)(); });
        return fut;
    }

    unsigned size() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /**
     * Wall-clock nanoseconds worker @p w has spent inside tasks.
     * Monotone; safe to read while the pool runs, and already
     * includes any run() task whose future has become ready.
     */
    std::uint64_t
    busyNs(unsigned w) const
    {
        return busyNs_[w].load(std::memory_order_relaxed);
    }

    /** Sum of busyNs over all workers. */
    std::uint64_t totalBusyNs() const;

    /** Tasks that have finished executing (across all workers). */
    std::uint64_t
    tasksExecuted() const
    {
        return tasksExecuted_.load(std::memory_order_relaxed);
    }

    /** Tasks queued but not yet picked up by a worker. */
    std::size_t queueDepth() const;

    /**
     * Block until the queue is empty and every worker is idle.
     * Supervision/test hook; tasks submitted concurrently with the
     * wait may extend it.
     */
    void waitIdle();

    /**
     * Worker count used when the caller does not choose one: the
     * OCOR_JOBS environment variable when set to a positive integer,
     * otherwise std::thread::hardware_concurrency() (minimum 1).
     */
    static unsigned defaultConcurrency();

  private:
    /** Times one task and books it to the executing worker; the
     * destructor runs before the task's future becomes ready. */
    class Timed
    {
      public:
        explicit Timed(ThreadPool &pool)
            : pool_(pool), t0_(std::chrono::steady_clock::now())
        {
        }

        ~Timed()
        {
            auto ns = std::chrono::duration_cast<
                std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0_).count();
            pool_.account(static_cast<std::uint64_t>(ns));
        }

      private:
        ThreadPool &pool_;
        std::chrono::steady_clock::time_point t0_;
    };

    /** Enqueue without the accounting wrapper (run() tasks account
     * for themselves inside the packaged task). */
    void submitRaw(std::function<void()> task);

    /** Book @p ns of task time to the calling worker thread. */
    void account(std::uint64_t ns);

    void workerLoop(unsigned worker);

    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::condition_variable idleCv_; ///< signalled when work drains
    std::deque<std::function<void()>> queue_;
    unsigned running_ = 0; ///< tasks currently executing (mu_ held)
    bool stop_ = false;
    std::vector<std::thread> workers_;

    /** Per-worker task wall time; indexed by worker, written only by
     * that worker (atomic so observers race-freely read live). */
    std::unique_ptr<std::atomic<std::uint64_t>[]> busyNs_;
    std::atomic<std::uint64_t> tasksExecuted_{0};
};

} // namespace ocor

#endif // OCOR_COMMON_THREAD_POOL_HH
