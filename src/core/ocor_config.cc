#include "core/ocor_config.hh"

#include "common/log.hh"

namespace ocor
{

unsigned
OcorConfig::rtrSegmentWidth() const
{
    if (numRtrLevels == 0)
        return 1;
    unsigned w = maxSpinCount / numRtrLevels;
    return w == 0 ? 1 : w;
}

void
OcorConfig::validate() const
{
    if (maxSpinCount == 0)
        ocor_fatal("OcorConfig: maxSpinCount must be > 0");
    if (numRtrLevels == 0 || numRtrLevels > 62)
        ocor_fatal("OcorConfig: numRtrLevels must be in [1, 62]");
    if (numProgressLevels == 0 || numProgressLevels > 63)
        ocor_fatal("OcorConfig: numProgressLevels must be in [1, 63]");
    if (progressSegmentWidth == 0)
        ocor_fatal("OcorConfig: progressSegmentWidth must be > 0");
}

} // namespace ocor
