#include "core/priority.hh"

#include <algorithm>

namespace ocor
{

unsigned
rtrToLevel(const OcorConfig &cfg, unsigned rtr)
{
    const unsigned levels = cfg.numRtrLevels;
    const unsigned width = cfg.rtrSegmentWidth();
    unsigned clamped = std::clamp(rtr, 1u, cfg.maxSpinCount);
    unsigned segment = (clamped - 1) / width;
    if (segment >= levels)
        segment = levels - 1;
    // Smallest-RTR segment -> highest level; level 0 is wakeup-only.
    return levels - segment;
}

unsigned
progressToSegment(const OcorConfig &cfg, std::uint64_t prog)
{
    std::uint64_t seg = prog / cfg.progressSegmentWidth;
    std::uint64_t last = cfg.numProgressLevels - 1;
    return static_cast<unsigned>(std::min(seg, last));
}

PriorityFields
makePriority(const OcorConfig &cfg, PriorityClass cls, unsigned rtr,
             std::uint64_t prog)
{
    PriorityFields f;
    if (cls == PriorityClass::Normal)
        return f;
    if (!cfg.enabled)
        return f;
    // Ablating rule 2 removes every special treatment of lock-protocol
    // packets in the NoC, which collapses onto the baseline router
    // behaviour (see DESIGN.md, ablations).
    if (!cfg.ruleLockFirst)
        return f;

    const unsigned top = cfg.numRtrLevels;
    unsigned level = 0;
    switch (cls) {
      case PriorityClass::LockTry:
        level = cfg.ruleLeastRtrFirst ? rtrToLevel(cfg, rtr) : top;
        break;
      case PriorityClass::LockRelease:
        // The holder's release store unblocks every competitor; it is
        // served at the top locking level.
        level = top;
        break;
      case PriorityClass::Wakeup:
        level = cfg.ruleWakeupLast ? 0 : top;
        break;
      case PriorityClass::Normal:
        break; // unreachable
    }

    f.check = true;
    f.priorityBits = onehotEncode(level);
    f.progressBits = onehotEncode(progressToSegment(cfg, prog));
    return f;
}

std::uint64_t
priorityRank(const OcorConfig &cfg, const PriorityFields &f)
{
    if (!cfg.enabled || !f.check)
        return 0;

    const unsigned level = onehotDecode(f.priorityBits);
    const unsigned seg = onehotDecode(f.progressBits);
    const unsigned prog_comp = cfg.ruleSlowProgressFirst
        ? (cfg.numProgressLevels - 1 - seg)
        : 0;

    // Lexicographic (progress, level) flattened into one integer;
    // +1 keeps every lock-protocol packet above normal traffic
    // (Table 1 rule 2).
    return 1 + level
        + static_cast<std::uint64_t>(cfg.numRtrLevels + 2) * prog_comp;
}

} // namespace ocor
