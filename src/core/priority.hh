/**
 * @file
 * Packet priority fields and the Table-1 prioritization rules.
 *
 * Figure 8 of the paper adds three header fields to locking and wakeup
 * request packets: a priority *check bit* (distinguishes lock/wakeup
 * packets from data and coherence packets), one-hot *priority bits*
 * derived from the RTR value, and one-hot *progress bits* derived from
 * the issuing thread's PROG counter. Routers arbitrate with the four
 * rules of Table 1:
 *
 *   1. Slow Progress First    (smaller PROG wins)
 *   2. Locking Request First  (check bit set beats normal packets)
 *   3. Least RTR First        (higher RTR priority level wins)
 *   4. Wakeup Request Last    (wakeups get the lowest lock level)
 *
 * For arbitration the library collapses the rules into a single
 * totally-ordered integer rank (higher == served first); ties are
 * resolved by the arbiter's round-robin / random policy, preserving
 * the FIFO fairness discussed in Section 4.2. The Lpa class in
 * noc/arbiter.hh models the one-hot hardware datapath of Figure 9 and
 * is unit-tested to agree with this rank.
 */

#ifndef OCOR_CORE_PRIORITY_HH
#define OCOR_CORE_PRIORITY_HH

#include <cstdint>

#include "common/onehot.hh"
#include "core/ocor_config.hh"

namespace ocor
{

/** Priority-related header fields carried by every NoC packet. */
struct PriorityFields
{
    /** Priority check bit: set on lock-protocol packets only. */
    bool check = false;

    /**
     * One-hot RTR priority bits (bit index == level; higher level ==
     * higher priority). Level 0 is the dedicated lowest level of
     * wakeup requests; levels 1..numRtrLevels encode RTR segments.
     * Zero when check == false.
     */
    OneHot priorityBits = 0;

    /**
     * One-hot progress bits; here bit index == progress *segment*
     * (bit 0 = slowest segment). Zero when check == false.
     */
    OneHot progressBits = 0;
};

/** Classes of packets for priority stamping purposes. */
enum class PriorityClass : std::uint8_t
{
    Normal,      ///< data / coherence / memory packet (check bit 0)
    LockTry,     ///< spinning-phase atomic locking request
    LockRelease, ///< atomic release store of the lock holder
    Wakeup,      ///< FUTEX_WAKE request or wake notification
};

/**
 * Map an RTR value onto its one-hot priority level (Section 4.2).
 *
 * RTR in [1, maxSpinCount] is split evenly into numRtrLevels segments
 * of rtrSegmentWidth() retries each; the *smallest* RTR segment maps
 * to the *highest* level. Level 0 is reserved for wakeup requests.
 *
 * @param cfg  OCOR configuration (levels, spin budget).
 * @param rtr  remaining times of retry, clamped into [1, maxSpinCount].
 * @return     level in [1, cfg.numRtrLevels].
 */
unsigned rtrToLevel(const OcorConfig &cfg, unsigned rtr);

/**
 * Map a PROG counter value onto its progress segment (0 = slowest).
 * Saturates at the last segment.
 */
unsigned progressToSegment(const OcorConfig &cfg, std::uint64_t prog);

/**
 * Build the header fields for a packet of class @p cls issued by a
 * thread with the given RTR and PROG values. When OCOR is disabled
 * all packets get empty fields (the baseline router ignores them
 * anyway).
 */
PriorityFields makePriority(const OcorConfig &cfg, PriorityClass cls,
                            unsigned rtr, std::uint64_t prog);

/**
 * Collapse the Table-1 rules into a totally ordered rank.
 *
 * Higher rank is served first. Rank 0 is every normal packet (and
 * every packet when OCOR is disabled), so baseline behaviour reduces
 * to pure round-robin among equals.
 */
std::uint64_t priorityRank(const OcorConfig &cfg,
                           const PriorityFields &f);

} // namespace ocor

#endif // OCOR_CORE_PRIORITY_HH
