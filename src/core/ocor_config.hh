/**
 * @file
 * Configuration of the OCOR mechanism (the paper's contribution).
 *
 * Captures every knob Section 4 and Section 5.2.5 discuss: the spin
 * budget of the queue spinlock (MAX_SPIN_COUNT), the number of one-hot
 * priority levels the 128-retry span is folded into, the progress
 * (starvation-avoidance) encoding, and per-rule enable switches used
 * by the ablation benches.
 */

#ifndef OCOR_CORE_OCOR_CONFIG_HH
#define OCOR_CORE_OCOR_CONFIG_HH

namespace ocor
{

/** Tunables of the Opportunistic COH Reduction mechanism. */
struct OcorConfig
{
    /** Master switch; false == the unmodified baseline ("Original"). */
    bool enabled = false;

    /**
     * Spin budget of the queue spinlock (Linux 4.2 uses 128; see the
     * paper's footnote 1). RTR = maxSpinCount - retries so far.
     */
    unsigned maxSpinCount = 128;

    /**
     * Number of one-hot priority levels used for locking requests
     * (paper default: 8, each covering 16 retries; one extra lowest
     * level is implicitly reserved for wakeup requests).
     */
    unsigned numRtrLevels = 8;

    /** Number of one-hot levels for the progress (PROG) field. */
    unsigned numProgressLevels = 8;

    /** Completed critical sections per progress segment. */
    unsigned progressSegmentWidth = 4;

    /** Table 1, rule 1: Slow Progress First (starvation avoidance). */
    bool ruleSlowProgressFirst = true;

    /** Table 1, rule 2: Locking Request Packet First. */
    bool ruleLockFirst = true;

    /** Table 1, rule 3: Least RTR First. */
    bool ruleLeastRtrFirst = true;

    /** Table 1, rule 4: Wakeup Request Last. */
    bool ruleWakeupLast = true;

    /** Retries covered by one RTR priority segment (>= 1). */
    unsigned rtrSegmentWidth() const;

    /** Validate invariants; ocor_fatal()s on a bad configuration. */
    void validate() const;
};

} // namespace ocor

#endif // OCOR_CORE_OCOR_CONFIG_HH
