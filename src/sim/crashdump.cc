#include "sim/crashdump.hh"

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

#include "common/log.hh"
#include "common/trace.hh"

namespace ocor
{

namespace crashdump
{

namespace
{

constexpr int kLineCap = 240;
constexpr std::size_t kTraceTail = 32;

/** One in-flight simulation: a pre-rendered repro line. len is the
 * slot state: 0 free, -1 being claimed, >0 ready with that many
 * bytes. The handler only reads slots in state > 0. */
struct Slot
{
    std::atomic<int> len{0};
    char line[kLineCap];
};

Slot g_slots[RunScope::kSlots];

char g_path[512] = {0};
std::atomic<bool> g_installed{false};
std::atomic<const Tracer *> g_tracer{nullptr};
std::atomic<std::uint64_t> g_runs{0};
std::atomic<std::uint64_t> g_degraded{0};

// BEGIN signal-handler-context -- everything below this marker up to
// the matching END runs (also) inside a signal handler and must stay
// async-signal-safe: write()/open()/close() and atomics only. The
// simlint signal-unsafe rule scans this region.

/** EINTR-safe best-effort write of exactly @p len bytes. */
void
writeAll(int fd, const char *buf, std::size_t len)
{
    while (len > 0) {
        ssize_t n = ::write(fd, buf, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return;
        }
        buf += n;
        len -= static_cast<std::size_t>(n);
    }
}

void
writeStr(int fd, const char *s)
{
    std::size_t n = 0;
    while (s[n] != '\0')
        ++n;
    writeAll(fd, s, n);
}

/** Hand-rolled unsigned decimal formatting (no snprintf). */
void
writeDec(int fd, std::uint64_t v)
{
    char buf[24];
    int i = sizeof(buf);
    do {
        buf[--i] = static_cast<char>('0' + (v % 10));
        v /= 10;
    } while (v != 0);
    writeAll(fd, buf + i, sizeof(buf) - static_cast<std::size_t>(i));
}

const char *
sigName(int sig)
{
    switch (sig) {
      case SIGSEGV:
        return "SIGSEGV";
      case SIGABRT:
        return "SIGABRT";
      case SIGTERM:
        return "SIGTERM";
      case SIGBUS:
        return "SIGBUS";
      default:
        return "signal";
    }
}

/** The dump writer shared by the handler and dumpNow(). */
bool
writeDump(const char *why)
{
    if (g_path[0] == '\0')
        return false;
    int fd = ::open(g_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        return false;

    writeStr(fd, dumpHeader());
    writeStr(fd, "\nsignal=");
    writeStr(fd, why);
    writeStr(fd, "\nruns=");
    writeDec(fd, g_runs.load(std::memory_order_relaxed));
    writeStr(fd, "\ndegraded=");
    writeDec(fd, g_degraded.load(std::memory_order_relaxed));
    writeStr(fd, "\n");

    for (int i = 0; i < RunScope::kSlots; ++i) {
        int len = g_slots[i].len.load(std::memory_order_acquire);
        if (len > 0 && len <= kLineCap) {
            writeAll(fd, g_slots[i].line,
                     static_cast<std::size_t>(len));
            writeStr(fd, "\n");
        }
    }

    const Tracer *tr = g_tracer.load(std::memory_order_relaxed);
    if (tr != nullptr && tr->ringCount() > 0) {
        std::size_t n = tr->ringCount();
        std::size_t from = n > kTraceTail ? n - kTraceTail : 0;
        for (std::size_t i = from; i < n; ++i) {
            const TraceRecord &r = tr->ringRecord(i);
            writeStr(fd, "trace\t");
            writeDec(fd, r.cycle);
            writeStr(fd, "\t");
            writeStr(fd, traceEvName(r.ev));
            writeStr(fd, "\t");
            writeDec(fd, r.node);
            writeStr(fd, "\t");
            writeDec(fd, r.thread);
            writeStr(fd, "\t");
            writeDec(fd, r.addr);
            writeStr(fd, "\t");
            writeDec(fd, r.a0);
            writeStr(fd, "\t");
            writeDec(fd, r.a1);
            writeStr(fd, "\n");
        }
    }
    ::close(fd);
    return true;
}

extern "C" void
crashHandler(int sig)
{
    writeDump(sigName(sig));
    // Chain to the default disposition (SA_RESETHAND already
    // restored it) so the process dies with the original signal and
    // the parent sees the real cause.
    ::raise(sig);
}

// END signal-handler-context

} // namespace

const char *
dumpHeader()
{
    return "#ocor-crash v1";
}

void
install(const std::string &path)
{
    std::strncpy(g_path, path.c_str(), sizeof(g_path) - 1);
    g_path[sizeof(g_path) - 1] = '\0';
    if (g_installed.exchange(true))
        return; // re-point only; handlers already registered

    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = crashHandler;
    sigemptyset(&sa.sa_mask);
    // One shot: the handler runs once, the re-raise gets the default
    // disposition. NODEFER so the re-raised signal is deliverable.
    sa.sa_flags = SA_RESETHAND | SA_NODEFER;
    for (int sig : {SIGSEGV, SIGABRT, SIGTERM, SIGBUS})
        sigaction(sig, &sa, nullptr);
}

bool
installed()
{
    return g_installed.load(std::memory_order_relaxed);
}

const char *
dumpPath()
{
    return g_path;
}

void
setTracer(const Tracer *tracer)
{
    g_tracer.store(tracer, std::memory_order_relaxed);
}

void
noteRunnerProgress(std::uint64_t runs, std::uint64_t degraded)
{
    g_runs.store(runs, std::memory_order_relaxed);
    g_degraded.store(degraded, std::memory_order_relaxed);
}

std::string
reproLine(const BenchmarkProfile &profile,
          const ExperimentConfig &exp, bool ocor_enabled)
{
    const unsigned iters = exp.iterationsOverride > 0
        ? exp.iterationsOverride
        : profile.workload.iterations;
    std::ostringstream os;
    os << "repro\tbenchmark=" << profile.name
       << "\tthreads=" << exp.threads << "\titers=" << iters
       << "\tseed=" << exp.seed << "\tocor=" << (ocor_enabled ? 1 : 0);
    return os.str();
}

RunScope::RunScope(const BenchmarkProfile &profile,
                   const ExperimentConfig &exp, bool ocor_enabled)
{
    if (!installed())
        return;
    const std::string line = reproLine(profile, exp, ocor_enabled);
    if (line.size() > static_cast<std::size_t>(kLineCap))
        return;
    for (int i = 0; i < kSlots; ++i) {
        int expected = 0;
        if (g_slots[i].len.compare_exchange_strong(
                expected, -1, std::memory_order_acq_rel)) {
            std::memcpy(g_slots[i].line, line.data(), line.size());
            g_slots[i].len.store(static_cast<int>(line.size()),
                                 std::memory_order_release);
            slot_ = i;
            return;
        }
    }
    // All slots busy: this simulation goes untracked, which only
    // costs dump fidelity, never correctness.
}

RunScope::~RunScope()
{
    if (slot_ >= 0)
        g_slots[slot_].len.store(0, std::memory_order_release);
}

std::optional<ReplaySpec>
parseDump(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return std::nullopt;
    std::string line;
    if (!std::getline(in, line) || line != dumpHeader())
        return std::nullopt;
    while (std::getline(in, line)) {
        if (line.rfind("repro\t", 0) != 0)
            continue;
        ReplaySpec spec;
        bool haveBench = false;
        std::istringstream fields(line.substr(6));
        std::string field;
        while (std::getline(fields, field, '\t')) {
            auto eq = field.find('=');
            if (eq == std::string::npos)
                continue;
            const std::string k = field.substr(0, eq);
            const std::string v = field.substr(eq + 1);
            try {
                if (k == "benchmark") {
                    spec.benchmark = v;
                    haveBench = !v.empty();
                } else if (k == "threads") {
                    spec.threads =
                        static_cast<unsigned>(std::stoul(v));
                } else if (k == "iters") {
                    spec.iterations =
                        static_cast<unsigned>(std::stoul(v));
                } else if (k == "seed") {
                    spec.seed = std::stoull(v);
                } else if (k == "ocor") {
                    spec.ocorEnabled = v != "0";
                }
            } catch (const std::exception &) {
                return std::nullopt; // malformed numeric field
            }
        }
        if (haveBench)
            return spec;
        return std::nullopt;
    }
    return std::nullopt; // crash hit outside any simulation
}

bool
dumpNow(const char *reason)
{
    return writeDump(reason);
}

} // namespace crashdump

} // namespace ocor
