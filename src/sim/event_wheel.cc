#include "sim/event_wheel.hh"

#include "common/log.hh"

namespace ocor
{

EventWheel::EventWheel(unsigned num_buckets, Cycle bucket_width)
    : nBuckets_(num_buckets == 0 ? 1 : num_buckets),
      width_(bucket_width == 0 ? 1 : bucket_width),
      span_(static_cast<Cycle>(nBuckets_) * width_),
      buckets_(nBuckets_)
{
}

std::uint64_t
EventWheel::schedule(Cycle cycle, std::uint32_t rank,
                     std::uint64_t payload)
{
    WheelEvent e;
    e.cycle = cycle;
    e.rank = rank;
    e.seq = seq_++;
    e.payload = payload;
    if (cycle >= horizon()) {
        overflow_.push_back(e);
    } else {
        // Past-of-window cycles (allowed: they pop immediately) park
        // in the base bucket so the first-nonempty-bucket scan still
        // finds the global minimum there.
        buckets_[bucketOf(cycle < base_ ? base_ : cycle)].push_back(e);
    }
    ++size_;
    return e.seq;
}

void
EventWheel::slideTo(Cycle cycle)
{
    const Cycle new_base = cycle - cycle % width_;
    if (new_base <= base_)
        return;
    base_ = new_base;
    const Cycle hor = horizon();
    for (std::size_t i = 0; i < overflow_.size();) {
        if (overflow_[i].cycle < hor) {
            const WheelEvent &e = overflow_[i];
            buckets_[bucketOf(e.cycle < base_ ? base_ : e.cycle)]
                .push_back(e);
            overflow_[i] = overflow_.back();
            overflow_.pop_back();
        } else {
            ++i;
        }
    }
}

WheelEvent *
EventWheel::findMin(std::vector<WheelEvent> **home)
{
    if (size_ == 0)
        return nullptr;
    // Each ring bucket covers one width_-cycle slice of the window
    // (ascending from base_, wrapping), so the first nonempty bucket
    // holds the earliest pending cycle; the comparator picks the
    // (cycle, rank, seq) minimum within it.
    const std::size_t start = bucketOf(base_);
    for (unsigned k = 0; k < nBuckets_; ++k) {
        auto &b = buckets_[(start + k) % nBuckets_];
        if (b.empty())
            continue;
        WheelEvent *best = &b[0];
        for (auto &e : b)
            if (wheelEventBefore(e, *best))
                best = &e;
        *home = &b;
        return best;
    }
    // Ring drained: everything pending sits in overflow. Slide the
    // window to overflow's earliest cycle; migration then guarantees
    // the rescan finds it in the ring.
    WheelEvent *best = &overflow_[0];
    for (auto &e : overflow_)
        if (wheelEventBefore(e, *best))
            best = &e;
    slideTo(best->cycle);
    return findMin(home);
}

Cycle
EventWheel::nextCycle()
{
    std::vector<WheelEvent> *home = nullptr;
    WheelEvent *e = findMin(&home);
    return e ? e->cycle : neverCycle;
}

WheelEvent
EventWheel::pop()
{
    std::vector<WheelEvent> *home = nullptr;
    WheelEvent *best = findMin(&home);
    if (!best)
        ocor_panic("EventWheel::pop on an empty wheel");
    WheelEvent out = *best;
    *best = home->back();
    home->pop_back();
    --size_;
    slideTo(out.cycle);
    return out;
}

} // namespace ocor
