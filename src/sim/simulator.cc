#include "sim/simulator.hh"

#include <chrono>
#include <sstream>

#include "common/log.hh"
#include "common/thread_pool.hh"
#include "sim/crashdump.hh"

namespace ocor
{

Simulator::Simulator(const SystemConfig &cfg,
                     std::vector<Program> programs,
                     const BgTrafficConfig &bg, Options opts)
    : cfg_(cfg), opts_(opts)
{
    system_ = std::make_unique<System>(cfg, std::move(programs), bg);
    live_.reserve(system_->numThreads());
    for (ThreadId t = 0; t < system_->numThreads(); ++t)
        live_.push_back(t);
    if (opts_.timelineHorizon > 0) {
        unsigned t = opts_.timelineThreads == 0
            ? system_->numThreads()
            : std::min(opts_.timelineThreads, system_->numThreads());
        timeline_ = Timeline(t, opts_.timelineHorizon);
    }
    if (opts_.telemetryInterval > 0)
        telemetry_ = TelemetryRecorder(opts_.telemetryInterval);
    // Traced runs publish their ring to the crash-dump handler so a
    // fatal signal dumps the last events. One tracer at a time
    // (last wins) -- exactly the single-simulator tracing setup the
    // observability benches use.
    if (system_->tracer())
        crashdump::setTracer(system_->tracer());
}

Simulator::~Simulator()
{
    if (system_ && system_->tracer())
        crashdump::setTracer(nullptr);
}

void
Simulator::accountThread(ThreadId t)
{
    Pcb &pcb = system_->pcb(t);
    switch (pcb.state) {
      case ThreadState::Running:
        ++pcb.counters.computeCycles;
        break;
      case ThreadState::InCS:
        ++pcb.counters.csCycles;
        break;
      case ThreadState::Spinning:
      case ThreadState::SleepPrep:
      case ThreadState::Sleeping:
      case ThreadState::Waking: {
        // Equation-1 decomposition: is the contended lock held
        // (a predecessor is inside the CS) or idle (pure
        // competition overhead)? The verdict is constant within a
        // cycle, so it is derived once per (lock, cycle).
        Addr lock = system_->qspinlock(t).currentLock();
        bool held;
        if (!holderMemo_.lookup(lock, held)) {
            held = system_->lockHolderInCs(lock);
            holderMemo_.insert(lock, held);
        }
        if (held)
            ++pcb.counters.blockedHeldCycles;
        else
            ++pcb.counters.blockedIdleCycles;
        break;
      }
      case ThreadState::Finished:
        break;
    }
}

void
Simulator::accountCycle(Cycle now)
{
    holderMemo_.reset();
    if (timeline_.enabled()) {
        // The timeline records Finished threads too (as Done), so
        // the recorder path walks every thread.
        const unsigned threads = system_->numThreads();
        for (ThreadId t = 0; t < threads; ++t) {
            accountThread(t);
            timeline_.record(t, now, segClassOf(system_->pcb(t).state));
        }
        return;
    }
    // Hot path: only threads that can still accrue cycles. Finished
    // is terminal, so a thread is unlinked the first cycle it is
    // seen Finished and never revisited.
    for (std::size_t i = 0; i < live_.size();) {
        ThreadId t = live_[i];
        accountThread(t);
        if (system_->pcb(t).state == ThreadState::Finished) {
            live_[i] = live_.back();
            live_.pop_back();
        } else {
            ++i;
        }
    }
}

std::uint64_t
Simulator::progressSignal() const
{
    // Strictly monotone while any thread retires work (compute or CS
    // cycles, lock acquisitions, completion) or the NoC delivers
    // packets; constant exactly when the run is wedged.
    std::uint64_t p = system_->network().stats().packetsDelivered;
    const unsigned threads = system_->numThreads();
    for (ThreadId t = 0; t < threads; ++t) {
        const Pcb &pcb = system_->pcb(t);
        p += pcb.counters.computeCycles + pcb.counters.csCycles
            + pcb.counters.acquisitions;
        if (pcb.state == ThreadState::Finished)
            ++p;
    }
    return p;
}

std::string
Simulator::diagnoseHang() const
{
    std::ostringstream os;
    const unsigned threads = system_->numThreads();
    for (ThreadId t = 0; t < threads; ++t) {
        const Pcb &pcb = system_->pcb(t);
        QSpinlock &qs = system_->qspinlock(t);
        os << "t" << t << ": " << threadStateName(pcb.state);
        if (qs.waiting() || qs.holding()) {
            Addr lock = qs.currentLock();
            NodeId home = system_->addressMap().homeOf(lock);
            const LockManager &lm = system_->lockManager(home);
            os << " lock=0x" << std::hex << lock << std::dec
               << " tryInFlight=" << qs.tryInFlight()
               << " | home" << home
               << " held=" << lm.heldNow(lock)
               << " holder=" << lm.holderOf(lock)
               << " queue=" << lm.queueLength(lock)
               << " pollers=" << lm.pollerCount(lock);
        }
        os << "\n";
    }
    return os.str();
}

RunMetrics
Simulator::run()
{
    using clock = std::chrono::steady_clock;
    auto seconds_since = [](clock::time_point a, clock::time_point b) {
        return std::chrono::duration<double>(b - a).count();
    };
    const auto run_start = clock::now();

    Tracer *tr = system_->tracer();
    if (tr)
        tr->record(TraceCat::Sim, TraceEv::RunBegin, 0, invalidNode);
    CheckerRegistry *ck = system_->checker();

    Cycle last_progress_at = 0;
    std::uint64_t last_progress = 0;
    for (now_ = 0; now_ < cfg_.maxCycles; ++now_) {
        if (opts_.profileWall) {
            const auto t0 = clock::now();
            system_->tick(now_);
            const auto t1 = clock::now();
            accountCycle(now_);
            wall_.tickSeconds += seconds_since(t0, t1);
            wall_.accountSeconds += seconds_since(t1, clock::now());
        } else {
            system_->tick(now_);
            accountCycle(now_);
        }
        if (ck)
            ck->onCycleEnd(now_);
        if (telemetry_.due(now_)) {
            telemetry_.sample(now_, *system_);
            if (tr)
                tr->record(TraceCat::Sim, TraceEv::TelemetrySample,
                           now_, invalidNode, invalidThread, 0, 0,
                           static_cast<std::uint32_t>(
                               telemetry_.points()));
        }
        if (system_->allFinished())
            break;
        // Cooperative cancellation (supervision deadline), polled at
        // the same coarse stride as the watchdog so the unsupervised
        // loop stays bit-identical and cheap.
        if (opts_.cancel && (now_ & 0x7ff) == 0 &&
            opts_.cancel->cancelled()) {
            cancelled_ = true;
            if (tr)
                tr->record(TraceCat::Sim, TraceEv::WatchdogFired,
                           now_, invalidNode, invalidThread, 0, 0,
                           1 /* a0 = cancelled, not wedged */);
            ocor_warn("run cancelled by supervisor at cycle %llu",
                      static_cast<unsigned long long>(now_));
            break;
        }
        // Forward-progress watchdog, checked at a coarse stride so
        // the fault-free loop stays cheap.
        if (cfg_.progressWindow > 0 && (now_ & 0x7ff) == 0) {
            std::uint64_t p = progressSignal();
            if (p != last_progress) {
                last_progress = p;
                last_progress_at = now_;
            } else if (now_ - last_progress_at >= cfg_.progressWindow) {
                hangDetected_ = true;
                hangDiagnosis_ = diagnoseHang();
                if (tr)
                    tr->record(TraceCat::Sim, TraceEv::WatchdogFired,
                               now_, invalidNode);
                ocor_warn("no forward progress for %llu cycles at "
                          "cycle %llu; failing fast\n%s",
                          static_cast<unsigned long long>(
                              now_ - last_progress_at),
                          static_cast<unsigned long long>(now_),
                          hangDiagnosis_.c_str());
                break;
            }
        }
    }
    if (!hangDetected_ && !cancelled_ && now_ >= cfg_.maxCycles)
        ocor_warn("simulation hit maxCycles (%llu) before finishing",
                  static_cast<unsigned long long>(cfg_.maxCycles));

    if (tr)
        tr->record(TraceCat::Sim, TraceEv::RunEnd, now_, invalidNode,
                   invalidThread, 0, 0, hangDetected_ ? 1 : 0);
    if (ck)
        ck->finalize(now_);
    wall_.cycles = now_;
    wall_.totalSeconds = seconds_since(run_start, clock::now());

    RunMetrics m;
    m.roiFinish = now_;
    m.threads = system_->numThreads();
    for (ThreadId t = 0; t < m.threads; ++t)
        m.perThread.push_back(system_->pcb(t).counters);

    Network &net = system_->network();
    m.packetsInjected = net.totalPacketsInjected();
    m.flitsInjected = net.totalFlitsInjected();
    m.lockPacketsInjected = net.totalLockPacketsInjected();
    m.avgPacketLatency = net.stats().packetLatency.mean();
    m.avgLockPacketLatency = net.stats().lockPacketLatency.mean();
    m.avgDataPacketLatency = net.stats().dataPacketLatency.mean();
    m.p50PacketLatency = net.stats().packetLatencyHist.percentile(50);
    m.p95PacketLatency = net.stats().packetLatencyHist.percentile(95);
    m.p99PacketLatency = net.stats().packetLatencyHist.percentile(99);

    // One handover distribution across all lock homes (usually only
    // one home is hot, but merging keeps the metric shape-agnostic).
    Histogram handover{4.0, 256};
    const unsigned nodes = cfg_.mesh.numNodes();
    for (NodeId n = 0; n < nodes; ++n)
        handover.merge(
            system_->lockManager(n).stats().handoverLatencyHist);
    m.p50LockHandover = handover.percentile(50);
    m.p95LockHandover = handover.percentile(95);
    m.p99LockHandover = handover.percentile(99);

    if (const FaultInjector *fi = system_->faultInjector()) {
        const FaultStats &fs = fi->stats();
        m.faultsInjected = fs.faultsInjected();
        m.flitsDropped = fs.flitsDropped;
        m.flitsCorrupted = fs.flitsCorrupted;
        m.crcRejects = fs.crcRejects;
        m.retransmissions = fs.retransmissions;
        m.duplicatesDropped = fs.duplicatesDropped;
        m.unrecoverable = fs.unrecoverable;
    }
    m.watchdogRecoveries = system_->watchdogRecoveries();
    m.hangDetected = hangDetected_;
    m.cancelled = cancelled_;
    return m;
}

} // namespace ocor
