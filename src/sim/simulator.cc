#include "sim/simulator.hh"

#include "common/log.hh"

namespace ocor
{

Simulator::Simulator(const SystemConfig &cfg,
                     std::vector<Program> programs,
                     const BgTrafficConfig &bg, Options opts)
    : cfg_(cfg), opts_(opts)
{
    system_ = std::make_unique<System>(cfg, std::move(programs), bg);
    if (opts_.timelineHorizon > 0) {
        unsigned t = opts_.timelineThreads == 0
            ? system_->numThreads()
            : std::min(opts_.timelineThreads, system_->numThreads());
        timeline_ = Timeline(t, opts_.timelineHorizon);
    }
}

void
Simulator::accountCycle(Cycle now)
{
    const unsigned threads = system_->numThreads();
    for (ThreadId t = 0; t < threads; ++t) {
        Pcb &pcb = system_->pcb(t);
        switch (pcb.state) {
          case ThreadState::Running:
            ++pcb.counters.computeCycles;
            break;
          case ThreadState::InCS:
            ++pcb.counters.csCycles;
            break;
          case ThreadState::Spinning:
          case ThreadState::SleepPrep:
          case ThreadState::Sleeping:
          case ThreadState::Waking: {
            // Equation-1 decomposition: is the contended lock held
            // (a predecessor is inside the CS) or idle (pure
            // competition overhead)?
            Addr lock = system_->qspinlock(t).currentLock();
            if (system_->lockHolderInCs(lock))
                ++pcb.counters.blockedHeldCycles;
            else
                ++pcb.counters.blockedIdleCycles;
            break;
          }
          case ThreadState::Finished:
            break;
        }
        if (timeline_.enabled())
            timeline_.record(t, now, segClassOf(pcb.state));
    }
}

RunMetrics
Simulator::run()
{
    for (now_ = 0; now_ < cfg_.maxCycles; ++now_) {
        system_->tick(now_);
        accountCycle(now_);
        if (system_->allFinished())
            break;
    }
    if (now_ >= cfg_.maxCycles)
        ocor_warn("simulation hit maxCycles (%llu) before finishing",
                  static_cast<unsigned long long>(cfg_.maxCycles));

    RunMetrics m;
    m.roiFinish = now_;
    m.threads = system_->numThreads();
    for (ThreadId t = 0; t < m.threads; ++t)
        m.perThread.push_back(system_->pcb(t).counters);

    Network &net = system_->network();
    m.packetsInjected = net.totalPacketsInjected();
    m.flitsInjected = net.totalFlitsInjected();
    m.lockPacketsInjected = net.totalLockPacketsInjected();
    m.avgPacketLatency = net.stats().packetLatency.mean();
    m.avgLockPacketLatency = net.stats().lockPacketLatency.mean();
    m.avgDataPacketLatency = net.stats().dataPacketLatency.mean();
    return m;
}

} // namespace ocor
