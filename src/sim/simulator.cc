#include "sim/simulator.hh"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "common/log.hh"
#include "common/thread_pool.hh"
#include "os/lock_ledger.hh"
#include "sim/crashdump.hh"
#include "sim/event_wheel.hh"
#include "sim/wake_profiler.hh"

namespace ocor
{

namespace
{

using sim_clock = std::chrono::steady_clock;

double
secondsSince(sim_clock::time_point a, sim_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

/** Wheel ranks beyond the System component groups: pseudo events
 * that keep the watchdog/cancel poll stride and the telemetry
 * sampler firing on exactly the cycles the legacy loop visits. */
constexpr unsigned kTelemetryGroup = NumSystemGroups;
constexpr unsigned kStrideGroup = NumSystemGroups + 1;
constexpr unsigned kNumGroups = NumSystemGroups + 2;

/** The watchdog/cancel poll stride of the run loop (cycles with
 * (now & kStrideMask) == 0 are poll cycles). */
constexpr Cycle kStrideMask = 0x7ff;

std::atomic<SimCoreMode> g_default_core{SimCoreMode::Auto};
std::atomic<bool> g_default_wake_profile{false};

SimCoreMode
envCoreMode()
{
    static const SimCoreMode mode = [] {
        const char *s = std::getenv("OCOR_SIM_CORE");
        if (!s || !*s)
            return SimCoreMode::Auto;
        if (std::strcmp(s, "legacy") == 0)
            return SimCoreMode::Legacy;
        if (std::strcmp(s, "event") == 0)
            return SimCoreMode::Event;
        ocor_warn("OCOR_SIM_CORE=\"%s\" not recognized "
                  "(want \"legacy\" or \"event\"); ignoring", s);
        return SimCoreMode::Auto;
    }();
    return mode;
}

} // namespace

void
Simulator::setDefaultCoreMode(SimCoreMode m)
{
    g_default_core.store(m, std::memory_order_relaxed);
}

SimCoreMode
Simulator::defaultCoreMode()
{
    return g_default_core.load(std::memory_order_relaxed);
}

void
Simulator::setDefaultWakeProfile(bool on)
{
    g_default_wake_profile.store(on, std::memory_order_relaxed);
}

bool
Simulator::defaultWakeProfile()
{
    return g_default_wake_profile.load(std::memory_order_relaxed);
}

SimCoreMode
Simulator::resolvedCoreMode() const
{
    if (opts_.core != SimCoreMode::Auto)
        return opts_.core;
    if (SimCoreMode d = defaultCoreMode(); d != SimCoreMode::Auto)
        return d;
    if (SimCoreMode e = envCoreMode(); e != SimCoreMode::Auto)
        return e;
    return SimCoreMode::Event;
}

Simulator::Simulator(const SystemConfig &cfg,
                     std::vector<Program> programs,
                     const BgTrafficConfig &bg, Options opts)
    : cfg_(cfg), opts_(opts)
{
    system_ = std::make_unique<System>(cfg, std::move(programs), bg);
    live_.reserve(system_->numThreads());
    for (ThreadId t = 0; t < system_->numThreads(); ++t)
        live_.push_back(t);
    if (opts_.timelineHorizon > 0) {
        unsigned t = opts_.timelineThreads == 0
            ? system_->numThreads()
            : std::min(opts_.timelineThreads, system_->numThreads());
        timeline_ = Timeline(t, opts_.timelineHorizon);
    }
    if (opts_.telemetryInterval > 0)
        telemetry_ = TelemetryRecorder(opts_.telemetryInterval);
    if (opts_.cohLedger) {
        ledger_ =
            std::make_unique<LockLedger>(system_->numThreads());
        system_->setLedger(ledger_.get());
        budgetMemo_.resize(system_->numThreads());
    }
    if (opts_.wakeProfile || defaultWakeProfile())
        wakeProf_ = std::make_unique<WakeProfiler>();
    // Traced runs publish their ring to the crash-dump handler so a
    // fatal signal dumps the last events. One tracer at a time
    // (last wins) -- exactly the single-simulator tracing setup the
    // observability benches use.
    if (system_->tracer())
        crashdump::setTracer(system_->tracer());
}

Simulator::~Simulator()
{
    if (system_ && system_->tracer())
        crashdump::setTracer(nullptr);
}

Cycle
Simulator::tryBudget(ThreadId t, Addr lock)
{
    BudgetMemo &memo = budgetMemo_[t];
    if (memo.lock != lock) {
        Packet p;
        p.src = system_->pcb(t).node;
        p.dst = system_->addressMap().homeOf(lock);
        p.numFlits = 1;
        memo.lock = lock;
        memo.budget = 2 * system_->network().uncontendedLatency(p)
            + cfg_.os.homeLatency;
    }
    return memo.budget;
}

void
Simulator::chargeCohCauses(ThreadId t, Pcb &pcb, Addr lock,
                           Cycle from, Cycle to)
{
    auto charge = [&](CohCause cause, std::uint64_t n) {
        if (n == 0)
            return;
        switch (cause) {
          case CohCause::Transfer:
            pcb.counters.cohTransferCycles += n;
            break;
          case CohCause::Arbitration:
            pcb.counters.cohArbitrationCycles += n;
            break;
          case CohCause::Backoff:
            pcb.counters.cohBackoffCycles += n;
            break;
          case CohCause::Sleep:
            pcb.counters.cohSleepCycles += n;
            break;
          case CohCause::GrantGap:
            pcb.counters.cohGrantGapCycles += n;
            break;
          default:
            break;
        }
        ledger_->charge(lock, cause, n);
    };
    const QSpinlock &qs = system_->qspinlock(t);
    switch (pcb.state) {
      case ThreadState::Spinning:
        if (qs.tryInFlight()) {
            // The LockTry (or its verdict) is on the wire. Up to
            // the uncontended round-trip budget that is NoC
            // transfer; anything beyond is the home arbitrating
            // among competing tries (queueing, RTR ordering).
            const Cycle boundary =
                qs.trySentAt() + tryBudget(t, lock);
            const Cycle split =
                std::min(std::max(boundary, from), to);
            charge(CohCause::Transfer, split - from);
            charge(CohCause::Arbitration, to - split);
        } else {
            // No request outstanding: the client is sitting out a
            // local RTR retry backoff interval.
            charge(CohCause::Backoff, to - from);
        }
        break;
      case ThreadState::SleepPrep:
      case ThreadState::Sleeping:
        charge(CohCause::Sleep, to - from);
        break;
      case ThreadState::Waking:
        // Grant arrived while the thread sleeps: the lock is
        // reserved but unused until the wakeup completes.
        charge(CohCause::GrantGap, to - from);
        break;
      default:
        break;
    }
}

void
Simulator::accountThread(ThreadId t, Cycle now)
{
    Pcb &pcb = system_->pcb(t);
    switch (pcb.state) {
      case ThreadState::Running:
        ++pcb.counters.computeCycles;
        break;
      case ThreadState::InCS:
        ++pcb.counters.csCycles;
        break;
      case ThreadState::Spinning:
      case ThreadState::SleepPrep:
      case ThreadState::Sleeping:
      case ThreadState::Waking: {
        // Equation-1 decomposition: is the contended lock held
        // (a predecessor is inside the CS) or idle (pure
        // competition overhead)? The verdict is constant within a
        // cycle, so it is derived once per (lock, cycle).
        Addr lock = system_->qspinlock(t).currentLock();
        bool held;
        if (!holderMemo_.lookup(lock, held)) {
            held = system_->lockHolderInCs(lock);
            holderMemo_.insert(lock, held);
        }
        if (held) {
            ++pcb.counters.blockedHeldCycles;
        } else {
            ++pcb.counters.blockedIdleCycles;
            if (ledger_)
                chargeCohCauses(t, pcb, lock, now, now + 1);
        }
        break;
      }
      case ThreadState::Finished:
        break;
    }
}

void
Simulator::accountCycle(Cycle now)
{
    holderMemo_.reset();
    if (timeline_.enabled()) {
        // The timeline records Finished threads too (as Done), so
        // the recorder path walks every thread.
        const unsigned threads = system_->numThreads();
        for (ThreadId t = 0; t < threads; ++t) {
            accountThread(t, now);
            timeline_.record(t, now, segClassOf(system_->pcb(t).state));
        }
        return;
    }
    // Hot path: only threads that can still accrue cycles. Finished
    // is terminal, so a thread is unlinked the first cycle it is
    // seen Finished and never revisited.
    for (std::size_t i = 0; i < live_.size();) {
        ThreadId t = live_[i];
        accountThread(t, now);
        if (system_->pcb(t).state == ThreadState::Finished) {
            live_[i] = live_.back();
            live_.pop_back();
        } else {
            ++i;
        }
    }
}

std::uint64_t
Simulator::progressSignal() const
{
    // Strictly monotone while any thread retires work (compute or CS
    // cycles, lock acquisitions, completion) or the NoC delivers
    // packets; constant exactly when the run is wedged.
    std::uint64_t p = system_->network().stats().packetsDelivered;
    const unsigned threads = system_->numThreads();
    for (ThreadId t = 0; t < threads; ++t) {
        const Pcb &pcb = system_->pcb(t);
        p += pcb.counters.computeCycles + pcb.counters.csCycles
            + pcb.counters.acquisitions;
        if (pcb.state == ThreadState::Finished)
            ++p;
    }
    return p;
}

std::string
Simulator::diagnoseHang() const
{
    std::ostringstream os;
    const unsigned threads = system_->numThreads();
    for (ThreadId t = 0; t < threads; ++t) {
        const Pcb &pcb = system_->pcb(t);
        QSpinlock &qs = system_->qspinlock(t);
        os << "t" << t << ": " << threadStateName(pcb.state);
        if (qs.waiting() || qs.holding()) {
            Addr lock = qs.currentLock();
            NodeId home = system_->addressMap().homeOf(lock);
            const LockManager &lm = system_->lockManager(home);
            os << " lock=0x" << std::hex << lock << std::dec
               << " tryInFlight=" << qs.tryInFlight()
               << " | home" << home
               << " held=" << lm.heldNow(lock)
               << " holder=" << lm.holderOf(lock)
               << " queue=" << lm.queueLength(lock)
               << " pollers=" << lm.pollerCount(lock);
        }
        os << "\n";
    }
    return os.str();
}

bool
Simulator::processCycle(bool event, Tracer *tr, CheckerRegistry *ck,
                        Cycle &last_progress_at,
                        std::uint64_t &last_progress)
{
    auto tick_system = [&] {
        if (event && wakeProf_)
            system_->tickEventProfiled(now_, *wakeProf_);
        else if (event)
            system_->tickEvent(now_);
        else
            system_->tick(now_);
    };
    if (opts_.profileWall) {
        const auto t0 = sim_clock::now();
        tick_system();
        const auto t1 = sim_clock::now();
        accountCycle(now_);
        wall_.tickSeconds += secondsSince(t0, t1);
        wall_.accountSeconds += secondsSince(t1, sim_clock::now());
    } else {
        tick_system();
        accountCycle(now_);
    }
    ++wall_.cyclesProcessed;
    if (ck)
        ck->onCycleEnd(now_);
    if (telemetry_.due(now_)) {
        telemetry_.sample(now_, *system_);
        if (tr)
            tr->record(TraceCat::Sim, TraceEv::TelemetrySample,
                       now_, invalidNode, invalidThread, 0, 0,
                       static_cast<std::uint32_t>(
                           telemetry_.points()));
    }
    if (system_->allFinished())
        return true;
    // Cooperative cancellation (supervision deadline), polled at
    // the same coarse stride as the watchdog so the unsupervised
    // loop stays bit-identical and cheap.
    if (opts_.cancel && (now_ & kStrideMask) == 0 &&
        opts_.cancel->cancelled()) {
        cancelled_ = true;
        if (tr)
            tr->record(TraceCat::Sim, TraceEv::WatchdogFired,
                       now_, invalidNode, invalidThread, 0, 0,
                       1 /* a0 = cancelled, not wedged */);
        ocor_warn("run cancelled by supervisor at cycle %llu",
                  static_cast<unsigned long long>(now_));
        return true;
    }
    // Forward-progress watchdog, checked at a coarse stride so
    // the fault-free loop stays cheap.
    if (cfg_.progressWindow > 0 && (now_ & kStrideMask) == 0) {
        std::uint64_t p = progressSignal();
        if (p != last_progress) {
            last_progress = p;
            last_progress_at = now_;
        } else if (now_ - last_progress_at >= cfg_.progressWindow) {
            hangDetected_ = true;
            hangDiagnosis_ = diagnoseHang();
            if (tr)
                tr->record(TraceCat::Sim, TraceEv::WatchdogFired,
                           now_, invalidNode);
            ocor_warn("no forward progress for %llu cycles at "
                      "cycle %llu; failing fast\n%s",
                      static_cast<unsigned long long>(
                          now_ - last_progress_at),
                      static_cast<unsigned long long>(now_),
                      hangDiagnosis_.c_str());
            return true;
        }
    }
    return false;
}

void
Simulator::runLegacyLoop(Tracer *tr, CheckerRegistry *ck)
{
    Cycle last_progress_at = 0;
    std::uint64_t last_progress = 0;
    for (now_ = 0; now_ < cfg_.maxCycles; ++now_)
        if (processCycle(false, tr, ck, last_progress_at,
                         last_progress))
            break;
}

void
Simulator::accountSpan(Cycle from, Cycle to)
{
    if (to <= from)
        return;
    // Exact per-cycle rows while the timeline recorder is within its
    // horizon; the counter batching below covers the rest.
    if (timeline_.enabled() && from < timeline_.horizon()) {
        const Cycle cap = std::min(to, timeline_.horizon());
        for (Cycle c = from; c < cap; ++c)
            accountCycle(c);
        from = cap;
        if (to <= from)
            return;
    }
    const std::uint64_t span = to - from;
    holderMemo_.reset();
    for (std::size_t i = 0; i < live_.size();) {
        ThreadId t = live_[i];
        Pcb &pcb = system_->pcb(t);
        switch (pcb.state) {
          case ThreadState::Running:
            pcb.counters.computeCycles += span;
            break;
          case ThreadState::InCS:
            pcb.counters.csCycles += span;
            break;
          case ThreadState::Spinning:
          case ThreadState::SleepPrep:
          case ThreadState::Sleeping:
          case ThreadState::Waking: {
            Addr lock = system_->qspinlock(t).currentLock();
            bool held;
            if (!holderMemo_.lookup(lock, held)) {
                held = system_->lockHolderInCs(lock);
                holderMemo_.insert(lock, held);
            }
            if (held) {
                pcb.counters.blockedHeldCycles += span;
            } else {
                pcb.counters.blockedIdleCycles += span;
                if (ledger_)
                    chargeCohCauses(t, pcb, lock, from, to);
            }
            break;
          }
          case ThreadState::Finished:
            // A thread only reaches Finished on a processed cycle
            // and is unlinked there; defensive no-charge.
            break;
        }
        if (pcb.state == ThreadState::Finished &&
            !timeline_.enabled()) {
            live_[i] = live_.back();
            live_.pop_back();
        } else {
            ++i;
        }
    }
}

void
Simulator::runEventLoop(Tracer *tr, CheckerRegistry *ck)
{
    // With a checker registry attached the end-of-cycle invariant
    // walk must run every cycle (its per-cycle verdicts — and thus
    // violation counts under a collecting handler — are observable),
    // so cycle skipping is off; the lazy per-component tick skipping
    // of tickEvent() still applies.
    const bool skipping = (ck == nullptr);
    const bool stride_active =
        cfg_.progressWindow > 0 || opts_.cancel != nullptr;

    EventWheel wheel;
    Cycle scheduled[kNumGroups];
    if (skipping) {
        // Seed every group due at cycle 0, like the legacy loop's
        // unconditional first tick (non-due ticks are no-ops).
        for (unsigned g = 0; g < kNumGroups; ++g) {
            scheduled[g] = 0;
            wheel.schedule(0, g);
        }
    }

    auto group_wake = [&](unsigned g) -> Cycle {
        if (g < NumSystemGroups)
            return system_->componentWake(g, now_);
        if (g == kTelemetryGroup)
            return telemetry_.nextDue();
        // Poll-stride pseudo event: the next (now & mask) == 0
        // cycle, so cancel/watchdog polls fire on the exact cycles
        // the legacy loop polls on.
        return stride_active
            ? ((now_ | kStrideMask) + 1)
            : neverCycle;
    };

    Cycle last_progress_at = 0;
    std::uint64_t last_progress = 0;
    now_ = 0;
    while (now_ < cfg_.maxCycles) {
        if (processCycle(true, tr, ck, last_progress_at,
                         last_progress))
            break;
        if (!skipping) {
            ++now_;
            continue;
        }

        const auto s0 =
            opts_.profileWall ? sim_clock::now() : sim_clock::time_point{};
        // Re-register every group whose wake moved. Value-equality
        // against scheduled[] doubles as the staleness test for
        // entries already in the wheel.
        for (unsigned g = 0; g < kNumGroups; ++g) {
            Cycle w = group_wake(g);
            if (w <= now_)
                w = now_ + 1;
            if (w != scheduled[g]) {
                scheduled[g] = w;
                if (wakeProf_ && g < NumSystemGroups)
                    wakeProf_->noteReschedule(g);
                if (w != neverCycle)
                    wheel.schedule(w, g);
            }
        }
        Cycle next = neverCycle;
        while (!wheel.empty()) {
            WheelEvent e = wheel.pop();
            if (e.cycle == scheduled[e.rank]) {
                next = e.cycle;
                break;
            }
        }
        if (opts_.profileWall)
            wall_.schedSeconds += secondsSince(s0, sim_clock::now());

        if (next >= cfg_.maxCycles) {
            // Nothing left to do before the horizon: the legacy loop
            // would idle-tick to maxCycles, charging thread states
            // each cycle. Account the span and stop there.
            accountSpan(now_ + 1, cfg_.maxCycles);
            if (cfg_.maxCycles > now_ + 1)
                wall_.cyclesSkipped += cfg_.maxCycles - (now_ + 1);
            now_ = cfg_.maxCycles;
            break;
        }
        accountSpan(now_ + 1, next);
        wall_.cyclesSkipped += next - (now_ + 1);
        now_ = next;
    }
    wall_.eventsScheduled = wheel.scheduled();
}

RunMetrics
Simulator::run()
{
    const auto run_start = sim_clock::now();

    Tracer *tr = system_->tracer();
    if (tr)
        tr->record(TraceCat::Sim, TraceEv::RunBegin, 0, invalidNode);
    CheckerRegistry *ck = system_->checker();

    if (resolvedCoreMode() == SimCoreMode::Legacy)
        runLegacyLoop(tr, ck);
    else
        runEventLoop(tr, ck);

    if (!hangDetected_ && !cancelled_ && now_ >= cfg_.maxCycles)
        ocor_warn("simulation hit maxCycles (%llu) before finishing",
                  static_cast<unsigned long long>(cfg_.maxCycles));

    if (tr)
        tr->record(TraceCat::Sim, TraceEv::RunEnd, now_, invalidNode,
                   invalidThread, 0, 0, hangDetected_ ? 1 : 0);
    if (ck)
        ck->finalize(now_);
    wall_.cycles = now_;
    wall_.totalSeconds = secondsSince(run_start, sim_clock::now());

    RunMetrics m;
    m.roiFinish = now_;
    m.threads = system_->numThreads();
    for (ThreadId t = 0; t < m.threads; ++t)
        m.perThread.push_back(system_->pcb(t).counters);

    Network &net = system_->network();
    // Fold the still-open hybrid window's tail into windowCycles so
    // coverage never under-reports a run that ends mid-window.
    net.finalizeWindows(now_);
    m.windowsOpened = net.stats().windowsOpened;
    m.windowsClosed = net.stats().windowsClosed;
    m.windowCycles = net.stats().windowCycles;
    m.packetsInjected = net.totalPacketsInjected();
    m.flitsInjected = net.totalFlitsInjected();
    m.lockPacketsInjected = net.totalLockPacketsInjected();
    m.fastpathPackets = net.stats().fastpathPackets;
    m.avgPacketLatency = net.stats().packetLatency.mean();
    m.avgLockPacketLatency = net.stats().lockPacketLatency.mean();
    m.avgDataPacketLatency = net.stats().dataPacketLatency.mean();
    m.p50PacketLatency = net.stats().packetLatencyHist.percentile(50);
    m.p95PacketLatency = net.stats().packetLatencyHist.percentile(95);
    m.p99PacketLatency = net.stats().packetLatencyHist.percentile(99);

    // One handover distribution across all lock homes (usually only
    // one home is hot, but merging keeps the metric shape-agnostic).
    Histogram handover{4.0, 256};
    const unsigned nodes = cfg_.mesh.numNodes();
    for (NodeId n = 0; n < nodes; ++n)
        handover.merge(
            system_->lockManager(n).stats().handoverLatencyHist);
    m.p50LockHandover = handover.percentile(50);
    m.p95LockHandover = handover.percentile(95);
    m.p99LockHandover = handover.percentile(99);

    if (const FaultInjector *fi = system_->faultInjector()) {
        const FaultStats &fs = fi->stats();
        m.faultsInjected = fs.faultsInjected();
        m.flitsDropped = fs.flitsDropped;
        m.flitsCorrupted = fs.flitsCorrupted;
        m.crcRejects = fs.crcRejects;
        m.retransmissions = fs.retransmissions;
        m.duplicatesDropped = fs.duplicatesDropped;
        m.unrecoverable = fs.unrecoverable;
    }
    m.watchdogRecoveries = system_->watchdogRecoveries();
    m.hangDetected = hangDetected_;
    m.cancelled = cancelled_;

    // Fold this run into the process-global aggregates so sweeps
    // whose Simulators die inside the result cache still report
    // sim.wall.* / sim.wake.* totals (registerAggregateStats).
    mergeRunAggregates(wall_,
                       wakeProf_ ? &wakeProf_->stats() : nullptr);
    return m;
}

void
Simulator::registerStats(StatsRegistry &reg)
{
    system_->registerStats(reg);
    // Host wall-clock cost of the run, split by phase (Fig 10's
    // observability leg). The phase splits are only populated with
    // profileWall on; the cycle counters always are.
    reg.addScalarFn("sim.wall.total_seconds",
                    [this] { return wall_.totalSeconds; });
    reg.addScalarFn("sim.wall.tick_seconds",
                    [this] { return wall_.tickSeconds; });
    reg.addScalarFn("sim.wall.account_seconds",
                    [this] { return wall_.accountSeconds; });
    reg.addScalarFn("sim.wall.sched_seconds",
                    [this] { return wall_.schedSeconds; });
    reg.addScalarFn("sim.wall.cycles",
                    [this] { return static_cast<double>(wall_.cycles); });
    reg.addScalar("sim.wall.cycles_processed", &wall_.cyclesProcessed);
    reg.addScalar("sim.wall.cycles_skipped", &wall_.cyclesSkipped);
    reg.addScalar("sim.wall.events_scheduled", &wall_.eventsScheduled);
    if (ledger_)
        ledger_->registerStats(reg, "sim.coh");
    if (wakeProf_)
        registerWakeStats(reg, "sim.wake", &wakeProf_->stats());
}

} // namespace ocor
