/**
 * @file
 * Full system configuration (Table 2 defaults).
 */

#ifndef OCOR_SIM_CONFIG_HH
#define OCOR_SIM_CONFIG_HH

#include <cstdint>

#include "check/check_config.hh"
#include "common/trace.hh"
#include "common/types.hh"
#include "core/ocor_config.hh"
#include "mem/params.hh"
#include "noc/fault.hh"
#include "noc/params.hh"
#include "noc/routing.hh"
#include "os/params.hh"

namespace ocor
{

/** Everything needed to instantiate one simulated CMP. */
struct SystemConfig
{
    MeshShape mesh{8, 8};   ///< 64 nodes (Table 2)
    NocParams noc;
    MemParams mem;
    OsParams os;
    OcorConfig ocor;

    /** One thread per core; fewer threads leave cores idle. */
    unsigned numThreads = 64;

    std::uint64_t seed = 1;

    /** Hard stop for runaway experiments. */
    Cycle maxCycles = 50'000'000;

    /** Fault-injection model (disabled by default: all rates 0). */
    FaultConfig fault;

    /**
     * Forward-progress watchdog: abort the run (with per-thread lock
     * diagnostics) when no thread retires work for this many cycles.
     * 0 disables. Checked at a coarse granularity, so small values
     * are rounded up by up to ~2k cycles.
     */
    Cycle progressWindow = 1'000'000;

    /** Base address of the lock-word region. */
    Addr lockRegionBase = 0x1000'0000;

    /**
     * NoC modeling fidelity (see common/types.hh). Hybrid is
     * incompatible with fault injection and runtime invariant
     * checking: both reason about per-flit mesh transport, which the
     * analytic fast path bypasses. validate() enforces this.
     */
    Fidelity fidelity = Fidelity::Exact;

    /** Event tracing (off by default: categories == 0). */
    TraceConfig trace;

    /** Runtime invariant checking (off by default — checks == 0 —
     * unless the build sets OCOR_CHECK, which flips the default mask
     * to every checker). */
    CheckConfig check;

    void validate() const;

    /** Mesh shape conventionally used for a given core count. */
    static MeshShape meshFor(unsigned cores);
};

} // namespace ocor

#endif // OCOR_SIM_CONFIG_HH
