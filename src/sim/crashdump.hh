/**
 * @file
 * Crash capture and deterministic failure replay (DESIGN.md §12).
 *
 * install() registers an async-signal-safe handler for SIGSEGV,
 * SIGABRT and SIGTERM that writes a small plain-text dump before the
 * process dies: the signal, coarse sweep progress, one `repro` line
 * per simulation in flight at the instant of the crash, and the tail
 * of the trace ring when a tracer is attached. Because every
 * simulation is bit-identical given (profile, experiment knobs,
 * seed), that repro line is a complete reproduction recipe: feed the
 * dump back to any bench binary via `--replay <dump>` and it re-runs
 * the exact failing configuration deterministically.
 *
 * The handler plays by signal rules: it touches only pre-formatted
 * fixed-size buffers and lock-free atomics, and performs I/O with
 * open()/write() plus hand-rolled integer formatting — no malloc, no
 * stdio, no iostream, no mutex (scripts/simlint.py's signal-unsafe
 * rule enforces this). All formatting work happens *outside* the
 * handler: RunScope pre-renders its repro line at simulation start.
 */

#ifndef OCOR_SIM_CRASHDUMP_HH
#define OCOR_SIM_CRASHDUMP_HH

#include <cstdint>
#include <optional>
#include <string>

#include "sim/experiment.hh"

namespace ocor
{

class Tracer;

namespace crashdump
{

/** First line of every dump file (without newline). */
const char *dumpHeader();

/**
 * Install the crash handler, writing dumps to @p path. Idempotent;
 * a second call re-points the dump path. The handler chains to the
 * default disposition after dumping (the process still dies and the
 * shell still sees the signal).
 */
void install(const std::string &path);

/** Whether install() has run in this process. */
bool installed();

/** The dump path installed (empty before install()). */
const char *dumpPath();

/**
 * Attach the tracer whose ring tail (last ~32 records) the handler
 * should append to dumps. Pass nullptr before the tracer dies; the
 * handler only dereferences the currently attached pointer.
 */
void setTracer(const Tracer *tracer);

/** Coarse sweep progress shown in the dump header (runner hook). */
void noteRunnerProgress(std::uint64_t runs, std::uint64_t degraded);

/**
 * The `repro\t...` line identifying one simulation (no newline):
 * benchmark, threads, iterations, seed, OCOR flag — exactly the
 * inputs a deterministic re-run needs.
 */
std::string reproLine(const BenchmarkProfile &profile,
                      const ExperimentConfig &exp, bool ocor_enabled);

/**
 * Marks "this thread is simulating (profile, exp, ocor)" for the
 * lifetime of the scope, so a crash mid-simulation names its exact
 * configuration. Slot-limited: past kSlots concurrent simulations,
 * extra scopes are silently untracked (correctness never depends on
 * a slot). runOnce() opens one around every simulation.
 */
class RunScope
{
  public:
    static constexpr int kSlots = 64;

    RunScope(const BenchmarkProfile &profile,
             const ExperimentConfig &exp, bool ocor_enabled);
    ~RunScope();

    RunScope(const RunScope &) = delete;
    RunScope &operator=(const RunScope &) = delete;

  private:
    int slot_ = -1;
};

/** One parsed `repro` line: everything --replay needs. */
struct ReplaySpec
{
    std::string benchmark;
    unsigned threads = 64;
    unsigned iterations = 0; ///< 0 = profile default
    std::uint64_t seed = 1;
    bool ocorEnabled = false;
};

/**
 * Parse the first `repro` line of dump @p path. std::nullopt when
 * the file is missing, not a dump, or carries no repro line (e.g.
 * the crash hit outside any simulation).
 */
std::optional<ReplaySpec> parseDump(const std::string &path);

/**
 * Write a dump describing @p reason right now, from normal (not
 * signal) context. Test hook and manual diagnostic; uses the same
 * writer as the handler.
 */
bool dumpNow(const char *reason);

} // namespace crashdump

} // namespace ocor

#endif // OCOR_SIM_CRASHDUMP_HH
