#include "sim/system.hh"

#include <algorithm>

#include "common/log.hh"
#include "os/lock_ledger.hh"
#include "sim/wake_profiler.hh"

namespace ocor
{

System::System(const SystemConfig &cfg, std::vector<Program> programs,
               const BgTrafficConfig &bg)
    : cfg_(cfg), amap_(cfg.mesh, cfg.mem.lineBytes)
{
    cfg_.validate();
    if (programs.size() != cfg_.numThreads)
        ocor_fatal("System: %zu programs for %u threads",
                   programs.size(), cfg_.numThreads);

    if (cfg_.fault.enabled())
        fault_ = std::make_unique<FaultInjector>(cfg_.fault,
                                                 cfg_.seed);
    network_ = std::make_unique<Network>(cfg_.mesh, cfg_.noc,
                                         cfg_.ocor, fault_.get());

    SendFn send = [this](const PacketPtr &pkt, Cycle now) {
        network_->send(pkt, now);
    };

    const unsigned nodes = cfg_.mesh.numNodes();
    for (NodeId n = 0; n < nodes; ++n) {
        l1s_.push_back(std::make_unique<L1Cache>(n, amap_, cfg_.mem,
                                                 send));
        l2s_.push_back(std::make_unique<L2Directory>(n, amap_,
                                                     cfg_.mem, send));
        lockMgrs_.push_back(
            std::make_unique<LockManager>(n, cfg_.os, send));
        network_->setNodeSink(n,
            [this, n](const PacketPtr &pkt, Cycle now) {
                dispatch(n, pkt, now);
            });
    }

    for (NodeId n : amap_.mcNodes())
        mcs_[n] = std::make_unique<MemController>(n, cfg_.mem, send);

    for (ThreadId t = 0; t < cfg_.numThreads; ++t) {
        auto pcb = std::make_unique<Pcb>();
        pcb->tid = t;
        pcb->node = t; // thread t pinned to node t
        pcbs_.push_back(std::move(pcb));

        qspins_.push_back(std::make_unique<QSpinlock>(
            *pcbs_[t], cfg_.ocor, cfg_.os, amap_, send));

        cores_.push_back(std::make_unique<Core>(
            *pcbs_[t], *l1s_[t], *qspins_[t], std::move(programs[t]),
            bg, cfg_.seed + 7919 * (t + 1), cfg_.lockRegionBase,
            cfg_.mem.lineBytes));
    }

    mcTick_.reserve(mcs_.size());
    for (auto &[node, mc] : mcs_)
        mcTick_.push_back(mc.get());

    if (cfg_.fidelity == Fidelity::Hybrid) {
        // The qspinlocks maintain the live waiter count; the network
        // reads it to decide when the analytic fast path is safe.
        for (auto &qs : qspins_)
            qs->setWaiterCounter(&activeWaiters_);
        network_->setFastpath(&activeWaiters_);
    }

    if (cfg_.trace.enabled()) {
        tracer_ = std::make_unique<Tracer>(cfg_.trace);
        network_->setTracer(tracer_.get());
        for (auto &lm : lockMgrs_)
            lm->setTracer(tracer_.get());
        for (auto &qs : qspins_)
            qs->setTracer(tracer_.get());
    }

    if (cfg_.check.enabled()) {
        checks_ = std::make_unique<CheckerRegistry>(
            cfg_.check, cfg_.ocor, cfg_.noc.vcDepth);
        checks_->attachSystem(this);
        checks_->attachTracer(tracer_.get());
        checks_->attachFault(fault_.get());
        network_->setChecker(checks_.get());
        for (auto &lm : lockMgrs_)
            lm->setChecker(checks_.get());
        for (auto &qs : qspins_)
            qs->setChecker(checks_.get());
    }
}

void
System::setLedger(LockLedger *l)
{
    for (auto &qs : qspins_)
        qs->setLedger(l);
    for (auto &lm : lockMgrs_)
        lm->setLedger(l);
}

void
System::registerStats(StatsRegistry &reg, const std::string &prefix)
{
    const NetworkStats &net = network_->stats();
    reg.addScalar(prefix + ".net.packets_delivered",
                  &net.packetsDelivered);
    reg.addScalar(prefix + ".net.lock_packets_delivered",
                  &net.lockPacketsDelivered);
    reg.addScalar(prefix + ".net.fastpath_packets",
                  &net.fastpathPackets);
    reg.addSample(prefix + ".net.packet_latency", &net.packetLatency);
    reg.addSample(prefix + ".net.lock_packet_latency",
                  &net.lockPacketLatency);
    reg.addSample(prefix + ".net.data_packet_latency",
                  &net.dataPacketLatency);
    reg.addHistogram(prefix + ".net.packet_latency_hist",
                     &net.packetLatencyHist);
    reg.addHistogram(prefix + ".net.lock_packet_latency_hist",
                     &net.lockPacketLatencyHist);
    reg.addScalarFn(prefix + ".net.flits_injected", [this]() {
        return static_cast<double>(network_->totalFlitsInjected());
    });

    if (cfg_.fidelity == Fidelity::Hybrid) {
        reg.addScalar(prefix + ".net.window.opened",
                      &net.windowsOpened);
        reg.addScalar(prefix + ".net.window.closed",
                      &net.windowsClosed);
        reg.addScalar(prefix + ".net.window.cycles",
                      &net.windowCycles);
        reg.addScalar(prefix + ".net.window.close_waiter",
                      &net.windowCloseWaiter);
        reg.addScalar(prefix + ".net.window.close_lock",
                      &net.windowCloseLock);
        reg.addScalar(prefix + ".net.window.close_load",
                      &net.windowCloseLoad);
    }

    const unsigned nodes = cfg_.mesh.numNodes();
    for (NodeId n = 0; n < nodes; ++n) {
        const std::string r = prefix + ".router" + std::to_string(n);
        const RouterStats &rs = network_->router(n).stats();
        reg.addScalar(r + ".flits_routed", &rs.flitsRouted);
        reg.addScalar(r + ".lock_flits_routed", &rs.lockFlitsRouted);
        reg.addScalar(r + ".va_grants", &rs.vaGrants);
        reg.addScalar(r + ".sa_grants", &rs.saGrants);
        reg.addScalar(r + ".sa_conflict_losses",
                      &rs.saConflictLosses);

        const std::string i = prefix + ".ni" + std::to_string(n);
        const NiStats &ns = network_->ni(n).stats();
        reg.addScalar(i + ".packets_injected", &ns.packetsInjected);
        reg.addScalar(i + ".flits_injected", &ns.flitsInjected);
        reg.addScalar(i + ".packets_ejected", &ns.packetsEjected);
        reg.addScalar(i + ".lock_packets_injected",
                      &ns.lockPacketsInjected);
        reg.addScalar(i + ".inject_queue_peak", &ns.injectQueuePeak);

        const std::string m = prefix + ".lockmgr" + std::to_string(n);
        const LockMgrStats &ms = lockMgrs_[n]->stats();
        reg.addScalar(m + ".tries", &ms.tries);
        reg.addScalar(m + ".grants", &ms.grants);
        reg.addScalar(m + ".fails", &ms.fails);
        reg.addScalar(m + ".releases", &ms.releases);
        reg.addScalar(m + ".futex_waits", &ms.futexWaits);
        reg.addScalar(m + ".immediate_wakes", &ms.immediateWakes);
        reg.addScalar(m + ".wakes", &ms.wakes);
        reg.addScalar(m + ".notifies", &ms.notifies);
        reg.addScalar(m + ".duplicate_tries", &ms.duplicateTries);
        reg.addScalar(m + ".stray_releases", &ms.strayReleases);
        reg.addScalar(m + ".rewakes", &ms.rewakes);
        reg.addScalar(m + ".duplicate_waits", &ms.duplicateWaits);
        reg.addSample(m + ".handover_latency", &ms.handoverLatency);
        reg.addHistogram(m + ".handover_latency_hist",
                         &ms.handoverLatencyHist);
    }

    for (ThreadId t = 0; t < cfg_.numThreads; ++t) {
        const std::string p = prefix + ".thread" + std::to_string(t);
        const ThreadCounters &tc = pcbs_[t]->counters;
        reg.addScalar(p + ".compute_cycles", &tc.computeCycles);
        reg.addScalar(p + ".cs_cycles", &tc.csCycles);
        reg.addScalar(p + ".blocked_held_cycles",
                      &tc.blockedHeldCycles);
        reg.addScalar(p + ".blocked_idle_cycles",
                      &tc.blockedIdleCycles);
        reg.addScalar(p + ".acquisitions", &tc.acquisitions);
        reg.addScalar(p + ".spin_wins", &tc.spinWins);
        reg.addScalar(p + ".sleep_wins", &tc.sleepWins);
        reg.addScalar(p + ".retries", &tc.retries);
        reg.addScalar(p + ".sleeps", &tc.sleeps);
        reg.addScalar(p + ".coh_transfer_cycles",
                      &tc.cohTransferCycles);
        reg.addScalar(p + ".coh_arbitration_cycles",
                      &tc.cohArbitrationCycles);
        reg.addScalar(p + ".coh_backoff_cycles",
                      &tc.cohBackoffCycles);
        reg.addScalar(p + ".coh_sleep_cycles", &tc.cohSleepCycles);
        reg.addScalar(p + ".coh_grant_gap_cycles",
                      &tc.cohGrantGapCycles);
    }

    if (tracer_) {
        reg.addScalarFn(prefix + ".trace.emitted", [this]() {
            return static_cast<double>(tracer_->emitted());
        });
        reg.addScalarFn(prefix + ".trace.dropped", [this]() {
            return static_cast<double>(tracer_->dropped());
        });
    }

    if (checks_) {
        reg.addScalarFn(prefix + ".check.violations", [this]() {
            return static_cast<double>(checks_->violations());
        });
    }
}

void
System::dispatch(NodeId node, const PacketPtr &pkt, Cycle now)
{
    switch (pkt->type) {
      // Home-side coherence + memory fills.
      case MsgType::GetS:
      case MsgType::GetM:
      case MsgType::PutM:
      case MsgType::PutE:
      case MsgType::InvAck:
      case MsgType::FetchResp:
      case MsgType::Unblock:
      case MsgType::MemResp:
        l2s_[node]->handle(pkt, now);
        break;

      // L1-side coherence.
      case MsgType::Inv:
      case MsgType::Fetch:
      case MsgType::Data:
      case MsgType::DataExcl:
      case MsgType::WbAck:
        l1s_[node]->handle(pkt, now);
        break;

      // Off-chip memory.
      case MsgType::MemRead:
      case MsgType::MemWrite: {
        auto it = mcs_.find(node);
        if (it == mcs_.end())
            ocor_panic("node %u has no memory controller", node);
        it->second->handle(pkt, now);
        break;
      }

      // Lock protocol, home side.
      case MsgType::LockTry:
      case MsgType::LockRelease:
      case MsgType::FutexWait:
      case MsgType::FutexWake:
        lockMgrs_[node]->handle(pkt, now);
        break;

      // Lock protocol, thread side.
      case MsgType::LockGrant:
      case MsgType::LockFail:
      case MsgType::LockFreeNotify:
      case MsgType::WakeNotify:
        if (pkt->thread >= qspins_.size())
            ocor_panic("lock response for unknown thread %u",
                       pkt->thread);
        qspins_[pkt->thread]->handle(pkt, now);
        break;

      default:
        ocor_panic("dispatch: unhandled message %s",
                   msgTypeName(pkt->type));
    }
}

void
System::tick(Cycle now)
{
    network_->tick(now);
    // Legacy exact path: every component every cycle, by definition.
    for (auto &l1 : l1s_)  // simlint: allow(unconditional-tick)
        l1->tick(now);
    for (auto &l2 : l2s_)  // simlint: allow(unconditional-tick)
        l2->tick(now);
    for (auto &lm : lockMgrs_)  // simlint: allow(unconditional-tick)
        lm->tick(now);
    for (MemController *mc : mcTick_)  // simlint: allow(unconditional-tick)
        mc->tick(now);
    for (auto &qs : qspins_)  // simlint: allow(unconditional-tick)
        qs->tick(now);
    for (auto &c : cores_)  // simlint: allow(unconditional-tick)
        c->tick(now);
}

void
System::tickEvent(Cycle now)
{
    if (netWake_ <= now)
        network_->tickEvent(now);
    for (auto &l1 : l1s_)
        if (l1->nextWake() <= now)
            l1->tick(now);
    for (auto &l2 : l2s_)
        if (l2->nextWake() <= now)
            l2->tick(now);
    for (auto &lm : lockMgrs_)
        if (lm->nextWake() <= now)
            lm->tick(now);
    for (MemController *mc : mcTick_)
        if (mc->nextWake() <= now)
            mc->tick(now);
    for (auto &qs : qspins_)
        if (qs->nextWake() <= now)
            qs->tick(now);
    for (auto &c : cores_)
        if (c->nextWake() <= now)
            c->tick(now);
    // All sends of this cycle have been queued by now (NI inject
    // queues stamp ready = now + 1), so this scan sees them.
    netWake_ = network_->nextWake(now);
}

namespace
{

/** FNV-style fold; order-sensitive so swapped counters don't cancel. */
inline std::uint64_t
sigFold(std::uint64_t sig, std::uint64_t v)
{
    return (sig ^ v) * 1099511628211ull;
}

} // namespace

std::uint64_t
System::groupSignature(unsigned g) const
{
    std::uint64_t s = 14695981039346656037ull;
    switch (g) {
      case GNetwork: {
        // Forward progress = flits moving through allocation stages
        // or packets leaving the network. Credit return and conflict
        // losses are deliberately excluded: a cycle that only shuffles
        // credits is the wasted network wake the ROADMAP's coalescing
        // item is after.
        const NetworkStats &ns = network_->stats();
        s = sigFold(s, ns.packetsDelivered);
        s = sigFold(s, ns.fastpathPackets);
        const unsigned nodes = cfg_.mesh.numNodes();
        for (NodeId n = 0; n < nodes; ++n) {
            const RouterStats &rs = network_->router(n).stats();
            s = sigFold(s, rs.flitsRouted + rs.vaGrants +
                               rs.saGrants);
            const NiStats &is = network_->ni(n).stats();
            s = sigFold(s, is.flitsInjected + is.packetsEjected);
        }
        break;
      }
      case GL1:
        // The delayed-completion FIFOs advance via tick() without
        // touching a counter (the counters moved at handle() time),
        // so nextWake() joins the fold: popping a due completion is
        // real work, not a wasted wake.
        for (const auto &l1 : l1s_) {
            const L1Stats &st = l1->stats();
            s = sigFold(s, st.hits + st.misses + st.evictions +
                               st.writebacks + st.invsReceived +
                               st.fetchesReceived + st.mshrRejects);
            s = sigFold(s, l1->nextWake());
        }
        break;
      case GL2:
        for (const auto &l2 : l2s_) {
            const L2Stats &st = l2->stats();
            s = sigFold(s, st.getS + st.getM + st.invsSent +
                               st.fetchesSent + st.memReads +
                               st.memWrites + st.queuedRequests +
                               st.staleAcks + st.l2Evictions);
            s = sigFold(s, l2->nextWake());
        }
        break;
      case GLockMgr:
        // A popped retry FutexWake that finds the lock held (or the
        // queue empty) bumps no counter: that tick reads as wasted,
        // which is the attribution we want for no-op wake retries.
        for (const auto &lm : lockMgrs_) {
            const LockMgrStats &st = lm->stats();
            s = sigFold(s, st.tries + st.grants + st.fails +
                               st.releases + st.futexWaits +
                               st.immediateWakes + st.wakes +
                               st.notifies + st.duplicateTries +
                               st.strayReleases + st.rewakes +
                               st.duplicateWaits);
        }
        break;
      case GMc:
        // reads/writes move at handle() time (inside the network
        // slot); completing an access only pops the service queue,
        // which shows up in nextWake().
        for (const MemController *mc : mcTick_) {
            const McStats &st = mc->stats();
            s = sigFold(s, st.reads + st.writes);
            s = sigFold(s, mc->nextWake());
        }
        break;
      case GQspin:
        // Counters alone miss timer-only transitions (e.g. the
        // deferred FUTEX_WAKE firing), so the per-thread nextWake()
        // and state enter the fold too.
        for (ThreadId t = 0; t < cfg_.numThreads; ++t) {
            const Pcb &pcb = *pcbs_[t];
            const QSpinlock &qs = *qspins_[t];
            s = sigFold(s, static_cast<std::uint64_t>(pcb.state));
            s = sigFold(s, pcb.counters.retries +
                               pcb.counters.sleeps +
                               pcb.counters.acquisitions +
                               qs.recoveries() +
                               qs.duplicatesAbsorbed());
            s = sigFold(s, qs.nextWake());
        }
        break;
      case GCore:
        for (const auto &c : cores_) {
            const CoreStats &st = c->stats();
            s = sigFold(s, st.opsExecuted + st.fgLoads +
                               st.fgStores + st.bgAccesses +
                               st.bgRejected + st.fgRetries);
        }
        break;
      default:
        ocor_panic("groupSignature: unknown group %u", g);
    }
    return s;
}

void
System::tickEventProfiled(Cycle now, WakeProfiler &wp)
{
    wp.beginCycle();
    // Mirror of tickEvent(): same lazy per-component gating in the
    // same slot order, each group bracketed by its signature. The
    // due pre-scan happens exactly where the group's tick loop would
    // start, so the verdicts are identical to tickEvent()'s.
    if (netWake_ <= now) {
        wp.noteNetReason(network_->wakeReason(now));
        const std::uint64_t sig = groupSignature(GNetwork);
        network_->tickEvent(now);
        wp.noteWake(GNetwork, sig != groupSignature(GNetwork));
    }
    auto run_group = [&](unsigned g, auto &vec) {
        bool due = false;
        for (const auto &c : vec)
            if (c->nextWake() <= now) {
                due = true;
                break;
            }
        if (!due)
            return;
        const std::uint64_t sig = groupSignature(g);
        for (auto &c : vec)
            if (c->nextWake() <= now)
                c->tick(now);
        wp.noteWake(g, sig != groupSignature(g));
    };
    run_group(GL1, l1s_);
    run_group(GL2, l2s_);
    run_group(GLockMgr, lockMgrs_);
    run_group(GMc, mcTick_);
    run_group(GQspin, qspins_);
    run_group(GCore, cores_);
    netWake_ = network_->nextWake(now);
}

Cycle
System::componentWake(unsigned g, Cycle now) const
{
    Cycle w = neverCycle;
    switch (g) {
      case GNetwork:
        return netWake_ <= now ? network_->nextWake(now) : netWake_;
      case GL1:
        for (const auto &l1 : l1s_)
            w = std::min(w, l1->nextWake());
        return w;
      case GL2:
        for (const auto &l2 : l2s_)
            w = std::min(w, l2->nextWake());
        return w;
      case GLockMgr:
        for (const auto &lm : lockMgrs_)
            w = std::min(w, lm->nextWake());
        return w;
      case GMc:
        for (const MemController *mc : mcTick_)
            w = std::min(w, mc->nextWake());
        return w;
      case GQspin:
        for (const auto &qs : qspins_)
            w = std::min(w, qs->nextWake());
        return w;
      case GCore:
        for (const auto &c : cores_)
            w = std::min(w, c->nextWake());
        return w;
      default:
        ocor_panic("componentWake: unknown group %u", g);
    }
}

bool
System::allFinished() const
{
    // Finishing is monotone per core, so resume the scan where it
    // last stopped; the common not-finished case is one check.
    const unsigned n = static_cast<unsigned>(cores_.size());
    while (firstUnfinished_ < n &&
           cores_[firstUnfinished_]->finished())
        ++firstUnfinished_;
    return firstUnfinished_ == n;
}

bool
System::drained() const
{
    if (!network_->idle())
        return false;
    for (const auto &l1 : l1s_)
        if (!l1->idle())
            return false;
    for (const auto &l2 : l2s_)
        if (!l2->idle())
            return false;
    for (const auto &lm : lockMgrs_)
        if (!lm->idle())
            return false;
    for (const auto &[node, mc] : mcs_)
        if (!mc->idle())
            return false;
    return true;
}

std::uint64_t
System::watchdogRecoveries() const
{
    std::uint64_t n = 0;
    for (const auto &lm : lockMgrs_)
        n += lm->stats().rewakes;
    for (const auto &qs : qspins_)
        n += qs->recoveries();
    return n;
}

bool
System::lockHeld(Addr lock_word) const
{
    NodeId home = amap_.homeOf(lock_word);
    return lockMgrs_[home]->heldNow(lock_word);
}

bool
System::lockHolderInCs(Addr lock_word) const
{
    NodeId home = amap_.homeOf(lock_word);
    ThreadId holder = lockMgrs_[home]->holderOf(lock_word);
    if (holder == invalidThread || holder >= pcbs_.size())
        return false;
    return pcbs_[holder]->state == ThreadState::InCS;
}

std::size_t
System::lockQueueLength(Addr lock_word) const
{
    NodeId home = amap_.homeOf(lock_word);
    return lockMgrs_[home]->queueLength(lock_word);
}

} // namespace ocor
