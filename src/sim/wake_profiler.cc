#include "sim/wake_profiler.hh"

#include <mutex>

#include "common/stats_registry.hh"
#include "sim/simulator.hh"

namespace ocor
{

const char *
simGroupName(unsigned g)
{
    switch (g) {
      case GNetwork: return "network";
      case GL1:      return "l1";
      case GL2:      return "l2";
      case GLockMgr: return "lockmgr";
      case GMc:      return "mc";
      case GQspin:   return "qspin";
      case GCore:    return "core";
      default:       return "?";
    }
}

void
WakeStats::merge(const WakeStats &o)
{
    for (unsigned g = 0; g < NumSystemGroups; ++g) {
        wakes[g] += o.wakes[g];
        wasted[g] += o.wasted[g];
        for (unsigned h = 0; h < NumSystemGroups; ++h)
            edges[g][h] += o.edges[g][h];
    }
    for (std::size_t r = 0; r < kNumNetWakeReasons; ++r)
        netReasons[r] += o.netReasons[r];
    cyclesProfiled += o.cyclesProfiled;
}

namespace
{

std::mutex g_agg_mu;
WallProfile g_agg_wall;
WakeStats g_agg_wake;
std::uint64_t g_agg_runs = 0;
std::uint64_t g_agg_wake_runs = 0;

} // namespace

void
mergeRunAggregates(const WallProfile &wall, const WakeStats *wake)
{
    std::lock_guard<std::mutex> lk(g_agg_mu);
    g_agg_wall.totalSeconds += wall.totalSeconds;
    g_agg_wall.tickSeconds += wall.tickSeconds;
    g_agg_wall.accountSeconds += wall.accountSeconds;
    g_agg_wall.schedSeconds += wall.schedSeconds;
    g_agg_wall.cycles += wall.cycles;
    g_agg_wall.cyclesProcessed += wall.cyclesProcessed;
    g_agg_wall.cyclesSkipped += wall.cyclesSkipped;
    g_agg_wall.eventsScheduled += wall.eventsScheduled;
    ++g_agg_runs;
    if (wake) {
        g_agg_wake.merge(*wake);
        ++g_agg_wake_runs;
    }
}

WallProfile
aggregateWall()
{
    std::lock_guard<std::mutex> lk(g_agg_mu);
    return g_agg_wall;
}

WakeStats
aggregateWake()
{
    std::lock_guard<std::mutex> lk(g_agg_mu);
    return g_agg_wake;
}

std::uint64_t
aggregateRuns()
{
    std::lock_guard<std::mutex> lk(g_agg_mu);
    return g_agg_runs;
}

std::uint64_t
aggregateWakeRuns()
{
    std::lock_guard<std::mutex> lk(g_agg_mu);
    return g_agg_wake_runs;
}

void
resetRunAggregates()
{
    std::lock_guard<std::mutex> lk(g_agg_mu);
    g_agg_wall = WallProfile{};
    g_agg_wake = WakeStats{};
    g_agg_runs = 0;
    g_agg_wake_runs = 0;
}

void
registerWakeStats(StatsRegistry &reg, const std::string &prefix,
                  const WakeStats *ws)
{
    reg.addScalar(prefix + ".cycles_profiled", &ws->cyclesProfiled);
    for (unsigned g = 0; g < NumSystemGroups; ++g) {
        const std::string base =
            prefix + "." + simGroupName(g);
        reg.addScalar(base + ".wakes", &ws->wakes[g]);
        reg.addScalar(base + ".wasted", &ws->wasted[g]);
        for (unsigned h = 0; h < NumSystemGroups; ++h)
            reg.addScalar(prefix + ".edge." + simGroupName(g) +
                              "." + simGroupName(h),
                          &ws->edges[g][h]);
    }
    for (std::size_t r = 0; r < kNumNetWakeReasons; ++r)
        reg.addScalar(
            prefix + ".net_reason." +
                netWakeReasonName(static_cast<NetWakeReason>(r)),
            &ws->netReasons[r]);
}

void
registerAggregateStats(StatsRegistry &reg)
{
    // Everything reads the global aggregate at dump time, so stats
    // registered before a sweep report the sweep's final totals.
    auto wall = [](auto field) {
        return [field]() { return field(aggregateWall()); };
    };
    if (!reg.has("sim.wall.total_seconds")) {
        reg.addScalarFn("sim.wall.total_seconds",
                        wall([](const WallProfile &w) {
                            return w.totalSeconds;
                        }));
        reg.addScalarFn("sim.wall.tick_seconds",
                        wall([](const WallProfile &w) {
                            return w.tickSeconds;
                        }));
        reg.addScalarFn("sim.wall.account_seconds",
                        wall([](const WallProfile &w) {
                            return w.accountSeconds;
                        }));
        reg.addScalarFn("sim.wall.sched_seconds",
                        wall([](const WallProfile &w) {
                            return w.schedSeconds;
                        }));
        reg.addScalarFn("sim.wall.cycles",
                        wall([](const WallProfile &w) {
                            return static_cast<double>(w.cycles);
                        }));
        reg.addScalarFn("sim.wall.cycles_processed",
                        wall([](const WallProfile &w) {
                            return static_cast<double>(
                                w.cyclesProcessed);
                        }));
        reg.addScalarFn("sim.wall.cycles_skipped",
                        wall([](const WallProfile &w) {
                            return static_cast<double>(
                                w.cyclesSkipped);
                        }));
        reg.addScalarFn("sim.wall.events_scheduled",
                        wall([](const WallProfile &w) {
                            return static_cast<double>(
                                w.eventsScheduled);
                        }));
    }
    reg.addScalarFn("sim.wall.runs", []() {
        return static_cast<double>(aggregateRuns());
    });

    if (aggregateWakeRuns() == 0)
        return; // no profiled run: keep stats.json free of zeros
    if (reg.has("sim.wake.cycles_profiled"))
        return; // a live Simulator already registered its run's view
    reg.addScalarFn("sim.wake.runs", []() {
        return static_cast<double>(aggregateWakeRuns());
    });
    reg.addScalarFn("sim.wake.cycles_profiled", []() {
        return static_cast<double>(aggregateWake().cyclesProfiled);
    });
    for (unsigned g = 0; g < NumSystemGroups; ++g) {
        const std::string base =
            std::string("sim.wake.") + simGroupName(g);
        reg.addScalarFn(base + ".wakes", [g]() {
            return static_cast<double>(aggregateWake().wakes[g]);
        });
        reg.addScalarFn(base + ".wasted", [g]() {
            return static_cast<double>(aggregateWake().wasted[g]);
        });
        for (unsigned h = 0; h < NumSystemGroups; ++h)
            reg.addScalarFn(std::string("sim.wake.edge.") +
                                simGroupName(g) + "." +
                                simGroupName(h),
                            [g, h]() {
                                return static_cast<double>(
                                    aggregateWake().edges[g][h]);
                            });
    }
    for (std::size_t r = 0; r < kNumNetWakeReasons; ++r)
        reg.addScalarFn(
            std::string("sim.wake.net_reason.") +
                netWakeReasonName(static_cast<NetWakeReason>(r)),
            [r]() {
                return static_cast<double>(
                    aggregateWake().netReasons[r]);
            });
}

} // namespace ocor
