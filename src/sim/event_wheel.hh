/**
 * @file
 * Calendar-queue event wheel: the scheduler behind the event-driven
 * simulation core (DESIGN.md §13).
 *
 * Near-future events land in a ring of cycle-range buckets; events
 * beyond the ring's horizon wait in an overflow pool and migrate into
 * the ring as the window slides forward. Time is monotone (the
 * simulator never schedules into the past of the last pop), which
 * keeps every operation allocation-free in steady state.
 *
 * Ordering is fully deterministic: events pop in (cycle, rank,
 * insertion sequence) order. Rank is the registrant's fixed
 * component-group rank, so two components due the same cycle always
 * come back in canonical tick order, and two registrations of the
 * same group resolve by age. This tie-break rule is what makes the
 * event core bit-identical to the legacy per-cycle loop.
 */

#ifndef OCOR_SIM_EVENT_WHEEL_HH
#define OCOR_SIM_EVENT_WHEEL_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace ocor
{

/** One scheduled wakeup. */
struct WheelEvent
{
    Cycle cycle = 0;          ///< due cycle
    std::uint32_t rank = 0;   ///< component-group rank (1st tie-break)
    std::uint64_t seq = 0;    ///< insertion order (2nd tie-break)
    std::uint64_t payload = 0; ///< registrant cookie
};

/** `a` pops strictly before `b`. */
inline bool
wheelEventBefore(const WheelEvent &a, const WheelEvent &b)
{
    if (a.cycle != b.cycle)
        return a.cycle < b.cycle;
    if (a.rank != b.rank)
        return a.rank < b.rank;
    return a.seq < b.seq;
}

/** Calendar queue of WheelEvents. */
class EventWheel
{
  public:
    /**
     * @p num_buckets ring slots, each covering @p bucket_width
     * cycles; together they form the near-future window. Defaults
     * cover 4096 cycles — wider than the watchdog stride and most OS
     * timer delays, so overflow migration is rare.
     */
    explicit EventWheel(unsigned num_buckets = 64,
                        Cycle bucket_width = 64);

    /**
     * Register an event. Cycles earlier than the window base (time
     * already popped past them) are accepted and come back
     * immediately, still ordered by their true cycle.
     *
     * @return the event's insertion sequence number.
     */
    std::uint64_t schedule(Cycle cycle, std::uint32_t rank,
                           std::uint64_t payload = 0);

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }

    /** Earliest pending cycle; neverCycle when empty. Slides the
     * window (migrating overflow events), hence non-const. */
    Cycle nextCycle();

    /** Remove and return the earliest event ((cycle, rank, seq)
     * order). Panics when empty. */
    WheelEvent pop();

    /** Total schedule() calls ever (scheduler-overhead metric). */
    std::uint64_t scheduled() const { return seq_; }

  private:
    /** Ring index of an in-window cycle. */
    std::size_t bucketOf(Cycle cycle) const
    {
        return static_cast<std::size_t>((cycle / width_) % nBuckets_);
    }

    /** First cycle past the current window. */
    Cycle horizon() const
    {
        Cycle span = span_;
        return base_ > neverCycle - span ? neverCycle : base_ + span;
    }

    /** Slide the window so @p cycle is inside it and pull overflow
     * events that became near-future into the ring. */
    void slideTo(Cycle cycle);

    /** Pointer to the minimum event, scanning ring then overflow;
     * null when empty. Slides the window first. */
    WheelEvent *findMin(std::vector<WheelEvent> **home);

    unsigned nBuckets_;
    Cycle width_;
    Cycle span_;            ///< nBuckets_ * width_
    Cycle base_ = 0;        ///< window start (bucket-aligned)
    std::size_t size_ = 0;
    std::uint64_t seq_ = 0;
    std::vector<std::vector<WheelEvent>> buckets_;
    std::vector<WheelEvent> overflow_; ///< events past the horizon
};

} // namespace ocor

#endif // OCOR_SIM_EVENT_WHEEL_HH
