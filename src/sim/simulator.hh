/**
 * @file
 * Simulator: the cycle loop, the per-cycle COH/CS/compute accounting
 * oracle, ROI bookkeeping and optional timeline recording.
 */

#ifndef OCOR_SIM_SIMULATOR_HH
#define OCOR_SIM_SIMULATOR_HH

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "sim/metrics.hh"
#include "sim/system.hh"
#include "sim/telemetry.hh"

namespace ocor
{

class CancelToken;

/**
 * One-cycle memo of lockHolderInCs verdicts, keyed by lock word.
 *
 * Within a single cycle the verdict for a lock is constant, but the
 * accounting loop used to re-derive it (home-node lookup + lock-table
 * probe + holder-PCB read) for every blocked thread; under heavy
 * contention that is 63 redundant oracle walks per cycle. Capacity
 * is bounded: past kSlots distinct locks, extra inserts are dropped
 * and callers simply recompute — correctness never depends on a hit.
 */
class HolderMemo
{
  public:
    static constexpr unsigned kSlots = 8;

    void reset() { n_ = 0; }

    bool
    lookup(Addr lock, bool &held) const
    {
        for (unsigned i = 0; i < n_; ++i) {
            if (locks_[i] == lock) {
                held = held_[i];
                return true;
            }
        }
        return false;
    }

    void
    insert(Addr lock, bool held)
    {
        if (n_ < kSlots) {
            locks_[n_] = lock;
            held_[n_] = held;
            ++n_;
        }
    }

    unsigned size() const { return n_; }

  private:
    std::array<Addr, kSlots> locks_{};
    std::array<bool, kSlots> held_{};
    unsigned n_ = 0;
};

/** Optional simulation-run features. */
struct SimOptions
{
    /** Record per-cycle activity for the first N cycles... */
    Cycle timelineHorizon = 0;
    /** ...of the first M threads (0 = all). */
    unsigned timelineThreads = 0;

    /** Sample interval telemetry every N cycles (0 = off). */
    Cycle telemetryInterval = 0;

    /** Break run() wall time down by phase (tick vs accounting).
     * Adds two clock reads per cycle, so it is opt-in. */
    bool profileWall = false;

    /**
     * Cooperative cancellation: when non-null, run() polls the token
     * at the (coarse) watchdog stride and winds down early with
     * RunMetrics::cancelled set once it fires. Null (the default)
     * keeps the loop bit-identical to an unsupervised run.
     */
    const CancelToken *cancel = nullptr;
};

/** Host wall-clock cost of one run() (never enters sim results). */
struct WallProfile
{
    double totalSeconds = 0.0;   ///< whole run(), always measured
    double tickSeconds = 0.0;    ///< System::tick (profileWall only)
    double accountSeconds = 0.0; ///< accounting (profileWall only)
    std::uint64_t cycles = 0;    ///< cycles the loop executed
};

/** Drives one System instance through its region of interest. */
class Simulator
{
  public:
    using Options = SimOptions;

    Simulator(const SystemConfig &cfg, std::vector<Program> programs,
              const BgTrafficConfig &bg, Options opts = {});

    /** Detaches the tracer from the crash-dump handler (if this
     * instance attached it). */
    ~Simulator();

    /**
     * Run until every thread finishes (or maxCycles). Returns the
     * aggregated metrics; per-thread counters are also left in the
     * PCBs for white-box inspection.
     */
    RunMetrics run();

    System &system() { return *system_; }
    const Timeline &timeline() const { return timeline_; }
    const TelemetryRecorder &telemetry() const { return telemetry_; }
    const WallProfile &wallProfile() const { return wall_; }

    /** Current simulated cycle (valid after run()). */
    Cycle now() const { return now_; }

    /**
     * Advance exactly one cycle (tick + accounting) without the
     * watchdog/ROI bookkeeping of run(). Microbenchmark hook for
     * measuring the steady-state per-cycle cost; don't mix with
     * run() on the same instance.
     */
    void
    stepCycle()
    {
        system_->tick(now_);
        accountCycle(now_);
        if (CheckerRegistry *ck = system_->checker())
            ck->onCycleEnd(now_);
        ++now_;
    }

    /** Per-thread lock-state dump captured when the forward-progress
     * watchdog fired (empty otherwise). */
    const std::string &hangDiagnosis() const { return hangDiagnosis_; }

  private:
    void accountCycle(Cycle now);

    /** Charge one cycle to thread @p t's current state. */
    void accountThread(ThreadId t);

    /** Monotone counter that stalls exactly when the run is wedged. */
    std::uint64_t progressSignal() const;

    std::string diagnoseHang() const;

    SystemConfig cfg_;
    std::unique_ptr<System> system_;
    Options opts_;
    Timeline timeline_;
    TelemetryRecorder telemetry_{0};
    WallProfile wall_;
    Cycle now_ = 0;
    bool hangDetected_ = false;
    bool cancelled_ = false;
    std::string hangDiagnosis_;

    /** Per-cycle lockHolderInCs memo (reset each cycle). */
    HolderMemo holderMemo_;

    /** Threads not yet Finished; the accounting loop only walks
     * these once the timeline recorder is off. */
    std::vector<ThreadId> live_;
};

} // namespace ocor

#endif // OCOR_SIM_SIMULATOR_HH
