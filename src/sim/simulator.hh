/**
 * @file
 * Simulator: the cycle loop, the per-cycle COH/CS/compute accounting
 * oracle, ROI bookkeeping and optional timeline recording.
 */

#ifndef OCOR_SIM_SIMULATOR_HH
#define OCOR_SIM_SIMULATOR_HH

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "sim/metrics.hh"
#include "sim/system.hh"
#include "sim/telemetry.hh"

namespace ocor
{

class CancelToken;
class Tracer;
class LockLedger;
class WakeProfiler;

/**
 * Which simulation core drives run().
 *
 * Legacy is the original unconditional per-cycle loop (every
 * component ticked every cycle); Event is the event-driven core
 * (components ticked only on due cycles, quiet spans skipped in one
 * step). The two are bit-identical by construction — Event exists
 * purely for wall-clock speed. Auto defers to the process-wide
 * default (setDefaultCoreMode), then the OCOR_SIM_CORE environment
 * variable ("legacy" / "event"), then Event.
 */
enum class SimCoreMode : std::uint8_t
{
    Auto,
    Legacy,
    Event
};

/**
 * One-cycle memo of lockHolderInCs verdicts, keyed by lock word.
 *
 * Within a single cycle the verdict for a lock is constant, but the
 * accounting loop used to re-derive it (home-node lookup + lock-table
 * probe + holder-PCB read) for every blocked thread; under heavy
 * contention that is 63 redundant oracle walks per cycle. Capacity
 * is bounded: past kSlots distinct locks, extra inserts are dropped
 * and callers simply recompute — correctness never depends on a hit.
 */
class HolderMemo
{
  public:
    static constexpr unsigned kSlots = 8;

    void reset() { n_ = 0; }

    bool
    lookup(Addr lock, bool &held) const
    {
        for (unsigned i = 0; i < n_; ++i) {
            if (locks_[i] == lock) {
                held = held_[i];
                return true;
            }
        }
        return false;
    }

    void
    insert(Addr lock, bool held)
    {
        if (n_ < kSlots) {
            locks_[n_] = lock;
            held_[n_] = held;
            ++n_;
        }
    }

    unsigned size() const { return n_; }

  private:
    std::array<Addr, kSlots> locks_{};
    std::array<bool, kSlots> held_{};
    unsigned n_ = 0;
};

/** Optional simulation-run features. */
struct SimOptions
{
    /** Record per-cycle activity for the first N cycles... */
    Cycle timelineHorizon = 0;
    /** ...of the first M threads (0 = all). */
    unsigned timelineThreads = 0;

    /** Sample interval telemetry every N cycles (0 = off). */
    Cycle telemetryInterval = 0;

    /** Break run() wall time down by phase (tick vs accounting).
     * Adds two clock reads per cycle, so it is opt-in. */
    bool profileWall = false;

    /**
     * Cooperative cancellation: when non-null, run() polls the token
     * at the (coarse) watchdog stride and winds down early with
     * RunMetrics::cancelled set once it fires. Null (the default)
     * keeps the loop bit-identical to an unsupervised run.
     */
    const CancelToken *cancel = nullptr;

    /** Simulation core driving run() (see SimCoreMode). */
    SimCoreMode core = SimCoreMode::Auto;

    /**
     * COH attribution ledger: split every blocked-idle (competition
     * overhead) cycle into a named cause — transfer, arbitration,
     * backoff, sleep, grant gap — per lock and per thread
     * (DESIGN.md §14). Off by default; a ledger run's aggregate
     * counters are identical to a plain run's, the split is pure
     * refinement.
     */
    bool cohLedger = false;

    /**
     * Wake-attribution profiler (event core only): count per-group
     * wakes, wasted wakes and wake edges. Purely observational —
     * simulation results are bit-identical with it on. Also enabled
     * process-wide by Simulator::setDefaultWakeProfile.
     */
    bool wakeProfile = false;
};

/** Host wall-clock cost of one run() (never enters sim results). */
struct WallProfile
{
    double totalSeconds = 0.0;   ///< whole run(), always measured
    double tickSeconds = 0.0;    ///< System::tick (profileWall only)
    double accountSeconds = 0.0; ///< accounting (profileWall only)
    double schedSeconds = 0.0;   ///< event scheduling (profileWall)
    std::uint64_t cycles = 0;    ///< simulated cycles covered

    /** Cycles the loop actually ticked (== cycles under the legacy
     * core; under the event core, cycles + skipped == processed +
     * skipped covers the run). */
    std::uint64_t cyclesProcessed = 0;
    std::uint64_t cyclesSkipped = 0;   ///< quiet cycles jumped over
    std::uint64_t eventsScheduled = 0; ///< event-wheel pushes
};

/** Drives one System instance through its region of interest. */
class Simulator
{
  public:
    using Options = SimOptions;

    Simulator(const SystemConfig &cfg, std::vector<Program> programs,
              const BgTrafficConfig &bg, Options opts = {});

    /** Detaches the tracer from the crash-dump handler (if this
     * instance attached it). */
    ~Simulator();

    /**
     * Run until every thread finishes (or maxCycles). Returns the
     * aggregated metrics; per-thread counters are also left in the
     * PCBs for white-box inspection.
     */
    RunMetrics run();

    System &system() { return *system_; }
    const Timeline &timeline() const { return timeline_; }
    const TelemetryRecorder &telemetry() const { return telemetry_; }
    const WallProfile &wallProfile() const { return wall_; }

    /** Current simulated cycle (valid after run()). */
    Cycle now() const { return now_; }

    /**
     * Advance exactly one cycle (tick + accounting) without the
     * watchdog/ROI bookkeeping of run(). Microbenchmark hook for
     * measuring the steady-state per-cycle cost; don't mix with
     * run() on the same instance.
     */
    void
    stepCycle()
    {
        system_->tick(now_);
        accountCycle(now_);
        if (CheckerRegistry *ck = system_->checker())
            ck->onCycleEnd(now_);
        ++now_;
    }

    /** Per-thread lock-state dump captured when the forward-progress
     * watchdog fired (empty otherwise). */
    const std::string &hangDiagnosis() const { return hangDiagnosis_; }

    /**
     * Register the System's component counters plus this run's wall
     * profile ("sim.wall.*": total/tick/account/sched seconds and
     * the processed/skipped cycle split). The registry reads from
     * this Simulator at dump time, so it must not outlive it.
     */
    void registerStats(StatsRegistry &reg);

    /**
     * Process-wide default core for Simulators whose options leave
     * core at Auto (the benches' --legacy-tick flag). Thread-safe.
     */
    static void setDefaultCoreMode(SimCoreMode m);
    static SimCoreMode defaultCoreMode();

    /**
     * Process-wide wake-profiling default (the benches'
     * --wake-profile flag): profiling changes no results, so unlike
     * the ledger it needs no per-experiment plumbing or cache-key
     * split — note cached runs don't execute and contribute no wake
     * stats (pair the flag with --fresh). Thread-safe.
     */
    static void setDefaultWakeProfile(bool on);
    static bool defaultWakeProfile();

    /** The core mode run() will use (Auto fully resolved). */
    SimCoreMode resolvedCoreMode() const;

    /** COH attribution ledger; null unless opts.cohLedger. */
    const LockLedger *ledger() const { return ledger_.get(); }

    /** Wake profiler; null unless profiling is on. */
    const WakeProfiler *wakeProfiler() const
    {
        return wakeProf_.get();
    }

  private:
    void runLegacyLoop(Tracer *tr, CheckerRegistry *ck);
    void runEventLoop(Tracer *tr, CheckerRegistry *ck);

    /**
     * One legacy loop-body iteration at now_ (tick or tickEvent,
     * accounting, checkers, telemetry, finish/cancel/watchdog exit
     * tests). Returns true when the run must stop at now_.
     */
    bool processCycle(bool event, Tracer *tr, CheckerRegistry *ck,
                      Cycle &last_progress_at,
                      std::uint64_t &last_progress);

    /**
     * Charge cycles [from, to) to every live thread in one step.
     * Valid only for spans in which no component was ticked: state
     * is frozen, so each thread's accounting verdict is constant
     * across the span and multiplies out. Timeline cycles (below the
     * recorder horizon) still get exact per-cycle rows.
     */
    void accountSpan(Cycle from, Cycle to);

    void accountCycle(Cycle now);

    /** Charge one cycle (at @p now) to thread @p t's current state. */
    void accountThread(ThreadId t, Cycle now);

    /**
     * Ledger refinement of a blocked-idle charge: split the span
     * [@p from, @p to) of thread @p t waiting on @p lock into COH
     * causes (the transfer/arbitration boundary falls at the try's
     * departure plus the uncontended round-trip budget). Charges
     * both the thread counters and the per-lock ledger; the pieces
     * sum to the span by construction.
     */
    void chargeCohCauses(ThreadId t, Pcb &pcb, Addr lock, Cycle from,
                         Cycle to);

    /** Uncontended LockTry round-trip budget of (thread, lock):
     * 2 mesh transits of a 1-flit packet plus the home latency.
     * Memoized per thread (the lock rarely changes). */
    Cycle tryBudget(ThreadId t, Addr lock);

    /** Monotone counter that stalls exactly when the run is wedged. */
    std::uint64_t progressSignal() const;

    std::string diagnoseHang() const;

    SystemConfig cfg_;
    std::unique_ptr<System> system_;
    Options opts_;
    Timeline timeline_;
    TelemetryRecorder telemetry_{0};
    WallProfile wall_;
    Cycle now_ = 0;
    bool hangDetected_ = false;
    bool cancelled_ = false;
    std::string hangDiagnosis_;

    /** Per-cycle lockHolderInCs memo (reset each cycle). */
    HolderMemo holderMemo_;

    /** Threads not yet Finished; the accounting loop only walks
     * these once the timeline recorder is off. */
    std::vector<ThreadId> live_;

    /** COH attribution ledger (null = off). */
    std::unique_ptr<LockLedger> ledger_;

    /** Wake-attribution profiler (null = off). */
    std::unique_ptr<WakeProfiler> wakeProf_;

    /** Per-thread try-budget memo for chargeCohCauses. */
    struct BudgetMemo
    {
        Addr lock = ~static_cast<Addr>(0);
        Cycle budget = 0;
    };
    std::vector<BudgetMemo> budgetMemo_;
};

} // namespace ocor

#endif // OCOR_SIM_SIMULATOR_HH
