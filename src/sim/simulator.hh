/**
 * @file
 * Simulator: the cycle loop, the per-cycle COH/CS/compute accounting
 * oracle, ROI bookkeeping and optional timeline recording.
 */

#ifndef OCOR_SIM_SIMULATOR_HH
#define OCOR_SIM_SIMULATOR_HH

#include <memory>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "sim/metrics.hh"
#include "sim/system.hh"

namespace ocor
{

/** Optional simulation-run features. */
struct SimOptions
{
    /** Record per-cycle activity for the first N cycles... */
    Cycle timelineHorizon = 0;
    /** ...of the first M threads (0 = all). */
    unsigned timelineThreads = 0;
};

/** Drives one System instance through its region of interest. */
class Simulator
{
  public:
    using Options = SimOptions;

    Simulator(const SystemConfig &cfg, std::vector<Program> programs,
              const BgTrafficConfig &bg, Options opts = {});

    /**
     * Run until every thread finishes (or maxCycles). Returns the
     * aggregated metrics; per-thread counters are also left in the
     * PCBs for white-box inspection.
     */
    RunMetrics run();

    System &system() { return *system_; }
    const Timeline &timeline() const { return timeline_; }

    /** Current simulated cycle (valid after run()). */
    Cycle now() const { return now_; }

    /** Per-thread lock-state dump captured when the forward-progress
     * watchdog fired (empty otherwise). */
    const std::string &hangDiagnosis() const { return hangDiagnosis_; }

  private:
    void accountCycle(Cycle now);

    /** Monotone counter that stalls exactly when the run is wedged. */
    std::uint64_t progressSignal() const;

    std::string diagnoseHang() const;

    SystemConfig cfg_;
    std::unique_ptr<System> system_;
    Options opts_;
    Timeline timeline_;
    Cycle now_ = 0;
    bool hangDetected_ = false;
    std::string hangDiagnosis_;
};

} // namespace ocor

#endif // OCOR_SIM_SIMULATOR_HH
