/**
 * @file
 * On-disk cache of experiment results.
 *
 * Several benches (Fig. 11, 12, 13, 14, Table 3) are different views
 * of the same 25-benchmark Original-vs-OCOR sweep; a full 64-core
 * run takes minutes, so results are memoized in a TSV file keyed by
 * every input that affects the outcome. Delete the file (default
 * `ocor_results.tsv` in the working directory) to force re-runs.
 *
 * The cache is safe to hammer from many threads at once (the
 * parallel experiment engine does exactly that): lookups hit an
 * in-memory index loaded once from disk, concurrent get() calls for
 * the same key are deduplicated so each configuration is simulated
 * exactly once, and disk writes are batched and serialized so the
 * TSV never interleaves partial lines.
 */

#ifndef OCOR_SIM_RESULT_CACHE_HH
#define OCOR_SIM_RESULT_CACHE_HH

#include <atomic>
#include <cstdint>
#include <future>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/experiment.hh"

namespace ocor
{

/** Everything that identifies one cached run. */
struct CacheKey
{
    std::string benchmark;
    unsigned threads = 64;
    bool ocorEnabled = false;
    unsigned iterations = 0; ///< 0 = profile default
    std::uint64_t seed = 1;
    unsigned rtrLevels = 8;
    unsigned ruleMask = 0xf; ///< bit per Table-1 rule

    std::string toString() const;
};

/** Build the key for an experiment configuration. */
CacheKey makeCacheKey(const BenchmarkProfile &profile,
                      const ExperimentConfig &exp, bool ocor_enabled);

/**
 * TSV-backed, thread-safe memo of RunMetrics aggregates.
 *
 * Not copyable or movable (it owns a mutex and in-flight state);
 * benches hold one instance and share it across worker threads.
 */
class ResultCache
{
  public:
    explicit ResultCache(std::string path = "ocor_results.tsv");

    /** Flushes any batched rows to disk. */
    ~ResultCache();

    ResultCache(const ResultCache &) = delete;
    ResultCache &operator=(const ResultCache &) = delete;

    std::optional<RunMetrics> lookup(const CacheKey &key) const;
    void store(const CacheKey &key, const RunMetrics &metrics);

    /**
     * Run-or-recall one configuration; stores on miss. This is the
     * entry point every bench binary uses. Safe to call from many
     * threads concurrently: losers of the in-flight race block until
     * the winner's simulation finishes, so a key is never simulated
     * twice.
     */
    RunMetrics get(const BenchmarkProfile &profile,
                   const ExperimentConfig &exp, bool ocor_enabled);

    /** Paired Original/OCOR result through the cache. */
    BenchmarkResult getComparison(const BenchmarkProfile &profile,
                                  const ExperimentConfig &exp);

    /** Write any batched rows to the TSV now. */
    void flush();

    /** Simulations actually executed by get() (cache misses). */
    std::uint64_t simulationsRun() const
    {
        return simulationsRun_.load(std::memory_order_relaxed);
    }

    const std::string &path() const { return path_; }

  private:
    /** Load the TSV into the in-memory index (once; mu_ held). */
    void loadLocked() const;
    /** Append pending rows to the TSV (mu_ held). */
    void flushLocked();

    /** Rows buffered before this many stores hit the disk. */
    static constexpr std::size_t kFlushBatch = 16;

    std::string path_;

    mutable std::mutex mu_;
    mutable bool loaded_ = false;
    mutable std::unordered_map<std::string, RunMetrics> mem_;
    std::vector<std::string> pending_;
    std::unordered_map<std::string, std::shared_future<RunMetrics>>
        inflight_;
    std::atomic<std::uint64_t> simulationsRun_{0};
};

} // namespace ocor

#endif // OCOR_SIM_RESULT_CACHE_HH
