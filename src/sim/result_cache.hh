/**
 * @file
 * On-disk cache of experiment results.
 *
 * Several benches (Fig. 11, 12, 13, 14, Table 3) are different views
 * of the same 25-benchmark Original-vs-OCOR sweep; a full 64-core
 * run takes minutes, so results are memoized in a TSV file keyed by
 * every input that affects the outcome. Delete the file (default
 * `ocor_results.tsv` in the working directory) to force re-runs.
 */

#ifndef OCOR_SIM_RESULT_CACHE_HH
#define OCOR_SIM_RESULT_CACHE_HH

#include <optional>
#include <string>

#include "sim/experiment.hh"

namespace ocor
{

/** Everything that identifies one cached run. */
struct CacheKey
{
    std::string benchmark;
    unsigned threads = 64;
    bool ocorEnabled = false;
    unsigned iterations = 0; ///< 0 = profile default
    std::uint64_t seed = 1;
    unsigned rtrLevels = 8;
    unsigned ruleMask = 0xf; ///< bit per Table-1 rule

    std::string toString() const;
};

/** Build the key for an experiment configuration. */
CacheKey makeCacheKey(const BenchmarkProfile &profile,
                      const ExperimentConfig &exp, bool ocor_enabled);

/** TSV-backed memo of RunMetrics aggregates. */
class ResultCache
{
  public:
    explicit ResultCache(std::string path = "ocor_results.tsv");

    std::optional<RunMetrics> lookup(const CacheKey &key) const;
    void store(const CacheKey &key, const RunMetrics &metrics);

    /**
     * Run-or-recall one configuration; stores on miss. This is the
     * entry point every bench binary uses.
     */
    RunMetrics get(const BenchmarkProfile &profile,
                   const ExperimentConfig &exp, bool ocor_enabled);

    /** Paired Original/OCOR result through the cache. */
    BenchmarkResult getComparison(const BenchmarkProfile &profile,
                                  const ExperimentConfig &exp);

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

} // namespace ocor

#endif // OCOR_SIM_RESULT_CACHE_HH
