/**
 * @file
 * Journaled on-disk cache of experiment results.
 *
 * Several benches (Fig. 11, 12, 13, 14, Table 3) are different views
 * of the same 25-benchmark Original-vs-OCOR sweep; a full 64-core
 * run takes minutes, so results are memoized in an append-only TSV
 * journal keyed by every input that affects the outcome. Delete the
 * file (default `ocor_results.tsv` in the working directory) to force
 * re-runs.
 *
 * The journal is crash-safe (DESIGN.md §12):
 *  - a versioned header line identifies the format,
 *  - every row carries a CRC32 stamp over its payload, so a torn or
 *    bit-rotted row is detected instead of silently mis-parsed,
 *  - appends are batched, written with POSIX I/O and fsync'd, so a
 *    SIGKILL loses at most the last unflushed batch,
 *  - a corrupt/torn *tail* is truncated on load (the journal heals
 *    itself; a crash never makes the file unreadable), while corrupt
 *    rows in the middle are skipped and counted in `parse_errors`,
 *  - duplicate keys resolve last-write-wins, deterministically, and
 *    compact() rewrites the journal via write-temp-then-atomic-rename
 *    so readers never observe a half-written file,
 *  - an advisory flock() serializes appends and compactions across
 *    processes (`run_benches.sh --resume` relies on this).
 *
 * The cache is safe to hammer from many threads at once (the
 * parallel experiment engine does exactly that): lookups hit an
 * in-memory index loaded once from disk, concurrent get() calls for
 * the same key are deduplicated so each configuration is simulated
 * exactly once, and disk writes are batched and serialized so the
 * journal never interleaves partial lines.
 */

#ifndef OCOR_SIM_RESULT_CACHE_HH
#define OCOR_SIM_RESULT_CACHE_HH

#include <atomic>
#include <cstdint>
#include <future>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats_registry.hh"
#include "sim/experiment.hh"

namespace ocor
{

/** Everything that identifies one cached run. */
struct CacheKey
{
    std::string benchmark;
    unsigned threads = 64;
    bool ocorEnabled = false;
    unsigned iterations = 0; ///< 0 = profile default
    std::uint64_t seed = 1;
    unsigned rtrLevels = 8;
    unsigned ruleMask = 0xf; ///< bit per Table-1 rule

    std::string toString() const;
};

/** Build the key for an experiment configuration. */
CacheKey makeCacheKey(const BenchmarkProfile &profile,
                      const ExperimentConfig &exp, bool ocor_enabled);

/**
 * Journaled, thread-safe memo of RunMetrics aggregates.
 *
 * Not copyable or movable (it owns a mutex, a file descriptor and
 * in-flight state); benches hold one instance and share it across
 * worker threads.
 */
class ResultCache
{
  public:
    /** Journal format version written in the header line. */
    static constexpr unsigned kFormatVersion = 2;

    /** The header line (without newline) of a current journal. */
    static const char *headerLine();

    /**
     * @p path journal file. An empty path (or "/dev/null") selects a
     * purely in-memory cache: no journal is read or written, which
     * is what `--fresh` uses.
     */
    explicit ResultCache(std::string path = "ocor_results.tsv");

    /** Flushes any batched rows to disk. */
    ~ResultCache();

    ResultCache(const ResultCache &) = delete;
    ResultCache &operator=(const ResultCache &) = delete;

    std::optional<RunMetrics> lookup(const CacheKey &key) const;
    void store(const CacheKey &key, const RunMetrics &metrics);

    /**
     * Run-or-recall one configuration; stores on miss. This is the
     * entry point every bench binary uses. Safe to call from many
     * threads concurrently: losers of the in-flight race block until
     * the winner's simulation finishes, so a key is never simulated
     * twice. @p opts is forwarded to the simulation on a miss (the
     * supervised runner threads its cancellation token through here);
     * cancelled results are returned but never stored.
     */
    RunMetrics get(const BenchmarkProfile &profile,
                   const ExperimentConfig &exp, bool ocor_enabled,
                   Simulator::Options opts = {});

    /** Paired Original/OCOR result through the cache. */
    BenchmarkResult getComparison(const BenchmarkProfile &profile,
                                  const ExperimentConfig &exp);

    /** Durably write any batched rows to the journal now (append +
     * fsync under the advisory file lock). */
    void flush();

    /**
     * Rewrite the journal as header + one row per live key (sorted,
     * deduplicated) via write-temp-then-atomic-rename. Also the
     * migration path for headerless v1 files.
     */
    void compact();

    /** Simulations actually executed by get() (cache misses). */
    std::uint64_t simulationsRun() const
    {
        return simulationsRun_.load(std::memory_order_relaxed);
    }

    /** Rows successfully loaded from the journal at open. */
    std::uint64_t rowsLoaded() const;

    /** Rows that failed CRC/parse validation and were skipped. */
    std::uint64_t parseErrors() const;

    /** Times a torn/corrupt tail was truncated on load. */
    std::uint64_t tailTruncations() const;

    /** Bytes dropped by tail truncation. */
    std::uint64_t truncatedBytes() const;

    /** Compactions performed (including v1 migrations). */
    std::uint64_t compactions() const;

    /** Keys currently resident (disk + this process). */
    std::size_t size() const;

    /**
     * Register journal health counters under dotted names
     * ("<prefix>.parse_errors", "<prefix>.rows_loaded", ...). The
     * registry stores pointers into this cache, so it must not
     * outlive it.
     */
    void registerStats(StatsRegistry &reg,
                       const std::string &prefix = "cache");

    const std::string &path() const { return path_; }

  private:
    /** Load the journal into the in-memory index (once; mu_ held). */
    void loadLocked() const;
    /** Append pending rows to the journal (mu_ held). */
    void flushLocked();
    /** compact() body (mu_ held). */
    void compactLocked();
    /** Open (lazily) the append fd; returns -1 on failure. */
    int appendFdLocked();

    /** Rows buffered before this many stores hit the disk. */
    static constexpr std::size_t kFlushBatch = 16;

    std::string path_;
    bool ephemeral_ = false; ///< no journal (empty path, /dev/null)

    mutable std::mutex mu_;
    mutable bool loaded_ = false;
    mutable bool legacy_ = false; ///< v1 file: compact on first flush
    mutable int fd_ = -1;         ///< append descriptor (lazy)
    mutable std::unordered_map<std::string, RunMetrics> mem_;
    std::vector<std::string> pending_;
    std::unordered_map<std::string, std::shared_future<RunMetrics>>
        inflight_;
    std::atomic<std::uint64_t> simulationsRun_{0};

    // Journal health (see registerStats).
    mutable std::uint64_t rowsLoaded_ = 0;
    mutable std::uint64_t parseErrors_ = 0;
    mutable std::uint64_t tailTruncations_ = 0;
    mutable std::uint64_t truncatedBytes_ = 0;
    std::uint64_t compactions_ = 0;
};

} // namespace ocor

#endif // OCOR_SIM_RESULT_CACHE_HH
