/**
 * @file
 * Experiment runner: paired Original-vs-OCOR runs of a benchmark
 * profile, producing the rows behind the paper's figures and tables.
 */

#ifndef OCOR_SIM_EXPERIMENT_HH
#define OCOR_SIM_EXPERIMENT_HH

#include <string>
#include <vector>

#include "sim/config.hh"
#include "sim/simulator.hh"
#include "workload/benchmarks.hh"

namespace ocor
{

/** Paired result for one benchmark. */
struct BenchmarkResult
{
    std::string name;
    std::string suite;
    bool highCsRate = false;
    bool highNetUtil = false;

    RunMetrics base;  ///< original queue spinlock
    RunMetrics ocor;  ///< with OCOR

    /** COH reduction in % (Fig 11a / Table 3 "COH Impro."). */
    double cohImprovementPct() const;

    /** ROI finish-time reduction in % (Fig 14b / Table 3). */
    double roiImprovementPct() const;

    /** Spin-phase win percentage improvement (Fig 11b), in
     * percentage points. */
    double spinWinImprovementPts() const;
};

/** Knobs of one experiment sweep. */
struct ExperimentConfig
{
    unsigned threads = 64;
    std::uint64_t seed = 1;
    unsigned iterationsOverride = 0; ///< 0 = profile default
    OcorConfig ocorOverride;         ///< applied to the OCOR run
    bool ocorOverrideSet = false;

    /** Runtime invariant checking, applied to both runs of a pair. */
    CheckConfig check;

    /** Simulation fidelity, applied to both runs of a pair. Hybrid
     * diverts background traffic to the analytic NoC fast path during
     * uncontended windows (see DESIGN.md §13); results are
     * approximate and cached under a distinct key. */
    Fidelity fidelity = Fidelity::Exact;

    /** COH attribution ledger on both runs of a pair (DESIGN.md
     * §14). Aggregate results are identical with it on, but the
     * cause counters only exist on ledger runs, so the result cache
     * keys ledger runs separately. */
    bool cohLedger = false;
};

/**
 * Build the SystemConfig for an experiment run. Profiles differ only
 * in workload/traffic parameters (applied in runOnce), never in
 * machine configuration, so the config depends on the experiment
 * knobs alone.
 */
SystemConfig makeSystemConfig(const ExperimentConfig &exp,
                              bool ocor_enabled);

/** Run one configuration of one benchmark. */
RunMetrics runOnce(const BenchmarkProfile &profile,
                   const ExperimentConfig &exp, bool ocor_enabled,
                   Simulator::Options opts = {});

/** Run the Original/OCOR pair for one benchmark. */
BenchmarkResult runComparison(const BenchmarkProfile &profile,
                              const ExperimentConfig &exp);

/** Run the pair for every profile in @p profiles. */
std::vector<BenchmarkResult>
runSuite(const std::vector<BenchmarkProfile> &profiles,
         const ExperimentConfig &exp);

} // namespace ocor

#endif // OCOR_SIM_EXPERIMENT_HH
