/**
 * @file
 * Run-level metrics: the measurements behind every figure and table
 * of the paper's evaluation, plus the execution-timeline recorder of
 * Figure 10.
 *
 * COH accounting follows Equation 1's decomposition: for every cycle
 * a thread spends blocked on a lock, the cycle is charged to
 * "predecessor critical sections" when the lock is held by someone,
 * and to competition overhead (COH) when the lock sits idle — idle
 * lock time under waiters is exactly the handover cost (retry gaps,
 * sleep-preparation, wakeup, packet latency) the paper attacks.
 */

#ifndef OCOR_SIM_METRICS_HH
#define OCOR_SIM_METRICS_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "os/pcb.hh"

namespace ocor
{

/** Aggregated result of one simulation run. */
struct RunMetrics
{
    Cycle roiFinish = 0;       ///< cycle the last thread finished
    unsigned threads = 0;

    std::vector<ThreadCounters> perThread;

    // Network aggregates.
    std::uint64_t packetsInjected = 0;
    std::uint64_t flitsInjected = 0;
    std::uint64_t lockPacketsInjected = 0;

    /** Packets delivered by the hybrid analytic fast path (0 under
     * exact fidelity). */
    std::uint64_t fastpathPackets = 0;

    // Hybrid fast-path window lifecycle (all zero under exact
    // fidelity). windowCycles / roiFinish is the run's window
    // coverage; a run that ends mid-window counts the open tail but
    // no extra close.
    std::uint64_t windowsOpened = 0;
    std::uint64_t windowsClosed = 0;
    std::uint64_t windowCycles = 0;
    double avgPacketLatency = 0.0;
    double avgLockPacketLatency = 0.0;
    double avgDataPacketLatency = 0.0;

    // Latency distribution tails (0 when no samples were taken).
    double p50PacketLatency = 0.0;
    double p95PacketLatency = 0.0;
    double p99PacketLatency = 0.0;

    // Release -> next-grant gap at the lock homes (handover latency).
    double p50LockHandover = 0.0;
    double p95LockHandover = 0.0;
    double p99LockHandover = 0.0;

    // Fault injection and recovery (all zero with faults disabled).
    std::uint64_t faultsInjected = 0;   ///< drops + corruptions + stalls
    std::uint64_t flitsDropped = 0;
    std::uint64_t flitsCorrupted = 0;
    std::uint64_t crcRejects = 0;
    std::uint64_t retransmissions = 0;
    std::uint64_t duplicatesDropped = 0;
    std::uint64_t watchdogRecoveries = 0;
    std::uint64_t unrecoverable = 0;
    bool hangDetected = false;          ///< progress watchdog fired

    /** Cooperative cancellation (a supervision deadline) stopped the
     * run early. Cancelled metrics are partial: they are never
     * cached and never enter figure data. */
    bool cancelled = false;

    // --- sums over threads ------------------------------------------
    std::uint64_t totalCompute() const;
    std::uint64_t totalCs() const;
    std::uint64_t totalBlockedHeld() const;
    std::uint64_t totalCoh() const; ///< blocked-while-lock-idle cycles
    std::uint64_t totalBlocked() const;
    std::uint64_t totalAcquisitions() const;
    std::uint64_t totalSpinWins() const;
    std::uint64_t totalSleeps() const;

    // --- derived percentages (of thread-time = threads * roiFinish) -
    double cohPct() const;      ///< Fig 2 / Fig 14a COH share
    double csPct() const;       ///< Fig 2 / Fig 13 CS share
    double blockedPct() const;  ///< Fig 10 blocking share
    double spinWinPct() const;  ///< Fig 11b metric

    /** Lock-packet injection rate (packets/cycle): Fig 12a metric. */
    double csAccessRate() const;

    /** Packet injection rate per node (packets/cycle): Fig 12b. */
    double netUtilization(unsigned nodes) const;
};

/** Coarse activity classes for the Figure-10 execution profile. */
enum class SegClass : std::uint8_t
{
    Parallel, ///< concurrent computation (incl. memory stalls)
    Blocked,  ///< waiting to enter a critical section
    Cs,       ///< executing the critical section
    Done      ///< thread finished
};

/** Per-cycle thread-activity samples over a bounded horizon. */
class Timeline
{
  public:
    Timeline() = default;
    Timeline(unsigned threads, Cycle horizon);

    void record(ThreadId t, Cycle c, SegClass s);
    SegClass at(ThreadId t, Cycle c) const;

    bool enabled() const { return horizon_ > 0; }
    unsigned threads() const { return threads_; }
    Cycle horizon() const { return horizon_; }

    /** Fraction of (thread, cycle) samples in class @p s. */
    double fraction(SegClass s, Cycle upto = 0) const;

  private:
    unsigned threads_ = 0;
    Cycle horizon_ = 0;
    std::vector<std::uint8_t> samples_; ///< threads_ x horizon_
};

/** Classify a thread state into a timeline segment class. */
SegClass segClassOf(ThreadState s);

} // namespace ocor

#endif // OCOR_SIM_METRICS_HH
