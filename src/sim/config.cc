#include "sim/config.hh"

#include "common/log.hh"

namespace ocor
{

void
SystemConfig::validate() const
{
    if (mesh.width == 0 || mesh.height == 0)
        ocor_fatal("SystemConfig: empty mesh");
    if (mesh.numNodes() > 64)
        ocor_fatal("SystemConfig: at most 64 nodes (sharer bitmask)");
    if (numThreads == 0 || numThreads > mesh.numNodes())
        ocor_fatal("SystemConfig: numThreads must be in [1, %u]",
                   mesh.numNodes());
    ocor.validate();
    if (noc.numVcs == 0 || noc.numVcs > 16)
        ocor_fatal("SystemConfig: numVcs must be in [1, 16]");
    if (noc.vcDepth == 0)
        ocor_fatal("SystemConfig: vcDepth must be > 0");
}

MeshShape
SystemConfig::meshFor(unsigned cores)
{
    switch (cores) {
      case 4: return {2, 2};
      case 16: return {4, 4};
      case 32: return {8, 4};
      case 64: return {8, 8};
      default:
        ocor_fatal("no conventional mesh for %u cores "
                   "(use 4, 16, 32 or 64)", cores);
    }
}

} // namespace ocor
