#include "sim/config.hh"

#include "common/log.hh"

namespace ocor
{

void
SystemConfig::validate() const
{
    if (mesh.width == 0 || mesh.height == 0)
        ocor_fatal("SystemConfig: empty mesh");
    if (mesh.numNodes() > 64)
        ocor_fatal("SystemConfig: at most 64 nodes (sharer bitmask)");
    if (numThreads == 0 || numThreads > mesh.numNodes())
        ocor_fatal("SystemConfig: numThreads must be in [1, %u]",
                   mesh.numNodes());
    ocor.validate();
    if (noc.numVcs == 0 || noc.numVcs > 16)
        ocor_fatal("SystemConfig: numVcs must be in [1, 16]");
    if (noc.vcDepth == 0)
        ocor_fatal("SystemConfig: vcDepth must be > 0");
    if (noc.linkLatency == 0)
        ocor_fatal("SystemConfig: linkLatency must be > 0");
    if (noc.routerStages == 0)
        ocor_fatal("SystemConfig: routerStages must be > 0");
    if (noc.niQueueDepth == 0)
        ocor_fatal("SystemConfig: niQueueDepth must be > 0");
    if (maxCycles == 0)
        ocor_fatal("SystemConfig: maxCycles must be > 0");
    if (os.retryInterval == 0)
        ocor_fatal("SystemConfig: os.retryInterval must be > 0");
    if (os.remoteTryInterval == 0)
        ocor_fatal("SystemConfig: os.remoteTryInterval must be > 0");
    fault.validate();
    if (fidelity == Fidelity::Hybrid && fault.enabled())
        ocor_fatal("SystemConfig: hybrid fidelity is incompatible "
                   "with fault injection (CRC/retransmission model "
                   "per-flit mesh transport)");
    if (fidelity == Fidelity::Hybrid && check.enabled())
        ocor_fatal("SystemConfig: hybrid fidelity is incompatible "
                   "with runtime invariant checking (the flit "
                   "conservation ledger assumes exact transport)");
}

MeshShape
SystemConfig::meshFor(unsigned cores)
{
    switch (cores) {
      case 4: return {2, 2};
      case 16: return {4, 4};
      case 32: return {8, 4};
      case 64: return {8, 8};
      default:
        ocor_fatal("no conventional mesh for %u cores "
                   "(use 4, 16, 32 or 64)", cores);
    }
}

} // namespace ocor
