#include "sim/result_cache.hh"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/log.hh"

namespace ocor
{

std::string
CacheKey::toString() const
{
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%s\t%u\t%d\t%u\t%llu\t%u\t%u",
                  benchmark.c_str(), threads, ocorEnabled ? 1 : 0,
                  iterations,
                  static_cast<unsigned long long>(seed), rtrLevels,
                  ruleMask);
    return buf;
}

CacheKey
makeCacheKey(const BenchmarkProfile &profile,
             const ExperimentConfig &exp, bool ocor_enabled)
{
    CacheKey key;
    key.benchmark = profile.name;
    key.threads = exp.threads;
    key.ocorEnabled = ocor_enabled;
    key.iterations = exp.iterationsOverride;
    key.seed = exp.seed;
    if (!ocor_enabled) {
        // A baseline run is independent of every OCOR knob: use the
        // default-config key so level/rule sweeps reuse one
        // simulation (CacheKey's defaults == OcorConfig's defaults).
        return key;
    }
    const OcorConfig &oc = exp.ocorOverrideSet
        ? exp.ocorOverride
        : OcorConfig{};
    key.rtrLevels = oc.numRtrLevels;
    key.ruleMask = (oc.ruleSlowProgressFirst ? 1u : 0)
        | (oc.ruleLockFirst ? 2u : 0)
        | (oc.ruleLeastRtrFirst ? 4u : 0)
        | (oc.ruleWakeupLast ? 8u : 0);
    return key;
}

ResultCache::ResultCache(std::string path) : path_(std::move(path)) {}

namespace
{

std::string
metricsToTsv(const RunMetrics &m)
{
    ThreadCounters sum;
    for (const auto &t : m.perThread) {
        sum.computeCycles += t.computeCycles;
        sum.csCycles += t.csCycles;
        sum.blockedHeldCycles += t.blockedHeldCycles;
        sum.blockedIdleCycles += t.blockedIdleCycles;
        sum.acquisitions += t.acquisitions;
        sum.spinWins += t.spinWins;
        sum.sleepWins += t.sleepWins;
        sum.retries += t.retries;
        sum.sleeps += t.sleeps;
    }
    std::ostringstream os;
    os << m.roiFinish << '\t' << m.threads << '\t'
       << sum.computeCycles << '\t' << sum.csCycles << '\t'
       << sum.blockedHeldCycles << '\t' << sum.blockedIdleCycles
       << '\t' << sum.acquisitions << '\t' << sum.spinWins << '\t'
       << sum.sleepWins << '\t' << sum.retries << '\t' << sum.sleeps
       << '\t' << m.packetsInjected << '\t' << m.flitsInjected
       << '\t' << m.lockPacketsInjected << '\t'
       << m.avgPacketLatency << '\t' << m.avgLockPacketLatency
       << '\t' << m.avgDataPacketLatency;
    return os.str();
}

std::optional<RunMetrics>
metricsFromTsv(std::istringstream &is)
{
    RunMetrics m;
    ThreadCounters sum;
    if (!(is >> m.roiFinish >> m.threads >> sum.computeCycles
             >> sum.csCycles >> sum.blockedHeldCycles
             >> sum.blockedIdleCycles >> sum.acquisitions
             >> sum.spinWins >> sum.sleepWins >> sum.retries
             >> sum.sleeps >> m.packetsInjected >> m.flitsInjected
             >> m.lockPacketsInjected >> m.avgPacketLatency
             >> m.avgLockPacketLatency >> m.avgDataPacketLatency))
        return std::nullopt;
    // Aggregates are stored as one synthetic per-thread entry; every
    // derived percentage works off sums and m.threads.
    m.perThread.push_back(sum);
    return m;
}

} // namespace

std::optional<RunMetrics>
ResultCache::lookup(const CacheKey &key) const
{
    std::ifstream in(path_);
    if (!in)
        return std::nullopt;
    const std::string wanted = key.toString();
    std::string line;
    while (std::getline(in, line)) {
        if (line.rfind(wanted + "\t", 0) != 0)
            continue;
        std::istringstream is(line.substr(wanted.size() + 1));
        if (auto m = metricsFromTsv(is))
            return m;
    }
    return std::nullopt;
}

void
ResultCache::store(const CacheKey &key, const RunMetrics &metrics)
{
    std::ofstream out(path_, std::ios::app);
    if (!out) {
        ocor_warn("ResultCache: cannot write %s", path_.c_str());
        return;
    }
    out << key.toString() << '\t' << metricsToTsv(metrics) << '\n';
}

RunMetrics
ResultCache::get(const BenchmarkProfile &profile,
                 const ExperimentConfig &exp, bool ocor_enabled)
{
    CacheKey key = makeCacheKey(profile, exp, ocor_enabled);
    if (auto hit = lookup(key))
        return *hit;
    RunMetrics m = runOnce(profile, exp, ocor_enabled);
    store(key, m);
    return m;
}

BenchmarkResult
ResultCache::getComparison(const BenchmarkProfile &profile,
                           const ExperimentConfig &exp)
{
    BenchmarkResult r;
    r.name = profile.name;
    r.suite = profile.suite;
    r.highCsRate = profile.highCsRate;
    r.highNetUtil = profile.highNetUtil;
    r.base = get(profile, exp, false);
    r.ocor = get(profile, exp, true);
    return r;
}

} // namespace ocor
