#include "sim/result_cache.hh"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/log.hh"
#include "noc/fault.hh"

namespace ocor
{

std::string
CacheKey::toString() const
{
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%s\t%u\t%d\t%u\t%llu\t%u\t%u",
                  benchmark.c_str(), threads, ocorEnabled ? 1 : 0,
                  iterations,
                  static_cast<unsigned long long>(seed), rtrLevels,
                  ruleMask);
    return buf;
}

CacheKey
makeCacheKey(const BenchmarkProfile &profile,
             const ExperimentConfig &exp, bool ocor_enabled)
{
    CacheKey key;
    key.benchmark = profile.name;
    // Hybrid-fidelity results are approximations; never let them
    // satisfy (or be satisfied by) an exact-fidelity lookup. A name
    // suffix keeps the journal format unchanged, so existing exact
    // journals stay valid.
    if (exp.fidelity == Fidelity::Hybrid)
        key.benchmark += "+hybrid";
    // Ledger runs carry COH cause counters a plain run's cached row
    // lacks; the same suffix trick keeps them from cross-satisfying.
    if (exp.cohLedger)
        key.benchmark += "+ledger";
    key.threads = exp.threads;
    key.ocorEnabled = ocor_enabled;
    key.iterations = exp.iterationsOverride;
    key.seed = exp.seed;
    if (!ocor_enabled) {
        // A baseline run is independent of every OCOR knob: use the
        // default-config key so level/rule sweeps reuse one
        // simulation (CacheKey's defaults == OcorConfig's defaults).
        return key;
    }
    const OcorConfig &oc = exp.ocorOverrideSet
        ? exp.ocorOverride
        : OcorConfig{};
    key.rtrLevels = oc.numRtrLevels;
    key.ruleMask = (oc.ruleSlowProgressFirst ? 1u : 0)
        | (oc.ruleLockFirst ? 2u : 0)
        | (oc.ruleLeastRtrFirst ? 4u : 0)
        | (oc.ruleWakeupLast ? 8u : 0);
    return key;
}

const char *
ResultCache::headerLine()
{
    return "#ocor-results v2";
}

ResultCache::ResultCache(std::string path) : path_(std::move(path))
{
    // An empty path (or the historical /dev/null convention used by
    // --fresh) means "no journal": purely in-memory, nothing durable.
    ephemeral_ = path_.empty() || path_ == "/dev/null";
}

ResultCache::~ResultCache()
{
    flush();
    std::lock_guard<std::mutex> lk(mu_);
    if (fd_ >= 0)
        ::close(fd_);
}

namespace
{

std::string
metricsToTsv(const RunMetrics &m)
{
    ThreadCounters sum;
    for (const auto &t : m.perThread) {
        sum.computeCycles += t.computeCycles;
        sum.csCycles += t.csCycles;
        sum.blockedHeldCycles += t.blockedHeldCycles;
        sum.blockedIdleCycles += t.blockedIdleCycles;
        sum.acquisitions += t.acquisitions;
        sum.spinWins += t.spinWins;
        sum.sleepWins += t.sleepWins;
        sum.retries += t.retries;
        sum.sleeps += t.sleeps;
        sum.cohTransferCycles += t.cohTransferCycles;
        sum.cohArbitrationCycles += t.cohArbitrationCycles;
        sum.cohBackoffCycles += t.cohBackoffCycles;
        sum.cohSleepCycles += t.cohSleepCycles;
        sum.cohGrantGapCycles += t.cohGrantGapCycles;
    }
    std::ostringstream os;
    os << m.roiFinish << '\t' << m.threads << '\t'
       << sum.computeCycles << '\t' << sum.csCycles << '\t'
       << sum.blockedHeldCycles << '\t' << sum.blockedIdleCycles
       << '\t' << sum.acquisitions << '\t' << sum.spinWins << '\t'
       << sum.sleepWins << '\t' << sum.retries << '\t' << sum.sleeps
       << '\t' << m.packetsInjected << '\t' << m.flitsInjected
       << '\t' << m.lockPacketsInjected << '\t'
       << m.avgPacketLatency << '\t' << m.avgLockPacketLatency
       << '\t' << m.avgDataPacketLatency << '\t'
       << m.p50PacketLatency << '\t' << m.p95PacketLatency << '\t'
       << m.p99PacketLatency << '\t' << m.p50LockHandover << '\t'
       << m.p95LockHandover << '\t' << m.p99LockHandover << '\t'
       << sum.cohTransferCycles << '\t' << sum.cohArbitrationCycles
       << '\t' << sum.cohBackoffCycles << '\t' << sum.cohSleepCycles
       << '\t' << sum.cohGrantGapCycles << '\t' << m.windowsOpened
       << '\t' << m.windowsClosed << '\t' << m.windowCycles;
    return os.str();
}

std::optional<RunMetrics>
metricsFromTsv(std::istringstream &is)
{
    RunMetrics m;
    ThreadCounters sum;
    if (!(is >> m.roiFinish >> m.threads >> sum.computeCycles
             >> sum.csCycles >> sum.blockedHeldCycles
             >> sum.blockedIdleCycles >> sum.acquisitions
             >> sum.spinWins >> sum.sleepWins >> sum.retries
             >> sum.sleeps >> m.packetsInjected >> m.flitsInjected
             >> m.lockPacketsInjected >> m.avgPacketLatency
             >> m.avgLockPacketLatency >> m.avgDataPacketLatency
             >> m.p50PacketLatency >> m.p95PacketLatency
             >> m.p99PacketLatency >> m.p50LockHandover
             >> m.p95LockHandover >> m.p99LockHandover
             >> sum.cohTransferCycles >> sum.cohArbitrationCycles
             >> sum.cohBackoffCycles >> sum.cohSleepCycles
             >> sum.cohGrantGapCycles >> m.windowsOpened
             >> m.windowsClosed >> m.windowCycles))
        // Lines from an older-layout cache file fail here and are
        // simply treated as misses (the run is redone and re-stored).
        return std::nullopt;
    // Aggregates are stored as one synthetic per-thread entry; every
    // derived percentage works off sums and m.threads.
    m.perThread.push_back(sum);
    return m;
}

/** Split "key-fields \t metrics-fields" on the 7th tab. */
std::optional<std::pair<std::string, RunMetrics>>
parsePayload(const std::string &line)
{
    std::size_t pos = 0;
    for (int tabs = 0; tabs < 7; ++tabs) {
        pos = line.find('\t', pos);
        if (pos == std::string::npos)
            return std::nullopt;
        ++pos;
    }
    std::istringstream is(line.substr(pos));
    auto m = metricsFromTsv(is);
    if (!m)
        return std::nullopt;
    return std::make_pair(line.substr(0, pos - 1), *m);
}

/** CRC32 stamp of a row payload (the "key \t metrics" text). */
std::uint32_t
payloadCrc(const std::string &payload)
{
    return crc32Update(0, payload.data(), payload.size());
}

/** Full journal row: "<crc-8-hex> \t key-fields \t metrics". */
std::string
formatRow(const std::string &payload)
{
    char crc[12];
    std::snprintf(crc, sizeof(crc), "%08x", payloadCrc(payload));
    return std::string(crc) + '\t' + payload;
}

/**
 * Validate one v2 journal row: 8 hex digits, a tab, then a payload
 * whose CRC32 matches the stamp. Returns the parsed payload or
 * nullopt for torn/corrupt rows.
 */
std::optional<std::pair<std::string, RunMetrics>>
parseRow(const std::string &line)
{
    if (line.size() < 10 || line[8] != '\t')
        return std::nullopt;
    char *end = nullptr;
    const std::string crcField = line.substr(0, 8);
    unsigned long stamp = std::strtoul(crcField.c_str(), &end, 16);
    if (end == nullptr || *end != '\0')
        return std::nullopt;
    const std::string payload = line.substr(9);
    if (payloadCrc(payload) != static_cast<std::uint32_t>(stamp))
        return std::nullopt;
    return parsePayload(payload);
}

} // namespace

void
ResultCache::loadLocked() const
{
    if (loaded_)
        return;
    loaded_ = true;
    if (ephemeral_)
        return;

    // Read the whole journal under the advisory lock so a writer's
    // append or compaction never interleaves with the scan (and so
    // the tail truncation below cannot race another process).
    int fd = ::open(path_.c_str(), O_RDONLY);
    if (fd < 0)
        return; // no journal yet
    ::flock(fd, LOCK_EX);
    std::string text;
    char buf[1 << 16];
    ssize_t n;
    while ((n = ::read(fd, buf, sizeof(buf))) > 0)
        text.append(buf, static_cast<std::size_t>(n));

    const std::size_t total = text.size();
    if (total == 0) {
        ::flock(fd, LOCK_UN);
        ::close(fd);
        return;
    }

    // Identify the format from the header line.
    bool v2 = false;
    std::size_t pos = 0;
    if (text[0] == '#') {
        std::size_t eol = text.find('\n');
        std::string header = text.substr(
            0, eol == std::string::npos ? total : eol);
        if (header == headerLine()) {
            v2 = true;
            pos = eol == std::string::npos ? total : eol + 1;
        } else {
            // Foreign or future version: nothing loadable. The next
            // flush compacts, rewriting the file in this version's
            // format from whatever this process computes.
            ocor_warn("ResultCache: %s has unknown header '%s'; "
                      "treating as empty",
                      path_.c_str(), header.c_str());
            legacy_ = true;
            ::flock(fd, LOCK_UN);
            ::close(fd);
            return;
        }
    } else {
        // Headerless v1 file (pre-journal): rows carry no CRC.
        // Loadable, but scheduled for migration on the next flush.
        legacy_ = true;
    }

    // lastGood: byte offset just past the last successfully parsed
    // row (or the header). Anything after it that fails to parse is
    // a torn/corrupt tail and is truncated away below.
    std::size_t lastGood = pos;
    while (pos < total) {
        std::size_t eol = text.find('\n', pos);
        const bool terminated = eol != std::string::npos;
        const std::size_t end = terminated ? eol : total;
        std::string line = text.substr(pos, end - pos);
        auto kv = v2 ? parseRow(line) : parsePayload(line);
        if (kv) {
            // Duplicate keys resolve last-write-wins: journal order
            // is append order, so the newest row is authoritative
            // and reloads are deterministic.
            mem_[kv->first] = std::move(kv->second);
            ++rowsLoaded_;
            lastGood = terminated ? end + 1 : end;
        } else {
            ++parseErrors_;
            if (terminated)
                // A corrupt row in the middle of the journal: skip
                // it (it is surfaced through parse_errors and
                // scrubbed by the next compaction) but keep reading;
                // rows after it are usually intact.
                legacy_ = true;
        }
        pos = terminated ? eol + 1 : total;
    }

    // Heal a torn tail: a crash mid-append leaves a partial final
    // row; truncating back to the last good row loses at most one
    // unflushed batch and never the file.
    if (lastGood < total) {
        if (::truncate(path_.c_str(),
                       static_cast<off_t>(lastGood)) == 0) {
            ++tailTruncations_;
            truncatedBytes_ += total - lastGood;
            ocor_warn("ResultCache: truncated %zu torn tail bytes "
                      "from %s (%" PRIu64 " rows recovered)",
                      total - lastGood, path_.c_str(), rowsLoaded_);
        } else {
            ocor_warn("ResultCache: cannot truncate torn tail of %s: "
                      "%s", path_.c_str(), std::strerror(errno));
        }
    }
    ::flock(fd, LOCK_UN);
    ::close(fd);
}

int
ResultCache::appendFdLocked()
{
    if (fd_ < 0)
        fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND,
                     0644);
    return fd_;
}

void
ResultCache::flushLocked()
{
    if (ephemeral_) {
        pending_.clear();
        legacy_ = false;
        return;
    }
    if (legacy_) {
        // v1 migration / corrupt-row scrub: rewrite the whole
        // journal (pending rows included) instead of appending.
        loadLocked();
        compactLocked();
        return;
    }
    if (pending_.empty())
        return;
    int fd = appendFdLocked();
    if (fd < 0) {
        ocor_warn("ResultCache: cannot write %s", path_.c_str());
        pending_.clear();
        return;
    }

    // One contiguous buffer per batch: a crash mid-write tears at
    // most this batch, and the loader truncates the partial row.
    std::string batch;
    ::flock(fd, LOCK_EX);
    if (::lseek(fd, 0, SEEK_END) == 0)
        batch = std::string(headerLine()) + '\n';
    for (const auto &row : pending_)
        batch += row + '\n';
    const char *p = batch.data();
    std::size_t left = batch.size();
    while (left > 0) {
        ssize_t w = ::write(fd, p, left);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            ocor_warn("ResultCache: write to %s failed: %s",
                      path_.c_str(), std::strerror(errno));
            break;
        }
        p += w;
        left -= static_cast<std::size_t>(w);
    }
    ::fsync(fd);
    ::flock(fd, LOCK_UN);
    pending_.clear();
}

void
ResultCache::flush()
{
    std::lock_guard<std::mutex> lk(mu_);
    flushLocked();
}

void
ResultCache::compactLocked()
{
    if (ephemeral_) {
        pending_.clear();
        legacy_ = false;
        return;
    }
    loadLocked();
    pending_.clear();

    // Deterministic output: one row per key, sorted. (The in-memory
    // index is unordered; the sort below restores a stable order.)
    std::vector<std::string> keys;
    keys.reserve(mem_.size());
    // simlint: allow(unordered-iteration) -- keys are sorted below
    for (const auto &kv : mem_)
        keys.push_back(kv.first);
    std::sort(keys.begin(), keys.end());

    const std::string tmp = path_ + ".compact.tmp";
    int tfd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                     0644);
    if (tfd < 0) {
        ocor_warn("ResultCache: cannot write %s", tmp.c_str());
        return;
    }
    std::string out = std::string(headerLine()) + '\n';
    for (const auto &k : keys)
        out += formatRow(k + '\t' + metricsToTsv(mem_[k])) + '\n';
    const char *p = out.data();
    std::size_t left = out.size();
    bool ok = true;
    while (left > 0) {
        ssize_t w = ::write(tfd, p, left);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            ok = false;
            break;
        }
        p += w;
        left -= static_cast<std::size_t>(w);
    }
    ::fsync(tfd);
    ::close(tfd);
    if (!ok) {
        ocor_warn("ResultCache: compaction write failed for %s",
                  tmp.c_str());
        ::unlink(tmp.c_str());
        return;
    }

    // Atomic cut-over: readers see either the old journal or the
    // complete new one, never a half-written file. The append fd is
    // re-opened afterwards so future batches land in the new inode.
    int jfd = appendFdLocked();
    if (jfd >= 0)
        ::flock(jfd, LOCK_EX);
    if (::rename(tmp.c_str(), path_.c_str()) != 0) {
        ocor_warn("ResultCache: rename %s -> %s failed: %s",
                  tmp.c_str(), path_.c_str(), std::strerror(errno));
        ::unlink(tmp.c_str());
        if (jfd >= 0)
            ::flock(jfd, LOCK_UN);
        return;
    }
    // Durability of the rename itself: fsync the directory.
    std::string dir = ".";
    std::size_t slash = path_.find_last_of('/');
    if (slash != std::string::npos)
        dir = path_.substr(0, slash + 1);
    int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd >= 0) {
        ::fsync(dfd);
        ::close(dfd);
    }
    if (jfd >= 0) {
        ::flock(jfd, LOCK_UN);
        ::close(jfd);
        fd_ = -1;
    }
    legacy_ = false;
    ++compactions_;
}

void
ResultCache::compact()
{
    std::lock_guard<std::mutex> lk(mu_);
    compactLocked();
}

std::optional<RunMetrics>
ResultCache::lookup(const CacheKey &key) const
{
    std::lock_guard<std::mutex> lk(mu_);
    loadLocked();
    auto it = mem_.find(key.toString());
    if (it == mem_.end())
        return std::nullopt;
    return it->second;
}

void
ResultCache::store(const CacheKey &key, const RunMetrics &metrics)
{
    std::lock_guard<std::mutex> lk(mu_);
    loadLocked();
    const std::string ks = key.toString();
    mem_[ks] = metrics;
    pending_.push_back(formatRow(ks + '\t' + metricsToTsv(metrics)));
    if (pending_.size() >= kFlushBatch)
        flushLocked();
}

RunMetrics
ResultCache::get(const BenchmarkProfile &profile,
                 const ExperimentConfig &exp, bool ocor_enabled,
                 Simulator::Options opts)
{
    const CacheKey key = makeCacheKey(profile, exp, ocor_enabled);
    const std::string ks = key.toString();

    std::promise<RunMetrics> prom;
    std::shared_future<RunMetrics> fut;
    bool runner = false;
    {
        std::lock_guard<std::mutex> lk(mu_);
        loadLocked();
        auto hit = mem_.find(ks);
        if (hit != mem_.end())
            return hit->second;
        auto inf = inflight_.find(ks);
        if (inf != inflight_.end()) {
            // Someone else is already simulating this key: wait for
            // their result instead of recomputing it.
            fut = inf->second;
        } else {
            runner = true;
            fut = prom.get_future().share();
            inflight_.emplace(ks, fut);
        }
    }
    if (!runner)
        return fut.get();

    // We won the race: simulate outside the lock.
    RunMetrics m = runOnce(profile, exp, ocor_enabled, opts);
    simulationsRun_.fetch_add(1, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (!m.cancelled) {
            mem_.emplace(ks, m);
            pending_.push_back(
                formatRow(ks + '\t' + metricsToTsv(m)));
            if (pending_.size() >= kFlushBatch)
                flushLocked();
        }
        // A cancelled (deadline-aborted) run is never cached: its
        // metrics are partial. Losers of the in-flight race still
        // observe it and let the supervisor decide on a retry.
        inflight_.erase(ks);
    }
    prom.set_value(m);
    return m;
}

BenchmarkResult
ResultCache::getComparison(const BenchmarkProfile &profile,
                           const ExperimentConfig &exp)
{
    BenchmarkResult r;
    r.name = profile.name;
    r.suite = profile.suite;
    r.highCsRate = profile.highCsRate;
    r.highNetUtil = profile.highNetUtil;
    r.base = get(profile, exp, false);
    r.ocor = get(profile, exp, true);
    return r;
}

std::uint64_t
ResultCache::rowsLoaded() const
{
    std::lock_guard<std::mutex> lk(mu_);
    loadLocked();
    return rowsLoaded_;
}

std::uint64_t
ResultCache::parseErrors() const
{
    std::lock_guard<std::mutex> lk(mu_);
    loadLocked();
    return parseErrors_;
}

std::uint64_t
ResultCache::tailTruncations() const
{
    std::lock_guard<std::mutex> lk(mu_);
    loadLocked();
    return tailTruncations_;
}

std::uint64_t
ResultCache::truncatedBytes() const
{
    std::lock_guard<std::mutex> lk(mu_);
    loadLocked();
    return truncatedBytes_;
}

std::uint64_t
ResultCache::compactions() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return compactions_;
}

std::size_t
ResultCache::size() const
{
    std::lock_guard<std::mutex> lk(mu_);
    loadLocked();
    return mem_.size();
}

void
ResultCache::registerStats(StatsRegistry &reg,
                           const std::string &prefix)
{
    reg.addScalarFn(prefix + ".rows_loaded", [this]() {
        return static_cast<double>(rowsLoaded());
    });
    reg.addScalarFn(prefix + ".parse_errors", [this]() {
        return static_cast<double>(parseErrors());
    });
    reg.addScalarFn(prefix + ".tail_truncations", [this]() {
        return static_cast<double>(tailTruncations());
    });
    reg.addScalarFn(prefix + ".truncated_bytes", [this]() {
        return static_cast<double>(truncatedBytes());
    });
    reg.addScalarFn(prefix + ".compactions", [this]() {
        return static_cast<double>(compactions());
    });
    reg.addScalarFn(prefix + ".entries", [this]() {
        return static_cast<double>(size());
    });
    reg.addScalarFn(prefix + ".simulations_run", [this]() {
        return static_cast<double>(simulationsRun());
    });
}

} // namespace ocor
