#include "sim/result_cache.hh"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/log.hh"

namespace ocor
{

std::string
CacheKey::toString() const
{
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%s\t%u\t%d\t%u\t%llu\t%u\t%u",
                  benchmark.c_str(), threads, ocorEnabled ? 1 : 0,
                  iterations,
                  static_cast<unsigned long long>(seed), rtrLevels,
                  ruleMask);
    return buf;
}

CacheKey
makeCacheKey(const BenchmarkProfile &profile,
             const ExperimentConfig &exp, bool ocor_enabled)
{
    CacheKey key;
    key.benchmark = profile.name;
    key.threads = exp.threads;
    key.ocorEnabled = ocor_enabled;
    key.iterations = exp.iterationsOverride;
    key.seed = exp.seed;
    if (!ocor_enabled) {
        // A baseline run is independent of every OCOR knob: use the
        // default-config key so level/rule sweeps reuse one
        // simulation (CacheKey's defaults == OcorConfig's defaults).
        return key;
    }
    const OcorConfig &oc = exp.ocorOverrideSet
        ? exp.ocorOverride
        : OcorConfig{};
    key.rtrLevels = oc.numRtrLevels;
    key.ruleMask = (oc.ruleSlowProgressFirst ? 1u : 0)
        | (oc.ruleLockFirst ? 2u : 0)
        | (oc.ruleLeastRtrFirst ? 4u : 0)
        | (oc.ruleWakeupLast ? 8u : 0);
    return key;
}

ResultCache::ResultCache(std::string path) : path_(std::move(path)) {}

ResultCache::~ResultCache()
{
    flush();
}

namespace
{

std::string
metricsToTsv(const RunMetrics &m)
{
    ThreadCounters sum;
    for (const auto &t : m.perThread) {
        sum.computeCycles += t.computeCycles;
        sum.csCycles += t.csCycles;
        sum.blockedHeldCycles += t.blockedHeldCycles;
        sum.blockedIdleCycles += t.blockedIdleCycles;
        sum.acquisitions += t.acquisitions;
        sum.spinWins += t.spinWins;
        sum.sleepWins += t.sleepWins;
        sum.retries += t.retries;
        sum.sleeps += t.sleeps;
    }
    std::ostringstream os;
    os << m.roiFinish << '\t' << m.threads << '\t'
       << sum.computeCycles << '\t' << sum.csCycles << '\t'
       << sum.blockedHeldCycles << '\t' << sum.blockedIdleCycles
       << '\t' << sum.acquisitions << '\t' << sum.spinWins << '\t'
       << sum.sleepWins << '\t' << sum.retries << '\t' << sum.sleeps
       << '\t' << m.packetsInjected << '\t' << m.flitsInjected
       << '\t' << m.lockPacketsInjected << '\t'
       << m.avgPacketLatency << '\t' << m.avgLockPacketLatency
       << '\t' << m.avgDataPacketLatency << '\t'
       << m.p50PacketLatency << '\t' << m.p95PacketLatency << '\t'
       << m.p99PacketLatency << '\t' << m.p50LockHandover << '\t'
       << m.p95LockHandover << '\t' << m.p99LockHandover;
    return os.str();
}

std::optional<RunMetrics>
metricsFromTsv(std::istringstream &is)
{
    RunMetrics m;
    ThreadCounters sum;
    if (!(is >> m.roiFinish >> m.threads >> sum.computeCycles
             >> sum.csCycles >> sum.blockedHeldCycles
             >> sum.blockedIdleCycles >> sum.acquisitions
             >> sum.spinWins >> sum.sleepWins >> sum.retries
             >> sum.sleeps >> m.packetsInjected >> m.flitsInjected
             >> m.lockPacketsInjected >> m.avgPacketLatency
             >> m.avgLockPacketLatency >> m.avgDataPacketLatency
             >> m.p50PacketLatency >> m.p95PacketLatency
             >> m.p99PacketLatency >> m.p50LockHandover
             >> m.p95LockHandover >> m.p99LockHandover))
        // Lines from a pre-percentile cache file fail here and are
        // simply treated as misses (the run is redone and re-stored).
        return std::nullopt;
    // Aggregates are stored as one synthetic per-thread entry; every
    // derived percentage works off sums and m.threads.
    m.perThread.push_back(sum);
    return m;
}

/** Split "key-fields \t metrics-fields" on the 7th tab. */
std::optional<std::pair<std::string, RunMetrics>>
parseLine(const std::string &line)
{
    std::size_t pos = 0;
    for (int tabs = 0; tabs < 7; ++tabs) {
        pos = line.find('\t', pos);
        if (pos == std::string::npos)
            return std::nullopt;
        ++pos;
    }
    std::istringstream is(line.substr(pos));
    auto m = metricsFromTsv(is);
    if (!m)
        return std::nullopt;
    return std::make_pair(line.substr(0, pos - 1), *m);
}

} // namespace

void
ResultCache::loadLocked() const
{
    if (loaded_)
        return;
    loaded_ = true;
    std::ifstream in(path_);
    if (!in)
        return;
    std::string line;
    while (std::getline(in, line)) {
        if (auto kv = parseLine(line))
            mem_.insert(std::move(*kv));
    }
}

void
ResultCache::flushLocked()
{
    if (pending_.empty())
        return;
    std::ofstream out(path_, std::ios::app);
    if (!out) {
        ocor_warn("ResultCache: cannot write %s", path_.c_str());
        pending_.clear();
        return;
    }
    for (const auto &row : pending_)
        out << row << '\n';
    pending_.clear();
}

void
ResultCache::flush()
{
    std::lock_guard<std::mutex> lk(mu_);
    flushLocked();
}

std::optional<RunMetrics>
ResultCache::lookup(const CacheKey &key) const
{
    std::lock_guard<std::mutex> lk(mu_);
    loadLocked();
    auto it = mem_.find(key.toString());
    if (it == mem_.end())
        return std::nullopt;
    return it->second;
}

void
ResultCache::store(const CacheKey &key, const RunMetrics &metrics)
{
    std::lock_guard<std::mutex> lk(mu_);
    loadLocked();
    const std::string ks = key.toString();
    mem_[ks] = metrics;
    pending_.push_back(ks + '\t' + metricsToTsv(metrics));
    if (pending_.size() >= kFlushBatch)
        flushLocked();
}

RunMetrics
ResultCache::get(const BenchmarkProfile &profile,
                 const ExperimentConfig &exp, bool ocor_enabled)
{
    const CacheKey key = makeCacheKey(profile, exp, ocor_enabled);
    const std::string ks = key.toString();

    std::promise<RunMetrics> prom;
    std::shared_future<RunMetrics> fut;
    bool runner = false;
    {
        std::lock_guard<std::mutex> lk(mu_);
        loadLocked();
        auto hit = mem_.find(ks);
        if (hit != mem_.end())
            return hit->second;
        auto inf = inflight_.find(ks);
        if (inf != inflight_.end()) {
            // Someone else is already simulating this key: wait for
            // their result instead of recomputing it.
            fut = inf->second;
        } else {
            runner = true;
            fut = prom.get_future().share();
            inflight_.emplace(ks, fut);
        }
    }
    if (!runner)
        return fut.get();

    // We won the race: simulate outside the lock.
    RunMetrics m = runOnce(profile, exp, ocor_enabled);
    simulationsRun_.fetch_add(1, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lk(mu_);
        mem_.emplace(ks, m);
        pending_.push_back(ks + '\t' + metricsToTsv(m));
        if (pending_.size() >= kFlushBatch)
            flushLocked();
        inflight_.erase(ks);
    }
    prom.set_value(m);
    return m;
}

BenchmarkResult
ResultCache::getComparison(const BenchmarkProfile &profile,
                           const ExperimentConfig &exp)
{
    BenchmarkResult r;
    r.name = profile.name;
    r.suite = profile.suite;
    r.highCsRate = profile.highCsRate;
    r.highNetUtil = profile.highNetUtil;
    r.base = get(profile, exp, false);
    r.ocor = get(profile, exp, true);
    return r;
}

} // namespace ocor
