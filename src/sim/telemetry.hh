/**
 * @file
 * Interval telemetry: periodic time-series snapshots of simulator
 * state, complementing the event tracer (which records transitions)
 * and the stats registry (which records end-of-run totals).
 *
 * Every N cycles the recorder samples per-router buffer occupancy,
 * per-link utilization over the elapsed interval, and each thread's
 * activity class (the Figure-10 segments). Rows are fixed-size and
 * carry only simulated state, so telemetry output is deterministic
 * across hosts and worker counts.
 */

#ifndef OCOR_SIM_TELEMETRY_HH
#define OCOR_SIM_TELEMETRY_HH

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/types.hh"

namespace ocor
{

class System;

/** What a telemetry row measures. */
enum class TelemetryKind : std::uint8_t
{
    RouterOccupancy, ///< buffered flits in router `index`
    LinkUtil,        ///< flits/cycle on link `index` this interval
    ThreadSeg        ///< SegClass of thread `index` (as a number)
};

/** Name of a telemetry kind (stable; part of the CSV format). */
const char *telemetryKindName(TelemetryKind k);

/** One sampled value. */
struct TelemetryRow
{
    Cycle cycle = 0;
    std::uint32_t index = 0;
    double value = 0.0;
    TelemetryKind kind = TelemetryKind::RouterOccupancy;
};

/** Periodic sampler with a CSV export backend. */
class TelemetryRecorder
{
  public:
    /**
     * @p interval cycles between samples (0 = disabled);
     * @p max_points caps the number of sample *points* (each point
     * produces one row per router, link and thread) so a long run
     * cannot grow the buffer without bound.
     */
    explicit TelemetryRecorder(Cycle interval,
                               std::size_t max_points = 65536);

    bool enabled() const { return interval_ > 0; }
    Cycle interval() const { return interval_; }

    /** True when @p now is a sampling point (cheap; hot-loop safe). */
    bool
    due(Cycle now) const
    {
        return interval_ > 0 && now >= nextAt_ &&
            points_ < maxPoints_;
    }

    /** Next cycle due() can first turn true (neverCycle = no more
     * samples will ever be taken; event-core wakeup plumbing). */
    Cycle
    nextDue() const
    {
        return (interval_ > 0 && points_ < maxPoints_) ? nextAt_
                                                       : neverCycle;
    }

    /** Take one snapshot of @p sys at cycle @p now. */
    void sample(Cycle now, System &sys);

    /** Sample points taken so far. */
    std::size_t points() const { return points_; }
    const std::vector<TelemetryRow> &rows() const { return rows_; }

    /** CSV: `cycle,kind,index,value` with a header line. */
    void exportCsv(std::ostream &os) const;

  private:
    Cycle interval_;
    Cycle nextAt_ = 0;
    std::size_t maxPoints_;
    std::size_t points_ = 0;
    std::vector<TelemetryRow> rows_;

    /** Per-link flit count at the previous sample (delta basis). */
    std::vector<std::uint64_t> prevLinkFlits_;
};

} // namespace ocor

#endif // OCOR_SIM_TELEMETRY_HH
