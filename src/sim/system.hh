/**
 * @file
 * System: instantiates and wires every component of the target CMP
 * (Figure 3) — mesh NoC, per-node core/L1/lock-client, per-node L2
 * bank + directory + lock manager, and the memory controllers.
 */

#ifndef OCOR_SIM_SYSTEM_HH
#define OCOR_SIM_SYSTEM_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "check/checker_registry.hh"
#include "common/stats_registry.hh"
#include "common/trace.hh"
#include "cpu/core.hh"
#include "mem/address_map.hh"
#include "mem/l1_cache.hh"
#include "mem/l2_directory.hh"
#include "mem/mem_controller.hh"
#include "noc/network.hh"
#include "os/lock_manager.hh"
#include "os/pcb.hh"
#include "os/qspinlock.hh"
#include "sim/config.hh"
#include "workload/program.hh"

namespace ocor
{

class WakeProfiler;
class LockLedger;

/**
 * Component scheduling groups of the event-driven core, in the
 * canonical slot order of System::tick(). The event wheel carries one
 * entry per group (not per component), which bounds scheduler traffic
 * while preserving the legacy intra-cycle component order exactly:
 * a processed cycle ticks due groups in ascending rank.
 */
enum SimGroup : unsigned
{
    GNetwork = 0,
    GL1,
    GL2,
    GLockMgr,
    GMc,
    GQspin,
    GCore,
    NumSystemGroups
};

/** One fully wired CMP instance. */
class System
{
  public:
    /**
     * Build the system. @p programs holds one program per thread
     * (threads map to nodes 0..numThreads-1); @p bg the background
     * traffic configuration applied to every core.
     */
    System(const SystemConfig &cfg, std::vector<Program> programs,
           const BgTrafficConfig &bg);

    /** Advance the whole system one cycle. */
    void tick(Cycle now);

    /**
     * Event-core variant of tick(): identical slot order, but each
     * component is ticked only when its nextWake() marks cycle
     * @p now as having work. Ticking a non-due component is a no-op
     * by construction, so skipping preserves bit-identical behavior;
     * the per-slot checks are evaluated lazily so that work created
     * for a later slot earlier in the same cycle (e.g. a grant
     * delivered by the network arming a qspinlock timer) is never
     * missed.
     */
    void tickEvent(Cycle now);

    /**
     * tickEvent() with wake attribution: identical gating, walk
     * order and side effects, but each group's due/ticked status and
     * progress-signature delta are reported to @p wp. The signature
     * reads are const folds of existing counters, so a profiled run
     * stays bit-identical to an unprofiled one.
     */
    void tickEventProfiled(Cycle now, WakeProfiler &wp);

    /**
     * Earliest future cycle group @p g needs a tick, as seen at the
     * end of processed cycle @p now. May return cycles <= now (core
     * wakes can be overdue); the event loop clamps to now + 1.
     */
    Cycle componentWake(unsigned g, Cycle now) const;

    /** All threads ran to completion. */
    bool allFinished() const;

    /** Every queue, buffer and link is empty. */
    bool drained() const;

    // --- component access -------------------------------------------
    const SystemConfig &config() const { return cfg_; }
    Network &network() { return *network_; }

    /** Fault oracle; null when cfg.fault has every rate at zero. */
    FaultInjector *faultInjector() { return fault_.get(); }

    /** Event tracer; null when cfg.trace is off. */
    Tracer *tracer() { return tracer_.get(); }

    /** Invariant-checker registry; null when cfg.check is off. */
    CheckerRegistry *checker() { return checks_.get(); }

    /** Attach the COH attribution ledger to every lock client and
     * home (null = detach; off by default, zero cost). */
    void setLedger(LockLedger *l);

    /**
     * Register every component's live counters under dotted names
     * ("<prefix>.router3.sa_grants", "<prefix>.lockmgr0.grants",
     * ...). The registry stores pointers into this System, so it must
     * not outlive it.
     */
    void registerStats(StatsRegistry &reg,
                       const std::string &prefix = "system");

    /** OS-layer watchdog recoveries (lost lock messages re-issued). */
    std::uint64_t watchdogRecoveries() const;
    const AddressMap &addressMap() const { return amap_; }
    unsigned numThreads() const
    {
        return static_cast<unsigned>(cores_.size());
    }
    Core &core(ThreadId t) { return *cores_[t]; }
    Pcb &pcb(ThreadId t) { return *pcbs_[t]; }
    const Pcb &pcb(ThreadId t) const { return *pcbs_[t]; }
    QSpinlock &qspinlock(ThreadId t) { return *qspins_[t]; }
    L1Cache &l1(NodeId n) { return *l1s_[n]; }
    L2Directory &l2(NodeId n) { return *l2s_[n]; }
    LockManager &lockManager(NodeId n) { return *lockMgrs_[n]; }

    /** Oracle: is the lock word @p lock_word held right now? */
    bool lockHeld(Addr lock_word) const;

    /**
     * Oracle: is the holder of @p lock_word actually executing its
     * critical section (vs. still waking up / in transit)? This is
     * the Equation-1 boundary between predecessor-CS time and
     * competition overhead.
     */
    bool lockHolderInCs(Addr lock_word) const;

    /** Oracle: futex queue length of @p lock_word. */
    std::size_t lockQueueLength(Addr lock_word) const;

  private:
    void dispatch(NodeId node, const PacketPtr &pkt, Cycle now);

    /**
     * Observable-progress signature of group @p g: a fold of the
     * group's existing counters (plus, for lock clients, thread
     * state and next-wake values). A tick that leaves the signature
     * unchanged did no attributable work — the profiler's "wasted
     * wake". Deliberately excludes credit movement and peak gauges.
     */
    std::uint64_t groupSignature(unsigned g) const;

    SystemConfig cfg_;
    AddressMap amap_;
    std::unique_ptr<FaultInjector> fault_; ///< before network_
    std::unique_ptr<Tracer> tracer_;       ///< null when tracing off
    std::unique_ptr<Network> network_;
    std::unique_ptr<CheckerRegistry> checks_; ///< null: checking off

    std::vector<std::unique_ptr<Pcb>> pcbs_;
    std::vector<std::unique_ptr<L1Cache>> l1s_;
    std::vector<std::unique_ptr<L2Directory>> l2s_;
    std::vector<std::unique_ptr<LockManager>> lockMgrs_;
    std::vector<std::unique_ptr<QSpinlock>> qspins_;
    std::vector<std::unique_ptr<Core>> cores_;
    std::map<NodeId, std::unique_ptr<MemController>> mcs_;

    /** Flat raw-pointer walk order for tick(): the unique_ptr
     * vectors (and the mcs_ node map) stay the owners, but the
     * per-cycle loops should not chase map nodes. Built once at the
     * end of construction. */
    std::vector<MemController *> mcTick_;

    /** First index in cores_ not yet finished: threads finish
     * monotonically, so allFinished() is O(1) amortized instead of
     * a full scan per cycle. */
    mutable unsigned firstUnfinished_ = 0;

    /** Next cycle the network needs a tick. Recomputed at the end of
     * every processed cycle (after all injections of that cycle have
     * been queued); the network slot runs first within a cycle, so
     * nothing can move its due cycle earlier in between. */
    Cycle netWake_ = 0;

    /** Threads currently waiting on any lock word (hybrid-fidelity
     * window oracle; maintained by the qspinlocks only when
     * cfg.fidelity == Hybrid). */
    unsigned activeWaiters_ = 0;
};

} // namespace ocor

#endif // OCOR_SIM_SYSTEM_HH
