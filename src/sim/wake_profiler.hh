/**
 * @file
 * Wake-attribution profiler for the event-driven core.
 *
 * The event loop wakes component groups on their nextWake() cycles;
 * the ROADMAP's wake-coalescing item needs to know *which* groups
 * burn those wakes and whether the wakes do anything. The profiler
 * counts, per group: wakes (the group had a due component on a
 * processed cycle), *wasted* wakes (the group ticked but its
 * observable-progress signature did not change — e.g. the network
 * group woken by a link carrying only credits), and wake-reason
 * edges (when a group's scheduled wake moves, every group that
 * ticked that cycle gets edge credit — split credit when several
 * ticked, including self-rescheduling). For the network group the
 * first matching nextWake() clause is also recorded
 * (Network::wakeReason), since "any busy router wakes the whole
 * group" is exactly the behavior being attributed (DESIGN.md §14).
 *
 * Profiling is opt-in (SimOptions::wakeProfile or the process-wide
 * default) and purely observational: it never changes scheduling
 * decisions, so profiled runs stay bit-identical to unprofiled ones.
 */

#ifndef OCOR_SIM_WAKE_PROFILER_HH
#define OCOR_SIM_WAKE_PROFILER_HH

#include <array>
#include <cstdint>

#include "noc/network.hh"
#include "sim/system.hh"

namespace ocor
{

class StatsRegistry;
struct WallProfile;

/** Stable name of a System scheduling group (stats keys). */
const char *simGroupName(unsigned g);

/** Wake-attribution counters (one per profiled run; mergeable). */
struct WakeStats
{
    std::array<std::uint64_t, NumSystemGroups> wakes{};
    std::array<std::uint64_t, NumSystemGroups> wasted{};
    /** edges[from][to]: group @p to's wake moved on a cycle group
     * @p from ticked. */
    std::array<std::array<std::uint64_t, NumSystemGroups>,
               NumSystemGroups>
        edges{};
    std::array<std::uint64_t, kNumNetWakeReasons> netReasons{};
    std::uint64_t cyclesProfiled = 0;

    void merge(const WakeStats &o);
};

/** Per-run collector driven by System::tickEventProfiled and the
 * event loop's re-registration pass. */
class WakeProfiler
{
  public:
    /** Start a processed cycle: clears the ticked-group mask. */
    void
    beginCycle()
    {
        ticked_ = 0;
        ++stats_.cyclesProfiled;
    }

    /** Group @p g ticked; @p changed = its signature moved. */
    void
    noteWake(unsigned g, bool changed)
    {
        ticked_ |= 1u << g;
        ++stats_.wakes[g];
        if (!changed)
            ++stats_.wasted[g];
    }

    /** The network group was due for reason @p r. */
    void
    noteNetReason(NetWakeReason r)
    {
        ++stats_.netReasons[static_cast<std::size_t>(r)];
    }

    /** Group @p g's scheduled wake moved after this cycle: credit
     * every group that ticked this cycle with an edge into @p g. */
    void
    noteReschedule(unsigned g)
    {
        for (unsigned d = 0; d < NumSystemGroups; ++d)
            if (ticked_ & (1u << d))
                ++stats_.edges[d][g];
    }

    const WakeStats &stats() const { return stats_; }

  private:
    WakeStats stats_;
    unsigned ticked_ = 0;
};

/**
 * Process-global run aggregates. Benches execute simulations deep
 * inside the result cache / parallel runner where no Simulator
 * instance survives to stats-registration time, so every run()
 * folds its wall profile (and wake stats, when profiling) into
 * these; registerAggregateStats exposes them as "sim.wall.*" /
 * "sim.wake.*" read live at dump time. Thread-safe.
 */
void mergeRunAggregates(const WallProfile &wall,
                        const WakeStats *wake);

/** Aggregate readers (thread-safe copies). */
WallProfile aggregateWall();
WakeStats aggregateWake();
std::uint64_t aggregateRuns();
std::uint64_t aggregateWakeRuns();

/** Test hook: zero the process-global aggregates. */
void resetRunAggregates();

/**
 * Register the aggregates under "sim.wall.*" and "sim.wake.*"
 * (wake keys only if any profiled run has merged). Values are read
 * from the global aggregate at dump time.
 */
void registerAggregateStats(StatsRegistry &reg);

/** Register @p ws under "<prefix>.*" (per-run registries). @p ws
 * must outlive the registry use. */
void registerWakeStats(StatsRegistry &reg, const std::string &prefix,
                       const WakeStats *ws);

} // namespace ocor

#endif // OCOR_SIM_WAKE_PROFILER_HH
