#include "sim/parallel_runner.hh"

#include <chrono>

#include "common/log.hh"

namespace ocor
{

ParallelRunner::ParallelRunner(unsigned jobs, ResultCache *cache)
    : pool_(jobs), cache_(cache)
{
}

RunMetrics
ParallelRunner::runOne(const RunRequest &req)
{
    using clock = std::chrono::steady_clock;
    const auto t0 = clock::now();
    RunMetrics m = cache_
        ? cache_->get(req.profile, req.exp, req.ocorEnabled)
        : runOnce(req.profile, req.exp, req.ocorEnabled);
    const double secs =
        std::chrono::duration<double>(clock::now() - t0).count();
    {
        std::lock_guard<std::mutex> lk(statsMu_);
        runSeconds_.sample(secs);
        ++runsExecuted_;
    }
    return m;
}

SampleStat
ParallelRunner::runSeconds() const
{
    std::lock_guard<std::mutex> lk(statsMu_);
    return runSeconds_;
}

std::uint64_t
ParallelRunner::runsExecuted() const
{
    std::lock_guard<std::mutex> lk(statsMu_);
    return runsExecuted_;
}

double
ParallelRunner::utilization(double elapsed_seconds) const
{
    if (elapsed_seconds <= 0.0 || pool_.size() == 0)
        return 0.0;
    const double busy =
        static_cast<double>(pool_.totalBusyNs()) * 1e-9;
    return busy / (elapsed_seconds * pool_.size());
}

void
ParallelRunner::registerStats(StatsRegistry &reg,
                              const std::string &prefix)
{
    reg.addScalarFn(prefix + ".pool.size", [this]() {
        return static_cast<double>(pool_.size());
    });
    reg.addScalarFn(prefix + ".pool.tasks_executed", [this]() {
        return static_cast<double>(pool_.tasksExecuted());
    });
    reg.addScalarFn(prefix + ".pool.busy_ns_total", [this]() {
        return static_cast<double>(pool_.totalBusyNs());
    });
    for (unsigned w = 0; w < pool_.size(); ++w)
        reg.addScalarFn(
            prefix + ".pool.worker" + std::to_string(w) + ".busy_ns",
            [this, w]() {
                return static_cast<double>(pool_.busyNs(w));
            });
    reg.addScalarFn(prefix + ".runs", [this]() {
        return static_cast<double>(runsExecuted());
    });
    reg.addScalarFn(prefix + ".run_seconds_mean", [this]() {
        return runSeconds().mean();
    });
    reg.addScalarFn(prefix + ".run_seconds_max", [this]() {
        SampleStat s = runSeconds();
        return s.count() ? s.max() : 0.0;
    });
}

std::vector<RunMetrics>
ParallelRunner::run(const std::vector<RunRequest> &reqs)
{
    std::vector<std::future<RunMetrics>> futs;
    futs.reserve(reqs.size());
    for (const auto &req : reqs)
        futs.push_back(
            pool_.run([this, &req]() { return runOne(req); }));

    std::vector<RunMetrics> out;
    out.reserve(reqs.size());
    for (auto &f : futs)
        out.push_back(f.get());
    return out;
}

std::vector<BenchmarkResult>
ParallelRunner::runComparisons(
    const std::vector<BenchmarkProfile> &profiles,
    const std::vector<ExperimentConfig> &exps)
{
    if (profiles.size() != exps.size())
        ocor_panic("ParallelRunner: %zu profiles for %zu configs",
                   profiles.size(), exps.size());

    // Two requests per pair, interleaved base/ocor so both halves of
    // a comparison start early.
    std::vector<RunRequest> reqs;
    reqs.reserve(2 * profiles.size());
    for (std::size_t i = 0; i < profiles.size(); ++i) {
        reqs.push_back({profiles[i], exps[i], false});
        reqs.push_back({profiles[i], exps[i], true});
    }
    std::vector<RunMetrics> metrics = run(reqs);

    std::vector<BenchmarkResult> out;
    out.reserve(profiles.size());
    for (std::size_t i = 0; i < profiles.size(); ++i) {
        BenchmarkResult r;
        r.name = profiles[i].name;
        r.suite = profiles[i].suite;
        r.highCsRate = profiles[i].highCsRate;
        r.highNetUtil = profiles[i].highNetUtil;
        r.base = metrics[2 * i];
        r.ocor = metrics[2 * i + 1];
        out.push_back(std::move(r));
    }
    return out;
}

std::vector<BenchmarkResult>
ParallelRunner::runSuite(const std::vector<BenchmarkProfile> &profiles,
                         const ExperimentConfig &exp)
{
    std::vector<ExperimentConfig> exps(profiles.size(), exp);
    return runComparisons(profiles, exps);
}

std::vector<BenchmarkResult>
runSuiteParallel(const std::vector<BenchmarkProfile> &profiles,
                 const ExperimentConfig &exp, unsigned jobs)
{
    ParallelRunner runner(jobs);
    return runner.runSuite(profiles, exp);
}

} // namespace ocor
