#include "sim/parallel_runner.hh"

#include <chrono>
#include <cmath>
#include <exception>

#include "common/log.hh"
#include "common/rng.hh"
#include "noc/fault.hh"
#include "sim/crashdump.hh"

namespace ocor
{

const char *
runStatusName(RunStatus s)
{
    switch (s) {
      case RunStatus::Ok:
        return "ok";
      case RunStatus::TimedOut:
        return "timed-out";
      case RunStatus::Failed:
        return "failed";
      case RunStatus::Quarantined:
        return "quarantined";
    }
    return "?";
}

ParallelRunner::ParallelRunner(unsigned jobs, ResultCache *cache)
    : pool_(jobs), cache_(cache)
{
}

ParallelRunner::~ParallelRunner()
{
    stopWatchdog();
}

void
ParallelRunner::setSupervision(const SupervisePolicy &policy)
{
    policy_ = policy;
    if (policy_.enabled && policy_.deadlineSeconds > 0.0 &&
        !watchdog_.joinable()) {
        wdStop_ = false;
        watchdog_ = std::thread([this]() { watchdogLoop(); });
    }
    if (!policy_.enabled)
        stopWatchdog();
}

void
ParallelRunner::stopWatchdog()
{
    {
        std::lock_guard<std::mutex> lk(wdMu_);
        wdStop_ = true;
    }
    wdCv_.notify_all();
    if (watchdog_.joinable())
        watchdog_.join();
}

double
ParallelRunner::deadlineFor(const RunRequest &req) const
{
    if (policy_.deadlineSeconds <= 0.0)
        return 0.0;
    const unsigned iters = req.exp.iterationsOverride > 0
        ? req.exp.iterationsOverride
        : req.profile.workload.iterations;
    // Simulated work grows roughly linearly in threads x iterations;
    // the base deadline covers the 16-thread 4-iteration quick
    // configuration and is never scaled below itself.
    const double scale = (req.exp.threads / 16.0) * (iters / 4.0);
    return policy_.deadlineSeconds * std::max(1.0, scale);
}

std::uint64_t
ParallelRunner::armDeadline(double seconds, CancelToken *token)
{
    std::uint64_t id;
    {
        std::lock_guard<std::mutex> lk(wdMu_);
        id = nextArmId_++;
        active_[id] = {std::chrono::steady_clock::now() +
                           std::chrono::duration_cast<
                               std::chrono::steady_clock::duration>(
                               std::chrono::duration<double>(seconds)),
                       token};
    }
    wdCv_.notify_all();
    return id;
}

void
ParallelRunner::disarmDeadline(std::uint64_t id)
{
    std::lock_guard<std::mutex> lk(wdMu_);
    active_.erase(id);
}

void
ParallelRunner::watchdogLoop()
{
    std::unique_lock<std::mutex> lk(wdMu_);
    while (!wdStop_) {
        if (active_.empty()) {
            wdCv_.wait(lk);
            continue;
        }
        // Earliest pending deadline; fire every expired token.
        auto now = std::chrono::steady_clock::now();
        auto soonest = now + std::chrono::hours(24);
        for (auto it = active_.begin(); it != active_.end();) {
            if (it->second.deadlineAt <= now) {
                it->second.token->cancel();
                it = active_.erase(it);
            } else {
                soonest = std::min(soonest, it->second.deadlineAt);
                ++it;
            }
        }
        if (!active_.empty() || soonest > now)
            wdCv_.wait_until(lk, soonest);
    }
}

RunMetrics
ParallelRunner::runOne(const RunRequest &req)
{
    using clock = std::chrono::steady_clock;
    const auto t0 = clock::now();
    RunMetrics m = cache_
        ? cache_->get(req.profile, req.exp, req.ocorEnabled)
        : runOnce(req.profile, req.exp, req.ocorEnabled);
    const double secs =
        std::chrono::duration<double>(clock::now() - t0).count();
    {
        std::lock_guard<std::mutex> lk(statsMu_);
        runSeconds_.sample(secs);
        ++runsExecuted_;
    }
    crashdump::noteRunnerProgress(runsExecuted(), degradedRuns());
    return m;
}

RunMetrics
ParallelRunner::attemptOnce(const RunRequest &req, double deadline)
{
    CancelToken token;
    Simulator::Options opts;
    std::uint64_t armId = 0;
    if (deadline > 0.0) {
        opts.cancel = &token;
        armId = armDeadline(deadline, &token);
    }
    RunMetrics m = cache_
        ? cache_->get(req.profile, req.exp, req.ocorEnabled, opts)
        : runOnce(req.profile, req.exp, req.ocorEnabled, opts);
    if (armId != 0)
        disarmDeadline(armId);
    return m;
}

RunMetrics
ParallelRunner::runSupervised(const RunRequest &req,
                              RunOutcome &outcome)
{
    using clock = std::chrono::steady_clock;
    const auto t0 = clock::now();
    const std::string key =
        makeCacheKey(req.profile, req.exp, req.ocorEnabled)
            .toString();

    // Empty-but-well-formed placeholder for degraded requests, so
    // downstream percentage math (which guards division by zero)
    // keeps working.
    RunMetrics empty;
    empty.threads = req.exp.threads;

    {
        std::lock_guard<std::mutex> lk(statsMu_);
        auto it = failCounts_.find(key);
        if (it != failCounts_.end() &&
            it->second >= policy_.quarantineAfter) {
            outcome.status = RunStatus::Quarantined;
            outcome.detail = "config quarantined after " +
                std::to_string(it->second) + " failed attempts";
            ++quarantined_;
            ++degraded_;
            return empty;
        }
    }

    const double deadline = deadlineFor(req);
    bool lastWasTimeout = false;
    std::string lastDetail;
    for (unsigned attempt = 1; attempt <= policy_.maxAttempts;
         ++attempt) {
        outcome.attempts = attempt;
        RunMetrics m;
        bool threw = false;
        try {
            m = attemptOnce(req, deadline);
        } catch (const std::exception &e) {
            threw = true;
            lastDetail = e.what();
        }
        const double secs =
            std::chrono::duration<double>(clock::now() - t0).count();
        {
            std::lock_guard<std::mutex> lk(statsMu_);
            runSeconds_.sample(secs);
            ++runsExecuted_;
        }

        const bool timedOut = !threw && m.cancelled;
        const bool hung = !threw && m.hangDetected;
        if (!threw && !timedOut && !hung) {
            outcome.status = RunStatus::Ok;
            outcome.seconds = secs;
            crashdump::noteRunnerProgress(runsExecuted(),
                                          degradedRuns());
            return m;
        }

        // Attempt failed: account, maybe back off and retry.
        lastWasTimeout = timedOut;
        if (timedOut)
            lastDetail = "deadline of " + std::to_string(deadline) +
                "s exceeded";
        else if (hung)
            lastDetail = "forward-progress watchdog fired";
        unsigned fails;
        {
            std::lock_guard<std::mutex> lk(statsMu_);
            fails = ++failCounts_[key];
            if (timedOut)
                ++timeouts_;
            else
                ++failures_;
        }
        ocor_warn("supervised run %s attempt %u/%u %s (%s)",
                  key.c_str(), attempt, policy_.maxAttempts,
                  timedOut ? "timed out" : "failed",
                  lastDetail.c_str());
        if (attempt == policy_.maxAttempts ||
            fails >= policy_.quarantineAfter)
            break;

        // Deterministic seeded backoff: the delay for retry k of a
        // given (key, seed) is reproducible run to run (Mutable
        // Locks-style escalation: doubling wait, bounded, jittered
        // to avoid lockstep retries across workers).
        double delay = std::min(
            policy_.backoffMaxSeconds,
            policy_.backoffBaseSeconds *
                std::ldexp(1.0, static_cast<int>(attempt) - 1));
        Rng rng(crc32Update(0, key.data(), key.size()) ^
                (req.exp.seed << 20) ^ attempt);
        delay *= 1.0 +
            (rng.uniform() * 2.0 - 1.0) * policy_.backoffJitter;
        if (delay > 0.0)
            std::this_thread::sleep_for(
                std::chrono::duration<double>(delay));
        {
            std::lock_guard<std::mutex> lk(statsMu_);
            ++retries_;
        }
    }

    outcome.status =
        lastWasTimeout ? RunStatus::TimedOut : RunStatus::Failed;
    outcome.detail = lastDetail;
    outcome.seconds =
        std::chrono::duration<double>(clock::now() - t0).count();
    {
        std::lock_guard<std::mutex> lk(statsMu_);
        ++degraded_;
    }
    crashdump::noteRunnerProgress(runsExecuted(), degradedRuns());
    return empty;
}

SampleStat
ParallelRunner::runSeconds() const
{
    std::lock_guard<std::mutex> lk(statsMu_);
    return runSeconds_;
}

std::uint64_t
ParallelRunner::runsExecuted() const
{
    std::lock_guard<std::mutex> lk(statsMu_);
    return runsExecuted_;
}

std::vector<RunOutcome>
ParallelRunner::outcomes() const
{
    std::lock_guard<std::mutex> lk(statsMu_);
    return outcomes_;
}

std::uint64_t
ParallelRunner::degradedRuns() const
{
    std::lock_guard<std::mutex> lk(statsMu_);
    return degraded_;
}

std::uint64_t
ParallelRunner::timeouts() const
{
    std::lock_guard<std::mutex> lk(statsMu_);
    return timeouts_;
}

std::uint64_t
ParallelRunner::failures() const
{
    std::lock_guard<std::mutex> lk(statsMu_);
    return failures_;
}

std::uint64_t
ParallelRunner::retries() const
{
    std::lock_guard<std::mutex> lk(statsMu_);
    return retries_;
}

std::uint64_t
ParallelRunner::quarantined() const
{
    std::lock_guard<std::mutex> lk(statsMu_);
    return quarantined_;
}

double
ParallelRunner::utilization(double elapsed_seconds) const
{
    if (elapsed_seconds <= 0.0 || pool_.size() == 0)
        return 0.0;
    const double busy =
        static_cast<double>(pool_.totalBusyNs()) * 1e-9;
    return busy / (elapsed_seconds * pool_.size());
}

void
ParallelRunner::registerStats(StatsRegistry &reg,
                              const std::string &prefix)
{
    reg.addScalarFn(prefix + ".pool.size", [this]() {
        return static_cast<double>(pool_.size());
    });
    reg.addScalarFn(prefix + ".pool.tasks_executed", [this]() {
        return static_cast<double>(pool_.tasksExecuted());
    });
    reg.addScalarFn(prefix + ".pool.queue_depth", [this]() {
        return static_cast<double>(pool_.queueDepth());
    });
    reg.addScalarFn(prefix + ".pool.busy_ns_total", [this]() {
        return static_cast<double>(pool_.totalBusyNs());
    });
    for (unsigned w = 0; w < pool_.size(); ++w)
        reg.addScalarFn(
            prefix + ".pool.worker" + std::to_string(w) + ".busy_ns",
            [this, w]() {
                return static_cast<double>(pool_.busyNs(w));
            });
    reg.addScalarFn(prefix + ".runs", [this]() {
        return static_cast<double>(runsExecuted());
    });
    reg.addScalarFn(prefix + ".run_seconds_mean", [this]() {
        return runSeconds().mean();
    });
    reg.addScalarFn(prefix + ".run_seconds_max", [this]() {
        SampleStat s = runSeconds();
        return s.count() ? s.max() : 0.0;
    });
    reg.addScalarFn(prefix + ".timeouts", [this]() {
        return static_cast<double>(timeouts());
    });
    reg.addScalarFn(prefix + ".failures", [this]() {
        return static_cast<double>(failures());
    });
    reg.addScalarFn(prefix + ".retries", [this]() {
        return static_cast<double>(retries());
    });
    reg.addScalarFn(prefix + ".quarantined", [this]() {
        return static_cast<double>(quarantined());
    });
    reg.addScalarFn(prefix + ".degraded", [this]() {
        return static_cast<double>(degradedRuns());
    });
}

std::vector<RunMetrics>
ParallelRunner::run(const std::vector<RunRequest> &reqs)
{
    const bool supervised = policy_.enabled;
    // Outcomes exist only under supervision: the unsupervised engine
    // has no degraded states to report.
    std::vector<RunOutcome> outs(supervised ? reqs.size() : 0);

    std::vector<std::future<RunMetrics>> futs;
    futs.reserve(reqs.size());
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        const RunRequest &req = reqs[i];
        if (supervised) {
            RunOutcome &out = outs[i];
            futs.push_back(pool_.run([this, &req, &out]() {
                return runSupervised(req, out);
            }));
        } else {
            futs.push_back(
                pool_.run([this, &req]() { return runOne(req); }));
        }
    }

    std::vector<RunMetrics> out;
    out.reserve(reqs.size());
    for (auto &f : futs)
        out.push_back(f.get());
    {
        std::lock_guard<std::mutex> lk(statsMu_);
        outcomes_ = std::move(outs);
    }
    return out;
}

std::vector<BenchmarkResult>
ParallelRunner::runComparisons(
    const std::vector<BenchmarkProfile> &profiles,
    const std::vector<ExperimentConfig> &exps)
{
    if (profiles.size() != exps.size())
        ocor_panic("ParallelRunner: %zu profiles for %zu configs",
                   profiles.size(), exps.size());

    // Two requests per pair, interleaved base/ocor so both halves of
    // a comparison start early.
    std::vector<RunRequest> reqs;
    reqs.reserve(2 * profiles.size());
    for (std::size_t i = 0; i < profiles.size(); ++i) {
        reqs.push_back({profiles[i], exps[i], false});
        reqs.push_back({profiles[i], exps[i], true});
    }
    std::vector<RunMetrics> metrics = run(reqs);

    std::vector<BenchmarkResult> out;
    out.reserve(profiles.size());
    for (std::size_t i = 0; i < profiles.size(); ++i) {
        BenchmarkResult r;
        r.name = profiles[i].name;
        r.suite = profiles[i].suite;
        r.highCsRate = profiles[i].highCsRate;
        r.highNetUtil = profiles[i].highNetUtil;
        r.base = metrics[2 * i];
        r.ocor = metrics[2 * i + 1];
        out.push_back(std::move(r));
    }
    return out;
}

std::vector<BenchmarkResult>
ParallelRunner::runSuite(const std::vector<BenchmarkProfile> &profiles,
                         const ExperimentConfig &exp)
{
    std::vector<ExperimentConfig> exps(profiles.size(), exp);
    return runComparisons(profiles, exps);
}

std::vector<BenchmarkResult>
runSuiteParallel(const std::vector<BenchmarkProfile> &profiles,
                 const ExperimentConfig &exp, unsigned jobs)
{
    ParallelRunner runner(jobs);
    return runner.runSuite(profiles, exp);
}

} // namespace ocor
