#include "sim/parallel_runner.hh"

#include "common/log.hh"

namespace ocor
{

ParallelRunner::ParallelRunner(unsigned jobs, ResultCache *cache)
    : pool_(jobs), cache_(cache)
{
}

RunMetrics
ParallelRunner::runOne(const RunRequest &req)
{
    if (cache_)
        return cache_->get(req.profile, req.exp, req.ocorEnabled);
    return runOnce(req.profile, req.exp, req.ocorEnabled);
}

std::vector<RunMetrics>
ParallelRunner::run(const std::vector<RunRequest> &reqs)
{
    std::vector<std::future<RunMetrics>> futs;
    futs.reserve(reqs.size());
    for (const auto &req : reqs)
        futs.push_back(
            pool_.run([this, &req]() { return runOne(req); }));

    std::vector<RunMetrics> out;
    out.reserve(reqs.size());
    for (auto &f : futs)
        out.push_back(f.get());
    return out;
}

std::vector<BenchmarkResult>
ParallelRunner::runComparisons(
    const std::vector<BenchmarkProfile> &profiles,
    const std::vector<ExperimentConfig> &exps)
{
    if (profiles.size() != exps.size())
        ocor_panic("ParallelRunner: %zu profiles for %zu configs",
                   profiles.size(), exps.size());

    // Two requests per pair, interleaved base/ocor so both halves of
    // a comparison start early.
    std::vector<RunRequest> reqs;
    reqs.reserve(2 * profiles.size());
    for (std::size_t i = 0; i < profiles.size(); ++i) {
        reqs.push_back({profiles[i], exps[i], false});
        reqs.push_back({profiles[i], exps[i], true});
    }
    std::vector<RunMetrics> metrics = run(reqs);

    std::vector<BenchmarkResult> out;
    out.reserve(profiles.size());
    for (std::size_t i = 0; i < profiles.size(); ++i) {
        BenchmarkResult r;
        r.name = profiles[i].name;
        r.suite = profiles[i].suite;
        r.highCsRate = profiles[i].highCsRate;
        r.highNetUtil = profiles[i].highNetUtil;
        r.base = metrics[2 * i];
        r.ocor = metrics[2 * i + 1];
        out.push_back(std::move(r));
    }
    return out;
}

std::vector<BenchmarkResult>
ParallelRunner::runSuite(const std::vector<BenchmarkProfile> &profiles,
                         const ExperimentConfig &exp)
{
    std::vector<ExperimentConfig> exps(profiles.size(), exp);
    return runComparisons(profiles, exps);
}

std::vector<BenchmarkResult>
runSuiteParallel(const std::vector<BenchmarkProfile> &profiles,
                 const ExperimentConfig &exp, unsigned jobs)
{
    ParallelRunner runner(jobs);
    return runner.runSuite(profiles, exp);
}

} // namespace ocor
