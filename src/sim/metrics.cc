#include "sim/metrics.hh"

#include "common/log.hh"

namespace ocor
{

std::uint64_t
RunMetrics::totalCompute() const
{
    std::uint64_t n = 0;
    for (const auto &t : perThread)
        n += t.computeCycles;
    return n;
}

std::uint64_t
RunMetrics::totalCs() const
{
    std::uint64_t n = 0;
    for (const auto &t : perThread)
        n += t.csCycles;
    return n;
}

std::uint64_t
RunMetrics::totalBlockedHeld() const
{
    std::uint64_t n = 0;
    for (const auto &t : perThread)
        n += t.blockedHeldCycles;
    return n;
}

std::uint64_t
RunMetrics::totalCoh() const
{
    std::uint64_t n = 0;
    for (const auto &t : perThread)
        n += t.blockedIdleCycles;
    return n;
}

std::uint64_t
RunMetrics::totalBlocked() const
{
    return totalBlockedHeld() + totalCoh();
}

std::uint64_t
RunMetrics::totalAcquisitions() const
{
    std::uint64_t n = 0;
    for (const auto &t : perThread)
        n += t.acquisitions;
    return n;
}

std::uint64_t
RunMetrics::totalSpinWins() const
{
    std::uint64_t n = 0;
    for (const auto &t : perThread)
        n += t.spinWins;
    return n;
}

std::uint64_t
RunMetrics::totalSleeps() const
{
    std::uint64_t n = 0;
    for (const auto &t : perThread)
        n += t.sleeps;
    return n;
}

double
RunMetrics::cohPct() const
{
    return pct(static_cast<double>(totalCoh()),
               static_cast<double>(roiFinish) * threads);
}

double
RunMetrics::csPct() const
{
    return pct(static_cast<double>(totalCs()),
               static_cast<double>(roiFinish) * threads);
}

double
RunMetrics::blockedPct() const
{
    return pct(static_cast<double>(totalBlocked()),
               static_cast<double>(roiFinish) * threads);
}

double
RunMetrics::spinWinPct() const
{
    return pct(static_cast<double>(totalSpinWins()),
               static_cast<double>(totalAcquisitions()));
}

double
RunMetrics::csAccessRate() const
{
    return ratio(static_cast<double>(lockPacketsInjected),
                 static_cast<double>(roiFinish));
}

double
RunMetrics::netUtilization(unsigned nodes) const
{
    return ratio(static_cast<double>(packetsInjected),
                 static_cast<double>(roiFinish) * nodes);
}

Timeline::Timeline(unsigned threads, Cycle horizon)
    : threads_(threads), horizon_(horizon),
      samples_(static_cast<std::size_t>(threads) * horizon,
               static_cast<std::uint8_t>(SegClass::Done))
{}

void
Timeline::record(ThreadId t, Cycle c, SegClass s)
{
    if (t >= threads_ || c >= horizon_)
        return;
    samples_[static_cast<std::size_t>(t) * horizon_ + c] =
        static_cast<std::uint8_t>(s);
}

SegClass
Timeline::at(ThreadId t, Cycle c) const
{
    if (t >= threads_ || c >= horizon_)
        ocor_panic("Timeline::at out of range");
    return static_cast<SegClass>(
        samples_[static_cast<std::size_t>(t) * horizon_ + c]);
}

double
Timeline::fraction(SegClass s, Cycle upto) const
{
    if (threads_ == 0 || horizon_ == 0)
        return 0.0;
    Cycle h = (upto == 0 || upto > horizon_) ? horizon_ : upto;
    std::uint64_t hit = 0;
    for (unsigned t = 0; t < threads_; ++t)
        for (Cycle c = 0; c < h; ++c)
            if (at(t, c) == s)
                ++hit;
    return static_cast<double>(hit)
        / (static_cast<double>(threads_) * h);
}

SegClass
segClassOf(ThreadState s)
{
    switch (s) {
      case ThreadState::Running:
        return SegClass::Parallel;
      case ThreadState::Spinning:
      case ThreadState::SleepPrep:
      case ThreadState::Sleeping:
      case ThreadState::Waking:
        return SegClass::Blocked;
      case ThreadState::InCS:
        return SegClass::Cs;
      default:
        return SegClass::Done;
    }
}

} // namespace ocor
