#include "sim/experiment.hh"

#include "common/log.hh"
#include "sim/crashdump.hh"
#include "workload/synthetic.hh"

namespace ocor
{

double
BenchmarkResult::cohImprovementPct() const
{
    double b = static_cast<double>(base.totalCoh());
    double o = static_cast<double>(ocor.totalCoh());
    return b == 0.0 ? 0.0 : 100.0 * (b - o) / b;
}

double
BenchmarkResult::roiImprovementPct() const
{
    double b = static_cast<double>(base.roiFinish);
    double o = static_cast<double>(ocor.roiFinish);
    return b == 0.0 ? 0.0 : 100.0 * (b - o) / b;
}

double
BenchmarkResult::spinWinImprovementPts() const
{
    return ocor.spinWinPct() - base.spinWinPct();
}

SystemConfig
makeSystemConfig(const ExperimentConfig &exp, bool ocor_enabled)
{
    SystemConfig cfg;
    cfg.mesh = SystemConfig::meshFor(exp.threads);
    cfg.numThreads = exp.threads;
    cfg.seed = exp.seed;
    if (exp.ocorOverrideSet)
        cfg.ocor = exp.ocorOverride;
    cfg.ocor.enabled = ocor_enabled;
    cfg.check = exp.check;
    cfg.fidelity = exp.fidelity;
    return cfg;
}

RunMetrics
runOnce(const BenchmarkProfile &profile, const ExperimentConfig &exp,
        bool ocor_enabled, Simulator::Options opts)
{
    SystemConfig cfg = makeSystemConfig(exp, ocor_enabled);

    SyntheticParams wl = profile.workload;
    if (exp.iterationsOverride > 0)
        wl.iterations = exp.iterationsOverride;
    wl.lineBytes = cfg.mem.lineBytes;

    std::vector<Program> programs;
    programs.reserve(cfg.numThreads);
    for (ThreadId t = 0; t < cfg.numThreads; ++t)
        programs.push_back(buildSyntheticProgram(wl, exp.seed, t));

    // A crash inside run() dumps this exact configuration for
    // --replay (no-op unless a crash handler is installed).
    crashdump::RunScope scope(profile, exp, ocor_enabled);
    if (exp.cohLedger)
        opts.cohLedger = true;
    Simulator sim(cfg, std::move(programs), profile.traffic, opts);
    return sim.run();
}

BenchmarkResult
runComparison(const BenchmarkProfile &profile,
              const ExperimentConfig &exp)
{
    BenchmarkResult r;
    r.name = profile.name;
    r.suite = profile.suite;
    r.highCsRate = profile.highCsRate;
    r.highNetUtil = profile.highNetUtil;
    r.base = runOnce(profile, exp, false);
    r.ocor = runOnce(profile, exp, true);
    return r;
}

std::vector<BenchmarkResult>
runSuite(const std::vector<BenchmarkProfile> &profiles,
         const ExperimentConfig &exp)
{
    std::vector<BenchmarkResult> out;
    out.reserve(profiles.size());
    for (const auto &p : profiles)
        out.push_back(runComparison(p, exp));
    return out;
}

} // namespace ocor
