#include "sim/telemetry.hh"

#include <cstdio>
#include <ostream>

#include "sim/metrics.hh"
#include "sim/system.hh"

namespace ocor
{

const char *
telemetryKindName(TelemetryKind k)
{
    switch (k) {
      case TelemetryKind::RouterOccupancy: return "router_occupancy";
      case TelemetryKind::LinkUtil:        return "link_util";
      case TelemetryKind::ThreadSeg:       return "thread_seg";
    }
    return "?";
}

TelemetryRecorder::TelemetryRecorder(Cycle interval,
                                     std::size_t max_points)
    : interval_(interval), maxPoints_(max_points)
{
    if (interval_ > 0)
        nextAt_ = interval_;
}

void
TelemetryRecorder::sample(Cycle now, System &sys)
{
    Network &net = sys.network();
    const unsigned nodes = net.mesh().numNodes();
    const unsigned links = net.numLinks();
    const unsigned threads = sys.numThreads();

    if (prevLinkFlits_.empty())
        prevLinkFlits_.assign(links, 0);
    rows_.reserve(rows_.size() + nodes + links + threads);

    for (NodeId n = 0; n < nodes; ++n)
        rows_.push_back(
            {now, n, static_cast<double>(net.router(n).occupancy()),
             TelemetryKind::RouterOccupancy});

    for (unsigned l = 0; l < links; ++l) {
        std::uint64_t flits = net.link(l).flitsCarried();
        double util = static_cast<double>(flits - prevLinkFlits_[l])
            / static_cast<double>(interval_);
        prevLinkFlits_[l] = flits;
        rows_.push_back({now, l, util, TelemetryKind::LinkUtil});
    }

    for (ThreadId t = 0; t < threads; ++t)
        rows_.push_back(
            {now, t,
             static_cast<double>(static_cast<unsigned>(
                 segClassOf(sys.pcb(t).state))),
             TelemetryKind::ThreadSeg});

    ++points_;
    nextAt_ = now + interval_;
}

void
TelemetryRecorder::exportCsv(std::ostream &os) const
{
    os << "cycle,kind,index,value\n";
    char buf[40];
    for (const TelemetryRow &r : rows_) {
        std::snprintf(buf, sizeof(buf), "%.17g", r.value);
        os << r.cycle << ',' << telemetryKindName(r.kind) << ','
           << r.index << ',' << buf << '\n';
    }
}

} // namespace ocor
