/**
 * @file
 * Parallel experiment engine: fans a suite of (profile, OCOR on/off)
 * simulations across a worker pool, optionally under supervision
 * (per-request deadlines, seeded retry with backoff, quarantine).
 *
 * Every Simulator::run owns its own System, and every stochastic
 * component draws from RNGs seeded purely from (config, seed), so
 * concurrent runs are bit-identical to serial ones — parallelism is
 * free determinism-wise. Results are reassembled in request order,
 * so output ordering never depends on scheduling either.
 *
 * When constructed over a ResultCache the runner inherits its
 * thread-safety and in-flight dedup: two requests for the same key
 * (e.g. the shared baseline of a level sweep) cost one simulation.
 *
 * Supervision (DESIGN.md §12) is off by default and adds nothing to
 * the unsupervised path, which stays bit-identical to the
 * pre-supervision engine. With a SupervisePolicy installed, every
 * request gets a wall-clock deadline derived from its profile's
 * expected work; a deadline miss cancels the simulation
 * cooperatively, failed attempts retry with deterministic seeded
 * exponential backoff + jitter, and configurations that keep failing
 * are quarantined so one bad config cannot take a sweep down. The
 * sweep then completes with a per-request RunStatus instead of
 * aborting.
 */

#ifndef OCOR_SIM_PARALLEL_RUNNER_HH
#define OCOR_SIM_PARALLEL_RUNNER_HH

#include <condition_variable>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.hh"
#include "common/stats_registry.hh"
#include "common/thread_pool.hh"
#include "sim/result_cache.hh"

namespace ocor
{

/** One simulation request: a profile under a full experiment knob
 * set (thread count, seed, OCOR override) and one OCOR setting. */
struct RunRequest
{
    BenchmarkProfile profile;
    ExperimentConfig exp;
    bool ocorEnabled = false;
};

/** Terminal state of one supervised request. */
enum class RunStatus : std::uint8_t
{
    Ok,          ///< completed (possibly after retries)
    TimedOut,    ///< every attempt hit its wall-clock deadline
    Failed,      ///< every attempt failed (hang / exception)
    Quarantined  ///< config exceeded the failure budget; not run
};

/** Stable lowercase name ("ok", "timed-out", ...). */
const char *runStatusName(RunStatus s);

/** Per-request supervision verdict (parallel to run()'s results). */
struct RunOutcome
{
    RunStatus status = RunStatus::Ok;
    unsigned attempts = 0;   ///< simulation attempts consumed
    double seconds = 0.0;    ///< wall clock across all attempts
    std::string detail;      ///< human-readable failure context
};

/** Watchdog / retry / quarantine policy (all knobs per request). */
struct SupervisePolicy
{
    /**
     * Base wall-clock deadline in seconds for a 16-thread,
     * 4-iteration request; scaled linearly with threads x iterations
     * (deadlineFor()). 0 disables deadlines.
     */
    double deadlineSeconds = 0.0;

    /** Total attempts per request (first try + retries). */
    unsigned maxAttempts = 3;

    /** Backoff before retry k is base * 2^(k-1), capped, with
     * +/- jitter drawn from a deterministic per-(key, attempt) RNG. */
    double backoffBaseSeconds = 0.05;
    double backoffMaxSeconds = 2.0;
    double backoffJitter = 0.25; ///< fraction of the delay

    /** Attempt failures (across requests) after which a cache key is
     * quarantined: subsequent requests short-circuit. */
    unsigned quarantineAfter = 3;

    /** Supervision master switch; when false the runner behaves
     * exactly like the unsupervised engine. */
    bool enabled = false;
};

/** Pool-backed experiment runner; optionally cache-write-through. */
class ParallelRunner
{
  public:
    /**
     * @p jobs worker count (0 = ThreadPool::defaultConcurrency());
     * @p cache when non-null, every run goes through
     * ResultCache::get (memoized + deduplicated), otherwise each
     * request is simulated directly.
     */
    explicit ParallelRunner(unsigned jobs = 0,
                            ResultCache *cache = nullptr);

    ~ParallelRunner();

    /** Install (or disable) the supervision policy. Not thread-safe
     * against concurrent run() calls; set it up front. */
    void setSupervision(const SupervisePolicy &policy);

    const SupervisePolicy &supervision() const { return policy_; }

    /** Deadline in seconds for @p req under the current policy:
     * deadlineSeconds x (threads/16) x (iterations/4), floored at
     * the base. 0 when deadlines are off. */
    double deadlineFor(const RunRequest &req) const;

    /** Run every request concurrently; results in request order.
     * Under supervision, degraded requests yield empty metrics and
     * their status is left in outcomes(). */
    std::vector<RunMetrics> run(const std::vector<RunRequest> &reqs);

    /** Original/OCOR pairs for heterogeneous (profile, exp) combos,
     * e.g. scalability or sensitivity sweeps. */
    std::vector<BenchmarkResult>
    runComparisons(const std::vector<BenchmarkProfile> &profiles,
                   const std::vector<ExperimentConfig> &exps);

    /** Original/OCOR pair for every profile under one knob set: the
     * parallel equivalent of runSuite(). */
    std::vector<BenchmarkResult>
    runSuite(const std::vector<BenchmarkProfile> &profiles,
             const ExperimentConfig &exp);

    unsigned jobs() const { return pool_.size(); }

    /** Per-request outcomes of the most recent run() (request
     * order). Empty before the first run. */
    std::vector<RunOutcome> outcomes() const;

    /** Requests (lifetime total) that did not end Ok. */
    std::uint64_t degradedRuns() const;

    /** Lifetime supervision counters. */
    std::uint64_t timeouts() const;
    std::uint64_t failures() const;
    std::uint64_t retries() const;
    std::uint64_t quarantined() const;

    /** Wall-clock seconds per simulated run (thread-safe). */
    SampleStat runSeconds() const;

    /** Runs executed by this runner (cache hits included). */
    std::uint64_t runsExecuted() const;

    /** Pool busy time / (workers x elapsed) over the pool lifetime;
     * needs @p elapsed_seconds measured by the caller. */
    double utilization(double elapsed_seconds) const;

    const ThreadPool &pool() const { return pool_; }

    /**
     * Register the runner's and its pool's counters under dotted
     * names ("<prefix>.pool.worker0.busy_ns", "<prefix>.runs", ...).
     * The registry stores pointers into this runner, so it must not
     * outlive it.
     */
    void registerStats(StatsRegistry &reg,
                       const std::string &prefix = "runner");

  private:
    RunMetrics runOne(const RunRequest &req);

    /** Supervised wrapper: deadline + retry + quarantine. */
    RunMetrics runSupervised(const RunRequest &req,
                             RunOutcome &outcome);

    /** One attempt under a deadline token; returns the metrics. */
    RunMetrics attemptOnce(const RunRequest &req, double deadline);

    // --- deadline watchdog ------------------------------------------
    struct ActiveRun
    {
        std::chrono::steady_clock::time_point deadlineAt;
        CancelToken *token;
    };

    /** Register/unregister an attempt with the watchdog thread. */
    std::uint64_t armDeadline(double seconds, CancelToken *token);
    void disarmDeadline(std::uint64_t id);
    void watchdogLoop();
    void stopWatchdog();

    ThreadPool pool_;
    ResultCache *cache_;

    SupervisePolicy policy_;

    mutable std::mutex statsMu_;
    SampleStat runSeconds_;
    std::uint64_t runsExecuted_ = 0;
    std::uint64_t timeouts_ = 0;
    std::uint64_t failures_ = 0;
    std::uint64_t retries_ = 0;
    std::uint64_t quarantined_ = 0;
    std::uint64_t degraded_ = 0;
    std::vector<RunOutcome> outcomes_; ///< last run(), request order

    /** Attempt-failure counts and quarantine set, by cache key. */
    std::map<std::string, unsigned> failCounts_;

    // Watchdog state (separate mutex: armed/disarmed on the hot
    // request path, scanned by the watchdog thread).
    std::mutex wdMu_;
    std::condition_variable wdCv_;
    std::map<std::uint64_t, ActiveRun> active_;
    std::uint64_t nextArmId_ = 1;
    bool wdStop_ = false;
    std::thread watchdog_; ///< started lazily by setSupervision
};

/**
 * Convenience wrapper: the parallel, uncached equivalent of
 * runSuite(). Bit-identical to the serial version (the determinism
 * test enforces this).
 */
std::vector<BenchmarkResult>
runSuiteParallel(const std::vector<BenchmarkProfile> &profiles,
                 const ExperimentConfig &exp, unsigned jobs = 0);

} // namespace ocor

#endif // OCOR_SIM_PARALLEL_RUNNER_HH
