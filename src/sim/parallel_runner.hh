/**
 * @file
 * Parallel experiment engine: fans a suite of (profile, OCOR on/off)
 * simulations across a worker pool.
 *
 * Every Simulator::run owns its own System, and every stochastic
 * component draws from RNGs seeded purely from (config, seed), so
 * concurrent runs are bit-identical to serial ones — parallelism is
 * free determinism-wise. Results are reassembled in request order,
 * so output ordering never depends on scheduling either.
 *
 * When constructed over a ResultCache the runner inherits its
 * thread-safety and in-flight dedup: two requests for the same key
 * (e.g. the shared baseline of a level sweep) cost one simulation.
 */

#ifndef OCOR_SIM_PARALLEL_RUNNER_HH
#define OCOR_SIM_PARALLEL_RUNNER_HH

#include <mutex>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/stats_registry.hh"
#include "common/thread_pool.hh"
#include "sim/result_cache.hh"

namespace ocor
{

/** One simulation request: a profile under a full experiment knob
 * set (thread count, seed, OCOR override) and one OCOR setting. */
struct RunRequest
{
    BenchmarkProfile profile;
    ExperimentConfig exp;
    bool ocorEnabled = false;
};

/** Pool-backed experiment runner; optionally cache-write-through. */
class ParallelRunner
{
  public:
    /**
     * @p jobs worker count (0 = ThreadPool::defaultConcurrency());
     * @p cache when non-null, every run goes through
     * ResultCache::get (memoized + deduplicated), otherwise each
     * request is simulated directly.
     */
    explicit ParallelRunner(unsigned jobs = 0,
                            ResultCache *cache = nullptr);

    /** Run every request concurrently; results in request order. */
    std::vector<RunMetrics> run(const std::vector<RunRequest> &reqs);

    /** Original/OCOR pairs for heterogeneous (profile, exp) combos,
     * e.g. scalability or sensitivity sweeps. */
    std::vector<BenchmarkResult>
    runComparisons(const std::vector<BenchmarkProfile> &profiles,
                   const std::vector<ExperimentConfig> &exps);

    /** Original/OCOR pair for every profile under one knob set: the
     * parallel equivalent of runSuite(). */
    std::vector<BenchmarkResult>
    runSuite(const std::vector<BenchmarkProfile> &profiles,
             const ExperimentConfig &exp);

    unsigned jobs() const { return pool_.size(); }

    /** Wall-clock seconds per simulated run (thread-safe). */
    SampleStat runSeconds() const;

    /** Runs executed by this runner (cache hits included). */
    std::uint64_t runsExecuted() const;

    /** Pool busy time / (workers x elapsed) over the pool lifetime;
     * needs @p elapsed_seconds measured by the caller. */
    double utilization(double elapsed_seconds) const;

    const ThreadPool &pool() const { return pool_; }

    /**
     * Register the runner's and its pool's counters under dotted
     * names ("<prefix>.pool.worker0.busy_ns", "<prefix>.runs", ...).
     * The registry stores pointers into this runner, so it must not
     * outlive it.
     */
    void registerStats(StatsRegistry &reg,
                       const std::string &prefix = "runner");

  private:
    RunMetrics runOne(const RunRequest &req);

    ThreadPool pool_;
    ResultCache *cache_;

    mutable std::mutex statsMu_;
    SampleStat runSeconds_;
    std::uint64_t runsExecuted_ = 0;
};

/**
 * Convenience wrapper: the parallel, uncached equivalent of
 * runSuite(). Bit-identical to the serial version (the determinism
 * test enforces this).
 */
std::vector<BenchmarkResult>
runSuiteParallel(const std::vector<BenchmarkProfile> &profiles,
                 const ExperimentConfig &exp, unsigned jobs = 0);

} // namespace ocor

#endif // OCOR_SIM_PARALLEL_RUNNER_HH
