/**
 * @file
 * Synthetic critical-section workload generator.
 *
 * Substitutes for the PARSEC / SPEC OMP2012 programs (see DESIGN.md):
 * every thread runs `iterations` rounds of
 *
 *     parallel compute (jittered)  ->  lock  ->  critical section
 *     (shared loads/stores + short compute)  ->  unlock
 *
 * parameterized by the two characteristics the paper uses to explain
 * its results (Table 3): critical-section access rate (the compute
 * gap between lock attempts) and network utilization (the background
 * traffic rate paired with the program in BenchmarkProfile).
 */

#ifndef OCOR_WORKLOAD_SYNTHETIC_HH
#define OCOR_WORKLOAD_SYNTHETIC_HH

#include <cstdint>

#include "common/rng.hh"
#include "common/types.hh"
#include "workload/program.hh"

namespace ocor
{

/** Knobs of the per-thread synthetic program. */
struct SyntheticParams
{
    unsigned iterations = 20;     ///< critical sections per thread
    std::uint64_t meanGap = 2000; ///< parallel compute between CSs
    unsigned csBodyCompute = 150; ///< compute inside the CS
    unsigned csAccesses = 3;      ///< shared loads/stores inside CS
    unsigned numLocks = 1;        ///< distinct locks (hot when 1)
    Addr sharedDataBase = 0x8000'0000; ///< lock-protected lines
    unsigned lineBytes = 128;
};

/**
 * Build thread @p tid's program. Deterministic for a given
 * (params, seed, tid); the jitter decorrelates thread phases.
 */
Program buildSyntheticProgram(const SyntheticParams &params,
                              std::uint64_t seed, ThreadId tid);

} // namespace ocor

#endif // OCOR_WORKLOAD_SYNTHETIC_HH
