#include "workload/benchmarks.hh"

#include "common/log.hh"

namespace ocor
{

namespace
{

/** Deterministic per-name jitter in [0, 1). */
double
nameJitter(const std::string &name, unsigned salt)
{
    std::uint64_t h = 0xcbf29ce484222325ULL + salt;
    for (char c : name)
        h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

BenchmarkProfile
makeProfile(const std::string &name, const std::string &suite,
            bool high_cs, bool high_net)
{
    BenchmarkProfile p;
    p.name = name;
    p.suite = suite;
    p.highCsRate = high_cs;
    p.highNetUtil = high_net;

    const double j0 = nameJitter(name, 0);
    const double j2 = nameJitter(name, 2);

    // Class parameters were calibrated against the paper's Table 3
    // bands (see EXPERIMENTS.md). "CS access rate" manifests as the
    // lock-protocol traffic the home node sees, which depends on how
    // many threads contend simultaneously; the compute gap below is
    // the knob that sets that contention level.
    SyntheticParams &w = p.workload;
    w.iterations = 4;
    w.numLocks = 1;
    if (high_cs && high_net) {
        // botss/ilbdc class: heavy lock competition in a congested
        // network -> baseline collapses into sleep cascades that
        // OCOR largely prevents.
        w.meanGap = 44000 + static_cast<std::uint64_t>(j0 * 8000);
    } else if (high_cs && !high_net) {
        // body/kdtree class: competition without much background
        // load; OCOR's wakeup-last/EDF effects still help.
        w.meanGap = 30000 + static_cast<std::uint64_t>(j0 * 8000);
    } else if (!high_cs && high_net) {
        // freq/applu class: mild competition, congested network.
        w.meanGap = 66000 + static_cast<std::uint64_t>(j0 * 12000);
    } else {
        // imag/ferret class: the saturated-but-uncongested corner;
        // most blocking is predecessor CS time OCOR cannot remove.
        w.meanGap = 17000 + static_cast<std::uint64_t>(j0 * 6000);
    }
    w.csBodyCompute = 110 + static_cast<unsigned>(j2 * 70);
    // Only the low-CS-rate/high-net class carries a memory access
    // inside the CS (freqmine-style memory-heavy critical sections);
    // the other classes' critical sections are short compute bodies.
    w.csAccesses = (!high_cs && high_net) ? 1 : 0;

    // Network utilization: background memory traffic per core.
    BgTrafficConfig &t = p.traffic;
    if (high_net)
        t.rate = 0.044 + j2 * 0.016;
    else
        t.rate = 0.010 + j2 * 0.008;
    t.storeFraction = 0.3;

    return p;
}

} // namespace

std::vector<BenchmarkProfile>
parsecProfiles()
{
    // Table 3 characterization (CS rate, network utilization).
    return {
        makeProfile("ferret", "PARSEC", false, false),
        makeProfile("vips", "PARSEC", true, false),
        makeProfile("fluid", "PARSEC", false, false),
        makeProfile("body", "PARSEC", true, false),
        makeProfile("freq", "PARSEC", false, true),
        makeProfile("stream", "PARSEC", true, true),
        makeProfile("x264", "PARSEC", true, true),
        makeProfile("swap", "PARSEC", true, false),
        makeProfile("face", "PARSEC", true, true),
        makeProfile("dedup", "PARSEC", true, true),
        makeProfile("can", "PARSEC", true, true),
    };
}

std::vector<BenchmarkProfile>
omp2012Profiles()
{
    return {
        makeProfile("imag", "OMP2012", false, false),
        makeProfile("bt331", "OMP2012", false, false),
        makeProfile("applu", "OMP2012", false, true),
        makeProfile("smith", "OMP2012", false, false),
        makeProfile("fma3d", "OMP2012", true, false),
        makeProfile("bwaves", "OMP2012", true, false),
        makeProfile("kdtree", "OMP2012", true, false),
        makeProfile("md", "OMP2012", true, false),
        makeProfile("nab", "OMP2012", true, false),
        makeProfile("swim", "OMP2012", true, false),
        makeProfile("mgrid", "OMP2012", true, true),
        makeProfile("botsa", "OMP2012", true, true),
        makeProfile("botss", "OMP2012", true, true),
        makeProfile("ilbdc", "OMP2012", true, true),
    };
}

std::vector<BenchmarkProfile>
allProfiles()
{
    auto all = parsecProfiles();
    auto omp = omp2012Profiles();
    all.insert(all.end(), omp.begin(), omp.end());
    return all;
}

BenchmarkProfile
profileByName(const std::string &name)
{
    for (const auto &p : allProfiles())
        if (p.name == name)
            return p;
    ocor_fatal("unknown benchmark profile '%s'", name.c_str());
}

} // namespace ocor
