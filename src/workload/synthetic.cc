#include "workload/synthetic.hh"

namespace ocor
{

Program
buildSyntheticProgram(const SyntheticParams &params,
                      std::uint64_t seed, ThreadId tid)
{
    Rng rng(seed ^ (0xc0ffee123ULL + tid * 0x9e3779b97f4a7c15ULL));
    ProgramBuilder b;

    for (unsigned it = 0; it < params.iterations; ++it) {
        // Parallel phase: uniform jitter in [0.5, 1.5] x meanGap
        // decorrelates the threads' lock attempts.
        std::uint64_t lo = params.meanGap / 2;
        std::uint64_t hi = params.meanGap + params.meanGap / 2;
        b.compute(rng.between(lo, hi));

        std::uint64_t lock_idx =
            params.numLocks <= 1 ? 0 : rng.range(params.numLocks);
        b.lock(lock_idx);

        // Critical section body: touch the lock-protected lines (the
        // coherence ping-pong of shared data) plus a short compute.
        Addr region = params.sharedDataBase
            + lock_idx * 16 * params.lineBytes;
        for (unsigned a = 0; a < params.csAccesses; ++a) {
            Addr line = region + (a % 16) * params.lineBytes;
            if (a % 2 == 0)
                b.load(line);
            else
                b.store(line);
        }
        if (params.csBodyCompute > 0)
            b.compute(params.csBodyCompute);

        b.unlock(lock_idx);
    }
    return b.build();
}

} // namespace ocor
