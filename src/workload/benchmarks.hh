/**
 * @file
 * The 25 benchmark profiles of the paper's evaluation.
 *
 * Each PARSEC / SPEC OMP2012 program is represented by the synthetic
 * workload parameters that realize its Table-3 characterization:
 * critical-section access rate (low/high) and network utilization
 * (low/high), with deterministic per-program variation inside each
 * class so the 25 programs are not four identical points.
 */

#ifndef OCOR_WORKLOAD_BENCHMARKS_HH
#define OCOR_WORKLOAD_BENCHMARKS_HH

#include <string>
#include <vector>

#include "cpu/core.hh"
#include "workload/synthetic.hh"

namespace ocor
{

/** One named benchmark: workload + traffic parameters. */
struct BenchmarkProfile
{
    std::string name;
    std::string suite;       ///< "PARSEC" or "OMP2012"
    bool highCsRate = false; ///< Table 3 "CS Rate" column
    bool highNetUtil = false;///< Table 3 "Net. Util." column

    SyntheticParams workload;
    BgTrafficConfig traffic;
};

/** All 11 PARSEC profiles (paper Section 5.1). */
std::vector<BenchmarkProfile> parsecProfiles();

/** All 14 SPEC OMP2012 profiles. */
std::vector<BenchmarkProfile> omp2012Profiles();

/** The full 25-program set, PARSEC first. */
std::vector<BenchmarkProfile> allProfiles();

/** Find a profile by name; fatal if unknown. */
BenchmarkProfile profileByName(const std::string &name);

} // namespace ocor

#endif // OCOR_WORKLOAD_BENCHMARKS_HH
