#include "workload/program.hh"

namespace ocor
{

std::size_t
Program::lockCount() const
{
    std::size_t n = 0;
    for (const auto &op : ops)
        if (op.type == OpType::Lock)
            ++n;
    return n;
}

bool
Program::wellFormed() const
{
    if (ops.empty() || ops.back().type != OpType::End)
        return false;
    bool in_cs = false;
    std::uint64_t held = 0;
    for (const auto &op : ops) {
        switch (op.type) {
          case OpType::Lock:
            if (in_cs)
                return false; // no nesting in this model
            in_cs = true;
            held = op.arg;
            break;
          case OpType::Unlock:
            if (!in_cs || held != op.arg)
                return false;
            in_cs = false;
            break;
          case OpType::End:
            if (in_cs)
                return false;
            break;
          default:
            break;
        }
    }
    return !in_cs;
}

ProgramBuilder &
ProgramBuilder::compute(std::uint64_t cycles)
{
    prog_.ops.push_back({OpType::Compute, cycles});
    return *this;
}

ProgramBuilder &
ProgramBuilder::lock(std::uint64_t lock_idx)
{
    prog_.ops.push_back({OpType::Lock, lock_idx});
    return *this;
}

ProgramBuilder &
ProgramBuilder::unlock(std::uint64_t lock_idx)
{
    prog_.ops.push_back({OpType::Unlock, lock_idx});
    return *this;
}

ProgramBuilder &
ProgramBuilder::load(Addr addr)
{
    prog_.ops.push_back({OpType::Load, addr});
    return *this;
}

ProgramBuilder &
ProgramBuilder::store(Addr addr)
{
    prog_.ops.push_back({OpType::Store, addr});
    return *this;
}

Program
ProgramBuilder::build()
{
    prog_.ops.push_back({OpType::End, 0});
    return std::move(prog_);
}

} // namespace ocor
