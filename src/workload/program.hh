/**
 * @file
 * Thread programs: the op-level workload a core executes.
 *
 * A program is a flat list of operations; the core interprets them
 * in order. Critical sections are bracketed by Lock/Unlock ops and
 * contain loads/stores to lock-protected lines plus a short compute
 * body, mirroring the small critical sections the paper observes
 * (Section 5.2.1: ~5% of execution time inside CS).
 */

#ifndef OCOR_WORKLOAD_PROGRAM_HH
#define OCOR_WORKLOAD_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace ocor
{

/** Operation kinds a core can execute. */
enum class OpType : std::uint8_t
{
    Compute, ///< busy for arg cycles
    Lock,    ///< acquire lock #arg (queue spinlock)
    Unlock,  ///< release lock #arg
    Load,    ///< load from address arg (through L1/MOESI)
    Store,   ///< store to address arg
    End      ///< thread finished
};

/** One operation. */
struct Op
{
    OpType type = OpType::End;
    std::uint64_t arg = 0;
};

/** A thread's full instruction stream. */
struct Program
{
    std::vector<Op> ops;

    /** Number of Lock ops (sanity checks in tests). */
    std::size_t lockCount() const;

    /** Structural validation: Lock/Unlock balance, End-terminated. */
    bool wellFormed() const;
};

/** Helpers for building programs by hand (tests / examples). */
class ProgramBuilder
{
  public:
    ProgramBuilder &compute(std::uint64_t cycles);
    ProgramBuilder &lock(std::uint64_t lock_idx);
    ProgramBuilder &unlock(std::uint64_t lock_idx);
    ProgramBuilder &load(Addr addr);
    ProgramBuilder &store(Addr addr);
    Program build();

  private:
    Program prog_;
};

} // namespace ocor

#endif // OCOR_WORKLOAD_PROGRAM_HH
