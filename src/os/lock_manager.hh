/**
 * @file
 * Lock-word home: atomic try-lock serialization point and futex wait
 * queue.
 *
 * Every lock word is serialized at its home L2 bank (Figure 4): the
 * arrival order of LockTry packets decides who wins — which is the
 * very ordering OCOR's priority-based NoC scheduling manipulates.
 * The manager also hosts the per-lock futex queue that sys_futex
 * (FUTEX_WAIT / FUTEX_WAKE) operates on.
 */

#ifndef OCOR_OS_LOCK_MANAGER_HH
#define OCOR_OS_LOCK_MANAGER_HH

#include <cstdint>
#include <deque>
#include <vector>
#include <map>

#include "common/stats.hh"
#include "common/types.hh"
#include "noc/packet.hh"
#include "os/params.hh"
#include "os/protocol_step.hh"

namespace ocor
{

class Tracer;
class CheckerRegistry;
class LockLedger;

/** Lock-manager observability counters. */
struct LockMgrStats
{
    std::uint64_t tries = 0;
    std::uint64_t grants = 0;
    std::uint64_t fails = 0;
    std::uint64_t releases = 0;
    std::uint64_t futexWaits = 0;
    std::uint64_t immediateWakes = 0; ///< lock free at FUTEX_WAIT time
    std::uint64_t wakes = 0;
    std::uint64_t notifies = 0; ///< release invalidations sent

    // --- fault recovery (all zero in fault-free runs) ---------------
    std::uint64_t duplicateTries = 0;  ///< LockTry from current holder
    std::uint64_t strayReleases = 0;   ///< release of free/foreign lock
    std::uint64_t rewakes = 0;         ///< WakeNotify re-sent to holder
    std::uint64_t duplicateWaits = 0;  ///< FutexWait while already queued

    /** Release -> next grant gap at this home (lock-handover
     * latency, the quantity OCOR's priority rules compress). */
    SampleStat handoverLatency;
    Histogram handoverLatencyHist{4.0, 256};
};

/** Home-side state of the locks whose words live on this node. */
class LockManager
{
  public:
    LockManager(NodeId node, const OsParams &params, SendFn send);

    /** Lock-protocol traffic addressed to this home node. */
    void handle(const PacketPtr &pkt, Cycle now);

    /** Advance: process messages past the home access latency. */
    void tick(Cycle now);

    bool idle() const { return delayed_.empty() && retries_.empty(); }

    /** Earliest cycle tick() would do any work (neverCycle = none).
     * Both queues are constant-latency FIFOs (homeLatency and
     * wakeRetryDelay), so their fronts are the minima. */
    Cycle nextWake() const
    {
        Cycle w = neverCycle;
        if (!delayed_.empty())
            w = delayed_.front().first;
        if (!retries_.empty() && retries_.front().first < w)
            w = retries_.front().first;
        return w;
    }

    const LockMgrStats &stats() const { return stats_; }

    /** Attach the event tracer (null = tracing off, zero overhead). */
    void setTracer(Tracer *t) { trace_ = t; }

    /** Attach the invariant checker (null = checking off). */
    void setChecker(CheckerRegistry *c) { check_ = c; }

    /** Attach the COH attribution ledger (null = off, zero cost). */
    void setLedger(LockLedger *l) { ledger_ = l; }

    // --- oracle accessors (simulation-level accounting only) --------
    bool heldNow(Addr lock_word) const;
    ThreadId holderOf(Addr lock_word) const;
    std::size_t queueLength(Addr lock_word) const;
    std::size_t pollerCount(Addr lock_word) const;

  private:
    /**
     * Home-side state of one lock word: the pure protocol core
     * shared with the model checker (proto::homeStep operates on
     * it) plus the timing bookkeeping only the simulator needs.
     */
    struct LockState
    {
        proto::HomeLockState core;

        /** Cycle of the latest unconsumed release; the next grant
         * samples (grant - release) as the handover latency. */
        Cycle lastRelease = neverCycle;
    };

    void process(const PacketPtr &pkt, Cycle now);

    /** Handover bookkeeping at every grant decision. */
    void noteGrant(LockState &lock, Addr addr, ThreadId winner,
                   Cycle now);

    NodeId node_;
    OsParams params_;
    SendFn send_;

    std::map<Addr, LockState> locks_;
    std::deque<std::pair<Cycle, PacketPtr>> delayed_;
    std::deque<std::pair<Cycle, PacketPtr>> retries_;

    Tracer *trace_ = nullptr;
    CheckerRegistry *check_ = nullptr;
    LockLedger *ledger_ = nullptr;
    LockMgrStats stats_;
};

} // namespace ocor

#endif // OCOR_OS_LOCK_MANAGER_HH
