/**
 * @file
 * Queue-spinlock client: the thread-side lock/unlock state machine of
 * Algorithms 1 and 2 under cache coherence (Figure 4).
 *
 * Lock path. The first atomic_try_lock is a network round trip to
 * the lock word's home bank. On failure the thread spins *locally*
 * on its cached copy of the lock line (test-and-test-and-set style):
 * the spin loop burns one retry of the MAX_SPIN_COUNT budget every
 * retryInterval cycles and generates no network traffic. When the
 * holder releases, the home invalidates every polling sharer
 * (LockFreeNotify, the invalidation of Figure 4a at T4); each
 * spinner then re-issues an atomic locking request, and the burst of
 * requests races through the NoC — the race OCOR's router
 * prioritization decides. Before each request the enhanced primitive
 * computes RTR = MAX_SPIN_COUNT - burned retries and stamps (RTR,
 * PROG) into the packet via the core-local registers.
 *
 * When the budget is exhausted the thread pays the sleep-preparation
 * cost, registers through sys_futex(FUTEX_WAIT), and sleeps until
 * the home wakes it with the lock already reserved (queue-spinlock
 * handover), after which it pays the wakeup cost and enters the CS.
 *
 * Unlock path: atomic_release (LockRelease), PROG++, then
 * sys_futex(FUTEX_WAKE) after the syscall delay; the FUTEX_WAKE
 * packet carries the lowest priority under OCOR (Table 1 rule 4).
 */

#ifndef OCOR_OS_QSPINLOCK_HH
#define OCOR_OS_QSPINLOCK_HH

#include <algorithm>
#include <functional>

#include "common/types.hh"
#include "core/ocor_config.hh"
#include "mem/address_map.hh"
#include "noc/packet.hh"
#include "os/params.hh"
#include "os/pcb.hh"
#include "os/protocol_step.hh"

namespace ocor
{

class Tracer;
class CheckerRegistry;
class LockLedger;

/** Per-thread queue-spinlock state machine. */
class QSpinlock
{
  public:
    using AcquiredFn = std::function<void(Cycle)>;

    QSpinlock(Pcb &pcb, const OcorConfig &ocor, const OsParams &os,
              const AddressMap &amap, SendFn send);

    /** Begin acquiring @p lock_word; @p done fires on entry. */
    void acquire(Addr lock_word, Cycle now, AcquiredFn done);

    /** Release the currently held lock (Algorithm 2). */
    void release(Cycle now);

    /** Lock-protocol traffic addressed to this thread. */
    void handle(const PacketPtr &pkt, Cycle now);

    /** Advance timed transitions (budget, sleep prep, wakeup). */
    void tick(Cycle now);

    bool waiting() const { return cs_.active; }
    bool holding() const { return cs_.holding; }
    Addr currentLock() const { return lock_; }
    bool everSleptThisWait() const { return cs_.everSlept; }
    bool tryInFlight() const { return cs_.tryInFlight; }

    /** The pure protocol core (model-checker-shared state). */
    const proto::ClientState &protoState() const { return cs_; }

    /** Departure cycle of the last LockTry (neverCycle before the
     * first). The accounting layer splits transfer vs arbitration
     * cycles around trySentAt() + the uncontended round trip. */
    Cycle trySentAt() const { return trySentAt_; }

    /**
     * Earliest cycle tick() would do any work (neverCycle = none),
     * mirroring tick()'s guards term by term: the two fault-recovery
     * watchdogs, the deferred FUTEX_WAKE, and the retry/sleep-prep/
     * wakeup timer. Everything else this class does is handle()
     * traffic or an acquire()/release() call, not tick() work.
     */
    Cycle
    nextWake() const
    {
        Cycle w = neverCycle;
        if (os_.tryWatchdogCycles > 0 && cs_.active &&
            cs_.tryInFlight &&
            pcb_.state == ThreadState::Spinning)
            w = std::min(w, trySentAt_ + os_.tryWatchdogCycles);
        if (os_.sleepWatchdogCycles > 0 && cs_.active &&
            pcb_.state == ThreadState::Sleeping &&
            sleepingSince_ != neverCycle)
            w = std::min(w, sleepingSince_ + os_.sleepWatchdogCycles);
        w = std::min(w, pendingWakeAt_);
        if (cs_.timer != proto::ClientTimer::None)
            w = std::min(w, timerAt_);
        return w;
    }

    /**
     * Hybrid-fidelity hook: a shared counter of threads currently
     * waiting on any lock (incremented on acquire, decremented on CS
     * entry). The network's analytic fast path is only eligible
     * while the counter reads zero. Null = not maintained.
     */
    void setWaiterCounter(unsigned *c) { waiters_ = c; }

    /** Watchdog re-issues of a LockTry / FutexWait (fault recovery). */
    std::uint64_t recoveries() const { return recoveries_; }

    /** Duplicate or orphan grants/wakes absorbed idempotently. */
    std::uint64_t duplicatesAbsorbed() const
    {
        return duplicatesAbsorbed_;
    }

    /** Current RTR value (Algorithm 1 line 5). */
    unsigned currentRtr(Cycle now) const;

    /** Attach the event tracer (null = tracing off, zero overhead). */
    void setTracer(Tracer *t) { trace_ = t; }

    /** Attach the invariant checker (null = checking off). */
    void setChecker(CheckerRegistry *c) { check_ = c; }

    /** Attach the COH attribution ledger (null = off, zero cost). */
    void setLedger(LockLedger *l) { ledger_ = l; }

    /**
     * Test hook: pretend to hold @p lock_word without acquiring it,
     * so seeded-violation tests can break mutual exclusion on
     * purpose. Never called outside tests.
     */
    void testForceHold(Addr lock_word)
    {
        cs_.holding = true;
        lock_ = lock_word;
    }

  private:
    void issueTry(Cycle now);
    void enterCs(Cycle now);
    void beginSleepPrep(Cycle now);
    void registerWait(Cycle now);
    Cycle sleepDeadline() const;

    /** Map a clientStep result onto packets, timers and counters. */
    void applyAction(const proto::ClientResult &res, Addr addr,
                     Cycle now);

    /** Return an unwanted grant/wake so the home frees the lock. */
    void returnOrphanGrant(Addr lock_word, Cycle now);

    Pcb &pcb_;
    const OcorConfig &ocor_;
    OsParams os_;
    const AddressMap &amap_;
    SendFn send_;

    /** Pure protocol core: every protocol decision is made by
     * proto::clientStep on this struct (DESIGN.md §15); the fields
     * below it are simulation-only timing/accounting. */
    proto::ClientState cs_;

    Addr lock_ = 0;
    Cycle spinStart_ = 0;   ///< budget anchor
    AcquiredFn done_;

    Cycle timerAt_ = neverCycle; ///< due cycle of cs_.timer

    /** Deferred sys_futex(FUTEX_WAKE) after a release. */
    Cycle pendingWakeAt_ = neverCycle;
    Addr pendingWakeLock_ = 0;

    // --- fault-recovery watchdogs (inert while the OsParams
    //     *WatchdogCycles knobs stay 0, their default) --------------
    Cycle trySentAt_ = neverCycle;    ///< last LockTry departure
    Cycle sleepingSince_ = neverCycle; ///< entered Sleeping state
    std::uint64_t recoveries_ = 0;
    std::uint64_t duplicatesAbsorbed_ = 0;

    Tracer *trace_ = nullptr;
    CheckerRegistry *check_ = nullptr;
    LockLedger *ledger_ = nullptr;

    /** Shared active-waiter count (hybrid fidelity); null = off. */
    unsigned *waiters_ = nullptr;
};

} // namespace ocor

#endif // OCOR_OS_QSPINLOCK_HH
