#include "os/qspinlock.hh"

#include <algorithm>

#include "check/checker_registry.hh"
#include "common/log.hh"
#include "common/trace.hh"
#include "core/priority.hh"
#include "os/lock_ledger.hh"

namespace ocor
{

QSpinlock::QSpinlock(Pcb &pcb, const OcorConfig &ocor,
                     const OsParams &os, const AddressMap &amap,
                     SendFn send)
    : pcb_(pcb), ocor_(ocor), os_(os), amap_(amap),
      send_(std::move(send))
{}

Cycle
QSpinlock::sleepDeadline() const
{
    switch (os_.lockMode) {
      case LockMode::PureSpin:
        return neverCycle; // a spinlock never sleeps
      case LockMode::PureSleep:
        return spinStart_; // a queueing lock parks immediately
      default:
        return spinStart_
            + static_cast<Cycle>(ocor_.maxSpinCount)
            * os_.retryInterval;
    }
}

void
QSpinlock::beginSleepPrep(Cycle now)
{
    // Spin budget exhausted: fall into the sleeping phase (the pure
    // step already moved cs_ to SleepPrep and armed its timer).
    ++pcb_.counters.sleeps;
    pcb_.state = ThreadState::SleepPrep;
    timerAt_ = now + os_.sleepPrepCycles;
    if (trace_)
        trace_->record(TraceCat::Lock, TraceEv::LockSleep, now,
                       pcb_.node, pcb_.tid, lock_);
}

void
QSpinlock::registerWait(Cycle now)
{
    // sys_futex(FUTEX_WAIT): register in the home lock queue.
    pcb_.state = ThreadState::Sleeping;
    sleepingSince_ = now;
    auto pkt = makePacket(MsgType::FutexWait, pcb_.node,
                          amap_.homeOf(lock_), lock_);
    pkt->thread = pcb_.tid;
    pkt->priority = makePriority(ocor_, PriorityClass::Wakeup,
                                 1, pcb_.prog);
    send_(pkt, now);
}

unsigned
QSpinlock::currentRtr(Cycle now) const
{
    // One retry of the budget burns every retryInterval cycles of
    // local polling (Algorithm 1's loop under a cached lock line).
    Cycle elapsed = now >= spinStart_ ? now - spinStart_ : 0;
    std::uint64_t burned = elapsed / os_.retryInterval;
    if (burned >= ocor_.maxSpinCount)
        return 1;
    return static_cast<unsigned>(ocor_.maxSpinCount - burned);
}

void
QSpinlock::applyAction(const proto::ClientResult &res, Addr addr,
                       Cycle now)
{
    switch (res.action) {
      case proto::ClientAction::None:
        break;

      case proto::ClientAction::SendTry:
        if (res.countRetry)
            ++pcb_.counters.retries;
        issueTry(now);
        break;

      case proto::ClientAction::ArmRetryTimer:
        // Revalidate remotely at the remote-try cadence (capped by
        // the budget deadline).
        timerAt_ = std::min(now + os_.remoteTryInterval,
                            sleepDeadline());
        break;

      case proto::ClientAction::BeginSleepPrep:
        beginSleepPrep(now);
        break;

      case proto::ClientAction::RegisterWait:
        registerWait(now);
        break;

      case proto::ClientAction::EnterCs:
        enterCs(now);
        break;

      case proto::ClientAction::StartWaking:
        pcb_.state = ThreadState::Waking;
        timerAt_ = now + os_.wakeupCycles;
        break;

      case proto::ClientAction::AbsorbDuplicate:
        ++duplicatesAbsorbed_;
        break;

      case proto::ClientAction::ReturnOrphan:
        ++duplicatesAbsorbed_;
        returnOrphanGrant(addr, now);
        break;

      case proto::ClientAction::SendRelease: {
        // Algorithm 2: atomic_release, PROG++, then FUTEX_WAKE with
        // the lowest priority (Table 1 rule 4) after the syscall
        // delay.
        auto rel = makePacket(MsgType::LockRelease, pcb_.node,
                              amap_.homeOf(lock_), lock_);
        rel->thread = pcb_.tid;
        rel->priority = makePriority(ocor_,
                                     PriorityClass::LockRelease,
                                     1, pcb_.prog);
        send_(rel, now);

        ++pcb_.prog;
        pcb_.regProg = pcb_.prog;

        pendingWakeLock_ = lock_;
        pendingWakeAt_ = now + os_.futexWakeDelay;

        pcb_.state = ThreadState::Running;
        break;
      }
    }
}

void
QSpinlock::acquire(Addr lock_word, Cycle now, AcquiredFn done)
{
    if (cs_.active || cs_.holding)
        ocor_panic("QSpinlock t%u: acquire while busy", pcb_.tid);
    proto::ClientResult res =
        proto::clientStep(cs_, proto::ClientEvent::Acquire, {});
    if (waiters_)
        ++*waiters_;
    lock_ = lock_word;
    spinStart_ = now;
    done_ = std::move(done);
    pcb_.state = ThreadState::Spinning;
    if (check_)
        check_->onAcquireStart(pcb_.tid, now);
    if (ledger_)
        ledger_->noteAttemptStart(lock_);
    if (trace_)
        trace_->record(TraceCat::Lock, TraceEv::LockAcquireStart, now,
                       pcb_.node, pcb_.tid, lock_, 0,
                       currentRtr(now));
    applyAction(res, lock_, now);
}

void
QSpinlock::issueTry(Cycle now)
{
    // Algorithm 1, lines 5-7: compute RTR, expose it (and PROG) to
    // the NI through core-local registers, then try the lock.
    pcb_.regRtr = currentRtr(now);
    pcb_.regProg = pcb_.prog;
    cs_.tryInFlight = true;
    trySentAt_ = now;
    if (check_)
        check_->onLockTry(pcb_.tid, pcb_.regRtr, now);

    auto pkt = makePacket(MsgType::LockTry, pcb_.node,
                          amap_.homeOf(lock_), lock_);
    pkt->thread = pcb_.tid;
    pkt->priority = makePriority(ocor_, PriorityClass::LockTry,
                                 pcb_.regRtr, pcb_.regProg);
    if (trace_)
        trace_->record(TraceCat::Lock, TraceEv::LockTrySent, now,
                       pcb_.node, pcb_.tid, lock_, pkt->id,
                       pcb_.regRtr,
                       static_cast<std::uint32_t>(pcb_.regProg));
    send_(pkt, now);
}

void
QSpinlock::enterCs(Cycle now)
{
    // Only reachable from an active acquisition (the pure step has
    // already cleared cs_.active and set cs_.holding).
    if (waiters_ && *waiters_ > 0)
        --*waiters_;
    pcb_.state = ThreadState::InCS;
    ++pcb_.counters.acquisitions;
    if (cs_.everSlept)
        ++pcb_.counters.sleepWins;
    else
        ++pcb_.counters.spinWins;
    if (ledger_)
        ledger_->noteAcquired(lock_, pcb_.tid, now - spinStart_);
    if (trace_)
        trace_->record(TraceCat::Lock, TraceEv::CsEnter, now,
                       pcb_.node, pcb_.tid, lock_, 0,
                       cs_.everSlept ? 1 : 0);
    if (done_) {
        auto fn = std::move(done_);
        done_ = nullptr;
        fn(now);
    }
}

void
QSpinlock::handle(const PacketPtr &pkt, Cycle now)
{
    if (pkt->thread != pcb_.tid)
        ocor_panic("QSpinlock t%u: message for t%u", pcb_.tid,
                   pkt->thread);

    proto::ClientInputs in;
    in.sameLock = pkt->addr == lock_;

    switch (pkt->type) {
      case MsgType::LockGrant:
        applyAction(proto::clientStep(
                        cs_, proto::ClientEvent::MsgLockGrant, in),
                    pkt->addr, now);
        break;

      case MsgType::LockFail: {
        in.budgetExhausted = now >= sleepDeadline();
        proto::ClientResult res = proto::clientStep(
            cs_, proto::ClientEvent::MsgLockFail, in);
        if (res.staleFail) {
            ocor_warn("QSpinlock t%u: stale LockFail", pcb_.tid);
            break;
        }
        if (trace_)
            trace_->record(TraceCat::Lock, TraceEv::LockFailRecv, now,
                           pcb_.node, pcb_.tid, lock_, pkt->id,
                           currentRtr(now));
        applyAction(res, pkt->addr, now);
        break;
      }

      case MsgType::LockFreeNotify:
        applyAction(proto::clientStep(
                        cs_, proto::ClientEvent::MsgLockFreeNotify,
                        in),
                    pkt->addr, now);
        break;

      case MsgType::WakeNotify: {
        // Every WakeNotify arrival is one delivered wakeup: the sink
        // NI absorbs network duplicates, so each arrival pairs with a
        // distinct home-side send (watchdog rewakes re-arm the
        // checker's outstanding entry).
        if (check_)
            check_->onWakeConsumed(pkt->addr, pcb_.tid, now);
        bool wasActive = cs_.active;
        proto::ClientResult res = proto::clientStep(
            cs_, proto::ClientEvent::MsgWakeNotify, in);
        if (wasActive && in.sameLock && trace_)
            trace_->record(TraceCat::Lock, TraceEv::WakeupRecv,
                           now, pcb_.node, pcb_.tid, lock_,
                           pkt->id);
        applyAction(res, pkt->addr, now);
        break;
      }

      default:
        ocor_panic("QSpinlock t%u: unexpected message %s", pcb_.tid,
                   msgTypeName(pkt->type));
    }
}

void
QSpinlock::returnOrphanGrant(Addr lock_word, Cycle now)
{
    ocor_warn("QSpinlock t%u: returning orphan grant of %llx",
              pcb_.tid, static_cast<unsigned long long>(lock_word));
    auto rel = makePacket(MsgType::LockRelease, pcb_.node,
                          amap_.homeOf(lock_word), lock_word);
    rel->thread = pcb_.tid;
    rel->priority = makePriority(ocor_, PriorityClass::LockRelease,
                                 1, pcb_.prog);
    send_(rel, now);
}

void
QSpinlock::tick(Cycle now)
{
    // Fault-recovery watchdogs (inert at the default knob values).
    // These re-issue messages without changing protocol state, so
    // they live outside the pure step (see protocol_step.hh).
    if (os_.tryWatchdogCycles > 0 && cs_.active &&
        cs_.tryInFlight && pcb_.state == ThreadState::Spinning &&
        now >= trySentAt_ + os_.tryWatchdogCycles) {
        // The LockTry or its answer was lost: re-issue. The home
        // re-grants idempotently if the original actually won.
        ++recoveries_;
        ++pcb_.counters.retries;
        issueTry(now);
    }
    if (os_.sleepWatchdogCycles > 0 && cs_.active &&
        pcb_.state == ThreadState::Sleeping &&
        now >= sleepingSince_ + os_.sleepWatchdogCycles) {
        // Sleeping suspiciously long: the FutexWait registration or
        // the WakeNotify may be lost. Re-register; the home dedups
        // queued waiters and re-wakes an already-granted one.
        ++recoveries_;
        sleepingSince_ = now;
        auto pkt = makePacket(MsgType::FutexWait, pcb_.node,
                              amap_.homeOf(lock_), lock_);
        pkt->thread = pcb_.tid;
        pkt->priority = makePriority(ocor_, PriorityClass::Wakeup,
                                     1, pcb_.prog);
        send_(pkt, now);
    }

    if (pendingWakeAt_ != neverCycle && pendingWakeAt_ <= now) {
        pendingWakeAt_ = neverCycle;
        auto wake = makePacket(MsgType::FutexWake, pcb_.node,
                               amap_.homeOf(pendingWakeLock_),
                               pendingWakeLock_);
        wake->thread = pcb_.tid;
        wake->priority = makePriority(ocor_, PriorityClass::Wakeup,
                                      1, pcb_.prog);
        send_(wake, now);
    }

    if (cs_.timer == proto::ClientTimer::None || timerAt_ > now)
        return;
    proto::ClientInputs in;
    in.budgetExhausted = now >= sleepDeadline();
    applyAction(proto::clientStep(
                    cs_, proto::ClientEvent::TimerFire, in),
                lock_, now);
}

void
QSpinlock::release(Cycle now)
{
    if (!cs_.holding)
        ocor_panic("QSpinlock t%u: release without hold", pcb_.tid);
    proto::ClientResult res =
        proto::clientStep(cs_, proto::ClientEvent::Release, {});
    if (trace_)
        trace_->record(TraceCat::Lock, TraceEv::CsExit, now,
                       pcb_.node, pcb_.tid, lock_);
    applyAction(res, lock_, now);
}

} // namespace ocor
