#include "os/qspinlock.hh"

#include <algorithm>

#include "check/checker_registry.hh"
#include "common/log.hh"
#include "common/trace.hh"
#include "core/priority.hh"
#include "os/lock_ledger.hh"

namespace ocor
{

QSpinlock::QSpinlock(Pcb &pcb, const OcorConfig &ocor,
                     const OsParams &os, const AddressMap &amap,
                     SendFn send)
    : pcb_(pcb), ocor_(ocor), os_(os), amap_(amap),
      send_(std::move(send))
{}

Cycle
QSpinlock::sleepDeadline() const
{
    switch (os_.lockMode) {
      case LockMode::PureSpin:
        return neverCycle; // a spinlock never sleeps
      case LockMode::PureSleep:
        return spinStart_; // a queueing lock parks immediately
      default:
        return spinStart_
            + static_cast<Cycle>(ocor_.maxSpinCount)
            * os_.retryInterval;
    }
}

void
QSpinlock::beginSleepPrep(Cycle now)
{
    // Spin budget exhausted: fall into the sleeping phase.
    everSlept_ = true;
    ++pcb_.counters.sleeps;
    pcb_.state = ThreadState::SleepPrep;
    timer_ = Timer::SleepPrep;
    timerAt_ = now + os_.sleepPrepCycles;
    if (trace_)
        trace_->record(TraceCat::Lock, TraceEv::LockSleep, now,
                       pcb_.node, pcb_.tid, lock_);
}

unsigned
QSpinlock::currentRtr(Cycle now) const
{
    // One retry of the budget burns every retryInterval cycles of
    // local polling (Algorithm 1's loop under a cached lock line).
    Cycle elapsed = now >= spinStart_ ? now - spinStart_ : 0;
    std::uint64_t burned = elapsed / os_.retryInterval;
    if (burned >= ocor_.maxSpinCount)
        return 1;
    return static_cast<unsigned>(ocor_.maxSpinCount - burned);
}

void
QSpinlock::acquire(Addr lock_word, Cycle now, AcquiredFn done)
{
    if (active_ || holding_)
        ocor_panic("QSpinlock t%u: acquire while busy", pcb_.tid);
    active_ = true;
    if (waiters_)
        ++*waiters_;
    lock_ = lock_word;
    spinStart_ = now;
    everSlept_ = false;
    tryInFlight_ = false;
    done_ = std::move(done);
    pcb_.state = ThreadState::Spinning;
    if (check_)
        check_->onAcquireStart(pcb_.tid, now);
    if (ledger_)
        ledger_->noteAttemptStart(lock_);
    if (trace_)
        trace_->record(TraceCat::Lock, TraceEv::LockAcquireStart, now,
                       pcb_.node, pcb_.tid, lock_, 0,
                       currentRtr(now));
    issueTry(now);
}

void
QSpinlock::issueTry(Cycle now)
{
    // Algorithm 1, lines 5-7: compute RTR, expose it (and PROG) to
    // the NI through core-local registers, then try the lock.
    pcb_.regRtr = currentRtr(now);
    pcb_.regProg = pcb_.prog;
    tryInFlight_ = true;
    trySentAt_ = now;
    if (check_)
        check_->onLockTry(pcb_.tid, pcb_.regRtr, now);

    auto pkt = makePacket(MsgType::LockTry, pcb_.node,
                          amap_.homeOf(lock_), lock_);
    pkt->thread = pcb_.tid;
    pkt->priority = makePriority(ocor_, PriorityClass::LockTry,
                                 pcb_.regRtr, pcb_.regProg);
    if (trace_)
        trace_->record(TraceCat::Lock, TraceEv::LockTrySent, now,
                       pcb_.node, pcb_.tid, lock_, pkt->id,
                       pcb_.regRtr,
                       static_cast<std::uint32_t>(pcb_.regProg));
    send_(pkt, now);
}

void
QSpinlock::enterCs(Cycle now)
{
    if (waiters_ && active_ && *waiters_ > 0)
        --*waiters_;
    active_ = false;
    holding_ = true;
    tryInFlight_ = false;
    timer_ = Timer::None;
    pcb_.state = ThreadState::InCS;
    ++pcb_.counters.acquisitions;
    if (everSlept_)
        ++pcb_.counters.sleepWins;
    else
        ++pcb_.counters.spinWins;
    if (ledger_)
        ledger_->noteAcquired(lock_, pcb_.tid, now - spinStart_);
    if (trace_)
        trace_->record(TraceCat::Lock, TraceEv::CsEnter, now,
                       pcb_.node, pcb_.tid, lock_, 0,
                       everSlept_ ? 1 : 0);
    if (done_) {
        auto fn = std::move(done_);
        done_ = nullptr;
        fn(now);
    }
}

void
QSpinlock::handle(const PacketPtr &pkt, Cycle now)
{
    if (pkt->thread != pcb_.tid)
        ocor_panic("QSpinlock t%u: message for t%u", pcb_.tid,
                   pkt->thread);

    switch (pkt->type) {
      case MsgType::LockGrant:
        if (active_ && pkt->addr == lock_) {
            // A grant can land while the thread is preparing to sleep
            // (the futex value re-check window); it is accepted in
            // every waiting state.
            enterCs(now);
            break;
        }
        if (holding_ && pkt->addr == lock_) {
            // Duplicate of the grant that already won (a retransmit,
            // or a watchdog re-try answered twice). The thread
            // legitimately holds the lock — absorbing is the only
            // safe move; releasing would break mutual exclusion.
            ++duplicatesAbsorbed_;
            break;
        }
        // Orphan grant: the home reserved a lock this thread no
        // longer wants (stale retransmission from a finished
        // acquisition). Hand it straight back or the lock leaks.
        ++duplicatesAbsorbed_;
        returnOrphanGrant(pkt->addr, now);
        break;

      case MsgType::LockFail: {
        if (!active_ || pkt->addr != lock_) {
            ocor_warn("QSpinlock t%u: stale LockFail", pcb_.tid);
            break;
        }
        tryInFlight_ = false;
        if (trace_)
            trace_->record(TraceCat::Lock, TraceEv::LockFailRecv, now,
                           pcb_.node, pcb_.tid, lock_, pkt->id,
                           currentRtr(now));
        if (pcb_.state != ThreadState::Spinning)
            break; // already heading to sleep
        if (now >= sleepDeadline()) {
            beginSleepPrep(now);
            break;
        }
        // Keep polling locally and revalidate remotely at the
        // remote-try cadence (capped by the budget deadline).
        timer_ = Timer::Retry;
        timerAt_ = std::min(now + os_.remoteTryInterval,
                            sleepDeadline());
        break;
      }

      case MsgType::LockFreeNotify:
        // The home invalidated our cached lock line: the lock was
        // released. Race a fresh atomic locking request immediately
        // (Fig. 4a) instead of waiting out the remote-try timer.
        if (active_ && pcb_.state == ThreadState::Spinning &&
            !tryInFlight_) {
            timer_ = Timer::None;
            ++pcb_.counters.retries;
            issueTry(now);
        }
        break;

      case MsgType::WakeNotify:
        // Every WakeNotify arrival is one delivered wakeup: the sink
        // NI absorbs network duplicates, so each arrival pairs with a
        // distinct home-side send (watchdog rewakes re-arm the
        // checker's outstanding entry).
        if (check_)
            check_->onWakeConsumed(pkt->addr, pcb_.tid, now);
        // The home node woke this thread *and* reserved the lock for
        // it (queue-spinlock: the woken waiter secures the lock).
        if (active_ && pkt->addr == lock_) {
            if (trace_)
                trace_->record(TraceCat::Lock, TraceEv::WakeupRecv,
                               now, pcb_.node, pcb_.tid, lock_,
                               pkt->id);
            if (pcb_.state == ThreadState::Sleeping) {
                pcb_.state = ThreadState::Waking;
                timer_ = Timer::Wakeup;
                timerAt_ = now + os_.wakeupCycles;
            } else if (pcb_.state == ThreadState::Waking) {
                // Re-wake raced the original; the context switch in
                // is already under way.
                ++duplicatesAbsorbed_;
            } else {
                // Home reserved the lock for us while we are still
                // on-core (a retransmitted FutexWait registered after
                // its duplicate was granted): enter directly, no
                // wakeup cost to pay.
                enterCs(now);
            }
            break;
        }
        if (holding_ && pkt->addr == lock_) {
            ++duplicatesAbsorbed_; // wake already consumed; in the CS
            break;
        }
        // Orphan wake: a lock this thread no longer wants is reserved
        // for it at the home. Return it.
        ++duplicatesAbsorbed_;
        returnOrphanGrant(pkt->addr, now);
        break;

      default:
        ocor_panic("QSpinlock t%u: unexpected message %s", pcb_.tid,
                   msgTypeName(pkt->type));
    }
}

void
QSpinlock::returnOrphanGrant(Addr lock_word, Cycle now)
{
    ocor_warn("QSpinlock t%u: returning orphan grant of %llx",
              pcb_.tid, static_cast<unsigned long long>(lock_word));
    auto rel = makePacket(MsgType::LockRelease, pcb_.node,
                          amap_.homeOf(lock_word), lock_word);
    rel->thread = pcb_.tid;
    rel->priority = makePriority(ocor_, PriorityClass::LockRelease,
                                 1, pcb_.prog);
    send_(rel, now);
}

void
QSpinlock::tick(Cycle now)
{
    // Fault-recovery watchdogs (inert at the default knob values).
    if (os_.tryWatchdogCycles > 0 && active_ && tryInFlight_ &&
        pcb_.state == ThreadState::Spinning &&
        now >= trySentAt_ + os_.tryWatchdogCycles) {
        // The LockTry or its answer was lost: re-issue. The home
        // re-grants idempotently if the original actually won.
        ++recoveries_;
        ++pcb_.counters.retries;
        issueTry(now);
    }
    if (os_.sleepWatchdogCycles > 0 && active_ &&
        pcb_.state == ThreadState::Sleeping &&
        now >= sleepingSince_ + os_.sleepWatchdogCycles) {
        // Sleeping suspiciously long: the FutexWait registration or
        // the WakeNotify may be lost. Re-register; the home dedups
        // queued waiters and re-wakes an already-granted one.
        ++recoveries_;
        sleepingSince_ = now;
        auto pkt = makePacket(MsgType::FutexWait, pcb_.node,
                              amap_.homeOf(lock_), lock_);
        pkt->thread = pcb_.tid;
        pkt->priority = makePriority(ocor_, PriorityClass::Wakeup,
                                     1, pcb_.prog);
        send_(pkt, now);
    }

    if (pendingWakeAt_ != neverCycle && pendingWakeAt_ <= now) {
        pendingWakeAt_ = neverCycle;
        auto wake = makePacket(MsgType::FutexWake, pcb_.node,
                               amap_.homeOf(pendingWakeLock_),
                               pendingWakeLock_);
        wake->thread = pcb_.tid;
        wake->priority = makePriority(ocor_, PriorityClass::Wakeup,
                                      1, pcb_.prog);
        send_(wake, now);
    }

    if (timer_ == Timer::None || timerAt_ > now)
        return;
    Timer t = timer_;
    timer_ = Timer::None;

    switch (t) {
      case Timer::Retry:
        if (!active_ || pcb_.state != ThreadState::Spinning ||
            tryInFlight_)
            break;
        if (now >= sleepDeadline()) {
            beginSleepPrep(now);
            break;
        }
        ++pcb_.counters.retries;
        issueTry(now);
        break;

      case Timer::SleepPrep: {
        if (!active_)
            break; // grant slipped in during the re-check window
        // sys_futex(FUTEX_WAIT): register in the home lock queue.
        pcb_.state = ThreadState::Sleeping;
        sleepingSince_ = now;
        auto pkt = makePacket(MsgType::FutexWait, pcb_.node,
                              amap_.homeOf(lock_), lock_);
        pkt->thread = pcb_.tid;
        pkt->priority = makePriority(ocor_, PriorityClass::Wakeup,
                                     1, pcb_.prog);
        send_(pkt, now);
        break;
      }

      case Timer::Wakeup:
        // Back on the core, already owning the lock: enter the CS.
        if (active_)
            enterCs(now);
        break;

      default:
        break;
    }
}

void
QSpinlock::release(Cycle now)
{
    if (!holding_)
        ocor_panic("QSpinlock t%u: release without hold", pcb_.tid);
    holding_ = false;
    if (trace_)
        trace_->record(TraceCat::Lock, TraceEv::CsExit, now,
                       pcb_.node, pcb_.tid, lock_);

    // Algorithm 2: atomic_release, PROG++, then FUTEX_WAKE with the
    // lowest priority (Table 1 rule 4) after the syscall delay.
    auto rel = makePacket(MsgType::LockRelease, pcb_.node,
                          amap_.homeOf(lock_), lock_);
    rel->thread = pcb_.tid;
    rel->priority = makePriority(ocor_, PriorityClass::LockRelease,
                                 1, pcb_.prog);
    send_(rel, now);

    ++pcb_.prog;
    pcb_.regProg = pcb_.prog;

    pendingWakeLock_ = lock_;
    pendingWakeAt_ = now + os_.futexWakeDelay;

    pcb_.state = ThreadState::Running;
}

} // namespace ocor
