#include "os/lock_ledger.hh"

#include <sstream>

#include "common/stats_registry.hh"

namespace ocor
{

const char *
cohCauseName(CohCause c)
{
    switch (c) {
      case CohCause::Transfer:    return "transfer";
      case CohCause::Arbitration: return "arbitration";
      case CohCause::Backoff:     return "backoff";
      case CohCause::Sleep:       return "sleep";
      case CohCause::GrantGap:    return "grant_gap";
      default:                    return "?";
    }
}

std::uint64_t
LockLedger::totalCause(CohCause c) const
{
    std::uint64_t sum = 0;
    for (const auto &[addr, pl] : locks_)
        sum += pl.causeCycles[static_cast<std::size_t>(c)];
    return sum;
}

std::uint64_t
LockLedger::totalCycles() const
{
    std::uint64_t sum = 0;
    for (std::size_t c = 0; c < kNumCohCauses; ++c)
        sum += totalCause(static_cast<CohCause>(c));
    return sum;
}

void
LockLedger::registerStats(StatsRegistry &reg,
                          const std::string &prefix) const
{
    // Summary: one computed scalar per cause plus the grand total,
    // so "do the causes cover the COH?" is one stats.json lookup.
    for (std::size_t c = 0; c < kNumCohCauses; ++c) {
        CohCause cause = static_cast<CohCause>(c);
        reg.addScalarFn(prefix + ".cause." + cohCauseName(cause),
                        [this, cause]() {
                            return static_cast<double>(
                                totalCause(cause));
                        });
    }
    reg.addScalarFn(prefix + ".total_cycles", [this]() {
        return static_cast<double>(totalCycles());
    });
    reg.addScalarFn(prefix + ".locks", [this]() {
        return static_cast<double>(locks_.size());
    });

    for (const auto &[addr, pl] : locks_) {
        std::ostringstream os;
        os << prefix << ".lock" << addr;
        const std::string base = os.str();
        reg.addScalar(base + ".attempts", &pl.attempts);
        reg.addScalar(base + ".grants", &pl.grants);
        for (std::size_t c = 0; c < kNumCohCauses; ++c)
            reg.addScalar(
                base + ".cause." +
                    cohCauseName(static_cast<CohCause>(c)),
                &pl.causeCycles[c]);
        reg.addHistogram(base + ".wait_hist", &pl.waitHist);
        reg.addHistogram(base + ".grant_gap_hist", &pl.grantGapHist);
    }

    for (std::size_t t = 0; t < threadWaitHist_.size(); ++t) {
        std::ostringstream os;
        os << prefix << ".thread" << t << ".wait_hist";
        reg.addHistogram(os.str(), &threadWaitHist_[t]);
    }
}

} // namespace ocor
