#include "os/params.hh"

namespace ocor
{

const char *
lockModeName(LockMode mode)
{
    switch (mode) {
      case LockMode::QueueSpinlock: return "queue-spinlock";
      case LockMode::PureSpin: return "spinlock";
      case LockMode::PureSleep: return "queueing-lock";
      default: return "?";
    }
}

} // namespace ocor
