#include "os/lock_manager.hh"

#include <algorithm>

#include "check/checker_registry.hh"
#include "common/log.hh"
#include "common/trace.hh"
#include "os/lock_ledger.hh"

namespace ocor
{

LockManager::LockManager(NodeId node, const OsParams &params,
                         SendFn send)
    : node_(node), params_(params), send_(std::move(send))
{}

bool
LockManager::heldNow(Addr lock_word) const
{
    auto it = locks_.find(lock_word);
    return it != locks_.end() && it->second.core.held;
}

ThreadId
LockManager::holderOf(Addr lock_word) const
{
    auto it = locks_.find(lock_word);
    return it == locks_.end() ? invalidThread
                              : it->second.core.holder;
}

std::size_t
LockManager::queueLength(Addr lock_word) const
{
    auto it = locks_.find(lock_word);
    return it == locks_.end() ? 0 : it->second.core.waitQueue.size();
}

std::size_t
LockManager::pollerCount(Addr lock_word) const
{
    auto it = locks_.find(lock_word);
    return it == locks_.end() ? 0 : it->second.core.pollers.size();
}

void
LockManager::handle(const PacketPtr &pkt, Cycle now)
{
    delayed_.emplace_back(now + params_.homeLatency, pkt);
}

void
LockManager::tick(Cycle now)
{
    while (!delayed_.empty() && delayed_.front().first <= now) {
        PacketPtr pkt = delayed_.front().second;
        delayed_.pop_front();
        process(pkt, now);
    }
    while (!retries_.empty() && retries_.front().first <= now) {
        PacketPtr pkt = retries_.front().second;
        retries_.pop_front();
        process(pkt, now);
    }
}

void
LockManager::noteGrant(LockState &lock, Addr addr, ThreadId winner,
                       Cycle now)
{
    if (lock.lastRelease == neverCycle)
        return; // first-ever grant: no preceding release to measure
    Cycle gap = now - lock.lastRelease;
    lock.lastRelease = neverCycle; // one release -> one sample
    stats_.handoverLatency.sample(static_cast<double>(gap));
    stats_.handoverLatencyHist.sample(static_cast<double>(gap));
    if (ledger_)
        ledger_->noteGrantGap(addr, gap);
    if (trace_)
        trace_->record(TraceCat::Lock, TraceEv::LockHandover, now,
                       node_, winner, addr, 0, 0,
                       static_cast<std::uint32_t>(gap));
}

void
LockManager::process(const PacketPtr &pkt, Cycle now)
{
    LockState &lock = locks_[pkt->addr];

    const proto::MsgKind kind = [&] {
        switch (pkt->type) {
          case MsgType::LockTry:     return proto::MsgKind::LockTry;
          case MsgType::LockRelease:
              return proto::MsgKind::LockRelease;
          case MsgType::FutexWait:   return proto::MsgKind::FutexWait;
          case MsgType::FutexWake:   return proto::MsgKind::FutexWake;
          default:
            ocor_panic("LockManager %u: unexpected message %s", node_,
                       msgTypeName(pkt->type));
        }
    }();

    // The protocol decision itself is the pure step shared with the
    // model checker (DESIGN.md §15); everything below maps its
    // outcome onto stats, traces, checker hooks and real packets.
    proto::HomeResult res = proto::homeStep(
        lock.core, kind, pkt->thread, pkt->src,
        params_.sleepWatchdogCycles > 0);

    switch (res.outcome) {
      case proto::HomeOutcome::Granted:
        ++stats_.tries;
        ++stats_.grants;
        noteGrant(lock, pkt->addr, pkt->thread, now);
        break;
      case proto::HomeOutcome::ReGranted:
        ++stats_.tries;
        ++stats_.duplicateTries;
        break;
      case proto::HomeOutcome::Failed:
        ++stats_.tries;
        ++stats_.fails;
        break;
      case proto::HomeOutcome::Released:
        ++stats_.releases;
        lock.lastRelease = now;
        break;
      case proto::HomeOutcome::StrayRelease:
        // A duplicate of a release already processed, an
        // orphan-grant return racing a legitimate re-acquisition,
        // or (fault-free) a buggy client.
        ++stats_.strayReleases;
        ocor_warn("LockManager %u: stray release of %llx by t%u "
                  "(held=%d holder=%u) absorbed", node_,
                  static_cast<unsigned long long>(pkt->addr),
                  pkt->thread, lock.core.held ? 1 : 0,
                  lock.core.holder);
        break;
      case proto::HomeOutcome::Queued:
        ++stats_.futexWaits;
        break;
      case proto::HomeOutcome::DuplicateWait:
        ++stats_.futexWaits;
        ++stats_.duplicateWaits;
        break;
      case proto::HomeOutcome::ImmediateWake:
        ++stats_.futexWaits;
        ++stats_.immediateWakes;
        noteGrant(lock, pkt->addr, pkt->thread, now);
        break;
      case proto::HomeOutcome::HolderRewake:
        ++stats_.futexWaits;
        ++stats_.rewakes;
        break;
      case proto::HomeOutcome::HolderWaitNoop:
        ++stats_.futexWaits;
        break;
      case proto::HomeOutcome::Woken:
        ++stats_.wakes;
        if (!res.sends.empty())
            noteGrant(lock, pkt->addr, res.sends.front().thread,
                      now);
        break;
      case proto::HomeOutcome::WakeNoop:
        break;
    }

    for (const proto::HomeSend &s : res.sends) {
        switch (s.kind) {
          case proto::MsgKind::LockGrant:
          case proto::MsgKind::LockFail: {
            auto resp = makePacket(s.kind == proto::MsgKind::LockGrant
                                       ? MsgType::LockGrant
                                       : MsgType::LockFail,
                                   node_, s.node, pkt->addr);
            resp->thread = s.thread;
            // Responses inherit the request's urgency so a grant is
            // not stuck behind background traffic on the way back.
            resp->priority = pkt->priority;
            send_(resp, now);
            break;
          }
          case proto::MsgKind::LockFreeNotify: {
            auto inv = makePacket(MsgType::LockFreeNotify, node_,
                                  s.node, pkt->addr);
            inv->thread = s.thread;
            send_(inv, now);
            ++stats_.notifies;
            break;
          }
          case proto::MsgKind::WakeNotify: {
            auto wake = makePacket(MsgType::WakeNotify, node_,
                                   s.node, pkt->addr);
            wake->thread = s.thread;
            wake->priority = pkt->priority; // wakeup class (lowest)
            send_(wake, now);
            if (check_)
                check_->onWakeSent(pkt->addr, s.thread, now);
            if (trace_)
                trace_->record(
                    TraceCat::Lock, TraceEv::WakeupSent, now, node_,
                    s.thread, pkt->addr, 0,
                    static_cast<std::uint32_t>(
                        lock.core.waitQueue.size()));
            break;
          }
          default:
            ocor_panic("LockManager %u: homeStep emitted %s", node_,
                       proto::msgKindName(s.kind));
        }
    }

    if (res.scheduleWakeRetry) {
        // Liveness safety net (see OsParams::wakeRetryDelay).
        auto retry = makePacket(MsgType::FutexWake, node_, node_,
                                pkt->addr);
        retries_.emplace_back(now + params_.wakeRetryDelay, retry);
    }
}

} // namespace ocor
