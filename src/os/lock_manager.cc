#include "os/lock_manager.hh"

#include <algorithm>

#include "check/checker_registry.hh"
#include "common/log.hh"
#include "common/trace.hh"
#include "os/lock_ledger.hh"

namespace ocor
{

LockManager::LockManager(NodeId node, const OsParams &params,
                         SendFn send)
    : node_(node), params_(params), send_(std::move(send))
{}

bool
LockManager::heldNow(Addr lock_word) const
{
    auto it = locks_.find(lock_word);
    return it != locks_.end() && it->second.held;
}

ThreadId
LockManager::holderOf(Addr lock_word) const
{
    auto it = locks_.find(lock_word);
    return it == locks_.end() ? invalidThread : it->second.holder;
}

std::size_t
LockManager::queueLength(Addr lock_word) const
{
    auto it = locks_.find(lock_word);
    return it == locks_.end() ? 0 : it->second.waitQueue.size();
}

std::size_t
LockManager::pollerCount(Addr lock_word) const
{
    auto it = locks_.find(lock_word);
    return it == locks_.end() ? 0 : it->second.pollers.size();
}

void
LockManager::handle(const PacketPtr &pkt, Cycle now)
{
    delayed_.emplace_back(now + params_.homeLatency, pkt);
}

void
LockManager::tick(Cycle now)
{
    while (!delayed_.empty() && delayed_.front().first <= now) {
        PacketPtr pkt = delayed_.front().second;
        delayed_.pop_front();
        process(pkt, now);
    }
    while (!retries_.empty() && retries_.front().first <= now) {
        PacketPtr pkt = retries_.front().second;
        retries_.pop_front();
        process(pkt, now);
    }
}

void
LockManager::noteGrant(LockState &lock, Addr addr, ThreadId winner,
                       Cycle now)
{
    if (lock.lastRelease == neverCycle)
        return; // first-ever grant: no preceding release to measure
    Cycle gap = now - lock.lastRelease;
    lock.lastRelease = neverCycle; // one release -> one sample
    stats_.handoverLatency.sample(static_cast<double>(gap));
    stats_.handoverLatencyHist.sample(static_cast<double>(gap));
    if (ledger_)
        ledger_->noteGrantGap(addr, gap);
    if (trace_)
        trace_->record(TraceCat::Lock, TraceEv::LockHandover, now,
                       node_, winner, addr, 0, 0,
                       static_cast<std::uint32_t>(gap));
}

void
LockManager::process(const PacketPtr &pkt, Cycle now)
{
    LockState &lock = locks_[pkt->addr];

    auto drop_poller = [&](ThreadId tid) {
        std::erase_if(lock.pollers, [tid](const auto &p) {
            return p.first == tid;
        });
    };
    auto drop_waiter = [&](ThreadId tid) {
        std::erase_if(lock.waitQueue, [tid](const auto &p) {
            return p.first == tid;
        });
    };

    switch (pkt->type) {
      case MsgType::LockTry: {
        ++stats_.tries;
        MsgType resp_type;
        if (lock.held && lock.holder == pkt->thread) {
            // Retransmitted LockTry whose original already won (the
            // grant or the duplicate raced through): re-grant
            // idempotently. Unreachable in fault-free runs — a thread
            // never re-tries while holding.
            ++stats_.duplicateTries;
            resp_type = MsgType::LockGrant;
        } else if (!lock.held) {
            lock.held = true;
            lock.holder = pkt->thread;
            resp_type = MsgType::LockGrant;
            ++stats_.grants;
            noteGrant(lock, pkt->addr, pkt->thread, now);
            drop_poller(pkt->thread);
            drop_waiter(pkt->thread);
        } else {
            resp_type = MsgType::LockFail;
            ++stats_.fails;
            // The loser keeps a cached (shared) copy of the lock
            // line and polls it locally; remember to invalidate it
            // on release (Figure 4).
            bool known = std::any_of(
                lock.pollers.begin(), lock.pollers.end(),
                [&](const auto &p) { return p.first == pkt->thread; });
            if (!known)
                lock.pollers.emplace_back(pkt->thread, pkt->src);
        }
        auto resp = makePacket(resp_type, node_, pkt->src, pkt->addr);
        resp->thread = pkt->thread;
        // Responses inherit the request's urgency so a grant is not
        // stuck behind background traffic on the way back.
        resp->priority = pkt->priority;
        send_(resp, now);
        break;
      }

      case MsgType::LockRelease: {
        if (!lock.held || lock.holder != pkt->thread) {
            // Stray release: a duplicate of a release already
            // processed, an orphan-grant return racing a legitimate
            // re-acquisition, or (fault-free) a buggy client. Absorb
            // — honoring it would free a lock someone else holds.
            ++stats_.strayReleases;
            ocor_warn("LockManager %u: stray release of %llx by t%u "
                      "(held=%d holder=%u) absorbed", node_,
                      static_cast<unsigned long long>(pkt->addr),
                      pkt->thread, lock.held ? 1 : 0, lock.holder);
            break;
        }
        ++stats_.releases;
        lock.held = false;
        lock.holder = invalidThread;
        lock.lastRelease = now;

        // Invalidate every polling sharer's cached copy: the spinning
        // threads race fresh atomic requests back (Figure 4a, T4/T5).
        for (const auto &[tid, tnode] : lock.pollers) {
            auto inv = makePacket(MsgType::LockFreeNotify, node_,
                                  tnode, pkt->addr);
            inv->thread = tid;
            send_(inv, now);
            ++stats_.notifies;
        }

        if (!lock.waitQueue.empty()) {
            // Liveness safety net (see OsParams::wakeRetryDelay).
            auto retry = makePacket(MsgType::FutexWake, node_, node_,
                                    pkt->addr);
            retries_.emplace_back(now + params_.wakeRetryDelay,
                                  retry);
        }
        break;
      }

      case MsgType::FutexWait:
        ++stats_.futexWaits;
        drop_poller(pkt->thread);
        if (lock.held && lock.holder == pkt->thread) {
            // A grant won the re-check race; never sleep. Under the
            // sleep watchdog this is also the lost-WakeNotify path: a
            // re-registering sleeper that already owns the lock needs
            // the wake re-sent or it parks forever.
            if (params_.sleepWatchdogCycles > 0) {
                ++stats_.rewakes;
                auto wake = makePacket(MsgType::WakeNotify, node_,
                                       pkt->src, pkt->addr);
                wake->thread = pkt->thread;
                wake->priority = pkt->priority;
                send_(wake, now);
                if (check_)
                    check_->onWakeSent(pkt->addr, pkt->thread, now);
                if (trace_)
                    trace_->record(
                        TraceCat::Lock, TraceEv::WakeupSent, now,
                        node_, pkt->thread, pkt->addr, 0,
                        static_cast<std::uint32_t>(
                            lock.waitQueue.size()));
            }
            break;
        }
        if (std::any_of(lock.waitQueue.begin(), lock.waitQueue.end(),
                        [&](const auto &p) {
                            return p.first == pkt->thread;
                        })) {
            // Duplicate registration (retransmitted FutexWait whose
            // original already queued): absorb, a thread must never
            // occupy two queue slots.
            ++stats_.duplicateWaits;
            break;
        }
        if (!lock.held) {
            // Futex value re-check semantics: the lock was released
            // between the budget expiry and the registration, so the
            // waiter is granted immediately (it already context
            // switched out, so it still pays the wakeup path).
            ++stats_.immediateWakes;
            lock.held = true;
            lock.holder = pkt->thread;
            noteGrant(lock, pkt->addr, pkt->thread, now);
            auto wake = makePacket(MsgType::WakeNotify, node_,
                                   pkt->src, pkt->addr);
            wake->thread = pkt->thread;
            wake->priority = pkt->priority;
            send_(wake, now);
            if (check_)
                check_->onWakeSent(pkt->addr, pkt->thread, now);
            if (trace_)
                trace_->record(
                    TraceCat::Lock, TraceEv::WakeupSent, now, node_,
                    pkt->thread, pkt->addr, 0,
                    static_cast<std::uint32_t>(
                        lock.waitQueue.size()));
        } else {
            lock.waitQueue.emplace_back(pkt->thread, pkt->src);
        }
        break;

      case MsgType::FutexWake:
        // Queue-spinlock semantics: the woken head waiter *secures*
        // the lock (Section 2.2). The wakeup request only succeeds
        // when the lock is still free by the time it reaches the
        // home node — a spinning thread whose LockTry arrived first
        // has stolen it, and the sleeper stays parked until the next
        // unlock (under OCOR this race is deliberately biased by the
        // Wakeup-Request-Last rule).
        if (!lock.held && !lock.waitQueue.empty()) {
            auto [tid, tnode] = lock.waitQueue.front();
            lock.waitQueue.pop_front();
            ++stats_.wakes;
            lock.held = true;
            lock.holder = tid;
            noteGrant(lock, pkt->addr, tid, now);
            auto wake = makePacket(MsgType::WakeNotify, node_, tnode,
                                   pkt->addr);
            wake->thread = tid;
            wake->priority = pkt->priority; // wakeup class (lowest)
            send_(wake, now);
            if (check_)
                check_->onWakeSent(pkt->addr, tid, now);
            if (trace_)
                trace_->record(
                    TraceCat::Lock, TraceEv::WakeupSent, now, node_,
                    tid, pkt->addr, 0,
                    static_cast<std::uint32_t>(
                        lock.waitQueue.size()));
        }
        break;

      default:
        ocor_panic("LockManager %u: unexpected message %s", node_,
                   msgTypeName(pkt->type));
    }
}

} // namespace ocor
