/**
 * @file
 * Pure lock/wakeup protocol transition functions (DESIGN.md §15).
 *
 * The queue-spinlock client (QSpinlock) and the lock-word home
 * (LockManager) both delegate every *protocol decision* — who gets
 * the lock, when a spinner parks, which messages go out in response
 * to which — to the two step functions declared here. The functions
 * are pure state machines: they mutate only the passed-in state
 * structs and report what happened through a result struct; they
 * never touch packets, cycles, stats, traces or checkers. The
 * simulator layers all of that on top (os/qspinlock.cc,
 * os/lock_manager.cc), and the bounded model checker (src/verify)
 * drives exactly the same functions with nondeterministic message
 * delivery — so the verified model cannot drift from the simulated
 * implementation.
 *
 * Time is deliberately abstracted out. The only two time-dependent
 * predicates in the protocol — "has the spin budget expired?" and
 * "has a timer fired?" — are *inputs* to clientStep: the simulator
 * computes them from real cycle arithmetic, the model checker
 * enumerates both truth values. Everything discrete (phase changes,
 * message emission, duplicate/orphan handling, queue/poller
 * bookkeeping, grant decisions) lives below this line and is shared.
 *
 * Scope: the fault-free protocol. The fault-recovery watchdog
 * re-sends (OsParams::tryWatchdogCycles / sleepWatchdogCycles) stay
 * in QSpinlock::tick — they re-issue messages without changing the
 * protocol state, and the model checker runs with watchdogs off.
 */

#ifndef OCOR_OS_PROTOCOL_STEP_HH
#define OCOR_OS_PROTOCOL_STEP_HH

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace ocor
{
namespace proto
{

/** Lock-protocol message kinds (the lock subset of MsgType). */
enum class MsgKind : std::uint8_t
{
    LockTry,
    LockGrant,
    LockFail,
    LockFreeNotify,
    LockRelease,
    FutexWait,
    FutexWake,
    WakeNotify,
    NumKinds
};

/** Stable name of a message kind (traces, replay files). */
const char *msgKindName(MsgKind k);

/** Parse a msgKindName() string; returns NumKinds on no match. */
MsgKind msgKindFromName(const char *name);

// ====================================================================
// Client side (QSpinlock)
// ====================================================================

/** Waiting phase of the client state machine (mirrors ThreadState
 * while an acquisition is active). */
enum class ClientPhase : std::uint8_t
{
    Idle,      ///< no acquisition active (Running / Finished / InCS)
    Spinning,  ///< low-overhead spinning, budget burning
    SleepPrep, ///< context switch out under way
    Sleeping,  ///< parked in the home wait queue
    Waking     ///< context switch in after WakeNotify
};

/** Client-side timers (which one is armed, if any). */
enum class ClientTimer : std::uint8_t
{
    None,
    Retry,     ///< next remote revalidation (or budget expiry)
    SleepPrep, ///< context switch out completes
    Wakeup     ///< context switch in completes
};

/** Pure client protocol state (embedded in QSpinlock). */
struct ClientState
{
    bool active = false;    ///< an acquisition is in progress
    bool holding = false;   ///< inside / entering the critical section
    bool tryInFlight = false; ///< a LockTry awaits its verdict
    bool everSlept = false; ///< this attempt entered the sleep path
    ClientPhase phase = ClientPhase::Idle;
    ClientTimer timer = ClientTimer::None;
};

/** Events the client reacts to. */
enum class ClientEvent : std::uint8_t
{
    Acquire,       ///< thread requests the lock
    MsgLockGrant,  ///< LockGrant arrived
    MsgLockFail,   ///< LockFail arrived
    MsgLockFreeNotify, ///< release invalidation arrived
    MsgWakeNotify, ///< WakeNotify arrived
    TimerFire,     ///< the armed timer is due (caller clears timing)
    Release        ///< thread leaves the critical section
};

/** Time-dependent predicates the caller supplies. */
struct ClientInputs
{
    /** Message addressed to the lock word of the current attempt
     * (always true for Acquire / TimerFire / Release). */
    bool sameLock = true;

    /** now >= sleepDeadline(): the spin budget has expired. Consulted
     * on MsgLockFail and Retry-timer fires only. */
    bool budgetExhausted = false;
};

/** What the caller must do after a client step. */
enum class ClientAction : std::uint8_t
{
    None,           ///< nothing (event absorbed / stale)
    SendTry,        ///< issue a LockTry (stamp RTR/PROG, send)
    ArmRetryTimer,  ///< arm Timer::Retry at the remote-try cadence
    BeginSleepPrep, ///< arm Timer::SleepPrep (sleep path entered)
    RegisterWait,   ///< send FutexWait (now Sleeping)
    EnterCs,        ///< the lock is won: run the entry bookkeeping
    StartWaking,    ///< arm Timer::Wakeup (context switch in)
    AbsorbDuplicate,///< count a duplicate grant/wake, nothing else
    ReturnOrphan,   ///< send a LockRelease returning an unwanted grant
    SendRelease     ///< send LockRelease + arm the FUTEX_WAKE delay
};

/** Result of one client step. */
struct ClientResult
{
    ClientAction action = ClientAction::None;

    /** The step consumed one failed-try retry (pcb counter). */
    bool countRetry = false;

    /** A LockFail arrived outside any matching attempt (warn). */
    bool staleFail = false;
};

/**
 * Advance the client state machine by one event.
 *
 * Preconditions (the callers ocor_panic on violations, exactly as
 * before the extraction): Acquire requires !active && !holding;
 * Release requires holding. TimerFire consumes the armed timer
 * (state.timer is cleared before dispatch, matching
 * QSpinlock::tick's one-shot semantics).
 */
ClientResult clientStep(ClientState &s, ClientEvent ev,
                        const ClientInputs &in);

// ====================================================================
// Home side (LockManager)
// ====================================================================

/** Pure home-side state of one lock word. */
struct HomeLockState
{
    bool held = false;
    ThreadId holder = invalidThread;

    /** Sleeping waiters: (thread, its node), FIFO. */
    std::deque<std::pair<ThreadId, NodeId>> waitQueue;

    /** Spinning threads polling a cached copy of the lock line:
     * they get a LockFreeNotify invalidation on release. */
    std::vector<std::pair<ThreadId, NodeId>> pollers;
};

/** What happened at the home (drives stats / trace mapping). */
enum class HomeOutcome : std::uint8_t
{
    Granted,        ///< LockTry won: fresh grant
    ReGranted,      ///< duplicate LockTry from the holder re-granted
    Failed,         ///< LockTry lost: poller registered
    Released,       ///< release accepted, pollers invalidated
    StrayRelease,   ///< release of a free/foreign lock absorbed
    Queued,         ///< FutexWait parked the thread
    DuplicateWait,  ///< FutexWait from an already-queued thread
    ImmediateWake,  ///< FutexWait found the lock free: granted
    HolderRewake,   ///< FutexWait from the holder: wake re-sent
    HolderWaitNoop, ///< FutexWait from the holder absorbed (no rewake)
    Woken,          ///< FutexWake granted the queue head
    WakeNoop        ///< FutexWake found lock held / queue empty
};

/** One message the home must send after a step. */
struct HomeSend
{
    MsgKind kind = MsgKind::LockGrant;
    ThreadId thread = invalidThread;
    NodeId node = invalidNode;
};

/** Result of one home step. */
struct HomeResult
{
    HomeOutcome outcome = HomeOutcome::WakeNoop;

    /** A new holder was chosen (handover bookkeeping point). */
    bool grantDecision = false;

    /** Sleepers remain queued after a release: arm the
     * wakeRetryDelay FutexWake safety net. */
    bool scheduleWakeRetry = false;

    /** Outbound messages, in exact emission order. */
    std::vector<HomeSend> sends;
};

/**
 * Process one inbound protocol message at the lock word's home.
 *
 * @p rewakeEnabled mirrors OsParams::sleepWatchdogCycles > 0: a
 * FutexWait from the current holder re-sends the WakeNotify only
 * when the sleep watchdog (which produces such re-registrations) is
 * configured.
 */
HomeResult homeStep(HomeLockState &lock, MsgKind kind, ThreadId tid,
                    NodeId src, bool rewakeEnabled);

} // namespace proto
} // namespace ocor

#endif // OCOR_OS_PROTOCOL_STEP_HH
