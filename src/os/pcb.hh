/**
 * @file
 * Process Control Block: per-thread OS state.
 *
 * Section 4.1 extends the Linux PCB with a PROG field counting the
 * critical sections a thread has completed; the queue spinlock writes
 * PROG and the current RTR into core-local registers that the NI
 * reads when packetizing locking requests.
 */

#ifndef OCOR_OS_PCB_HH
#define OCOR_OS_PCB_HH

#include <cstdint>

#include "common/types.hh"

namespace ocor
{

/** Lifecycle of a simulated thread. */
enum class ThreadState : std::uint8_t
{
    Running,    ///< executing parallel (non-critical) work
    Spinning,   ///< queue spinlock, low-overhead spinning phase
    SleepPrep,  ///< preparing to sleep (futex registration path)
    Sleeping,   ///< parked in the lock queue, core idle
    Waking,     ///< context-switching back in after WakeNotify
    InCS,       ///< executing the critical section
    Finished    ///< program complete
};

/** Name of a thread state (traces and tests). */
const char *threadStateName(ThreadState s);

/** Raw per-thread counters (aggregated by sim/metrics). */
struct ThreadCounters
{
    std::uint64_t computeCycles = 0;
    std::uint64_t csCycles = 0;
    /** Blocked while the lock was held by another thread. */
    std::uint64_t blockedHeldCycles = 0;
    /** Blocked while the lock was free: pure competition overhead. */
    std::uint64_t blockedIdleCycles = 0;
    std::uint64_t acquisitions = 0;
    std::uint64_t spinWins = 0;   ///< acquired while still spinning
    std::uint64_t sleepWins = 0;  ///< acquired after entering sleep
    std::uint64_t retries = 0;    ///< failed atomic_try_lock attempts
    std::uint64_t sleeps = 0;     ///< times the sleeping phase began

    // --- COH cause split (populated only when the lock ledger is
    //     attached; always sums exactly to blockedIdleCycles) --------
    std::uint64_t cohTransferCycles = 0;  ///< NoC round trip in budget
    std::uint64_t cohArbitrationCycles = 0; ///< try in flight, late
    std::uint64_t cohBackoffCycles = 0;   ///< local RTR retry backoff
    std::uint64_t cohSleepCycles = 0;     ///< futex sleep / sleep prep
    std::uint64_t cohGrantGapCycles = 0;  ///< waking, lock reserved
};

/** Per-thread OS bookkeeping. */
struct Pcb
{
    ThreadId tid = invalidThread;
    NodeId node = invalidNode;
    ThreadState state = ThreadState::Running;

    /** PROG: completed critical sections (Algorithm 2, line 3). */
    std::uint64_t prog = 0;

    /** Core-local registers written by the queue spinlock
     * (Algorithm 1, line 6) and read by the NI when stamping
     * priority fields. */
    unsigned regRtr = 0;
    std::uint64_t regProg = 0;

    ThreadCounters counters;
};

} // namespace ocor

#endif // OCOR_OS_PCB_HH
