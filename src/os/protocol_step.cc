#include "os/protocol_step.hh"

#include <algorithm>
#include <cstring>

namespace ocor
{
namespace proto
{

const char *
msgKindName(MsgKind k)
{
    switch (k) {
      case MsgKind::LockTry:        return "LockTry";
      case MsgKind::LockGrant:      return "LockGrant";
      case MsgKind::LockFail:       return "LockFail";
      case MsgKind::LockFreeNotify: return "LockFreeNotify";
      case MsgKind::LockRelease:    return "LockRelease";
      case MsgKind::FutexWait:      return "FutexWait";
      case MsgKind::FutexWake:      return "FutexWake";
      case MsgKind::WakeNotify:     return "WakeNotify";
      default:                      return "?";
    }
}

MsgKind
msgKindFromName(const char *name)
{
    for (unsigned k = 0;
         k < static_cast<unsigned>(MsgKind::NumKinds); ++k) {
        MsgKind kind = static_cast<MsgKind>(k);
        if (std::strcmp(msgKindName(kind), name) == 0)
            return kind;
    }
    return MsgKind::NumKinds;
}

// --- client ---------------------------------------------------------

ClientResult
clientStep(ClientState &s, ClientEvent ev, const ClientInputs &in)
{
    ClientResult out;

    switch (ev) {
      case ClientEvent::Acquire:
        s.active = true;
        s.everSlept = false;
        s.tryInFlight = true;
        s.phase = ClientPhase::Spinning;
        out.action = ClientAction::SendTry;
        break;

      case ClientEvent::MsgLockGrant:
        if (s.active && in.sameLock) {
            // A grant can land while the thread is preparing to
            // sleep (the futex value re-check window); it is
            // accepted in every waiting state.
            s.active = false;
            s.holding = true;
            s.tryInFlight = false;
            s.timer = ClientTimer::None;
            s.phase = ClientPhase::Idle;
            out.action = ClientAction::EnterCs;
            break;
        }
        if (s.holding && in.sameLock) {
            // Duplicate of the grant that already won: absorbing is
            // the only safe move; releasing would break mutual
            // exclusion.
            out.action = ClientAction::AbsorbDuplicate;
            break;
        }
        // Orphan grant: hand it straight back or the lock leaks.
        out.action = ClientAction::ReturnOrphan;
        break;

      case ClientEvent::MsgLockFail:
        if (!s.active || !in.sameLock) {
            out.staleFail = true;
            break;
        }
        s.tryInFlight = false;
        if (s.phase != ClientPhase::Spinning)
            break; // already heading to sleep
        if (in.budgetExhausted) {
            s.everSlept = true;
            s.phase = ClientPhase::SleepPrep;
            s.timer = ClientTimer::SleepPrep;
            out.action = ClientAction::BeginSleepPrep;
            break;
        }
        // Keep polling locally and revalidate remotely at the
        // remote-try cadence (capped by the budget deadline).
        s.timer = ClientTimer::Retry;
        out.action = ClientAction::ArmRetryTimer;
        break;

      case ClientEvent::MsgLockFreeNotify:
        // The home invalidated our cached lock line: the lock was
        // released. Race a fresh atomic locking request immediately
        // (Fig. 4a) instead of waiting out the remote-try timer.
        if (s.active && s.phase == ClientPhase::Spinning &&
            !s.tryInFlight) {
            s.timer = ClientTimer::None;
            s.tryInFlight = true;
            out.action = ClientAction::SendTry;
            out.countRetry = true;
        }
        break;

      case ClientEvent::MsgWakeNotify:
        // The home woke this thread *and* reserved the lock for it
        // (queue-spinlock: the woken waiter secures the lock).
        if (s.active && in.sameLock) {
            if (s.phase == ClientPhase::Sleeping) {
                s.phase = ClientPhase::Waking;
                s.timer = ClientTimer::Wakeup;
                out.action = ClientAction::StartWaking;
            } else if (s.phase == ClientPhase::Waking) {
                // Re-wake raced the original; the context switch in
                // is already under way.
                out.action = ClientAction::AbsorbDuplicate;
            } else {
                // Home reserved the lock while we are still on-core:
                // enter directly, no wakeup cost to pay.
                s.active = false;
                s.holding = true;
                s.tryInFlight = false;
                s.timer = ClientTimer::None;
                s.phase = ClientPhase::Idle;
                out.action = ClientAction::EnterCs;
            }
            break;
        }
        if (s.holding && in.sameLock) {
            out.action = ClientAction::AbsorbDuplicate;
            break;
        }
        out.action = ClientAction::ReturnOrphan;
        break;

      case ClientEvent::TimerFire: {
        ClientTimer t = s.timer;
        s.timer = ClientTimer::None;
        switch (t) {
          case ClientTimer::Retry:
            if (!s.active || s.phase != ClientPhase::Spinning ||
                s.tryInFlight)
                break;
            if (in.budgetExhausted) {
                s.everSlept = true;
                s.phase = ClientPhase::SleepPrep;
                s.timer = ClientTimer::SleepPrep;
                out.action = ClientAction::BeginSleepPrep;
                break;
            }
            s.tryInFlight = true;
            out.action = ClientAction::SendTry;
            out.countRetry = true;
            break;

          case ClientTimer::SleepPrep:
            if (!s.active)
                break; // grant slipped in during the re-check window
            s.phase = ClientPhase::Sleeping;
            out.action = ClientAction::RegisterWait;
            break;

          case ClientTimer::Wakeup:
            if (s.active) {
                s.active = false;
                s.holding = true;
                s.tryInFlight = false;
                s.phase = ClientPhase::Idle;
                out.action = ClientAction::EnterCs;
            }
            break;

          default:
            break;
        }
        break;
      }

      case ClientEvent::Release:
        s.holding = false;
        s.phase = ClientPhase::Idle;
        out.action = ClientAction::SendRelease;
        break;
    }
    return out;
}

// --- home -----------------------------------------------------------

namespace
{

void
dropPoller(HomeLockState &lock, ThreadId tid)
{
    std::erase_if(lock.pollers, [tid](const auto &p) {
        return p.first == tid;
    });
}

void
dropWaiter(HomeLockState &lock, ThreadId tid)
{
    std::erase_if(lock.waitQueue, [tid](const auto &p) {
        return p.first == tid;
    });
}

} // namespace

HomeResult
homeStep(HomeLockState &lock, MsgKind kind, ThreadId tid, NodeId src,
         bool rewakeEnabled)
{
    HomeResult out;

    switch (kind) {
      case MsgKind::LockTry:
        if (lock.held && lock.holder == tid) {
            // Retransmitted LockTry whose original already won:
            // re-grant idempotently. Unreachable in fault-free runs.
            out.outcome = HomeOutcome::ReGranted;
            out.sends.push_back({MsgKind::LockGrant, tid, src});
        } else if (!lock.held) {
            lock.held = true;
            lock.holder = tid;
            dropPoller(lock, tid);
            dropWaiter(lock, tid);
            out.outcome = HomeOutcome::Granted;
            out.grantDecision = true;
            out.sends.push_back({MsgKind::LockGrant, tid, src});
        } else {
            // The loser keeps a cached (shared) copy of the lock
            // line and polls it locally; remember to invalidate it
            // on release (Figure 4).
            bool known = std::any_of(
                lock.pollers.begin(), lock.pollers.end(),
                [&](const auto &p) { return p.first == tid; });
            if (!known)
                lock.pollers.emplace_back(tid, src);
            out.outcome = HomeOutcome::Failed;
            out.sends.push_back({MsgKind::LockFail, tid, src});
        }
        break;

      case MsgKind::LockRelease:
        if (!lock.held || lock.holder != tid) {
            // Stray release: absorb — honoring it would free a lock
            // someone else holds.
            out.outcome = HomeOutcome::StrayRelease;
            break;
        }
        lock.held = false;
        lock.holder = invalidThread;
        out.outcome = HomeOutcome::Released;
        // Invalidate every polling sharer's cached copy: the
        // spinning threads race fresh atomic requests back
        // (Figure 4a, T4/T5).
        for (const auto &[ptid, pnode] : lock.pollers)
            out.sends.push_back(
                {MsgKind::LockFreeNotify, ptid, pnode});
        // Liveness safety net (see OsParams::wakeRetryDelay).
        out.scheduleWakeRetry = !lock.waitQueue.empty();
        break;

      case MsgKind::FutexWait:
        dropPoller(lock, tid);
        if (lock.held && lock.holder == tid) {
            // A grant won the re-check race; never sleep. Under the
            // sleep watchdog this is also the lost-WakeNotify path:
            // a re-registering sleeper that already owns the lock
            // needs the wake re-sent or it parks forever.
            if (rewakeEnabled) {
                out.outcome = HomeOutcome::HolderRewake;
                out.sends.push_back({MsgKind::WakeNotify, tid, src});
            } else {
                out.outcome = HomeOutcome::HolderWaitNoop;
            }
            break;
        }
        if (std::any_of(lock.waitQueue.begin(), lock.waitQueue.end(),
                        [&](const auto &p) {
                            return p.first == tid;
                        })) {
            // Duplicate registration: absorb, a thread must never
            // occupy two queue slots.
            out.outcome = HomeOutcome::DuplicateWait;
            break;
        }
        if (!lock.held) {
            // Futex value re-check semantics: the lock was released
            // between the budget expiry and the registration, so
            // the waiter is granted immediately (it already context
            // switched out, so it still pays the wakeup path).
            lock.held = true;
            lock.holder = tid;
            out.outcome = HomeOutcome::ImmediateWake;
            out.grantDecision = true;
            out.sends.push_back({MsgKind::WakeNotify, tid, src});
        } else {
            lock.waitQueue.emplace_back(tid, src);
            out.outcome = HomeOutcome::Queued;
        }
        break;

      case MsgKind::FutexWake:
        // Queue-spinlock semantics: the woken head waiter *secures*
        // the lock (Section 2.2). The wakeup request only succeeds
        // when the lock is still free by the time it reaches the
        // home node — a spinning thread whose LockTry arrived first
        // has stolen it, and the sleeper stays parked until the
        // next unlock (under OCOR this race is deliberately biased
        // by the Wakeup-Request-Last rule).
        if (!lock.held && !lock.waitQueue.empty()) {
            auto [wtid, wnode] = lock.waitQueue.front();
            lock.waitQueue.pop_front();
            lock.held = true;
            lock.holder = wtid;
            out.outcome = HomeOutcome::Woken;
            out.grantDecision = true;
            out.sends.push_back({MsgKind::WakeNotify, wtid, wnode});
        } else {
            out.outcome = HomeOutcome::WakeNoop;
        }
        break;

      default:
        // Client-bound kinds never reach the home; the caller
        // panics on them before stepping.
        out.outcome = HomeOutcome::WakeNoop;
        break;
    }
    return out;
}

} // namespace proto
} // namespace ocor
