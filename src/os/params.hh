/**
 * @file
 * Cost parameters of the OS synchronization primitives.
 */

#ifndef OCOR_OS_PARAMS_HH
#define OCOR_OS_PARAMS_HH

namespace ocor
{

/**
 * Locking discipline (Section 2.2 of the paper).
 *
 * QueueSpinlock is the Linux 4.2 scheme the paper studies (spin up
 * to MAX_SPIN_COUNT, then futex-sleep). PureSpin and PureSleep are
 * the two classical disciplines it combines, kept as baselines:
 * PureSpin never sleeps (spinlock), PureSleep parks on the first
 * failed try (queueing lock).
 */
enum class LockMode : unsigned char
{
    QueueSpinlock,
    PureSpin,
    PureSleep
};

/** Human-readable mode name. */
const char *lockModeName(LockMode mode);

/** Queue-spinlock and futex timing model. */
struct OsParams
{
    LockMode lockMode = LockMode::QueueSpinlock;

    /**
     * cpu_relax() delay of one local spin-loop iteration (Algorithm
     * 1, line 9). The MAX_SPIN_COUNT budget burns one retry per
     * interval while the thread polls its cached lock line, so the
     * sleeping phase begins maxSpinCount * retryInterval cycles
     * after spinning starts, independent of network conditions.
     */
    unsigned retryInterval = 100;

    /**
     * Cadence of *remote* atomic_try_lock revalidations while
     * spinning. Between release invalidations, a spinner re-issues
     * its locking request every remoteTryInterval cycles, so locking
     * requests from all spinners are continuously in flight and race
     * through the NoC — the traffic OCOR's router rules reorder.
     */
    unsigned remoteTryInterval = 30;

    /**
     * Cycles to prepare a thread for sleep: registering in the lock
     * queue and context switching out (sys_futex FUTEX_WAIT path).
     */
    unsigned sleepPrepCycles = 2000;

    /**
     * Cycles to wake a sleeping thread back up to the point where it
     * can issue a locking request again (context switch in).
     */
    unsigned wakeupCycles = 3000;

    /** Lock-word access latency at its home L2 bank. */
    unsigned homeLatency = 6;

    /**
     * Delay between the atomic_release store and the FUTEX_WAKE
     * request leaving the core (Algorithm 2 program order plus the
     * sys_futex syscall entry cost). This is the window in which a
     * spinning thread's retry can steal the lock from the sleeping
     * queue head — the race OCOR's Wakeup-Request-Last rule biases.
     */
    unsigned futexWakeDelay = 40;

    /**
     * Liveness safety net: when a release leaves sleepers queued, the
     * home re-attempts a wakeup after this many cycles in case the
     * holder's FUTEX_WAKE packet was consumed while the lock was
     * still held (it raced ahead of the release). Generous on
     * purpose — it must not perturb the wakeup-vs-spinner races the
     * paper studies.
     */
    unsigned wakeRetryDelay = 6000;

    /**
     * Fault-recovery watchdog: a thread that issued a LockTry and saw
     * neither LockGrant nor LockFail for this many cycles re-issues
     * it (the home absorbs duplicates idempotently). 0 disables the
     * watchdog — the default, so fault-free runs are bit-identical to
     * builds without the fault subsystem.
     */
    unsigned tryWatchdogCycles = 0;

    /**
     * Fault-recovery watchdog: a thread that has been futex-sleeping
     * for this many cycles re-registers via FutexWait; if the home
     * already granted it the lock (the WakeNotify was lost), the home
     * re-sends the wake. 0 disables (default).
     */
    unsigned sleepWatchdogCycles = 0;
};

} // namespace ocor

#endif // OCOR_OS_PARAMS_HH
