/**
 * @file
 * Lock ledger: causal attribution of competition overhead.
 *
 * The paper's Equation 1 splits lock latency into transfer overhead
 * and competition overhead (COH), and our accounting already reports
 * the aggregate COH (blockedIdleCycles: blocked while the lock is
 * free). The ledger goes one level deeper: every blocked-idle cycle
 * is charged to exactly one named cause, so a profile's COH can be
 * read as "X% retry backoff, Y% arbitration" instead of one opaque
 * number (DESIGN.md §14).
 *
 * Cause taxonomy — mutually exclusive, derived from the waiter's
 * thread state plus the in-flight-try window:
 *
 *   Transfer     Spinning with a LockTry in flight, within the
 *                uncontended round-trip budget: the cycles the
 *                request spends traversing the NoC and the home
 *                latency. Irreducible by lock policy.
 *   Arbitration  Spinning with a try in flight *past* the budget:
 *                the request is queued behind other traffic or
 *                behind the home's serialization point — the cycles
 *                OCOR's router prioritization targets.
 *   Backoff      Spinning with no try in flight: the local RTR
 *                retry interval between revalidations.
 *   Sleep        SleepPrep or Sleeping: futex path overheads.
 *   GrantGap     Waking: the lock is already reserved for the
 *                thread; it is paying the context-switch-in cost.
 *
 * The split is computed at the simulator's accounting sites (the
 * same place blockedIdleCycles accrues), so by construction the five
 * cause counters sum exactly to the aggregate — a property the test
 * suite enforces.
 *
 * Per-lock state additionally records attempts, grants, wait-time
 * and release-to-grant-gap histograms, keyed by lock word.
 */

#ifndef OCOR_OS_LOCK_LEDGER_HH
#define OCOR_OS_LOCK_LEDGER_HH

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace ocor
{

class StatsRegistry;

/** Named cause a blocked-idle (COH) cycle is charged to. */
enum class CohCause : std::uint8_t
{
    Transfer,    ///< NoC round trip within the uncontended budget
    Arbitration, ///< try in flight beyond the budget
    Backoff,     ///< local spin between retries, no try in flight
    Sleep,       ///< sleep-prep + futex sleep
    GrantGap,    ///< waking with the lock already reserved
    NumCauses
};

constexpr std::size_t kNumCohCauses =
    static_cast<std::size_t>(CohCause::NumCauses);

/** Stable cause name (stats keys and table headers). */
const char *cohCauseName(CohCause c);

/**
 * Process-wide-per-simulation attribution ledger. One instance is
 * owned by the Simulator and shared (single-threaded simulation, no
 * locking) by every QSpinlock and LockManager; null pointers
 * everywhere mean the ledger is off and costs nothing.
 */
class LockLedger
{
  public:
    struct PerLock
    {
        std::array<std::uint64_t, kNumCohCauses> causeCycles{};
        std::uint64_t attempts = 0;
        std::uint64_t grants = 0;
        /** acquire() -> CS entry wait per attempt. */
        Histogram waitHist{64.0, 256};
        /** Release -> grant gap at the home (handover). */
        Histogram grantGapHist{4.0, 256};
    };

    explicit LockLedger(std::size_t num_threads)
        : threadWaitHist_(num_threads, Histogram{64.0, 256})
    {}

    /** QSpinlock::acquire entered. */
    void
    noteAttemptStart(Addr lock)
    {
        ++locks_[lock].attempts;
    }

    /** CS entered after @p wait_cycles of waiting. */
    void
    noteAcquired(Addr lock, ThreadId tid, Cycle wait_cycles)
    {
        PerLock &pl = locks_[lock];
        ++pl.grants;
        pl.waitHist.sample(static_cast<double>(wait_cycles));
        if (tid < threadWaitHist_.size())
            threadWaitHist_[tid].sample(
                static_cast<double>(wait_cycles));
    }

    /** Home measured a release -> grant gap of @p gap cycles. */
    void
    noteGrantGap(Addr lock, Cycle gap)
    {
        locks_[lock].grantGapHist.sample(static_cast<double>(gap));
    }

    /** Charge @p cycles of COH on @p lock to @p cause. */
    void
    charge(Addr lock, CohCause cause, std::uint64_t cycles)
    {
        locks_[lock]
            .causeCycles[static_cast<std::size_t>(cause)] += cycles;
    }

    const std::map<Addr, PerLock> &locks() const { return locks_; }

    const std::vector<Histogram> &threadWaitHists() const
    {
        return threadWaitHist_;
    }

    /** Sum of one cause across every lock. */
    std::uint64_t totalCause(CohCause c) const;

    /** Sum of every cause across every lock (== aggregate COH). */
    std::uint64_t totalCycles() const;

    /** Register per-lock and summary entries under @p prefix. */
    void registerStats(StatsRegistry &reg,
                       const std::string &prefix) const;

  private:
    std::map<Addr, PerLock> locks_;
    std::vector<Histogram> threadWaitHist_;
};

} // namespace ocor

#endif // OCOR_OS_LOCK_LEDGER_HH
