#include "os/pcb.hh"

namespace ocor
{

const char *
threadStateName(ThreadState s)
{
    switch (s) {
      case ThreadState::Running: return "Running";
      case ThreadState::Spinning: return "Spinning";
      case ThreadState::SleepPrep: return "SleepPrep";
      case ThreadState::Sleeping: return "Sleeping";
      case ThreadState::Waking: return "Waking";
      case ThreadState::InCS: return "InCS";
      case ThreadState::Finished: return "Finished";
      default: return "?";
    }
}

} // namespace ocor
