#include "check/checker_registry.hh"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/log.hh"
#include "common/stats_registry.hh"
#include "common/trace.hh"
#include "noc/fault.hh"
#include "noc/flit.hh"
#include "sim/system.hh"

namespace ocor
{

CheckerRegistry::CheckerRegistry(const CheckConfig &cfg,
                                 const OcorConfig &ocor,
                                 unsigned vc_depth)
    : cfg_(cfg)
{
    ReportFn sink = [this](CheckId id, Cycle cycle,
                           const std::string &msg) {
        report(id, cycle, msg);
    };
    if (cfg_.has(CheckId::Mutex))
        mutex_ = std::make_unique<MutexChecker>(sink);
    if (cfg_.has(CheckId::VcFifo))
        fifo_ = std::make_unique<VcFifoChecker>(sink);
    if (cfg_.has(CheckId::OneHot))
        onehot_ = std::make_unique<OneHotChecker>(sink, ocor);
    if (cfg_.has(CheckId::Arbitration))
        arb_ = std::make_unique<ArbitrationChecker>(sink, ocor);
    if (cfg_.has(CheckId::Credit))
        credit_ = std::make_unique<CreditChecker>(sink, vc_depth);
    if (cfg_.has(CheckId::Rtr))
        rtr_ = std::make_unique<RtrChecker>(sink, ocor);
    if (cfg_.has(CheckId::Wakeup))
        wakeup_ = std::make_unique<WakeupChecker>(sink);
}

CheckerRegistry::~CheckerRegistry() = default;

void
CheckerRegistry::report(CheckId id, Cycle cycle,
                        const std::string &msg)
{
    CheckViolation v;
    v.id = id;
    v.cycle = cycle;
    v.message = msg;
    violations_.push_back(v);

    if (handler_) {
        handler_(v);
        return;
    }

    // Default: dump diagnostics and abort — a violated invariant
    // means every simulated number after this point is garbage.
    std::ostringstream diag;
    dumpDiagnostics(diag);
    std::fputs(diag.str().c_str(), stderr);
    ocor_panic("[check:%s] cycle %llu: %s", checkName(id),
               static_cast<unsigned long long>(cycle), msg.c_str());
}

void
CheckerRegistry::dumpDiagnostics(std::ostream &os) const
{
    os << "=== invariant-checker diagnostics ===\n";
    if (tracer_) {
        auto recs = tracer_->snapshot();
        const std::size_t n =
            std::min(cfg_.dumpEvents, recs.size());
        os << "--- last " << n << " trace events (of "
           << recs.size() << " retained) ---\n";
        for (std::size_t i = recs.size() - n; i < recs.size(); ++i) {
            const TraceRecord &r = recs[i];
            os << r.cycle << " " << traceEvName(r.ev) << " node="
               << r.node << " thread=";
            if (r.thread == invalidThread)
                os << "-";
            else
                os << r.thread;
            os << " addr=0x" << std::hex << r.addr << std::dec
               << " pkt=" << r.pkt << " a0=" << r.a0 << " a1="
               << r.a1 << "\n";
        }
    } else {
        os << "(no tracer attached: re-run with --trace for the "
              "event tail)\n";
    }
    if (sys_) {
        os << "--- stats snapshot ---\n";
        StatsRegistry reg;
        sys_->registerStats(reg);
        reg.dumpJson(os);
        os << "\n";
    }
}

// --- NoC hooks ------------------------------------------------------

void
CheckerRegistry::onInject(const Packet &pkt, Cycle now)
{
    if (onehot_)
        onehot_->onInject(pkt, now);
}

void
CheckerRegistry::onVcPush(NodeId node, unsigned port, unsigned vc,
                          const Flit &flit, Cycle now)
{
    if (fifo_)
        fifo_->onPush(node, port, vc, flit.pkt->id, flit.index, now);
}

void
CheckerRegistry::onVcPop(NodeId node, unsigned port, unsigned vc,
                         const Flit &flit, Cycle now)
{
    if (fifo_)
        fifo_->onPop(node, port, vc, flit.pkt->id, flit.index, now);
}

void
CheckerRegistry::onArbGrant(
    NodeId node, const char *stage,
    const std::vector<const Packet *> &candidates, unsigned winner,
    Cycle now)
{
    if (arb_)
        arb_->onGrant(node, stage, candidates, winner, now);
}

void
CheckerRegistry::onTraversal(NodeId node, unsigned out_port,
                             unsigned out_vc, Cycle now)
{
    if (credit_)
        credit_->onTraversal(node, out_port, out_vc, now);
}

void
CheckerRegistry::onCreditReturn(NodeId node, unsigned port,
                                unsigned vc, Cycle now)
{
    if (credit_)
        credit_->onCredit(node, port, vc, now);
}

void
CheckerRegistry::onLinkFlitSent()
{
    if (credit_)
        credit_->onLinkFlitSent();
}

void
CheckerRegistry::onLinkFlitDelivered()
{
    if (credit_)
        credit_->onLinkFlitDelivered();
}

// --- OS hooks -------------------------------------------------------

void
CheckerRegistry::onAcquireStart(ThreadId tid, Cycle now)
{
    if (rtr_)
        rtr_->onAcquireStart(tid, now);
}

void
CheckerRegistry::onLockTry(ThreadId tid, unsigned rtr, Cycle now)
{
    if (rtr_)
        rtr_->onLockTry(tid, rtr, now);
}

void
CheckerRegistry::onWakeSent(Addr lock, ThreadId tid, Cycle now)
{
    if (wakeup_)
        wakeup_->onWakeSent(lock, tid, now);
}

void
CheckerRegistry::onWakeConsumed(Addr lock, ThreadId tid, Cycle now)
{
    if (wakeup_)
        wakeup_->onWakeConsumed(lock, tid, now);
}

// --- simulation loop hooks ------------------------------------------

void
CheckerRegistry::onCycleEnd(Cycle now)
{
    if (!mutex_ || !sys_)
        return;
    const unsigned n = sys_->numThreads();
    holderView_.resize(n);
    for (ThreadId t = 0; t < n; ++t) {
        const QSpinlock &qs = sys_->qspinlock(t);
        holderView_[t] = {qs.holding(),
                          sys_->pcb(t).state == ThreadState::InCS,
                          qs.currentLock()};
    }
    mutex_->onHolderWalk(holderView_, now);
}

void
CheckerRegistry::onHolderWalk(const std::vector<HolderView> &view,
                              Cycle now)
{
    if (mutex_)
        mutex_->onHolderWalk(view, now);
}

void
CheckerRegistry::finalize(Cycle now)
{
    const bool lossy = fault_ &&
        (fault_->stats().packetsDropped > 0 ||
         fault_->stats().unrecoverable > 0 ||
         fault_->stats().crcRejects > 0);
    const bool drained = !sys_ || sys_->drained();
    if (credit_) {
        const std::uint64_t dropped =
            fault_ ? fault_->stats().flitsDropped : 0;
        credit_->finalize(drained, dropped, now);
    }
    // A truncated run (hang watchdog, maxCycles) may cut a wakeup off
    // in flight: only a drained, loss-free run can prove one lost.
    if (wakeup_)
        wakeup_->finalize(lossy || !drained, now);
}

} // namespace ocor
