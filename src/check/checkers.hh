/**
 * @file
 * The runtime invariant checkers (DESIGN.md §11).
 *
 * Each checker polices one correctness property the OCOR design
 * depends on but the simulator otherwise never verifies:
 *
 *  - MutexChecker      mutual exclusion under the queue spinlock: at
 *                      most one thread holds / executes the critical
 *                      section of any lock word at any cycle (the
 *                      core safety property of queue-based mutual
 *                      exclusion).
 *  - VcFifoChecker     flits leave every input VC in exactly the
 *                      order they entered it (Section 4.2: FIFO
 *                      order within a VC is preserved for fairness).
 *  - OneHotChecker     priority header fields are well-formed per
 *                      Figure 8: one-hot priority/progress words,
 *                      check bit consistent with the message class,
 *                      wakeup requests at the dedicated lowest level
 *                      (Table 1 rule 4).
 *  - ArbitrationChecker Table-1 conformance: an LPA/VA/SA grant
 *                      never beats a strictly higher-priority
 *                      competing requester.
 *  - CreditChecker     credit/flit conservation: per downstream VC,
 *                      outstanding flits never exceed the buffer
 *                      depth, no spurious credits, and at drain time
 *                      every flit put on a wire was delivered or
 *                      accounted as a fault-injected drop.
 *  - RtrChecker        RTR is monotonically non-increasing across
 *                      the LockTry packets of one locking attempt
 *                      (Algorithm 1: RTR = MAX_SPIN_COUNT - retries).
 *  - WakeupChecker     no lost futex wakeups: every WAKE_UP the home
 *                      issues is consumed by exactly one sleeper.
 *
 * Checkers are pure observers: they read hook arguments and System
 * oracles but never mutate simulation state, so a checked run is
 * bit-identical to an unchecked one.
 */

#ifndef OCOR_CHECK_CHECKERS_HH
#define OCOR_CHECK_CHECKERS_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "check/check_config.hh"
#include "common/types.hh"
#include "core/ocor_config.hh"

namespace ocor
{

class System;
struct Packet;

/** One invariant violation, as reported to the registry. */
struct CheckViolation
{
    CheckId id = CheckId::NumChecks;
    Cycle cycle = 0;
    std::string message;
};

/** Sink every checker reports through (owned by the registry). */
using ReportFn = std::function<void(CheckId, Cycle,
                                    const std::string &)>;

/**
 * One thread's lock-client snapshot for the mutual-exclusion walk.
 * Built from a live System at the end of every checked cycle, or
 * from abstract protocol state by the model-checker replay harness
 * (src/verify) — the checker itself needs no System.
 */
struct HolderView
{
    bool holding = false; ///< lock client owns / is entering a CS
    bool inCs = false;    ///< thread scheduler state says InCS
    Addr lock = 0;        ///< the lock word `holding` refers to
};

/** Mutual exclusion: <=1 holder / CS occupant per lock word. */
class MutexChecker
{
  public:
    explicit MutexChecker(ReportFn report) : report_(std::move(report))
    {}

    /** Check the per-thread snapshots (index = ThreadId). */
    void onHolderWalk(const std::vector<HolderView> &view, Cycle now);

  private:
    ReportFn report_;
    /** Scratch (lock, holder) pairs; ordered, rebuilt per cycle. */
    std::vector<std::pair<Addr, ThreadId>> holders_;
};

/** FIFO order preservation within every router input VC. */
class VcFifoChecker
{
  public:
    explicit VcFifoChecker(ReportFn report)
        : report_(std::move(report))
    {}

    void onPush(NodeId node, unsigned port, unsigned vc,
                std::uint64_t pkt_id, unsigned flit_index, Cycle now);
    void onPop(NodeId node, unsigned port, unsigned vc,
               std::uint64_t pkt_id, unsigned flit_index, Cycle now);

  private:
    /** (packet id, flit index) identifies a flit uniquely. */
    using FlitKey = std::pair<std::uint64_t, unsigned>;

    static std::uint64_t vcKey(NodeId node, unsigned port,
                               unsigned vc);

    ReportFn report_;
    /** Shadow FIFO per (router, port, vc); ordered map so any
     * iteration is deterministic. */
    std::map<std::uint64_t, std::deque<FlitKey>> shadow_;
};

/** Figure-8 header well-formedness at packet injection. */
class OneHotChecker
{
  public:
    OneHotChecker(ReportFn report, const OcorConfig &ocor)
        : report_(std::move(report)), ocor_(ocor)
    {}

    void onInject(const Packet &pkt, Cycle now);

  private:
    ReportFn report_;
    const OcorConfig &ocor_;
};

/** Table-1 arbitration conformance at every grant decision. */
class ArbitrationChecker
{
  public:
    ArbitrationChecker(ReportFn report, const OcorConfig &ocor)
        : report_(std::move(report)), ocor_(ocor)
    {}

    /**
     * A grant decision at @p node: @p candidates holds the head
     * packet of every *competing* requester (null = slot not
     * requesting), @p winner indexes the granted one. The checker
     * recomputes each candidate's Table-1 rank from its own header
     * fields — independently of the ranks the router arbitrated
     * with — and flags any strictly higher-priority loser.
     */
    void onGrant(NodeId node, const char *stage,
                 const std::vector<const Packet *> &candidates,
                 unsigned winner, Cycle now);

  private:
    ReportFn report_;
    const OcorConfig &ocor_;
};

/** Credit/flit conservation per link and downstream VC. */
class CreditChecker
{
  public:
    CreditChecker(ReportFn report, unsigned vc_depth)
        : report_(std::move(report)), vcDepth_(vc_depth)
    {}

    /** A flit left @p node through @p out_port on downstream VC
     * @p out_vc (one credit debited upstream). */
    void onTraversal(NodeId node, unsigned out_port, unsigned out_vc,
                     Cycle now);

    /** A credit for (@p port, @p vc) returned to @p node. */
    void onCredit(NodeId node, unsigned port, unsigned vc, Cycle now);

    /** Wire-level accounting (aggregate over all links). */
    void onLinkFlitSent() { ++wireSent_; }
    void onLinkFlitDelivered() { ++wireDelivered_; }

    /**
     * End-of-run conservation: when the network drained, every
     * downstream VC must have all credits home, and flits put on
     * wires must equal flits taken off them plus the fault
     * injector's dropped-flit count (@p dropped_flits; 0 without
     * fault injection).
     */
    void finalize(bool drained, std::uint64_t dropped_flits,
                  Cycle now);

  private:
    static std::uint64_t slotKey(NodeId node, unsigned port,
                                 unsigned vc);

    ReportFn report_;
    unsigned vcDepth_;

    /** Flits in flight towards each downstream VC (sent - credited);
     * ordered map for deterministic iteration. */
    std::map<std::uint64_t, std::int64_t> outstanding_;

    std::uint64_t wireSent_ = 0;
    std::uint64_t wireDelivered_ = 0;
};

/** RTR monotonicity across the tries of one locking attempt. */
class RtrChecker
{
  public:
    RtrChecker(ReportFn report, const OcorConfig &ocor)
        : report_(std::move(report)), ocor_(ocor)
    {}

    void onAcquireStart(ThreadId tid, Cycle now);
    void onLockTry(ThreadId tid, unsigned rtr, Cycle now);

  private:
    ReportFn report_;
    const OcorConfig &ocor_;
    /** Last RTR stamped per thread (ordered map, small). */
    std::map<ThreadId, unsigned> lastRtr_;
};

/** Futex wakeup matching: every WAKE_UP reaches one sleeper. */
class WakeupChecker
{
  public:
    explicit WakeupChecker(ReportFn report)
        : report_(std::move(report))
    {}

    void onWakeSent(Addr lock, ThreadId tid, Cycle now);
    void onWakeConsumed(Addr lock, ThreadId tid, Cycle now);

    /**
     * @p lossy: the run saw unrecoverable packet losses, so an
     * outstanding wake may legitimately have died on a faulty link;
     * the lost-wakeup check is skipped (FaultInjector accounting).
     */
    void finalize(bool lossy, Cycle now);

  private:
    ReportFn report_;
    std::set<std::pair<Addr, ThreadId>> outstanding_;
    std::uint64_t sent_ = 0;
    std::uint64_t consumed_ = 0;
};

} // namespace ocor

#endif // OCOR_CHECK_CHECKERS_HH
