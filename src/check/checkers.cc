#include "check/checkers.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/onehot.hh"
#include "core/priority.hh"
#include "noc/packet.hh"
#include "sim/system.hh"

namespace ocor
{

// printf-checked message formatting shared with the log macros
#define fmt ::ocor::detail::formatv

// --- MutexChecker ---------------------------------------------------

void
MutexChecker::onHolderWalk(const std::vector<HolderView> &view,
                           Cycle now)
{
    holders_.clear();
    for (ThreadId t = 0; t < view.size(); ++t) {
        const HolderView &v = view[t];
        if (!v.holding && !v.inCs)
            continue;
        if (v.inCs && !v.holding) {
            report_(CheckId::Mutex, now,
                    fmt("thread %u is InCS without holding any lock",
                        t));
            continue;
        }
        holders_.emplace_back(v.lock, t);
    }
    if (holders_.size() < 2)
        return;
    std::sort(holders_.begin(), holders_.end());
    for (std::size_t i = 1; i < holders_.size(); ++i) {
        if (holders_[i].first == holders_[i - 1].first) {
            report_(CheckId::Mutex, now,
                    fmt("mutual exclusion broken: threads %u and %u "
                        "both hold lock %llx",
                        holders_[i - 1].second, holders_[i].second,
                        static_cast<unsigned long long>(
                            holders_[i].first)));
        }
    }
}

// --- VcFifoChecker --------------------------------------------------

std::uint64_t
VcFifoChecker::vcKey(NodeId node, unsigned port, unsigned vc)
{
    return (static_cast<std::uint64_t>(node) << 16) | (port << 8) | vc;
}

void
VcFifoChecker::onPush(NodeId node, unsigned port, unsigned vc,
                      std::uint64_t pkt_id, unsigned flit_index,
                      Cycle)
{
    shadow_[vcKey(node, port, vc)].emplace_back(pkt_id, flit_index);
}

void
VcFifoChecker::onPop(NodeId node, unsigned port, unsigned vc,
                     std::uint64_t pkt_id, unsigned flit_index,
                     Cycle now)
{
    auto &q = shadow_[vcKey(node, port, vc)];
    if (q.empty()) {
        report_(CheckId::VcFifo, now,
                fmt("router %u port %u vc %u popped flit "
                    "(pkt %llu idx %u) from an empty shadow FIFO",
                    node, port, vc,
                    static_cast<unsigned long long>(pkt_id),
                    flit_index));
        return;
    }
    const FlitKey expect = q.front();
    q.pop_front();
    if (expect.first != pkt_id || expect.second != flit_index) {
        report_(CheckId::VcFifo, now,
                fmt("router %u port %u vc %u reordered: expected "
                    "pkt %llu flit %u, popped pkt %llu flit %u",
                    node, port, vc,
                    static_cast<unsigned long long>(expect.first),
                    expect.second,
                    static_cast<unsigned long long>(pkt_id),
                    flit_index));
    }
}

// --- OneHotChecker --------------------------------------------------

void
OneHotChecker::onInject(const Packet &pkt, Cycle now)
{
    const PriorityFields &f = pkt.priority;

    if (!f.check) {
        if (f.priorityBits != 0 || f.progressBits != 0)
            report_(CheckId::OneHot, now,
                    fmt("pkt %llu (%s): priority/progress bits set "
                        "without the check bit",
                        static_cast<unsigned long long>(pkt.id),
                        msgTypeName(pkt.type)));
        return;
    }

    // Check bit is only ever set on lock-protocol packets, and only
    // while OCOR stamps headers at all.
    if (!isLockProtocol(pkt.type))
        report_(CheckId::OneHot, now,
                fmt("pkt %llu (%s): check bit on a non-lock packet",
                    static_cast<unsigned long long>(pkt.id),
                    msgTypeName(pkt.type)));
    if (!ocor_.enabled)
        report_(CheckId::OneHot, now,
                fmt("pkt %llu (%s): check bit with OCOR disabled",
                    static_cast<unsigned long long>(pkt.id),
                    msgTypeName(pkt.type)));

    if (!onehotValid(f.priorityBits)) {
        report_(CheckId::OneHot, now,
                fmt("pkt %llu (%s): priority bits %llx not one-hot",
                    static_cast<unsigned long long>(pkt.id),
                    msgTypeName(pkt.type),
                    static_cast<unsigned long long>(f.priorityBits)));
        return; // level checks below need a decodable word
    }
    if (!onehotValid(f.progressBits)) {
        report_(CheckId::OneHot, now,
                fmt("pkt %llu (%s): progress bits %llx not one-hot",
                    static_cast<unsigned long long>(pkt.id),
                    msgTypeName(pkt.type),
                    static_cast<unsigned long long>(f.progressBits)));
        return;
    }

    const unsigned level = onehotDecode(f.priorityBits);
    const unsigned seg = onehotDecode(f.progressBits);
    if (level > ocor_.numRtrLevels)
        report_(CheckId::OneHot, now,
                fmt("pkt %llu (%s): priority level %u above the top "
                    "locking level %u",
                    static_cast<unsigned long long>(pkt.id),
                    msgTypeName(pkt.type), level,
                    ocor_.numRtrLevels));
    if (seg >= ocor_.numProgressLevels)
        report_(CheckId::OneHot, now,
                fmt("pkt %llu (%s): progress segment %u out of range "
                    "(max %u)",
                    static_cast<unsigned long long>(pkt.id),
                    msgTypeName(pkt.type), seg,
                    ocor_.numProgressLevels - 1));

    // Table 1 rule 4: wakeup requests occupy the dedicated lowest
    // level — and nothing else does.
    const bool wakeup_class = pkt.type == MsgType::FutexWake ||
        pkt.type == MsgType::WakeNotify ||
        pkt.type == MsgType::FutexWait;
    if (ocor_.ruleWakeupLast && wakeup_class && level != 0)
        report_(CheckId::OneHot, now,
                fmt("pkt %llu (%s): wakeup-class packet at level %u "
                    "(Table 1 rule 4 demands the lowest level)",
                    static_cast<unsigned long long>(pkt.id),
                    msgTypeName(pkt.type), level));
    if (ocor_.ruleWakeupLast && !wakeup_class && level == 0)
        report_(CheckId::OneHot, now,
                fmt("pkt %llu (%s): non-wakeup packet at the "
                    "wakeup-reserved level 0",
                    static_cast<unsigned long long>(pkt.id),
                    msgTypeName(pkt.type)));
}

// --- ArbitrationChecker ---------------------------------------------

void
ArbitrationChecker::onGrant(NodeId node, const char *stage,
                            const std::vector<const Packet *> &cands,
                            unsigned winner, Cycle now)
{
    if (winner >= cands.size() || cands[winner] == nullptr) {
        report_(CheckId::Arbitration, now,
                fmt("router %u %s: granted slot %u which is not a "
                    "requester", node, stage, winner));
        return;
    }
    const std::uint64_t won =
        priorityRank(ocor_, cands[winner]->priority);
    for (std::size_t i = 0; i < cands.size(); ++i) {
        if (i == winner || cands[i] == nullptr)
            continue;
        const std::uint64_t rival =
            priorityRank(ocor_, cands[i]->priority);
        if (rival > won) {
            report_(CheckId::Arbitration, now,
                    fmt("router %u %s: grant to pkt %llu (%s, rank "
                        "%llu) beat higher-priority pkt %llu (%s, "
                        "rank %llu) — Table 1 violated",
                        node, stage,
                        static_cast<unsigned long long>(
                            cands[winner]->id),
                        msgTypeName(cands[winner]->type),
                        static_cast<unsigned long long>(won),
                        static_cast<unsigned long long>(cands[i]->id),
                        msgTypeName(cands[i]->type),
                        static_cast<unsigned long long>(rival)));
        }
    }
}

// --- CreditChecker --------------------------------------------------

std::uint64_t
CreditChecker::slotKey(NodeId node, unsigned port, unsigned vc)
{
    return (static_cast<std::uint64_t>(node) << 16) | (port << 8) | vc;
}

void
CreditChecker::onTraversal(NodeId node, unsigned out_port,
                           unsigned out_vc, Cycle now)
{
    std::int64_t &out = outstanding_[slotKey(node, out_port, out_vc)];
    ++out;
    if (out > static_cast<std::int64_t>(vcDepth_))
        report_(CheckId::Credit, now,
                fmt("router %u port %u vc %u: %lld flits in flight "
                    "exceed the downstream depth %u (credit "
                    "underflow)", node, out_port, out_vc,
                    static_cast<long long>(out), vcDepth_));
}

void
CreditChecker::onCredit(NodeId node, unsigned port, unsigned vc,
                        Cycle now)
{
    std::int64_t &out = outstanding_[slotKey(node, port, vc)];
    --out;
    if (out < 0)
        report_(CheckId::Credit, now,
                fmt("router %u port %u vc %u: credit returned with "
                    "no outstanding flit (spurious credit)", node,
                    port, vc));
}

void
CreditChecker::finalize(bool drained, std::uint64_t dropped_flits,
                        Cycle now)
{
    if (!drained)
        return; // a hung / truncated run legitimately leaves flits
    for (const auto &[key, out] : outstanding_) {
        if (out != 0)
            report_(CheckId::Credit, now,
                    fmt("router %u port %u vc %u: %lld credits never "
                        "returned after drain",
                        static_cast<unsigned>(key >> 16),
                        static_cast<unsigned>((key >> 8) & 0xff),
                        static_cast<unsigned>(key & 0xff),
                        static_cast<long long>(out)));
    }
    // Wire conservation: every flit sent was delivered, except the
    // ones the fault injector dropped (whose credits it synthesized).
    if (wireSent_ != wireDelivered_ + dropped_flits)
        report_(CheckId::Credit, now,
                fmt("link flit conservation broken: %llu sent != "
                    "%llu delivered + %llu fault-dropped",
                    static_cast<unsigned long long>(wireSent_),
                    static_cast<unsigned long long>(wireDelivered_),
                    static_cast<unsigned long long>(dropped_flits)));
}

// --- RtrChecker -----------------------------------------------------

void
RtrChecker::onAcquireStart(ThreadId tid, Cycle)
{
    lastRtr_.erase(tid);
}

void
RtrChecker::onLockTry(ThreadId tid, unsigned rtr, Cycle now)
{
    if (rtr < 1 || rtr > ocor_.maxSpinCount) {
        report_(CheckId::Rtr, now,
                fmt("thread %u stamped RTR %u outside [1, %u]", tid,
                    rtr, ocor_.maxSpinCount));
        return;
    }
    auto it = lastRtr_.find(tid);
    if (it != lastRtr_.end() && rtr > it->second) {
        report_(CheckId::Rtr, now,
                fmt("thread %u: RTR rose %u -> %u within one locking "
                    "attempt (must be non-increasing)", tid,
                    it->second, rtr));
    }
    lastRtr_[tid] = rtr;
}

// --- WakeupChecker --------------------------------------------------

void
WakeupChecker::onWakeSent(Addr lock, ThreadId tid, Cycle)
{
    // A re-send to the same sleeper (watchdog rewake) keeps the one
    // outstanding entry: it is still one logical wakeup.
    outstanding_.emplace(lock, tid);
    ++sent_;
}

void
WakeupChecker::onWakeConsumed(Addr lock, ThreadId tid, Cycle now)
{
    auto it = outstanding_.find({lock, tid});
    if (it == outstanding_.end()) {
        report_(CheckId::Wakeup, now,
                fmt("thread %u consumed a WAKE_UP for lock %llx the "
                    "home never issued (or consumed it twice)", tid,
                    static_cast<unsigned long long>(lock)));
        return;
    }
    outstanding_.erase(it);
    ++consumed_;
}

void
WakeupChecker::finalize(bool lossy, Cycle now)
{
    if (outstanding_.empty())
        return;
    if (lossy)
        return; // unrecoverable losses may eat a wake legitimately
    for (const auto &[lock, tid] : outstanding_) {
        report_(CheckId::Wakeup, now,
                fmt("lost wakeup: WAKE_UP for thread %u on lock %llx "
                    "was never consumed (%llu sent, %llu consumed)",
                    tid, static_cast<unsigned long long>(lock),
                    static_cast<unsigned long long>(sent_),
                    static_cast<unsigned long long>(consumed_)));
    }
}

#undef fmt

} // namespace ocor
