/**
 * @file
 * Configuration of the runtime invariant checkers.
 *
 * Each CheckId names one protocol invariant the simulator can police
 * while it runs (see check/checkers.hh for the invariants and their
 * paper grounding). A CheckConfig selects any subset via a bitmask;
 * an empty mask disables the subsystem entirely, in which case every
 * hook in the hot path costs exactly one pointer test.
 *
 * The OCOR_CHECK CMake option flips the *default* mask from empty to
 * all-checks, producing a hardened build where every simulation —
 * tests and benches alike — runs fully checked unless a config
 * explicitly opts out.
 */

#ifndef OCOR_CHECK_CHECK_CONFIG_HH
#define OCOR_CHECK_CHECK_CONFIG_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace ocor
{

/** Every runtime invariant checker. */
enum class CheckId : std::uint8_t
{
    Mutex,       ///< <=1 thread inside a critical section per lock
    VcFifo,      ///< FIFO order preserved within every input VC
    OneHot,      ///< Table-1 header fields well-formed (one-hot)
    Arbitration, ///< no grant beats a strictly higher-priority rival
    Credit,      ///< per-link credit/flit conservation
    Rtr,         ///< RTR monotonically non-increasing per attempt
    Wakeup,      ///< every WAKE_UP reaches exactly one sleeper
    NumChecks
};

/** Bit for a checker in CheckConfig::checks. */
constexpr unsigned
checkBit(CheckId id)
{
    return 1u << static_cast<unsigned>(id);
}

/** Mask with every checker enabled. */
constexpr unsigned
allChecksMask()
{
    return (1u << static_cast<unsigned>(CheckId::NumChecks)) - 1;
}

/** Stable name of a checker ("mutex", "vc-fifo", ...). */
const char *checkName(CheckId id);

/**
 * Parse a comma-separated checker list ("mutex,credit", "all") into
 * a bitmask. Unknown names abort via ocor_fatal (they are a user
 * error on the command line).
 */
unsigned parseCheckList(const std::string &spec);

/** Default mask: empty, or every check under -DOCOR_CHECK=ON. */
unsigned defaultCheckMask();

/** Invariant-checking knobs; part of SystemConfig. */
struct CheckConfig
{
    /** Enabled checkers (checkBit mask); 0 = checking off. */
    unsigned checks = defaultCheckMask();

    /** Trace-ring events dumped on a violation (when tracing on). */
    std::size_t dumpEvents = 32;

    bool enabled() const { return checks != 0; }

    bool has(CheckId id) const { return (checks & checkBit(id)) != 0; }
};

} // namespace ocor

#endif // OCOR_CHECK_CHECK_CONFIG_HH
