/**
 * @file
 * CheckerRegistry: the single object the simulation hooks talk to.
 *
 * One registry hangs off a System when CheckConfig enables any
 * checker. Components (Router, Link, NetworkInterface, LockManager,
 * QSpinlock, Simulator) hold a plain `CheckerRegistry *` that is null
 * when checking is off — exactly the Tracer pattern — so a disabled
 * run pays one pointer test per hook site and touches no shared
 * state, keeping checker-off runs bit-identical.
 *
 * On a violation the registry records it, and (by default) dumps the
 * tail of the trace ring plus a dotted stats snapshot to stderr
 * before aborting. Tests install a collecting handler instead via
 * setViolationHandler().
 */

#ifndef OCOR_CHECK_CHECKER_REGISTRY_HH
#define OCOR_CHECK_CHECKER_REGISTRY_HH

#include <functional>
#include <iosfwd>
#include <memory>
#include <vector>

#include "check/check_config.hh"
#include "check/checkers.hh"
#include "common/types.hh"
#include "core/ocor_config.hh"

namespace ocor
{

class System;
class Tracer;
class FaultInjector;
struct Packet;
struct Flit;

/** Pluggable runtime invariant checkers behind one hook surface. */
class CheckerRegistry
{
  public:
    using ViolationHandler =
        std::function<void(const CheckViolation &)>;

    /**
     * @p vc_depth feeds the credit-conservation bound; @p ocor the
     * independent Table-1 rank recomputation. Only the checkers
     * selected by @p cfg are instantiated.
     */
    CheckerRegistry(const CheckConfig &cfg, const OcorConfig &ocor,
                    unsigned vc_depth);
    ~CheckerRegistry();

    CheckerRegistry(const CheckerRegistry &) = delete;
    CheckerRegistry &operator=(const CheckerRegistry &) = delete;

    // --- wiring (all optional; null is always safe) -----------------
    void attachSystem(System *sys) { sys_ = sys; }
    void attachTracer(const Tracer *t) { tracer_ = t; }
    void attachFault(const FaultInjector *f) { fault_ = f; }

    /** Replace the dump-and-abort default (tests collect instead). */
    void setViolationHandler(ViolationHandler h)
    {
        handler_ = std::move(h);
    }

    const CheckConfig &config() const { return cfg_; }

    /** Violations seen so far (only grows under a custom handler —
     * the default handler aborts on the first one). */
    std::uint64_t violations() const { return violations_.size(); }
    const std::vector<CheckViolation> &log() const
    {
        return violations_;
    }

    // --- NoC hooks --------------------------------------------------
    void onInject(const Packet &pkt, Cycle now);
    void onVcPush(NodeId node, unsigned port, unsigned vc,
                  const Flit &flit, Cycle now);
    void onVcPop(NodeId node, unsigned port, unsigned vc,
                 const Flit &flit, Cycle now);
    void onArbGrant(NodeId node, const char *stage,
                    const std::vector<const Packet *> &candidates,
                    unsigned winner, Cycle now);
    void onTraversal(NodeId node, unsigned out_port, unsigned out_vc,
                     Cycle now);
    void onCreditReturn(NodeId node, unsigned port, unsigned vc,
                        Cycle now);
    void onLinkFlitSent();
    void onLinkFlitDelivered();

    /** Arbitration checking enabled? (Routers skip building the
     * candidate vector otherwise.) */
    bool wantsArbitration() const { return arb_ != nullptr; }

    // --- OS hooks ---------------------------------------------------
    void onAcquireStart(ThreadId tid, Cycle now);
    void onLockTry(ThreadId tid, unsigned rtr, Cycle now);
    void onWakeSent(Addr lock, ThreadId tid, Cycle now);
    void onWakeConsumed(Addr lock, ThreadId tid, Cycle now);

    // --- simulation loop hooks --------------------------------------
    /** End-of-cycle global invariants (mutual exclusion walk over
     * the attached System). */
    void onCycleEnd(Cycle now);

    /** Mutual-exclusion walk over an externally built snapshot
     * (model-checker replay: no System attached). */
    void onHolderWalk(const std::vector<HolderView> &view, Cycle now);

    /** End-of-run invariants (conservation, lost wakeups). */
    void finalize(Cycle now);

    /** Trace-ring tail + dotted stats snapshot (the violation dump;
     * public so tests can inspect it). */
    void dumpDiagnostics(std::ostream &os) const;

  private:
    void report(CheckId id, Cycle cycle, const std::string &msg);

    CheckConfig cfg_;

    System *sys_ = nullptr;
    const Tracer *tracer_ = nullptr;
    const FaultInjector *fault_ = nullptr;

    std::unique_ptr<MutexChecker> mutex_;
    std::unique_ptr<VcFifoChecker> fifo_;
    std::unique_ptr<OneHotChecker> onehot_;
    std::unique_ptr<ArbitrationChecker> arb_;
    std::unique_ptr<CreditChecker> credit_;
    std::unique_ptr<RtrChecker> rtr_;
    std::unique_ptr<WakeupChecker> wakeup_;

    /** Scratch snapshot for onCycleEnd (reused, no per-cycle alloc). */
    std::vector<HolderView> holderView_;

    std::vector<CheckViolation> violations_;
    ViolationHandler handler_;
};

} // namespace ocor

#endif // OCOR_CHECK_CHECKER_REGISTRY_HH
