#include "check/check_config.hh"

#include "common/log.hh"

namespace ocor
{

const char *
checkName(CheckId id)
{
    switch (id) {
      case CheckId::Mutex:       return "mutex";
      case CheckId::VcFifo:      return "vc-fifo";
      case CheckId::OneHot:      return "onehot";
      case CheckId::Arbitration: return "arbitration";
      case CheckId::Credit:      return "credit";
      case CheckId::Rtr:         return "rtr";
      case CheckId::Wakeup:      return "wakeup";
      case CheckId::NumChecks:   break;
    }
    return "?";
}

unsigned
parseCheckList(const std::string &spec)
{
    if (spec == "all")
        return allChecksMask();
    unsigned mask = 0;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string name = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (name.empty())
            continue;
        bool found = false;
        for (unsigned i = 0;
             i < static_cast<unsigned>(CheckId::NumChecks); ++i) {
            if (name == checkName(static_cast<CheckId>(i))) {
                mask |= 1u << i;
                found = true;
                break;
            }
        }
        if (!found)
            ocor_fatal("unknown checker '%s' (valid: mutex, vc-fifo, "
                       "onehot, arbitration, credit, rtr, wakeup, "
                       "all)", name.c_str());
    }
    return mask;
}

unsigned
defaultCheckMask()
{
#ifdef OCOR_CHECK_DEFAULT_ALL
    return allChecksMask();
#else
    return 0;
#endif
}

} // namespace ocor
